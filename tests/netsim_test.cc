// Tests for the network simulation substrate: the fluid training link and the
// packet-level event simulator, including conservation properties, droptail behaviour,
// loss accounting, bandwidth traces and failure injection.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/netsim/cc_interface.h"
#include "src/netsim/fluid_link.h"
#include "src/netsim/link_params.h"
#include "src/netsim/packet_network.h"

namespace mocc {
namespace {

// Fixed-rate congestion control used to probe the simulators.
class FixedRateCc : public CongestionControl {
 public:
  explicit FixedRateCc(double rate_bps) : rate_bps_(rate_bps) {}
  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "FixedRate"; }
  double PacingRateBps() const override { return rate_bps_; }
  void set_rate(double r) { rate_bps_ = r; }

  int monitor_calls = 0;
  MonitorReport last_report;
  void OnMonitorInterval(const MonitorReport& report) override {
    ++monitor_calls;
    last_report = report;
  }

 private:
  double rate_bps_;
};

// Fixed-window congestion control.
class FixedWindowCc : public CongestionControl {
 public:
  explicit FixedWindowCc(double cwnd) : cwnd_(cwnd) {}
  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "FixedWindow"; }
  double CwndPackets() const override { return cwnd_; }
  int timeouts = 0;
  void OnTimeout(double) override { ++timeouts; }

 private:
  double cwnd_;
};

TEST(LinkParamsTest, DerivedQuantities) {
  LinkParams p;
  p.bandwidth_bps = 12e6;
  p.one_way_delay_s = 0.02;
  EXPECT_DOUBLE_EQ(p.BaseRttS(), 0.04);
  EXPECT_NEAR(p.BdpPackets(), 12e6 * 0.04 / 12000.0, 1e-9);
}

TEST(LinkParamsTest, RangeSamplingWithinBounds) {
  Rng rng(5);
  const LinkParamsRange range = TrainingRange();
  for (int i = 0; i < 200; ++i) {
    const LinkParams p = range.Sample(&rng);
    EXPECT_GE(p.bandwidth_bps, range.min_bandwidth_bps);
    EXPECT_LE(p.bandwidth_bps, range.max_bandwidth_bps);
    EXPECT_GE(p.one_way_delay_s, range.min_one_way_delay_s);
    EXPECT_LE(p.one_way_delay_s, range.max_one_way_delay_s);
    EXPECT_GE(p.queue_capacity_pkts, range.min_queue_pkts);
    EXPECT_LE(p.queue_capacity_pkts, range.max_queue_pkts);
    EXPECT_GE(p.random_loss_rate, range.min_loss_rate);
    EXPECT_LE(p.random_loss_rate, range.max_loss_rate);
  }
}

TEST(BandwidthTraceTest, StepsApplyInOrder) {
  BandwidthTrace trace;
  trace.AddStep(10.0, 5e6);
  trace.AddStep(5.0, 2e6);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(0.0, 1e6), 1e6);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(5.0, 1e6), 2e6);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(7.0, 1e6), 2e6);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(11.0, 1e6), 5e6);
}

TEST(BandwidthTraceTest, OscillatingAlternates) {
  const BandwidthTrace t = BandwidthTrace::Oscillating(2e6, 3e6, 5.0, 20.0);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(1.0, 0.0), 3e6);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(6.0, 0.0), 2e6);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(11.0, 0.0), 3e6);
}

TEST(BandwidthTraceTest, OscillatingCoversFullDurationAndStartsHigh) {
  const BandwidthTrace t = BandwidthTrace::Oscillating(1e6, 4e6, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(0.0, 0.0), 4e6);   // starts at high_bps
  EXPECT_DOUBLE_EQ(t.BandwidthAt(3.0, 0.0), 1e6);   // 2nd period is low
  EXPECT_DOUBLE_EQ(t.BandwidthAt(9.5, 0.0), 4e6);   // 5th period (even) is high again
  EXPECT_DOUBLE_EQ(t.BandwidthAt(99.0, 0.0), 4e6);  // last step persists past duration
}

TEST(BandwidthTraceTest, RandomWalkStaysInRangeAndIsSeedDeterministic) {
  Rng rng_a(42);
  Rng rng_b(42);
  const BandwidthTrace a = BandwidthTrace::RandomWalk(1e6, 5e6, 2.0, 30.0, &rng_a);
  const BandwidthTrace b = BandwidthTrace::RandomWalk(1e6, 5e6, 2.0, 30.0, &rng_b);
  for (double t = 0.0; t < 30.0; t += 0.5) {
    const double bw = a.BandwidthAt(t, 0.0);
    EXPECT_GE(bw, 1e6);
    EXPECT_LE(bw, 5e6);
    EXPECT_DOUBLE_EQ(bw, b.BandwidthAt(t, 0.0));  // same seed, same walk
  }
  // Distinct seeds must give a distinct walk somewhere.
  Rng rng_c(43);
  const BandwidthTrace c = BandwidthTrace::RandomWalk(1e6, 5e6, 2.0, 30.0, &rng_c);
  bool differs = false;
  for (double t = 0.0; t < 30.0 && !differs; t += 2.0) {
    differs = a.BandwidthAt(t, 0.0) != c.BandwidthAt(t, 0.0);
  }
  EXPECT_TRUE(differs);
}

TEST(BandwidthTraceTest, FromMahimahiTimestampsAveragesWindows) {
  // 4 packets in second 0, 8 packets in second 1 (mahimahi: one MTU per timestamp).
  std::vector<double> ts_ms;
  for (int i = 0; i < 4; ++i) {
    ts_ms.push_back(i * 250.0);
  }
  for (int i = 0; i < 8; ++i) {
    ts_ms.push_back(1000.0 + i * 125.0);
  }
  const BandwidthTrace t = BandwidthTrace::FromMahimahiTimestamps(ts_ms, 1.0);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(0.5, 0.0), 4.0 * kDefaultPacketSizeBits);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(1.5, 0.0), 8.0 * kDefaultPacketSizeBits);
}

TEST(BandwidthTraceTest, FromMahimahiDegenerateInputsYieldEmptyTrace) {
  EXPECT_TRUE(BandwidthTrace::FromMahimahiTimestamps({}, 1.0).empty());
  EXPECT_TRUE(BandwidthTrace::FromMahimahiTimestamps({1.0, 2.0}, 0.0).empty());
  EXPECT_TRUE(
      BandwidthTrace::FromMahimahiFile("/nonexistent/path/to/trace.txt").empty());
}

TEST(BandwidthTraceTest, FromMahimahiFileParsesTimestampsPerLine) {
  const std::string path = ::testing::TempDir() + "/mahimahi_trace_test.txt";
  {
    std::ofstream out(path);
    // 2 packets in second 0, 6 packets in second 1.
    out << "100\n900\n1100\n1200\n1300\n1400\n1500\n1600\n";
  }
  const BandwidthTrace t = BandwidthTrace::FromMahimahiFile(path, 1.0);
  ASSERT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.BandwidthAt(0.5, 0.0), 2.0 * kDefaultPacketSizeBits);
  EXPECT_DOUBLE_EQ(t.BandwidthAt(1.5, 0.0), 6.0 * kDefaultPacketSizeBits);
  std::remove(path.c_str());
}

TEST(FluidLinkTest, UnderloadDeliversEverything) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.random_loss_rate = 0.0;
  FluidLink link(p, 1);
  const MonitorReport r = link.Step(5e6, 1.0);
  EXPECT_NEAR(r.throughput_bps, 5e6, 1e3);
  EXPECT_EQ(r.packets_lost, 0);
  EXPECT_NEAR(r.loss_rate, 0.0, 1e-9);
  EXPECT_GE(r.avg_rtt_s, p.BaseRttS());
}

TEST(FluidLinkTest, OverloadBuildsQueueAndInflatesRtt) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 10000;
  FluidLink link(p, 1);
  const MonitorReport r1 = link.Step(20e6, 1.0);
  EXPECT_NEAR(r1.throughput_bps, 10e6, 1e3);  // capped at capacity
  EXPECT_GT(link.queue_bits(), 0.0);
  const MonitorReport r2 = link.Step(20e6, 1.0);
  EXPECT_GT(r2.avg_rtt_s, r1.avg_rtt_s);  // queue keeps growing
}

TEST(FluidLinkTest, QueueDrainsWhenRateDrops) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.queue_capacity_pkts = 10000;
  FluidLink link(p, 1);
  link.Step(20e6, 1.0);
  const double backlog = link.queue_bits();
  ASSERT_GT(backlog, 0.0);
  link.Step(0.0, 2.0);
  EXPECT_DOUBLE_EQ(link.queue_bits(), 0.0);
}

TEST(FluidLinkTest, DroptailCapsBacklog) {
  LinkParams p;
  p.bandwidth_bps = 1e6;
  p.queue_capacity_pkts = 100;
  FluidLink link(p, 1);
  link.Step(50e6, 1.0);
  EXPECT_LE(link.queue_bits(), 100.0 * kDefaultPacketSizeBits + 1.0);
  const MonitorReport r = link.Step(50e6, 1.0);
  EXPECT_GT(r.loss_rate, 0.9);  // nearly everything dropped
}

TEST(FluidLinkTest, DeterministicLossMatchesExpectation) {
  LinkParams p;
  p.bandwidth_bps = 100e6;
  p.random_loss_rate = 0.02;
  FluidLink link(p, 1, /*stochastic_loss=*/false);
  const MonitorReport r = link.Step(10e6, 1.0);
  EXPECT_NEAR(r.loss_rate, 0.02, 1e-3);
}

TEST(FluidLinkTest, StochasticLossHasCorrectMean) {
  LinkParams p;
  p.bandwidth_bps = 100e6;
  p.random_loss_rate = 0.05;
  FluidLink link(p, 42, /*stochastic_loss=*/true);
  double lost = 0.0;
  double sent = 0.0;
  for (int i = 0; i < 200; ++i) {
    const MonitorReport r = link.Step(10e6, 0.1);
    lost += static_cast<double>(r.packets_lost);
    sent += static_cast<double>(r.packets_sent);
  }
  EXPECT_NEAR(lost / sent, 0.05, 0.01);
}

TEST(FluidLinkTest, TraceChangesCapacity) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  FluidLink link(p, 1);
  BandwidthTrace trace;
  trace.AddStep(0.0, 2e6);
  link.SetBandwidthTrace(trace);
  const MonitorReport r = link.Step(10e6, 1.0);
  EXPECT_NEAR(r.throughput_bps, 2e6, 1e3);
}

TEST(FluidLinkTest, MonotoneThroughputInBandwidth) {
  // Property: more bandwidth never reduces delivered throughput.
  double prev = 0.0;
  for (double bw = 2e6; bw <= 20e6; bw += 2e6) {
    LinkParams p;
    p.bandwidth_bps = bw;
    FluidLink link(p, 1, false);
    const MonitorReport r = link.Step(30e6, 1.0);
    EXPECT_GE(r.throughput_bps + 1.0, prev);
    prev = r.throughput_bps;
  }
}

TEST(PacketNetworkTest, ConservationSentEqualsAckedPlusLostPlusInflight) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  p.queue_capacity_pkts = 50;
  p.random_loss_rate = 0.01;
  PacketNetwork net(p, 7);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(12e6));
  net.Run(10.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_GT(rec.total_sent, 0);
  // In-flight packets are those sent but not yet acked or declared lost.
  const int64_t accounted = rec.total_acked + rec.total_lost;
  EXPECT_LE(accounted, rec.total_sent);
  // At 10s with ~30ms feedback delay the unaccounted tail is small.
  EXPECT_LT(rec.total_sent - accounted, 200);
}

TEST(PacketNetworkTest, UnderloadedFlowSeesBaseRttAndNoLoss) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 100;
  PacketNetwork net(p, 7);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(2e6));
  net.Run(5.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_EQ(rec.total_lost, 0);
  EXPECT_NEAR(rec.min_rtt_s, p.BaseRttS() + 12000.0 / 10e6, 2e-3);
  EXPECT_NEAR(rec.AvgThroughputBps(1.0, 5.0), 2e6, 0.1e6);
}

TEST(PacketNetworkTest, OverloadedFlowSaturatesLinkAndDrops) {
  LinkParams p;
  p.bandwidth_bps = 5e6;
  p.one_way_delay_s = 0.01;
  p.queue_capacity_pkts = 20;
  PacketNetwork net(p, 7);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(10e6));
  net.Run(5.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_NEAR(rec.AvgThroughputBps(1.0, 5.0), 5e6, 0.3e6);
  EXPECT_GT(rec.total_lost, 0);
}

TEST(PacketNetworkTest, QueueingInflatesRtt) {
  LinkParams p;
  p.bandwidth_bps = 5e6;
  p.one_way_delay_s = 0.01;
  p.queue_capacity_pkts = 200;
  PacketNetwork net(p, 7);
  auto cc = std::make_unique<FixedRateCc>(6e6);  // 20% overload -> standing queue
  FixedRateCc* cc_raw = cc.get();
  const int flow = net.AddFlow(std::move(cc));
  net.Run(5.0);
  EXPECT_GT(cc_raw->last_report.avg_rtt_s, 2.0 * p.BaseRttS());
  EXPECT_GT(net.record(flow).AvgRttS(), p.BaseRttS());
}

TEST(PacketNetworkTest, RandomLossStatisticsMatchConfig) {
  LinkParams p;
  p.bandwidth_bps = 20e6;
  p.one_way_delay_s = 0.01;
  p.queue_capacity_pkts = 1000;
  p.random_loss_rate = 0.03;
  PacketNetwork net(p, 11);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(5e6));
  net.Run(20.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_NEAR(rec.LossRate(), 0.03, 0.01);
}

TEST(PacketNetworkTest, BandwidthTraceChangesDeliveryRate) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  p.queue_capacity_pkts = 50;
  PacketNetwork net(p, 13);
  BandwidthTrace trace;
  trace.AddStep(0.0, 10e6);
  trace.AddStep(5.0, 2e6);
  net.SetBandwidthTrace(trace);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(20e6));
  net.Run(10.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_NEAR(rec.AvgThroughputBps(1.0, 5.0), 10e6, 1e6);
  EXPECT_NEAR(rec.AvgThroughputBps(6.0, 10.0), 2e6, 0.5e6);
}

TEST(PacketNetworkTest, TwoEqualFlowsShareFairly) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 60;
  PacketNetwork net(p, 17);
  const int f1 = net.AddFlow(std::make_unique<FixedRateCc>(8e6));
  const int f2 = net.AddFlow(std::make_unique<FixedRateCc>(8e6));
  net.Run(20.0);
  const double t1 = net.record(f1).AvgThroughputBps(2.0, 20.0);
  const double t2 = net.record(f2).AvgThroughputBps(2.0, 20.0);
  EXPECT_NEAR(t1 / (t1 + t2), 0.5, 0.1);
  EXPECT_NEAR(t1 + t2, 10e6, 1e6);
}

TEST(PacketNetworkTest, StaggeredStartAndStopRespected) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  PacketNetwork net(p, 19);
  FlowOptions opts;
  opts.start_time_s = 2.0;
  opts.stop_time_s = 4.0;
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(2e6), opts);
  net.Run(8.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_GE(rec.first_send_time_s, 2.0);
  EXPECT_LE(rec.last_ack_time_s, 4.5);
}

TEST(PacketNetworkTest, WindowFlowIsAckClocked) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 500;
  PacketNetwork net(p, 23);
  const int flow = net.AddFlow(std::make_unique<FixedWindowCc>(10.0));
  net.Run(5.0);
  const FlowRecord& rec = net.record(flow);
  // Throughput of a fixed window = cwnd / RTT.
  const double expected = 10.0 * 12000.0 / (p.BaseRttS() + 12000.0 / 10e6);
  EXPECT_NEAR(rec.AvgThroughputBps(1.0, 5.0), expected, 0.15 * expected);
}

TEST(PacketNetworkTest, MonitorIntervalsReported) {
  LinkParams p;
  p.bandwidth_bps = 5e6;
  p.one_way_delay_s = 0.02;
  PacketNetwork net(p, 29);
  auto cc = std::make_unique<FixedRateCc>(2e6);
  FixedRateCc* raw = cc.get();
  net.AddFlow(std::move(cc));
  net.Run(5.0);
  EXPECT_GT(raw->monitor_calls, 50);
  EXPECT_GT(raw->last_report.packets_acked, 0);
  EXPECT_NEAR(raw->last_report.send_rate_bps, 2e6, 0.4e6);
}

TEST(PacketNetworkTest, PauseStopsTransmission) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  PacketNetwork net(p, 31);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(5e6));
  net.Run(2.0);
  const int64_t sent_before = net.record(flow).total_sent;
  net.PauseFlow(flow);
  net.Run(4.0);
  EXPECT_LE(net.record(flow).total_sent - sent_before, 1);
  net.ResumeFlow(flow);
  net.Run(6.0);
  EXPECT_GT(net.record(flow).total_sent, sent_before + 100);
}

TEST(PacketNetworkTest, RunUntilStopsOnPredicate) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  PacketNetwork net(p, 37);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(5e6));
  net.RunUntil([&]() { return net.record(flow).bits_acked >= 1'000'000; }, 100.0);
  EXPECT_GE(net.record(flow).bits_acked, 1'000'000);
  EXPECT_LT(net.now_s(), 10.0);
}

TEST(PacketNetworkTest, TotalLossBurstTriggersTimeout) {
  // Failure injection: a window flow whose packets are all lost must recover via RTO
  // instead of deadlocking.
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  p.random_loss_rate = 1.0;  // everything dropped
  PacketNetwork net(p, 41);
  auto cc = std::make_unique<FixedWindowCc>(10.0);
  FixedWindowCc* raw = cc.get();
  net.AddFlow(std::move(cc));
  net.Run(10.0);
  EXPECT_EQ(net.record(0).total_acked, 0);
  EXPECT_GT(net.record(0).total_sent, 0);
  (void)raw;
}

TEST(PacketNetworkTest, ZeroBandwidthDoesNotCrash) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.01;
  PacketNetwork net(p, 43);
  BandwidthTrace trace;
  trace.AddStep(0.0, 0.0);  // dead link
  net.SetBandwidthTrace(trace);
  net.AddFlow(std::make_unique<FixedRateCc>(1e6));
  net.Run(2.0);
  EXPECT_EQ(net.record(0).total_acked, 0);
}

TEST(PacketNetworkTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    LinkParams p;
    p.bandwidth_bps = 8e6;
    p.one_way_delay_s = 0.015;
    p.random_loss_rate = 0.02;
    p.queue_capacity_pkts = 40;
    PacketNetwork net(p, seed);
    const int flow = net.AddFlow(std::make_unique<FixedRateCc>(9e6));
    net.Run(5.0);
    return net.record(flow).total_acked;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(TopologyTest, BuildersMatchSpecShapes) {
  LinkParams p;
  p.bandwidth_bps = 5e6;
  p.one_way_delay_s = 0.010;
  EXPECT_EQ(NetworkTopology::SingleBottleneck(p).links.size(), 1u);
  EXPECT_EQ(NetworkTopology::ParkingLot(p, 3).links.size(), 3u);
  EXPECT_EQ(NetworkTopology::WithReversePath(p).links.size(), 2u);

  TopologySpec parking;
  parking.kind = TopologyKind::kParkingLot;
  parking.hops = 3;
  const FlowPathSpec agent = AgentPath(parking);
  EXPECT_EQ(agent.path, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(agent.ack_path.empty());
  EXPECT_EQ(CompetitorPath(parking, 0).path, (std::vector<int>{0}));
  EXPECT_EQ(CompetitorPath(parking, 2).path, (std::vector<int>{2}));
  EXPECT_EQ(CompetitorPath(parking, 4).path, (std::vector<int>{1}));  // wraps

  TopologySpec reverse;
  reverse.kind = TopologyKind::kReversePath;
  EXPECT_EQ(AgentPath(reverse).ack_path, (std::vector<int>{1}));
  EXPECT_EQ(CompetitorPath(reverse, 0).path, (std::vector<int>{1}));
  EXPECT_TRUE(CompetitorPath(reverse, 0).ack_path.empty());
}

TEST(PacketNetworkTopologyTest, MultiHopPathConservesAndStretchesRtt) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.010;
  p.queue_capacity_pkts = 200;
  PacketNetwork net(NetworkTopology::ParkingLot(p, 3), 7);
  FlowOptions opts;
  opts.path = {0, 1, 2};
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(4e6), opts);
  net.Run(10.0);
  const FlowRecord& rec = net.record(flow);
  EXPECT_GT(rec.total_acked, 0);
  EXPECT_EQ(rec.total_lost, 0);  // underloaded everywhere
  EXPECT_LE(rec.total_acked, rec.total_sent);
  // Base RTT = 3 hops of propagation each way plus 3 serializations.
  const double expected_rtt = 6.0 * p.one_way_delay_s + 3.0 * 12000.0 / 10e6;
  EXPECT_NEAR(rec.min_rtt_s, expected_rtt, 2e-3);
  EXPECT_NEAR(rec.AvgThroughputBps(2.0, 10.0), 4e6, 0.4e6);
}

TEST(PacketNetworkTopologyTest, CrossTrafficCongestsEveryParkingLotHop) {
  // The end-to-end flow crosses three hops each loaded by its own cross flow;
  // it must end up with less than a single-hop fair share, and losses can
  // happen at any hop (mid-path drops feed back as loss notices).
  LinkParams p;
  p.bandwidth_bps = 6e6;
  p.one_way_delay_s = 0.010;
  p.queue_capacity_pkts = 50;
  PacketNetwork net(NetworkTopology::ParkingLot(p, 3), 11);
  FlowOptions e2e;
  e2e.path = {0, 1, 2};
  const int through = net.AddFlow(std::make_unique<FixedRateCc>(6e6), e2e);
  std::vector<int> cross;
  for (int hop = 0; hop < 3; ++hop) {
    FlowOptions opts;
    opts.path = {hop};
    cross.push_back(net.AddFlow(std::make_unique<FixedRateCc>(5e6), opts));
  }
  net.Run(15.0);
  const double through_bps = net.record(through).AvgThroughputBps(3.0, 15.0);
  EXPECT_GT(through_bps, 0.5e6);
  EXPECT_LT(through_bps, 0.6 * 6e6);  // squeezed below a 2-flow single-hop share
  for (int id : cross) {
    EXPECT_GT(net.record(id).AvgThroughputBps(3.0, 15.0), through_bps);
  }
  EXPECT_GT(net.record(through).total_lost, 0);
}

TEST(PacketNetworkTopologyTest, ReversePathCongestionDelaysAcks) {
  // The same forward flow, with and without data traffic loading the link its
  // ACKs return through: reverse congestion must inflate the measured RTT
  // without costing forward deliveries (ACKs are never dropped).
  auto run = [](bool load_reverse) {
    LinkParams p;
    p.bandwidth_bps = 8e6;
    p.one_way_delay_s = 0.015;
    p.queue_capacity_pkts = 100;
    PacketNetwork net(NetworkTopology::WithReversePath(p), 13);
    FlowOptions agent;
    agent.path = {0};
    agent.ack_path = {1};
    const int flow = net.AddFlow(std::make_unique<FixedRateCc>(3e6), agent);
    if (load_reverse) {
      FlowOptions rev;
      rev.path = {1};
      net.AddFlow(std::make_unique<FixedRateCc>(10e6), rev);  // overdrives link 1
    }
    net.Run(10.0);
    struct Out {
      double rtt;
      int64_t acked;
      int64_t lost;
    };
    return Out{net.record(flow).AvgRttS(), net.record(flow).total_acked,
               net.record(flow).total_lost};
  };
  const auto quiet = run(false);
  const auto loaded = run(true);
  EXPECT_GT(quiet.acked, 0);
  EXPECT_GT(loaded.acked, 0);
  EXPECT_GT(loaded.rtt, quiet.rtt + 0.005);  // >=5 ms of reverse queueing
  EXPECT_EQ(quiet.lost, 0);
  EXPECT_EQ(loaded.lost, 0);  // forward path stayed underloaded; ACKs not dropped
}

TEST(PacketNetworkTopologyTest, TopologyRunsAreBitDeterministic) {
  auto run = [](TopologyKind kind, uint64_t seed) {
    LinkParams p;
    p.bandwidth_bps = 6e6;
    p.one_way_delay_s = 0.012;
    p.queue_capacity_pkts = 60;
    p.random_loss_rate = 0.01;
    TopologySpec spec;
    spec.kind = kind;
    PacketNetwork net(BuildTopology(spec, p), seed);
    FlowOptions agent;
    const FlowPathSpec agent_paths = AgentPath(spec);
    agent.path = agent_paths.path;
    agent.ack_path = agent_paths.ack_path;
    const int a = net.AddFlow(std::make_unique<FixedRateCc>(4e6), agent);
    FlowOptions comp;
    const FlowPathSpec comp_paths = CompetitorPath(spec, 0);
    comp.path = comp_paths.path;
    comp.ack_path = comp_paths.ack_path;
    const int c = net.AddFlow(std::make_unique<FixedWindowCc>(20.0), comp);
    net.Run(8.0);
    std::vector<double> digest = {
        static_cast<double>(net.record(a).total_sent),
        static_cast<double>(net.record(a).total_acked),
        static_cast<double>(net.record(a).total_lost),
        net.record(a).min_rtt_s,
        net.record(a).last_ack_time_s,
        static_cast<double>(net.record(c).total_acked),
        net.record(c).last_ack_time_s,
    };
    return digest;
  };
  for (TopologyKind kind :
       {TopologyKind::kDumbbell, TopologyKind::kParkingLot, TopologyKind::kReversePath}) {
    const auto a = run(kind, 99);
    const auto b = run(kind, 99);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "kind " << static_cast<int>(kind) << " element " << i;
    }
    EXPECT_NE(run(kind, 99), run(kind, 100));
  }
}

TEST(PacketNetworkTest, DeferredAckCoalescingMatchesPerAckEvents) {
  // A scheme that opts out of per-ACK events must produce the exact same record
  // as an identical scheme that keeps them (the lazy drain applies the same
  // values in the same per-flow order).
  class OptOutFixedRateCc : public FixedRateCc {
   public:
    using FixedRateCc::FixedRateCc;
    bool NeedsPerAckEvents() const override { return false; }
  };
  auto run = [](bool opt_out) {
    LinkParams p;
    p.bandwidth_bps = 8e6;
    p.one_way_delay_s = 0.02;
    p.queue_capacity_pkts = 40;
    p.random_loss_rate = 0.01;
    PacketNetwork net(p, 51);
    const int flow =
        opt_out ? net.AddFlow(std::make_unique<OptOutFixedRateCc>(9e6))
                : net.AddFlow(std::make_unique<FixedRateCc>(9e6));
    net.Run(10.0);
    const FlowRecord& rec = net.record(flow);
    return std::vector<double>{
        static_cast<double>(rec.total_sent), static_cast<double>(rec.total_acked),
        static_cast<double>(rec.total_lost), rec.min_rtt_s, rec.last_ack_time_s,
        rec.AvgThroughputBps(1.0, 10.0), rec.AvgRttS()};
  };
  const auto with_events = run(false);
  const auto coalesced = run(true);
  ASSERT_EQ(with_events.size(), coalesced.size());
  for (size_t i = 0; i < with_events.size(); ++i) {
    EXPECT_EQ(with_events[i], coalesced[i]) << "element " << i;
  }
}

TEST(FlowRecordTest, BinnedThroughputAndGaps) {
  FlowRecord rec;
  rec.keep_delivery_times = true;
  rec.RecordAck(0.5, 12000);
  rec.RecordAck(1.5, 12000);
  rec.RecordAck(1.7, 12000);
  rec.RecordDelivery(0.4);
  rec.RecordDelivery(0.6);
  rec.RecordDelivery(1.0);
  const auto bins = rec.BinnedThroughputMbps(0.0, 2.0, 1.0);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_NEAR(bins[0], 0.012, 1e-9);
  EXPECT_NEAR(bins[1], 0.024, 1e-9);
  const auto gaps = rec.InterDeliveryGapsS();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_NEAR(gaps[0], 0.2, 1e-9);
  EXPECT_NEAR(gaps[1], 0.4, 1e-9);
}

}  // namespace
}  // namespace mocc
