// Tests for the MOCC core model and API surface: the preference-sub-network
// actor-critic (shapes, gradient check, clone, serialization), the model zoo, the §5
// library API (Register / ReportStatus / GetSendingRate), the congestion-control
// adapter and the UDT/CCP datapath shims.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/datapath.h"
#include "src/core/mocc_api.h"
#include "src/core/mocc_cc.h"
#include "src/core/model_zoo.h"
#include "src/core/preference_model.h"

namespace mocc {
namespace {

MoccConfig SmallConfig() {
  MoccConfig config;
  config.history_len_eta = 4;
  config.pn_hidden = 8;
  config.pn_out = 8;
  config.trunk_hidden = {16, 8};
  return config;
}

TEST(PreferenceModelTest, ObservationDimIncludesWeightAndHistory) {
  const MoccConfig config = SmallConfig();
  Rng rng(1);
  PreferenceActorCritic model(config, &rng);
  EXPECT_EQ(model.obs_dim(), 3u + 3u * 4u);
}

TEST(PreferenceModelTest, ForwardShapes) {
  Rng rng(2);
  PreferenceActorCritic model(SmallConfig(), &rng);
  Matrix obs(6, model.obs_dim());
  obs.FillNormal(&rng, 0.5);
  Matrix mean;
  Matrix value;
  model.Forward(obs, &mean, &value);
  EXPECT_EQ(mean.rows(), 6u);
  EXPECT_EQ(mean.cols(), 1u);
  EXPECT_EQ(value.rows(), 6u);
  EXPECT_EQ(value.cols(), 1u);
}

TEST(PreferenceModelTest, OutputDependsOnWeightInput) {
  // The whole point of the PN (Figure 3): same network conditions, different
  // requirement -> different action.
  Rng rng(3);
  PreferenceActorCritic model(SmallConfig(), &rng);
  std::vector<double> obs_thr = {0.8, 0.1, 0.1};
  std::vector<double> obs_lat = {0.1, 0.8, 0.1};
  for (int i = 0; i < 4; ++i) {
    for (double v : {1.0, 1.0, 0.0}) {
      obs_thr.push_back(v);
      obs_lat.push_back(v);
    }
  }
  EXPECT_NE(model.ActionMean(obs_thr), model.ActionMean(obs_lat));
}

TEST(PreferenceModelTest, GradientsMatchFiniteDifference) {
  Rng rng(4);
  PreferenceActorCritic model(SmallConfig(), &rng);
  Matrix obs(3, model.obs_dim());
  obs.FillNormal(&rng, 0.5);

  auto loss = [&]() {
    Matrix mean;
    Matrix value;
    model.Forward(obs, &mean, &value);
    double l = 0.0;
    for (size_t i = 0; i < mean.size(); ++i) {
      l += 0.5 * mean.data()[i] * mean.data()[i];
    }
    for (size_t i = 0; i < value.size(); ++i) {
      l += 0.5 * value.data()[i] * value.data()[i];
    }
    return l;
  };

  model.ZeroGrad();
  Matrix mean;
  Matrix value;
  model.Forward(obs, &mean, &value);
  model.Backward(mean, value);

  double max_rel = 0.0;
  for (auto& p : model.Params()) {
    const size_t stride = std::max<size_t>(1, p.value->size() / 5);
    for (size_t k = 0; k < p.value->size(); k += stride) {
      double* w = &p.value->data()[k];
      const double orig = *w;
      const double eps = 1e-6;
      *w = orig + eps;
      const double lp = loss();
      *w = orig - eps;
      const double lm = loss();
      *w = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      const double an = p.grad->data()[k];
      if (std::abs(fd) > 1e-10 || std::abs(an) > 1e-10) {
        max_rel = std::max(max_rel,
                           std::abs(fd - an) / std::max({1e-8, std::abs(fd), std::abs(an)}));
      }
    }
  }
  // log_std has no gradient path through Forward; it is excluded automatically since
  // both sides are ~0.
  EXPECT_LT(max_rel, 1e-5);
}

TEST(PreferenceModelTest, CloneMatchesAndIsIndependent) {
  Rng rng(5);
  PreferenceActorCritic model(SmallConfig(), &rng);
  auto clone = model.Clone();
  std::vector<double> obs(model.obs_dim(), 0.3);
  EXPECT_DOUBLE_EQ(model.ActionMean(obs), clone->ActionMean(obs));
  model.Params()[0].value->data()[0] += 0.5;
  EXPECT_NE(model.ActionMean(obs), clone->ActionMean(obs));
}

TEST(PreferenceModelTest, FileRoundTripPreservesBehaviour) {
  const MoccConfig config = SmallConfig();
  Rng rng(6);
  PreferenceActorCritic model(config, &rng);
  const std::string path = ::testing::TempDir() + "/mocc_model_roundtrip.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  auto loaded = PreferenceActorCritic::LoadFromFile(path, config);
  ASSERT_NE(loaded, nullptr);
  std::vector<double> obs(model.obs_dim(), -0.2);
  EXPECT_DOUBLE_EQ(model.ActionMean(obs), loaded->ActionMean(obs));
  EXPECT_DOUBLE_EQ(model.log_std(), loaded->log_std());
}

TEST(PreferenceModelTest, LoadRejectsArchitectureMismatch) {
  const MoccConfig config = SmallConfig();
  Rng rng(7);
  PreferenceActorCritic model(config, &rng);
  const std::string path = ::testing::TempDir() + "/mocc_model_mismatch.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  MoccConfig other = config;
  other.history_len_eta = 6;
  EXPECT_EQ(PreferenceActorCritic::LoadFromFile(path, other), nullptr);
}

TEST(PreferenceModelTest, LoadMissingFileReturnsNull) {
  EXPECT_EQ(PreferenceActorCritic::LoadFromFile("/nonexistent/never.bin", SmallConfig()),
            nullptr);
}

TEST(PreferenceModelTest, LoadRejectsTruncatedFile) {
  // Every truncation point of a valid model file must load as nullptr — never
  // crash, never return a half-initialized model.
  const MoccConfig config = SmallConfig();
  Rng rng(18);
  PreferenceActorCritic model(config, &rng);
  const std::string path = ::testing::TempDir() + "/mocc_model_trunc.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    full = buf.str();
  }
  ASSERT_GT(full.size(), 32u);
  // Sample cut points across the file: inside the header, inside the config
  // fingerprint, and mid-way through the parameter payload.
  for (size_t cut : {size_t{4}, size_t{20}, full.size() / 4, full.size() / 2,
                     full.size() - 1}) {
    const std::string trunc_path = ::testing::TempDir() + "/mocc_model_trunc_cut.bin";
    std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_EQ(PreferenceActorCritic::LoadFromFile(trunc_path, config), nullptr)
        << "truncation at byte " << cut << " of " << full.size();
  }
}

TEST(PreferenceModelTest, LoadRejectsCorruptLengthPrefix) {
  // Flip a length prefix to an absurd value: the loader must reject it cleanly
  // rather than attempt a multi-gigabyte allocation.
  const MoccConfig config = SmallConfig();
  Rng rng(19);
  PreferenceActorCritic model(config, &rng);
  const std::string path = ::testing::TempDir() + "/mocc_model_corrupt.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    full = buf.str();
  }
  // Stamp 0xFF over a word in the middle of the payload; whichever field it
  // lands in (count, dimension, or value), the result must not be a crash.
  for (size_t i = full.size() / 2; i < full.size() / 2 + 8 && i < full.size(); ++i) {
    full[i] = static_cast<char>(0xFF);
  }
  const std::string corrupt_path = ::testing::TempDir() + "/mocc_model_corrupt_out.bin";
  {
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  auto loaded = PreferenceActorCritic::LoadFromFile(corrupt_path, config);
  if (loaded != nullptr) {
    // If the flipped bytes landed in a value field the load can still succeed;
    // the model must at least be usable (finite action) — no torn state.
    std::vector<double> obs(loaded->obs_dim(), 0.1);
    (void)loaded->ActionMean(obs);
  }
}

TEST(ModelZooTest, TrainsOnceThenLoads) {
  const std::string dir = ::testing::TempDir() + "/mocc_zoo_test";
  std::filesystem::remove_all(dir);
  ModelZoo zoo(dir);
  const MoccConfig config = SmallConfig();
  int train_calls = 0;
  auto train = [&]() {
    ++train_calls;
    Rng rng(8);
    return std::make_shared<PreferenceActorCritic>(config, &rng);
  };
  auto first = zoo.GetOrTrainMocc("unit", config, train);
  auto second = zoo.GetOrTrainMocc("unit", config, train);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(train_calls, 1);
  std::vector<double> obs(first->obs_dim(), 0.1);
  EXPECT_DOUBLE_EQ(first->ActionMean(obs), second->ActionMean(obs));
}

std::shared_ptr<PreferenceActorCritic> FreshModel(const MoccConfig& config, uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<PreferenceActorCritic>(config, &rng);
}

MonitorReport MakeReport(double thr_bps, double rtt_s, double loss, double dur = 0.05) {
  MonitorReport r;
  r.duration_s = dur;
  r.throughput_bps = thr_bps;
  r.send_rate_bps = thr_bps;
  r.packets_sent = static_cast<int64_t>(thr_bps * dur / 12000.0);
  r.packets_acked = r.packets_sent;
  r.avg_rtt_s = rtt_s;
  r.min_rtt_s = rtt_s;
  r.loss_rate = loss;
  return r;
}

TEST(MoccApiTest, RegisterSanitizesWeights) {
  MoccApi::Options options;
  options.config = SmallConfig();
  MoccApi api(FreshModel(options.config, 9), options);
  api.Register(WeightVector(1.0, 0.0, 0.0));  // paper's bulk-transfer preference
  EXPECT_TRUE(api.registered_weight().IsValid());
  EXPECT_TRUE(api.is_registered());
}

TEST(MoccApiTest, GetSendingRateStartsAtInitialRate) {
  MoccApi::Options options;
  options.config = SmallConfig();
  options.initial_rate_bps = 3e6;
  MoccApi api(FreshModel(options.config, 10), options);
  EXPECT_DOUBLE_EQ(api.GetSendingRate(), 3e6);
}

TEST(MoccApiTest, ReportStatusMovesRateWithinOneEq1Step) {
  MoccApi::Options options;
  options.config = SmallConfig();
  options.initial_rate_bps = 2e6;
  MoccApi api(FreshModel(options.config, 11), options);
  api.Register(ThroughputObjective());
  const double before = api.GetSendingRate();
  api.ReportStatus(MakeReport(2e6, 0.04, 0.0));
  const double after = api.GetSendingRate();
  EXPECT_EQ(api.inference_count(), 1);
  EXPECT_NE(after, before);
  // One Eq. (1) step with alpha = action_scale and untrained |a| bounded loosely.
  EXPECT_LT(after, before * 2.0);
  EXPECT_GT(after, before / 2.0);
}

TEST(MoccApiTest, RateStaysWithinConfiguredBounds) {
  MoccApi::Options options;
  options.config = SmallConfig();
  options.min_rate_bps = 1e6;
  options.max_rate_bps = 4e6;
  options.initial_rate_bps = 2e6;
  MoccApi api(FreshModel(options.config, 12), options);
  api.Register(LatencyObjective());
  for (int i = 0; i < 500; ++i) {
    api.ReportStatus(MakeReport(2e6, 0.08, 0.01));
    EXPECT_GE(api.GetSendingRate(), 1e6);
    EXPECT_LE(api.GetSendingRate(), 4e6);
  }
}

TEST(MoccApiTest, EstimatorsTrackObservations) {
  MoccApi::Options options;
  options.config = SmallConfig();
  MoccApi api(FreshModel(options.config, 13), options);
  api.Register(BalancedObjective());
  api.ReportStatus(MakeReport(5e6, 0.05, 0.0));
  api.ReportStatus(MakeReport(8e6, 0.03, 0.0));
  EXPECT_DOUBLE_EQ(api.EstimatedCapacityBps(), 8e6);
  EXPECT_DOUBLE_EQ(api.EstimatedBaseRttS(), 0.03);
  EXPECT_GT(api.LastReward(), 0.0);
  EXPECT_LE(api.LastReward(), 1.0);
}

TEST(MoccApiTest, ReRegisterSwitchesObjectiveOnTheFly) {
  MoccApi::Options options;
  options.config = SmallConfig();
  MoccApi api(FreshModel(options.config, 14), options);
  api.Register(ThroughputObjective());
  api.ReportStatus(MakeReport(5e6, 0.05, 0.0));
  api.Register(LatencyObjective());
  EXPECT_TRUE(api.registered_weight().AlmostEquals(LatencyObjective(), 1e-9));
  api.ReportStatus(MakeReport(5e6, 0.05, 0.0));  // must not crash; history carries over
  EXPECT_EQ(api.inference_count(), 2);
}

TEST(MoccCcTest, AdapterUsesWeightPrefix) {
  const MoccConfig config = SmallConfig();
  auto model = FreshModel(config, 15);
  auto cc_thr = MakeMoccCc(model, ThroughputObjective(), "MOCC-T");
  auto cc_lat = MakeMoccCc(model, LatencyObjective(), "MOCC-L");
  EXPECT_EQ(cc_thr->Name(), "MOCC-T");
  EXPECT_EQ(cc_thr->Mode(), CcMode::kRateBased);
  // Same report stream, different weights -> (generally) different rates.
  const MonitorReport report = MakeReport(3e6, 0.05, 0.01);
  cc_thr->OnMonitorInterval(report);
  cc_lat->OnMonitorInterval(report);
  EXPECT_NE(cc_thr->PacingRateBps(), cc_lat->PacingRateBps());
}

TEST(DatapathTest, UdtShimInvokesControlEveryTick) {
  MoccApi::Options options;
  options.config = SmallConfig();
  auto api = std::make_shared<MoccApi>(FreshModel(options.config, 16), options);
  api->Register(ThroughputObjective());
  UdtShimDatapath udt(api);
  for (int i = 0; i < 12; ++i) {
    udt.OnNetworkTick(MakeReport(2e6, 0.04, 0.0));
  }
  EXPECT_EQ(udt.control_invocations(), 12);
  EXPECT_GT(udt.SendingRateBps(), 0.0);
}

TEST(DatapathTest, CcpShimBatchesFeedback) {
  MoccApi::Options options;
  options.config = SmallConfig();
  auto api = std::make_shared<MoccApi>(FreshModel(options.config, 17), options);
  api->Register(ThroughputObjective());
  CcpShimDatapath ccp(api, /*batch_size=*/4);
  for (int i = 0; i < 12; ++i) {
    ccp.OnNetworkTick(MakeReport(2e6, 0.04, 0.0));
  }
  EXPECT_EQ(ccp.control_invocations(), 3);  // 12 ticks / batch of 4
}

TEST(DatapathTest, AggregateReportsWeightsByDuration) {
  MonitorReport a = MakeReport(2e6, 0.04, 0.0, 0.1);
  MonitorReport b = MakeReport(6e6, 0.08, 0.0, 0.1);
  const MonitorReport reports[] = {a, b};
  const MonitorReport agg = CcpShimDatapath::AggregateReports(reports, 2);
  EXPECT_NEAR(agg.duration_s, 0.2, 1e-12);
  EXPECT_NEAR(agg.throughput_bps, 4e6, 1e3);
  EXPECT_NEAR(agg.avg_rtt_s, 0.06, 1e-9);
  EXPECT_EQ(agg.packets_sent, a.packets_sent + b.packets_sent);
}

TEST(DatapathTest, AggregateComputesLossOverWholeBatch) {
  MonitorReport a = MakeReport(2e6, 0.04, 0.0, 0.1);
  a.packets_acked = 90;
  a.packets_lost = 10;
  MonitorReport b = a;
  b.packets_lost = 30;
  b.packets_acked = 70;
  const MonitorReport reports[] = {a, b};
  const MonitorReport agg = CcpShimDatapath::AggregateReports(reports, 2);
  EXPECT_NEAR(agg.loss_rate, 40.0 / 200.0, 1e-9);
}

}  // namespace
}  // namespace mocc
