// Semantics tests for the performance fast paths: the allocation-free batched
// ForwardInto/BackwardInto pair and the fused single-row ForwardRow must match the
// batched reference bit-for-bit (same floating-point operation order), and parallel
// rollout collection must be deterministic — bit-identical to serial collection and
// reproducible across runs under a fixed seed.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/model_sharing.h"
#include "src/core/offline_trainer.h"
#include "src/core/preference_model.h"
#include "src/envs/env.h"
#include "src/nn/matrix.h"
#include "src/nn/mlp.h"
#include "src/rl/actor_critic.h"
#include "src/rl/ppo.h"

namespace mocc {
namespace {

// Reward = 1 - (a - target)^2 / 10 with a constant observation; optimum a = target.
class QuadEnv : public Env {
 public:
  explicit QuadEnv(double target, std::vector<double> obs = {0.5, -0.5})
      : target_(target), obs_(std::move(obs)) {}
  std::vector<double> Reset() override {
    steps_ = 0;
    return obs_;
  }
  StepResult Step(double a) override {
    StepResult r;
    r.reward = 1.0 - (a - target_) * (a - target_) / 10.0;
    r.done = ++steps_ >= 64;
    r.observation = obs_;
    return r;
  }
  size_t ObservationDim() const override { return obs_.size(); }

 private:
  double target_;
  std::vector<double> obs_;
  int steps_ = 0;
};

TEST(NnFastPathTest, ForwardIntoMatchesForwardBitForBit) {
  Rng rng(11);
  Mlp net({7, 16, 8, 3}, Activation::kTanh, Activation::kIdentity, &rng);
  Matrix x(5, 7);
  x.FillNormal(&rng, 1.0);
  const Matrix reference = net.Forward(x);
  Matrix into;
  net.ForwardInto(x, &into);
  ASSERT_EQ(into.rows(), reference.rows());
  ASSERT_EQ(into.cols(), reference.cols());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(into.data()[i], reference.data()[i]) << "element " << i;
  }
  // Workspace reuse across a batch-size change must not corrupt results.
  Matrix x2(3, 7);
  x2.FillNormal(&rng, 1.0);
  const Matrix ref2 = net.Forward(x2);
  Matrix into2;
  net.ForwardInto(x2, &into2);
  for (size_t i = 0; i < ref2.size(); ++i) {
    EXPECT_EQ(into2.data()[i], ref2.data()[i]);
  }
}

TEST(NnFastPathTest, ForwardRowMatchesBatchedForwardBitForBit) {
  Rng rng(13);
  // Width > 64 exercises the blocked matmul across more than one k-block.
  Mlp net({70, 64, 32, 2}, Activation::kTanh, Activation::kIdentity, &rng);
  Matrix x(4, 70);
  x.FillNormal(&rng, 1.0);
  const Matrix reference = net.Forward(x);
  std::vector<double> out;
  for (size_t r = 0; r < x.rows(); ++r) {
    net.ForwardRow(x.Row(r), &out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], reference(r, 0)) << "row " << r;
    EXPECT_EQ(out[1], reference(r, 1)) << "row " << r;
  }
}

TEST(NnFastPathTest, BackwardIntoMatchesLegacyBackwardBitForBit) {
  Rng rng(17);
  Mlp a({5, 12, 4}, Activation::kTanh, Activation::kIdentity, &rng);
  Mlp b({5, 12, 4}, Activation::kTanh, Activation::kIdentity, &rng);
  b.CopyWeightsFrom(a);
  Matrix x(6, 5);
  x.FillNormal(&rng, 1.0);

  a.ZeroGrad();
  const Matrix ya = a.Forward(x);
  const Matrix dxa = a.Backward(ya);

  b.ZeroGrad();
  Matrix yb;
  b.ForwardInto(x, &yb);
  Matrix dxb;
  b.BackwardInto(yb, &dxb);

  auto pa = a.Params();
  auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t p = 0; p < pa.size(); ++p) {
    for (size_t i = 0; i < pa[p].grad->size(); ++i) {
      EXPECT_EQ(pa[p].grad->data()[i], pb[p].grad->data()[i]) << "param " << p;
    }
  }
  ASSERT_EQ(dxa.size(), dxb.size());
  for (size_t i = 0; i < dxa.size(); ++i) {
    EXPECT_EQ(dxa.data()[i], dxb.data()[i]);
  }
}

TEST(NnFastPathTest, MlpActorCriticForwardRowMatchesBatched) {
  Rng rng(19);
  MlpActorCritic model(6, &rng);
  Matrix obs(3, 6);
  obs.FillNormal(&rng, 1.0);
  Matrix mean;
  Matrix value;
  model.Forward(obs, &mean, &value);
  for (size_t r = 0; r < obs.rows(); ++r) {
    double m = 0.0;
    double v = 0.0;
    model.ForwardRow(obs.Row(r), &m, &v);
    EXPECT_EQ(m, mean(r, 0)) << "row " << r;
    EXPECT_EQ(v, value(r, 0)) << "row " << r;
  }
}

TEST(NnFastPathTest, PreferenceModelForwardRowMatchesBatched) {
  MoccConfig config;
  Rng rng(23);
  PreferenceActorCritic model(config, &rng);
  Matrix obs(4, config.ObsDim());
  obs.FillNormal(&rng, 1.0);
  Matrix mean;
  Matrix value;
  model.Forward(obs, &mean, &value);
  for (size_t r = 0; r < obs.rows(); ++r) {
    double m = 0.0;
    double v = 0.0;
    model.ForwardRow(obs.Row(r), &m, &v);
    EXPECT_EQ(m, mean(r, 0)) << "row " << r;
    EXPECT_EQ(v, value(r, 0)) << "row " << r;
  }
}

TEST(NnFastPathTest, PnCacheStaysCoherentAcrossWeightChanges) {
  // ForwardRow caches the preference-sub-network features for a repeated weight
  // vector; the cache must be dropped whenever parameters change.
  MoccConfig config;
  Rng rng(29);
  PreferenceActorCritic model(config, &rng);
  std::vector<double> obs(config.ObsDim(), 0.2);
  obs[0] = 0.5;
  obs[1] = 0.3;
  obs[2] = 0.2;

  auto batched_mean = [&](PreferenceActorCritic* m) {
    Matrix x(1, obs.size());
    x.SetRow(0, obs);
    Matrix mean;
    Matrix value;
    m->Forward(x, &mean, &value);
    return mean(0, 0);
  };

  // Warm the cache, then hit it: still identical to the batched path.
  EXPECT_EQ(model.ActionMean(obs), batched_mean(&model));
  EXPECT_EQ(model.ActionMean(obs), batched_mean(&model));

  // In-place blend changes the PN weights; ForwardRow must follow.
  Rng rng2(31);
  PreferenceActorCritic other(config, &rng2);
  ASSERT_TRUE(BlendModel(&model, other, 0.5));
  EXPECT_EQ(model.ActionMean(obs), batched_mean(&model));

  // A training update (ZeroGrad + optimizer step) must also invalidate.
  PpoConfig ppo_config;
  ppo_config.rollout_steps = 64;
  ppo_config.minibatch_size = 32;
  PpoTrainer trainer(&model, ppo_config);
  CcEnv env(config.MakeEnvConfig(), 91);
  model.ActionMean(obs);  // warm the cache right before the update
  trainer.TrainIteration(&env);
  EXPECT_EQ(model.ActionMean(obs), batched_mean(&model));

  // Serialization round-trip: the loaded model recomputes features.
  std::vector<double> w2 = {0.1, 0.6, 0.3};
  std::copy(w2.begin(), w2.end(), obs.begin());
  EXPECT_EQ(model.ActionMean(obs), batched_mean(&model));
}

TEST(ParallelRolloutTest, PoolAndSerialCollectionAreBitIdentical) {
  auto make_trainer = [](MlpActorCritic* model) {
    PpoConfig config;
    config.seed = 5;
    config.rollout_steps = 128;
    return PpoTrainer(model, config);
  };
  Rng r1(3);
  Rng r2(3);
  MlpActorCritic m1(2, &r1);
  MlpActorCritic m2(2, &r2);
  PpoTrainer parallel = make_trainer(&m1);
  PpoTrainer serial = make_trainer(&m2);
  serial.set_parallel_collection(false);

  std::vector<std::unique_ptr<QuadEnv>> envs1;
  std::vector<std::unique_ptr<QuadEnv>> envs2;
  std::vector<Env*> raw1;
  std::vector<Env*> raw2;
  for (int i = 0; i < 4; ++i) {
    envs1.push_back(std::make_unique<QuadEnv>(1.5));
    envs2.push_back(std::make_unique<QuadEnv>(1.5));
    raw1.push_back(envs1.back().get());
    raw2.push_back(envs2.back().get());
  }
  const auto buffers_parallel = parallel.CollectRolloutsParallel(raw1, 64);
  const auto buffers_serial = serial.CollectRolloutsParallel(raw2, 64);
  ASSERT_EQ(buffers_parallel.size(), buffers_serial.size());
  for (size_t e = 0; e < buffers_parallel.size(); ++e) {
    const RolloutBuffer& bp = buffers_parallel[e];
    const RolloutBuffer& bs = buffers_serial[e];
    ASSERT_EQ(bp.size(), bs.size());
    for (size_t i = 0; i < bp.size(); ++i) {
      EXPECT_EQ(bp.transitions[i].action, bs.transitions[i].action);
      EXPECT_EQ(bp.transitions[i].log_prob, bs.transitions[i].log_prob);
      EXPECT_EQ(bp.transitions[i].reward, bs.transitions[i].reward);
      EXPECT_EQ(bp.transitions[i].value, bs.transitions[i].value);
      EXPECT_EQ(bp.advantages[i], bs.advantages[i]);
      EXPECT_EQ(bp.returns[i], bs.returns[i]);
    }
  }
}

TEST(ParallelRolloutTest, ParallelEnvTrainingIsReproducibleAcrossRuns) {
  // parallel_envs=4 two-phase training must reproduce the same reward curve (and
  // the same final policy) across runs under a fixed seed.
  OfflineTrainConfig config;
  config.seed = 11;
  config.bootstrap_iterations = 2;
  config.traversal_rounds = 1;
  config.parallel_envs = 4;
  config.mocc.landmark_step_divisor = 3;  // smallest landmark grid keeps the test fast

  auto run = [&config]() {
    Rng rng(config.seed);
    auto model = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model.get(), config);
    const OfflineTrainResult result = trainer.TrainTwoPhase();
    return std::make_pair(result.reward_curve, model);
  };
  const auto [curve1, model1] = run();
  const auto [curve2, model2] = run();
  ASSERT_EQ(curve1.size(), curve2.size());
  ASSERT_GT(curve1.size(), 0u);
  for (size_t i = 0; i < curve1.size(); ++i) {
    EXPECT_EQ(curve1[i], curve2[i]) << "iteration " << i;
  }
  std::vector<double> obs(config.mocc.ObsDim(), 0.1);
  EXPECT_EQ(model1->ActionMean(obs), model2->ActionMean(obs));
}

}  // namespace
}  // namespace mocc
