// Tests for the scenario subsystem: the ScenarioRegistry catalog, the shared-
// bottleneck MultiFlowCcEnv (observation layout, rewards, flow arrival/departure,
// fairness introspection, determinism), and scenario rollout collection through the
// PPO/ThreadPool engine (serial vs parallel bit-identity, scenario-sampled offline
// training).
#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/offline_trainer.h"
#include "src/core/preference_model.h"
#include "src/envs/multi_flow_cc_env.h"
#include "src/envs/scenario.h"
#include "src/rl/ppo.h"

namespace mocc {
namespace {

CcEnvConfig BaseEnvConfig() { return MoccConfig{}.MakeEnvConfig(); }

TEST(ScenarioRegistryTest, CatalogNamesAreResolvableAndDescribed) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  const std::vector<std::string> names = registry.Names();
  ASSERT_GE(names.size(), 8u);  // static, traces, arrival, many-flow, friendliness
  for (const std::string& name : names) {
    const Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name, name);
    EXPECT_FALSE(scenario->description.empty()) << name;
    std::string error;
    EXPECT_TRUE(registry.Resolve(name, &error).has_value()) << error;
  }
  // The catalog spans both kinds of workload.
  EXPECT_FALSE(registry.Find("static")->IsMultiFlow());
  EXPECT_TRUE(registry.Find("many-flow")->IsMultiFlow());
  EXPECT_TRUE(registry.Find("vs-cubic")->IsMultiFlow());
  // ... and the topology-general entries.
  ASSERT_NE(registry.Find("hetero-rtt"), nullptr);
  EXPECT_EQ(registry.Find("hetero-rtt")->agent_extra_delay_s.size(), 4u);
  ASSERT_NE(registry.Find("parking-lot"), nullptr);
  EXPECT_EQ(registry.Find("parking-lot")->topology.kind, TopologyKind::kParkingLot);
  ASSERT_NE(registry.Find("reverse-path"), nullptr);
  EXPECT_EQ(registry.Find("reverse-path")->topology.kind, TopologyKind::kReversePath);
}

TEST(ScenarioTopologyTest, HeteroRttAgentsSeeTheirOwnBaseRtt) {
  const Scenario* scenario = ScenarioRegistry::Global().Find("hetero-rtt");
  ASSERT_NE(scenario, nullptr);
  auto env = scenario->MakeMultiFlowEnv(BaseEnvConfig(), 5);
  env->SetObjective(BalancedObjective());
  env->Reset();
  // Base RTTs follow the configured 0/10/25/50 ms extra-delay ladder.
  const double base = env->current_link().BaseRttS();
  EXPECT_DOUBLE_EQ(env->AgentBaseRttS(0), base);
  EXPECT_DOUBLE_EQ(env->AgentBaseRttS(1), base + 0.020);
  EXPECT_DOUBLE_EQ(env->AgentBaseRttS(2), base + 0.050);
  EXPECT_DOUBLE_EQ(env->AgentBaseRttS(3), base + 0.100);
  // The synchronized step covers the slowest flow's propagation RTT.
  EXPECT_GE(env->step_duration_s(), env->AgentBaseRttS(3));
  // Flows with longer RTT really measure longer minimum RTTs on the wire.
  std::vector<double> actions(4, 0.0);
  for (int step = 0; step < 40; ++step) {
    env->Step(actions);
  }
  double prev_rtt = 0.0;
  for (int agent = 0; agent < 4; ++agent) {
    const MonitorReport& report = env->agent_last_report(agent);
    EXPECT_GT(report.min_rtt_s, prev_rtt) << "agent " << agent;
    prev_rtt = report.min_rtt_s;
  }
}

TEST(ScenarioTopologyTest, NewTopologyScenariosRunEpisodesEndToEnd) {
  for (const char* name : {"hetero-rtt", "parking-lot", "reverse-path"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    ASSERT_TRUE(scenario->IsMultiFlow()) << name;
    auto env = scenario->MakeMultiFlowEnv(BaseEnvConfig(), 17);
    env->SetObjective(BalancedObjective());
    std::vector<std::vector<double>> obs = env->Reset();
    ASSERT_EQ(obs.size(), static_cast<size_t>(scenario->num_agents)) << name;
    std::vector<double> actions(static_cast<size_t>(scenario->num_agents), 0.0);
    int64_t acked = 0;
    for (int step = 0; step < 60; ++step) {
      for (size_t i = 0; i < actions.size(); ++i) {
        actions[i] = (step % 3 == 0) ? 0.4 : -0.2;
      }
      const VectorStepResult r = env->Step(actions);
      ASSERT_EQ(r.rewards.size(), actions.size()) << name;
      for (double reward : r.rewards) {
        EXPECT_TRUE(std::isfinite(reward)) << name;
      }
    }
    for (double throughput : env->AgentAvgThroughputsBps(0.0, env->now_s())) {
      EXPECT_GE(throughput, 0.0) << name;
      acked += throughput > 0.0 ? 1 : 0;
    }
    EXPECT_GT(acked, 0) << name << ": no agent delivered anything";
    EXPECT_GT(env->LastStepJainIndex(), 0.0) << name;
  }
}

TEST(ScenarioTopologyTest, NewScenarioEpisodesAreBitIdenticalGivenSeed) {
  for (const char* name : {"hetero-rtt", "parking-lot", "reverse-path"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    auto run = [&](uint64_t seed) {
      auto env = scenario->MakeMultiFlowEnv(BaseEnvConfig(), seed);
      env->SetObjective(BalancedObjective());
      std::vector<double> digest;
      auto obs = env->Reset();
      std::vector<double> actions(static_cast<size_t>(scenario->num_agents), 0.0);
      for (int step = 0; step < 30; ++step) {
        for (size_t i = 0; i < actions.size(); ++i) {
          actions[i] = ((step + static_cast<int>(i)) % 2 == 0) ? 0.5 : -0.5;
        }
        const VectorStepResult r = env->Step(actions);
        digest.insert(digest.end(), r.rewards.begin(), r.rewards.end());
      }
      return digest;
    };
    const auto a = run(77);
    const auto b = run(77);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << name << " diverged at " << i;
    }
    EXPECT_NE(run(77), run(78)) << name;
  }
}

TEST(ScenarioTraceCacheTest, CachedGeneratorRunsOncePerEnv) {
  // cache_per_env: the generator runs exactly once, on the first Reset, and its
  // schedule is reused by every later episode of the same env.
  auto make_counting_generator = [](int* calls) {
    return [calls](const LinkParams& link, Rng*) {
      ++*calls;
      return BandwidthTrace::Oscillating(0.5 * link.bandwidth_bps, 1.5 * link.bandwidth_bps,
                                         5.0, 60.0);
    };
  };
  int cached_calls = 0;
  CcEnv cached_env(BaseEnvConfig(), /*seed=*/5);
  cached_env.SetTraceGenerator(make_counting_generator(&cached_calls),
                               /*cache_per_env=*/true);
  for (int episode = 0; episode < 3; ++episode) {
    cached_env.Reset();
  }
  EXPECT_EQ(cached_calls, 1);

  int fresh_calls = 0;
  CcEnv fresh_env(BaseEnvConfig(), /*seed=*/5);
  fresh_env.SetTraceGenerator(make_counting_generator(&fresh_calls));
  for (int episode = 0; episode < 3; ++episode) {
    fresh_env.Reset();
  }
  EXPECT_EQ(fresh_calls, 3);

  // Re-installing a generator drops the cached schedule.
  cached_env.SetTraceGenerator(make_counting_generator(&cached_calls),
                               /*cache_per_env=*/true);
  cached_env.Reset();
  EXPECT_EQ(cached_calls, 2);

  // Same contract on the multi-flow env.
  int multi_calls = 0;
  MultiFlowCcEnvConfig multi_config;
  multi_config.num_agents = 2;
  multi_config.trace_generator = make_counting_generator(&multi_calls);
  multi_config.cache_trace_per_env = true;
  MultiFlowCcEnv multi_env(multi_config, /*seed=*/6);
  for (int episode = 0; episode < 3; ++episode) {
    multi_env.Reset();
  }
  EXPECT_EQ(multi_calls, 1);
}

TEST(ScenarioTraceCacheTest, CellularScenarioCachesItsTracePerEnv) {
  // The catalog opts cellular in (its schedule expansion costs as much as an
  // episode — the BENCH_scenarios 0.43 M env-steps/s floor before caching), and
  // envs built from it still differ by seed on the first episode's draw.
  const Scenario* cellular = ScenarioRegistry::Global().Find("cellular");
  ASSERT_NE(cellular, nullptr);
  EXPECT_TRUE(cellular->cache_trace_per_env);
  EXPECT_FALSE(ScenarioRegistry::Global().Find("random-walk")->cache_trace_per_env);

  auto env_a = cellular->MakeSingleFlowEnv(BaseEnvConfig(), /*seed=*/1);
  auto env_b = cellular->MakeSingleFlowEnv(BaseEnvConfig(), /*seed=*/2);
  env_a->Reset();
  env_b->Reset();
  // Different seeds sample different links and phases, so the effective starting
  // bandwidths should differ (equality would mean the envs share one schedule).
  EXPECT_NE(env_a->current_bandwidth_bps(), env_b->current_bandwidth_bps());
}

TEST(ScenarioRegistryTest, UnknownNamesAndEmptyListsAreErrors) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  std::string error;
  EXPECT_FALSE(registry.Resolve("no-such-scenario", &error).has_value());
  EXPECT_NE(error.find("no-such-scenario"), std::string::npos);
  EXPECT_FALSE(registry.ResolveList("", &error).has_value());
  EXPECT_FALSE(registry.ResolveList("static,bogus", &error).has_value());
}

TEST(ScenarioRegistryTest, ResolveListSplitsOnCommas) {
  std::string error;
  const auto scenarios =
      ScenarioRegistry::Global().ResolveList("static,many-flow,oscillating", &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  ASSERT_EQ(scenarios->size(), 3u);
  EXPECT_EQ((*scenarios)[0].name, "static");
  EXPECT_EQ((*scenarios)[1].name, "many-flow");
  EXPECT_EQ((*scenarios)[2].name, "oscillating");
}

TEST(ScenarioRegistryTest, MahimahiPathResolvesToTraceDrivenScenario) {
  const std::string path = ::testing::TempDir() + "/scenario_mahimahi.txt";
  {
    std::ofstream out(path);
    for (int i = 0; i < 2000; ++i) {
      out << i << "\n";  // 1 pkt/ms = 12 Mbps for 2 s
    }
  }
  std::string error;
  const auto scenario = ScenarioRegistry::Global().Resolve("mahimahi:" + path, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_FALSE(scenario->IsMultiFlow());
  auto env = scenario->MakeSingleFlowEnv(BaseEnvConfig(), 7);
  env->Reset();
  EXPECT_NEAR(env->current_bandwidth_bps(), 1000.0 * kDefaultPacketSizeBits, 1e-6);
  std::remove(path.c_str());
  EXPECT_FALSE(
      ScenarioRegistry::Global().Resolve("mahimahi:/no/such/file", &error).has_value());
}

TEST(ScenarioTest, MakeBaselineCcKnowsTheCatalogSchemes) {
  for (const std::string scheme :
       {"cubic", "newreno", "vegas", "bbr", "copa", "allegro", "vivace"}) {
    EXPECT_NE(MakeBaselineCc(scheme), nullptr) << scheme;
  }
  EXPECT_EQ(MakeBaselineCc("quic-magic"), nullptr);
}

TEST(MultiFlowCcEnvTest, ObservationLayoutMatchesSingleFlowEnv) {
  MultiFlowCcEnvConfig config;
  config.num_agents = 3;
  config.history_len = 5;
  MultiFlowCcEnv env(config, 3);
  env.SetAgentObjective(1, WeightVector(0.7, 0.2, 0.1));
  const auto obs = env.Reset();
  ASSERT_EQ(obs.size(), 3u);
  for (const auto& o : obs) {
    ASSERT_EQ(o.size(), env.ObservationDim());
    ASSERT_EQ(o.size(), 3u + 15u);
  }
  EXPECT_DOUBLE_EQ(obs[1][0], 0.7);
  EXPECT_DOUBLE_EQ(obs[1][1], 0.2);
  EXPECT_DOUBLE_EQ(obs[1][2], 0.1);
}

TEST(MultiFlowCcEnvTest, RewardsStayInUnitIntervalAndEpisodeTerminates) {
  MultiFlowCcEnvConfig config;
  config.num_agents = 4;
  config.max_steps_per_episode = 60;
  MultiFlowCcEnv env(config, 5);
  env.SetObjective(BalancedObjective());
  env.Reset();
  std::vector<double> actions(4);
  int steps = 0;
  bool done = false;
  while (!done) {
    for (size_t i = 0; i < actions.size(); ++i) {
      actions[i] = (steps + static_cast<int>(i)) % 2 == 0 ? 1.0 : -1.0;
    }
    const VectorStepResult r = env.Step(actions);
    ASSERT_EQ(r.rewards.size(), 4u);
    ASSERT_EQ(r.observations.size(), 4u);
    for (double reward : r.rewards) {
      EXPECT_GE(reward, 0.0);
      EXPECT_LE(reward, 1.0);
    }
    done = r.done;
    ++steps;
    ASSERT_LE(steps, 60);
  }
  EXPECT_EQ(steps, 60);
}

TEST(MultiFlowCcEnvTest, StaggeredAgentsArriveOnSchedule) {
  MultiFlowCcEnvConfig config;
  config.num_agents = 3;
  config.agent_stagger_s = 1.0;
  config.fixed_link = LinkParams{};  // 12 Mbps, 20 ms, base RTT 40 ms
  config.step_min_duration_s = 0.05;
  MultiFlowCcEnv env(config, 9);
  env.SetObjective(BalancedObjective());
  env.Reset();  // clock is now at one step (50 ms)
  EXPECT_TRUE(env.AgentStarted(0));
  EXPECT_FALSE(env.AgentStarted(1));
  EXPECT_FALSE(env.AgentStarted(2));
  EXPECT_EQ(env.ActiveFlowCount(), 1);

  std::vector<double> actions(3, 0.0);
  // A not-yet-arrived agent earns exactly zero reward.
  const VectorStepResult early = env.Step(actions);
  EXPECT_GT(early.rewards[0], 0.0);
  EXPECT_DOUBLE_EQ(early.rewards[1], 0.0);

  while (env.now_s() < 2.5) {
    env.Step(actions);
  }
  EXPECT_TRUE(env.AgentStarted(1));
  EXPECT_TRUE(env.AgentStarted(2));
  EXPECT_EQ(env.ActiveFlowCount(), 3);
}

TEST(MultiFlowCcEnvTest, CompetitorScheduleDrivesActiveFlowCount) {
  MultiFlowCcEnvConfig config;
  config.num_agents = 2;
  config.fixed_link = LinkParams{};
  config.step_min_duration_s = 0.05;
  CompetitorFlow competitor;
  competitor.name = "cubic";
  competitor.make = [] { return MakeBaselineCc("cubic"); };
  competitor.start_time_s = 1.0;
  competitor.stop_time_s = 2.0;
  config.competitors.push_back(competitor);
  MultiFlowCcEnv env(config, 11);
  env.SetObjective(BalancedObjective());
  env.Reset();
  EXPECT_EQ(env.ActiveFlowCount(), 2);  // competitor not yet arrived
  std::vector<double> actions(2, 0.0);
  while (env.now_s() < 1.4) {
    env.Step(actions);
  }
  EXPECT_EQ(env.ActiveFlowCount(), 3);  // competitor sharing the bottleneck
  while (env.now_s() < 2.4) {
    env.Step(actions);
  }
  EXPECT_EQ(env.ActiveFlowCount(), 2);  // competitor departed
}

TEST(MultiFlowCcEnvTest, FairShareRewardIsAtLeastFullPipeReward) {
  // Same seed and actions; the only difference is the reward's capacity term
  // (bandwidth/N vs bandwidth), so fair-share rewards dominate pointwise.
  auto run = [](bool fair_share) {
    MultiFlowCcEnvConfig config;
    config.num_agents = 4;
    config.fair_share_reward = fair_share;
    MultiFlowCcEnv env(config, 13);
    env.SetObjective(ThroughputObjective());
    env.Reset();
    std::vector<double> rewards;
    std::vector<double> actions(4, 0.5);
    for (int i = 0; i < 50; ++i) {
      const VectorStepResult r = env.Step(actions);
      rewards.insert(rewards.end(), r.rewards.begin(), r.rewards.end());
    }
    return rewards;
  };
  const std::vector<double> fair = run(true);
  const std::vector<double> full = run(false);
  ASSERT_EQ(fair.size(), full.size());
  bool strictly_greater_somewhere = false;
  for (size_t i = 0; i < fair.size(); ++i) {
    EXPECT_GE(fair[i], full[i] - 1e-12);
    strictly_greater_somewhere = strictly_greater_somewhere || fair[i] > full[i];
  }
  EXPECT_TRUE(strictly_greater_somewhere);
}

TEST(MultiFlowCcEnvTest, JainIntrospectionIsInUnitIntervalAndSeesImbalance) {
  MultiFlowCcEnvConfig config;
  config.num_agents = 2;
  config.fixed_link = LinkParams{};
  MultiFlowCcEnv env(config, 17);
  env.SetObjective(BalancedObjective());
  env.Reset();
  // Drive the flows apart: agent 0 up, agent 1 down every step.
  std::vector<double> actions = {2.0, -2.0};
  for (int i = 0; i < 150; ++i) {
    env.Step(actions);
  }
  const double jain = env.JainIndex(env.now_s() / 2, env.now_s());
  EXPECT_GT(jain, 0.0);
  EXPECT_LE(jain, 1.0);
  EXPECT_LT(jain, 0.95);  // deliberately unfair rates must show up in the index
  EXPECT_GT(env.LastStepJainIndex(), 0.0);
  EXPECT_LE(env.LastStepJainIndex(), 1.0);
  const auto throughputs = env.AgentAvgThroughputsBps(env.now_s() / 2, env.now_s());
  ASSERT_EQ(throughputs.size(), 2u);
  EXPECT_GT(throughputs[0], throughputs[1]);
}

TEST(MultiFlowCcEnvTest, EpisodesAreBitIdenticalGivenSeed) {
  auto run = [](uint64_t seed) {
    MultiFlowCcEnvConfig config;
    config.num_agents = 3;
    config.max_steps_per_episode = 40;
    CompetitorFlow competitor;
    competitor.name = "bbr";
    competitor.make = [] { return MakeBaselineCc("bbr"); };
    config.competitors.push_back(competitor);
    MultiFlowCcEnv env(config, seed);
    env.SetObjective(BalancedObjective());
    std::vector<double> all;
    auto obs = env.Reset();
    for (const auto& o : obs) {
      all.insert(all.end(), o.begin(), o.end());
    }
    std::vector<double> actions(3);
    for (int step = 0; step < 40; ++step) {
      for (int i = 0; i < 3; ++i) {
        actions[static_cast<size_t>(i)] = ((step + i) % 2 == 0) ? 0.8 : -0.6;
      }
      const VectorStepResult r = env.Step(actions);
      all.insert(all.end(), r.rewards.begin(), r.rewards.end());
      for (const auto& o : r.observations) {
        all.insert(all.end(), o.begin(), o.end());
      }
    }
    return all;
  };
  const std::vector<double> a = run(31);
  const std::vector<double> b = run(31);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "diverged at element " << i;
  }
  EXPECT_NE(run(31), run(32));
}

TEST(ScenarioRolloutTest, VectorRolloutProducesPerAgentTrajectories) {
  MoccConfig config;
  Rng rng(3);
  PreferenceActorCritic model(config, &rng);
  PpoTrainer trainer(&model, config.MakePpoConfig(5));
  const Scenario* scenario = ScenarioRegistry::Global().Find("many-flow");
  ASSERT_NE(scenario, nullptr);
  auto env = scenario->MakeMultiFlowEnv(BaseEnvConfig(), 21);
  env->SetObjective(BalancedObjective());
  const auto buffers = trainer.CollectVectorRollout(env.get(), 48);
  ASSERT_EQ(buffers.size(), 8u);
  for (const RolloutBuffer& buffer : buffers) {
    ASSERT_EQ(buffer.size(), 48u);
    ASSERT_EQ(buffer.advantages.size(), 48u);
    ASSERT_EQ(buffer.returns.size(), 48u);
    for (const Transition& t : buffer.transitions) {
      EXPECT_EQ(t.observation.size(), env->ObservationDim());
      EXPECT_TRUE(std::isfinite(t.reward));
    }
  }
}

TEST(ScenarioRolloutTest, StaggeredArrivalsProduceNoPhantomTransitions) {
  // Agents that have not arrived yet must contribute no transitions: their buffers
  // start at the arrival step instead of carrying placeholder zero-reward data.
  MoccConfig config;
  Rng rng(11);
  PreferenceActorCritic model(config, &rng);
  PpoTrainer trainer(&model, config.MakePpoConfig(13));
  MultiFlowCcEnvConfig env_config;
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;  // base RTT 40 ms => 25 steps/s
  env_config.num_agents = 3;
  env_config.fixed_link = link;
  env_config.agent_stagger_s = 1.0;
  MultiFlowCcEnv env(env_config, 23);
  env.SetObjective(BalancedObjective());
  const auto buffers = trainer.CollectVectorRollout(&env, 120);
  ASSERT_EQ(buffers.size(), 3u);
  EXPECT_EQ(buffers[0].size(), 120u);
  EXPECT_LT(buffers[1].size(), buffers[0].size());
  EXPECT_LT(buffers[2].size(), buffers[1].size());
  EXPECT_GT(buffers[2].size(), 0u);
  for (const RolloutBuffer& buffer : buffers) {
    // Pre-arrival placeholder transitions would show up as long runs of exactly-zero
    // reward; post-arrival MIs essentially always earn some (loss/latency) reward.
    int zero_reward = 0;
    for (const Transition& t : buffer.transitions) {
      EXPECT_TRUE(std::isfinite(t.raw_reward));
      zero_reward += t.raw_reward == 0.0 ? 1 : 0;
    }
    EXPECT_LE(zero_reward, 2);
  }
}

// The acceptance-criterion determinism property: scenario rollouts (single-flow and
// shared-bottleneck mixed in one collection) are bit-identical whether the per-source
// tasks run serially on the calling thread or on the shared ThreadPool.
TEST(ScenarioRolloutTest, MixedScenarioCollectionSerialVsPoolBitIdentical) {
  auto collect = [](bool parallel) {
    MoccConfig mocc;
    Rng rng(7);
    PreferenceActorCritic model(mocc, &rng);
    PpoConfig ppo_config = mocc.MakePpoConfig(9);
    PpoTrainer trainer(&model, ppo_config);
    trainer.set_parallel_collection(parallel);

    std::string error;
    const auto scenarios = ScenarioRegistry::Global().ResolveList(
        "static,many-flow,vs-cubic,random-walk", &error);
    EXPECT_TRUE(scenarios.has_value()) << error;
    std::vector<std::unique_ptr<CcEnv>> single_envs;
    std::vector<std::unique_ptr<MultiFlowCcEnv>> multi_envs;
    std::vector<PpoTrainer::RolloutSource> sources;
    uint64_t seed = 100;
    for (const Scenario& scenario : *scenarios) {
      PpoTrainer::RolloutSource source;
      if (scenario.IsMultiFlow()) {
        multi_envs.push_back(scenario.MakeMultiFlowEnv(BaseEnvConfig(), seed));
        multi_envs.back()->SetObjective(BalancedObjective());
        source.vec = multi_envs.back().get();
      } else {
        single_envs.push_back(scenario.MakeSingleFlowEnv(BaseEnvConfig(), seed));
        single_envs.back()->SetObjective(BalancedObjective());
        source.env = single_envs.back().get();
      }
      sources.push_back(source);
      ++seed;
    }
    return trainer.CollectSourcesParallel(sources, 64);
  };
  const auto pool = collect(true);
  const auto serial = collect(false);
  ASSERT_EQ(pool.size(), serial.size());
  ASSERT_EQ(pool.size(), 1u + 8u + 2u + 1u);  // static + many-flow + vs-cubic + walk
  for (size_t b = 0; b < pool.size(); ++b) {
    ASSERT_EQ(pool[b].size(), serial[b].size());
    for (size_t i = 0; i < pool[b].size(); ++i) {
      ASSERT_EQ(pool[b].transitions[i].action, serial[b].transitions[i].action);
      ASSERT_EQ(pool[b].transitions[i].log_prob, serial[b].transitions[i].log_prob);
      ASSERT_EQ(pool[b].transitions[i].reward, serial[b].transitions[i].reward);
      ASSERT_EQ(pool[b].transitions[i].value, serial[b].transitions[i].value);
      ASSERT_EQ(pool[b].advantages[i], serial[b].advantages[i]);
      ASSERT_EQ(pool[b].returns[i], serial[b].returns[i]);
    }
  }
}

// Same determinism contract for the topology-general scenarios: parking-lot,
// reverse-path and hetero-rtt rollouts are bit-identical whether collected
// serially or on the shared ThreadPool.
TEST(ScenarioRolloutTest, TopologyScenarioCollectionSerialVsPoolBitIdentical) {
  auto collect = [](bool parallel) {
    MoccConfig mocc;
    Rng rng(19);
    PreferenceActorCritic model(mocc, &rng);
    PpoTrainer trainer(&model, mocc.MakePpoConfig(23));
    trainer.set_parallel_collection(parallel);

    std::string error;
    const auto scenarios = ScenarioRegistry::Global().ResolveList(
        "hetero-rtt,parking-lot,reverse-path", &error);
    EXPECT_TRUE(scenarios.has_value()) << error;
    std::vector<std::unique_ptr<MultiFlowCcEnv>> envs;
    std::vector<PpoTrainer::RolloutSource> sources;
    uint64_t seed = 200;
    for (const Scenario& scenario : *scenarios) {
      envs.push_back(scenario.MakeMultiFlowEnv(BaseEnvConfig(), seed++));
      envs.back()->SetObjective(BalancedObjective());
      PpoTrainer::RolloutSource source;
      source.vec = envs.back().get();
      sources.push_back(source);
    }
    return trainer.CollectSourcesParallel(sources, 48);
  };
  const auto pool = collect(true);
  const auto serial = collect(false);
  ASSERT_EQ(pool.size(), serial.size());
  ASSERT_EQ(pool.size(), 4u + 3u + 2u);  // hetero-rtt + parking-lot + reverse-path
  for (size_t b = 0; b < pool.size(); ++b) {
    ASSERT_EQ(pool[b].size(), serial[b].size());
    for (size_t i = 0; i < pool[b].size(); ++i) {
      ASSERT_EQ(pool[b].transitions[i].action, serial[b].transitions[i].action);
      ASSERT_EQ(pool[b].transitions[i].reward, serial[b].transitions[i].reward);
      ASSERT_EQ(pool[b].advantages[i], serial[b].advantages[i]);
      ASSERT_EQ(pool[b].returns[i], serial[b].returns[i]);
    }
  }
}

TEST(ScenarioTrainingTest, OfflineTrainerRunsTopologyScenariosEndToEnd) {
  // The acceptance path for the new catalog entries: OfflineTrainer --scenario
  // hetero-rtt,parking-lot,reverse-path must train (small budget) without NaNs,
  // proving the whole trainer->env->topology->event-engine stack end to end.
  OfflineTrainConfig config;
  config.seed = 47;
  config.bootstrap_iterations = 1;
  config.traversal_rounds = 0;
  config.parallel_envs = 3;
  config.mocc.landmark_step_divisor = 3;
  std::string error;
  const auto scenarios = ScenarioRegistry::Global().ResolveList(
      "hetero-rtt,parking-lot,reverse-path", &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  config.scenarios = *scenarios;

  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_EQ(result.total_iterations, 1);
  for (double reward : result.reward_curve) {
    EXPECT_TRUE(std::isfinite(reward));
  }
}

TEST(ScenarioTrainingTest, SingleSlotStillTrainsEveryObjectiveViaWaves) {
  // One slot, three bootstrap objectives: collection must run in waves so no
  // objective is dropped (the legacy single-env path's loop-over-objectives
  // semantics), and the scenario list must expand the slot allocation.
  OfflineTrainConfig config;
  config.seed = 29;
  config.bootstrap_iterations = 2;
  config.traversal_rounds = 0;
  config.parallel_envs = 1;
  config.mocc.landmark_step_divisor = 3;
  std::string error;
  config.scenarios = *ScenarioRegistry::Global().ResolveList("static", &error);
  ASSERT_EQ(config.bootstrap_objectives.size(), 3u);

  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  EXPECT_EQ(trainer.slot_count(), 1);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_EQ(result.total_iterations, 2);
  for (double reward : result.reward_curve) {
    EXPECT_TRUE(std::isfinite(reward));
  }

  // A scenario list longer than parallel_envs expands the slot allocation.
  config.scenarios =
      *ScenarioRegistry::Global().ResolveList("static,oscillating,vs-cubic", &error);
  Rng rng2(config.seed);
  PreferenceActorCritic model2(config.mocc, &rng2);
  OfflineTrainer trainer2(&model2, config);
  EXPECT_EQ(trainer2.slot_count(), 3);
}

TEST(HeterogeneousObjectiveTest, CatalogCarriesObjectivePlans) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  const Scenario* mixed = registry.Find("mixed-objective");
  ASSERT_NE(mixed, nullptr);
  EXPECT_TRUE(mixed->IsMultiFlow());
  EXPECT_TRUE(mixed->HasObjectivePlan());
  EXPECT_EQ(mixed->objectives.fixed.size(), 2u);
  EXPECT_TRUE(mixed->objectives.OverridesEpisodeWeights());

  const Scenario* sampled = registry.Find("sampled-objective");
  ASSERT_NE(sampled, nullptr);
  EXPECT_TRUE(sampled->objectives.sample_per_episode);
  EXPECT_TRUE(sampled->objectives.OverridesEpisodeWeights());

  const Scenario* sw = registry.Find("preference-switch");
  ASSERT_NE(sw, nullptr);
  ASSERT_EQ(sw->objectives.switches.size(), 1u);
  EXPECT_DOUBLE_EQ(sw->objectives.switches[0].time_s, 8.0);
  EXPECT_LT(sw->objectives.switches[0].agent, 0);  // every agent
  EXPECT_TRUE(sw->objectives.switches[0].to.AlmostEquals(LatencyObjective()));

  const Scenario* rtt = registry.Find("mixed-objective-rtt");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->agent_extra_delay_s.size(), 4u);
  EXPECT_EQ(rtt->objectives.fixed.size(), 4u);

  const Scenario* lot = registry.Find("mixed-objective-parking-lot");
  ASSERT_NE(lot, nullptr);
  EXPECT_EQ(lot->topology.kind, TopologyKind::kParkingLot);
  EXPECT_EQ(lot->objectives.fixed.size(), 3u);

  // Plan-less scenarios keep reporting no plan (the homogeneous default).
  EXPECT_FALSE(registry.Find("many-flow")->HasObjectivePlan());
}

TEST(HeterogeneousObjectiveTest, FixedMixesCycleOverAgentsAndOverrideSetObjective) {
  const Scenario* mixed = ScenarioRegistry::Global().Find("mixed-objective");
  ASSERT_NE(mixed, nullptr);
  auto env = mixed->MakeMultiFlowEnv(BaseEnvConfig(), 33);
  // The scenario owns its objectives: an external SetObjective call is overridden
  // by the plan on the next Reset.
  env->SetObjective(BalancedObjective());
  const auto obs = env->Reset();
  const WeightVector thr = ThroughputObjective().Sanitized();
  const WeightVector lat = LatencyObjective().Sanitized();
  ASSERT_EQ(obs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const WeightVector& expected = (i % 2 == 0) ? thr : lat;
    EXPECT_TRUE(env->agent_objective(i).AlmostEquals(expected)) << "agent " << i;
    // The preference prefix in the observation is the per-agent weight vector.
    EXPECT_DOUBLE_EQ(obs[static_cast<size_t>(i)][0], expected.thr) << "agent " << i;
    EXPECT_DOUBLE_EQ(obs[static_cast<size_t>(i)][1], expected.lat) << "agent " << i;
    EXPECT_DOUBLE_EQ(obs[static_cast<size_t>(i)][2], expected.loss) << "agent " << i;
  }
}

TEST(HeterogeneousObjectiveTest, PerEpisodeSamplingIsSeedReproducibleAndFloored) {
  const Scenario* sampled = ScenarioRegistry::Global().Find("sampled-objective");
  ASSERT_NE(sampled, nullptr);
  auto weights_of = [](MultiFlowCcEnv* env) {
    std::vector<WeightVector> weights;
    for (int i = 0; i < env->NumAgents(); ++i) {
      weights.push_back(env->agent_objective(i));
    }
    return weights;
  };
  auto env_a = sampled->MakeMultiFlowEnv(BaseEnvConfig(), 71);
  auto env_b = sampled->MakeMultiFlowEnv(BaseEnvConfig(), 71);
  auto env_c = sampled->MakeMultiFlowEnv(BaseEnvConfig(), 72);
  env_a->Reset();
  env_b->Reset();
  env_c->Reset();
  const auto first_a = weights_of(env_a.get());
  const auto first_b = weights_of(env_b.get());
  const auto first_c = weights_of(env_c.get());
  ASSERT_EQ(first_a.size(), 3u);
  bool all_equal_c = true;
  for (size_t i = 0; i < first_a.size(); ++i) {
    // Same seed -> bit-identical sampled objectives; they are real simplex points
    // inside the trained preference region.
    EXPECT_EQ(first_a[i].thr, first_b[i].thr) << i;
    EXPECT_EQ(first_a[i].lat, first_b[i].lat) << i;
    EXPECT_EQ(first_a[i].loss, first_b[i].loss) << i;
    EXPECT_TRUE(first_a[i].IsWithinFloor()) << first_a[i];
    all_equal_c = all_equal_c && first_a[i].AlmostEquals(first_c[i]);
  }
  EXPECT_FALSE(all_equal_c) << "different seeds must sample different objectives";
  // Every episode resamples (fresh preferences, still from the env's own stream).
  env_a->Reset();
  const auto second_a = weights_of(env_a.get());
  bool resampled = false;
  for (size_t i = 0; i < first_a.size(); ++i) {
    resampled = resampled || !first_a[i].AlmostEquals(second_a[i]);
  }
  EXPECT_TRUE(resampled) << "second episode must draw fresh objectives";
}

TEST(HeterogeneousObjectiveTest, ScheduledSwitchFlipsRewardWeightsAndObsPrefix) {
  const Scenario* scenario = ScenarioRegistry::Global().Find("preference-switch");
  ASSERT_NE(scenario, nullptr);
  auto env = scenario->MakeMultiFlowEnv(BaseEnvConfig(), 41);
  env->Reset();
  const WeightVector thr = ThroughputObjective().Sanitized();
  const WeightVector lat = LatencyObjective().Sanitized();
  const double switch_time_s = scenario->objectives.switches[0].time_s;
  std::vector<double> actions(2, 0.0);
  bool saw_pre_switch_step = false;
  while (env->now_s() < switch_time_s + 5.0 * env->step_duration_s()) {
    const bool pre_switch = env->now_s() < switch_time_s;
    if (pre_switch) {
      saw_pre_switch_step = true;
      EXPECT_EQ(env->applied_switch_count(), 0);
      EXPECT_TRUE(env->agent_objective(0).AlmostEquals(thr));
    }
    const VectorStepResult r = env->Step(actions);
    if (!pre_switch) {
      // The step whose monitor interval starts at/after the scheduled time — and
      // every later one — rewards and observes under the new preference.
      EXPECT_EQ(env->applied_switch_count(), 1);
      for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(env->agent_objective(i).AlmostEquals(lat)) << "agent " << i;
        EXPECT_DOUBLE_EQ(r.observations[static_cast<size_t>(i)][0], lat.thr);
        EXPECT_DOUBLE_EQ(r.observations[static_cast<size_t>(i)][1], lat.lat);
      }
    }
  }
  EXPECT_TRUE(saw_pre_switch_step);
  // The switch does not leak across episodes: Reset rewinds to the plan's base.
  env->Reset();
  EXPECT_EQ(env->applied_switch_count(), 0);
  EXPECT_TRUE(env->agent_objective(0).AlmostEquals(thr));
  EXPECT_TRUE(env->agent_objective(1).AlmostEquals(thr));
}

// The heterogeneous-objective determinism property: mixed-objective, scheduled-
// switch and per-episode-sampled scenarios collect bit-identically whether the
// per-source tasks run serially on the calling thread or on the shared ThreadPool
// (per-episode sampling draws from each env's own Rng, so scheduling cannot
// reorder the draws).
TEST(HeterogeneousObjectiveTest, MixedObjectiveCollectionSerialVsPoolBitIdentical) {
  auto collect = [](bool parallel) {
    MoccConfig mocc;
    Rng rng(29);
    PreferenceActorCritic model(mocc, &rng);
    PpoTrainer trainer(&model, mocc.MakePpoConfig(31));
    trainer.set_parallel_collection(parallel);

    std::string error;
    const auto scenarios = ScenarioRegistry::Global().ResolveList(
        "mixed-objective,preference-switch,sampled-objective", &error);
    EXPECT_TRUE(scenarios.has_value()) << error;
    std::vector<std::unique_ptr<MultiFlowCcEnv>> envs;
    std::vector<PpoTrainer::RolloutSource> sources;
    uint64_t seed = 300;
    for (const Scenario& scenario : *scenarios) {
      envs.push_back(scenario.MakeMultiFlowEnv(BaseEnvConfig(), seed++));
      PpoTrainer::RolloutSource source;
      source.vec = envs.back().get();
      sources.push_back(source);
    }
    return trainer.CollectSourcesParallel(sources, 48);
  };
  const auto pool = collect(true);
  const auto serial = collect(false);
  ASSERT_EQ(pool.size(), serial.size());
  ASSERT_EQ(pool.size(), 4u + 2u + 3u);  // mixed + switch + sampled
  for (size_t b = 0; b < pool.size(); ++b) {
    ASSERT_EQ(pool[b].size(), serial[b].size());
    for (size_t i = 0; i < pool[b].size(); ++i) {
      ASSERT_EQ(pool[b].transitions[i].action, serial[b].transitions[i].action);
      ASSERT_EQ(pool[b].transitions[i].reward, serial[b].transitions[i].reward);
      ASSERT_EQ(pool[b].advantages[i], serial[b].advantages[i]);
      ASSERT_EQ(pool[b].returns[i], serial[b].returns[i]);
      // The collected observations carry per-agent preference prefixes.
      ASSERT_EQ(pool[b].transitions[i].observation[0],
                serial[b].transitions[i].observation[0]);
    }
  }
}

TEST(HeterogeneousObjectiveTest, ObjectivePlanEnvsKeepDistinctPrefixesInRollouts) {
  // The trajectories feeding the joint PPO update really are heterogeneous: the
  // mixed-objective env's buffers carry each agent's own weight prefix.
  MoccConfig mocc;
  Rng rng(37);
  PreferenceActorCritic model(mocc, &rng);
  PpoTrainer trainer(&model, mocc.MakePpoConfig(39));
  const Scenario* mixed = ScenarioRegistry::Global().Find("mixed-objective");
  ASSERT_NE(mixed, nullptr);
  auto env = mixed->MakeMultiFlowEnv(BaseEnvConfig(), 43);
  const auto buffers = trainer.CollectVectorRollout(env.get(), 32);
  ASSERT_EQ(buffers.size(), 4u);
  const WeightVector thr = ThroughputObjective().Sanitized();
  const WeightVector lat = LatencyObjective().Sanitized();
  for (int i = 0; i < 4; ++i) {
    const WeightVector& expected = (i % 2 == 0) ? thr : lat;
    for (const Transition& t : buffers[static_cast<size_t>(i)].transitions) {
      ASSERT_DOUBLE_EQ(t.observation[0], expected.thr) << "agent " << i;
      ASSERT_DOUBLE_EQ(t.observation[1], expected.lat) << "agent " << i;
    }
  }
}

TEST(HeterogeneousObjectiveTest, OfflineTrainerRunsMixedObjectiveScenarios) {
  // The acceptance path: OfflineTrainer --scenario mixed-objective trains (small
  // budget), reproducibly, with the plan's heterogeneous weights intact — the
  // trainer's per-iteration objective assignment must not clobber the plan.
  OfflineTrainConfig config;
  config.seed = 61;
  config.bootstrap_iterations = 2;
  config.traversal_rounds = 0;
  config.parallel_envs = 2;
  config.mocc.landmark_step_divisor = 3;
  std::string error;
  const auto scenarios = ScenarioRegistry::Global().ResolveList(
      "mixed-objective,preference-switch", &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  config.scenarios = *scenarios;

  auto run = [&config] {
    Rng rng(config.seed);
    auto model = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model.get(), config);
    const OfflineTrainResult result = trainer.TrainTwoPhase();
    return std::make_pair(result, model);
  };
  const auto [result, model] = run();
  EXPECT_EQ(result.total_iterations, 2);
  for (double reward : result.reward_curve) {
    EXPECT_TRUE(std::isfinite(reward));
    EXPECT_GE(reward, 0.0);
    EXPECT_LE(reward, 1.0);
  }
  const auto [result2, model2] = run();
  ASSERT_EQ(result.reward_curve.size(), result2.reward_curve.size());
  for (size_t i = 0; i < result.reward_curve.size(); ++i) {
    EXPECT_EQ(result.reward_curve[i], result2.reward_curve[i]) << "iteration " << i;
  }
  std::vector<double> obs(config.mocc.ObsDim(), 0.2);
  EXPECT_EQ(model->ActionMean(obs), model2->ActionMean(obs));
}

TEST(ScenarioTrainingTest, OfflineTrainerRunsScenarioSampledIterations) {
  OfflineTrainConfig config;
  config.seed = 19;
  config.bootstrap_iterations = 2;
  config.traversal_rounds = 1;
  config.traversal_mix_objectives = 1;
  config.parallel_envs = 4;
  config.mocc.landmark_step_divisor = 3;  // smallest grid keeps the test fast
  std::string error;
  const auto scenarios =
      ScenarioRegistry::Global().ResolveList("static,flow-arrival,vs-cubic", &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  config.scenarios = *scenarios;

  auto run = [&config] {
    Rng rng(config.seed);
    auto model = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model.get(), config);
    const OfflineTrainResult result = trainer.TrainTwoPhase();
    return std::make_pair(result, model);
  };
  const auto [result, model] = run();
  EXPECT_EQ(result.total_iterations, config.PlannedIterations());
  ASSERT_EQ(result.reward_curve.size(), static_cast<size_t>(result.total_iterations));
  for (double reward : result.reward_curve) {
    EXPECT_TRUE(std::isfinite(reward));
    EXPECT_GE(reward, 0.0);
    EXPECT_LE(reward, 1.0);
  }
  // Scenario training is reproducible bit-for-bit under a fixed seed.
  const auto [result2, model2] = run();
  ASSERT_EQ(result.reward_curve.size(), result2.reward_curve.size());
  for (size_t i = 0; i < result.reward_curve.size(); ++i) {
    EXPECT_EQ(result.reward_curve[i], result2.reward_curve[i]) << "iteration " << i;
  }
  std::vector<double> obs(config.mocc.ObsDim(), 0.2);
  EXPECT_EQ(model->ActionMean(obs), model2->ActionMean(obs));
}

}  // namespace
}  // namespace mocc
