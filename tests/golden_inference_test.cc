// Golden-file regression test for deployment inference.
//
// tests/data/ holds a small fixed-seed Figure-3 model (golden_model.bin, the
// standard MOCCMODL container) plus the expected ForwardRow outputs of both
// precision paths on a fixed observation set (golden_forward.txt, hex floats).
// Future kernel refactors — retiling RowMatVecBias, a new FastTanh polynomial,
// SIMD intrinsics — are diffable against these committed values: a change that
// moves outputs past the tolerances below is a behavioural change, not a
// refactor, and must regenerate the goldens deliberately.
//
// Tolerances, not bit-equality: CI builds this suite with gcc, clang and
// ASan/UBSan at -DMOCC_NATIVE_ARCH=OFF while developers run -march=native, so
// FMA contraction legitimately differs between binaries. The double path is
// allowed 1e-9 absolute drift (vs ~1e-13 expected from contraction alone), the
// float32 path 1e-4 (vs ~1e-5 expected); both margins are far below any
// control-relevant difference and far above compiler noise.
//
// Regenerate with: MOCC_REGEN_GOLDENS=1 ./golden_inference_test
// (writes into the source tree's tests/data/; commit the result).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/rl/inference_policy.h"

#ifndef MOCC_TEST_DATA_DIR
#define MOCC_TEST_DATA_DIR "tests/data"
#endif

namespace mocc {
namespace {

constexpr uint64_t kModelSeed = 20260731;
constexpr uint64_t kObsSeed = 123;
constexpr int kNumObservations = 16;
constexpr double kDoubleTol = 1e-9;
constexpr double kFloat32Tol = 1e-4;
// The int8 path is exact integer arithmetic plus a fixed sequence of explicit
// std::fma / correctly rounded single ops (see src/nn/simd/dispatch.h), so the
// committed values reproduce bit-for-bit on every tier of one binary —
// including under MOCC_FORCE_SCALAR=1, which is how CI proves the scalar
// fallback computes the SAME quantized network. The tolerance only covers
// cross-compiler libm drift in the float head layer.
constexpr double kInt8Tol = 1e-6;
// How far quantization itself may move the action mean / value vs the double
// reference on these synthetic rows. Matches the trained-checkpoint drift caps
// in rl_test.cc.
constexpr double kInt8VsDoubleTol = 1e-1;

std::string DataPath(const std::string& file) {
  return std::string(MOCC_TEST_DATA_DIR) + "/" + file;
}

// The fixed observation set: a spread of weight vectors (normalized prefix) over
// histories drawn uniform in [-1, 1]. Deterministic given kObsSeed.
std::vector<std::vector<double>> GoldenObservations(const MoccConfig& config) {
  Rng rng(kObsSeed);
  std::vector<std::vector<double>> observations;
  for (int i = 0; i < kNumObservations; ++i) {
    std::vector<double> obs(config.ObsDim());
    const double thr = rng.Uniform(0.0, 1.0);
    const double lat = rng.Uniform(0.0, 1.0 - thr);
    obs[0] = thr;
    obs[1] = lat;
    obs[2] = 1.0 - thr - lat;
    for (size_t c = 3; c < obs.size(); ++c) {
      obs[c] = rng.Uniform(-1.0, 1.0);
    }
    observations.push_back(std::move(obs));
  }
  return observations;
}

struct GoldenRow {
  double mean_d, value_d, mean_f, value_f;
};

std::vector<GoldenRow> ComputeRows(PreferenceActorCritic* model) {
  std::unique_ptr<InferencePolicy> policy = model->MakeFloat32Policy();
  std::vector<GoldenRow> rows;
  for (const auto& obs : GoldenObservations(model->config())) {
    GoldenRow row;
    model->ForwardRow(obs, &row.mean_d, &row.value_d);
    policy->ForwardRow(obs, &row.mean_f, &row.value_f);
    rows.push_back(row);
  }
  return rows;
}

bool WriteGoldenOutputs(const std::string& path, const std::vector<GoldenRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "# ForwardRow goldens: index mean_double value_double mean_f32 "
                  "value_f32 (hex floats)\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%zu %a %a %a %a\n", i, rows[i].mean_d, rows[i].value_d,
                 rows[i].mean_f, rows[i].value_f);
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

bool ReadGoldenOutputs(const std::string& path, std::vector<GoldenRow>* rows) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char header[256];
  if (std::fgets(header, sizeof(header), f) == nullptr) {
    std::fclose(f);
    return false;
  }
  rows->clear();
  size_t index = 0;
  GoldenRow row;
  while (std::fscanf(f, "%zu %la %la %la %la", &index, &row.mean_d, &row.value_d,
                     &row.mean_f, &row.value_f) == 5) {
    rows->push_back(row);
  }
  std::fclose(f);
  return !rows->empty();
}

// The int8 rows are kept in a separate file (golden_forward_int8.txt) so the
// float goldens stay byte-stable across quantization-scheme revisions.
struct Int8Row {
  double mean_q, value_q;
};

std::vector<Int8Row> ComputeInt8Rows(PreferenceActorCritic* model) {
  std::unique_ptr<InferencePolicy> policy = model->MakeInt8Policy();
  std::vector<Int8Row> rows;
  if (policy == nullptr) {
    return rows;
  }
  for (const auto& obs : GoldenObservations(model->config())) {
    Int8Row row;
    policy->ForwardRow(obs, &row.mean_q, &row.value_q);
    rows.push_back(row);
  }
  return rows;
}

bool WriteInt8Outputs(const std::string& path, const std::vector<Int8Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "# Int8 ForwardRow goldens: index mean_int8 value_int8 "
                  "(hex floats)\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%zu %a %a\n", i, rows[i].mean_q, rows[i].value_q);
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

bool ReadInt8Outputs(const std::string& path, std::vector<Int8Row>* rows) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char header[256];
  if (std::fgets(header, sizeof(header), f) == nullptr) {
    std::fclose(f);
    return false;
  }
  rows->clear();
  size_t index = 0;
  Int8Row row;
  while (std::fscanf(f, "%zu %la %la", &index, &row.mean_q, &row.value_q) == 3) {
    rows->push_back(row);
  }
  std::fclose(f);
  return !rows->empty();
}

TEST(GoldenInferenceTest, ForwardRowMatchesCommittedGoldens) {
  MoccConfig config;
  const std::string model_path = DataPath("golden_model.bin");
  const std::string outputs_path = DataPath("golden_forward.txt");

  if (std::getenv("MOCC_REGEN_GOLDENS") != nullptr) {
    Rng rng(kModelSeed);
    PreferenceActorCritic model(config, &rng);
    ASSERT_TRUE(model.SaveToFile(model_path)) << model_path;
    ASSERT_TRUE(WriteGoldenOutputs(outputs_path, ComputeRows(&model))) << outputs_path;
    ASSERT_TRUE(WriteInt8Outputs(DataPath("golden_forward_int8.txt"),
                                 ComputeInt8Rows(&model)));
    GTEST_SKIP() << "regenerated goldens in " << MOCC_TEST_DATA_DIR;
  }

  // Loading the committed file also pins the MOCCMODL serialization format.
  std::shared_ptr<PreferenceActorCritic> model =
      PreferenceActorCritic::LoadFromFile(model_path, config);
  ASSERT_NE(model, nullptr) << "cannot load " << model_path
                            << " (regenerate with MOCC_REGEN_GOLDENS=1)";
  std::vector<GoldenRow> expected;
  ASSERT_TRUE(ReadGoldenOutputs(outputs_path, &expected)) << outputs_path;
  ASSERT_EQ(expected.size(), static_cast<size_t>(kNumObservations));

  const std::vector<GoldenRow> actual = ComputeRows(model.get());
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i].mean_d, expected[i].mean_d, kDoubleTol) << "obs " << i;
    EXPECT_NEAR(actual[i].value_d, expected[i].value_d, kDoubleTol) << "obs " << i;
    EXPECT_NEAR(actual[i].mean_f, expected[i].mean_f, kFloat32Tol) << "obs " << i;
    EXPECT_NEAR(actual[i].value_f, expected[i].value_f, kFloat32Tol) << "obs " << i;
    // The committed goldens themselves certify the two precisions agree.
    EXPECT_NEAR(expected[i].mean_f, expected[i].mean_d, 1e-3) << "obs " << i;
  }
}

// The int8 deployment path against its committed goldens. Registered twice in
// ctest: once normally (the host's best tier, AVX2 on CI) and once under
// MOCC_FORCE_SCALAR=1 (golden_inference_test_scalar) — both runs must land on
// the same committed values, which is the end-to-end form of the scalar<->SIMD
// bit-identity contract.
TEST(GoldenInferenceTest, Int8ForwardRowMatchesCommittedGoldens) {
  if (std::getenv("MOCC_REGEN_GOLDENS") != nullptr) {
    GTEST_SKIP() << "regenerated by ForwardRowMatchesCommittedGoldens";
  }
  MoccConfig config;
  std::shared_ptr<PreferenceActorCritic> model =
      PreferenceActorCritic::LoadFromFile(DataPath("golden_model.bin"), config);
  ASSERT_NE(model, nullptr);
  std::vector<Int8Row> expected;
  ASSERT_TRUE(ReadInt8Outputs(DataPath("golden_forward_int8.txt"), &expected))
      << "regenerate with MOCC_REGEN_GOLDENS=1";
  ASSERT_EQ(expected.size(), static_cast<size_t>(kNumObservations));

  const std::vector<Int8Row> actual = ComputeInt8Rows(model.get());
  ASSERT_EQ(actual.size(), expected.size());
  std::vector<GoldenRow> reference;
  ASSERT_TRUE(ReadGoldenOutputs(DataPath("golden_forward.txt"), &reference));
  ASSERT_EQ(reference.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i].mean_q, expected[i].mean_q, kInt8Tol) << "obs " << i;
    EXPECT_NEAR(actual[i].value_q, expected[i].value_q, kInt8Tol) << "obs " << i;
    // And quantization drift vs the double reference stays control-irrelevant.
    EXPECT_NEAR(expected[i].mean_q, reference[i].mean_d, kInt8VsDoubleTol)
        << "obs " << i;
    EXPECT_NEAR(expected[i].value_q, reference[i].value_d, kInt8VsDoubleTol)
        << "obs " << i;
  }
}

// Byte-level guard for the off-by-default contract of the ECN observation
// channel: with MoccConfig::ecn_signal left at its default (false), the
// observation layout, the forward pass and therefore the regenerated golden
// files must reproduce the committed golden_forward*.txt hex-for-hex on the
// capture toolchain. Regeneration happens in TempDir — nothing is written into
// the source tree.
TEST(GoldenInferenceTest, CommittedForwardGoldensByteIdenticalWithEcnSignalOff) {
  if (std::getenv("MOCC_REGEN_GOLDENS") != nullptr) {
    GTEST_SKIP() << "regeneration run";
  }
  MoccConfig config;
  ASSERT_FALSE(config.ecn_signal) << "the ECN channel must be off by default";
  std::shared_ptr<PreferenceActorCritic> model =
      PreferenceActorCritic::LoadFromFile(DataPath("golden_model.bin"), config);
  ASSERT_NE(model, nullptr);
  auto slurp = [](const std::string& path) {
    std::string bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      char buf[4096];
      size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        bytes.append(buf, n);
      }
      std::fclose(f);
    }
    return bytes;
  };
  const std::string regen_f = ::testing::TempDir() + "/golden_forward_regen.txt";
  ASSERT_TRUE(WriteGoldenOutputs(regen_f, ComputeRows(model.get())));
  const std::string committed_f = slurp(DataPath("golden_forward.txt"));
  ASSERT_FALSE(committed_f.empty());
  EXPECT_EQ(slurp(regen_f), committed_f) << "golden_forward.txt";

  const std::string regen_q = ::testing::TempDir() + "/golden_forward_int8_regen.txt";
  ASSERT_TRUE(WriteInt8Outputs(regen_q, ComputeInt8Rows(model.get())));
  const std::string committed_q = slurp(DataPath("golden_forward_int8.txt"));
  ASSERT_FALSE(committed_q.empty());
  EXPECT_EQ(slurp(regen_q), committed_q) << "golden_forward_int8.txt";
}

}  // namespace
}  // namespace mocc
