// Tests for MOCC's training machinery: the two-phase offline trainer (§4.2), the online
// adapter with requirement replay (§4.3, Eq. 6), and the presets. Training budgets are
// tiny — these verify mechanics and direction, not final model quality.
#include <filesystem>

#include <gtest/gtest.h>

#include "src/core/offline_trainer.h"
#include "src/core/online_adapter.h"
#include "src/core/presets.h"
#include "src/rl/evaluate.h"

namespace mocc {
namespace {

MoccConfig TinyConfig() {
  MoccConfig config;
  config.history_len_eta = 4;
  config.pn_hidden = 8;
  config.pn_out = 8;
  config.trunk_hidden = {16, 8};
  config.landmark_step_divisor = 5;  // omega = 6 landmarks
  return config;
}

OfflineTrainConfig TinyTrainConfig() {
  OfflineTrainConfig config;
  config.mocc = TinyConfig();
  config.bootstrap_iterations = 3;
  config.traversal_iterations_per_objective = 1;
  config.traversal_rounds = 1;
  config.seed = 7;
  return config;
}

TEST(OfflineTrainerTest, PlannedIterationsArithmetic) {
  OfflineTrainConfig config = TinyTrainConfig();
  // 3 bootstrap + 1 round x 1 iter x 6 landmarks.
  EXPECT_EQ(config.PlannedIterations(), 3 + 6);
  config.traversal_rounds = 2;
  EXPECT_EQ(config.PlannedIterations(), 3 + 12);
}

TEST(OfflineTrainerTest, TwoPhaseRunsAllIterationsAndRecordsCurve) {
  const OfflineTrainConfig config = TinyTrainConfig();
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_EQ(result.total_iterations, config.PlannedIterations());
  EXPECT_EQ(result.reward_curve.size(),
            static_cast<size_t>(config.PlannedIterations()));
  EXPECT_EQ(result.traversal_order.size(), 6u);
  EXPECT_GT(result.wall_seconds, 0.0);
  for (double r : result.reward_curve) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(OfflineTrainerTest, IndividualTrainingCostsOmegaTimesBootstrapBudget) {
  const OfflineTrainConfig config = TinyTrainConfig();
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainIndividually();
  EXPECT_EQ(result.total_iterations, 6 * config.bootstrap_iterations);
}

TEST(OfflineTrainerTest, ParallelEnvsProduceSameIterationCount) {
  OfflineTrainConfig config = TinyTrainConfig();
  config.parallel_envs = 3;
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_EQ(result.total_iterations, config.PlannedIterations());
}

TEST(OfflineTrainerTest, ModerateBudgetImprovesEvaluationReward) {
  // Deterministic-policy evaluation on a fixed link, before vs after training: the
  // trained policy must clearly beat the random initialization.
  OfflineTrainConfig config = TinyTrainConfig();
  config.mocc.trunk_hidden = {32, 16};
  config.bootstrap_iterations = 40;
  config.traversal_rounds = 1;
  Rng rng(3);
  PreferenceActorCritic model(config.mocc, &rng);

  auto evaluate = [&]() {
    CcEnvConfig eval_config = config.mocc.MakeEnvConfig();
    CcEnv env(eval_config, 4242);
    LinkParams link;
    link.bandwidth_bps = 3e6;
    link.one_way_delay_s = 0.03;
    link.queue_capacity_pkts = 500;
    env.SetFixedLink(link);
    env.SetObjective(ThroughputObjective());
    std::vector<double> obs = env.Reset();
    double total = 0.0;
    const int steps = 600;
    for (int i = 0; i < steps; ++i) {
      const StepResult r = env.Step(model.ActionMean(obs));
      total += r.reward;
      obs = r.done ? env.Reset() : r.observation;
    }
    return total / steps;
  };

  const double before = evaluate();
  OfflineTrainer trainer(&model, config);
  trainer.TrainTwoPhase();
  const double after = evaluate();
  EXPECT_GT(after, before);
}

TEST(OnlineAdapterTest, ReplayPoolDeduplicatesAndBounds) {
  const MoccConfig mocc = TinyConfig();
  Rng rng(5);
  PreferenceActorCritic model(mocc, &rng);
  CcEnv env(mocc.MakeEnvConfig(), 77);
  OnlineAdaptConfig config;
  config.mocc = mocc;
  config.replay_pool_max = 4;
  OnlineAdapter adapter(&model, &env, config);
  adapter.RememberObjective({0.5, 0.3, 0.2});
  adapter.RememberObjective({0.5, 0.3, 0.2});  // duplicate
  EXPECT_EQ(adapter.replay_pool().size(), 1u);
  adapter.RememberObjective({0.4, 0.4, 0.2});
  adapter.RememberObjective({0.3, 0.5, 0.2});
  adapter.RememberObjective({0.2, 0.6, 0.2});
  adapter.RememberObjective({0.1, 0.7, 0.2});  // pool full: evicts, stays at 4
  EXPECT_EQ(adapter.replay_pool().size(), 4u);
}

TEST(OnlineAdapterTest, AdaptIterationRemembersCurrentObjective) {
  const MoccConfig mocc = TinyConfig();
  Rng rng(6);
  PreferenceActorCritic model(mocc, &rng);
  CcEnv env(mocc.MakeEnvConfig(), 78);
  OnlineAdaptConfig config;
  config.mocc = mocc;
  config.rollout_steps = 128;
  OnlineAdapter adapter(&model, &env, config);
  adapter.AdaptIteration({0.25, 0.55, 0.2});
  ASSERT_EQ(adapter.replay_pool().size(), 1u);
  EXPECT_TRUE(adapter.replay_pool()[0].AlmostEquals({0.25, 0.55, 0.2}, 1e-9));
}

TEST(OnlineAdapterTest, AdaptationImprovesNewObjective) {
  // Train a small base, then adapt to an unseen objective and check the policy's
  // evaluation reward on it improves.
  OfflineTrainConfig train = TinyTrainConfig();
  train.bootstrap_iterations = 20;
  Rng rng(11);
  PreferenceActorCritic model(train.mocc, &rng);
  OfflineTrainer trainer(&model, train);
  trainer.TrainTwoPhase();

  const WeightVector unseen(0.72, 0.18, 0.10);
  CcEnvConfig eval_config = train.mocc.MakeEnvConfig();
  CcEnv eval_env(eval_config, 555);
  eval_env.SetObjective(unseen);
  const double before = EvaluatePolicy(&model, &eval_env, 8).mean_step_reward;

  CcEnv adapt_env(train.mocc.MakeEnvConfig(), 556);
  OnlineAdaptConfig config;
  config.mocc = train.mocc;
  config.rollout_steps = 512;
  OnlineAdapter adapter(&model, &adapt_env, config);
  for (int i = 0; i < 8; ++i) {
    adapter.AdaptIteration(unseen);
  }
  CcEnv eval_env2(eval_config, 555);
  eval_env2.SetObjective(unseen);
  const double after = EvaluatePolicy(&model, &eval_env2, 8).mean_step_reward;
  EXPECT_GT(after, before - 0.05);  // must not regress materially; typically improves
}

TEST(OnlineAdapterTest, ReplayDisabledStillTrains) {
  const MoccConfig mocc = TinyConfig();
  Rng rng(10);
  PreferenceActorCritic model(mocc, &rng);
  CcEnv env(mocc.MakeEnvConfig(), 80);
  OnlineAdaptConfig config;
  config.mocc = mocc;
  config.rollout_steps = 128;
  config.enable_replay = false;
  OnlineAdapter adapter(&model, &env, config);
  adapter.RememberObjective({0.6, 0.3, 0.1});
  const PpoStats stats = adapter.AdaptIteration({0.2, 0.6, 0.2});
  EXPECT_GT(stats.mean_step_reward, 0.0);
}

TEST(PresetsTest, BudgetsAreOrdered) {
  const OfflineTrainConfig quick = QuickOfflinePreset();
  const OfflineTrainConfig standard = StandardOfflinePreset();
  EXPECT_LT(quick.PlannedIterations(), standard.PlannedIterations());
  EXPECT_EQ(quick.mocc.landmark_step_divisor, 10);  // omega = 36 in both
}

TEST(PresetsTest, GetOrTrainBaseModelCaches) {
  const std::string dir = ::testing::TempDir() + "/mocc_presets_zoo";
  std::filesystem::remove_all(dir);
  ModelZoo zoo(dir);
  OfflineTrainConfig config = TinyTrainConfig();
  config.bootstrap_iterations = 1;
  config.traversal_rounds = 0;
  auto first = GetOrTrainBaseModel(&zoo, "tiny", config);
  ASSERT_NE(first, nullptr);
  auto second = GetOrTrainBaseModel(&zoo, "tiny", config);
  ASSERT_NE(second, nullptr);
  std::vector<double> obs(first->obs_dim(), 0.2);
  EXPECT_DOUBLE_EQ(first->ActionMean(obs), second->ActionMean(obs));
}

}  // namespace
}  // namespace mocc
