// Tests for the comparison congestion-control schemes: Table-1 utility functions,
// per-scheme control-law behaviour, and an integration sweep verifying every scheme
// achieves reasonable utilization on a clean link in the packet simulator.
#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/allegro.h"
#include "src/baselines/aurora.h"
#include "src/baselines/bbr.h"
#include "src/baselines/copa.h"
#include "src/baselines/cubic.h"
#include "src/baselines/orca.h"
#include "src/baselines/rl_cc.h"
#include "src/baselines/utility_functions.h"
#include "src/baselines/vegas.h"
#include "src/baselines/vivace.h"
#include "src/netsim/packet_network.h"

namespace mocc {
namespace {

AckInfo MakeAck(double time_s, double rtt_s, int64_t seq = 0) {
  AckInfo ack;
  ack.ack_time_s = time_s;
  ack.send_time_s = time_s - rtt_s;
  ack.rtt_s = rtt_s;
  ack.size_bits = kDefaultPacketSizeBits;
  ack.seq = seq;
  return ack;
}

MonitorReport MakeMi(double thr_bps, double rtt_s, double loss, double dur = 0.05,
                     double send_bps = 0.0) {
  MonitorReport r;
  r.duration_s = dur;
  r.throughput_bps = thr_bps;
  r.send_rate_bps = send_bps > 0.0 ? send_bps : thr_bps;
  r.packets_acked = static_cast<int64_t>(thr_bps * dur / 12000.0);
  r.packets_sent = static_cast<int64_t>(r.send_rate_bps * dur / 12000.0);
  r.avg_rtt_s = rtt_s;
  r.min_rtt_s = rtt_s;
  r.loss_rate = loss;
  return r;
}

// --- Table 1 utility functions -------------------------------------------------------

TEST(UtilityTest, AllegroRewardsThroughputWithoutLoss) {
  EXPECT_GT(AllegroUtility(10.0, 0.0), AllegroUtility(5.0, 0.0));
}

TEST(UtilityTest, AllegroSigmoidCutsAboveFivePercentLoss) {
  // Below the 5% knee utility is positive; well above it becomes negative.
  EXPECT_GT(AllegroUtility(10.0, 0.01), 0.0);
  EXPECT_LT(AllegroUtility(10.0, 0.15), 0.0);
}

TEST(UtilityTest, VivacePenalizesRttGradientAndLoss) {
  const double base = VivaceUtility(10.0, 0.0, 0.0);
  EXPECT_LT(VivaceUtility(10.0, 0.5, 0.0), base);
  EXPECT_LT(VivaceUtility(10.0, 0.0, 0.1), base);
  // Negative RTT gradient (draining queue) is not rewarded beyond zero.
  EXPECT_DOUBLE_EQ(VivaceUtility(10.0, -0.5, 0.0), base);
}

TEST(UtilityTest, VivaceConcaveInRate) {
  // x^0.9: marginal utility decreases.
  const double d1 = VivaceUtility(2.0, 0, 0) - VivaceUtility(1.0, 0, 0);
  const double d2 = VivaceUtility(11.0, 0, 0) - VivaceUtility(10.0, 0, 0);
  EXPECT_GT(d1, d2);
}

TEST(UtilityTest, AuroraLinearForm) {
  EXPECT_DOUBLE_EQ(AuroraReward(100.0, 0.05, 0.1), 10.0 * 100 - 1000 * 0.05 - 2000 * 0.1);
}

TEST(UtilityTest, OrcaPowerNormalization) {
  // Full utilization at base RTT, no loss -> 1.0.
  EXPECT_NEAR(OrcaReward(10e6, 0.04, 0.0, 10e6, 0.04), 1.0, 1e-12);
  EXPECT_LT(OrcaReward(10e6, 0.08, 0.0, 10e6, 0.04), 1.0);
  EXPECT_LT(OrcaReward(10e6, 0.04, 0.1, 10e6, 0.04), 1.0);
}

// --- CUBIC ---------------------------------------------------------------------------

TEST(CubicTest, SlowStartDoublesPerRtt) {
  CubicCc cubic;
  const double w0 = cubic.CwndPackets();
  EXPECT_TRUE(cubic.in_slow_start());
  for (int i = 0; i < static_cast<int>(w0); ++i) {
    cubic.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  EXPECT_NEAR(cubic.CwndPackets(), 2 * w0, 1.0);
}

TEST(CubicTest, LossMultiplicativeDecreaseByBeta) {
  CubicCc cubic;
  for (int i = 0; i < 100; ++i) {
    cubic.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  const double before = cubic.CwndPackets();
  LossInfo loss;
  loss.detect_time_s = 2.0;
  cubic.OnPacketLost(loss);
  EXPECT_NEAR(cubic.CwndPackets(), 0.7 * before, 1e-9);
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(CubicTest, LossBurstCountsAsOneEvent) {
  CubicCc cubic;
  for (int i = 0; i < 100; ++i) {
    cubic.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  LossInfo loss;
  loss.detect_time_s = 2.0;
  cubic.OnPacketLost(loss);
  const double after_first = cubic.CwndPackets();
  loss.detect_time_s = 2.001;  // same RTT
  cubic.OnPacketLost(loss);
  EXPECT_DOUBLE_EQ(cubic.CwndPackets(), after_first);
}

TEST(CubicTest, CubicGrowthAcceleratesAwayFromWmax) {
  CubicCc cubic;
  for (int i = 0; i < 200; ++i) {
    cubic.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  LossInfo loss;
  loss.detect_time_s = 2.0;
  cubic.OnPacketLost(loss);
  // Growth in the first RTT after loss vs several RTTs later (convex region).
  double w = cubic.CwndPackets();
  cubic.OnAck(MakeAck(2.05, 0.04));
  const double d_early = cubic.CwndPackets() - w;
  for (int i = 0; i < 100; ++i) {
    cubic.OnAck(MakeAck(2.1 + i * 0.04, 0.04));
  }
  w = cubic.CwndPackets();
  cubic.OnAck(MakeAck(6.2, 0.04));
  const double d_late = cubic.CwndPackets() - w;
  EXPECT_GT(d_late, d_early);
}

TEST(CubicTest, TimeoutResetsToMinWindow) {
  CubicCc cubic;
  for (int i = 0; i < 50; ++i) {
    cubic.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  cubic.OnTimeout(3.0);
  EXPECT_DOUBLE_EQ(cubic.CwndPackets(), 2.0);
}

// --- Vegas ---------------------------------------------------------------------------

TEST(VegasTest, StaysInSlowStartWhileQueueEmpty) {
  VegasCc vegas;
  EXPECT_TRUE(vegas.in_slow_start());
  // RTT at base: no queueing -> keeps (every-other-RTT) doubling.
  for (int rtt = 0; rtt < 4; ++rtt) {
    const int cwnd = static_cast<int>(vegas.CwndPackets());
    for (int i = 0; i < cwnd; ++i) {
      vegas.OnAck(MakeAck(rtt * 0.04 + i * 0.001, 0.04));
    }
  }
  EXPECT_TRUE(vegas.in_slow_start());
  EXPECT_GT(vegas.CwndPackets(), 10.0);
}

TEST(VegasTest, ExitsSlowStartWhenQueueBuilds) {
  VegasCc vegas;
  // Inflated RTTs -> diff above gamma.
  for (int rtt = 0; rtt < 8 && vegas.in_slow_start(); ++rtt) {
    const int cwnd = static_cast<int>(vegas.CwndPackets());
    for (int i = 0; i < cwnd; ++i) {
      vegas.OnAck(MakeAck(rtt * 0.04 + i * 0.001, rtt == 0 ? 0.04 : 0.06));
    }
  }
  EXPECT_FALSE(vegas.in_slow_start());
}

TEST(VegasTest, CongestionAvoidanceKeepsQueueBetweenAlphaAndBeta) {
  VegasCc vegas;
  // Force CA with a known base RTT.
  for (int rtt = 0; rtt < 10; ++rtt) {
    const int cwnd = static_cast<int>(vegas.CwndPackets());
    for (int i = 0; i < cwnd; ++i) {
      vegas.OnAck(MakeAck(rtt * 0.04 + i * 0.001, rtt == 0 ? 0.04 : 0.055));
    }
  }
  // diff = cwnd*(rtt-base)/rtt; drive rtt so diff < alpha -> window grows.
  const double before = vegas.CwndPackets();
  const int cwnd = static_cast<int>(before);
  for (int i = 0; i < cwnd; ++i) {
    vegas.OnAck(MakeAck(1.0 + i * 0.001, 0.0401));
  }
  EXPECT_GT(vegas.CwndPackets(), before - 1e-9);
}

TEST(VegasTest, LossReducesWindowModestly) {
  VegasCc vegas;
  for (int i = 0; i < 40; ++i) {
    vegas.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  const double before = vegas.CwndPackets();
  LossInfo loss;
  vegas.OnPacketLost(loss);
  EXPECT_NEAR(vegas.CwndPackets(), 0.75 * before, 1e-9);
}

// --- BBR -----------------------------------------------------------------------------

TEST(BbrTest, StartupExitsAfterBandwidthPlateau) {
  BbrCc bbr;
  bbr.OnFlowStart(0.0);
  EXPECT_EQ(bbr.state(), BbrCc::State::kStartup);
  for (int i = 0; i < 8; ++i) {
    bbr.OnAck(MakeAck(i * 0.05, 0.04));
    bbr.OnMonitorInterval(MakeMi(5e6, 0.04, 0.0));
  }
  EXPECT_NE(bbr.state(), BbrCc::State::kStartup);
  EXPECT_NEAR(bbr.BtlBwBps(), 5e6, 1e3);
}

TEST(BbrTest, PacingTracksEstimatedBandwidth) {
  BbrCc bbr;
  bbr.OnFlowStart(0.0);
  for (int i = 0; i < 20; ++i) {
    bbr.OnAck(MakeAck(i * 0.05, 0.04));
    bbr.OnMonitorInterval(MakeMi(8e6, 0.041, 0.0));
  }
  // In PROBE_BW the pacing gain cycles around 1.0 x BtlBw.
  EXPECT_EQ(bbr.state(), BbrCc::State::kProbeBw);
  EXPECT_GE(bbr.PacingRateBps(), 0.7 * 8e6);
  EXPECT_LE(bbr.PacingRateBps(), 1.3 * 8e6);
}

TEST(BbrTest, CwndCapsAtGainTimesBdp) {
  BbrCc bbr;
  bbr.OnFlowStart(0.0);
  for (int i = 0; i < 10; ++i) {
    bbr.OnAck(MakeAck(i * 0.05, 0.04));
    bbr.OnMonitorInterval(MakeMi(12e6, 0.041, 0.0));
  }
  const double bdp_pkts = 12e6 * 0.04 / 12000.0;
  EXPECT_NEAR(bbr.CwndPackets(), 2.0 * bdp_pkts, 2.0);
}

TEST(BbrTest, ProbeRttAfterMinRttExpiry) {
  BbrCc bbr;
  bbr.OnFlowStart(0.0);
  // Reach PROBE_BW.
  for (int i = 0; i < 10; ++i) {
    bbr.OnAck(MakeAck(i * 0.05, 0.04));
    bbr.OnMonitorInterval(MakeMi(5e6, 0.041, 0.0));
  }
  ASSERT_EQ(bbr.state(), BbrCc::State::kProbeBw);
  // Advance the clock past the probe interval without a new min RTT.
  MonitorReport late = MakeMi(5e6, 0.05, 0.0);
  late.start_time_s = 11.0;
  bbr.OnAck(MakeAck(11.0, 0.05));
  bbr.OnMonitorInterval(late);
  EXPECT_EQ(bbr.state(), BbrCc::State::kProbeRtt);
  EXPECT_DOUBLE_EQ(bbr.CwndPackets(), 4.0);
}

// --- Copa ----------------------------------------------------------------------------

TEST(CopaTest, GrowsWhenQueueEmpty) {
  CopaCc copa;
  const double before = copa.CwndPackets();
  for (int i = 0; i < 50; ++i) {
    copa.OnAck(MakeAck(1.0 + i * 0.004, 0.04));  // constant RTT = no queueing
  }
  EXPECT_GT(copa.CwndPackets(), before);
}

TEST(CopaTest, ShrinksWhenAboveTargetRate) {
  CopaCc copa;
  // Standing queue of 40ms on a 40ms base with delta=0.5: target = 1/(0.5*0.04) = 50
  // pkts/s; with cwnd 10 and srtt 80ms the current rate is 125 pkts/s > target.
  for (int i = 0; i < 10; ++i) {
    copa.OnAck(MakeAck(1.0 + i * 0.008, 0.04));
  }
  const double before = copa.CwndPackets();
  for (int i = 0; i < 60; ++i) {
    copa.OnAck(MakeAck(2.0 + i * 0.008, 0.08));
  }
  EXPECT_LT(copa.CwndPackets(), before + 5.0);
}

TEST(CopaTest, VelocityResetsOnTimeout) {
  CopaCc copa;
  for (int i = 0; i < 100; ++i) {
    copa.OnAck(MakeAck(1.0 + i * 0.004, 0.04));
  }
  copa.OnTimeout(3.0);
  EXPECT_DOUBLE_EQ(copa.velocity(), 1.0);
  EXPECT_DOUBLE_EQ(copa.CwndPackets(), 2.0);
}

// --- PCC Allegro ---------------------------------------------------------------------

TEST(AllegroTest, StartingPhaseDoublesWhileUtilityRises) {
  AllegroCc allegro;
  const double r0 = allegro.PacingRateBps();
  allegro.OnMonitorInterval(MakeMi(r0, 0.04, 0.0, 0.05, r0));
  EXPECT_NEAR(allegro.PacingRateBps(), 2 * r0, 1.0);
  EXPECT_EQ(allegro.phase(), AllegroCc::Phase::kStarting);
}

TEST(AllegroTest, EntersMicroExperimentsWhenUtilityDrops) {
  AllegroCc allegro;
  const double r0 = allegro.PacingRateBps();
  allegro.OnMonitorInterval(MakeMi(r0, 0.04, 0.0, 0.05, r0));
  // Heavy loss at the doubled rate -> utility collapses -> testing phase.
  allegro.OnMonitorInterval(MakeMi(r0, 0.04, 0.4, 0.05, 2 * r0));
  EXPECT_EQ(allegro.phase(), AllegroCc::Phase::kTestUp);
}

TEST(AllegroTest, MovesTowardHigherUtilityDirection) {
  AllegroCc allegro;
  const double r0 = allegro.PacingRateBps();
  allegro.OnMonitorInterval(MakeMi(r0, 0.04, 0.0, 0.05, r0));
  allegro.OnMonitorInterval(MakeMi(r0, 0.04, 0.5, 0.05, 2 * r0));  // end starting
  const double base = allegro.base_rate_bps();
  // Up-test good, down-test bad -> base rate should increase.
  allegro.OnMonitorInterval(MakeMi(base * 1.05, 0.04, 0.0, 0.05, base * 1.05));
  allegro.OnMonitorInterval(MakeMi(base * 0.5, 0.04, 0.3, 0.05, base * 0.95));
  EXPECT_GT(allegro.base_rate_bps(), base);
}

// --- PCC Vivace ----------------------------------------------------------------------

TEST(VivaceTest, ClimbsOnPositiveGradient) {
  VivaceCc vivace;
  double rate = vivace.PacingRateBps();
  // Feed intervals where utility rises with rate (no loss, flat RTT).
  for (int i = 0; i < 10; ++i) {
    vivace.OnMonitorInterval(MakeMi(rate, 0.04, 0.0, 0.05, rate));
    rate = vivace.PacingRateBps();
  }
  EXPECT_GT(rate, 2e6);
}

TEST(VivaceTest, BacksOffOnLossGradient) {
  VivaceCc vivace;
  double rate = vivace.PacingRateBps();
  for (int i = 0; i < 3; ++i) {
    vivace.OnMonitorInterval(MakeMi(rate, 0.04, 0.0, 0.05, rate));
    rate = vivace.PacingRateBps();
  }
  const double peak = rate;
  // Now every increase is punished by loss proportional to the rate.
  for (int i = 0; i < 12; ++i) {
    const double loss = std::min(0.5, rate / 40e6);
    vivace.OnMonitorInterval(MakeMi(rate * (1 - loss), 0.04, loss, 0.05, rate));
    rate = vivace.PacingRateBps();
  }
  EXPECT_LT(rate, peak * 1.5);
}

// --- RL adapter / Aurora / Orca ------------------------------------------------------

TEST(RlCcTest, AdapterAppliesEq1WithPolicyMean) {
  Rng rng(3);
  auto model = std::make_shared<MlpActorCritic>(AuroraObsDim(4), &rng);
  RlRateController::Options options;
  options.history_len = 4;
  options.initial_rate_bps = 2e6;
  RlRateController cc(model, options);
  const double before = cc.PacingRateBps();
  cc.OnMonitorInterval(MakeMi(2e6, 0.04, 0.0));
  EXPECT_EQ(cc.inference_count(), 1);
  const double expected =
      CcEnv::ApplyRateAction(before, model->ActionMean(cc.last_observation()), 0.025);
  EXPECT_NEAR(cc.PacingRateBps(), expected, 1.0);
}

TEST(RlCcTest, PrefixChangesObservation) {
  Rng rng(4);
  auto model = std::make_shared<MlpActorCritic>(3 + 3 * 4, &rng);
  RlRateController::Options options;
  options.history_len = 4;
  options.observation_prefix = {0.8, 0.1, 0.1};
  RlRateController cc(model, options);
  cc.OnMonitorInterval(MakeMi(2e6, 0.04, 0.0));
  EXPECT_DOUBLE_EQ(cc.last_observation()[0], 0.8);
  cc.SetObservationPrefix({0.1, 0.8, 0.1});
  cc.OnMonitorInterval(MakeMi(2e6, 0.04, 0.0));
  EXPECT_DOUBLE_EQ(cc.last_observation()[0], 0.1);
}

TEST(AuroraTest, TrainProducesWorkingModelAndCurve) {
  AuroraConfig config;
  config.iterations = 3;
  config.ppo.rollout_steps = 256;
  config.env.max_steps_per_episode = 64;
  std::vector<double> curve;
  auto model = TrainAurora(config, &curve);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(curve.size(), 3u);
  auto cc = MakeAuroraCc(model);
  EXPECT_EQ(cc->Name(), "Aurora");
  cc->OnMonitorInterval(MakeMi(2e6, 0.05, 0.0));
  EXPECT_GT(cc->PacingRateBps(), 0.0);
}

TEST(OrcaTest, ScaleStaysWithinBounds) {
  Rng rng(5);
  auto model = std::make_shared<MlpActorCritic>(3 * 10, &rng);
  OrcaCc orca(model);
  for (int i = 0; i < 200; ++i) {
    orca.OnAck(MakeAck(1.0 + i * 0.01, 0.04));
    orca.OnMonitorInterval(MakeMi(3e6, 0.05, 0.0));
  }
  EXPECT_GE(orca.scale(), 0.5);
  EXPECT_LE(orca.scale(), 2.0);
  EXPECT_GT(orca.inference_count(), 0);
  // Decoupled control loop: inference every other MI by default.
  EXPECT_LE(orca.inference_count(), 110);
}

TEST(OrcaTest, WindowFollowsCubicTimesScale) {
  Rng rng(6);
  auto model = std::make_shared<MlpActorCritic>(3 * 10, &rng);
  OrcaConfig config;
  OrcaCc orca(model, config);
  CubicCc reference(config.cubic);
  for (int i = 0; i < 30; ++i) {
    orca.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
    reference.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  EXPECT_NEAR(orca.CwndPackets(), reference.CwndPackets() * orca.scale(), 1e-6);
}

// --- Integration: every scheme fills a clean pipe ------------------------------------

struct SchemeFactory {
  std::string name;
  std::function<std::unique_ptr<CongestionControl>()> make;
  double min_utilization;
};

class SchemeUtilizationTest : public ::testing::TestWithParam<int> {};

std::vector<SchemeFactory> MakeFactories() {
  std::vector<SchemeFactory> factories;
  factories.push_back({"cubic", [] { return std::make_unique<CubicCc>(); }, 0.6});
  factories.push_back({"vegas", [] { return std::make_unique<VegasCc>(); }, 0.5});
  factories.push_back({"bbr", [] { return std::make_unique<BbrCc>(); }, 0.6});
  factories.push_back({"copa", [] { return std::make_unique<CopaCc>(); }, 0.5});
  factories.push_back({"allegro", [] { return std::make_unique<AllegroCc>(); }, 0.5});
  factories.push_back({"vivace", [] { return std::make_unique<VivaceCc>(); }, 0.5});
  return factories;
}

TEST_P(SchemeUtilizationTest, FillsCleanPipe) {
  const auto factories = MakeFactories();
  const SchemeFactory& factory = factories[static_cast<size_t>(GetParam())];
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = static_cast<int>(p.BdpPackets()) + 20;
  PacketNetwork net(p, 99);
  const int flow = net.AddFlow(factory.make());
  net.Run(20.0);
  const double util = net.record(flow).AvgThroughputBps(5.0, 20.0) / p.bandwidth_bps;
  EXPECT_GT(util, factory.min_utilization) << factory.name;
  EXPECT_LE(util, 1.01) << factory.name;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeUtilizationTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace mocc
