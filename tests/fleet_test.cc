// The fleet-sharding contract suite (`ctest -L fleet`): RunFleet must be
// BIT-IDENTICAL for any thread count and any shard→worker assignment — the
// serial threads=1 reference, the shared pool and dedicated pools all produce
// the same per-shard checksums and the same shard-order aggregates. Per-shard
// Rng streams derive from the root seed on the caller thread in shard order,
// so a shard's results are a pure function of (seed, shard index), independent
// of how many other shards run beside it.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/fleet/fleet.h"

namespace mocc {
namespace {

std::shared_ptr<PreferenceActorCritic> TestModel() {
  MoccConfig config;
  Rng rng(91);
  return std::make_shared<PreferenceActorCritic>(config, &rng);
}

FleetSpec SmallFleet(const std::shared_ptr<PreferenceActorCritic>& model,
                     const std::string& scenario, Precision precision) {
  FleetSpec spec;
  spec.scenario = scenario;
  spec.num_shards = 4;
  spec.episodes_per_shard = 1;
  spec.steps_per_episode = 6;
  spec.seed = 42;
  spec.policy.WithModel(model).WithPrecision(precision);
  return spec;
}

void ExpectShardEqual(const ShardResult& a, const ShardResult& b) {
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.env_steps, b.env_steps);
  EXPECT_EQ(a.agent_steps, b.agent_steps);
  // Bitwise FP equality is the contract, not a tolerance.
  EXPECT_EQ(a.reward_sum, b.reward_sum);
  EXPECT_EQ(a.o_thr_sum, b.o_thr_sum);
  EXPECT_EQ(a.o_lat_sum, b.o_lat_sum);
  EXPECT_EQ(a.o_loss_sum, b.o_loss_sum);
  EXPECT_EQ(a.throughput_sum_bps, b.throughput_sum_bps);
  EXPECT_EQ(a.avg_rtt_sum_s, b.avg_rtt_sum_s);
  EXPECT_EQ(a.loss_rate_sum, b.loss_rate_sum);
  EXPECT_EQ(a.jain_sum, b.jain_sum);
  EXPECT_EQ(a.checksum, b.checksum);
}

void ExpectFleetEqual(const FleetResult& a, const FleetResult& b) {
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    ExpectShardEqual(a.shards[i], b.shards[i]);
  }
  EXPECT_EQ(a.env_steps, b.env_steps);
  EXPECT_EQ(a.agent_steps, b.agent_steps);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.mean_reward, b.mean_reward);
  EXPECT_EQ(a.mean_o_thr, b.mean_o_thr);
  EXPECT_EQ(a.mean_o_lat, b.mean_o_lat);
  EXPECT_EQ(a.mean_o_loss, b.mean_o_loss);
  EXPECT_EQ(a.mean_throughput_bps, b.mean_throughput_bps);
  EXPECT_EQ(a.mean_avg_rtt_s, b.mean_avg_rtt_s);
  EXPECT_EQ(a.mean_loss_rate, b.mean_loss_rate);
  EXPECT_EQ(a.mean_jain, b.mean_jain);
  EXPECT_EQ(a.checksum, b.checksum);
}

// The core gate: serial reference (threads=1) vs oversubscribed dedicated
// pools. Thread counts above the shard count force worker reuse and idle
// workers; results must not care.
TEST(FleetTest, BitIdenticalAcrossThreadCounts) {
  auto model = TestModel();
  const FleetSpec base = SmallFleet(model, "vs-cubic", Precision::kFloat32);
  FleetSpec serial = base;
  serial.threads = 1;
  const FleetResult reference = RunFleet(serial);
  ASSERT_TRUE(reference.ok) << reference.error;
  ASSERT_EQ(reference.shards.size(), 4u);
  EXPECT_GT(reference.env_steps, 0);
  EXPECT_GT(reference.agent_steps, 0);
  EXPECT_NE(reference.checksum, 0u);

  for (const int threads : {2, 5}) {
    FleetSpec parallel = base;
    parallel.threads = threads;
    const FleetResult result = RunFleet(parallel);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectFleetEqual(reference, result);
  }
}

// The double-precision path runs per-shard model clones (the shared model's
// ActionMean scratch is single-thread state); it must meet the same gate.
TEST(FleetTest, DoublePrecisionClonesBitIdenticalAcrossThreadCounts) {
  auto model = TestModel();
  const FleetSpec base = SmallFleet(model, "many-flow", Precision::kDouble);
  FleetSpec serial = base;
  serial.threads = 1;
  FleetSpec parallel = base;
  parallel.threads = 3;
  const FleetResult a = RunFleet(serial);
  ASSERT_TRUE(a.ok) << a.error;
  ExpectFleetEqual(a, RunFleet(parallel));
}

// Heterogeneous topologies (per-agent leaf paths, per-hop RTTs) go through the
// same contract — the n-leaf dumbbell is the fleet's signature scenario.
TEST(FleetTest, NLeafDumbbellShardsBitIdentical) {
  auto model = TestModel();
  FleetSpec base = SmallFleet(model, "n-leaf-dumbbell", Precision::kFloat32);
  base.num_shards = 2;
  base.steps_per_episode = 4;
  FleetSpec serial = base;
  serial.threads = 1;
  FleetSpec parallel = base;
  parallel.threads = 2;
  const FleetResult a = RunFleet(serial);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_GT(a.agent_steps, 0);
  ExpectFleetEqual(a, RunFleet(parallel));
}

// Shard i's stream depends only on (root seed, i): growing the fleet appends
// shards without disturbing the existing ones. This pins the caller-thread
// shard-order seed derivation — seeding inside the tasks would break it.
TEST(FleetTest, ShardStreamsIndependentOfFleetSize) {
  auto model = TestModel();
  FleetSpec small = SmallFleet(model, "vs-cubic", Precision::kFloat32);
  small.num_shards = 2;
  FleetSpec large = SmallFleet(model, "vs-cubic", Precision::kFloat32);
  large.num_shards = 4;
  const FleetResult a = RunFleet(small);
  const FleetResult b = RunFleet(large);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.shards.size(), 2u);
  ASSERT_EQ(b.shards.size(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    ExpectShardEqual(a.shards[i], b.shards[i]);
  }
  // Distinct shards are distinct simulations (different seeds, different runs).
  EXPECT_NE(b.shards[2].checksum, b.shards[0].checksum);
}

// Different root seeds give different fleets; the same root seed reproduces
// the aggregation exactly on a rerun.
TEST(FleetTest, ReproducibleAggregationAcrossRuns) {
  auto model = TestModel();
  const FleetSpec spec = SmallFleet(model, "many-flow", Precision::kFloat32);
  const FleetResult a = RunFleet(spec);
  const FleetResult b = RunFleet(spec);
  ASSERT_TRUE(a.ok) << a.error;
  ExpectFleetEqual(a, b);
  EXPECT_GT(a.mean_jain, 0.0);
  EXPECT_LE(a.mean_jain, 1.0);

  FleetSpec reseeded = spec;
  reseeded.seed = 43;
  const FleetResult c = RunFleet(reseeded);
  ASSERT_TRUE(c.ok);
  EXPECT_NE(a.checksum, c.checksum);
}

TEST(FleetTest, UnknownScenarioFailsCleanly) {
  auto model = TestModel();
  FleetSpec spec = SmallFleet(model, "no-such-scenario", Precision::kFloat32);
  const FleetResult result = RunFleet(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace mocc
