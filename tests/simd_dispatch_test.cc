// The `simd` suite: the scalar<->vector bit-identity contract of the runtime
// dispatch layer (src/nn/simd/dispatch.h).
//
// Every kernel table the host can run (scalar always; SSSE3/AVX2/NEON when
// CPUID + the build say so) is compared against the scalar reference with
// EXPECT_EQ — not tolerances — over odd shapes, remainder tails, and the int8
// quantized pipeline. This is the property that makes runtime dispatch safe:
// which CPU ran an inference can never change its result, only its speed.
// The end-to-end form of the same contract is golden_inference_test, which
// ctest registers a second time under MOCC_FORCE_SCALAR=1.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nn/mlp.h"
#include "src/nn/qmlp.h"
#include "src/nn/simd/dispatch.h"

namespace mocc {
namespace {

using simd::Kernels;
using simd::Tier;

// Every tier this binary + host can execute. Scalar is always first, so
// comparisons below read "tiers[0] vs tiers[i]".
std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kSsse3, Tier::kAvx2, Tier::kNeon}) {
    if (simd::KernelsForTier(t) != nullptr) {
      tiers.push_back(t);
    }
  }
  return tiers;
}

std::vector<float> RandomRowF32(Rng* rng, size_t n, double lo, double hi) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng->Uniform(lo, hi));
  }
  return v;
}

std::vector<double> RandomRowF64(Rng* rng, size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng->Uniform(lo, hi);
  }
  return v;
}

TEST(DispatchTest, ScalarTierAlwaysSupportedAndComplete) {
  const Kernels* scalar = simd::KernelsForTier(Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  // Composed tables are fully populated: tiers that accelerate a subset are
  // backfilled with the scalar reference.
  for (Tier t : SupportedTiers()) {
    const Kernels* k = simd::KernelsForTier(t);
    ASSERT_NE(k, nullptr) << simd::TierName(t);
    EXPECT_NE(k->row_matvec_bias_f32, nullptr) << simd::TierName(t);
    EXPECT_NE(k->row_matvec_bias_f64, nullptr) << simd::TierName(t);
    EXPECT_NE(k->row_matvec_seeded_f32, nullptr) << simd::TierName(t);
    EXPECT_NE(k->tanh_array_f32, nullptr) << simd::TierName(t);
    EXPECT_NE(k->tanh_array_f64, nullptr) << simd::TierName(t);
    EXPECT_NE(k->int8_quantize_row, nullptr) << simd::TierName(t);
    EXPECT_NE(k->int8_row_gemv, nullptr) << simd::TierName(t);
    EXPECT_NE(k->int8_post_tanh, nullptr) << simd::TierName(t);
  }
}

TEST(DispatchTest, ActiveTierIsSupportedAndNamed) {
  const Tier active = simd::ActiveTier();
  EXPECT_NE(simd::KernelsForTier(active), nullptr);
  EXPECT_STRNE(simd::TierName(active), "unknown");
  // The active table IS the composed table of the active tier.
  EXPECT_EQ(simd::Active().row_matvec_bias_f32,
            simd::KernelsForTier(active)->row_matvec_bias_f32);
  // MOCC_FORCE_SCALAR pins the process to scalar (this is what the
  // *_scalar ctest registrations assert end to end).
  if (simd::ForcedScalar()) {
    EXPECT_EQ(active, Tier::kScalar);
  }
}

// Shapes exercising every vector block size and remainder tail in the f32
// kernels (64/32/16/8-wide blocks, the out==1 lane split, scalar tails), plus
// the real deployment shapes (46->64->32->1 trunk, 30-dim history suffix,
// 3->16 PN).
struct Shape {
  size_t in, out;
};
const Shape kShapes[] = {{1, 1},  {2, 1},   {7, 1},   {8, 1},  {9, 1},  {30, 1},
                         {32, 1}, {33, 1},  {1, 5},   {3, 16}, {5, 7},  {8, 8},
                         {9, 17}, {15, 33}, {16, 16}, {17, 9}, {30, 64}, {31, 31},
                         {46, 64}, {64, 32}, {65, 65}};

TEST(BitIdentityTest, RowMatVecBiasF32MatchesScalarOnEveryTier) {
  const auto tiers = SupportedTiers();
  Rng rng(101);
  for (const Shape& s : kShapes) {
    const auto x = RandomRowF32(&rng, s.in, -3.0, 3.0);
    const auto w = RandomRowF32(&rng, s.in * s.out, -1.5, 1.5);
    const auto b = RandomRowF32(&rng, s.out, -1.0, 1.0);
    std::vector<float> y_ref(s.out);
    simd::KernelsForTier(Tier::kScalar)
        ->row_matvec_bias_f32(x.data(), w.data(), b.data(), y_ref.data(), s.in, s.out);
    for (Tier t : tiers) {
      std::vector<float> y(s.out, -777.0f);
      simd::KernelsForTier(t)->row_matvec_bias_f32(x.data(), w.data(), b.data(),
                                                   y.data(), s.in, s.out);
      for (size_t j = 0; j < s.out; ++j) {
        EXPECT_EQ(y[j], y_ref[j]) << simd::TierName(t) << " " << s.in << "x"
                                  << s.out << " j=" << j;
      }
    }
  }
}

TEST(BitIdentityTest, RowMatVecBiasF64MatchesScalarOnEveryTier) {
  const auto tiers = SupportedTiers();
  Rng rng(102);
  for (const Shape& s : kShapes) {
    const auto x = RandomRowF64(&rng, s.in, -3.0, 3.0);
    const auto w = RandomRowF64(&rng, s.in * s.out, -1.5, 1.5);
    const auto b = RandomRowF64(&rng, s.out, -1.0, 1.0);
    std::vector<double> y_ref(s.out);
    simd::KernelsForTier(Tier::kScalar)
        ->row_matvec_bias_f64(x.data(), w.data(), b.data(), y_ref.data(), s.in, s.out);
    for (Tier t : tiers) {
      std::vector<double> y(s.out, -777.0);
      simd::KernelsForTier(t)->row_matvec_bias_f64(x.data(), w.data(), b.data(),
                                                   y.data(), s.in, s.out);
      for (size_t j = 0; j < s.out; ++j) {
        EXPECT_EQ(y[j], y_ref[j]) << simd::TierName(t) << " " << s.in << "x"
                                  << s.out << " j=" << j;
      }
    }
  }
}

TEST(BitIdentityTest, SeededSplitEqualsFullOnEveryTier) {
  // The resumable kernel's defining property: a [0,s) pass with null seed/bias
  // followed by a seeded [s,in) pass is bit-identical to one full-range call —
  // on every tier, and identical across tiers. This is what makes the
  // cached-prefix policy trick (inference_policy.cc) a pure optimization.
  const auto tiers = SupportedTiers();
  Rng rng(103);
  for (const Shape& s : kShapes) {
    const auto x = RandomRowF32(&rng, s.in, -3.0, 3.0);
    const auto w = RandomRowF32(&rng, s.in * s.out, -1.5, 1.5);
    const auto b = RandomRowF32(&rng, s.out, -1.0, 1.0);
    std::vector<float> y_full_ref(s.out);
    simd::KernelsForTier(Tier::kScalar)
        ->row_matvec_seeded_f32(x.data(), w.data(), nullptr, b.data(),
                                y_full_ref.data(), s.in, s.out);
    for (Tier t : tiers) {
      const Kernels* k = simd::KernelsForTier(t);
      std::vector<float> y_full(s.out);
      k->row_matvec_seeded_f32(x.data(), w.data(), nullptr, b.data(), y_full.data(),
                               s.in, s.out);
      for (size_t split : {size_t{0}, size_t{1}, s.in / 2, s.in}) {
        std::vector<float> seed(s.out, 0.0f);
        std::vector<float> y_split(s.out);
        k->row_matvec_seeded_f32(x.data(), w.data(), nullptr, nullptr, seed.data(),
                                 split, s.out);
        k->row_matvec_seeded_f32(x.data() + split, w.data() + split * s.out,
                                 seed.data(), b.data(), y_split.data(),
                                 s.in - split, s.out);
        for (size_t j = 0; j < s.out; ++j) {
          EXPECT_EQ(y_split[j], y_full[j])
              << simd::TierName(t) << " " << s.in << "x" << s.out
              << " split=" << split << " j=" << j;
          EXPECT_EQ(y_full[j], y_full_ref[j]) << simd::TierName(t);
        }
      }
    }
  }
}

TEST(BitIdentityTest, TanhArraysMatchScalarOnEveryTier) {
  const auto tiers = SupportedTiers();
  // Dense grid across the interesting range plus the saturation plateaus and
  // odd lengths that leave vector remainder tails.
  std::vector<float> grid_f;
  std::vector<double> grid_d;
  for (double v = -12.0; v <= 12.0; v += 0.037) {
    grid_f.push_back(static_cast<float>(v));
    grid_d.push_back(v);
  }
  grid_f.insert(grid_f.end(), {0.0f, -0.0f, 1e-30f, -1e-30f, 40.0f, -40.0f});
  grid_d.insert(grid_d.end(), {0.0, -0.0, 1e-300, -1e-300, 40.0, -40.0});
  for (size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{17}, grid_f.size()}) {
    for (Tier t : tiers) {
      std::vector<float> a_ref(grid_f.begin(), grid_f.begin() + n);
      std::vector<float> a(grid_f.begin(), grid_f.begin() + n);
      simd::KernelsForTier(Tier::kScalar)->tanh_array_f32(a_ref.data(), n);
      simd::KernelsForTier(t)->tanh_array_f32(a.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a[i], a_ref[i]) << simd::TierName(t) << " f32 n=" << n
                                  << " x=" << grid_f[i];
      }
      std::vector<double> d_ref(grid_d.begin(), grid_d.begin() + n);
      std::vector<double> d(grid_d.begin(), grid_d.begin() + n);
      simd::KernelsForTier(Tier::kScalar)->tanh_array_f64(d_ref.data(), n);
      simd::KernelsForTier(t)->tanh_array_f64(d.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(d[i], d_ref[i]) << simd::TierName(t) << " f64 n=" << n
                                  << " x=" << grid_d[i];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Int8 pipeline: quantize -> GEMV -> epilogue, each bit-identical across tiers
// and (for the GEMV) exactly equal to a plain int64 reference computed here.
// ---------------------------------------------------------------------------

TEST(BitIdentityTest, Int8QuantizeRowMatchesScalarOnEveryTier) {
  const auto tiers = SupportedTiers();
  Rng rng(104);
  for (size_t n : {size_t{1}, size_t{3}, size_t{7}, size_t{8}, size_t{9},
                   size_t{13}, size_t{16}, size_t{30}, size_t{43}, size_t{64}}) {
    const size_t n_pad = (n + 7) & ~size_t{7};
    for (int rep = 0; rep < 8; ++rep) {
      // Rep 0 is the all-zero row (sx must be exactly 0, all codes 128).
      std::vector<float> x(n, 0.0f);
      if (rep > 0) {
        x = RandomRowF32(&rng, n, -10.0, 10.0);
      }
      std::vector<uint8_t> codes_ref(n_pad, 7);
      const float sx_ref = simd::KernelsForTier(Tier::kScalar)
                               ->int8_quantize_row(x.data(), n, n_pad, codes_ref.data());
      if (rep == 0) {
        EXPECT_EQ(sx_ref, 0.0f);
      }
      for (size_t k = n; k < n_pad; ++k) {
        EXPECT_EQ(codes_ref[k], 128) << "pad k=" << k;
      }
      for (Tier t : tiers) {
        std::vector<uint8_t> codes(n_pad, 9);
        const float sx = simd::KernelsForTier(t)->int8_quantize_row(
            x.data(), n, n_pad, codes.data());
        EXPECT_EQ(sx, sx_ref) << simd::TierName(t) << " n=" << n;
        EXPECT_EQ(std::memcmp(codes.data(), codes_ref.data(), n_pad), 0)
            << simd::TierName(t) << " n=" << n << " rep=" << rep;
      }
      // Round-trip bound: |x[k] - sx*(code-128)| <= sx/2 (nearest-code
      // property of the quantizer).
      for (size_t k = 0; k < n; ++k) {
        const float back = sx_ref * (static_cast<int>(codes_ref[k]) - 128);
        EXPECT_LE(std::fabs(x[k] - back), sx_ref * 0.5f + 1e-7f) << "k=" << k;
      }
    }
  }
}

TEST(BitIdentityTest, Int8RowGemvExactOnEveryTier) {
  const auto tiers = SupportedTiers();
  Rng rng(105);
  for (const Shape& s : {Shape{8, 8}, Shape{16, 8}, Shape{32, 64}, Shape{40, 16},
                         Shape{64, 32}, Shape{48, 72}}) {
    // Full-range codes and weights: 255 * 63 per lane, the worst case the
    // 6-bit weight headroom must survive without int16 saturation.
    std::vector<uint8_t> codes(s.in);
    for (auto& c : codes) {
      c = static_cast<uint8_t>(rng.Uniform(0.0, 255.999));
    }
    std::vector<int8_t> packed((s.in / 4) * (s.out / 8) * 32, 0);
    std::vector<std::vector<int8_t>> w(s.in, std::vector<int8_t>(s.out));
    for (size_t k = 0; k < s.in; ++k) {
      for (size_t j = 0; j < s.out; ++j) {
        w[k][j] = static_cast<int8_t>(rng.Uniform(-63.0, 63.999));
        packed[simd::Int8PackedIndex(k, j, s.out)] = w[k][j];
      }
    }
    // Plain int64 reference — overflow-free by construction.
    std::vector<int64_t> ref(s.out, 0);
    for (size_t k = 0; k < s.in; ++k) {
      for (size_t j = 0; j < s.out; ++j) {
        ref[j] += static_cast<int64_t>(codes[k]) * w[k][j];
      }
    }
    for (Tier t : tiers) {
      std::vector<int32_t> acc(s.out, -1);
      simd::KernelsForTier(t)->int8_row_gemv(codes.data(), packed.data(), s.in,
                                             s.out, acc.data());
      for (size_t j = 0; j < s.out; ++j) {
        EXPECT_EQ(static_cast<int64_t>(acc[j]), ref[j])
            << simd::TierName(t) << " " << s.in << "x" << s.out << " j=" << j;
      }
    }
  }
}

TEST(BitIdentityTest, Int8PostTanhMatchesScalarOnEveryTier) {
  const auto tiers = SupportedTiers();
  Rng rng(106);
  for (size_t out : {size_t{1}, size_t{5}, size_t{8}, size_t{13}, size_t{32},
                     size_t{64}}) {
    const size_t out_pad = (out + 7) & ~size_t{7};
    std::vector<int32_t> acc(out_pad);
    std::vector<int32_t> col_sums(out_pad);
    std::vector<float> scales(out_pad);
    std::vector<float> bias(out_pad);
    for (size_t j = 0; j < out_pad; ++j) {
      acc[j] = static_cast<int32_t>(rng.Uniform(-500000.0, 500000.0));
      col_sums[j] = static_cast<int32_t>(rng.Uniform(-2000.0, 2000.0));
      scales[j] = static_cast<float>(rng.Uniform(0.001, 0.05));
      bias[j] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    const float sx = 1.0f / 127.0f;
    std::vector<float> f_ref(out), f_out(out);
    std::vector<uint8_t> q_ref(out), q_out(out);
    simd::KernelsForTier(Tier::kScalar)
        ->int8_post_tanh(acc.data(), col_sums.data(), scales.data(), sx,
                         bias.data(), out, f_ref.data(), nullptr);
    simd::KernelsForTier(Tier::kScalar)
        ->int8_post_tanh(acc.data(), col_sums.data(), scales.data(), sx,
                         bias.data(), out, nullptr, q_ref.data());
    for (Tier t : tiers) {
      std::fill(f_out.begin(), f_out.end(), -9.0f);
      std::fill(q_out.begin(), q_out.end(), 9);
      simd::KernelsForTier(t)->int8_post_tanh(acc.data(), col_sums.data(),
                                              scales.data(), sx, bias.data(), out,
                                              f_out.data(), nullptr);
      simd::KernelsForTier(t)->int8_post_tanh(acc.data(), col_sums.data(),
                                              scales.data(), sx, bias.data(), out,
                                              nullptr, q_out.data());
      for (size_t j = 0; j < out; ++j) {
        EXPECT_EQ(f_out[j], f_ref[j]) << simd::TierName(t) << " out=" << out;
        EXPECT_EQ(q_out[j], q_ref[j]) << simd::TierName(t) << " out=" << out;
      }
    }
    // The requantized code is the offset-128 coding of the f_out activation.
    for (size_t j = 0; j < out; ++j) {
      const int expect = 128 + static_cast<int>(std::lrintf(f_ref[j] * 127.0f));
      EXPECT_EQ(static_cast<int>(q_ref[j]), std::min(255, std::max(0, expect)));
    }
  }
}

TEST(Int8AccuracyTest, QTanhStaysWithinPolynomialBound) {
  // Drive the epilogue with sx = 0 so v_j = bias_j exactly: f_out becomes
  // QTanh(bias), measurable against std::tanh. The committed coefficient set
  // has max abs error 9.855e-4 on [-3.6, 3.6] and clamps to ±tanh(3.6) beyond.
  const Kernels* k = simd::KernelsForTier(Tier::kScalar);
  std::vector<float> xs;
  for (double v = -8.0; v <= 8.0; v += 0.003) {
    xs.push_back(static_cast<float>(v));
  }
  const size_t out = xs.size();
  std::vector<int32_t> acc(out, 0), col_sums(out, 0);
  std::vector<float> scales(out, 1.0f), f_out(out);
  double max_err = 0.0;
  k->int8_post_tanh(acc.data(), col_sums.data(), scales.data(), /*sx=*/0.0f,
                    xs.data(), out, f_out.data(), nullptr);
  for (size_t i = 0; i < out; ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(f_out[i]) -
                                          std::tanh(static_cast<double>(xs[i]))));
  }
  EXPECT_LT(max_err, 1.1e-3);
}

// ---------------------------------------------------------------------------
// QuantizedMlp: the freeze/seed/forward contract over the kernels.
// ---------------------------------------------------------------------------

// The deployment trunk shape: 46 -> 64 -> 32 -> 1 (tanh, tanh, identity).
MlpT<float> MakeTrunk(Rng* rng) {
  MlpT<double> net({46, 64, 32, 1}, Activation::kTanh, Activation::kIdentity, rng);
  MlpT<float> f;
  f.CastFrom(net);
  return f;
}

TEST(QuantizedMlpTest, FreezeSplitsAtFirstNonTanhLayer) {
  Rng rng(107);
  MlpT<float> trunk = MakeTrunk(&rng);
  QuantizedMlp q;
  q.FreezeFrom(trunk);
  EXPECT_EQ(q.in_dim(), 46u);
  EXPECT_EQ(q.out_dim(), 1u);
  EXPECT_EQ(q.quantized_layer_count(), 2u);  // the two tanh layers
  EXPECT_EQ(q.float_layer_count(), 1u);      // the identity head
  EXPECT_EQ(q.split(), 0u);
  // Per-channel scales are positive and no larger than max|w|/63 allows.
  for (size_t j = 0; j < 64; ++j) {
    EXPECT_GT(q.weight_scale(0, j), 0.0f);
  }
}

TEST(QuantizedMlpTest, ForwardRowEqualsSeedPrefixPlusSuffix) {
  // For one frozen object, ForwardRow(x) must be bit-identical to the cached
  // form SeedPrefix(x) + ForwardRowSuffix(x + split) — that equivalence is the
  // whole license for the policy's seed-once-evaluate-many pattern.
  Rng rng(108);
  MlpT<float> trunk = MakeTrunk(&rng);
  constexpr size_t kSplit = 16;
  QuantizedMlp q;
  q.FreezeFrom(trunk, kSplit);
  ASSERT_EQ(q.split(), kSplit);
  Rng data_rng(109);
  for (int rep = 0; rep < 16; ++rep) {
    std::vector<float> x(46);
    for (size_t i = 0; i < kSplit; ++i) {
      x[i] = static_cast<float>(data_rng.Uniform(-1.0, 1.0));  // tanh features
    }
    for (size_t i = kSplit; i < x.size(); ++i) {
      x[i] = static_cast<float>(data_rng.Uniform(-8.0, 8.0));
    }
    float y_whole = -7.0f;
    q.ForwardRow(x.data(), &y_whole);
    float y_cached = -8.0f;
    q.SeedPrefix(x.data());
    q.ForwardRowSuffix(x.data() + kSplit, &y_cached);
    EXPECT_EQ(y_cached, y_whole) << "rep " << rep;
    // And many suffix evaluations under one seed stay self-consistent.
    float y_again = -9.0f;
    q.ForwardRowSuffix(x.data() + kSplit, &y_again);
    EXPECT_EQ(y_again, y_cached) << "rep " << rep;
  }
}

TEST(QuantizedMlpTest, QuantizedForwardTracksFloatReference) {
  // End-to-end kernel error bound on the deployment trunk shape: random
  // trunks, realistic input magnitudes, |int8 - float32| on the scalar head
  // output stays within the activation-coding budget. (Not a bit contract —
  // this bounds the quantization error itself; the trained-checkpoint action
  // gate lives in rl_test.cc.)
  Rng rng(110);
  double max_err = 0.0;
  for (int model = 0; model < 4; ++model) {
    MlpT<float> trunk = MakeTrunk(&rng);
    QuantizedMlp q;
    q.FreezeFrom(trunk);
    Rng data_rng(111 + model);
    for (int rep = 0; rep < 64; ++rep) {
      std::vector<float> x(46);
      for (auto& v : x) {
        v = static_cast<float>(data_rng.Uniform(-2.0, 2.0));
      }
      float y_f = 0.0f;
      trunk.ForwardRow(x.data(), &y_f);
      float y_q = 0.0f;
      q.ForwardRow(x.data(), &y_q);
      max_err = std::max(max_err, std::fabs(static_cast<double>(y_q - y_f)));
    }
  }
  EXPECT_LT(max_err, 0.1) << "quantization error budget";
}

}  // namespace
}  // namespace mocc
