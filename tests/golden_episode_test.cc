// Golden-file regression harness for the packet-level simulation core.
//
// tests/data/golden_episodes.txt holds full-precision (hex-float) summaries of
// fixed-seed single-bottleneck episodes captured from the event engine BEFORE the
// topology-general refactor, plus one MultiFlowCcEnv episode driven by a
// deterministic closed-form action schedule. The engine rewrite (pooled event
// heap, ACK coalescing, per-link droptail rings, contiguous flow storage) must
// reproduce these episodes: on one binary the reproduction is bit-identical
// (verified by regenerating and diffing the hex file), and against the committed
// goldens the test allows only the tiny drift that compiler flag differences can
// introduce (CI builds with -DMOCC_NATIVE_ARCH=OFF, developers with
// -march=native, so FMA contraction in smoothed-RTT style updates legitimately
// differs by ulps between binaries).
//
// Comparison contract:
//   - packet counters (sent/acked/lost) and monitor-interval counts: exact.
//     These flip only if event ordering, RNG consumption, droptail admission or
//     ACK scheduling changed — precisely the bugs this file exists to catch.
//   - times/rates (contraction-free sums and quotients of event times): 1e-9
//     relative tolerance.
//   - MultiFlowCcEnv reward sums (go through libm in the reward): 1e-6 relative.
//
// Regenerate with: MOCC_REGEN_GOLDENS=1 ./golden_episode_test
// (writes into the source tree's tests/data/; commit the result).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/bbr.h"
#include "src/baselines/cubic.h"
#include "src/baselines/vegas.h"
#include "src/envs/multi_flow_cc_env.h"
#include "src/netsim/packet_network.h"

#ifndef MOCC_TEST_DATA_DIR
#define MOCC_TEST_DATA_DIR "tests/data"
#endif

namespace mocc {
namespace {

constexpr char kGoldenFile[] = "golden_episodes.txt";
constexpr double kTimeRelTol = 1e-9;
constexpr double kRewardRelTol = 1e-6;

std::string DataPath() {
  return std::string(MOCC_TEST_DATA_DIR) + "/" + kGoldenFile;
}

// Fixed-rate and fixed-window probes (the netsim_test drivers, duplicated here so
// the golden episodes do not depend on test-only headers).
class FixedRateCc : public CongestionControl {
 public:
  explicit FixedRateCc(double rate_bps) : rate_bps_(rate_bps) {}
  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "FixedRate"; }
  double PacingRateBps() const override { return rate_bps_; }
  int monitor_calls = 0;
  void OnMonitorInterval(const MonitorReport&) override { ++monitor_calls; }

 private:
  double rate_bps_;
};

class FixedWindowCc : public CongestionControl {
 public:
  explicit FixedWindowCc(double cwnd) : cwnd_(cwnd) {}
  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "FixedWindow"; }
  double CwndPackets() const override { return cwnd_; }
  int monitor_calls = 0;
  void OnMonitorInterval(const MonitorReport&) override { ++monitor_calls; }

 private:
  double cwnd_;
};

struct FlowGold {
  int64_t sent = 0;
  int64_t acked = 0;
  int64_t lost = 0;
  int64_t mi_count = 0;
  double min_rtt_s = 0.0;
  double last_ack_s = 0.0;
  double thr_early_bps = 0.0;  // delivered rate over the first half
  double thr_late_bps = 0.0;   // delivered rate over the second half
};

struct EpisodeGold {
  std::string name;
  std::vector<FlowGold> flows;
  // MultiFlowCcEnv-only extras (empty for raw PacketNetwork episodes).
  std::vector<double> reward_sums;
  double jain = -1.0;
};

FlowGold CaptureFlow(const PacketNetwork& net, int flow_id, int monitor_calls,
                     double duration_s) {
  const FlowRecord& rec = net.record(flow_id);
  FlowGold g;
  g.sent = rec.total_sent;
  g.acked = rec.total_acked;
  g.lost = rec.total_lost;
  g.mi_count = monitor_calls;
  g.min_rtt_s = rec.min_rtt_s;
  g.last_ack_s = rec.last_ack_time_s;
  g.thr_early_bps = rec.AvgThroughputBps(0.0, duration_s / 2);
  g.thr_late_bps = rec.AvgThroughputBps(duration_s / 2, duration_s);
  return g;
}

// Episode 1: three rate-based flows (one with extra one-way delay) overdriving a
// lossy, trace-modulated bottleneck. Exercises pacing jitter RNG, Bernoulli wire
// loss, droptail admission, the bandwidth trace, and heterogeneous-RTT ACK
// scheduling — with send decisions independent of smoothed-RTT state, so the
// integer counters are stable across compiler flag variants.
EpisodeGold RunRateLossTrace() {
  constexpr double kDuration = 15.0;
  LinkParams p;
  p.bandwidth_bps = 6e6;
  p.one_way_delay_s = 0.015;
  p.queue_capacity_pkts = 40;
  p.random_loss_rate = 0.02;
  PacketNetwork net(p, /*seed=*/20260731);
  BandwidthTrace trace;
  trace.AddStep(0.0, 6e6);
  trace.AddStep(5.0, 2.5e6);
  trace.AddStep(10.0, 8e6);
  net.SetBandwidthTrace(trace);

  std::vector<FixedRateCc*> ccs;
  std::vector<int> ids;
  auto add = [&](double rate_bps, FlowOptions opts) {
    auto cc = std::make_unique<FixedRateCc>(rate_bps);
    ccs.push_back(cc.get());
    ids.push_back(net.AddFlow(std::move(cc), opts));
  };
  add(4e6, {});
  FlowOptions late;
  late.start_time_s = 2.0;
  add(3e6, late);
  FlowOptions far;
  far.extra_one_way_delay_s = 0.030;
  add(2e6, far);
  net.Run(kDuration);

  EpisodeGold gold;
  gold.name = "rate_loss_trace";
  for (size_t i = 0; i < ids.size(); ++i) {
    gold.flows.push_back(CaptureFlow(net, ids[i], ccs[i]->monitor_calls, kDuration));
  }
  return gold;
}

// Episode 2: ACK-clocked window flows against a rate-based flow on a shallow
// buffer, with a mid-episode stop. Exercises TrySendWindowed bursts, droptail
// under ack-clocking, flow stop events and the RTO check path.
EpisodeGold RunWindowMix() {
  constexpr double kDuration = 15.0;
  LinkParams p;
  p.bandwidth_bps = 8e6;
  p.one_way_delay_s = 0.020;
  p.queue_capacity_pkts = 25;
  PacketNetwork net(p, /*seed=*/424242);

  EpisodeGold gold;
  gold.name = "window_mix";
  std::vector<int> ids;
  auto w1 = std::make_unique<FixedWindowCc>(60.0);
  FixedWindowCc* w1_raw = w1.get();
  ids.push_back(net.AddFlow(std::move(w1)));
  auto w2 = std::make_unique<FixedWindowCc>(30.0);
  FixedWindowCc* w2_raw = w2.get();
  FlowOptions stopper;
  stopper.start_time_s = 1.0;
  stopper.stop_time_s = 9.0;
  ids.push_back(net.AddFlow(std::move(w2), stopper));
  auto r = std::make_unique<FixedRateCc>(3e6);
  FixedRateCc* r_raw = r.get();
  ids.push_back(net.AddFlow(std::move(r)));
  net.Run(kDuration);
  gold.flows.push_back(CaptureFlow(net, ids[0], w1_raw->monitor_calls, kDuration));
  gold.flows.push_back(CaptureFlow(net, ids[1], w2_raw->monitor_calls, kDuration));
  gold.flows.push_back(CaptureFlow(net, ids[2], r_raw->monitor_calls, kDuration));
  return gold;
}

// Episode 3: handcrafted baselines (CUBIC, BBR, Vegas) competing on a mid-range
// link — the closest analogue of the paper's friendliness runs, and the episode
// most sensitive to any change in ACK timing or event order.
EpisodeGold RunBaselineMix() {
  constexpr double kDuration = 20.0;
  LinkParams p;
  p.bandwidth_bps = 8e6;
  p.one_way_delay_s = 0.020;
  p.queue_capacity_pkts = 120;
  PacketNetwork net(p, /*seed=*/777);
  std::vector<int> ids;
  ids.push_back(net.AddFlow(std::make_unique<CubicCc>()));
  FlowOptions second;
  second.start_time_s = 3.0;
  ids.push_back(net.AddFlow(std::make_unique<BbrCc>(), second));
  ids.push_back(net.AddFlow(std::make_unique<VegasCc>()));
  net.Run(kDuration);
  EpisodeGold gold;
  gold.name = "baseline_mix";
  for (int id : ids) {
    gold.flows.push_back(CaptureFlow(net, id, 0, kDuration));
  }
  return gold;
}

// Deterministic closed-form action schedule (integer arithmetic only, so the
// driving sequence is identical on every compiler/libm).
double GoldenAction(int step, int agent) {
  return static_cast<double>((step * 7 + agent * 13) % 11 - 5) * 0.04;
}

// Episode 4: a MultiFlowCcEnv episode — 4 staggered agents plus a CUBIC
// competitor on one fixed bottleneck — capturing per-agent reward sums, average
// throughputs and the steady-state Jain index. This pins the whole env-over-
// simulator stack (synchronized MIs, fair-share reward, competitor scheduling).
EpisodeGold RunMultiFlowEpisode() {
  MultiFlowCcEnvConfig config;
  config.num_agents = 4;
  LinkParams link;
  link.bandwidth_bps = 4e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 300;
  config.fixed_link = link;
  config.agent_stagger_s = 1.0;
  CompetitorFlow competitor;
  competitor.name = "cubic";
  competitor.make = []() { return std::make_unique<CubicCc>(); };
  competitor.start_time_s = 2.0;
  competitor.stop_time_s = 8.0;
  config.competitors.push_back(std::move(competitor));
  config.max_steps_per_episode = 150;
  MultiFlowCcEnv env(config, /*seed=*/3131);
  env.SetObjective(WeightVector(0.4, 0.4, 0.2));

  std::vector<std::vector<double>> obs = env.Reset();
  EpisodeGold gold;
  gold.name = "multi_flow_episode";
  gold.reward_sums.assign(4, 0.0);
  std::vector<double> actions(4, 0.0);
  int steps = 0;
  for (bool done = false; !done; ++steps) {
    for (int i = 0; i < 4; ++i) {
      actions[static_cast<size_t>(i)] = GoldenAction(steps, i);
    }
    VectorStepResult r = env.Step(actions);
    for (int i = 0; i < 4; ++i) {
      gold.reward_sums[static_cast<size_t>(i)] += r.rewards[static_cast<size_t>(i)];
    }
    done = r.done;
  }
  const double horizon = env.now_s();
  const std::vector<double> throughputs = env.AgentAvgThroughputsBps(0.0, horizon);
  for (int i = 0; i < 4; ++i) {
    FlowGold g;
    g.thr_early_bps = throughputs[static_cast<size_t>(i)];
    g.sent = steps;
    gold.flows.push_back(g);
  }
  gold.jain = env.JainIndex(horizon / 2, horizon);
  return gold;
}

std::vector<EpisodeGold> CaptureAll() {
  std::vector<EpisodeGold> episodes;
  episodes.push_back(RunRateLossTrace());
  episodes.push_back(RunWindowMix());
  episodes.push_back(RunBaselineMix());
  episodes.push_back(RunMultiFlowEpisode());
  return episodes;
}

bool WriteGoldens(const std::string& path, const std::vector<EpisodeGold>& episodes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "# golden episode traces v1: per flow "
                  "sent acked lost mi min_rtt last_ack thr_early thr_late (hex)\n");
  for (const EpisodeGold& ep : episodes) {
    std::fprintf(f, "episode %s flows %zu\n", ep.name.c_str(), ep.flows.size());
    for (const FlowGold& g : ep.flows) {
      std::fprintf(f, "flow %lld %lld %lld %lld %a %a %a %a\n",
                   static_cast<long long>(g.sent), static_cast<long long>(g.acked),
                   static_cast<long long>(g.lost), static_cast<long long>(g.mi_count),
                   g.min_rtt_s, g.last_ack_s, g.thr_early_bps, g.thr_late_bps);
    }
    for (double reward : ep.reward_sums) {
      std::fprintf(f, "reward %a\n", reward);
    }
    if (ep.jain >= 0.0) {
      std::fprintf(f, "jain %a\n", ep.jain);
    }
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

bool ReadGoldens(const std::string& path, std::vector<EpisodeGold>* episodes) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char line[512];
  episodes->clear();
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#') {
      continue;
    }
    char name[128];
    size_t flow_count = 0;
    FlowGold g;
    long long sent = 0;
    long long acked = 0;
    long long lost = 0;
    long long mi = 0;
    double reward = 0.0;
    double jain = 0.0;
    if (std::sscanf(line, "episode %127s flows %zu", name, &flow_count) == 2) {
      EpisodeGold ep;
      ep.name = name;
      episodes->push_back(ep);
    } else if (std::sscanf(line, "flow %lld %lld %lld %lld %la %la %la %la", &sent,
                           &acked, &lost, &mi, &g.min_rtt_s, &g.last_ack_s,
                           &g.thr_early_bps, &g.thr_late_bps) == 8 &&
               !episodes->empty()) {
      g.sent = sent;
      g.acked = acked;
      g.lost = lost;
      g.mi_count = mi;
      episodes->back().flows.push_back(g);
    } else if (std::sscanf(line, "reward %la", &reward) == 1 && !episodes->empty()) {
      episodes->back().reward_sums.push_back(reward);
    } else if (std::sscanf(line, "jain %la", &jain) == 1 && !episodes->empty()) {
      episodes->back().jain = jain;
    }
  }
  std::fclose(f);
  return !episodes->empty();
}

void ExpectNearRel(double actual, double expected, double rel_tol,
                   const std::string& what) {
  const double tol = rel_tol * std::max(1.0, std::abs(expected));
  EXPECT_NEAR(actual, expected, tol) << what;
}

TEST(GoldenEpisodeTest, EnginesReproduceCommittedEpisodes) {
  const std::string path = DataPath();
  if (std::getenv("MOCC_REGEN_GOLDENS") != nullptr) {
    ASSERT_TRUE(WriteGoldens(path, CaptureAll())) << path;
    GTEST_SKIP() << "regenerated goldens in " << path;
  }
  std::vector<EpisodeGold> expected;
  ASSERT_TRUE(ReadGoldens(path, &expected))
      << path << " (regenerate with MOCC_REGEN_GOLDENS=1)";

  const std::vector<EpisodeGold> actual = CaptureAll();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t e = 0; e < expected.size(); ++e) {
    const EpisodeGold& want = expected[e];
    const EpisodeGold& got = actual[e];
    SCOPED_TRACE(want.name);
    ASSERT_EQ(got.name, want.name);
    ASSERT_EQ(got.flows.size(), want.flows.size());
    for (size_t i = 0; i < want.flows.size(); ++i) {
      const std::string tag = want.name + " flow " + std::to_string(i);
      EXPECT_EQ(got.flows[i].sent, want.flows[i].sent) << tag;
      EXPECT_EQ(got.flows[i].acked, want.flows[i].acked) << tag;
      EXPECT_EQ(got.flows[i].lost, want.flows[i].lost) << tag;
      EXPECT_EQ(got.flows[i].mi_count, want.flows[i].mi_count) << tag;
      ExpectNearRel(got.flows[i].min_rtt_s, want.flows[i].min_rtt_s, kTimeRelTol, tag);
      ExpectNearRel(got.flows[i].last_ack_s, want.flows[i].last_ack_s, kTimeRelTol, tag);
      ExpectNearRel(got.flows[i].thr_early_bps, want.flows[i].thr_early_bps, kTimeRelTol,
                    tag);
      ExpectNearRel(got.flows[i].thr_late_bps, want.flows[i].thr_late_bps, kTimeRelTol,
                    tag);
    }
    ASSERT_EQ(got.reward_sums.size(), want.reward_sums.size());
    for (size_t i = 0; i < want.reward_sums.size(); ++i) {
      ExpectNearRel(got.reward_sums[i], want.reward_sums[i], kRewardRelTol,
                    want.name + " reward " + std::to_string(i));
    }
    if (want.jain >= 0.0) {
      ExpectNearRel(got.jain, want.jain, kRewardRelTol, want.name + " jain");
    }
  }
}

// Off-by-default contract of the real-world link corpus (iid wire loss on
// LinkSpec, RED/CoDel AQM, ECN marking, wifi jitter): compiled into the engine
// but disabled, the new code must not perturb the packet stream at all. Two
// guards carry this. EnginesReproduceCommittedEpisodes above already runs with
// the corpus compiled in and pins the committed file (exact packet counts,
// documented ULP tolerances on the FMA-contraction-sensitive floats — the
// committed bytes carry one toolchain's codegen, so a literal byte compare
// would fail on every MOCC_NATIVE_ARCH=OFF CI leg for reasons unrelated to
// the corpus). The test below adds the strict byte-level form WITHIN one
// binary, where codegen is held fixed and any stray Rng draw, branch or event
// reordering from a disabled spec is the only thing that can flip a byte:
// explicitly constructing DISABLED AQM/jitter specs (droptail kind with ECN
// and RED thresholds set; a jitter spec with zero period but non-default
// slowdown and randomize_phase) must be byte-indistinguishable from never
// touching the specs at all — the empty() gates, not the field defaults, are
// what keep the stream untouched.
TEST(GoldenEpisodeTest, ExplicitlyDisabledRealWorldSpecsAreByteInvisible) {
  auto capture = [](bool decorate) {
    MultiFlowCcEnvConfig config;
    config.num_agents = 4;
    LinkParams link;
    link.bandwidth_bps = 4e6;
    link.one_way_delay_s = 0.020;
    link.queue_capacity_pkts = 300;
    config.fixed_link = link;
    config.agent_stagger_s = 1.0;
    config.max_steps_per_episode = 150;
    if (decorate) {
      config.aqm.kind = AqmKind::kDroptail;  // empty() => disabled
      config.aqm.ecn = true;
      config.aqm.red_min_pkts = 1.0;
      config.aqm.red_max_pkts = 2.0;
      config.wifi_jitter.burst_period_s = 0.0;  // empty() => disabled
      config.wifi_jitter.burst_duration_s = 5.0;
      config.wifi_jitter.service_slowdown = 9.0;
      config.wifi_jitter.randomize_phase = true;
    }
    MultiFlowCcEnv env(config, /*seed=*/3131);
    env.SetObjective(WeightVector(0.4, 0.4, 0.2));
    env.Reset();
    EpisodeGold gold;
    gold.name = "disabled_specs";
    gold.reward_sums.assign(4, 0.0);
    std::vector<double> actions(4, 0.0);
    int steps = 0;
    for (bool done = false; !done; ++steps) {
      for (int i = 0; i < 4; ++i) {
        actions[static_cast<size_t>(i)] = GoldenAction(steps, i);
      }
      VectorStepResult r = env.Step(actions);
      for (int i = 0; i < 4; ++i) {
        gold.reward_sums[static_cast<size_t>(i)] += r.rewards[static_cast<size_t>(i)];
      }
      done = r.done;
    }
    const std::vector<double> throughputs =
        env.AgentAvgThroughputsBps(0.0, env.now_s());
    for (int i = 0; i < 4; ++i) {
      FlowGold g;
      g.thr_early_bps = throughputs[static_cast<size_t>(i)];
      g.sent = steps;
      gold.flows.push_back(g);
    }
    gold.jain = env.JainIndex(env.now_s() / 2, env.now_s());
    return std::vector<EpisodeGold>{gold};
  };
  const std::string plain_path = ::testing::TempDir() + "/golden_disabled_plain.txt";
  const std::string decorated_path =
      ::testing::TempDir() + "/golden_disabled_decorated.txt";
  ASSERT_TRUE(WriteGoldens(plain_path, capture(false)));
  ASSERT_TRUE(WriteGoldens(decorated_path, capture(true)));
  auto slurp = [](const std::string& path) {
    std::string bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      char buf[4096];
      size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        bytes.append(buf, n);
      }
      std::fclose(f);
    }
    return bytes;
  };
  const std::string plain = slurp(plain_path);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(slurp(decorated_path), plain)
      << "disabled-but-explicitly-constructed AQM/jitter specs must not perturb "
         "the episode stream";
}

// Same binary, same seeds: two captures must agree to the bit — the event engine
// has no run-to-run nondeterminism (unordered containers, address-dependent
// ordering, uninitialised reads would all show up here).
TEST(GoldenEpisodeTest, CaptureIsBitDeterministicWithinBinary) {
  const std::vector<EpisodeGold> a = CaptureAll();
  const std::vector<EpisodeGold> b = CaptureAll();
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].flows.size(), b[e].flows.size());
    for (size_t i = 0; i < a[e].flows.size(); ++i) {
      EXPECT_EQ(a[e].flows[i].sent, b[e].flows[i].sent);
      EXPECT_EQ(a[e].flows[i].acked, b[e].flows[i].acked);
      EXPECT_EQ(a[e].flows[i].lost, b[e].flows[i].lost);
      EXPECT_EQ(std::memcmp(&a[e].flows[i].min_rtt_s, &b[e].flows[i].min_rtt_s,
                            sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&a[e].flows[i].thr_late_bps, &b[e].flows[i].thr_late_bps,
                            sizeof(double)),
                0);
    }
    for (size_t i = 0; i < a[e].reward_sums.size(); ++i) {
      EXPECT_EQ(std::memcmp(&a[e].reward_sums[i], &b[e].reward_sums[i], sizeof(double)),
                0);
    }
  }
}

}  // namespace
}  // namespace mocc
