// Tests for the RL substrate: GAE on hand-computed traces, Gaussian policy math, the
// PPO trainer (including learning a trivial control problem and the two-buffer Eq. 6
// update path), parallel rollout collection, DQN, and the float32 deployment
// inference parity suite (InferencePolicy vs the double path on trained models).
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/envs/env.h"
#include "src/envs/scenario.h"
#include "src/rl/actor_critic.h"
#include "src/rl/dqn.h"
#include "src/rl/evaluate.h"
#include "src/rl/inference_policy.h"
#include "src/rl/ppo.h"
#include "src/rl/rollout.h"

namespace mocc {
namespace {

// Reward = 1 - (a - target)^2 / 10 with a constant observation; optimum a = target.
class QuadEnv : public Env {
 public:
  explicit QuadEnv(double target, std::vector<double> obs = {0.5, -0.5})
      : target_(target), obs_(std::move(obs)) {}
  std::vector<double> Reset() override {
    steps_ = 0;
    return obs_;
  }
  StepResult Step(double a) override {
    StepResult r;
    r.reward = 1.0 - (a - target_) * (a - target_) / 10.0;
    r.done = ++steps_ >= 64;
    r.observation = obs_;
    return r;
  }
  size_t ObservationDim() const override { return obs_.size(); }

 private:
  double target_;
  std::vector<double> obs_;
  int steps_ = 0;
};

TEST(GaussianMathTest, LogProbMatchesClosedForm) {
  const double lp = GaussianLogProb(1.0, 0.0, 2.0);
  const double expected = -0.5 * 0.25 - std::log(2.0) - 0.5 * std::log(2.0 * M_PI);
  EXPECT_NEAR(lp, expected, 1e-12);
}

TEST(GaussianMathTest, EntropyIncreasesWithStd) {
  EXPECT_LT(GaussianEntropy(0.5), GaussianEntropy(1.0));
  EXPECT_NEAR(GaussianEntropy(1.0), 0.5 * std::log(2.0 * M_PI * std::exp(1.0)), 1e-12);
}

TEST(GaeTest, SingleStepEpisode) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 1.0;
  t.value = 0.4;
  t.done = true;
  buf.transitions.push_back(t);
  ComputeGae(&buf, 0.9, 0.95, /*bootstrap=*/123.0);  // bootstrap ignored: done
  ASSERT_EQ(buf.advantages.size(), 1u);
  EXPECT_NEAR(buf.advantages[0], 1.0 - 0.4, 1e-12);
  EXPECT_NEAR(buf.returns[0], 1.0, 1e-12);
}

TEST(GaeTest, HandComputedTwoSteps) {
  // gamma=0.5, lambda=1.0 (monte carlo): adv_t = G_t - V_t.
  RolloutBuffer buf;
  Transition t0;
  t0.reward = 1.0;
  t0.value = 0.0;
  t0.done = false;
  Transition t1;
  t1.reward = 2.0;
  t1.value = 0.0;
  t1.done = true;
  buf.transitions = {t0, t1};
  ComputeGae(&buf, 0.5, 1.0, 0.0);
  EXPECT_NEAR(buf.advantages[1], 2.0, 1e-12);
  EXPECT_NEAR(buf.advantages[0], 1.0 + 0.5 * 2.0, 1e-12);
}

TEST(GaeTest, BootstrapUsedWhenTruncated) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 0.0;
  t.value = 0.0;
  t.done = false;  // truncated, not terminal
  buf.transitions.push_back(t);
  ComputeGae(&buf, 0.9, 1.0, /*bootstrap=*/10.0);
  EXPECT_NEAR(buf.advantages[0], 0.9 * 10.0, 1e-12);
}

TEST(GaeTest, DoneBlocksCreditAcrossEpisodes) {
  RolloutBuffer buf;
  Transition t0;
  t0.reward = 0.0;
  t0.value = 0.0;
  t0.done = true;  // episode boundary
  Transition t1;
  t1.reward = 100.0;
  t1.value = 0.0;
  t1.done = true;
  buf.transitions = {t0, t1};
  ComputeGae(&buf, 0.99, 0.95, 0.0);
  EXPECT_NEAR(buf.advantages[0], 0.0, 1e-12);  // no leak from the next episode
}

TEST(NormalizeAdvantagesTest, ZeroMeanUnitVariance) {
  RolloutBuffer buf;
  buf.advantages = {1.0, 2.0, 3.0, 4.0};
  buf.transitions.resize(4);
  buf.returns.resize(4);
  NormalizeAdvantages(&buf);
  double mean = 0.0;
  for (double a : buf.advantages) {
    mean += a;
  }
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(ActorCriticTest, ForwardShapes) {
  Rng rng(1);
  MlpActorCritic model(6, &rng);
  Matrix obs(5, 6);
  obs.FillNormal(&rng, 1.0);
  Matrix mean;
  Matrix value;
  model.Forward(obs, &mean, &value);
  EXPECT_EQ(mean.rows(), 5u);
  EXPECT_EQ(mean.cols(), 1u);
  EXPECT_EQ(value.rows(), 5u);
  EXPECT_EQ(value.cols(), 1u);
}

TEST(ActorCriticTest, CloneIsIndependentDeepCopy) {
  Rng rng(2);
  MlpActorCritic model(4, &rng);
  auto clone = model.Clone();
  const std::vector<double> obs = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(model.ActionMean(obs), clone->ActionMean(obs));
  // Mutate the original; clone must not change.
  model.Params()[0].value->data()[0] += 1.0;
  EXPECT_NE(model.ActionMean(obs), clone->ActionMean(obs));
}

TEST(ActorCriticTest, SerializationRoundTrip) {
  Rng r1(3);
  Rng r2(4);
  MlpActorCritic a(4, &r1);
  MlpActorCritic b(4, &r2);
  std::stringstream ss;
  BinaryWriter w(ss, "ACTEST__", 1);
  a.Serialize(&w);
  BinaryReader r(ss, "ACTEST__", 1);
  ASSERT_TRUE(b.Deserialize(&r));
  const std::vector<double> obs = {1.0, -1.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(a.ActionMean(obs), b.ActionMean(obs));
  EXPECT_DOUBLE_EQ(a.log_std(), b.log_std());
}

TEST(PpoTest, LearnsQuadraticTarget) {
  Rng rng(3);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 512;
  config.entropy_start = 0.05;
  config.entropy_end = 0.02;
  config.entropy_decay_iters = 100;
  config.seed = 5;
  PpoTrainer trainer(&model, config);
  QuadEnv env(1.5);
  for (int i = 0; i < 150; ++i) {
    trainer.TrainIteration(&env);
  }
  EXPECT_NEAR(model.ActionMean({0.5, -0.5}), 1.5, 0.7);
}

TEST(PpoTest, RewardImprovesOverTraining) {
  Rng rng(6);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 512;
  config.entropy_start = 0.03;
  config.entropy_decay_iters = 20;
  config.seed = 10;
  PpoTrainer trainer(&model, config);
  QuadEnv env(-2.0);
  const double first = trainer.TrainIteration(&env).mean_step_reward;
  double last = first;
  for (int i = 0; i < 30; ++i) {
    last = trainer.TrainIteration(&env).mean_step_reward;
  }
  EXPECT_GT(last, first);
}

TEST(PpoTest, EntropyCoefDecaysLinearly) {
  Rng rng(7);
  MlpActorCritic model(2, &rng, {8});
  PpoConfig config;
  config.entropy_start = 1.0;
  config.entropy_end = 0.1;
  config.entropy_decay_iters = 10;
  PpoTrainer trainer(&model, config);
  EXPECT_DOUBLE_EQ(trainer.EntropyCoef(), 1.0);
  trainer.set_iteration(5);
  EXPECT_NEAR(trainer.EntropyCoef(), 0.55, 1e-9);
  trainer.set_iteration(100);
  EXPECT_DOUBLE_EQ(trainer.EntropyCoef(), 0.1);
}

TEST(PpoTest, TwoBufferUpdateImplementsJointObjective) {
  // Eq. (6): training jointly on two quad targets lands the policy between them when
  // the observation cannot distinguish the tasks.
  Rng rng(8);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 256;
  config.entropy_start = 0.05;
  config.entropy_end = 0.01;
  config.entropy_decay_iters = 30;
  config.seed = 11;
  PpoTrainer trainer(&model, config);
  QuadEnv env_a(1.0);
  QuadEnv env_b(3.0);
  for (int i = 0; i < 150; ++i) {
    RolloutBuffer a = trainer.CollectRollout(&env_a, 256);
    RolloutBuffer b = trainer.CollectRollout(&env_b, 256);
    trainer.Update({&a, &b});
  }
  // The tasks are indistinguishable from the observation, so the policy must settle
  // strictly between the two targets (pulled by both).
  const double mean = model.ActionMean({0.5, -0.5});
  EXPECT_GT(mean, 0.3);
  EXPECT_LT(mean, 3.7);
}

TEST(PpoTest, ParallelRolloutsMatchConfiguredSizes) {
  Rng rng(9);
  MlpActorCritic model(2, &rng, {8});
  PpoConfig config;
  config.seed = 12;
  PpoTrainer trainer(&model, config);
  QuadEnv e1(0.0);
  QuadEnv e2(1.0);
  QuadEnv e3(2.0);
  auto buffers = trainer.CollectRolloutsParallel({&e1, &e2, &e3}, 100);
  ASSERT_EQ(buffers.size(), 3u);
  for (const auto& b : buffers) {
    EXPECT_EQ(b.size(), 100u);
    EXPECT_EQ(b.advantages.size(), 100u);
  }
}

TEST(PpoTest, LogStdStaysWithinBounds) {
  Rng rng(10);
  MlpActorCritic model(2, &rng, {8});
  PpoConfig config;
  config.rollout_steps = 128;
  config.entropy_start = 50.0;  // absurdly strong entropy push
  config.entropy_end = 50.0;
  config.seed = 13;
  PpoTrainer trainer(&model, config);
  QuadEnv env(0.0);
  for (int i = 0; i < 5; ++i) {
    trainer.TrainIteration(&env);
  }
  EXPECT_LE(model.log_std(), config.log_std_max + 1e-12);
  EXPECT_GE(model.log_std(), config.log_std_min - 1e-12);
}

TEST(EvaluateTest, CountsEpisodesAndAveratesReward) {
  QuadEnv env(1.0);
  const EvalResult res =
      EvaluateActionFn([](const std::vector<double>&) { return 1.0; }, &env, 3);
  EXPECT_EQ(res.episodes, 3);
  EXPECT_NEAR(res.mean_step_reward, 1.0, 1e-9);  // perfect action
  EXPECT_NEAR(res.mean_episode_return, 64.0, 1e-9);
}

TEST(DqnTest, BinToActionCoversRange) {
  DqnConfig config;
  config.action_bins = 5;
  DqnTrainer trainer(2, config);
  EXPECT_DOUBLE_EQ(trainer.BinToAction(0), -1.0);
  EXPECT_DOUBLE_EQ(trainer.BinToAction(4), 1.0);
  EXPECT_DOUBLE_EQ(trainer.BinToAction(2), 0.0);
}

TEST(DqnTest, EpsilonDecays) {
  DqnConfig config;
  config.epsilon_decay_steps = 100;
  config.steps_per_iteration = 50;
  DqnTrainer trainer(2, config);
  EXPECT_DOUBLE_EQ(trainer.CurrentEpsilon(), 1.0);
  QuadEnv env(0.0);
  trainer.TrainIteration(&env);
  EXPECT_LT(trainer.CurrentEpsilon(), 1.0);
}

// ---------------------------------------------------------------------------
// Float32 deployment-inference parity (the `precision` suite).
//
// A trained model's float32 replica must make the same control decisions as the
// double path: the per-MI decision is the mean action fed to Eq. (1) with
// α = 0.025, where an action difference of 1e-3 moves the rate by 0.0025% — far
// below every other noise source in the loop. "Agreement" on one observation is
// therefore |mean_f32 - mean_d| <= 1e-3; the suite requires >= 99% agreement
// across a scenario sweep of on-policy observations and bounds the worst-case
// drift of both heads.
// ---------------------------------------------------------------------------

constexpr double kActionAgreementTol = 1e-3;

// Collects on-policy observations by running the double policy through `env`.
std::vector<std::vector<double>> CollectObservations(ActorCritic* model, Env* env,
                                                     int steps) {
  std::vector<std::vector<double>> observations;
  observations.reserve(static_cast<size_t>(steps));
  std::vector<double> obs = env->Reset();
  for (int i = 0; i < steps; ++i) {
    observations.push_back(obs);
    const StepResult r = env->Step(model->ActionMean(obs));
    obs = r.done ? env->Reset() : r.observation;
  }
  return observations;
}

struct ParityStats {
  double agreement = 0.0;      // fraction of observations within kActionAgreementTol
  double max_mean_drift = 0.0;  // worst |mean_f32 - mean_d|
  double max_value_drift = 0.0;  // worst |value_f32 - value_d|
};

ParityStats MeasureParityTol(ActorCritic* model, InferencePolicy* policy,
                             const std::vector<std::vector<double>>& observations,
                             double tol) {
  ParityStats stats;
  int agree = 0;
  for (const auto& obs : observations) {
    double mean_d = 0.0;
    double value_d = 0.0;
    model->ForwardRow(obs, &mean_d, &value_d);
    double mean_f = 0.0;
    double value_f = 0.0;
    policy->ForwardRow(obs, &mean_f, &value_f);
    const double mean_drift = std::fabs(mean_f - mean_d);
    stats.max_mean_drift = std::max(stats.max_mean_drift, mean_drift);
    stats.max_value_drift = std::max(stats.max_value_drift, std::fabs(value_f - value_d));
    if (mean_drift <= tol) {
      ++agree;
    }
  }
  stats.agreement = observations.empty()
                        ? 0.0
                        : static_cast<double>(agree) / observations.size();
  return stats;
}

ParityStats MeasureParity(ActorCritic* model, InferencePolicy* policy,
                          const std::vector<std::vector<double>>& observations) {
  return MeasureParityTol(model, policy, observations, kActionAgreementTol);
}

TEST(Float32ParityTest, TrainedMlpActorCriticAgreesAcrossQuadEnv) {
  // A genuinely trained checkpoint (not random init): weights have moved into the
  // regime the deployment path will see.
  Rng rng(31);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 256;
  config.seed = 7;
  PpoTrainer trainer(&model, config);
  QuadEnv env(1.0);
  for (int i = 0; i < 20; ++i) {
    trainer.TrainIteration(&env);
  }

  auto policy = model.MakeFloat32Policy();
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->obs_dim(), model.obs_dim());
  EXPECT_DOUBLE_EQ(policy->log_std(), model.log_std());

  const auto observations = CollectObservations(&model, &env, 512);
  const ParityStats stats = MeasureParity(&model, policy.get(), observations);
  EXPECT_GE(stats.agreement, 0.99) << "max mean drift " << stats.max_mean_drift;
  EXPECT_LT(stats.max_mean_drift, kActionAgreementTol);
  EXPECT_LT(stats.max_value_drift, 1e-2);  // the critic head is unsquashed
}

TEST(Float32ParityTest, TrainedPreferenceModelAgreesAcrossScenarioSweep) {
  // Train the Figure-3 model briefly on the training env, then sweep the
  // single-flow scenario catalog collecting on-policy observations and require
  // >= 99% action agreement with bounded per-head drift on every scenario.
  MoccConfig mocc_config;
  Rng rng(32);
  PreferenceActorCritic model(mocc_config, &rng);
  PpoConfig ppo = mocc_config.MakePpoConfig(/*seed=*/9);
  ppo.rollout_steps = 256;
  PpoTrainer trainer(&model, ppo);
  CcEnv train_env(mocc_config.MakeEnvConfig(), /*seed=*/41);
  train_env.SetObjective(WeightVector(0.6, 0.3, 0.1));
  for (int i = 0; i < 3; ++i) {
    trainer.TrainIteration(&train_env);
  }

  auto policy = model.MakeFloat32Policy();
  ASSERT_NE(policy, nullptr);
  for (const char* name : {"static", "oscillating", "random-walk", "cellular"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    auto env = scenario->MakeSingleFlowEnv(mocc_config.MakeEnvConfig(), /*seed=*/77);
    env->SetObjective(WeightVector(0.3, 0.5, 0.2));
    const auto observations = CollectObservations(&model, env.get(), 400);
    const ParityStats stats = MeasureParity(&model, policy.get(), observations);
    EXPECT_GE(stats.agreement, 0.99)
        << name << ": max mean drift " << stats.max_mean_drift;
    EXPECT_LT(stats.max_mean_drift, 1e-2) << name;
    EXPECT_LT(stats.max_value_drift, 5e-2) << name;
  }
}

// ---------------------------------------------------------------------------
// Int8 deployment-inference parity (the `precision` suite, quantized path).
//
// The int8 replica trades precision for throughput deliberately: 8-bit
// offset-128 activation codes, 6-bit per-output-channel weights and a
// polynomial tanh put its intrinsic resolution around the activation coding
// step (~1/127 ≈ 7.9e-3 per layer), so the float32 agreement bar of 1e-3 is
// not meaningful for it. The deployment question is whether the drift is
// control-relevant: with α = 0.025 in Eq. (1), a mean-action difference of
// 5e-2 moves the per-MI rate by 0.125% — still far below loop noise (a single
// queued packet moves the latency signal orders of magnitude more). Measured
// worst-case drift on trained checkpoints is ~3e-2; the gate requires >= 99%
// of on-policy observations within 5e-2 and caps worst-case drift of both
// heads at 1e-1.
// ---------------------------------------------------------------------------

constexpr double kInt8ActionAgreementTol = 5e-2;

TEST(Int8ParityTest, TrainedMlpActorCriticAgreesAcrossQuadEnv) {
  Rng rng(31);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 256;
  config.seed = 7;
  PpoTrainer trainer(&model, config);
  QuadEnv env(1.0);
  for (int i = 0; i < 20; ++i) {
    trainer.TrainIteration(&env);
  }

  auto policy = model.MakeInt8Policy();
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->obs_dim(), model.obs_dim());

  const auto observations = CollectObservations(&model, &env, 512);
  const ParityStats stats =
      MeasureParityTol(&model, policy.get(), observations, kInt8ActionAgreementTol);
  EXPECT_GE(stats.agreement, 0.99) << "max mean drift " << stats.max_mean_drift;
  EXPECT_LT(stats.max_mean_drift, 1e-1);
  EXPECT_LT(stats.max_value_drift, 1e-1);
}

TEST(Int8ParityTest, TrainedPreferenceModelAgreesAcrossScenarioSweep) {
  // Same trained checkpoint + scenario sweep as the float32 gate, against the
  // quantized replica. This is the acceptance gate for shipping --precision
  // int8: every scenario must hit >= 99% agreement at the deployment tolerance.
  MoccConfig mocc_config;
  Rng rng(32);
  PreferenceActorCritic model(mocc_config, &rng);
  PpoConfig ppo = mocc_config.MakePpoConfig(/*seed=*/9);
  ppo.rollout_steps = 256;
  PpoTrainer trainer(&model, ppo);
  CcEnv train_env(mocc_config.MakeEnvConfig(), /*seed=*/41);
  train_env.SetObjective(WeightVector(0.6, 0.3, 0.1));
  for (int i = 0; i < 3; ++i) {
    trainer.TrainIteration(&train_env);
  }

  auto policy = model.MakeInt8Policy();
  ASSERT_NE(policy, nullptr);
  for (const char* name : {"static", "oscillating", "random-walk", "cellular"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    auto env = scenario->MakeSingleFlowEnv(mocc_config.MakeEnvConfig(), /*seed=*/77);
    env->SetObjective(WeightVector(0.3, 0.5, 0.2));
    const auto observations = CollectObservations(&model, env.get(), 400);
    const ParityStats stats = MeasureParityTol(&model, policy.get(), observations,
                                               kInt8ActionAgreementTol);
    EXPECT_GE(stats.agreement, 0.99)
        << name << ": max mean drift " << stats.max_mean_drift;
    EXPECT_LT(stats.max_mean_drift, 1e-1) << name;
    EXPECT_LT(stats.max_value_drift, 1e-1) << name;
  }
}

TEST(Int8ParityTest, PreferencePolicyPrefixCacheIsCoherent) {
  // The int8 wrapper caches the quantized PN-prefix contribution (SeedPrefix)
  // keyed on the leading weight vector, like the f32 l0_partial trick. A
  // w-change/revert sequence must be bit-identical to a cache-cold replica.
  MoccConfig config;
  Rng rng(33);
  PreferenceActorCritic model(config, &rng);
  auto cached = model.MakeInt8Policy();
  ASSERT_NE(cached, nullptr);

  Rng obs_rng(34);
  auto make_obs = [&](double w_thr, double w_lat, double w_loss) {
    std::vector<double> obs(config.ObsDim());
    obs[0] = w_thr;
    obs[1] = w_lat;
    obs[2] = w_loss;
    for (size_t i = 3; i < obs.size(); ++i) {
      obs[i] = obs_rng.Uniform(-1.0, 1.0);
    }
    return obs;
  };
  const std::vector<std::vector<double>> sequence = {
      make_obs(0.6, 0.3, 0.1), make_obs(0.6, 0.3, 0.1), make_obs(0.1, 0.8, 0.1),
      make_obs(0.6, 0.3, 0.1)};
  for (const auto& obs : sequence) {
    double mean_cached = 0.0;
    double value_cached = 0.0;
    cached->ForwardRow(obs, &mean_cached, &value_cached);
    auto fresh = model.MakeInt8Policy();
    double mean_fresh = 0.0;
    double value_fresh = 0.0;
    fresh->ForwardRow(obs, &mean_fresh, &value_fresh);
    EXPECT_EQ(mean_cached, mean_fresh);
    EXPECT_EQ(value_cached, value_fresh);
  }
}

TEST(Float32ParityTest, PreferencePolicyPnCacheIsCoherent) {
  // The f32 wrapper caches PN features keyed on the leading weight vector. Runs
  // through a w-change/revert sequence must be bit-identical to a cache-cold
  // replica evaluating each observation fresh.
  MoccConfig config;
  Rng rng(33);
  PreferenceActorCritic model(config, &rng);
  auto cached = model.MakeFloat32Policy();
  ASSERT_NE(cached, nullptr);

  Rng obs_rng(34);
  auto make_obs = [&](double w_thr, double w_lat, double w_loss) {
    std::vector<double> obs(config.ObsDim());
    obs[0] = w_thr;
    obs[1] = w_lat;
    obs[2] = w_loss;
    for (size_t i = 3; i < obs.size(); ++i) {
      obs[i] = obs_rng.Uniform(-1.0, 1.0);
    }
    return obs;
  };
  // Same w twice (cache hit), a different w (miss + refill), then the first w
  // again (miss — the cache holds only the last w).
  const std::vector<std::vector<double>> sequence = {
      make_obs(0.6, 0.3, 0.1), make_obs(0.6, 0.3, 0.1), make_obs(0.1, 0.8, 0.1),
      make_obs(0.6, 0.3, 0.1)};
  for (const auto& obs : sequence) {
    double mean_cached = 0.0;
    double value_cached = 0.0;
    cached->ForwardRow(obs, &mean_cached, &value_cached);
    // Cache-cold reference: a fresh replica of the same model.
    auto fresh = model.MakeFloat32Policy();
    double mean_fresh = 0.0;
    double value_fresh = 0.0;
    fresh->ForwardRow(obs, &mean_fresh, &value_fresh);
    EXPECT_EQ(mean_cached, mean_fresh);
    EXPECT_EQ(value_cached, value_fresh);
  }
}

TEST(Float32ParityTest, Float32PolicyEvaluationMatchesDoubleEvaluationClosely) {
  // End-to-end episode divergence bound: on the deterministic QuadEnv the f32
  // and double policies must earn nearly identical returns.
  Rng rng(35);
  MlpActorCritic model(2, &rng, {16, 16});
  QuadEnv env(0.5);
  const EvalResult d = EvaluatePolicy(&model, &env, 3);
  std::unique_ptr<InferencePolicy> policy = model.MakeFloat32Policy();
  ASSERT_NE(policy, nullptr);
  const EvalResult f = EvaluatePolicy(policy.get(), &env, 3);
  EXPECT_EQ(f.episodes, d.episodes);
  EXPECT_NEAR(f.mean_episode_return, d.mean_episode_return, 1e-4);
  EXPECT_NEAR(f.mean_step_reward, d.mean_step_reward, 1e-6);
}

TEST(DqnTest, LearnsQuadraticTargetWithinDiscretization) {
  DqnConfig config;
  config.action_bins = 9;
  config.steps_per_iteration = 512;
  config.epsilon_decay_steps = 4000;
  config.seed = 21;
  DqnTrainer trainer(2, config);
  QuadEnv env(0.5);  // representable: bins at 0.25 spacing
  for (int i = 0; i < 12; ++i) {
    trainer.TrainIteration(&env);
  }
  EXPECT_NEAR(trainer.GreedyAction({0.5, -0.5}), 0.5, 0.3);
}

}  // namespace
}  // namespace mocc
