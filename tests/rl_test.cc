// Tests for the RL substrate: GAE on hand-computed traces, Gaussian policy math, the
// PPO trainer (including learning a trivial control problem and the two-buffer Eq. 6
// update path), parallel rollout collection, and DQN.
#include <cmath>

#include <gtest/gtest.h>

#include "src/envs/env.h"
#include "src/rl/actor_critic.h"
#include "src/rl/dqn.h"
#include "src/rl/evaluate.h"
#include "src/rl/ppo.h"
#include "src/rl/rollout.h"

namespace mocc {
namespace {

// Reward = 1 - (a - target)^2 / 10 with a constant observation; optimum a = target.
class QuadEnv : public Env {
 public:
  explicit QuadEnv(double target, std::vector<double> obs = {0.5, -0.5})
      : target_(target), obs_(std::move(obs)) {}
  std::vector<double> Reset() override {
    steps_ = 0;
    return obs_;
  }
  StepResult Step(double a) override {
    StepResult r;
    r.reward = 1.0 - (a - target_) * (a - target_) / 10.0;
    r.done = ++steps_ >= 64;
    r.observation = obs_;
    return r;
  }
  size_t ObservationDim() const override { return obs_.size(); }

 private:
  double target_;
  std::vector<double> obs_;
  int steps_ = 0;
};

TEST(GaussianMathTest, LogProbMatchesClosedForm) {
  const double lp = GaussianLogProb(1.0, 0.0, 2.0);
  const double expected = -0.5 * 0.25 - std::log(2.0) - 0.5 * std::log(2.0 * M_PI);
  EXPECT_NEAR(lp, expected, 1e-12);
}

TEST(GaussianMathTest, EntropyIncreasesWithStd) {
  EXPECT_LT(GaussianEntropy(0.5), GaussianEntropy(1.0));
  EXPECT_NEAR(GaussianEntropy(1.0), 0.5 * std::log(2.0 * M_PI * std::exp(1.0)), 1e-12);
}

TEST(GaeTest, SingleStepEpisode) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 1.0;
  t.value = 0.4;
  t.done = true;
  buf.transitions.push_back(t);
  ComputeGae(&buf, 0.9, 0.95, /*bootstrap=*/123.0);  // bootstrap ignored: done
  ASSERT_EQ(buf.advantages.size(), 1u);
  EXPECT_NEAR(buf.advantages[0], 1.0 - 0.4, 1e-12);
  EXPECT_NEAR(buf.returns[0], 1.0, 1e-12);
}

TEST(GaeTest, HandComputedTwoSteps) {
  // gamma=0.5, lambda=1.0 (monte carlo): adv_t = G_t - V_t.
  RolloutBuffer buf;
  Transition t0;
  t0.reward = 1.0;
  t0.value = 0.0;
  t0.done = false;
  Transition t1;
  t1.reward = 2.0;
  t1.value = 0.0;
  t1.done = true;
  buf.transitions = {t0, t1};
  ComputeGae(&buf, 0.5, 1.0, 0.0);
  EXPECT_NEAR(buf.advantages[1], 2.0, 1e-12);
  EXPECT_NEAR(buf.advantages[0], 1.0 + 0.5 * 2.0, 1e-12);
}

TEST(GaeTest, BootstrapUsedWhenTruncated) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 0.0;
  t.value = 0.0;
  t.done = false;  // truncated, not terminal
  buf.transitions.push_back(t);
  ComputeGae(&buf, 0.9, 1.0, /*bootstrap=*/10.0);
  EXPECT_NEAR(buf.advantages[0], 0.9 * 10.0, 1e-12);
}

TEST(GaeTest, DoneBlocksCreditAcrossEpisodes) {
  RolloutBuffer buf;
  Transition t0;
  t0.reward = 0.0;
  t0.value = 0.0;
  t0.done = true;  // episode boundary
  Transition t1;
  t1.reward = 100.0;
  t1.value = 0.0;
  t1.done = true;
  buf.transitions = {t0, t1};
  ComputeGae(&buf, 0.99, 0.95, 0.0);
  EXPECT_NEAR(buf.advantages[0], 0.0, 1e-12);  // no leak from the next episode
}

TEST(NormalizeAdvantagesTest, ZeroMeanUnitVariance) {
  RolloutBuffer buf;
  buf.advantages = {1.0, 2.0, 3.0, 4.0};
  buf.transitions.resize(4);
  buf.returns.resize(4);
  NormalizeAdvantages(&buf);
  double mean = 0.0;
  for (double a : buf.advantages) {
    mean += a;
  }
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(ActorCriticTest, ForwardShapes) {
  Rng rng(1);
  MlpActorCritic model(6, &rng);
  Matrix obs(5, 6);
  obs.FillNormal(&rng, 1.0);
  Matrix mean;
  Matrix value;
  model.Forward(obs, &mean, &value);
  EXPECT_EQ(mean.rows(), 5u);
  EXPECT_EQ(mean.cols(), 1u);
  EXPECT_EQ(value.rows(), 5u);
  EXPECT_EQ(value.cols(), 1u);
}

TEST(ActorCriticTest, CloneIsIndependentDeepCopy) {
  Rng rng(2);
  MlpActorCritic model(4, &rng);
  auto clone = model.Clone();
  const std::vector<double> obs = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(model.ActionMean(obs), clone->ActionMean(obs));
  // Mutate the original; clone must not change.
  model.Params()[0].value->data()[0] += 1.0;
  EXPECT_NE(model.ActionMean(obs), clone->ActionMean(obs));
}

TEST(ActorCriticTest, SerializationRoundTrip) {
  Rng r1(3);
  Rng r2(4);
  MlpActorCritic a(4, &r1);
  MlpActorCritic b(4, &r2);
  std::stringstream ss;
  BinaryWriter w(ss, "ACTEST__", 1);
  a.Serialize(&w);
  BinaryReader r(ss, "ACTEST__", 1);
  ASSERT_TRUE(b.Deserialize(&r));
  const std::vector<double> obs = {1.0, -1.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(a.ActionMean(obs), b.ActionMean(obs));
  EXPECT_DOUBLE_EQ(a.log_std(), b.log_std());
}

TEST(PpoTest, LearnsQuadraticTarget) {
  Rng rng(3);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 512;
  config.entropy_start = 0.05;
  config.entropy_end = 0.02;
  config.entropy_decay_iters = 100;
  config.seed = 5;
  PpoTrainer trainer(&model, config);
  QuadEnv env(1.5);
  for (int i = 0; i < 150; ++i) {
    trainer.TrainIteration(&env);
  }
  EXPECT_NEAR(model.ActionMean({0.5, -0.5}), 1.5, 0.7);
}

TEST(PpoTest, RewardImprovesOverTraining) {
  Rng rng(6);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 512;
  config.entropy_start = 0.03;
  config.entropy_decay_iters = 20;
  config.seed = 10;
  PpoTrainer trainer(&model, config);
  QuadEnv env(-2.0);
  const double first = trainer.TrainIteration(&env).mean_step_reward;
  double last = first;
  for (int i = 0; i < 30; ++i) {
    last = trainer.TrainIteration(&env).mean_step_reward;
  }
  EXPECT_GT(last, first);
}

TEST(PpoTest, EntropyCoefDecaysLinearly) {
  Rng rng(7);
  MlpActorCritic model(2, &rng, {8});
  PpoConfig config;
  config.entropy_start = 1.0;
  config.entropy_end = 0.1;
  config.entropy_decay_iters = 10;
  PpoTrainer trainer(&model, config);
  EXPECT_DOUBLE_EQ(trainer.EntropyCoef(), 1.0);
  trainer.set_iteration(5);
  EXPECT_NEAR(trainer.EntropyCoef(), 0.55, 1e-9);
  trainer.set_iteration(100);
  EXPECT_DOUBLE_EQ(trainer.EntropyCoef(), 0.1);
}

TEST(PpoTest, TwoBufferUpdateImplementsJointObjective) {
  // Eq. (6): training jointly on two quad targets lands the policy between them when
  // the observation cannot distinguish the tasks.
  Rng rng(8);
  MlpActorCritic model(2, &rng, {16, 16});
  PpoConfig config;
  config.rollout_steps = 256;
  config.entropy_start = 0.05;
  config.entropy_end = 0.01;
  config.entropy_decay_iters = 30;
  config.seed = 11;
  PpoTrainer trainer(&model, config);
  QuadEnv env_a(1.0);
  QuadEnv env_b(3.0);
  for (int i = 0; i < 150; ++i) {
    RolloutBuffer a = trainer.CollectRollout(&env_a, 256);
    RolloutBuffer b = trainer.CollectRollout(&env_b, 256);
    trainer.Update({&a, &b});
  }
  // The tasks are indistinguishable from the observation, so the policy must settle
  // strictly between the two targets (pulled by both).
  const double mean = model.ActionMean({0.5, -0.5});
  EXPECT_GT(mean, 0.3);
  EXPECT_LT(mean, 3.7);
}

TEST(PpoTest, ParallelRolloutsMatchConfiguredSizes) {
  Rng rng(9);
  MlpActorCritic model(2, &rng, {8});
  PpoConfig config;
  config.seed = 12;
  PpoTrainer trainer(&model, config);
  QuadEnv e1(0.0);
  QuadEnv e2(1.0);
  QuadEnv e3(2.0);
  auto buffers = trainer.CollectRolloutsParallel({&e1, &e2, &e3}, 100);
  ASSERT_EQ(buffers.size(), 3u);
  for (const auto& b : buffers) {
    EXPECT_EQ(b.size(), 100u);
    EXPECT_EQ(b.advantages.size(), 100u);
  }
}

TEST(PpoTest, LogStdStaysWithinBounds) {
  Rng rng(10);
  MlpActorCritic model(2, &rng, {8});
  PpoConfig config;
  config.rollout_steps = 128;
  config.entropy_start = 50.0;  // absurdly strong entropy push
  config.entropy_end = 50.0;
  config.seed = 13;
  PpoTrainer trainer(&model, config);
  QuadEnv env(0.0);
  for (int i = 0; i < 5; ++i) {
    trainer.TrainIteration(&env);
  }
  EXPECT_LE(model.log_std(), config.log_std_max + 1e-12);
  EXPECT_GE(model.log_std(), config.log_std_min - 1e-12);
}

TEST(EvaluateTest, CountsEpisodesAndAveratesReward) {
  QuadEnv env(1.0);
  const EvalResult res =
      EvaluateActionFn([](const std::vector<double>&) { return 1.0; }, &env, 3);
  EXPECT_EQ(res.episodes, 3);
  EXPECT_NEAR(res.mean_step_reward, 1.0, 1e-9);  // perfect action
  EXPECT_NEAR(res.mean_episode_return, 64.0, 1e-9);
}

TEST(DqnTest, BinToActionCoversRange) {
  DqnConfig config;
  config.action_bins = 5;
  DqnTrainer trainer(2, config);
  EXPECT_DOUBLE_EQ(trainer.BinToAction(0), -1.0);
  EXPECT_DOUBLE_EQ(trainer.BinToAction(4), 1.0);
  EXPECT_DOUBLE_EQ(trainer.BinToAction(2), 0.0);
}

TEST(DqnTest, EpsilonDecays) {
  DqnConfig config;
  config.epsilon_decay_steps = 100;
  config.steps_per_iteration = 50;
  DqnTrainer trainer(2, config);
  EXPECT_DOUBLE_EQ(trainer.CurrentEpsilon(), 1.0);
  QuadEnv env(0.0);
  trainer.TrainIteration(&env);
  EXPECT_LT(trainer.CurrentEpsilon(), 1.0);
}

TEST(DqnTest, LearnsQuadraticTargetWithinDiscretization) {
  DqnConfig config;
  config.action_bins = 9;
  config.steps_per_iteration = 512;
  config.epsilon_decay_steps = 4000;
  config.seed = 21;
  DqnTrainer trainer(2, config);
  QuadEnv env(0.5);  // representable: bins at 0.25 spacing
  for (int i = 0; i < 12; ++i) {
    trainer.TrainIteration(&env);
  }
  EXPECT_NEAR(trainer.GreedyAction({0.5, -0.5}), 0.5, 0.3);
}

}  // namespace
}  // namespace mocc
