// Precision harness for the float32 NN substrate (the deployment-inference path).
//
// Every MatrixT<float> kernel is checked elementwise against the MatrixT<double>
// reference on the same values, with explicit tolerance bounds derived from the
// reduction length: a length-K ascending-order float accumulation of values bounded
// by M carries worst-case error ~ K * eps_f32 * M (eps_f32 = 2^-24), and casting the
// double reference to float adds at most 0.5 ulp per element. The bounds below use a
// small constant slack on top of that model rather than hiding behind loose absolute
// epsilons, so a kernel that silently reorders its accumulation or drops to a less
// accurate algorithm fails the suite. FastTanh<float> gets a dense max-error
// characterization against libm's double tanh.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/fast_math.h"
#include "src/nn/matrix.h"
#include "src/nn/mlp.h"

namespace mocc {
namespace {

constexpr double kEpsF32 = 1.1920928955078125e-7;  // 2^-24 * 2 = std eps of float

// Elementwise |f32 - f64| <= bound, reported with the offending index.
void ExpectClose(const MatrixT<float>& f32, const MatrixT<double>& f64, double bound) {
  ASSERT_EQ(f32.rows(), f64.rows());
  ASSERT_EQ(f32.cols(), f64.cols());
  for (size_t i = 0; i < f64.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(f32.data()[i]), f64.data()[i], bound)
        << "element " << i;
  }
}

// Max |value| of a matrix (for scaling error bounds).
double MaxAbs(const MatrixT<double>& m) {
  double max_abs = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(m.data()[i]));
  }
  return max_abs;
}

// Accumulation error model: K float fused-multiply-adds of products bounded by M,
// plus the 0.5-ulp input casts. The factor 4 covers the products' own rounding and
// the possibility of FMA/non-FMA codegen differences between the two kernels.
double ReductionBound(size_t k, double max_abs_product) {
  return 4.0 * static_cast<double>(k) * kEpsF32 * max_abs_product;
}

TEST(MatrixFloat32Test, MatMulMatchesDoubleWithinReductionBound) {
  Rng rng(11);
  Matrix a64(9, 33);
  Matrix b64(33, 17);
  a64.FillNormal(&rng, 1.0);
  b64.FillNormal(&rng, 1.0);
  MatrixT<float> a32;
  MatrixT<float> b32;
  a32.CastFrom(a64);
  b32.CastFrom(b64);

  Matrix c64;
  MatMulInto(a64, b64, &c64);
  MatrixT<float> c32;
  MatMulInto(a32, b32, &c32);
  const double bound = ReductionBound(33, MaxAbs(a64) * MaxAbs(b64));
  ExpectClose(c32, c64, bound);
}

TEST(MatrixFloat32Test, MatMulBiasMatchesDoubleWithinReductionBound) {
  Rng rng(12);
  Matrix a64(6, 64);
  Matrix b64(64, 32);
  Matrix bias64(1, 32);
  a64.FillNormal(&rng, 1.0);
  b64.FillNormal(&rng, 1.0);
  bias64.FillNormal(&rng, 1.0);
  MatrixT<float> a32;
  MatrixT<float> b32;
  MatrixT<float> bias32;
  a32.CastFrom(a64);
  b32.CastFrom(b64);
  bias32.CastFrom(bias64);

  Matrix c64;
  MatMulBiasInto(a64, b64, bias64, &c64);
  MatrixT<float> c32;
  MatMulBiasInto(a32, b32, bias32, &c32);
  const double bound = ReductionBound(64 + 1, MaxAbs(a64) * MaxAbs(b64) + MaxAbs(bias64));
  ExpectClose(c32, c64, bound);
}

TEST(MatrixFloat32Test, RowMatVecBiasIsBitIdenticalToBatchedFloatKernel) {
  // The single-row kernel and the batched MatMulBiasInto must stay the SAME kernel
  // in float exactly as they are in double: bit-for-bit, not just close.
  Rng rng(13);
  Matrix w64(48, 32);
  Matrix b64(1, 32);
  Matrix x64(1, 48);
  w64.FillNormal(&rng, 0.7);
  b64.FillNormal(&rng, 0.7);
  x64.FillNormal(&rng, 0.7);
  MatrixT<float> w32;
  MatrixT<float> b32;
  MatrixT<float> x32;
  w32.CastFrom(w64);
  b32.CastFrom(b64);
  x32.CastFrom(x64);

  MatrixT<float> batched;
  MatMulBiasInto(x32, w32, b32, &batched);
  std::vector<float> row(32);
  RowMatVecBias(x32.data(), w32.data(), b32.data(), row.data(), 48, 32);
  for (size_t j = 0; j < row.size(); ++j) {
    EXPECT_EQ(row[j], batched(0, j)) << "output " << j;
  }
}

TEST(MatrixFloat32Test, TransposedProductsMatchDoubleWithinReductionBound) {
  Rng rng(14);
  Matrix a64(21, 13);
  Matrix b64(21, 19);
  a64.FillNormal(&rng, 1.0);
  b64.FillNormal(&rng, 1.0);
  MatrixT<float> a32;
  MatrixT<float> b32;
  a32.CastFrom(a64);
  b32.CastFrom(b64);

  // A^T * B reduces over rows (21).
  Matrix ta64;
  MatMulTransposeAInto(a64, b64, &ta64);
  MatrixT<float> ta32;
  MatMulTransposeAInto(a32, b32, &ta32);
  ExpectClose(ta32, ta64, ReductionBound(21, MaxAbs(a64) * MaxAbs(b64)));

  // A * D^T reduces over cols (13).
  Matrix d64(19, 13);
  d64.FillNormal(&rng, 1.0);
  MatrixT<float> d32;
  d32.CastFrom(d64);
  Matrix tb64;
  MatMulTransposeBInto(a64, d64, &tb64);
  MatrixT<float> tb32;
  MatMulTransposeBInto(a32, d32, &tb32);
  ExpectClose(tb32, tb64, ReductionBound(13, MaxAbs(a64) * MaxAbs(d64)));
}

TEST(MatrixFloat32Test, AccumulateKernelsMatchDoubleWithinReductionBound) {
  Rng rng(15);
  Matrix a64(16, 9);
  Matrix b64(16, 11);
  a64.FillNormal(&rng, 1.0);
  b64.FillNormal(&rng, 1.0);
  MatrixT<float> a32;
  MatrixT<float> b32;
  a32.CastFrom(a64);
  b32.CastFrom(b64);

  // Two accumulation rounds on a non-zero base (the gradient-accumulation pattern).
  Matrix acc64(9, 11, 0.25);
  MatrixT<float> acc32(9, 11, 0.25f);
  MatMulTransposeAAccumulate(a64, b64, &acc64);
  MatMulTransposeAAccumulate(a64, b64, &acc64);
  MatMulTransposeAAccumulate(a32, b32, &acc32);
  MatMulTransposeAAccumulate(a32, b32, &acc32);
  ExpectClose(acc32, acc64, ReductionBound(2 * 16 + 1, MaxAbs(a64) * MaxAbs(b64) + 0.25));

  Matrix sums64(1, 11, 1.0);
  MatrixT<float> sums32(1, 11, 1.0f);
  ColumnSumsAccumulate(b64, &sums64);
  ColumnSumsAccumulate(b32, &sums32);
  ExpectClose(sums32, sums64, ReductionBound(16 + 1, MaxAbs(b64) + 1.0));
}

TEST(MatrixFloat32Test, CastFromRoundTripPreservesFloatValues) {
  // double -> float loses precision once; float -> double -> float must not lose
  // any more (float values are exactly representable as doubles).
  Rng rng(16);
  Matrix m64(7, 7);
  m64.FillNormal(&rng, 2.0);
  MatrixT<float> m32;
  m32.CastFrom(m64);
  Matrix back64;
  back64.CastFrom(m32);
  MatrixT<float> back32;
  back32.CastFrom(back64);
  for (size_t i = 0; i < m32.size(); ++i) {
    EXPECT_EQ(m32.data()[i], back32.data()[i]);
  }
}

// ---------------------------------------------------------------------------
// FastTanh<float> characterization.
// ---------------------------------------------------------------------------

TEST(FastTanhFloat32Test, MaxAbsoluteErrorBelowBoundOnDenseSweep) {
  // Dense uniform sweep across the interesting range plus the saturation edges.
  // The implementation's design error budget is ~a few float ulps of the result;
  // 1e-6 absolute is the asserted contract (documented in fast_math.h).
  double max_err = 0.0;
  float worst = 0.0f;
  for (int i = -1200000; i <= 1200000; ++i) {
    const float x = static_cast<float>(i) * 1e-5f;  // [-12, 12] at 1e-5 spacing
    const double err =
        std::fabs(static_cast<double>(FastTanh(x)) - std::tanh(static_cast<double>(x)));
    if (err > max_err) {
      max_err = err;
      worst = x;
    }
  }
  EXPECT_LT(max_err, 1e-6) << "worst x = " << worst;
}

TEST(FastTanhFloat32Test, InvariantsZeroSymmetryRangeAndNan) {
  EXPECT_EQ(FastTanh(0.0f), 0.0f);
  // Never exceeds ±1 — at saturation the correctly rounded float tanh IS ±1.0f
  // (std::tanh(10.0f) == 1.0f), and the backward pass's 1 - y² derivative only
  // needs |y| <= 1, not strict interiority.
  for (const float x : {0.5f, 5.0f, 9.99f, 10.0f, 50.0f, 1e30f,
                        std::numeric_limits<float>::infinity()}) {
    EXPECT_LE(FastTanh(x), 1.0f) << x;
    EXPECT_GE(FastTanh(-x), -1.0f) << x;
    // Odd symmetry is exact: the sign is applied after the magnitude computation.
    EXPECT_EQ(FastTanh(-x), -FastTanh(x)) << x;
  }
  // Below saturation the output is strictly interior.
  for (const float x : {0.5f, 2.0f, 5.0f, 8.0f}) {
    EXPECT_LT(FastTanh(x), 1.0f) << x;
    EXPECT_GT(FastTanh(-x), -1.0f) << x;
  }
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(FastTanh(nan)));
}

TEST(FastTanhFloat32Test, CrossoverIsSeamAndDerivativeConsistent) {
  // No discontinuity at the small-x crossover (0.04): neighbouring values on both
  // sides must stay within a few result-ulps of each other.
  const float below = FastTanh(0.0399999f);
  const float above = FastTanh(0.0400001f);
  EXPECT_NEAR(static_cast<double>(above) - static_cast<double>(below), 0.0, 1e-6);
  // The backward pass derives d/dx from the output as 1 - y^2; outputs strictly
  // inside (-1,1) keep that derivative in (0, 1].
  for (const float x : {-8.0f, -1.0f, -0.01f, 0.0f, 0.01f, 1.0f, 8.0f}) {
    const float y = FastTanh(x);
    const float deriv = 1.0f - y * y;
    EXPECT_GT(deriv, 0.0f) << x;
    EXPECT_LE(deriv, 1.0f) << x;
  }
}

// ---------------------------------------------------------------------------
// MlpT<float> end-to-end: the cast replica against the double network.
// ---------------------------------------------------------------------------

TEST(MlpFloat32Test, CastReplicaForwardRowTracksDoubleNetwork) {
  Rng rng(21);
  Mlp net64({33, 64, 32, 1}, Activation::kTanh, Activation::kIdentity, &rng);
  MlpT<float> net32;
  net32.CastFrom(net64);
  ASSERT_EQ(net32.in_dim(), net64.in_dim());
  ASSERT_EQ(net32.out_dim(), net64.out_dim());
  ASSERT_EQ(net32.ParameterCount(), net64.ParameterCount());

  Rng obs_rng(22);
  double max_err = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> obs64(33);
    std::vector<float> obs32(33);
    for (size_t i = 0; i < obs64.size(); ++i) {
      obs64[i] = obs_rng.Uniform(-1.5, 1.5);
      obs32[i] = static_cast<float>(obs64[i]);
    }
    double out64 = 0.0;
    float out32 = 0.0f;
    net64.ForwardRow(obs64.data(), &out64);
    net32.ForwardRow(obs32.data(), &out32);
    max_err = std::max(max_err, std::fabs(static_cast<double>(out32) - out64));
  }
  // Three layers of reduction (<=64 wide) and tanh squashing: per-layer float
  // error stays ~ReductionBound(64, ~1) and tanh contracts it; 1e-4 on the head
  // is a generous but non-vacuous contract for this architecture.
  EXPECT_LT(max_err, 1e-4);
}

TEST(MlpFloat32Test, FloatForwardRowBitMatchesFloatBatchedForward) {
  // The f32 fast path must keep the double path's internal-consistency contract:
  // ForwardRow == 1-row batched Forward, bit-for-bit, within the same precision.
  Rng rng(23);
  Mlp net64({10, 16, 8, 2}, Activation::kTanh, Activation::kTanh, &rng);
  MlpT<float> net32;
  net32.CastFrom(net64);
  Rng obs_rng(24);
  MatrixT<float> x(1, 10);
  for (size_t i = 0; i < 10; ++i) {
    x(0, i) = static_cast<float>(obs_rng.Uniform(-2.0, 2.0));
  }
  MatrixT<float> batched;
  net32.ForwardInto(x, &batched);
  std::vector<float> row_in = x.Row(0);
  std::vector<float> row_out;
  net32.ForwardRow(row_in, &row_out);
  ASSERT_EQ(row_out.size(), batched.cols());
  for (size_t j = 0; j < row_out.size(); ++j) {
    EXPECT_EQ(row_out[j], batched(0, j)) << "output " << j;
  }
}

TEST(MlpFloat32Test, SerializationRoundTripsThroughDoubleFormat) {
  // Float networks read/write the double on-disk format; a float->disk->float
  // round trip must be value-exact (float widens losslessly to double).
  Rng rng(25);
  Mlp net64({5, 8, 3}, Activation::kTanh, Activation::kIdentity, &rng);
  MlpT<float> net32;
  net32.CastFrom(net64);
  std::stringstream ss;
  BinaryWriter w(ss, "NNF32T__", 1);
  net32.Serialize(&w);
  ASSERT_TRUE(w.ok());

  Rng rng2(26);
  Mlp other64({5, 8, 3}, Activation::kTanh, Activation::kIdentity, &rng2);
  MlpT<float> restored;
  restored.CastFrom(other64);
  BinaryReader r(ss, "NNF32T__", 1);
  ASSERT_TRUE(restored.Deserialize(&r));

  std::vector<float> obs = {0.3f, -1.2f, 0.0f, 2.5f, -0.7f};
  std::vector<float> out_a;
  std::vector<float> out_b;
  net32.ForwardRow(obs, &out_a);
  restored.ForwardRow(obs, &out_b);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i], out_b[i]);
  }
}

}  // namespace
}  // namespace mocc
