// The lock-free MPSC report ring (`ctest -L serving`, and the ThreadSanitizer
// CI job): multi-producer stress — per-producer FIFO ordering, exactly-once
// delivery, full-ring backpressure — plus the serving-level contract that
// PostReport-fed decisions are bit-identical to the same reports fed through
// the synchronous single-producer SubmitReport path.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/mocc_api.h"
#include "src/core/mocc_config.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/serving/report_ring.h"

namespace mocc {
namespace {

MonitorReport TaggedReport(int producer, int seq) {
  MonitorReport r;
  // The tag: producer in start_time_s, per-producer sequence in duration_s.
  r.start_time_s = static_cast<double>(producer);
  r.duration_s = static_cast<double>(seq);
  r.packets_sent = 100;
  r.packets_acked = 99;
  r.packets_lost = 1;
  r.send_rate_bps = 2e6;
  r.throughput_bps = 1.9e6;
  r.avg_rtt_s = 0.045;
  r.min_rtt_s = 0.040;
  r.loss_rate = 0.01;
  return r;
}

TEST(ReportRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ReportRing(0).capacity(), 2u);
  EXPECT_EQ(ReportRing(2).capacity(), 2u);
  EXPECT_EQ(ReportRing(3).capacity(), 4u);
  EXPECT_EQ(ReportRing(1000).capacity(), 1024u);
  EXPECT_EQ(ReportRing(1024).capacity(), 1024u);
}

TEST(ReportRingTest, SingleThreadFifoAndBackpressure) {
  ReportRing ring(4);
  ServingConnId id;
  id.slot = 7;
  id.generation = 3;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(id, TaggedReport(0, i))) << i;
  }
  // Full: backpressure, not overwrite.
  EXPECT_FALSE(ring.TryPush(id, TaggedReport(0, 99)));
  EXPECT_EQ(ring.SizeApprox(), 4u);
  ReportRing::Entry entry;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&entry)) << i;
    EXPECT_EQ(entry.id.slot, 7);
    EXPECT_EQ(entry.id.generation, 3u);
    EXPECT_EQ(entry.report.duration_s, static_cast<double>(i)) << "FIFO order";
  }
  EXPECT_FALSE(ring.TryPop(&entry));
  // Freed capacity is reusable (wrap-around).
  EXPECT_TRUE(ring.TryPush(id, TaggedReport(0, 4)));
  ASSERT_TRUE(ring.TryPop(&entry));
  EXPECT_EQ(entry.report.duration_s, 4.0);
}

// The stress test: P producers race thousands of tagged reports through a
// small ring against one concurrent consumer. Exactly-once delivery (no lost,
// no duplicated entries) and per-producer FIFO ordering must survive the
// contention; the small capacity forces constant wrap-around and backpressure
// retries.
TEST(ReportRingStressTest, MultiProducerExactlyOnceWithPerProducerOrdering) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  ReportRing ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      ServingConnId id;
      id.slot = p;
      id.generation = 1;
      for (int seq = 0; seq < kPerProducer; ++seq) {
        while (!ring.TryPush(id, TaggedReport(p, seq))) {
          std::this_thread::yield();  // full ring = backpressure, retry
        }
      }
    });
  }

  std::vector<int> next_seq(kProducers, 0);  // per-producer expected sequence
  int popped = 0;
  ReportRing::Entry entry;
  while (popped < kProducers * kPerProducer) {
    if (!ring.TryPop(&entry)) {
      std::this_thread::yield();
      continue;
    }
    const int producer = entry.id.slot;
    ASSERT_GE(producer, 0);
    ASSERT_LT(producer, kProducers);
    EXPECT_EQ(entry.report.start_time_s, static_cast<double>(producer));
    // Per-producer FIFO: each producer's reports surface in sequence order.
    ASSERT_EQ(entry.report.duration_s,
              static_cast<double>(next_seq[static_cast<size_t>(producer)]))
        << "producer " << producer << " out of order after " << popped << " pops";
    ++next_seq[static_cast<size_t>(producer)];
    ++popped;
  }
  for (std::thread& t : producers) {
    t.join();
  }
  // Exactly once: every sequence consumed, ring empty.
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[static_cast<size_t>(p)], kPerProducer) << "producer " << p;
  }
  EXPECT_FALSE(ring.TryPop(&entry));
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

// --- Serving integration: PostReport == SubmitReport, bit for bit -----------

MonitorReport FlowReport(int flow, int round) {
  MonitorReport r;
  r.duration_s = 0.05;
  r.packets_sent = 100 + flow % 7;
  r.packets_lost = (round + flow) % 3 == 0 ? 1 : 0;
  r.packets_acked = r.packets_sent - r.packets_lost;
  r.send_rate_bps = 2e6 + 1e4 * (flow % 13);
  r.throughput_bps = r.send_rate_bps * 0.95;
  r.avg_rtt_s = 0.045 + 1e-4 * ((round + flow) % 5);
  r.min_rtt_s = 0.040;
  r.loss_rate = static_cast<double>(r.packets_lost) / r.packets_sent;
  return r;
}

TEST(ReportRingServingTest, ConcurrentPostReportBitIdenticalToSubmitReport) {
  MoccConfig config;
  Rng rng(29);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(Precision::kFloat32);

  constexpr int kFlows = 8;
  constexpr int kRounds = 25;
  auto ring_service = CreateService(spec);
  auto sync_service = CreateService(spec);
  ASSERT_NE(ring_service, nullptr);
  ASSERT_NE(sync_service, nullptr);
  std::vector<ServingConnId> ring_ids, sync_ids;
  for (int f = 0; f < kFlows; ++f) {
    const WeightVector w{0.1 + 0.1 * (f % 3), 0.5 - 0.1 * (f % 3), 0.4};
    ring_ids.push_back(ring_service->AttachConnection(w));
    sync_ids.push_back(sync_service->AttachConnection(w));
  }

  for (int round = 0; round < kRounds; ++round) {
    // Ring path: one producer thread per connection posts concurrently...
    std::vector<std::thread> producers;
    for (int f = 0; f < kFlows; ++f) {
      producers.emplace_back([&, f] {
        while (!ring_service->PostReport(ring_ids[static_cast<size_t>(f)],
                                         FlowReport(f, round))) {
          std::this_thread::yield();
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    // ...and the consumer's next poll drains + decides the whole batch.
    EXPECT_EQ(ring_service->RatePoll(), static_cast<size_t>(kFlows));

    // Reference path: the same reports through synchronous SubmitReport.
    for (int f = 0; f < kFlows; ++f) {
      ASSERT_TRUE(sync_service->SubmitReport(sync_ids[static_cast<size_t>(f)],
                                             FlowReport(f, round)));
    }
    EXPECT_EQ(sync_service->RatePoll(), static_cast<size_t>(kFlows));

    for (int f = 0; f < kFlows; ++f) {
      ASSERT_EQ(ring_service->RateBps(ring_ids[static_cast<size_t>(f)]),
                sync_service->RateBps(sync_ids[static_cast<size_t>(f)]))
          << "flow " << f << " round " << round;
    }
  }
  EXPECT_EQ(ring_service->stats().ring_reports,
            static_cast<int64_t>(kFlows) * kRounds);
  EXPECT_EQ(ring_service->stats().ring_dropped, 0);
}

TEST(ReportRingServingTest, FullRingBackpressuresAndStaleEntriesDropAtDrain) {
  MoccConfig config;
  Rng rng(31);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(Precision::kFloat32);
  MoccServing::Options options;
  options.report_ring_capacity = 4;
  auto service = CreateService(spec, options);
  ASSERT_NE(service, nullptr);

  const ServingConnId live = service->AttachConnection(BalancedObjective());
  ServingConnId stale = service->AttachConnection(BalancedObjective());
  ASSERT_TRUE(service->DetachConnection(stale));

  // Fill the ring (one live + three stale entries), then hit backpressure.
  ASSERT_TRUE(service->PostReport(live, FlowReport(0, 0)));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service->PostReport(stale, FlowReport(1, i)));
  }
  EXPECT_FALSE(service->PostReport(live, FlowReport(0, 1))) << "ring full";

  // The drain ingests the live report, drops the stale ones, and frees the ring.
  EXPECT_EQ(service->RatePoll(), 1u);
  EXPECT_EQ(service->stats().ring_reports, 1);
  EXPECT_EQ(service->stats().ring_dropped, 3);
  EXPECT_TRUE(service->PostReport(live, FlowReport(0, 2)));
  EXPECT_EQ(service->RatePoll(), 1u);

  // Duplicate-pending submissions drop at drain time too (one decision per poll
  // per connection, exactly the SubmitReport rule).
  ASSERT_TRUE(service->PostReport(live, FlowReport(0, 3)));
  ASSERT_TRUE(service->PostReport(live, FlowReport(0, 4)));
  EXPECT_EQ(service->RatePoll(), 1u);
  EXPECT_EQ(service->stats().ring_dropped, 4);
}

}  // namespace
}  // namespace mocc
