// Tests for the application workloads of §6.3: ABR video streaming (buffer dynamics,
// MPC quality selection), RTC inter-packet-delay analysis, and bulk transfer FCT.
#include <memory>

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/apps/rtc.h"
#include "src/apps/video.h"
#include "src/baselines/cubic.h"
#include "src/netsim/packet_network.h"

namespace mocc {
namespace {

class FixedRateCc : public CongestionControl {
 public:
  explicit FixedRateCc(double rate_bps) : rate_bps_(rate_bps) {}
  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "FixedRate"; }
  double PacingRateBps() const override { return rate_bps_; }

 private:
  double rate_bps_;
};

TEST(VideoAbrTest, PicksHighestSustainableBitrate) {
  VideoSession session;
  // 3 Mbps prediction with a 12 s buffer: 2850 kbps chunk (11.4 Mb) downloads in 3.8 s,
  // within budget; 4300 kbps (17.2 Mb) needs 5.7 s > 10 s budget? both fit... verify
  // ordering instead: more throughput or more buffer never lowers the choice.
  const int q_low = session.PickQuality(1e6, 8.0);
  const int q_high = session.PickQuality(6e6, 8.0);
  EXPECT_GE(q_high, q_low);
  const int q_small_buf = session.PickQuality(3e6, 3.0);
  const int q_big_buf = session.PickQuality(3e6, 20.0);
  EXPECT_GE(q_big_buf, q_small_buf);
}

TEST(VideoAbrTest, ZeroThroughputPredictionPicksLowest) {
  VideoSession session;
  EXPECT_EQ(session.PickQuality(0.0, 10.0), 0);
}

TEST(VideoAbrTest, AmpleEverythingPicksHighest) {
  VideoSession session;
  EXPECT_EQ(session.PickQuality(50e6, 30.0), 5);
}

TEST(VideoSessionTest, FastLinkYieldsHighQualityAndNoRebuffer) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 100;
  PacketNetwork net(p, 5);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(8e6));
  VideoConfig config;
  config.num_chunks = 12;
  VideoSession session(config);
  const VideoResult result = session.Run(&net, flow);
  ASSERT_EQ(result.chunk_quality.size(), 12u);
  EXPECT_EQ(result.rebuffer_s, 0.0);
  // After the ramp the ABR reaches the top rungs (>= 2850 kbps = level 4).
  int high = 0;
  for (int q : result.chunk_quality) {
    high += q >= 4 ? 1 : 0;
  }
  EXPECT_GT(high, 5);
  int total = 0;
  for (int c : result.quality_histogram) {
    total += c;
  }
  EXPECT_EQ(total, 12);
}

TEST(VideoSessionTest, SlowLinkStaysAtLowQuality) {
  LinkParams p;
  p.bandwidth_bps = 0.8e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 100;
  PacketNetwork net(p, 7);
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(0.7e6));
  VideoConfig config;
  config.num_chunks = 8;
  VideoSession session(config);
  const VideoResult result = session.Run(&net, flow);
  for (int q : result.chunk_quality) {
    EXPECT_LE(q, 2);
  }
}

TEST(VideoSessionTest, BetterTransportNeverFewerTopChunks) {
  // Property-style comparison: on the same link, a transport that achieves higher
  // throughput gets at least as many top-quality chunks.
  auto run = [](double rate_bps) {
    LinkParams p;
    p.bandwidth_bps = 6e6;
    p.one_way_delay_s = 0.02;
    p.queue_capacity_pkts = 200;
    PacketNetwork net(p, 11);
    const int flow = net.AddFlow(std::make_unique<FixedRateCc>(rate_bps));
    VideoConfig config;
    config.num_chunks = 10;
    VideoSession session(config);
    const VideoResult r = session.Run(&net, flow);
    return r.CountAtLevel(5) + r.CountAtLevel(4);
  };
  EXPECT_GE(run(5.5e6), run(1.5e6));
}

TEST(RtcAnalysisTest, GapsMatchDeliveryRate) {
  LinkParams p;
  p.bandwidth_bps = 6e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 100;
  PacketNetwork net(p, 13);
  FlowOptions opts;
  opts.keep_delivery_times = true;
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(3e6), opts);
  net.Run(10.0);
  const RtcResult result = AnalyzeRtcFlow(net, flow, 2.0, 10.0);
  // 3 Mbps of 12 kbit packets -> 4 ms between deliveries.
  EXPECT_NEAR(result.mean_inter_packet_delay_ms, 4.0, 0.5);
  EXPECT_NEAR(result.goodput_mbps, 3.0, 0.3);
  EXPECT_GE(result.p95_inter_packet_delay_ms, result.mean_inter_packet_delay_ms);
}

TEST(RtcAnalysisTest, LossyLinkIncreasesGaps) {
  auto mean_gap = [](double loss) {
    LinkParams p;
    p.bandwidth_bps = 6e6;
    p.one_way_delay_s = 0.02;
    p.queue_capacity_pkts = 100;
    p.random_loss_rate = loss;
    PacketNetwork net(p, 17);
    FlowOptions opts;
    opts.keep_delivery_times = true;
    const int flow = net.AddFlow(std::make_unique<FixedRateCc>(3e6), opts);
    net.Run(10.0);
    return AnalyzeRtcFlow(net, flow, 2.0, 10.0).mean_inter_packet_delay_ms;
  };
  EXPECT_GT(mean_gap(0.2), mean_gap(0.0));
}

TEST(RtcAnalysisTest, QueueingDelayDetected) {
  LinkParams p;
  p.bandwidth_bps = 4e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = 400;
  PacketNetwork net(p, 19);
  FlowOptions opts;
  opts.keep_delivery_times = true;
  const int flow = net.AddFlow(std::make_unique<FixedRateCc>(4.4e6), opts);  // overload
  net.Run(10.0);
  const RtcResult result = AnalyzeRtcFlow(net, flow, 2.0, 10.0);
  EXPECT_GT(result.mean_queueing_delay_ms, 5.0);
}

TEST(BulkTest, FctBoundedBelowByLineRate) {
  BulkConfig config;
  config.file_mb = 5.0;
  config.link.bandwidth_bps = 20e6;
  config.link.random_loss_rate = 0.0;
  const double fct = RunBulkTransfer(config, std::make_unique<CubicCc>(), 3);
  const double line_rate_bound = config.file_mb * 8e6 / config.link.bandwidth_bps;
  EXPECT_GE(fct, line_rate_bound);
  EXPECT_LT(fct, 10 * line_rate_bound);
}

TEST(BulkTest, FasterLinkFinishesSooner) {
  BulkConfig slow;
  slow.file_mb = 5.0;
  slow.link.bandwidth_bps = 10e6;
  BulkConfig fast = slow;
  fast.link.bandwidth_bps = 40e6;
  const double fct_slow = RunBulkTransfer(slow, std::make_unique<CubicCc>(), 5);
  const double fct_fast = RunBulkTransfer(fast, std::make_unique<CubicCc>(), 5);
  EXPECT_LT(fct_fast, fct_slow);
}

TEST(BulkTest, StalledTransferReturnsMaxTime) {
  BulkConfig config;
  config.file_mb = 1.0;
  config.link.random_loss_rate = 1.0;  // nothing delivered
  config.max_time_s = 3.0;
  const double fct = RunBulkTransfer(config, std::make_unique<CubicCc>(), 7);
  EXPECT_DOUBLE_EQ(fct, 3.0);
}

TEST(BulkTest, RepetitionsProduceStats) {
  BulkConfig config;
  config.file_mb = 2.0;
  config.link.bandwidth_bps = 50e6;
  config.link.random_loss_rate = 0.005;
  const RunningStat stat =
      RunBulkTransfers(config, [] { return std::make_unique<CubicCc>(); }, 5, 100);
  EXPECT_EQ(stat.count(), 5u);
  EXPECT_GT(stat.Mean(), 0.0);
  EXPECT_GE(stat.StdDev(), 0.0);
}

}  // namespace
}  // namespace mocc
