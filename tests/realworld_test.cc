// Real-world link corpus behavioral gates (`ctest -L realworld`).
//
// Every scenario of the corpus — iid wire loss, RED/ECN and CoDel bottlenecks,
// wifi-style service jitter, app-limited RTC/video cross traffic — is gated by
// a TRAINED model deployed against it, in the style of the integration suite:
// small-budget offline training in SetUpTestSuite, behavioural assertions as
// medians over 3 seeded runs. The suite also pins the determinism contract of
// the new stochastic link models (same seed -> bit-identical episodes, serial
// vs pooled rollout collection bit-identical) so the corpus is usable for
// training, not just evaluation.
//
// The ECN gate trains a matched pair of models — one with the ECN observation
// channel (MoccConfig::ecn_signal), one blind, same seed and budget — and
// requires the marking signal to demonstrably improve the queue-delay/
// throughput tradeoff. The pair trains and deploys on a jitter-corrupted
// RED/ECN link: on a clean static link the delay signal alone already pins
// the queue, so marks are redundant and the twins differ only by training
// noise (which direction flips with compiler codegen); under wifi-style
// service bursts the RTT samples are noisy while RED's slow-EWMA marks still
// cleanly flag a standing queue, so the channel carries information the blind
// twin structurally cannot recover.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mocc_cc.h"
#include "src/core/offline_trainer.h"
#include "src/envs/multi_flow_cc_env.h"
#include "src/envs/scenario.h"
#include "src/netsim/packet_network.h"
#include "src/netsim/topology.h"
#include "src/rl/ppo.h"

namespace mocc {
namespace {

const Scenario& FindScenario(const std::string& name) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(name);
  EXPECT_NE(scenario, nullptr) << name;
  return *scenario;
}

// The 12 Mbps / 40 ms RTT / 1% iid wire loss link of the lossy-link and
// lossy-vs-cubic scenarios, restated for the raw-PacketNetwork comparisons.
LinkParams LossyLink() {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 500;
  link.random_loss_rate = 0.01;
  return link;
}

double Median3(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[1];
}

class RealWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The generic corpus model: the integration suite's budget, trained on the
    // default single-flow sampled-link regime (no ECN channel).
    {
      OfflineTrainConfig config;
      config.seed = 7;
      config.bootstrap_iterations = 60;
      config.traversal_rounds = 2;
      Rng rng(config.seed);
      model_ = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
      OfflineTrainer trainer(model_.get(), config);
      trainer.TrainTwoPhase();
    }
    // The matched ECN pair: identical seed/budget/scenario, differing ONLY in
    // the observation channel — the controlled comparison the red-ecn gate
    // needs to attribute any tradeoff difference to the marking signal.
    ecn_model_ = TrainOnRedEcn(/*ecn_signal=*/true);
    blind_model_ = TrainOnRedEcn(/*ecn_signal=*/false);
  }

  static void TearDownTestSuite() {
    model_.reset();
    ecn_model_.reset();
    blind_model_.reset();
  }

  // The catalog red-ecn bottleneck with the wifi-jitter service model layered
  // on: the delay channel is corrupted by 3x service bursts while RED's EWMA
  // marking still reflects the standing queue — the setting where the ECN
  // observation channel is informative rather than redundant.
  static Scenario JitteryRedEcn() {
    Scenario s = FindScenario("red-ecn");
    s.name = "red-ecn-jitter";
    s.wifi_jitter.burst_period_s = 0.5;
    s.wifi_jitter.burst_duration_s = 0.1;
    s.wifi_jitter.service_slowdown = 3.0;
    s.wifi_jitter.randomize_phase = true;
    return s;
  }

  static std::shared_ptr<PreferenceActorCritic> TrainOnRedEcn(bool ecn_signal) {
    OfflineTrainConfig config;
    config.seed = 7;
    config.bootstrap_iterations = 60;
    config.traversal_rounds = 2;
    config.mocc.ecn_signal = ecn_signal;
    config.scenarios = {JitteryRedEcn()};
    Rng rng(config.seed);
    auto model = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model.get(), config);
    trainer.TrainTwoPhase();
    return model;
  }

  struct ScenarioRunStats {
    // Agent 0's mean delivered throughput over the measured window, as a
    // fraction of the (fixed) link bandwidth.
    double utilization = 0.0;
    double bandwidth_bps = 0.0;  // the episode's (fixed or sampled) bottleneck
    // Mean over measured MIs of agent 0's standing queue delay
    // (avg RTT minus the propagation-only base RTT).
    double mean_queueing_s = 0.0;
    double max_ecn_rate = 0.0;
    std::vector<double> agent_throughputs_bps;
  };

  // Deploys `model` against the scenario's environment, driving every agent
  // with the deterministic policy mean, and measures steady state over
  // [measure_from_s, duration_s).
  static ScenarioRunStats DriveScenario(const Scenario& scenario,
                                        const std::shared_ptr<PreferenceActorCritic>& model,
                                        const WeightVector& w, double duration_s,
                                        double measure_from_s, uint64_t seed) {
    CcEnvConfig base = model->config().MakeEnvConfig();
    base.max_steps_per_episode = 1 << 20;  // run by wall clock, not step count
    std::unique_ptr<MultiFlowCcEnv> env = scenario.MakeMultiFlowEnv(base, seed);
    env->SetObjective(w);
    std::vector<std::vector<double>> obs = env->Reset();
    const int n = env->NumAgents();
    std::vector<double> actions(static_cast<size_t>(n), 0.0);
    ScenarioRunStats stats;
    double queue_sum = 0.0;
    int queue_count = 0;
    while (env->now_s() < duration_s) {
      for (int i = 0; i < n; ++i) {
        actions[static_cast<size_t>(i)] = model->ActionMean(obs[static_cast<size_t>(i)]);
      }
      VectorStepResult r = env->Step(actions);
      obs = std::move(r.observations);
      if (env->now_s() >= measure_from_s) {
        const MonitorReport& report = env->agent_last_report(0);
        if (report.avg_rtt_s > 0.0) {
          queue_sum += std::max(0.0, report.avg_rtt_s - env->AgentBaseRttS(0));
          ++queue_count;
        }
        stats.max_ecn_rate = std::max(stats.max_ecn_rate, report.ecn_rate);
      }
    }
    stats.agent_throughputs_bps = env->AgentAvgThroughputsBps(measure_from_s, duration_s);
    stats.bandwidth_bps = env->current_link().bandwidth_bps;
    stats.utilization = stats.agent_throughputs_bps[0] / stats.bandwidth_bps;
    stats.mean_queueing_s = queue_count > 0 ? queue_sum / queue_count : 0.0;
    return stats;
  }

  static std::shared_ptr<PreferenceActorCritic> model_;
  static std::shared_ptr<PreferenceActorCritic> ecn_model_;
  static std::shared_ptr<PreferenceActorCritic> blind_model_;
};

std::shared_ptr<PreferenceActorCritic> RealWorldTest::model_;
std::shared_ptr<PreferenceActorCritic> RealWorldTest::ecn_model_;
std::shared_ptr<PreferenceActorCritic> RealWorldTest::blind_model_;

// --- Catalog wiring ---------------------------------------------------------

TEST_F(RealWorldTest, CatalogEntriesExistAndRoutePacketLevel) {
  for (const char* name :
       {"lossy-link", "red-ecn", "codel", "wifi-jitter", "wifi-jitter-compete",
        "rtc-compete", "video-compete", "lossy-vs-cubic"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    // Every corpus scenario needs the packet-level environment: the fluid link
    // has no queue to manage, no wire loss and no packets to mark.
    EXPECT_TRUE(scenario->IsMultiFlow()) << name;
  }
  EXPECT_EQ(FindScenario("lossy-link").fixed_link->random_loss_rate, 0.01);
  EXPECT_TRUE(FindScenario("red-ecn").aqm.ecn);
  EXPECT_EQ(FindScenario("red-ecn").aqm.kind, AqmKind::kRed);
  EXPECT_EQ(FindScenario("codel").aqm.kind, AqmKind::kCodel);
  EXPECT_FALSE(FindScenario("wifi-jitter").wifi_jitter.empty());
  EXPECT_TRUE(FindScenario("wifi-jitter").wifi_jitter.randomize_phase);
  // The media sources registered as competitor schemes must resolve.
  EXPECT_NE(MakeBaselineCc("rtc"), nullptr);
  EXPECT_NE(MakeBaselineCc("video"), nullptr);
}

// --- lossy-link: wire loss is not congestion --------------------------------

TEST_F(RealWorldTest, LossyLinkPolicySustainsThroughputWhereCubicCollapses) {
  // The paper's wifi story: at 1% iid wire loss, a loss-based scheme's
  // 1.22*MSS/(RTT*sqrt(p)) ceiling is ~30% of this 12 Mbps pipe, while the
  // trained policy must keep >= 70% utilization (medians over 3 seeds).
  const LinkParams link = LossyLink();
  auto run = [&](uint64_t seed, bool cubic) {
    PacketNetwork net(link, seed);
    const int flow = cubic
                         ? net.AddFlow(MakeBaselineCc("cubic"))
                         : net.AddFlow(MakeMoccCc(model_, ThroughputObjective()));
    net.Run(40.0);
    return net.record(flow).AvgThroughputBps(20.0, 40.0) / link.bandwidth_bps;
  };
  const double mocc = Median3({run(11, false), run(13, false), run(17, false)});
  const double cubic = Median3({run(11, true), run(13, true), run(17, true)});
  std::cout << "[ lossy-link ] median utilization: mocc " << mocc << ", cubic "
            << cubic << "\n";
  EXPECT_GE(mocc, 0.70) << "trained policy must shrug off 1% non-congestion loss";
  EXPECT_LE(cubic, 0.45) << "the link must actually collapse loss-based CC";
  EXPECT_GT(mocc, cubic + 0.2);
}

TEST_F(RealWorldTest, LossyLinkScenarioEnvSustainsUtilization) {
  // Same behaviour through the catalog plumbing (scenario -> MultiFlowCcEnv
  // with packet_level routing) instead of a hand-built network.
  const Scenario& scenario = FindScenario("lossy-link");
  auto run = [&](uint64_t seed) {
    return DriveScenario(scenario, model_, ThroughputObjective(), 40.0, 20.0, seed)
        .utilization;
  };
  const double median = Median3({run(11), run(13), run(17)});
  std::cout << "[ lossy-link ] median scenario-env utilization: " << median << "\n";
  EXPECT_GE(median, 0.65);
}

// --- red-ecn: marks reach the observation and improve the tradeoff ----------

TEST_F(RealWorldTest, RedEcnMarksReachObservationChannel) {
  const Scenario& scenario = FindScenario("red-ecn");
  // The ECN-trained model's env config carries include_ecn_in_obs, so each
  // history entry is 4 wide; the blind model keeps the historical 3-wide rows.
  CcEnvConfig ecn_base = ecn_model_->config().MakeEnvConfig();
  ecn_base.max_steps_per_episode = 1 << 20;
  CcEnvConfig blind_base = blind_model_->config().MakeEnvConfig();
  auto ecn_env = scenario.MakeMultiFlowEnv(ecn_base, 11);
  auto blind_env = scenario.MakeMultiFlowEnv(blind_base, 11);
  EXPECT_EQ(ecn_env->ObservationDim(), 3 + 4 * ecn_base.history_len);
  EXPECT_EQ(blind_env->ObservationDim(), 3 + 3 * blind_base.history_len);

  // Overdrive the RED band with a fixed gentle ramp: the EWMA queue must cross
  // red_min_pkts and the resulting marks must surface in the newest history
  // entry's 4th component (and nowhere else can make it non-zero).
  ecn_env->SetObjective(ThroughputObjective());
  std::vector<std::vector<double>> obs = ecn_env->Reset();
  double max_obs_ecn = 0.0;
  double max_report_ecn = 0.0;
  while (ecn_env->now_s() < 30.0) {
    VectorStepResult r = ecn_env->Step({0.05});
    obs = std::move(r.observations);
    const size_t newest_ecn = obs[0].size() - 1;
    max_obs_ecn = std::max(max_obs_ecn, obs[0][newest_ecn]);
    max_report_ecn = std::max(max_report_ecn, ecn_env->agent_last_report(0).ecn_rate);
  }
  std::cout << "[ red-ecn ] max MI mark fraction: report " << max_report_ecn
            << ", observation " << max_obs_ecn << "\n";
  EXPECT_GT(max_report_ecn, 0.0) << "RED must mark the overdriving ECN-capable flow";
  EXPECT_GT(max_obs_ecn, 0.0) << "marks must reach the observation's ECN channel";
  EXPECT_LE(max_obs_ecn, 1.0);
}

TEST_F(RealWorldTest, EcnSignalImprovesQueueDelayThroughputTradeoff) {
  // The controlled pair (same seed/budget/scenario, only the observation
  // channel differs) deployed on the jittery RED/ECN link it trained on, plus
  // the blind model on the same jittery link WITHOUT AQM (droptail): the
  // ECN-aware policy must keep the standing queue below the droptail run's,
  // below its blind twin's, and beat the blind policy on the queue-delay/
  // throughput tradeoff (utilization per unit of queueing).
  const Scenario red_ecn = JitteryRedEcn();
  Scenario droptail = red_ecn;  // same jittery link, AQM off, still packet-level
  droptail.aqm = AqmSpec{};
  droptail.packet_level = true;

  auto run = [&](const Scenario& s, const std::shared_ptr<PreferenceActorCritic>& m,
                 uint64_t seed) {
    return DriveScenario(s, m, ThroughputObjective(), 60.0, 20.0, seed);
  };
  std::vector<double> aware_q, aware_u, blind_q, blind_u, droptail_q;
  double aware_marks = 0.0;
  for (uint64_t seed : {11u, 13u, 17u}) {
    const ScenarioRunStats aware = run(red_ecn, ecn_model_, seed);
    const ScenarioRunStats blind = run(red_ecn, blind_model_, seed);
    const ScenarioRunStats plain = run(droptail, blind_model_, seed);
    aware_q.push_back(aware.mean_queueing_s);
    aware_u.push_back(aware.utilization);
    blind_q.push_back(blind.mean_queueing_s);
    blind_u.push_back(blind.utilization);
    droptail_q.push_back(plain.mean_queueing_s);
    aware_marks = std::max(aware_marks, aware.max_ecn_rate);
    std::cout << "[ red-ecn ] seed " << seed << ": aware " << aware.utilization
              << " util @ " << aware.mean_queueing_s * 1e3 << " ms (marks "
              << aware.max_ecn_rate << "), blind " << blind.utilization
              << " util @ " << blind.mean_queueing_s * 1e3 << " ms, droptail "
              << plain.utilization << " util @ " << plain.mean_queueing_s * 1e3
              << " ms\n";
  }
  EXPECT_GT(aware_marks, 0.0)
      << "RED must actually mark the aware policy's traffic — otherwise the "
         "gate is comparing identical droptail runs";
  const double aware_queue = Median3(aware_q);
  const double aware_util = Median3(aware_u);
  const double blind_queue = Median3(blind_q);
  const double blind_util = Median3(blind_u);
  // The aware policy must hold the queue inside RED's band regime: the band
  // tops out at 40 pkts (~160 ms at this link's nominal 250 pkt/s), against a
  // droptail horizon of 500 pkts (~2 s). The droptail leg is NOT a controlled
  // comparison (different model AND different queue discipline — whether the
  // blind twin loses queue control without RED's forced-drop backstop is
  // training luck), so it only bounds the aware run loosely; the controlled
  // aware-vs-blind claims below are strict.
  EXPECT_LT(aware_queue, 0.200)
      << "the aware policy must keep the standing queue inside RED's band";
  EXPECT_LT(aware_queue, 1.25 * Median3(droptail_q))
      << "RED-ECN must not stand meaningfully more queue than the droptail "
         "baseline";
  EXPECT_LT(aware_queue, blind_queue)
      << "the aware policy must hold a shorter standing queue than its blind "
         "twin at matched utilization (learned mark-avoidance)";
  EXPECT_GE(aware_util, 0.5) << "the aware policy must still carry real traffic";
  // Tradeoff score: utilization discounted by queueing relative to the base
  // RTT (40 ms) — the scale on which Eq. 2's latency term operates here.
  const double aware_score = aware_util / (1.0 + aware_queue / 0.040);
  const double blind_score = blind_util / (1.0 + blind_queue / 0.040);
  std::cout << "[ red-ecn ] tradeoff score: aware " << aware_score << ", blind "
            << blind_score << "\n";
  EXPECT_GT(aware_score, blind_score)
      << "the ECN observation channel must improve the queue-delay/throughput "
         "tradeoff over the ECN-blind twin";
}

// --- codel: sojourn control beats droptail queueing -------------------------

TEST_F(RealWorldTest, CodelBoundsOverdrivenStandingQueueBelowDroptail) {
  // The AQM-vs-droptail contrast needs a sender that does NOT self-regulate:
  // a trained policy already holds its standing queue below CoDel's coercion
  // regime, so deploying it on both queues measures the policy, not the AQM.
  // A fixed-rate source overdriving the 3 Mbps link at 1.5x makes the contrast
  // structural — droptail fills the 500-packet buffer (a ~2 s standing queue)
  // while CoDel's control law sheds the excess and pins sojourn near target.
  auto run = [](bool use_codel, uint64_t seed) {
    LinkParams link;
    link.bandwidth_bps = 3e6;
    link.one_way_delay_s = 0.020;
    link.queue_capacity_pkts = 500;
    NetworkTopology topo = NetworkTopology::SingleBottleneck(link);
    if (use_codel) topo.links[0].aqm.kind = AqmKind::kCodel;
    PacketNetwork net(topo, seed);
    const int flow =
        net.AddFlow(std::make_unique<ExternalRateCc>(1.5 * link.bandwidth_bps));
    net.Run(40.0);
    double sum = 0.0;
    int count = 0;
    for (const MiSample& s : net.record(flow).mi_samples()) {
      if (s.time_s < 20.0 || s.avg_rtt_s <= 0.0) continue;
      sum += std::max(0.0, s.avg_rtt_s - link.BaseRttS());
      ++count;
    }
    return count > 0 ? sum / count : 0.0;
  };
  const double codel_queue = Median3({run(true, 11), run(true, 13), run(true, 17)});
  const double droptail_queue =
      Median3({run(false, 11), run(false, 13), run(false, 17)});
  std::cout << "[ codel ] overdriven-sender median queueing: codel "
            << codel_queue * 1e3 << " ms, droptail " << droptail_queue * 1e3
            << " ms\n";
  EXPECT_LT(codel_queue, 0.150)
      << "CoDel must pin an unresponsive flow's sojourn near its target regime";
  EXPECT_GT(droptail_queue, 0.5)
      << "the droptail buffer must actually stand (bufferbloat baseline)";
  EXPECT_LT(codel_queue, droptail_queue / 4.0);

  // The trained policy, for its part, must coexist with CoDel's dropping:
  // sustained utilization with the standing queue inside the same bounded
  // regime (it trained on random-loss links, so CoDel drops don't spook it).
  const Scenario& codel = FindScenario("codel");
  std::vector<double> util, queue;
  for (uint64_t seed : {11u, 13u, 17u}) {
    const ScenarioRunStats c =
        DriveScenario(codel, model_, ThroughputObjective(), 40.0, 15.0, seed);
    util.push_back(c.utilization);
    queue.push_back(c.mean_queueing_s);
  }
  std::cout << "[ codel ] trained model: median utilization " << Median3(util)
            << " @ " << Median3(queue) * 1e3 << " ms queueing\n";
  EXPECT_GE(Median3(util), 0.6);
  EXPECT_LT(Median3(queue), 0.150);
}

// --- wifi-jitter: bursty service degradation --------------------------------

TEST_F(RealWorldTest, WifiJitterPolicySustainsUtilization) {
  // Service 3x slower for 100 ms out of every 500 ms: average capacity is
  // ~87% of nominal. The trained policy must keep at least half the nominal
  // bandwidth flowing despite the bursts.
  const Scenario& scenario = FindScenario("wifi-jitter");
  auto run = [&](uint64_t seed) {
    return DriveScenario(scenario, model_, ThroughputObjective(), 40.0, 15.0, seed)
        .utilization;
  };
  const double median = Median3({run(21), run(23), run(27)});
  std::cout << "[ wifi-jitter ] median utilization: " << median << "\n";
  EXPECT_GE(median, 0.5);
}

// --- contention scenarios: nobody starves -----------------------------------

TEST_F(RealWorldTest, ContentionScenariosKeepEveryAgentCarryingTraffic) {
  // wifi-jitter-compete / rtc-compete / video-compete / lossy-vs-cubic: two
  // trained agents plus cross traffic. The gate is no-starvation — every agent
  // must hold a meaningful share of the bottleneck despite jitter, media
  // burstiness or a loss-collapsed competitor.
  for (const char* name : {"wifi-jitter-compete", "rtc-compete", "video-compete",
                           "lossy-vs-cubic"}) {
    SCOPED_TRACE(name);
    const Scenario& scenario = FindScenario(name);
    const ScenarioRunStats stats =
        DriveScenario(scenario, model_, BalancedObjective(), 60.0, 25.0, 31);
    ASSERT_EQ(stats.agent_throughputs_bps.size(), 2u);
    const double bandwidth = stats.bandwidth_bps;  // fixed or episode-sampled
    double total = 0.0;
    for (double throughput : stats.agent_throughputs_bps) {
      EXPECT_GT(throughput, 0.03 * bandwidth) << name << ": starved agent";
      total += throughput;
    }
    std::cout << "[ " << name << " ] agents carry " << total / bandwidth
              << " of the bottleneck\n";
    // The ABR client downloads at 4x its chosen bitrate while its buffer has
    // room, so until it fills it is the most aggressive flow on the link —
    // balanced-objective agents rightly yield to the queue it builds. The gate
    // there is strictly no-starvation; elsewhere the agents must also hold a
    // real aggregate share.
    const double floor = std::string(name) == "video-compete" ? 0.10 : 0.25;
    EXPECT_GT(total, floor * bandwidth) << name << ": agents must use the pipe";
  }
}

// --- app-limited media sources ----------------------------------------------

TEST_F(RealWorldTest, RtcSourceIsAppLimitedAndDelayAdaptive) {
  // Alone on a fat link the RTC encoder must ramp to its cap and stay there —
  // app-limited, not pipe-filling.
  LinkParams fat;
  fat.bandwidth_bps = 50e6;
  fat.one_way_delay_s = 0.010;
  fat.queue_capacity_pkts = 500;
  PacketNetwork net(fat, 5);
  const int flow = net.AddFlow(MakeBaselineCc("rtc"));
  net.Run(30.0);
  const double rate = net.record(flow).AvgThroughputBps(10.0, 30.0);
  std::cout << "[ rtc ] steady rate on a 50 Mbps link: " << rate / 1e6 << " Mbps\n";
  EXPECT_LT(rate, 2.8e6) << "RTC source must stay app-limited at its encoder cap";
  EXPECT_GT(rate, 1.5e6) << "RTC source must ramp toward its cap when unconstrained";

  // On a congested narrow link it must back off instead of standing on the queue.
  LinkParams thin;
  thin.bandwidth_bps = 1.5e6;
  thin.one_way_delay_s = 0.020;
  thin.queue_capacity_pkts = 400;
  PacketNetwork congested(thin, 7);
  const int thin_flow = congested.AddFlow(MakeBaselineCc("rtc"));
  congested.Run(30.0);
  const FlowRecord& rec = congested.record(thin_flow);
  const double thin_rate = rec.AvgThroughputBps(10.0, 30.0);
  std::cout << "[ rtc ] rate on a 1.5 Mbps link: " << thin_rate / 1e6
            << " Mbps, avg RTT " << rec.AvgRttS() * 1e3 << " ms\n";
  EXPECT_LT(thin_rate, 1.6e6);
  EXPECT_GT(thin_rate, 0.1e6);
  // Delay-adaptive: the standing queue must stay far from the 400-packet
  // droptail horizon (~3.2 s at 1.5 Mbps).
  EXPECT_LT(rec.AvgRttS(), 0.5);
}

TEST_F(RealWorldTest, VideoSourceIdlesOnFullBufferAndStaysAppLimited) {
  // A 20 Mbps link fits the top ladder rung (4.3 Mbps at 2x download speed):
  // the client must fill its buffer, then idle — long-run average well below
  // the pipe, i.e. genuinely bursty on/off cross traffic.
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.015;
  link.queue_capacity_pkts = 500;
  PacketNetwork net(link, 9);
  const int flow = net.AddFlow(MakeBaselineCc("video"));
  net.Run(90.0);
  const double rate = net.record(flow).AvgThroughputBps(45.0, 90.0);
  std::cout << "[ video ] long-run rate on a 20 Mbps link: " << rate / 1e6
            << " Mbps\n";
  EXPECT_LT(rate, 0.5 * link.bandwidth_bps) << "ABR client must not fill the pipe";
  EXPECT_GT(rate, 1e6) << "ABR client must sustain real traffic";
}

// --- determinism of the stochastic link models ------------------------------

// Deterministic closed-form action schedule (integer arithmetic only), so runs
// differ only through the environment's own randomness.
double ScheduleAction(int step, int agent) {
  return static_cast<double>((step * 7 + agent * 13) % 11 - 5) * 0.04;
}

TEST_F(RealWorldTest, StochasticLinkModelsAreSeedReproducible) {
  // Same seed -> bit-identical rewards and throughputs; different seed ->
  // different realisation (loss draws, RED draws, jitter phase).
  for (const char* name : {"lossy-link", "red-ecn", "wifi-jitter"}) {
    SCOPED_TRACE(name);
    const Scenario& scenario = FindScenario(name);
    auto run = [&](uint64_t seed) {
      CcEnvConfig base = MoccConfig{}.MakeEnvConfig();
      auto env = scenario.MakeMultiFlowEnv(base, seed);
      env->SetObjective(BalancedObjective());
      env->Reset();
      std::vector<double> rewards;
      for (int step = 0; step < 200; ++step) {
        VectorStepResult r = env->Step({ScheduleAction(step, 0)});
        rewards.push_back(r.rewards[0]);
      }
      rewards.push_back(env->AgentAvgThroughputsBps(0.0, env->now_s())[0]);
      return rewards;
    };
    const std::vector<double> a = run(91);
    const std::vector<double> b = run(91);
    const std::vector<double> c = run(92);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << name << " step " << i
                            << ": same seed must be bit-identical";
    }
    EXPECT_NE(a, c) << name << ": a different seed must change the realisation";
  }
}

TEST_F(RealWorldTest, CollectionSerialVsPoolBitIdenticalOnRealWorldScenarios) {
  // The robustness suite's serial-vs-pool contract, extended to the corpus:
  // pooled rollout collection over the lossy/AQM/jitter scenarios must be
  // bit-identical to serial collection (the corpus is a training surface).
  auto collect = [](bool parallel) {
    MoccConfig mocc;
    Rng rng(31);
    PreferenceActorCritic model(mocc, &rng);
    PpoTrainer trainer(&model, mocc.MakePpoConfig(33));
    trainer.set_parallel_collection(parallel);

    std::string error;
    const auto scenarios = ScenarioRegistry::Global().ResolveList(
        "lossy-link,red-ecn,wifi-jitter", &error);
    EXPECT_TRUE(scenarios.has_value()) << error;
    std::vector<std::unique_ptr<MultiFlowCcEnv>> envs;
    std::vector<PpoTrainer::RolloutSource> sources;
    uint64_t seed = 500;
    for (const Scenario& scenario : *scenarios) {
      envs.push_back(scenario.MakeMultiFlowEnv(MoccConfig{}.MakeEnvConfig(), seed++));
      envs.back()->SetObjective(BalancedObjective());
      PpoTrainer::RolloutSource source;
      source.vec = envs.back().get();
      sources.push_back(source);
    }
    return trainer.CollectSourcesParallel(sources, 48);
  };
  const auto pool = collect(true);
  const auto serial = collect(false);
  ASSERT_EQ(pool.size(), serial.size());
  ASSERT_EQ(pool.size(), 3u);  // 3 single-agent scenarios
  for (size_t b = 0; b < pool.size(); ++b) {
    ASSERT_EQ(pool[b].size(), serial[b].size());
    for (size_t i = 0; i < pool[b].size(); ++i) {
      ASSERT_EQ(pool[b].transitions[i].action, serial[b].transitions[i].action);
      ASSERT_EQ(pool[b].transitions[i].reward, serial[b].transitions[i].reward);
      ASSERT_EQ(pool[b].advantages[i], serial[b].advantages[i]);
      ASSERT_EQ(pool[b].returns[i], serial[b].returns[i]);
    }
  }
}

}  // namespace
}  // namespace mocc
