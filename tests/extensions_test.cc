// Tests for the extension features: TCP NewReno, heterogeneous-RTT flows,
// mahimahi-format traces, model sharing (§7 federated averaging) and the
// application-requirement-to-weight mapper (§7).
#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/newreno.h"
#include "src/core/datapath.h"
#include "src/core/model_sharing.h"
#include "src/core/weight_mapper.h"
#include "src/netsim/fluid_link.h"
#include "src/netsim/packet_network.h"

namespace mocc {
namespace {

AckInfo MakeAck(double time_s, double rtt_s) {
  AckInfo ack;
  ack.ack_time_s = time_s;
  ack.send_time_s = time_s - rtt_s;
  ack.rtt_s = rtt_s;
  return ack;
}

TEST(NewRenoTest, SlowStartDoublesThenLinearGrowth) {
  NewRenoCc reno;
  EXPECT_TRUE(reno.in_slow_start());
  const double w0 = reno.CwndPackets();
  for (int i = 0; i < static_cast<int>(w0); ++i) {
    reno.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  EXPECT_NEAR(reno.CwndPackets(), 2 * w0, 1.0);

  LossInfo loss;
  loss.detect_time_s = 2.0;
  reno.OnPacketLost(loss);
  EXPECT_FALSE(reno.in_slow_start());
  const double after_loss = reno.CwndPackets();
  EXPECT_NEAR(after_loss, w0, 1.0);  // halved

  // Congestion avoidance: ~+1 per RTT.
  const int cwnd = static_cast<int>(after_loss);
  for (int i = 0; i < cwnd; ++i) {
    reno.OnAck(MakeAck(3.0 + i * 0.001, 0.04));
  }
  EXPECT_NEAR(reno.CwndPackets(), after_loss + 1.0, 0.2);
}

TEST(NewRenoTest, LossBurstIsOneEvent) {
  NewRenoCc reno;
  for (int i = 0; i < 60; ++i) {
    reno.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  LossInfo loss;
  loss.detect_time_s = 2.0;
  reno.OnPacketLost(loss);
  const double once = reno.CwndPackets();
  loss.detect_time_s = 2.005;
  reno.OnPacketLost(loss);
  EXPECT_DOUBLE_EQ(reno.CwndPackets(), once);
}

TEST(NewRenoTest, TimeoutEntersSlowStart) {
  NewRenoCc reno;
  for (int i = 0; i < 60; ++i) {
    reno.OnAck(MakeAck(1.0 + i * 0.001, 0.04));
  }
  reno.OnTimeout(3.0);
  EXPECT_DOUBLE_EQ(reno.CwndPackets(), 2.0);
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(NewRenoTest, FillsCleanPipe) {
  LinkParams p;
  p.bandwidth_bps = 10e6;
  p.one_way_delay_s = 0.02;
  p.queue_capacity_pkts = static_cast<int>(p.BdpPackets()) + 20;
  PacketNetwork net(p, 3);
  const int flow = net.AddFlow(std::make_unique<NewRenoCc>());
  net.Run(20.0);
  EXPECT_GT(net.record(flow).AvgThroughputBps(5.0, 20.0) / p.bandwidth_bps, 0.6);
}

TEST(ExtraDelayTest, PerFlowRttDiffers) {
  LinkParams p;
  p.bandwidth_bps = 20e6;
  p.one_way_delay_s = 0.010;
  PacketNetwork net(p, 5);
  FlowOptions near_opts;
  FlowOptions far_opts;
  far_opts.extra_one_way_delay_s = 0.040;
  const int near_flow = net.AddFlow(std::make_unique<NewRenoCc>(), near_opts);
  const int far_flow = net.AddFlow(std::make_unique<NewRenoCc>(), far_opts);
  net.Run(10.0);
  EXPECT_NEAR(net.record(near_flow).min_rtt_s, 0.020, 0.005);
  EXPECT_NEAR(net.record(far_flow).min_rtt_s, 0.100, 0.01);
}

TEST(MahimahiTest, ConstantRateTimestampsGiveConstantBandwidth) {
  // One packet per ms = 12 Mbps.
  std::vector<double> stamps;
  for (int ms = 0; ms < 3000; ++ms) {
    stamps.push_back(static_cast<double>(ms));
  }
  const BandwidthTrace trace = BandwidthTrace::FromMahimahiTimestamps(stamps, 1.0);
  EXPECT_NEAR(trace.BandwidthAt(0.5, 0.0), 12e6, 1e4);
  EXPECT_NEAR(trace.BandwidthAt(2.5, 0.0), 12e6, 1e4);
}

TEST(MahimahiTest, StepChangeIsCaptured) {
  std::vector<double> stamps;
  for (int ms = 0; ms < 1000; ms += 2) {  // 6 Mbps for 1 s
    stamps.push_back(static_cast<double>(ms));
  }
  for (int ms = 1000; ms < 2000; ++ms) {  // 12 Mbps for 1 s
    stamps.push_back(static_cast<double>(ms));
  }
  const BandwidthTrace trace = BandwidthTrace::FromMahimahiTimestamps(stamps, 0.5);
  EXPECT_NEAR(trace.BandwidthAt(0.25, 0.0), 6e6, 3e5);
  EXPECT_NEAR(trace.BandwidthAt(1.25, 0.0), 12e6, 3e5);
}

TEST(MahimahiTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mocc_mahimahi_test.trace";
  {
    std::string contents;
    for (int ms = 0; ms < 2000; ms += 4) {  // 3 Mbps
      contents += std::to_string(ms) + "\n";
    }
    ASSERT_TRUE(WriteFile(path, contents));
  }
  const BandwidthTrace trace = BandwidthTrace::FromMahimahiFile(path);
  EXPECT_NEAR(trace.BandwidthAt(1.0, 0.0), 3e6, 2e5);
  EXPECT_TRUE(BandwidthTrace::FromMahimahiFile("/nonexistent.trace").empty());
}

MoccConfig TinyConfig() {
  MoccConfig config;
  config.history_len_eta = 4;
  config.pn_hidden = 8;
  config.pn_out = 8;
  config.trunk_hidden = {16, 8};
  return config;
}

TEST(ModelSharingTest, AverageOfIdenticalModelsIsIdentity) {
  const MoccConfig config = TinyConfig();
  Rng rng(7);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  auto avg = FederatedAverage({{model, 1.0}, {model, 3.0}}, config);
  ASSERT_NE(avg, nullptr);
  std::vector<double> obs(model->obs_dim(), 0.2);
  EXPECT_NEAR(avg->ActionMean(obs), model->ActionMean(obs), 1e-9);
}

TEST(ModelSharingTest, WeightedAverageInterpolatesParameters) {
  const MoccConfig config = TinyConfig();
  Rng r1(1);
  Rng r2(2);
  auto a = std::make_shared<PreferenceActorCritic>(config, &r1);
  auto b = std::make_shared<PreferenceActorCritic>(config, &r2);
  auto avg = FederatedAverage({{a, 1.0}, {b, 1.0}}, config);
  ASSERT_NE(avg, nullptr);
  const double pa = a->Params()[0].value->data()[0];
  const double pb = b->Params()[0].value->data()[0];
  EXPECT_NEAR(avg->Params()[0].value->data()[0], 0.5 * (pa + pb), 1e-12);
  // 3:1 weighting.
  auto skewed = FederatedAverage({{a, 3.0}, {b, 1.0}}, config);
  EXPECT_NEAR(skewed->Params()[0].value->data()[0], 0.75 * pa + 0.25 * pb, 1e-12);
}

TEST(ModelSharingTest, RejectsInvalidInput) {
  const MoccConfig config = TinyConfig();
  EXPECT_EQ(FederatedAverage({}, config), nullptr);
  Rng rng(3);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  EXPECT_EQ(FederatedAverage({{model, 0.0}}, config), nullptr);  // non-positive weight
  MoccConfig other = config;
  other.history_len_eta = 6;
  EXPECT_EQ(FederatedAverage({{model, 1.0}}, other), nullptr);  // architecture mismatch
}

TEST(ModelSharingTest, BlendTauExtremes) {
  const MoccConfig config = TinyConfig();
  Rng r1(1);
  Rng r2(2);
  PreferenceActorCritic base(config, &r1);
  PreferenceActorCritic update(config, &r2);
  std::vector<double> obs(base.obs_dim(), -0.1);
  const double base_out = base.ActionMean(obs);
  const double update_out = update.ActionMean(obs);

  auto clone_owner = base.Clone();
  auto* tau0 = static_cast<PreferenceActorCritic*>(clone_owner.get());
  ASSERT_TRUE(BlendModel(tau0, update, 0.0));
  EXPECT_NEAR(tau0->ActionMean(obs), base_out, 1e-9);

  auto clone_owner2 = base.Clone();
  auto* tau1 = static_cast<PreferenceActorCritic*>(clone_owner2.get());
  ASSERT_TRUE(BlendModel(tau1, update, 1.0));
  EXPECT_NEAR(tau1->ActionMean(obs), update_out, 1e-9);
}

TEST(WeightMapperTest, ThroughputRequirementPushesWeightToThroughput) {
  // An untrained model responds to weights arbitrarily but deterministically; use a
  // trained-ish tiny model so behaviour is monotone enough. Here we verify mechanics:
  // the mapper returns a valid on-grid weight and coherent achieved metrics.
  const MoccConfig config = TinyConfig();
  Rng rng(11);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  AppRequirements req;
  req.min_throughput_bps = 1e6;
  LinkParams link;
  link.bandwidth_bps = 4e6;
  link.one_way_delay_s = 0.02;
  WeightMapperConfig mapper_config;
  mapper_config.grid_divisor = 5;
  mapper_config.eval_intervals = 60;
  const WeightSuggestion suggestion = SuggestWeights(model, req, link, mapper_config);
  EXPECT_TRUE(suggestion.weights.IsValid());
  EXPECT_GE(suggestion.throughput_bps, 0.0);
  EXPECT_LE(suggestion.throughput_bps, link.bandwidth_bps * 1.01);
}

TEST(WeightMapperTest, InfeasibleRequirementsReported) {
  const MoccConfig config = TinyConfig();
  Rng rng(13);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  AppRequirements req;
  req.min_throughput_bps = 1e9;  // impossible on a 4 Mbps link
  LinkParams link;
  link.bandwidth_bps = 4e6;
  WeightMapperConfig mapper_config;
  mapper_config.grid_divisor = 4;
  mapper_config.eval_intervals = 40;
  const WeightSuggestion suggestion = SuggestWeights(model, req, link, mapper_config);
  EXPECT_FALSE(suggestion.feasible);
}

TEST(WeightMapperTest, NoRequirementsAnySuggestionFeasible) {
  const MoccConfig config = TinyConfig();
  Rng rng(17);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  const WeightSuggestion suggestion =
      SuggestWeights(model, AppRequirements{}, LinkParams{},
                     WeightMapperConfig{.grid_divisor = 4, .eval_intervals = 40});
  EXPECT_TRUE(suggestion.feasible);
}

// --- Cross-substrate consistency ------------------------------------------------------

class FixedRateProbe : public CongestionControl {
 public:
  explicit FixedRateProbe(double rate_bps) : rate_bps_(rate_bps) {}
  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "probe"; }
  double PacingRateBps() const override { return rate_bps_; }

 private:
  double rate_bps_;
};

struct ConsistencyCase {
  double rate_bps;
  double bandwidth_bps;
};

class SubstrateConsistencyTest : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(SubstrateConsistencyTest, FluidAndPacketAgreeOnThroughput) {
  // The training substrate (fluid) and the evaluation substrate (packet-level) must
  // agree on first-order behaviour, or policies trained on one would not transfer to
  // the other.
  const ConsistencyCase& c = GetParam();
  LinkParams link;
  link.bandwidth_bps = c.bandwidth_bps;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 200;

  FluidLink fluid(link, 1, /*stochastic_loss=*/false);
  double fluid_thr = 0.0;
  int n = 0;
  for (int i = 0; i < 100; ++i) {
    const MonitorReport r = fluid.Step(c.rate_bps, 0.1);
    if (i >= 50) {
      fluid_thr += r.throughput_bps;
      ++n;
    }
  }
  fluid_thr /= n;

  PacketNetwork net(link, 5);
  const int flow = net.AddFlow(std::make_unique<FixedRateProbe>(c.rate_bps));
  net.Run(10.0);
  const double packet_thr = net.record(flow).AvgThroughputBps(5.0, 10.0);

  EXPECT_NEAR(packet_thr / fluid_thr, 1.0, 0.1)
      << "fluid " << fluid_thr << " vs packet " << packet_thr;
}

INSTANTIATE_TEST_SUITE_P(Rates, SubstrateConsistencyTest,
                         ::testing::Values(ConsistencyCase{2e6, 10e6},   // underload
                                           ConsistencyCase{8e6, 10e6},   // near capacity
                                           ConsistencyCase{15e6, 10e6},  // overload
                                           ConsistencyCase{4e6, 5e6}));

TEST(DatapathEquivalenceTest, CcpBatchOfOneMatchesUdt) {
  // Property: with batch_size = 1 the kernel-style shim degenerates to the user-space
  // shim — same inference count and same rate decisions for the same feedback stream.
  const MoccConfig config = TinyConfig();
  Rng r1(21);
  auto model = std::make_shared<PreferenceActorCritic>(config, &r1);
  MoccApi::Options options;
  options.config = config;
  auto api_udt = std::make_shared<MoccApi>(model, options);
  auto api_ccp = std::make_shared<MoccApi>(model, options);
  api_udt->Register(ThroughputObjective());
  api_ccp->Register(ThroughputObjective());
  UdtShimDatapath udt(api_udt);
  CcpShimDatapath ccp(api_ccp, /*batch_size=*/1);
  for (int i = 0; i < 20; ++i) {
    MonitorReport report;
    report.duration_s = 0.05;
    report.throughput_bps = 2e6 + 1e5 * (i % 7);
    report.send_rate_bps = report.throughput_bps;
    report.packets_sent = 10;
    report.packets_acked = 10;
    report.avg_rtt_s = 0.04 + 0.002 * (i % 3);
    report.min_rtt_s = 0.04;
    udt.OnNetworkTick(report);
    ccp.OnNetworkTick(report);
    ASSERT_DOUBLE_EQ(udt.SendingRateBps(), ccp.SendingRateBps());
  }
  EXPECT_EQ(udt.control_invocations(), ccp.control_invocations());
}

}  // namespace
}  // namespace mocc
