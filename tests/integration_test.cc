// End-to-end integration tests: a (small-budget) offline-trained MOCC model deployed
// through MakeMoccCc into the packet-level simulator, exercising the full
// train -> serialize -> deploy -> simulate pipeline and the paper's headline behaviours
// at reduced scale.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mocc_cc.h"
#include "src/core/offline_trainer.h"
#include "src/core/online_adapter.h"
#include "src/envs/multi_flow_cc_env.h"
#include "src/netsim/packet_network.h"

namespace mocc {
namespace {

// One small model shared by all tests in this binary (trained once; ~15 s).
class MoccIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    OfflineTrainConfig config;
    config.seed = 7;
    config.bootstrap_iterations = 60;
    config.traversal_rounds = 2;
    Rng rng(config.seed);
    model_ = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model_.get(), config);
    trainer.TrainTwoPhase();
  }

  static void TearDownTestSuite() { model_.reset(); }

  struct RunResult {
    double utilization = 0.0;
    double avg_rtt_s = 0.0;
    double loss_rate = 0.0;
  };

  static RunResult RunOnLink(const WeightVector& w, const LinkParams& link,
                             double duration_s, uint64_t seed) {
    PacketNetwork net(link, seed);
    const int flow = net.AddFlow(MakeMoccCc(model_, w));
    net.Run(duration_s);
    RunResult result;
    const FlowRecord& rec = net.record(flow);
    result.utilization =
        rec.AvgThroughputBps(duration_s / 2, duration_s) / link.bandwidth_bps;
    result.avg_rtt_s = rec.AvgRttS();
    result.loss_rate = rec.LossRate();
    return result;
  }

  static std::shared_ptr<PreferenceActorCritic> model_;
};

std::shared_ptr<PreferenceActorCritic> MoccIntegrationTest::model_;

TEST_F(MoccIntegrationTest, ThroughputObjectiveFillsThePipe) {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 500;
  const RunResult r = RunOnLink(ThroughputObjective(), link, 40.0, 11);
  EXPECT_GT(r.utilization, 0.75);
}

TEST_F(MoccIntegrationTest, LatencyObjectiveKeepsQueueShort) {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 500;
  const RunResult thr = RunOnLink(ThroughputObjective(), link, 40.0, 13);
  const RunResult lat = RunOnLink(LatencyObjective(), link, 40.0, 13);
  // The latency-preferring application must see lower RTT than the
  // throughput-preferring one — the core multi-objective claim.
  EXPECT_LT(lat.avg_rtt_s, thr.avg_rtt_s + 1e-9);
  EXPECT_LT(lat.avg_rtt_s, link.BaseRttS() * 1.5);
}

TEST_F(MoccIntegrationTest, RobustToRandomLoss) {
  // Test-range condition (Table 3): loss far beyond anything catastrophic for
  // loss-based CC; MOCC's throughput objective should still deliver.
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 800;
  link.random_loss_rate = 0.03;
  const RunResult r = RunOnLink(ThroughputObjective(), link, 40.0, 17);
  EXPECT_GT(r.utilization, 0.6);
}

TEST_F(MoccIntegrationTest, SerializationPreservesDeployedBehaviour) {
  const std::string path = ::testing::TempDir() + "/mocc_integration_model.bin";
  ASSERT_TRUE(model_->SaveToFile(path));
  auto loaded = PreferenceActorCritic::LoadFromFile(path, model_->config());
  ASSERT_NE(loaded, nullptr);

  LinkParams link;
  link.bandwidth_bps = 8e6;
  link.one_way_delay_s = 0.015;
  link.queue_capacity_pkts = 300;

  auto run = [&](std::shared_ptr<PreferenceActorCritic> m) {
    PacketNetwork net(link, 23);
    const int flow = net.AddFlow(MakeMoccCc(m, BalancedObjective()));
    net.Run(15.0);
    return net.record(flow).total_acked;
  };
  EXPECT_EQ(run(model_), run(loaded));
}

TEST_F(MoccIntegrationTest, TwoMoccFlowsWithSameWeightShareFairly) {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
  PacketNetwork net(link, 29);
  const int f1 = net.AddFlow(MakeMoccCc(model_, ThroughputObjective(), "MOCC-1"));
  const int f2 = net.AddFlow(MakeMoccCc(model_, ThroughputObjective(), "MOCC-2"));
  net.Run(60.0);
  const double t1 = net.record(f1).AvgThroughputBps(30.0, 60.0);
  const double t2 = net.record(f2).AvgThroughputBps(30.0, 60.0);
  const double share = t1 / std::max(1.0, t1 + t2);
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.75);
}

TEST_F(MoccIntegrationTest, FourMoccFlowsOnSharedBottleneckReachJainFairness) {
  // The multi-flow acceptance property (paper Figs. 11-12): 4 MOCC flows with the
  // same objective arriving 5 s apart on one bottleneck reach a fair allocation —
  // Jain index of the steady-state per-flow throughputs >= 0.9. Arrival dynamics make
  // this non-trivial: each newcomer joins at the fair-share estimate while the
  // incumbents have already ramped to fill the pipe, so the flows must re-converge.
  // The index is the median over three seeded runs (per-run fairness fluctuates with
  // the loss/phase realisation; the median is what "steady state" claims).
  auto run_jain = [&](uint64_t seed) {
    MultiFlowCcEnvConfig config;
    LinkParams link;
    link.bandwidth_bps = 12e6;
    link.one_way_delay_s = 0.02;
    link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
    config.num_agents = 4;
    config.fixed_link = link;
    config.agent_stagger_s = 5.0;
    config.initial_rate_jitter = 0.0;  // every arrival starts at its fair share
    config.max_steps_per_episode = 1 << 20;  // run by wall clock below, not step count
    MultiFlowCcEnv env(config, seed);
    env.SetObjective(BalancedObjective());
    std::vector<std::vector<double>> obs = env.Reset();
    std::vector<double> actions(4, 0.0);
    while (env.now_s() < 120.0) {
      for (int i = 0; i < 4; ++i) {
        actions[static_cast<size_t>(i)] =
            model_->ActionMean(obs[static_cast<size_t>(i)]);
      }
      VectorStepResult r = env.Step(actions);
      obs = std::move(r.observations);
    }
    // Every flow must be carrying real traffic (fairness over idle flows is vacuous).
    for (double throughput : env.AgentAvgThroughputsBps(40.0, 120.0)) {
      EXPECT_GT(throughput, 0.1 * link.bandwidth_bps / 4.0);
    }
    return env.JainIndex(40.0, 120.0);  // all flows active from 15 s; settled by 40 s
  };
  std::vector<double> jains = {run_jain(37), run_jain(41), run_jain(43)};
  std::sort(jains.begin(), jains.end());
  std::cout << "[ fairness ] steady-state Jain indices: " << jains[0] << " "
            << jains[1] << " " << jains[2] << "\n";
  EXPECT_GE(jains[1], 0.9) << "median steady-state Jain index over 4 MOCC flows";
}

TEST_F(MoccIntegrationTest, HeteroRttFlowsStillShareReasonablyFairly) {
  // The hetero-rtt scenario shape: 4 MOCC flows whose extra one-way delays span
  // 0-50 ms contend on one bottleneck. RTT unfairness is the classic failure
  // mode here (short-RTT flows react faster and starve long-RTT ones); the
  // MI-paced rate control should keep the steady-state Jain index clearly above
  // the starvation regime. Median over three seeds, like the homogeneous gate,
  // with a softer threshold acknowledging the structural RTT advantage.
  auto run_jain = [&](uint64_t seed) {
    MultiFlowCcEnvConfig config;
    LinkParams link;
    link.bandwidth_bps = 12e6;
    link.one_way_delay_s = 0.02;
    link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
    config.num_agents = 4;
    config.fixed_link = link;
    config.agent_extra_delay_s = {0.0, 0.010, 0.025, 0.050};
    config.initial_rate_jitter = 0.0;
    config.max_steps_per_episode = 1 << 20;
    MultiFlowCcEnv env(config, seed);
    env.SetObjective(BalancedObjective());
    std::vector<std::vector<double>> obs = env.Reset();
    std::vector<double> actions(4, 0.0);
    while (env.now_s() < 120.0) {
      for (int i = 0; i < 4; ++i) {
        actions[static_cast<size_t>(i)] =
            model_->ActionMean(obs[static_cast<size_t>(i)]);
      }
      VectorStepResult r = env.Step(actions);
      obs = std::move(r.observations);
    }
    for (double throughput : env.AgentAvgThroughputsBps(40.0, 120.0)) {
      // No flow may starve outright, long RTT or not.
      EXPECT_GT(throughput, 0.05 * link.bandwidth_bps / 4.0);
    }
    return env.JainIndex(40.0, 120.0);
  };
  std::vector<double> jains = {run_jain(53), run_jain(59), run_jain(61)};
  std::sort(jains.begin(), jains.end());
  std::cout << "[ fairness ] hetero-RTT steady-state Jain indices: " << jains[0] << " "
            << jains[1] << " " << jains[2] << "\n";
  EXPECT_GE(jains[1], 0.75) << "median steady-state Jain index over hetero-RTT flows";
}

TEST_F(MoccIntegrationTest, HigherThroughputWeightGrabsMoreBandwidth) {
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
  PacketNetwork net(link, 31);
  const int aggressive = net.AddFlow(MakeMoccCc(model_, ThroughputObjective()));
  const int polite = net.AddFlow(MakeMoccCc(model_, LatencyObjective()));
  net.Run(60.0);
  const double ta = net.record(aggressive).AvgThroughputBps(30.0, 60.0);
  const double tp = net.record(polite).AvgThroughputBps(30.0, 60.0);
  EXPECT_GT(ta, tp);
}

TEST_F(MoccIntegrationTest, LatencySeekersSeeLowerRttThanThroughputSeekersSharedLink) {
  // The heterogeneous-objective acceptance gate: on ONE shared bottleneck, agents
  // registered for latency must end up with a lower packet-weighted mean RTT than
  // agents registered for throughput, and the throughput seekers must carry more
  // traffic. The bandwidth oscillates (the Fig. 1a varying-link regime): on a
  // constant link the shared droptail queue reaches a standing level every packet
  // of every flow traverses alike, so per-flow delay CANNOT differ — the latency
  // seekers earn their lower mean RTT by backing off during the queue-building
  // phases, so their packets sample the queue when it is shallow. Median over
  // three seeds, like the fairness gates.
  struct ClassStats {
    double thr_rtt_s = 0.0;
    double lat_rtt_s = 0.0;
    double thr_bps = 0.0;
    double lat_bps = 0.0;
  };
  auto run_classes = [&](uint64_t seed) {
    MultiFlowCcEnvConfig config;
    LinkParams link;
    link.bandwidth_bps = 12e6;
    link.one_way_delay_s = 0.02;
    link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
    config.num_agents = 4;
    config.fixed_link = link;
    config.initial_rate_jitter = 0.0;
    config.max_steps_per_episode = 1 << 20;
    config.trace_generator = [](const LinkParams& l, Rng*) {
      return BandwidthTrace::Oscillating(0.5 * l.bandwidth_bps, 1.5 * l.bandwidth_bps,
                                         /*period_s=*/5.0, /*duration_s=*/130.0);
    };
    // Agents 0/2 seek throughput, agents 1/3 seek latency — the mixed-objective
    // scenario shape pinned to a fixed oscillating link.
    config.objectives.fixed = {ThroughputObjective(), LatencyObjective()};
    MultiFlowCcEnv env(config, seed);
    std::vector<std::vector<double>> obs = env.Reset();
    std::vector<double> actions(4, 0.0);
    std::vector<double> rtt_sum(4, 0.0);
    std::vector<int> rtt_count(4, 0);
    while (env.now_s() < 120.0) {
      for (int i = 0; i < 4; ++i) {
        actions[static_cast<size_t>(i)] = model_->ActionMean(obs[static_cast<size_t>(i)]);
      }
      VectorStepResult r = env.Step(actions);
      obs = std::move(r.observations);
      if (env.now_s() >= 40.0) {
        for (int i = 0; i < 4; ++i) {
          const MonitorReport& report = env.agent_last_report(i);
          if (report.avg_rtt_s > 0.0) {
            rtt_sum[static_cast<size_t>(i)] += report.avg_rtt_s;
            rtt_count[static_cast<size_t>(i)] += 1;
          }
        }
      }
    }
    const std::vector<double> throughputs = env.AgentAvgThroughputsBps(40.0, 120.0);
    ClassStats stats;
    for (int i = 0; i < 4; ++i) {
      const size_t a = static_cast<size_t>(i);
      const double rtt = rtt_count[a] > 0 ? rtt_sum[a] / rtt_count[a] : 0.0;
      if (i % 2 == 0) {
        stats.thr_rtt_s += rtt / 2.0;
        stats.thr_bps += throughputs[a] / 2.0;
      } else {
        stats.lat_rtt_s += rtt / 2.0;
        stats.lat_bps += throughputs[a] / 2.0;
      }
    }
    return stats;
  };
  std::vector<ClassStats> runs = {run_classes(67), run_classes(71), run_classes(73)};
  std::vector<double> rtt_gaps;
  std::vector<double> thr_gaps;
  for (const ClassStats& s : runs) {
    std::cout << "[ hetero-objective ] thr-class " << s.thr_bps / 1e6 << " Mbps @ "
              << s.thr_rtt_s * 1e3 << " ms, lat-class " << s.lat_bps / 1e6
              << " Mbps @ " << s.lat_rtt_s * 1e3 << " ms\n";
    rtt_gaps.push_back(s.thr_rtt_s - s.lat_rtt_s);
    thr_gaps.push_back(s.thr_bps - s.lat_bps);
  }
  std::sort(rtt_gaps.begin(), rtt_gaps.end());
  std::sort(thr_gaps.begin(), thr_gaps.end());
  EXPECT_GT(rtt_gaps[1], 0.0)
      << "latency-weighted agents must see lower mean RTT than throughput-weighted "
         "agents on the shared bottleneck (median over seeds)";
  EXPECT_GT(thr_gaps[1], 0.0)
      << "throughput-weighted agents must carry more traffic (median over seeds)";
}

TEST_F(MoccIntegrationTest, PreferenceSwitchMovesTradeoffWithinOneEpisode) {
  // The online-adjustment acceptance gate: a scheduled mid-episode switch from the
  // throughput to the latency objective must measurably move the rate/RTT
  // trade-off within the SAME episode — rate down AND RTT down after the switch,
  // with no retraining and no environment reset.
  MultiFlowCcEnvConfig config;
  LinkParams link;
  link.bandwidth_bps = 12e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = static_cast<int>(link.BdpPackets());
  config.num_agents = 2;
  config.fixed_link = link;
  config.initial_rate_jitter = 0.0;
  config.max_steps_per_episode = 1 << 20;
  config.objectives.fixed = {ThroughputObjective()};
  config.objectives.switches = {{/*time_s=*/40.0, /*agent=*/-1, LatencyObjective()}};
  MultiFlowCcEnv env(config, 83);
  std::vector<std::vector<double>> obs = env.Reset();
  std::vector<double> actions(2, 0.0);
  // Windows clear of the switch transient: [20,40) throughput regime, [60,80)
  // latency regime.
  double pre_rtt = 0.0, post_rtt = 0.0;
  int pre_n = 0, post_n = 0;
  while (env.now_s() < 80.0) {
    for (int i = 0; i < 2; ++i) {
      actions[static_cast<size_t>(i)] = model_->ActionMean(obs[static_cast<size_t>(i)]);
    }
    VectorStepResult r = env.Step(actions);
    obs = std::move(r.observations);
    for (int i = 0; i < 2; ++i) {
      const MonitorReport& report = env.agent_last_report(i);
      if (report.avg_rtt_s <= 0.0) {
        continue;
      }
      if (env.now_s() >= 20.0 && env.now_s() < 40.0) {
        pre_rtt += report.avg_rtt_s;
        ++pre_n;
      } else if (env.now_s() >= 60.0) {
        post_rtt += report.avg_rtt_s;
        ++post_n;
      }
    }
  }
  ASSERT_GT(pre_n, 0);
  ASSERT_GT(post_n, 0);
  pre_rtt /= pre_n;
  post_rtt /= post_n;
  const std::vector<double> pre_window = env.AgentAvgThroughputsBps(20.0, 40.0);
  const std::vector<double> post_window = env.AgentAvgThroughputsBps(60.0, 80.0);
  const double pre_bps = pre_window[0] + pre_window[1];
  const double post_bps = post_window[0] + post_window[1];
  std::cout << "[ preference-switch ] pre " << pre_bps / 1e6 << " Mbps @ "
            << pre_rtt * 1e3 << " ms -> post " << post_bps / 1e6 << " Mbps @ "
            << post_rtt * 1e3 << " ms\n";
  EXPECT_EQ(env.applied_switch_count(), 1);
  EXPECT_LT(post_rtt, pre_rtt) << "switching to the latency objective must drain queueing";
  EXPECT_LT(post_bps, pre_bps)
      << "the latency objective trades rate for delay (Eq. 2 weighting)";
}

TEST_F(MoccIntegrationTest, OnlineAdaptationDoesNotForgetOldObjective) {
  // Reduced-scale Figure 7b: adapt a clone to a new objective with requirement replay
  // and verify the old objective's policy survives.
  auto clone_base = model_->Clone();
  auto* clone = static_cast<PreferenceActorCritic*>(clone_base.get());

  const WeightVector old_objective = ThroughputObjective();
  const WeightVector new_objective(0.15, 0.15, 0.70);

  CcEnvConfig eval_config = model_->config().MakeEnvConfig();
  CcEnv eval_env(eval_config, 999);
  eval_env.SetObjective(old_objective);
  auto eval_old = [&](PreferenceActorCritic* m) {
    CcEnv env(eval_config, 999);
    env.SetObjective(old_objective);
    double total = 0.0;
    std::vector<double> obs = env.Reset();
    for (int i = 0; i < 300; ++i) {
      const StepResult r = env.Step(m->ActionMean(obs));
      total += r.reward;
      obs = r.done ? env.Reset() : r.observation;
    }
    return total / 300.0;
  };

  const double before = eval_old(clone);
  CcEnv adapt_env(model_->config().MakeEnvConfig(), 1000);
  OnlineAdaptConfig config;
  config.mocc = model_->config();
  config.rollout_steps = 512;
  OnlineAdapter adapter(clone, &adapt_env, config);
  adapter.RememberObjective(old_objective);
  for (int i = 0; i < 6; ++i) {
    adapter.AdaptIteration(new_objective);
  }
  const double after = eval_old(clone);
  // <15% relative regression at this tiny budget (paper: <5% at full budget).
  EXPECT_GT(after, before * 0.85);
}

}  // namespace
}  // namespace mocc
