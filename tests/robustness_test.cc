// Fault-tolerance suite (`ctest -L robustness`): crash-safe training
// (checkpoint/resume bit-identity, watchdog rollback on poisoned iterations),
// deployment guardrails (circuit-breaker trip, fallback driving, half-open
// recovery), and determinism of the fault-injected netsim scenarios
// (serial-vs-pool bit-identity, seed reproducibility).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/core/mocc_cc.h"
#include "src/core/offline_trainer.h"
#include "src/core/preference_model.h"
#include "src/envs/scenario.h"
#include "src/netsim/fault_spec.h"
#include "src/rl/guarded_policy.h"
#include "src/rl/ppo.h"

namespace mocc {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A deliberately tiny two-phase schedule (3-landmark grid, 5 total iterations)
// on a small model — every structural element of the real schedule (bootstrap,
// traversal order, objective mixing, phase-boundary LR change) still executes.
OfflineTrainConfig SmallTrainConfig(uint64_t seed = 11) {
  OfflineTrainConfig config;
  config.seed = seed;
  config.mocc.history_len_eta = 4;
  config.mocc.pn_hidden = 8;
  config.mocc.pn_out = 8;
  config.mocc.trunk_hidden = {16, 8};
  config.mocc.landmark_step_divisor = 4;  // 3 landmark objectives
  config.bootstrap_iterations = 2;
  config.traversal_rounds = 1;
  config.traversal_iterations_per_objective = 1;
  config.traversal_mix_objectives = 1;
  return config;
}

std::string ModelBytes(const PreferenceActorCritic& model) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, "TESTMODL", 1);
  model.Serialize(&w);
  return out.str();
}

bool AllParamsFinite(PreferenceActorCritic* model) {
  for (auto& p : model->Params()) {
    for (size_t i = 0; i < p.value->size(); ++i) {
      if (!std::isfinite(p.value->data()[i])) {
        return false;
      }
    }
  }
  return true;
}

MonitorReport MakeReport() {
  MonitorReport r;
  r.duration_s = 0.05;
  r.packets_sent = 100;
  r.packets_acked = 99;
  r.packets_lost = 1;
  r.send_rate_bps = 2e6;
  r.throughput_bps = 1.9e6;
  r.avg_rtt_s = 0.05;
  r.min_rtt_s = 0.04;
  r.loss_rate = 0.01;
  return r;
}

// --- Crash-safe training: checkpoint / resume bit-identity ------------------

TEST(CheckpointResumeTest, ResumedRunBitIdenticalWithUninterrupted) {
  const std::string dir = ::testing::TempDir();

  // Reference: the uninterrupted run.
  OfflineTrainConfig ref_config = SmallTrainConfig();
  ref_config.checkpoint_interval = 1;
  ref_config.checkpoint_path = dir + "/robustness_ref.ckpt";
  Rng rng_a(ref_config.seed);
  PreferenceActorCritic model_a(ref_config.mocc, &rng_a);
  OfflineTrainer trainer_a(&model_a, ref_config);
  const OfflineTrainResult ref = trainer_a.TrainTwoPhase();
  EXPECT_EQ(ref.total_iterations, ref_config.PlannedIterations());
  ASSERT_FALSE(ref.reward_curve.empty());

  // "Crash" after 3 iterations — one past the bootstrap/traversal boundary, so
  // the resume replays a phase transition and a consumed objective-mix draw.
  OfflineTrainConfig part_config = SmallTrainConfig();
  part_config.checkpoint_interval = 1;
  part_config.checkpoint_path = dir + "/robustness_part.ckpt";
  part_config.stop_after_iterations = 3;
  Rng rng_b(part_config.seed);
  PreferenceActorCritic model_b(part_config.mocc, &rng_b);
  OfflineTrainer trainer_b(&model_b, part_config);
  const OfflineTrainResult partial = trainer_b.TrainTwoPhase();
  EXPECT_EQ(partial.total_iterations, 3);

  // Resume in a fresh "process": new model, new trainer, checkpoint only.
  OfflineTrainConfig resume_config = SmallTrainConfig();
  resume_config.checkpoint_interval = 1;
  resume_config.checkpoint_path = part_config.checkpoint_path;
  resume_config.resume = true;
  Rng rng_c(resume_config.seed);
  PreferenceActorCritic model_c(resume_config.mocc, &rng_c);
  OfflineTrainer trainer_c(&model_c, resume_config);
  const OfflineTrainResult resumed = trainer_c.TrainTwoPhase();
  EXPECT_FALSE(resumed.resume_failed);
  EXPECT_EQ(resumed.start_iteration, 3);
  EXPECT_EQ(resumed.total_iterations, ref.total_iterations);

  // Bit-identity: every reward-curve entry and every model parameter byte.
  ASSERT_EQ(resumed.reward_curve.size(), ref.reward_curve.size());
  for (size_t i = 0; i < ref.reward_curve.size(); ++i) {
    EXPECT_EQ(resumed.reward_curve[i], ref.reward_curve[i]) << "iteration " << i;
  }
  EXPECT_EQ(ModelBytes(model_c), ModelBytes(model_a));
}

TEST(CheckpointResumeTest, MissingCheckpointStartsFresh) {
  OfflineTrainConfig config = SmallTrainConfig();
  config.checkpoint_path = ::testing::TempDir() + "/robustness_never_written.ckpt";
  std::remove(config.checkpoint_path.c_str());
  config.resume = true;
  config.stop_after_iterations = 1;
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_FALSE(result.resume_failed);
  EXPECT_EQ(result.start_iteration, 0);
  EXPECT_EQ(result.total_iterations, 1);
}

TEST(CheckpointResumeTest, CorruptCheckpointFailsCleanly) {
  OfflineTrainConfig config = SmallTrainConfig();
  config.checkpoint_path = ::testing::TempDir() + "/robustness_corrupt.ckpt";
  ASSERT_TRUE(WriteFile(config.checkpoint_path, "MOCCCKPT garbage that is no checkpoint"));
  config.resume = true;
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_TRUE(result.resume_failed);
  EXPECT_EQ(result.total_iterations, 0);
  EXPECT_TRUE(result.reward_curve.empty());
}

TEST(CheckpointResumeTest, ConfigMismatchedCheckpointRejected) {
  const std::string path = ::testing::TempDir() + "/robustness_mismatch.ckpt";
  {
    OfflineTrainConfig config = SmallTrainConfig(11);
    config.checkpoint_path = path;
    config.checkpoint_interval = 1;
    config.stop_after_iterations = 1;
    Rng rng(config.seed);
    PreferenceActorCritic model(config.mocc, &rng);
    OfflineTrainer trainer(&model, config);
    ASSERT_EQ(trainer.TrainTwoPhase().total_iterations, 1);
  }
  // Same checkpoint, different seed: the config fingerprint must reject it —
  // resuming it would silently break the bit-identity contract.
  OfflineTrainConfig other = SmallTrainConfig(12);
  other.checkpoint_path = path;
  other.resume = true;
  Rng rng(other.seed);
  PreferenceActorCritic model(other.mocc, &rng);
  OfflineTrainer trainer(&model, other);
  EXPECT_TRUE(trainer.TrainTwoPhase().resume_failed);
}

// --- Training watchdog ------------------------------------------------------

TEST(TrainingWatchdogTest, RollsBackPoisonedParameters) {
  OfflineTrainConfig config = SmallTrainConfig(13);
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  bool poisoned = false;  // the hook re-fires on the retry; poison only once
  config.iteration_hook = [&](int iteration, PpoStats* /*stats*/) {
    if (iteration == 1 && !poisoned) {
      poisoned = true;
      model.Params()[0].value->data()[0] = kNaN;
    }
  };
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_TRUE(poisoned);
  EXPECT_EQ(result.watchdog_rollbacks, 1);
  EXPECT_FALSE(result.watchdog_failed);
  EXPECT_EQ(result.total_iterations, config.PlannedIterations());
  EXPECT_TRUE(AllParamsFinite(&model));
}

TEST(TrainingWatchdogTest, TreatsKlBlowupAsDivergence) {
  OfflineTrainConfig config = SmallTrainConfig(15);
  config.watchdog_kl_limit = 5.0;
  bool fired = false;
  config.iteration_hook = [&](int iteration, PpoStats* stats) {
    if (iteration == 0 && !fired) {
      fired = true;
      stats->approx_kl = 1e9;  // diverging update
    }
  };
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_EQ(result.watchdog_rollbacks, 1);
  EXPECT_FALSE(result.watchdog_failed);
  EXPECT_EQ(result.total_iterations, config.PlannedIterations());
}

TEST(TrainingWatchdogTest, BoundedRetriesThenCleanFailure) {
  OfflineTrainConfig config = SmallTrainConfig(17);
  config.max_watchdog_retries = 2;
  // Unconditionally unhealthy: the first iteration can never succeed.
  config.iteration_hook = [](int iteration, PpoStats* stats) {
    if (iteration == 0) {
      stats->value_loss = kNaN;
    }
  };
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();
  EXPECT_TRUE(result.watchdog_failed);
  EXPECT_EQ(result.watchdog_rollbacks, 2);
  EXPECT_EQ(result.total_iterations, 0);
  EXPECT_TRUE(result.reward_curve.empty());
  // The rollback left the model at the last healthy (initial) state.
  EXPECT_TRUE(AllParamsFinite(&model));
}

// --- Deployment guardrails: circuit breaker ---------------------------------

TEST(GuardedPolicyTest, BreakerTripsHoldsOffAndRecovers) {
  GuardedPolicy::Options options;
  options.open_intervals = 3;
  options.close_after_valid_probes = 2;
  GuardedPolicy guard(options);
  ASSERT_EQ(guard.state(), GuardedPolicy::State::kClosed);
  EXPECT_TRUE(guard.BeginInterval());
  EXPECT_TRUE(guard.ValidateDecision(0.1, 2.1e6, 2e6));

  // A NaN action trips even though the Eq. (1) update would map it to "rate
  // unchanged" (every NaN comparison is false).
  EXPECT_FALSE(guard.ValidateDecision(kNaN, 2e6, 2e6));
  EXPECT_EQ(guard.state(), GuardedPolicy::State::kOpen);
  EXPECT_EQ(guard.trip_count(), 1);

  // Open: the fallback owns open_intervals - 1 intervals, then a probe.
  EXPECT_FALSE(guard.BeginInterval());
  EXPECT_FALSE(guard.BeginInterval());
  EXPECT_TRUE(guard.BeginInterval());
  EXPECT_EQ(guard.state(), GuardedPolicy::State::kHalfOpen);

  // Two consecutive valid probes close the breaker.
  EXPECT_TRUE(guard.ValidateDecision(0.05, 2.05e6, 2e6));
  EXPECT_EQ(guard.state(), GuardedPolicy::State::kHalfOpen);
  EXPECT_TRUE(guard.BeginInterval());
  EXPECT_TRUE(guard.ValidateDecision(-0.05, 1.95e6, 2e6));
  EXPECT_EQ(guard.state(), GuardedPolicy::State::kClosed);
  EXPECT_EQ(guard.recovery_count(), 1);

  // Violations of the per-MI step bound and the absolute rate band also trip.
  EXPECT_FALSE(guard.ValidateDecision(50.0, 20e6, 2e6));
  EXPECT_EQ(guard.trip_count(), 2);
}

TEST(GuardedPolicyTest, BadHalfOpenProbeReopens) {
  GuardedPolicy::Options options;
  options.open_intervals = 2;
  GuardedPolicy guard(options);
  EXPECT_FALSE(guard.ValidateDecision(kNaN, 2e6, 2e6));
  EXPECT_FALSE(guard.BeginInterval());
  EXPECT_TRUE(guard.BeginInterval());  // half-open probe
  EXPECT_FALSE(guard.ValidateDecision(kNaN, 2e6, 2e6));
  EXPECT_EQ(guard.state(), GuardedPolicy::State::kOpen);
  EXPECT_EQ(guard.trip_count(), 2);
  EXPECT_EQ(guard.recovery_count(), 0);
}

TEST(GuardedPolicyTest, AbsoluteRateBandViolationTrips) {
  GuardedPolicy guard(GuardedPolicy::Options{});
  // Within the step factor of the previous rate but far beyond max_rate_bps * f.
  EXPECT_FALSE(guard.ValidateDecision(0.5, 1.2e9, 1e9));
  EXPECT_EQ(guard.trip_count(), 1);
}

TEST(GuardedControllerTest, NanPolicyFallsBackToCubicAndRecovers) {
  MoccConfig config;
  config.history_len_eta = 4;
  config.pn_hidden = 8;
  config.pn_out = 8;
  config.trunk_hidden = {16, 8};
  Rng rng(41);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  auto cc = MakeMoccCc(model, BalancedObjective(), "MOCC", 2e6,
                       /*float32_inference=*/false, /*guarded=*/true);
  ASSERT_NE(cc->guard(), nullptr);
  const MonitorReport report = MakeReport();

  // Healthy policy: decisions pass, nothing trips.
  cc->OnMonitorInterval(report);
  EXPECT_EQ(cc->guard()->trip_count(), 0);
  EXPECT_EQ(cc->guard()->state(), GuardedPolicy::State::kClosed);

  // Corrupt the model (every parameter NaN — a trashed checkpoint in
  // deployment). The very next decision must trip the breaker and the flow
  // must continue at a finite CUBIC-derived rate, not abort or emit NaN.
  std::vector<std::vector<double>> saved;
  for (auto& p : model->Params()) {
    saved.emplace_back(p.value->data(), p.value->data() + p.value->size());
    for (size_t i = 0; i < p.value->size(); ++i) {
      p.value->data()[i] = kNaN;
    }
  }
  cc->OnMonitorInterval(report);
  EXPECT_EQ(cc->guard()->trip_count(), 1);
  EXPECT_EQ(cc->guard()->state(), GuardedPolicy::State::kOpen);
  ASSERT_TRUE(std::isfinite(cc->PacingRateBps()));
  EXPECT_GT(cc->PacingRateBps(), 0.0);

  // Open breaker: the fallback owns the next open_intervals - 1 MIs and
  // inference is skipped entirely (no NaN forwards burned).
  const int64_t inferences_at_trip = cc->inference_count();
  for (int i = 0; i < 7; ++i) {  // default open_intervals = 8
    cc->OnMonitorInterval(report);
    ASSERT_TRUE(std::isfinite(cc->PacingRateBps())) << "interval " << i;
    EXPECT_GT(cc->PacingRateBps(), 0.0);
  }
  EXPECT_EQ(cc->inference_count(), inferences_at_trip);
  EXPECT_GE(cc->guard()->fallback_interval_count(), 7);

  // Heal the model (the corrupt checkpoint was replaced); the half-open probes
  // see sane outputs and restore the policy.
  size_t pi = 0;
  for (auto& p : model->Params()) {
    for (size_t i = 0; i < p.value->size(); ++i) {
      p.value->data()[i] = saved[pi][i];
    }
    ++pi;
  }
  cc->OnMonitorInterval(report);  // half-open probe 1
  cc->OnMonitorInterval(report);  // probe 2 -> closed
  EXPECT_EQ(cc->guard()->state(), GuardedPolicy::State::kClosed);
  EXPECT_EQ(cc->guard()->recovery_count(), 1);
  EXPECT_EQ(cc->guard()->trip_count(), 1);
  EXPECT_GT(cc->inference_count(), inferences_at_trip);
}

// --- Fault-injected scenarios: determinism ----------------------------------

CcEnvConfig BaseEnvConfig() { return MoccConfig{}.MakeEnvConfig(); }

TEST(FaultScenarioTest, CatalogEntriesExistAndCarryFaults) {
  for (const char* name : {"blackout", "flaky-link", "loss-burst"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_TRUE(scenario->IsMultiFlow()) << name;
    EXPECT_FALSE(scenario->fault.empty()) << name;
  }
  EXPECT_GT(ScenarioRegistry::Global().Find("blackout")->fault.blackout_period_s, 0.0);
  EXPECT_GT(ScenarioRegistry::Global().Find("loss-burst")->fault.loss_burst_rate, 0.0);
  EXPECT_TRUE(ScenarioRegistry::Global().Find("flaky-link")->fault.randomize_phase);
}

TEST(FaultScenarioTest, CollectionSerialVsPoolBitIdentical) {
  auto collect = [](bool parallel) {
    MoccConfig mocc;
    Rng rng(31);
    PreferenceActorCritic model(mocc, &rng);
    PpoTrainer trainer(&model, mocc.MakePpoConfig(33));
    trainer.set_parallel_collection(parallel);

    std::string error;
    const auto scenarios = ScenarioRegistry::Global().ResolveList(
        "blackout,flaky-link,loss-burst", &error);
    EXPECT_TRUE(scenarios.has_value()) << error;
    std::vector<std::unique_ptr<MultiFlowCcEnv>> envs;
    std::vector<PpoTrainer::RolloutSource> sources;
    uint64_t seed = 300;
    for (const Scenario& scenario : *scenarios) {
      envs.push_back(scenario.MakeMultiFlowEnv(BaseEnvConfig(), seed++));
      envs.back()->SetObjective(BalancedObjective());
      PpoTrainer::RolloutSource source;
      source.vec = envs.back().get();
      sources.push_back(source);
    }
    return trainer.CollectSourcesParallel(sources, 48);
  };
  const auto pool = collect(true);
  const auto serial = collect(false);
  ASSERT_EQ(pool.size(), serial.size());
  ASSERT_EQ(pool.size(), 6u);  // 3 scenarios x 2 agents
  for (size_t b = 0; b < pool.size(); ++b) {
    ASSERT_EQ(pool[b].size(), serial[b].size());
    for (size_t i = 0; i < pool[b].size(); ++i) {
      ASSERT_EQ(pool[b].transitions[i].action, serial[b].transitions[i].action);
      ASSERT_EQ(pool[b].transitions[i].reward, serial[b].transitions[i].reward);
      ASSERT_EQ(pool[b].advantages[i], serial[b].advantages[i]);
      ASSERT_EQ(pool[b].returns[i], serial[b].returns[i]);
    }
  }
}

TEST(FaultScenarioTest, RandomizedPhaseSeedReproducible) {
  // flaky-link randomizes the fault phase per episode from the env Rng: the
  // same seed must reproduce the episode bit-identically, a different seed
  // must not.
  const Scenario* scenario = ScenarioRegistry::Global().Find("flaky-link");
  ASSERT_NE(scenario, nullptr);
  auto collect = [&](uint64_t env_seed) {
    MoccConfig mocc;
    Rng rng(37);
    PreferenceActorCritic model(mocc, &rng);
    PpoTrainer trainer(&model, mocc.MakePpoConfig(39));
    auto env = scenario->MakeMultiFlowEnv(BaseEnvConfig(), env_seed);
    env->SetObjective(BalancedObjective());
    return trainer.CollectVectorRollout(env.get(), 64);
  };
  const auto a = collect(5);
  const auto b = collect(5);
  const auto c = collect(6);
  ASSERT_EQ(a.size(), b.size());
  bool differs_across_seeds = false;
  for (size_t buf = 0; buf < a.size(); ++buf) {
    ASSERT_EQ(a[buf].size(), b[buf].size());
    for (size_t i = 0; i < a[buf].size(); ++i) {
      ASSERT_EQ(a[buf].transitions[i].reward, b[buf].transitions[i].reward);
      ASSERT_EQ(a[buf].transitions[i].action, b[buf].transitions[i].action);
    }
    if (buf < c.size()) {
      for (size_t i = 0; i < std::min(a[buf].size(), c[buf].size()); ++i) {
        differs_across_seeds |=
            a[buf].transitions[i].reward != c[buf].transitions[i].reward;
      }
    }
  }
  EXPECT_TRUE(differs_across_seeds);
}

TEST(FaultScenarioTest, InjectedFaultActuallyChangesDynamics) {
  // Same scenario with the fault stripped, same seed: the trajectories must
  // diverge — otherwise the injection is wired to nothing.
  const Scenario* blackout = ScenarioRegistry::Global().Find("blackout");
  ASSERT_NE(blackout, nullptr);
  Scenario clean = *blackout;
  clean.fault = FaultSpec{};
  auto collect = [](const Scenario& scenario) {
    MoccConfig mocc;
    Rng rng(43);
    PreferenceActorCritic model(mocc, &rng);
    PpoTrainer trainer(&model, mocc.MakePpoConfig(45));
    auto env = scenario.MakeMultiFlowEnv(BaseEnvConfig(), 7);
    env->SetObjective(BalancedObjective());
    return trainer.CollectVectorRollout(env.get(), 96);
  };
  const auto faulted = collect(*blackout);
  const auto unfaulted = collect(clean);
  ASSERT_EQ(faulted.size(), unfaulted.size());
  bool any_difference = false;
  for (size_t buf = 0; buf < faulted.size(); ++buf) {
    if (faulted[buf].size() != unfaulted[buf].size()) {
      any_difference = true;
      break;
    }
    for (size_t i = 0; i < faulted[buf].size(); ++i) {
      any_difference |=
          faulted[buf].transitions[i].reward != unfaulted[buf].transitions[i].reward;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace mocc
