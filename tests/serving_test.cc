// The serving-layer contract suite (`ctest -L serving`): batched float32
// inference must be BIT-IDENTICAL to the sequential single-row path at every
// level — the MatMulBiasInto row-pair tiling, MlpT::ForwardBatchRows, the
// InferencePolicy batch API — and a MoccServing instance must decide every
// connection exactly as a dedicated per-flow RlRateController fed the same
// reports would (float32, double and guarded variants). Plus slab lifecycle
// determinism (attach/detach/reattach, stale-handle rejection), deadline-wheel
// same-tick batching, and the InferencePolicy single-thread contract.
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/rl_cc.h"
#include "src/common/rng.h"
#include "src/core/mocc_api.h"
#include "src/core/mocc_config.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/nn/matrix.h"
#include "src/nn/mlp.h"
#include "src/rl/inference_policy.h"

namespace mocc {
namespace {

// Deterministic per-(flow, round) report stream, independent of the decided
// rate so serving and per-flow controllers see byte-identical inputs.
MonitorReport MakeReport(int flow, int round) {
  MonitorReport r;
  r.duration_s = 0.05;
  r.packets_sent = 100 + flow % 7;
  r.packets_lost = (round + flow) % 3 == 0 ? 1 : 0;
  r.packets_acked = r.packets_sent - r.packets_lost;
  r.send_rate_bps = 2e6 + 1e4 * (flow % 13);
  r.throughput_bps = r.send_rate_bps * 0.95;
  r.avg_rtt_s = 0.045 + 1e-4 * ((round + flow) % 5);
  r.min_rtt_s = 0.040;
  r.loss_rate = static_cast<double>(r.packets_lost) / r.packets_sent;
  return r;
}

WeightVector FlowWeight(int flow) {
  static const WeightVector kMix[] = {{0.8, 0.1, 0.1},
                                      {1.0 / 3, 1.0 / 3, 1.0 / 3},
                                      {0.1, 0.8, 0.1},
                                      {0.1, 0.1, 0.8}};
  return kMix[flow % 4];
}

void FillRandom(MatrixT<float>* m, Rng* rng) {
  for (size_t i = 0; i < m->rows() * m->cols(); ++i) {
    m->data()[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
}

// --- 1. Kernel level: batched MatMulBiasInto == per-row results -------------

TEST(ServingKernelTest, MatMulBiasIntoBatchRowsBitIdenticalToSingleRows) {
  Rng rng(7);
  // Odd shapes exercise the 16/8/scalar tile tails; m covers the row-pair path
  // (even), the trailing-row path (odd) and the degenerate 1-row case.
  for (const size_t m : {size_t(1), size_t(2), size_t(3), size_t(6), size_t(9)}) {
    for (const size_t k : {size_t(5), size_t(17), size_t(33)}) {
      for (const size_t n : {size_t(1), size_t(7), size_t(24)}) {
        MatrixT<float> a(m, k), b(k, n), bias(1, n), batch(m, n);
        FillRandom(&a, &rng);
        FillRandom(&b, &rng);
        FillRandom(&bias, &rng);
        MatMulBiasInto(a, b, bias, &batch);
        for (size_t r = 0; r < m; ++r) {
          MatrixT<float> row(1, k), out(1, n);
          std::memcpy(row.data(), a.data() + r * k, k * sizeof(float));
          MatMulBiasInto(row, b, bias, &out);
          for (size_t c = 0; c < n; ++c) {
            ASSERT_EQ(batch(r, c), out(0, c))
                << "m=" << m << " k=" << k << " n=" << n << " row=" << r
                << " col=" << c;
          }
        }
      }
    }
  }
}

// --- 2. Network level: ForwardBatchRows == ForwardRow per row ---------------

TEST(ServingKernelTest, MlpForwardBatchRowsBitIdenticalToForwardRow) {
  Rng rng(11);
  Mlp net_d({9, 16, 8, 2}, Activation::kTanh, Activation::kIdentity, &rng);
  MlpT<float> net;
  net.CastFrom(net_d);
  constexpr size_t kRows = 5;
  std::vector<float> in(kRows * 9);
  for (float& v : in) {
    v = static_cast<float>(rng.Uniform(-2.0, 2.0));
  }
  std::vector<float> batch_out(kRows * 2);
  net.ForwardBatchRows(in.data(), kRows, batch_out.data());
  for (size_t r = 0; r < kRows; ++r) {
    float row_out[2];
    net.ForwardRow(in.data() + r * 9, row_out);
    EXPECT_EQ(batch_out[r * 2 + 0], row_out[0]) << "row " << r;
    EXPECT_EQ(batch_out[r * 2 + 1], row_out[1]) << "row " << r;
  }
}

// --- 3. Policy level: ActionMeansF32 == sequential ActionMeanF32 ------------

TEST(ServingPolicyTest, ActionMeansF32BitIdenticalToSequentialSingleRows) {
  MoccConfig config;
  Rng rng(13);
  PreferenceActorCritic model(config, &rng);
  std::unique_ptr<InferencePolicy> batch_policy = model.MakeFloat32Policy();
  std::unique_ptr<InferencePolicy> seq_policy = model.MakeFloat32Policy();
  ASSERT_NE(batch_policy, nullptr);
  const size_t obs_dim = model.obs_dim();

  // 8 rows spanning 3 distinct weight prefixes, grouped like the engine's
  // prefix sort — the batch path's rolling PN cache must then follow exactly
  // the state a fresh replica evolves through sequentially.
  constexpr size_t kRows = 8;
  std::vector<float> obs(kRows * obs_dim);
  for (size_t r = 0; r < kRows; ++r) {
    const WeightVector w = FlowWeight(static_cast<int>(r) / 3);
    float* row = obs.data() + r * obs_dim;
    row[0] = static_cast<float>(w.thr);
    row[1] = static_cast<float>(w.lat);
    row[2] = static_cast<float>(w.loss);
    for (size_t k = 3; k < obs_dim; ++k) {
      row[k] = static_cast<float>(rng.Uniform(0.0, 2.0));
    }
  }
  std::vector<float> batch_means(kRows);
  batch_policy->ActionMeansF32(obs.data(), kRows, batch_means.data());
  for (size_t r = 0; r < kRows; ++r) {
    const float seq = seq_policy->ActionMeanF32(obs.data() + r * obs_dim);
    EXPECT_EQ(batch_means[r], seq) << "row " << r;
  }
}

TEST(ServingPolicyTest, PnRecomputesOncePerDistinctPrefixInSortedBatch) {
  MoccConfig config;
  Rng rng(13);
  PreferenceActorCritic model(config, &rng);
  std::unique_ptr<InferencePolicy> policy = model.MakeFloat32Policy();
  auto* pref = dynamic_cast<PreferenceFloat32Policy*>(policy.get());
  ASSERT_NE(pref, nullptr);
  const size_t obs_dim = model.obs_dim();

  constexpr size_t kRows = 9;  // 3 groups of 3, prefix-sorted
  std::vector<float> obs(kRows * obs_dim);
  for (size_t r = 0; r < kRows; ++r) {
    const WeightVector w = FlowWeight(static_cast<int>(r) / 3);
    float* row = obs.data() + r * obs_dim;
    row[0] = static_cast<float>(w.thr);
    row[1] = static_cast<float>(w.lat);
    row[2] = static_cast<float>(w.loss);
    for (size_t k = 3; k < obs_dim; ++k) {
      row[k] = 1.0f;
    }
  }
  std::vector<float> means(kRows);
  policy->ActionMeansF32(obs.data(), kRows, means.data());
  EXPECT_EQ(pref->pn_recompute_count(), 3);
  // Re-running the same batch rolls the cache through all three prefixes again
  // (the cache ends the batch holding the LAST group's features).
  policy->ActionMeansF32(obs.data(), kRows, means.data());
  EXPECT_EQ(pref->pn_recompute_count(), 6);
}

// --- 4. Service level: serving == dedicated per-flow controllers ------------

void ExpectServingMatchesControllers(Precision precision, bool guard) {
  MoccConfig config;
  Rng rng(17);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(precision).WithGuard(guard);

  constexpr int kFlows = 12;
  constexpr int kRounds = 30;
  constexpr double kInitialRate = 2e6;
  std::vector<std::unique_ptr<RlRateController>> ccs;
  for (int f = 0; f < kFlows; ++f) {
    ccs.push_back(spec.MakeController(FlowWeight(f), kInitialRate));
  }
  std::unique_ptr<MoccServing> service = CreateService(spec);
  ASSERT_NE(service, nullptr);
  MoccServing::ConnectionOptions copts;
  copts.initial_rate_bps = kInitialRate;
  std::vector<ServingConnId> conns;
  for (int f = 0; f < kFlows; ++f) {
    conns.push_back(service->AttachConnection(FlowWeight(f), copts));
  }
  for (int round = 0; round < kRounds; ++round) {
    for (int f = 0; f < kFlows; ++f) {
      const MonitorReport report = MakeReport(f, round);
      ccs[f]->OnMonitorInterval(report);
      ASSERT_TRUE(service->SubmitReport(conns[f], report));
    }
    service->RatePoll();
    for (int f = 0; f < kFlows; ++f) {
      ASSERT_EQ(service->RateBps(conns[f]), ccs[f]->PacingRateBps())
          << "flow " << f << " round " << round;
    }
  }
  for (int f = 0; f < kFlows; ++f) {
    EXPECT_EQ(service->DecisionCount(conns[f]), ccs[f]->inference_count())
        << "flow " << f;
    if (guard) {
      const GuardedPolicy* sg = service->Guard(conns[f]);
      ASSERT_NE(sg, nullptr);
      ASSERT_NE(ccs[f]->guard(), nullptr);
      EXPECT_EQ(sg->trip_count(), ccs[f]->guard()->trip_count()) << "flow " << f;
    } else {
      EXPECT_EQ(service->Guard(conns[f]), nullptr);
    }
  }
}

TEST(ServingEngineTest, Float32BatchMatchesPerFlowControllersBitExactly) {
  ExpectServingMatchesControllers(Precision::kFloat32, /*guard=*/false);
}

TEST(ServingEngineTest, DoublePathMatchesPerFlowControllersBitExactly) {
  ExpectServingMatchesControllers(Precision::kDouble, /*guard=*/false);
}

TEST(ServingEngineTest, GuardedFloat32MatchesPerFlowControllersBitExactly) {
  ExpectServingMatchesControllers(Precision::kFloat32, /*guard=*/true);
}

// --- 5. Slab lifecycle: attach/detach/reattach determinism ------------------

TEST(ServingEngineTest, ReattachAfterChurnReproducesIdenticalRateSequence) {
  MoccConfig config;
  Rng rng(19);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(Precision::kFloat32);
  std::unique_ptr<MoccServing> service = CreateService(spec);
  ASSERT_NE(service, nullptr);

  constexpr int kRounds = 20;
  auto run_flow = [&](ServingConnId conn) {
    std::vector<double> rates;
    for (int round = 0; round < kRounds; ++round) {
      EXPECT_TRUE(service->SubmitReport(conn, MakeReport(0, round)));
      service->RatePoll();
      rates.push_back(service->RateBps(conn));
    }
    return rates;
  };

  const ServingConnId a = service->AttachConnection(FlowWeight(0));
  const std::vector<double> baseline = run_flow(a);

  // Churn: detach a sibling so its slot recycles, land a new connection in the
  // recycled slot, then re-run the same stream on a FRESH attachment of the
  // original objective — per-connection state must be fully reinitialized.
  const ServingConnId b = service->AttachConnection(FlowWeight(1));
  EXPECT_TRUE(service->DetachConnection(b));
  const ServingConnId c = service->AttachConnection(FlowWeight(2));
  EXPECT_EQ(c.slot, b.slot);  // slot recycled...
  EXPECT_NE(c.generation, b.generation);  // ...under a new generation
  EXPECT_TRUE(service->DetachConnection(a));
  const ServingConnId a2 = service->AttachConnection(FlowWeight(0));
  const std::vector<double> replay = run_flow(a2);
  ASSERT_EQ(replay.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(replay[i], baseline[i]) << "round " << i;
  }
}

TEST(ServingEngineTest, StaleHandlesAreRejectedEverywhere) {
  MoccConfig config;
  Rng rng(19);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(Precision::kFloat32).WithGuard(true);
  std::unique_ptr<MoccServing> service = CreateService(spec);
  ASSERT_NE(service, nullptr);

  const ServingConnId id = service->AttachConnection(FlowWeight(0));
  EXPECT_TRUE(service->SubmitReport(id, MakeReport(0, 0)));
  service->RatePoll();
  EXPECT_TRUE(service->DetachConnection(id));
  EXPECT_EQ(service->attached(), 0u);

  // Every entry point must reject the stale generation — including after the
  // slot is recycled by a new attachment.
  const ServingConnId fresh = service->AttachConnection(FlowWeight(1));
  EXPECT_EQ(fresh.slot, id.slot);
  EXPECT_FALSE(service->SubmitReport(id, MakeReport(0, 1)));
  EXPECT_FALSE(service->SwitchObjective(id, FlowWeight(2)));
  EXPECT_FALSE(service->DetachConnection(id));
  EXPECT_EQ(service->RateBps(id), 0.0);
  EXPECT_EQ(service->DecisionCount(id), 0);
  EXPECT_EQ(service->Guard(id), nullptr);
  EXPECT_EQ(service->attached(), 1u);
  // An un-attached default handle is stale too.
  EXPECT_FALSE(service->SubmitReport(ServingConnId{}, MakeReport(0, 0)));
}

// --- 6. Deadline wheel: same-tick expiries decide as one batch --------------

TEST(ServingWheelTest, SameTickExpiriesBatchAndCadencesHold) {
  MoccConfig config;
  Rng rng(23);
  auto model = std::make_shared<PreferenceActorCritic>(config, &rng);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(Precision::kFloat32);
  MoccServing::Options sopts;
  sopts.tick_s = 0.010;
  std::unique_ptr<MoccServing> service = CreateService(spec, sopts);
  ASSERT_NE(service, nullptr);

  // 4 connections on a 20 ms MI and 2 on a 30 ms MI: expiries at 20/40/60 ms
  // and 30/60 ms — at 60 ms all six land in the same tick and must decide as
  // ONE batch of 6.
  std::vector<ServingConnId> fast, slow;
  for (int f = 0; f < 6; ++f) {
    MoccServing::ConnectionOptions copts;
    copts.mi_duration_s = f < 4 ? 0.020 : 0.030;
    copts.start_time_s = 0.0;
    (f < 4 ? fast : slow).push_back(service->AttachConnection(FlowWeight(f), copts));
  }
  AckInfo ack;
  ack.rtt_s = 0.045;
  for (int tick = 1; tick <= 6; ++tick) {
    for (const ServingConnId& id : fast) {
      service->OnPacketSent(id, 2);
      service->OnAck(id, ack);
    }
    for (const ServingConnId& id : slow) {
      service->OnPacketSent(id, 2);
      service->OnAck(id, ack);
    }
    service->RatePoll(tick * 0.010);
  }
  for (const ServingConnId& id : fast) {
    EXPECT_EQ(service->DecisionCount(id), 3);  // 20, 40, 60 ms
  }
  for (const ServingConnId& id : slow) {
    EXPECT_EQ(service->DecisionCount(id), 2);  // 30, 60 ms
  }
  const MoccServing::Stats& stats = service->stats();
  EXPECT_EQ(stats.decisions, 4 * 3 + 2 * 2);
  EXPECT_EQ(stats.max_batch, 6);  // the coincident 60 ms tick
  // Self-timed connections own their clock: external reports are rejected.
  EXPECT_FALSE(service->SubmitReport(fast[0], MakeReport(0, 0)));
}

// --- 7. InferencePolicy thread contract -------------------------------------

TEST(ServingPolicyTest, SequentialUseAcrossThreadsIsAllowed) {
  MoccConfig config;
  Rng rng(29);
  PreferenceActorCritic model(config, &rng);
  std::unique_ptr<InferencePolicy> policy = model.MakeFloat32Policy();
  const std::vector<double> obs(model.obs_dim(), 0.5);
  const double main_mean = policy->ActionMean(obs);
  double thread_mean = 0.0;
  // Sequential cross-thread use (externally ordered) is inside the contract:
  // the debug reentrancy assert must not fire.
  std::thread worker([&] { thread_mean = policy->ActionMean(obs); });
  worker.join();
  EXPECT_EQ(thread_mean, main_mean);
  EXPECT_EQ(policy->ActionMean(obs), main_mean);
}

}  // namespace
}  // namespace mocc
