// Unit and property tests for the neural-network substrate: matrix algebra, MLP
// forward/backward (finite-difference gradient checks across architectures), optimizers
// and serialization.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/nn/matrix.h"
#include "src/nn/mlp.h"
#include "src/nn/optimizer.h"

namespace mocc {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
}

TEST(MatrixTest, MatMulMatchesHandComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposedProductsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 3);
  Matrix b(4, 5);
  a.FillNormal(&rng, 1.0);
  b.FillNormal(&rng, 1.0);
  // aT * b via MatMulTransposeA.
  const Matrix c1 = MatMulTransposeA(a, b);
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      at(j, i) = a(i, j);
    }
  }
  const Matrix c2 = MatMul(at, b);
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-12);
  }
  // a * dT via MatMulTransposeB: a(4,3) x d(5,3)T -> (4,5).
  Matrix d(5, 3);
  d.FillNormal(&rng, 1.0);
  Matrix dt(3, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      dt(j, i) = d(i, j);
    }
  }
  const Matrix e1 = MatMulTransposeB(a, d);
  const Matrix e2 = MatMul(a, dt);
  ASSERT_EQ(e1.rows(), e2.rows());
  ASSERT_EQ(e1.cols(), e2.cols());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_NEAR(e1.data()[i], e2.data()[i], 1e-12);
  }
}

TEST(MatrixTest, RowHelpersAndBias) {
  Matrix m(2, 2, 0.0);
  m.SetRow(0, {1.0, 2.0});
  m.SetRow(1, {3.0, 4.0});
  EXPECT_EQ(m.Row(1), (std::vector<double>{3.0, 4.0}));
  Matrix bias(1, 2);
  bias(0, 0) = 10.0;
  bias(0, 1) = 20.0;
  AddRowBias(&m, bias);
  EXPECT_DOUBLE_EQ(m(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 24.0);
  const Matrix sums = ColumnSums(m);
  EXPECT_DOUBLE_EQ(sums(0, 0), 11.0 + 13.0);
  EXPECT_DOUBLE_EQ(sums(0, 1), 22.0 + 24.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(FrobeniusNorm(m), 5.0);
}

TEST(ActivationTest, TanhAndRelu) {
  Matrix m(1, 3);
  m(0, 0) = -1.0;
  m(0, 1) = 0.0;
  m(0, 2) = 2.0;
  Matrix t = m;
  ApplyActivation(Activation::kTanh, &t);
  EXPECT_NEAR(t(0, 0), std::tanh(-1.0), 1e-12);
  Matrix r = m;
  ApplyActivation(Activation::kRelu, &r);
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 2), 2.0);
}

// Property: analytic MLP gradients match central finite differences for a variety of
// architectures and activations.
struct MlpGradCase {
  std::vector<size_t> dims;
  Activation hidden;
  Activation output;
};

class MlpGradientTest : public ::testing::TestWithParam<MlpGradCase> {};

TEST_P(MlpGradientTest, MatchesFiniteDifference) {
  const MlpGradCase& param = GetParam();
  Rng rng(17);
  Mlp net(param.dims, param.hidden, param.output, &rng);
  const size_t in = param.dims.front();
  const size_t out = param.dims.back();
  Matrix x(3, in);
  x.FillNormal(&rng, 1.0);

  // Loss: L = sum of 0.5*y^2 so dL/dy = y.
  auto loss = [&](Mlp* m) {
    const Matrix y = m->Forward(x);
    double l = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      l += 0.5 * y.data()[i] * y.data()[i];
    }
    return l;
  };

  net.ZeroGrad();
  Matrix y = net.Forward(x);
  net.Backward(y);

  auto params = net.Params();
  double max_rel = 0.0;
  for (auto& p : params) {
    const size_t stride = std::max<size_t>(1, p.value->size() / 7);
    for (size_t k = 0; k < p.value->size(); k += stride) {
      double* w = &p.value->data()[k];
      const double orig = *w;
      const double eps = 1e-6;
      *w = orig + eps;
      const double lp = loss(&net);
      *w = orig - eps;
      const double lm = loss(&net);
      *w = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      const double an = p.grad->data()[k];
      const double denom = std::max({1e-8, std::abs(fd), std::abs(an)});
      if (std::abs(fd) > 1e-10 || std::abs(an) > 1e-10) {
        max_rel = std::max(max_rel, std::abs(fd - an) / denom);
      }
    }
  }
  EXPECT_LT(max_rel, 1e-5) << "gradient mismatch (out dim " << out << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MlpGradientTest,
    ::testing::Values(MlpGradCase{{4, 8, 1}, Activation::kTanh, Activation::kIdentity},
                      MlpGradCase{{3, 16, 8, 1}, Activation::kTanh, Activation::kIdentity},
                      MlpGradCase{{5, 8, 4}, Activation::kRelu, Activation::kIdentity},
                      MlpGradCase{{2, 6, 6, 3}, Activation::kTanh, Activation::kTanh},
                      MlpGradCase{{7, 12, 2}, Activation::kIdentity, Activation::kIdentity}));

TEST(MlpTest, DimsAndParameterCount) {
  Rng rng(5);
  Mlp net({33, 64, 32, 1}, Activation::kTanh, Activation::kIdentity, &rng);
  EXPECT_EQ(net.in_dim(), 33u);
  EXPECT_EQ(net.out_dim(), 1u);
  EXPECT_EQ(net.ParameterCount(), 33u * 64 + 64 + 64 * 32 + 32 + 32 * 1 + 1);
}

TEST(MlpTest, CopyWeightsMakesForwardIdentical) {
  Rng r1(1);
  Rng r2(2);
  Mlp a({4, 8, 2}, Activation::kTanh, Activation::kIdentity, &r1);
  Mlp b({4, 8, 2}, Activation::kTanh, Activation::kIdentity, &r2);
  Matrix x(2, 4);
  x.FillNormal(&r1, 1.0);
  b.CopyWeightsFrom(a);
  const Matrix ya = a.Forward(x);
  const Matrix yb = b.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(MlpTest, SoftUpdateInterpolates) {
  Rng r1(1);
  Rng r2(2);
  Mlp a({2, 3, 1}, Activation::kTanh, Activation::kIdentity, &r1);
  Mlp b({2, 3, 1}, Activation::kTanh, Activation::kIdentity, &r2);
  auto pa = a.Params();
  auto pb = b.Params();
  const double wa = pa[0].value->data()[0];
  const double wb = pb[0].value->data()[0];
  a.SoftUpdateFrom(b, 0.25);
  EXPECT_NEAR(a.Params()[0].value->data()[0], 0.75 * wa + 0.25 * wb, 1e-12);
}

TEST(MlpTest, SerializationRoundTrip) {
  Rng r1(1);
  Rng r2(99);
  Mlp a({3, 5, 2}, Activation::kTanh, Activation::kIdentity, &r1);
  Mlp b({3, 5, 2}, Activation::kTanh, Activation::kIdentity, &r2);
  std::stringstream ss;
  BinaryWriter w(ss, "NNTEST__", 1);
  a.Serialize(&w);
  BinaryReader r(ss, "NNTEST__", 1);
  ASSERT_TRUE(b.Deserialize(&r));
  Matrix x(1, 3);
  x.FillNormal(&r1, 1.0);
  const Matrix ya = a.Forward(x);
  const Matrix yb = b.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(MlpTest, DeserializeRejectsWrongShape) {
  Rng r1(1);
  Mlp a({3, 5, 2}, Activation::kTanh, Activation::kIdentity, &r1);
  Mlp b({3, 4, 2}, Activation::kTanh, Activation::kIdentity, &r1);
  std::stringstream ss;
  BinaryWriter w(ss, "NNTEST__", 1);
  a.Serialize(&w);
  BinaryReader r(ss, "NNTEST__", 1);
  EXPECT_FALSE(b.Deserialize(&r));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(w) = sum (w_i - target_i)^2.
  Matrix w(1, 4, 0.0);
  Matrix g(1, 4, 0.0);
  const double targets[] = {1.0, -2.0, 0.5, 3.0};
  AdamOptimizer opt(0.05);
  std::vector<ParamRef> params = {{&w, &g}};
  for (int it = 0; it < 600; ++it) {
    for (size_t i = 0; i < 4; ++i) {
      g(0, i) = 2.0 * (w(0, i) - targets[i]);
    }
    opt.Step(params);
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w(0, i), targets[i], 1e-3);
  }
}

TEST(SgdTest, MovesAgainstGradient) {
  Matrix w(1, 1, 5.0);
  Matrix g(1, 1, 2.0);
  SgdOptimizer opt(0.1);
  opt.Step({{&w, &g}});
  EXPECT_DOUBLE_EQ(w(0, 0), 4.8);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Matrix w(1, 2);
  Matrix g(1, 2);
  g(0, 0) = 3.0;
  g(0, 1) = 4.0;
  std::vector<ParamRef> params = {{&w, &g}};
  const double norm = ClipGradNorm(params, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(std::hypot(g(0, 0), g(0, 1)), 1.0, 1e-12);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Matrix w(1, 1);
  Matrix g(1, 1, 0.5);
  const double norm = ClipGradNorm({{&w, &g}}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 0.5);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.5);
}

}  // namespace
}  // namespace mocc
