// Cross-cutting property tests: randomized packet-simulator invariants, fluid-link
// latency monotonicity, Algorithm-1/trainer consistency, and serialization fuzzing.
#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/objective_space.h"
#include "src/core/offline_trainer.h"
#include "src/netsim/fluid_link.h"
#include "src/netsim/packet_network.h"

namespace mocc {
namespace {

class ProbeCc : public CongestionControl {
 public:
  ProbeCc(double rate_bps, double cwnd, CcMode mode)
      : rate_bps_(rate_bps), cwnd_(cwnd), mode_(mode) {}
  CcMode Mode() const override { return mode_; }
  std::string Name() const override { return "probe"; }
  double PacingRateBps() const override { return rate_bps_; }
  double CwndPackets() const override { return cwnd_; }

 private:
  double rate_bps_;
  double cwnd_;
  CcMode mode_;
};

// Property: across random link configurations and flow mixes, the packet simulator
// conserves packets (acked + lost <= sent, with a bounded in-flight tail) and never
// delivers more than the link can carry.
class RandomizedSimTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedSimTest, ConservationAndCapacity) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  LinkParams link;
  link.bandwidth_bps = rng.Uniform(2e6, 40e6);
  link.one_way_delay_s = rng.Uniform(0.005, 0.1);
  link.queue_capacity_pkts = static_cast<int>(rng.UniformInt(10, 2000));
  link.random_loss_rate = rng.Uniform(0.0, 0.05);

  PacketNetwork net(link, rng.NextU64());
  const int flows = static_cast<int>(rng.UniformInt(1, 4));
  for (int f = 0; f < flows; ++f) {
    const bool rate_based = rng.Bernoulli(0.5);
    FlowOptions options;
    options.start_time_s = rng.Uniform(0.0, 2.0);
    net.AddFlow(std::make_unique<ProbeCc>(rng.Uniform(1e6, 30e6),
                                          rng.Uniform(4.0, 400.0),
                                          rate_based ? CcMode::kRateBased
                                                     : CcMode::kWindowBased),
                options);
  }
  const double duration = 8.0;
  net.Run(duration);

  int64_t total_acked = 0;
  for (int f = 0; f < flows; ++f) {
    const FlowRecord& rec = net.record(f);
    EXPECT_LE(rec.total_acked + rec.total_lost, rec.total_sent);
    // The unaccounted tail is bounded by what can be in flight plus queued.
    const int64_t tail = rec.total_sent - rec.total_acked - rec.total_lost;
    EXPECT_LE(tail, link.queue_capacity_pkts + 100000);
    EXPECT_GE(tail, 0);
    total_acked += rec.total_acked;
  }
  // Total delivered bits cannot exceed link capacity x time (+1 queue drain).
  const double max_bits = link.bandwidth_bps * duration +
                          static_cast<double>(link.queue_capacity_pkts + 1) * 12000.0;
  EXPECT_LE(static_cast<double>(total_acked) * 12000.0, max_bits * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSimTest, ::testing::Range(0, 12));

// Property: in the fluid link, reported latency is non-decreasing in offered rate
// (M/D/1 term below capacity, backlog term above).
TEST(FluidLatencyTest, MonotoneInOfferedRate) {
  LinkParams link;
  link.bandwidth_bps = 10e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 5000;
  double prev_rtt = 0.0;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95, 1.1, 1.5}) {
    FluidLink fluid(link, 1, /*stochastic_loss=*/false);
    MonitorReport last;
    for (int i = 0; i < 20; ++i) {
      last = fluid.Step(frac * link.bandwidth_bps, 0.05);
    }
    EXPECT_GE(last.avg_rtt_s + 1e-9, prev_rtt) << "at fraction " << frac;
    prev_rtt = last.avg_rtt_s;
  }
}

// Property: the traversal order the trainer reports is exactly Algorithm 1's output
// for the same grid and bootstraps.
TEST(TrainerConsistencyTest, TraversalOrderMatchesAlgorithm1) {
  OfflineTrainConfig config;
  config.mocc.landmark_step_divisor = 5;
  config.mocc.history_len_eta = 4;
  config.mocc.pn_hidden = 8;
  config.mocc.pn_out = 8;
  config.mocc.trunk_hidden = {8};
  config.bootstrap_iterations = 1;
  config.traversal_rounds = 1;
  config.traversal_iterations_per_objective = 1;
  Rng rng(5);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();

  const auto grid = GenerateWeightGrid(5);
  const ObjectiveGraph graph(grid, 5);
  EXPECT_EQ(result.traversal_order, graph.SortForTraversal(config.bootstrap_objectives));
}

// Property: model deserialization never crashes on corrupted bytes (flip bytes at
// several offsets and expect clean failure or clean success, never UB/crash).
TEST(SerializationFuzzTest, CorruptedModelFilesFailCleanly) {
  MoccConfig config;
  config.history_len_eta = 4;
  config.pn_hidden = 8;
  config.pn_out = 8;
  config.trunk_hidden = {8};
  Rng rng(9);
  PreferenceActorCritic model(config, &rng);
  const std::string path = ::testing::TempDir() + "/mocc_fuzz_model.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  std::string blob;
  ASSERT_TRUE(ReadFile(path, &blob));

  Rng fuzz(10);
  for (int trial = 0; trial < 20; ++trial) {
    std::string corrupted = blob;
    const size_t pos =
        static_cast<size_t>(fuzz.UniformInt(0, static_cast<int64_t>(blob.size()) - 1));
    corrupted[pos] = static_cast<char>(fuzz.UniformInt(0, 255));
    const std::string fuzz_path = ::testing::TempDir() + "/mocc_fuzz_corrupt.bin";
    ASSERT_TRUE(WriteFile(fuzz_path, corrupted));
    // Must not crash; may load (benign flip in a weight) or fail (header/shape flip).
    auto loaded = PreferenceActorCritic::LoadFromFile(fuzz_path, config);
    if (loaded != nullptr) {
      std::vector<double> obs(loaded->obs_dim(), 0.1);
      loaded->ActionMean(obs);  // usable if it loaded
    }
  }
  // Truncations must fail cleanly.
  for (size_t keep : {size_t{0}, size_t{4}, blob.size() / 2, blob.size() - 1}) {
    const std::string trunc_path = ::testing::TempDir() + "/mocc_fuzz_trunc.bin";
    ASSERT_TRUE(WriteFile(trunc_path, blob.substr(0, keep)));
    EXPECT_EQ(PreferenceActorCritic::LoadFromFile(trunc_path, config), nullptr);
  }
}

// Property: weight-grid membership — every landmark's closest grid vertex is itself.
TEST(ObjectiveSpaceProperty, GridIsClosedUnderClosestVertex) {
  for (int divisor : {5, 10}) {
    const auto grid = GenerateWeightGrid(divisor);
    const ObjectiveGraph graph(grid, divisor);
    for (size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(graph.ClosestVertex(grid[i]), static_cast<int>(i));
    }
  }
}

}  // namespace
}  // namespace mocc
