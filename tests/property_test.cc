// Cross-cutting property tests: randomized packet-simulator invariants, fluid-link
// latency monotonicity, Algorithm-1/trainer consistency, and serialization fuzzing.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/objective_space.h"
#include "src/core/offline_trainer.h"
#include "src/netsim/aqm.h"
#include "src/netsim/fluid_link.h"
#include "src/netsim/packet_network.h"
#include "src/netsim/wifi_jitter.h"

namespace mocc {
namespace {

class ProbeCc : public CongestionControl {
 public:
  ProbeCc(double rate_bps, double cwnd, CcMode mode)
      : rate_bps_(rate_bps), cwnd_(cwnd), mode_(mode) {}
  CcMode Mode() const override { return mode_; }
  std::string Name() const override { return "probe"; }
  double PacingRateBps() const override { return rate_bps_; }
  double CwndPackets() const override { return cwnd_; }

 private:
  double rate_bps_;
  double cwnd_;
  CcMode mode_;
};

// Property: across random link configurations and flow mixes, the packet simulator
// conserves packets (acked + lost <= sent, with a bounded in-flight tail) and never
// delivers more than the link can carry.
class RandomizedSimTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedSimTest, ConservationAndCapacity) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  LinkParams link;
  link.bandwidth_bps = rng.Uniform(2e6, 40e6);
  link.one_way_delay_s = rng.Uniform(0.005, 0.1);
  link.queue_capacity_pkts = static_cast<int>(rng.UniformInt(10, 2000));
  link.random_loss_rate = rng.Uniform(0.0, 0.05);

  PacketNetwork net(link, rng.NextU64());
  const int flows = static_cast<int>(rng.UniformInt(1, 4));
  for (int f = 0; f < flows; ++f) {
    const bool rate_based = rng.Bernoulli(0.5);
    FlowOptions options;
    options.start_time_s = rng.Uniform(0.0, 2.0);
    net.AddFlow(std::make_unique<ProbeCc>(rng.Uniform(1e6, 30e6),
                                          rng.Uniform(4.0, 400.0),
                                          rate_based ? CcMode::kRateBased
                                                     : CcMode::kWindowBased),
                options);
  }
  const double duration = 8.0;
  net.Run(duration);

  int64_t total_acked = 0;
  for (int f = 0; f < flows; ++f) {
    const FlowRecord& rec = net.record(f);
    EXPECT_LE(rec.total_acked + rec.total_lost, rec.total_sent);
    // The unaccounted tail is bounded by what can be in flight plus queued.
    const int64_t tail = rec.total_sent - rec.total_acked - rec.total_lost;
    EXPECT_LE(tail, link.queue_capacity_pkts + 100000);
    EXPECT_GE(tail, 0);
    total_acked += rec.total_acked;
  }
  // Total delivered bits cannot exceed link capacity x time (+1 queue drain).
  const double max_bits = link.bandwidth_bps * duration +
                          static_cast<double>(link.queue_capacity_pkts + 1) * 12000.0;
  EXPECT_LE(static_cast<double>(total_acked) * 12000.0, max_bits * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSimTest, ::testing::Range(0, 12));

// Property: in the fluid link, reported latency is non-decreasing in offered rate
// (M/D/1 term below capacity, backlog term above).
TEST(FluidLatencyTest, MonotoneInOfferedRate) {
  LinkParams link;
  link.bandwidth_bps = 10e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 5000;
  double prev_rtt = 0.0;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95, 1.1, 1.5}) {
    FluidLink fluid(link, 1, /*stochastic_loss=*/false);
    MonitorReport last;
    for (int i = 0; i < 20; ++i) {
      last = fluid.Step(frac * link.bandwidth_bps, 0.05);
    }
    EXPECT_GE(last.avg_rtt_s + 1e-9, prev_rtt) << "at fraction " << frac;
    prev_rtt = last.avg_rtt_s;
  }
}

// Property: the traversal order the trainer reports is exactly Algorithm 1's output
// for the same grid and bootstraps.
TEST(TrainerConsistencyTest, TraversalOrderMatchesAlgorithm1) {
  OfflineTrainConfig config;
  config.mocc.landmark_step_divisor = 5;
  config.mocc.history_len_eta = 4;
  config.mocc.pn_hidden = 8;
  config.mocc.pn_out = 8;
  config.mocc.trunk_hidden = {8};
  config.bootstrap_iterations = 1;
  config.traversal_rounds = 1;
  config.traversal_iterations_per_objective = 1;
  Rng rng(5);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  const OfflineTrainResult result = trainer.TrainTwoPhase();

  const auto grid = GenerateWeightGrid(5);
  const ObjectiveGraph graph(grid, 5);
  EXPECT_EQ(result.traversal_order, graph.SortForTraversal(config.bootstrap_objectives));
}

// Property: model deserialization never crashes on corrupted bytes (flip bytes at
// several offsets and expect clean failure or clean success, never UB/crash).
TEST(SerializationFuzzTest, CorruptedModelFilesFailCleanly) {
  MoccConfig config;
  config.history_len_eta = 4;
  config.pn_hidden = 8;
  config.pn_out = 8;
  config.trunk_hidden = {8};
  Rng rng(9);
  PreferenceActorCritic model(config, &rng);
  const std::string path = ::testing::TempDir() + "/mocc_fuzz_model.bin";
  ASSERT_TRUE(model.SaveToFile(path));
  std::string blob;
  ASSERT_TRUE(ReadFile(path, &blob));

  Rng fuzz(10);
  for (int trial = 0; trial < 20; ++trial) {
    std::string corrupted = blob;
    const size_t pos =
        static_cast<size_t>(fuzz.UniformInt(0, static_cast<int64_t>(blob.size()) - 1));
    corrupted[pos] = static_cast<char>(fuzz.UniformInt(0, 255));
    const std::string fuzz_path = ::testing::TempDir() + "/mocc_fuzz_corrupt.bin";
    ASSERT_TRUE(WriteFile(fuzz_path, corrupted));
    // Must not crash; may load (benign flip in a weight) or fail (header/shape flip).
    auto loaded = PreferenceActorCritic::LoadFromFile(fuzz_path, config);
    if (loaded != nullptr) {
      std::vector<double> obs(loaded->obs_dim(), 0.1);
      loaded->ActionMean(obs);  // usable if it loaded
    }
  }
  // Truncations must fail cleanly.
  for (size_t keep : {size_t{0}, size_t{4}, blob.size() / 2, blob.size() - 1}) {
    const std::string trunc_path = ::testing::TempDir() + "/mocc_fuzz_trunc.bin";
    ASSERT_TRUE(WriteFile(trunc_path, blob.substr(0, keep)));
    EXPECT_EQ(PreferenceActorCritic::LoadFromFile(trunc_path, config), nullptr);
  }
}

// --- AQM discipline properties (src/netsim/aqm.h) ---------------------------

// Property: RED's marking probability is monotone non-decreasing in the EWMA
// queue depth, exactly 0 below min, exactly 1 at/above max, and bounded by
// max_prob inside the band.
TEST(AqmProperty, RedMarkProbabilityMonotoneInQueueDepth) {
  AqmSpec spec;
  spec.kind = AqmKind::kRed;
  double prev = 0.0;
  for (double avg = 0.0; avg <= 2.0 * spec.red_max_pkts; avg += 0.25) {
    const double p = RedMarkProbability(spec, avg);
    EXPECT_GE(p, prev) << "avg " << avg;
    prev = p;
    if (avg < spec.red_min_pkts) {
      EXPECT_EQ(p, 0.0) << "avg " << avg;
    } else if (avg >= spec.red_max_pkts) {
      EXPECT_EQ(p, 1.0) << "avg " << avg;
    } else {
      EXPECT_LE(p, spec.red_max_prob + 1e-12) << "avg " << avg;
    }
  }
}

// Property: the CoDel control law spaces drops interval/sqrt(count) apart —
// the spacing shrinks monotonically as the drop count grows, and a
// non-positive count clamps to 1.
TEST(AqmProperty, CodelControlLawSpacing) {
  const double interval = 0.1;
  double prev_spacing = interval + 1.0;
  for (int count = 1; count <= 64; ++count) {
    const double spacing = CodelControlLawS(3.0, interval, count) - 3.0;
    EXPECT_NEAR(spacing, interval / std::sqrt(static_cast<double>(count)), 1e-12);
    EXPECT_LT(spacing, prev_spacing) << "count " << count;
    prev_spacing = spacing;
  }
  EXPECT_EQ(CodelControlLawS(0.0, interval, 0), CodelControlLawS(0.0, interval, 1));
  EXPECT_EQ(CodelControlLawS(0.0, interval, -5), CodelControlLawS(0.0, interval, 1));
}

// Property: CoDel never acts while the sojourn time stays below target — no
// drops, no marks, and the dropping state is never entered.
TEST(AqmProperty, CodelNeverActsBelowTarget) {
  AqmSpec spec;
  spec.kind = AqmKind::kCodel;
  AqmState state;
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    const double now = 0.01 * i;
    const double sojourn = rng.Uniform(0.0, spec.codel_target_s * 0.999);
    const int backlog = static_cast<int>(rng.UniformInt(0, 50));
    EXPECT_EQ(CodelOnDequeue(spec, &state, now, sojourn, backlog, false),
              AqmAction::kForward);
    EXPECT_FALSE(state.dropping);
  }
}

// Property: CoDel tolerates above-target sojourns for one full interval before
// its first action, and with ECN on an ECN-capable flow every action is a mark
// (never a drop); without ECN, every action is a drop (never a mark).
TEST(AqmProperty, CodelActsOnlyAfterIntervalAndRespectsEcn) {
  for (const bool ecn : {false, true}) {
    AqmSpec spec;
    spec.kind = AqmKind::kCodel;
    spec.ecn = ecn;
    AqmState state;
    double first_action_s = -1.0;
    int actions = 0;
    for (int i = 0; i < 1000; ++i) {
      const double now = 0.001 * i;
      const AqmAction action =
          CodelOnDequeue(spec, &state, now, 2.0 * spec.codel_target_s, 20, ecn);
      if (action != AqmAction::kForward) {
        EXPECT_EQ(action, ecn ? AqmAction::kMark : AqmAction::kDrop);
        if (first_action_s < 0.0) {
          first_action_s = now;
        }
        ++actions;
      }
    }
    EXPECT_GE(first_action_s, spec.codel_interval_s)
        << "CoDel must wait out one interval of sustained above-target sojourn";
    EXPECT_GT(actions, 1) << "persistent overload must keep the control law firing";
  }
}

// Property: marking and dropping are mutually exclusive per packet and gated
// exactly on spec.ecn && ecn_capable. Inside RED's band an ECN-capable flow is
// only ever marked; a non-capable (or non-ECN-spec) flow only ever dropped;
// and the forced-drop region at/above max drops even ECN-capable flows.
TEST(AqmProperty, RedMarkVsDropMutuallyExclusive) {
  for (const bool ecn : {false, true}) {
    for (const bool capable : {false, true}) {
      AqmSpec spec;
      spec.kind = AqmKind::kRed;
      spec.ecn = ecn;
      spec.red_weight = 1.0;  // EWMA follows the instantaneous depth exactly
      AqmState state;
      Rng rng(7);
      int marks = 0;
      int drops = 0;
      for (int i = 0; i < 4000; ++i) {
        const int depth = static_cast<int>(
            rng.UniformInt(static_cast<int64_t>(spec.red_min_pkts) + 1,
                           static_cast<int64_t>(spec.red_max_pkts) - 1));
        const AqmAction action = RedOnEnqueue(spec, &state, depth, capable, &rng);
        marks += action == AqmAction::kMark ? 1 : 0;
        drops += action == AqmAction::kDrop ? 1 : 0;
      }
      if (ecn && capable) {
        EXPECT_GT(marks, 0);
        EXPECT_EQ(drops, 0) << "in-band ECN-capable packets are marked, never dropped";
      } else {
        EXPECT_EQ(marks, 0) << "marks require spec.ecn AND an ECN-capable flow";
        EXPECT_GT(drops, 0);
      }
      // Forced-drop region: at/above max threshold even ECN-capable flows drop.
      state.avg_queue_pkts = spec.red_max_pkts;
      EXPECT_EQ(RedOnEnqueue(spec, &state,
                             static_cast<int>(spec.red_max_pkts) + 50, capable, &rng),
                AqmAction::kDrop);
    }
  }
}

// Property: RED consumes randomness ONLY when the marking probability is
// strictly inside (0, 1) — below the min threshold (and in the forced-drop
// region) the Rng stream is untouched, which is what keeps AQM-free and
// below-band episodes bit-identical.
TEST(AqmProperty, RedDrawsNoRandomnessOutsideTheBand) {
  AqmSpec spec;
  spec.kind = AqmKind::kRed;
  Rng used(99);
  Rng untouched(99);
  AqmState state;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(RedOnEnqueue(spec, &state, 0, true, &used), AqmAction::kForward);
  }
  state.avg_queue_pkts = 10.0 * spec.red_max_pkts;
  spec.red_weight = 0.0;  // hold the EWMA in the forced-drop region
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(RedOnEnqueue(spec, &state, 1000, true, &used), AqmAction::kDrop);
  }
  EXPECT_EQ(used.NextU64(), untouched.NextU64())
      << "RED must not consume Rng draws outside the (0,1) probability band";
}

// Property: wifi-jitter burst windows are a pure periodic function of
// simulation time — period-shifted times agree, windows are exactly
// burst_duration_s long, and an empty spec never bursts.
TEST(AqmProperty, WifiJitterBurstWindowsArePeriodicAndPhaseShifted) {
  WifiJitterSpec spec;
  spec.burst_period_s = 0.5;
  spec.burst_duration_s = 0.1;
  spec.phase_s = 0.2;
  for (double t = 0.0; t < 3.0; t += 0.013) {
    EXPECT_EQ(spec.BurstAt(t), spec.BurstAt(t + 4 * spec.burst_period_s)) << t;
    const double u = std::fmod(t - spec.phase_s + 10 * spec.burst_period_s,
                               spec.burst_period_s);
    EXPECT_EQ(spec.BurstAt(t), u < spec.burst_duration_s) << t;
  }
  WifiJitterSpec off;
  EXPECT_TRUE(off.empty());
  for (double t = 0.0; t < 2.0; t += 0.1) {
    EXPECT_FALSE(off.BurstAt(t));
  }
}

// Property: weight-grid membership — every landmark's closest grid vertex is itself.
TEST(ObjectiveSpaceProperty, GridIsClosedUnderClosestVertex) {
  for (int divisor : {5, 10}) {
    const auto grid = GenerateWeightGrid(divisor);
    const ObjectiveGraph graph(grid, divisor);
    for (size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(graph.ClosestVertex(grid[i]), static_cast<int>(i));
    }
  }
}

}  // namespace
}  // namespace mocc
