// Tests for the RL environment layer: Eq. (1) rate action, Eq. (2) dynamic reward,
// observation layout (weight prefix + g(t,η) history), the MI history tracker and the
// online capacity/latency estimator.
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/reward.h"
#include "src/core/weight_vector.h"
#include "src/envs/cc_env.h"
#include "src/envs/mi_history.h"

namespace mocc {
namespace {

TEST(WeightVectorTest, ValidityRules) {
  EXPECT_TRUE(WeightVector(0.8, 0.1, 0.1).IsValid());
  EXPECT_TRUE(BalancedObjective().IsValid());
  EXPECT_FALSE(WeightVector(1.0, 0.0, 0.0).IsValid());   // boundary excluded
  EXPECT_FALSE(WeightVector(0.5, 0.4, 0.2).IsValid());   // sums to 1.1
  EXPECT_FALSE(WeightVector(-0.1, 0.6, 0.5).IsValid());  // negative
}

TEST(WeightVectorTest, SanitizedProjectsToOpenSimplex) {
  const WeightVector w = WeightVector(1.0, 0.0, 0.0).Sanitized();
  EXPECT_TRUE(w.IsValid());
  EXPECT_GT(w.thr, 0.85);  // floored onto the trained interior of the simplex
  const WeightVector ok = WeightVector(0.8, 0.1, 0.1).Sanitized();
  EXPECT_TRUE(ok.AlmostEquals(WeightVector(0.8, 0.1, 0.1), 1e-9));
}

TEST(WeightVectorTest, FloorPredicateMatchesTrainedRegion) {
  EXPECT_TRUE(ThroughputObjective().IsWithinFloor());
  EXPECT_TRUE(WeightVector(0.9, 0.05, 0.05).IsWithinFloor());
  EXPECT_FALSE(WeightVector(0.98, 0.01, 0.01).IsWithinFloor());  // below the floor
  EXPECT_FALSE(WeightVector(1.0, 0.0, 0.0).IsWithinFloor());     // boundary
  EXPECT_FALSE(WeightVector(0.5, 0.4, 0.2).IsWithinFloor());     // not a simplex point
  // Sanitized output always lands inside the region the predicate accepts.
  EXPECT_TRUE(WeightVector(1.0, 0.0, 0.0).Sanitized().IsWithinFloor());
}

TEST(WeightVectorTest, ParseRejectsOutOfRegionWeightsWithClearError) {
  WeightVector w;
  std::string error;
  // In-region triples parse exactly.
  ASSERT_TRUE(ParseWeightVector("0.8,0.1,0.1", &w, &error)) << error;
  EXPECT_DOUBLE_EQ(w.thr, 0.8);
  EXPECT_DOUBLE_EQ(w.lat, 0.1);
  EXPECT_DOUBLE_EQ(w.loss, 0.1);
  ASSERT_TRUE(ParseWeightVector("0.05,0.05,0.9", &w, &error)) << error;
  // Malformed text names the input.
  EXPECT_FALSE(ParseWeightVector("0.8,0.1", &w, &error));
  EXPECT_NE(error.find("0.8,0.1"), std::string::npos);
  EXPECT_FALSE(ParseWeightVector("a,b,c", &w, &error));
  EXPECT_FALSE(ParseWeightVector("0.8,0.1,0.1,0.0", &w, &error));
  // Not summing to 1 is named as such.
  EXPECT_FALSE(ParseWeightVector("0.5,0.1,0.1", &w, &error));
  EXPECT_NE(error.find("sum"), std::string::npos);
  // The paper's <1,0,0> is rejected — with guidance — rather than silently
  // projected to <0.9,0.05,0.05>.
  EXPECT_FALSE(ParseWeightVector("1,0,0", &w, &error));
  EXPECT_NE(error.find("preference region"), std::string::npos);
  EXPECT_NE(error.find("0.05"), std::string::npos);
  EXPECT_FALSE(ParseWeightVector("0.98,0.01,0.01", &w, &error));
  // Rejection leaves the output untouched.
  const WeightVector before = w;
  EXPECT_FALSE(ParseWeightVector("1,0,0", &w, &error));
  EXPECT_TRUE(w.AlmostEquals(before));
}

TEST(WeightVectorTest, SampledWeightsAreFlooredSimplexPointsAndDeterministic) {
  Rng rng_a(123);
  Rng rng_b(123);
  Rng rng_c(124);
  bool c_differs = false;
  for (int i = 0; i < 200; ++i) {
    const WeightVector a = SampleWeightVector(&rng_a);
    const WeightVector b = SampleWeightVector(&rng_b);
    const WeightVector c = SampleWeightVector(&rng_c);
    EXPECT_EQ(a.thr, b.thr);
    EXPECT_EQ(a.lat, b.lat);
    EXPECT_EQ(a.loss, b.loss);
    EXPECT_TRUE(a.IsWithinFloor()) << a;
    c_differs = c_differs || !a.AlmostEquals(c);
  }
  EXPECT_TRUE(c_differs) << "different seeds must produce different samples";
}

TEST(WeightVectorTest, DistanceAndEquality) {
  const WeightVector a(0.5, 0.3, 0.2);
  const WeightVector b(0.4, 0.4, 0.2);
  EXPECT_NEAR(a.L1DistanceTo(b), 0.2, 1e-12);
  EXPECT_TRUE(a.AlmostEquals(a));
  EXPECT_FALSE(a.AlmostEquals(b, 1e-3));
}

TEST(RewardTest, ComponentsMatchEquation2) {
  MonitorReport mi;
  mi.throughput_bps = 5e6;
  mi.avg_rtt_s = 0.05;
  mi.loss_rate = 0.1;
  const RewardComponents c = ComputeRewardComponents(mi, 10e6, 0.04);
  EXPECT_DOUBLE_EQ(c.o_thr, 0.5);
  EXPECT_DOUBLE_EQ(c.o_lat, 0.8);
  EXPECT_DOUBLE_EQ(c.o_loss, 0.9);
  const double r = DynamicReward(WeightVector(0.5, 0.3, 0.2), c);
  EXPECT_NEAR(r, 0.5 * 0.5 + 0.3 * 0.8 + 0.2 * 0.9, 1e-12);
}

TEST(RewardTest, ComponentsClampedToUnitInterval) {
  MonitorReport mi;
  mi.throughput_bps = 50e6;  // above "capacity"
  mi.avg_rtt_s = 0.01;       // below base
  mi.loss_rate = 0.0;
  const RewardComponents c = ComputeRewardComponents(mi, 10e6, 0.04);
  EXPECT_DOUBLE_EQ(c.o_thr, 1.0);
  EXPECT_DOUBLE_EQ(c.o_lat, 1.0);
  EXPECT_DOUBLE_EQ(c.o_loss, 1.0);
}

TEST(RewardTest, RewardIsMonotoneInEachComponent) {
  // Property: improving any single measure never reduces the reward.
  const WeightVector w(0.4, 0.4, 0.2);
  MonitorReport base;
  base.throughput_bps = 5e6;
  base.avg_rtt_s = 0.08;
  base.loss_rate = 0.05;
  const double r0 = DynamicReward(w, base, 10e6, 0.04);
  MonitorReport better_thr = base;
  better_thr.throughput_bps = 6e6;
  EXPECT_GT(DynamicReward(w, better_thr, 10e6, 0.04), r0);
  MonitorReport better_lat = base;
  better_lat.avg_rtt_s = 0.05;
  EXPECT_GT(DynamicReward(w, better_lat, 10e6, 0.04), r0);
  MonitorReport better_loss = base;
  better_loss.loss_rate = 0.01;
  EXPECT_GT(DynamicReward(w, better_loss, 10e6, 0.04), r0);
}

TEST(OnlineLinkEstimatorTest, TracksMaxThroughputAndMinRtt) {
  OnlineLinkEstimator est;
  EXPECT_DOUBLE_EQ(est.CapacityBps(5e6), 5e6);  // fallback before observations
  MonitorReport mi;
  mi.throughput_bps = 3e6;
  mi.min_rtt_s = 0.05;
  est.Observe(mi);
  mi.throughput_bps = 7e6;
  mi.min_rtt_s = 0.03;
  est.Observe(mi);
  mi.throughput_bps = 2e6;
  mi.min_rtt_s = 0.09;
  est.Observe(mi);
  EXPECT_DOUBLE_EQ(est.CapacityBps(), 7e6);
  EXPECT_DOUBLE_EQ(est.BaseRttS(), 0.03);
}

TEST(RateActionTest, Equation1Form) {
  // a > 0: multiply by (1 + alpha a); a < 0: divide by (1 - alpha a).
  EXPECT_DOUBLE_EQ(CcEnv::ApplyRateAction(1e6, 1.0, 0.025), 1.025e6);
  EXPECT_DOUBLE_EQ(CcEnv::ApplyRateAction(1e6, -1.0, 0.025), 1e6 / 1.025);
  EXPECT_DOUBLE_EQ(CcEnv::ApplyRateAction(1e6, 0.0, 0.025), 1e6);
}

TEST(RateActionTest, UpDownInverseProperty) {
  // Property: +a then -a returns exactly to the original rate (Eq. 1's symmetric form).
  for (double a : {0.1, 0.5, 1.0, 2.0}) {
    const double up = CcEnv::ApplyRateAction(3e6, a, 0.025);
    const double back = CcEnv::ApplyRateAction(up, -a, 0.025);
    EXPECT_NEAR(back, 3e6, 1e-6);
  }
}

TEST(MiHistoryTrackerTest, NeutralPaddingAndShift) {
  MiHistoryTracker tracker(3);
  std::vector<double> obs;
  tracker.AppendObservation(&obs);
  ASSERT_EQ(obs.size(), 9u);
  // All neutral <1,1,0>.
  for (size_t i = 0; i < 9; i += 3) {
    EXPECT_DOUBLE_EQ(obs[i], 1.0);
    EXPECT_DOUBLE_EQ(obs[i + 1], 1.0);
    EXPECT_DOUBLE_EQ(obs[i + 2], 0.0);
  }
  MonitorReport mi;
  mi.duration_s = 0.1;
  mi.packets_sent = 20;
  mi.packets_acked = 10;
  mi.avg_rtt_s = 0.05;
  tracker.Push(mi);
  obs.clear();
  tracker.AppendObservation(&obs);
  // Newest entry is at the end: send ratio 2.0.
  EXPECT_DOUBLE_EQ(obs[6], 2.0);
  EXPECT_DOUBLE_EQ(obs[0], 1.0);  // padding still at the front
}

TEST(MiHistoryTrackerTest, LatencyRatioAndGradient) {
  MiHistoryTracker tracker(2);
  MonitorReport mi;
  mi.duration_s = 0.1;
  mi.packets_sent = 10;
  mi.packets_acked = 10;
  mi.avg_rtt_s = 0.04;
  tracker.Push(mi);
  mi.avg_rtt_s = 0.08;  // latency doubled
  tracker.Push(mi);
  std::vector<double> obs;
  tracker.AppendObservation(&obs);
  ASSERT_EQ(obs.size(), 6u);
  EXPECT_DOUBLE_EQ(obs[3 + 1], 2.0);               // latency ratio vs min history
  EXPECT_NEAR(obs[3 + 2], (0.08 - 0.04) / 0.1, 1e-12);  // gradient
}

TEST(MiHistoryTrackerTest, ClampsExtremes) {
  MiHistoryTracker tracker(1);
  MonitorReport mi;
  mi.duration_s = 0.001;
  mi.packets_sent = 1000;
  mi.packets_acked = 1;
  mi.avg_rtt_s = 0.001;
  tracker.Push(mi);
  mi.avg_rtt_s = 10.0;
  tracker.Push(mi);
  std::vector<double> obs;
  tracker.AppendObservation(&obs);
  EXPECT_LE(obs[0], MiHistoryTracker::kMaxSendRatio);
  EXPECT_LE(obs[1], MiHistoryTracker::kMaxLatencyRatio);
  EXPECT_LE(std::abs(obs[2]), MiHistoryTracker::kMaxLatencyGradient);
}

TEST(CcEnvTest, ObservationLayoutWithWeight) {
  CcEnvConfig config;
  config.history_len = 5;
  CcEnv env(config, 3);
  env.SetObjective(WeightVector(0.7, 0.2, 0.1));
  const std::vector<double> obs = env.Reset();
  ASSERT_EQ(obs.size(), env.ObservationDim());
  ASSERT_EQ(obs.size(), 3u + 15u);
  EXPECT_DOUBLE_EQ(obs[0], 0.7);
  EXPECT_DOUBLE_EQ(obs[1], 0.2);
  EXPECT_DOUBLE_EQ(obs[2], 0.1);
}

TEST(CcEnvTest, ObservationLayoutWithoutWeightIsAurora) {
  CcEnvConfig config;
  config.history_len = 5;
  config.include_weight_in_obs = false;
  CcEnv env(config, 3);
  const std::vector<double> obs = env.Reset();
  EXPECT_EQ(obs.size(), 15u);
}

TEST(CcEnvTest, EpisodeTerminatesAtMaxSteps) {
  CcEnvConfig config;
  config.max_steps_per_episode = 10;
  CcEnv env(config, 5);
  env.Reset();
  int steps = 0;
  bool done = false;
  while (!done) {
    done = env.Step(0.0).done;
    ++steps;
    ASSERT_LE(steps, 10);
  }
  EXPECT_EQ(steps, 10);
}

TEST(CcEnvTest, RewardInUnitIntervalForValidWeights) {
  CcEnvConfig config;
  CcEnv env(config, 7);
  env.SetObjective(WeightVector(0.5, 0.3, 0.2));
  env.Reset();
  for (int i = 0; i < 100; ++i) {
    const StepResult r = env.Step(i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_GE(r.reward, 0.0);
    EXPECT_LE(r.reward, 1.0);
  }
}

TEST(CcEnvTest, FixedLinkIsRespected) {
  CcEnvConfig config;
  CcEnv env(config, 9);
  LinkParams link;
  link.bandwidth_bps = 3.3e6;
  link.one_way_delay_s = 0.025;
  env.SetFixedLink(link);
  env.Reset();
  EXPECT_DOUBLE_EQ(env.current_link().bandwidth_bps, 3.3e6);
  EXPECT_DOUBLE_EQ(env.current_link().one_way_delay_s, 0.025);
  env.Reset();
  EXPECT_DOUBLE_EQ(env.current_link().bandwidth_bps, 3.3e6);  // still fixed
}

TEST(CcEnvTest, SustainedPositiveActionsSaturateLink) {
  CcEnvConfig config;
  CcEnv env(config, 11);
  LinkParams link;
  link.bandwidth_bps = 4e6;
  link.one_way_delay_s = 0.02;
  link.queue_capacity_pkts = 100;
  env.SetFixedLink(link);
  env.SetObjective(ThroughputObjective());
  env.Reset();
  for (int i = 0; i < 200; ++i) {
    env.Step(2.0);
  }
  EXPECT_GT(env.last_report().throughput_bps, 0.9 * 4e6);
  EXPECT_GE(env.current_rate_bps(), 4e6);
}

TEST(CcEnvTest, SustainedNegativeActionsHitTrainingFloor) {
  CcEnvConfig config;
  config.min_rate_fraction_of_bw = 0.2;
  CcEnv env(config, 13);
  LinkParams link;
  link.bandwidth_bps = 4e6;
  env.SetFixedLink(link);
  env.Reset();
  for (int i = 0; i < 400; ++i) {
    env.Step(-2.0);
  }
  EXPECT_NEAR(env.current_rate_bps(), 0.2 * 4e6, 1e3);
}

TEST(CcEnvTest, GroundTruthVsEstimatedRewardModes) {
  LinkParams link;
  link.bandwidth_bps = 4e6;
  link.one_way_delay_s = 0.02;
  CcEnvConfig config;
  config.ground_truth_reward = false;
  CcEnv env(config, 15);
  env.SetFixedLink(link);
  env.SetObjective(ThroughputObjective());
  env.Reset();
  // With estimated capacity, the reward's throughput term is relative to the best
  // observed throughput, so after a long underutilized phase it stays near w_thr-scaled
  // values without exceeding 1.
  for (int i = 0; i < 50; ++i) {
    const StepResult r = env.Step(0.0);
    EXPECT_GE(r.reward, 0.0);
    EXPECT_LE(r.reward, 1.0);
  }
}

TEST(CcEnvTest, TraceWinsOverFixedLinkBandwidth) {
  // Regression test for the SetFixedLink + SetBandwidthTrace interaction: the trace
  // wins for bandwidth, while the fixed link keeps supplying delay/queue/loss and the
  // pre-first-step fallback (documented on SetBandwidthTrace).
  CcEnvConfig config;
  CcEnv env(config, 21);
  LinkParams link;
  link.bandwidth_bps = 3e6;
  link.one_way_delay_s = 0.02;
  env.SetFixedLink(link);
  BandwidthTrace trace;
  trace.AddStep(0.0, 9e6);
  env.SetBandwidthTrace(trace);
  env.Reset();
  EXPECT_DOUBLE_EQ(env.current_link().bandwidth_bps, 3e6);  // LinkParams untouched
  EXPECT_DOUBLE_EQ(env.current_bandwidth_bps(), 9e6);       // effective bw = trace
  // The initial rate is drawn against the trace bandwidth, not the stale 3 Mbps.
  EXPECT_GE(env.current_rate_bps(), 0.3 * 9e6 - 1e-6);
  EXPECT_LE(env.current_rate_bps(), 1.5 * 9e6 + 1e-6);
  // Clearing the trace restores the fixed link's constant bandwidth on next Reset.
  env.ClearBandwidthTrace();
  env.Reset();
  EXPECT_DOUBLE_EQ(env.current_bandwidth_bps(), 3e6);
}

TEST(CcEnvTest, TraceGeneratorWinsAndResamplesPerEpisode) {
  CcEnvConfig config;
  CcEnv env(config, 23);
  LinkParams link;
  link.bandwidth_bps = 2e6;
  env.SetFixedLink(link);
  BandwidthTrace fixed_trace;
  fixed_trace.AddStep(0.0, 4e6);
  env.SetBandwidthTrace(fixed_trace);
  env.SetTraceGenerator([](const LinkParams& params, Rng* rng) {
    BandwidthTrace t;
    t.AddStep(0.0, params.bandwidth_bps * rng->Uniform(2.0, 3.0));
    return t;
  });
  env.Reset();
  const double bw1 = env.current_bandwidth_bps();
  EXPECT_GE(bw1, 2.0 * 2e6);  // generator won over the 4 Mbps fixed trace
  EXPECT_LE(bw1, 3.0 * 2e6);
  env.Reset();
  EXPECT_NE(env.current_bandwidth_bps(), bw1);  // fresh draw per episode
  env.SetTraceGenerator(nullptr);
  env.Reset();
  EXPECT_DOUBLE_EQ(env.current_bandwidth_bps(), 4e6);  // back to the fixed trace
}

TEST(CcEnvTest, TraceDrivenEpisodesAreBitIdenticalGivenSeed) {
  // Same seed + same trace => the full episode (observations and rewards) is
  // bit-identical, the determinism contract trace-driven scenario training relies on.
  auto run = [](uint64_t seed) {
    CcEnvConfig config;
    config.max_steps_per_episode = 120;
    CcEnv env(config, seed);
    env.SetObjective(BalancedObjective());
    env.SetBandwidthTrace(BandwidthTrace::Oscillating(1e6, 4e6, 3.0, 60.0));
    std::vector<double> all;
    std::vector<double> obs = env.Reset();
    all.insert(all.end(), obs.begin(), obs.end());
    for (int i = 0; i < 120; ++i) {
      const StepResult r = env.Step(i % 3 == 0 ? 0.7 : -0.4);
      all.push_back(r.reward);
      all.insert(all.end(), r.observation.begin(), r.observation.end());
      if (r.done) {
        break;
      }
    }
    return all;
  };
  const std::vector<double> a = run(91);
  const std::vector<double> b = run(91);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "episode diverged at element " << i;
  }
  EXPECT_NE(run(91), run(92));
}

TEST(CcEnvTest, DeterministicEpisodesGivenSeed) {
  auto run = [](uint64_t seed) {
    CcEnvConfig config;
    CcEnv env(config, seed);
    env.SetObjective(BalancedObjective());
    env.Reset();
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
      total += env.Step(0.3).reward;
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace mocc
