// Tests for the landmark-objective space: simplex grid cardinalities (the ω values of
// Figure 16), the Appendix-B neighborhood predicate (including the paper's worked
// examples), and Algorithm 1's sorting invariants.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/core/objective_space.h"

namespace mocc {
namespace {

TEST(WeightGridTest, CardinalityMatchesFigure16) {
  // Step sizes 1/4, 1/5, 1/6, 1/10, 1/20 -> omega = 3, 6, 10, 36, 171.
  EXPECT_EQ(GenerateWeightGrid(4).size(), 3u);
  EXPECT_EQ(GenerateWeightGrid(5).size(), 6u);
  EXPECT_EQ(GenerateWeightGrid(6).size(), 10u);
  EXPECT_EQ(GenerateWeightGrid(10).size(), 36u);
  EXPECT_EQ(GenerateWeightGrid(20).size(), 171u);
}

class GridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridPropertyTest, AllPointsValidAndUnique) {
  const int divisor = GetParam();
  const auto grid = GenerateWeightGrid(divisor);
  EXPECT_EQ(static_cast<int>(grid.size()), ObjectiveGridSize(divisor));
  std::set<std::pair<int, int>> seen;
  for (const auto& w : grid) {
    EXPECT_TRUE(w.IsValid()) << w;
    const int a = static_cast<int>(std::lround(w.thr * divisor));
    const int b = static_cast<int>(std::lround(w.lat * divisor));
    EXPECT_TRUE(seen.insert({a, b}).second) << "duplicate " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, GridPropertyTest, ::testing::Values(4, 5, 6, 10, 20));

TEST(NeighborTest, PaperExamplesAtStepTenth) {
  // Appendix B's worked examples at step size 0.1.
  EXPECT_TRUE(AreNeighborObjectives({0.2, 0.4, 0.4}, {0.2, 0.5, 0.3}, 10));
  EXPECT_TRUE(AreNeighborObjectives({0.2, 0.4, 0.4}, {0.1, 0.5, 0.4}, 10));
  EXPECT_FALSE(AreNeighborObjectives({0.2, 0.4, 0.4}, {0.1, 0.3, 0.6}, 10));
}

TEST(NeighborTest, SelfIsNotNeighbor) {
  EXPECT_FALSE(AreNeighborObjectives({0.3, 0.3, 0.4}, {0.3, 0.3, 0.4}, 10));
}

TEST(NeighborTest, TwoStepDifferenceIsNotNeighbor) {
  EXPECT_FALSE(AreNeighborObjectives({0.2, 0.4, 0.4}, {0.4, 0.2, 0.4}, 10));
}

TEST(NeighborTest, SymmetricPredicate) {
  const auto grid = GenerateWeightGrid(6);
  for (const auto& a : grid) {
    for (const auto& b : grid) {
      EXPECT_EQ(AreNeighborObjectives(a, b, 6), AreNeighborObjectives(b, a, 6));
    }
  }
}

TEST(ObjectiveGraphTest, ClosestVertexFindsExactMatches) {
  const auto grid = GenerateWeightGrid(10);
  ObjectiveGraph graph(grid, 10);
  for (size_t i = 0; i < grid.size(); i += 5) {
    EXPECT_EQ(graph.ClosestVertex(grid[i]), static_cast<int>(i));
  }
}

TEST(ObjectiveGraphTest, GridIsConnected) {
  const auto grid = GenerateWeightGrid(10);
  ObjectiveGraph graph(grid, 10);
  // BFS from vertex 0 must reach everything.
  std::vector<bool> seen(grid.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int nb : graph.NeighborsOf(v)) {
      if (!seen[static_cast<size_t>(nb)]) {
        seen[static_cast<size_t>(nb)] = true;
        ++count;
        stack.push_back(nb);
      }
    }
  }
  EXPECT_EQ(count, grid.size());
}

class TraversalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TraversalPropertyTest, Algorithm1ProducesValidOrdering) {
  const int divisor = GetParam();
  const auto grid = GenerateWeightGrid(divisor);
  ObjectiveGraph graph(grid, divisor);
  const auto bootstraps = DefaultBootstrapObjectives();
  const std::vector<int> order = graph.SortForTraversal(bootstraps);

  // Invariant 1: a permutation of all vertices.
  ASSERT_EQ(order.size(), grid.size());
  std::set<int> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), grid.size());

  // Invariant 2: the first vertex is a bootstrap objective (its closest grid vertex).
  EXPECT_EQ(order.front(), graph.ClosestVertex(bootstraps.front()));

  // Invariant 3: every vertex (beyond the first of each quota block) is reachable from
  // some earlier vertex in the order through the neighbor graph — transfer always has a
  // trained neighbor to start from.
  std::set<int> placed = {order.front()};
  int disconnected = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    bool has_trained_neighbor = false;
    for (int nb : graph.NeighborsOf(order[i])) {
      if (placed.count(nb) > 0) {
        has_trained_neighbor = true;
        break;
      }
    }
    // Quota switches (new bootstrap source) may jump; count them.
    if (!has_trained_neighbor) {
      ++disconnected;
    }
    placed.insert(order[i]);
  }
  // At most one jump per bootstrap source.
  EXPECT_LE(disconnected, static_cast<int>(bootstraps.size()));
}

INSTANTIATE_TEST_SUITE_P(Divisors, TraversalPropertyTest, ::testing::Values(5, 6, 10, 20));

TEST(TraversalTest, InterleavesAroundBootstrapSources) {
  const auto grid = GenerateWeightGrid(10);
  ObjectiveGraph graph(grid, 10);
  const auto bootstraps = DefaultBootstrapObjectives();
  const auto order = graph.SortForTraversal(bootstraps);
  // Each bootstrap's closest vertex appears within the first |quota| positions of its
  // block; with 36 vertices and 3 sources the quota is 12.
  const int quota = 12;
  std::vector<int> srcs;
  for (const auto& b : bootstraps) {
    srcs.push_back(graph.ClosestVertex(b));
  }
  // Source 0 leads block 0.
  EXPECT_EQ(order[0], srcs[0]);
  // Source 1 and 2 lead their own blocks (unless already visited).
  auto pos = [&](int v) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == v) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  EXPECT_LT(pos(srcs[0]), quota);
  EXPECT_GE(pos(srcs[1]), 0);
  EXPECT_GE(pos(srcs[2]), 0);
}

TEST(BootstrapObjectivesTest, MatchAppendixB) {
  const auto b = DefaultBootstrapObjectives();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0].AlmostEquals({0.6, 0.3, 0.1}, 1e-9));
  EXPECT_TRUE(b[1].AlmostEquals({0.1, 0.6, 0.3}, 1e-9));
  EXPECT_TRUE(b[2].AlmostEquals({0.3, 0.1, 0.6}, 1e-9));
  for (const auto& w : b) {
    EXPECT_TRUE(w.IsValid());
  }
}

}  // namespace
}  // namespace mocc
