// Unit tests for the common substrate: RNG determinism and distributions, statistics,
// binary serialization, and table formatting.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace mocc {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.Normal(2.0, 3.0));
  }
  EXPECT_NEAR(stat.Mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.StdDev(), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_NEAR(s.Variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
}

TEST(PercentileTest, EmptyReturnsZero) { EXPECT_EQ(Percentile({}, 0.5), 0.0); }

TEST(CdfTest, MonotoneAndComplete) {
  auto cdf = EmpiricalCdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative_probability, cdf[i].cumulative_probability);
  }
}

TEST(JainTest, EqualSharesGiveOne) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5, 5, 5}), 1.0);
}

TEST(JainTest, SingleHogGivesOneOverN) {
  EXPECT_NEAR(JainFairnessIndex({1, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainTest, DegenerateInputsGiveOne) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}), 1.0);
}

TEST(SlopeTest, ExactLine) {
  EXPECT_NEAR(LeastSquaresSlope({0, 1, 2, 3}, {1, 3, 5, 7}), 2.0, 1e-12);
}

TEST(SlopeTest, DegenerateInputs) {
  EXPECT_EQ(LeastSquaresSlope({1}, {2}), 0.0);
  EXPECT_EQ(LeastSquaresSlope({2, 2, 2}, {1, 5, 9}), 0.0);
}

TEST(Gaussian2dTest, AxisAlignedCloud) {
  // x spread 2x wider than y: major axis along x.
  std::vector<double> x;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.Normal(1.0, 2.0));
    y.push_back(rng.Normal(-1.0, 1.0));
  }
  const Gaussian2d g = FitGaussian2d(x, y);
  EXPECT_NEAR(g.mean_x, 1.0, 0.1);
  EXPECT_NEAR(g.mean_y, -1.0, 0.1);
  EXPECT_NEAR(g.ellipse_major, 2.0, 0.1);
  EXPECT_NEAR(g.ellipse_minor, 1.0, 0.1);
  EXPECT_NEAR(std::abs(std::remainder(g.ellipse_angle_rad, M_PI)), 0.0, 0.1);
}

TEST(SerializationTest, RoundTripPrimitives) {
  std::stringstream ss;
  BinaryWriter w(ss, "TESTMAGC", 3);
  w.WriteU32(42);
  w.WriteU64(1ULL << 40);
  w.WriteI64(-77);
  w.WriteDouble(3.25);
  w.WriteString("hello world");
  w.WriteDoubleVector({1.5, -2.5, 0.0});
  ASSERT_TRUE(w.ok());

  BinaryReader r(ss, "TESTMAGC", 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 42u);
  EXPECT_EQ(r.ReadU64(), 1ULL << 40);
  EXPECT_EQ(r.ReadI64(), -77);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.25);
  EXPECT_EQ(r.ReadString(), "hello world");
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_TRUE(r.ok());
}

TEST(SerializationTest, WrongMagicFails) {
  std::stringstream ss;
  BinaryWriter w(ss, "MAGICAAA", 1);
  w.WriteU32(1);
  BinaryReader r(ss, "MAGICBBB", 1);
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, WrongVersionFails) {
  std::stringstream ss;
  BinaryWriter w(ss, "MAGICAAA", 1);
  BinaryReader r(ss, "MAGICAAA", 2);
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, TruncatedStreamReportsFailure) {
  std::stringstream ss;
  BinaryWriter w(ss, "MAGICAAA", 1);
  w.WriteU32(5);
  BinaryReader r(ss, "MAGICAAA", 1);
  r.ReadU32();
  r.ReadDouble();  // past the end
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mocc_serialization_test.bin";
  ASSERT_TRUE(WriteFile(path, "contents\x00with null" + std::string(1, '\0')));
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back));
  EXPECT_EQ(back.substr(0, 8), "contents");
}

TEST(SerializationTest, TruncatedHeaderFails) {
  // A file cut off inside the magic/version header must fail cleanly.
  std::stringstream ss;
  ss << "MAGI";  // half a magic
  BinaryReader r(ss, "MAGICAAA", 1);
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, HugeDeclaredStringLengthRejected) {
  // A corrupt length prefix claiming more bytes than the stream holds must not
  // trigger a giant allocation — the reader checks the declared size against
  // the remaining bytes first.
  std::stringstream ss;
  BinaryWriter w(ss, "MAGICAAA", 1);
  w.WriteU64(1ULL << 60);  // absurd string length, no payload behind it
  BinaryReader r(ss, "MAGICAAA", 1);
  const std::string s = r.ReadString();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, HugeDeclaredVectorLengthRejected) {
  std::stringstream ss;
  BinaryWriter w(ss, "MAGICAAA", 1);
  w.WriteU64(1ULL << 58);  // would be an exabyte of doubles
  BinaryReader r(ss, "MAGICAAA", 1);
  const std::vector<double> v = r.ReadDoubleVector();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, ReadsAfterFailureStayFailed) {
  // Once a reader trips, every later read returns a zero value and ok() stays
  // false — callers can batch reads and check ok() once at the end.
  std::stringstream ss;
  BinaryWriter w(ss, "MAGICAAA", 1);
  w.WriteU32(5);
  BinaryReader r(ss, "MAGICAAA", 1);
  r.ReadU32();
  r.ReadDouble();  // past the end: trips the failure latch
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_EQ(r.ReadI64(), 0);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ReadDoubleVector().empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerializationTest, AtomicWriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mocc_atomic_write_test.bin";
  // Seed the destination with stale content; the atomic path must replace it.
  ASSERT_TRUE(WriteFile(path, "stale"));
  ASSERT_TRUE(AtomicWriteFile(path, "fresh contents"));
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back));
  EXPECT_EQ(back, "fresh contents");
}

TEST(SerializationTest, AtomicWriteFileFailsOnBadDirectory) {
  // Destination directory does not exist: the temp-file create fails and the
  // call reports it instead of leaving partial state.
  EXPECT_FALSE(AtomicWriteFile("/nonexistent-mocc-dir/x/y.bin", "data"));
}

TEST(TableTest, AlignsAndCounts) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", TablePrinter::Num(1.5, 2)});
  t.AddRow({"bb"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_NE(csv.str().find("name,value"), std::string::npos);
}

}  // namespace
}  // namespace mocc
