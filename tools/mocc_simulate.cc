// mocc_simulate — runs one congestion-control scheme on a configured bottleneck link in
// the packet-level simulator and prints a per-second CSV timeline (throughput, RTT,
// loss), suitable for plotting. With --scenario, the link, trace, flow count and
// competitor flows come from the named scenario instead (the scheme drives every
// agent flow), and per-flow totals plus the agents' Jain index are reported.
//
// Usage:
//   mocc_simulate --scheme NAME [--model PATH] [--weights T,L,S] [--bw MBPS] [--owd MS]
//                 [--queue PKTS] [--loss FRAC] [--duration S] [--seed N]
//                 [--mahimahi TRACE] [--scenario NAME] [--list-scenarios]
//                 [--precision double|float32]
//
//   NAME in {mocc, cubic, newreno, vegas, bbr, copa, allegro, vivace}
//   --precision float32 runs MOCC's per-MI inference through the frozen float32
//   deployment replica (src/rl/inference_policy.h) instead of the double path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/mocc_cc.h"
#include "src/core/preference_model.h"
#include "src/envs/scenario.h"
#include "src/netsim/packet_network.h"

int main(int argc, char** argv) {
  using namespace mocc;
  std::string scheme = "mocc";
  std::string model_path = "mocc_model.bin";
  std::string mahimahi_path;
  std::string scenario_name;
  WeightVector weights = ThroughputObjective();
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 700;
  double duration = 60.0;
  uint64_t seed = 1;
  bool link_flags_given = false;
  bool float32_inference = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scheme") {
      scheme = next();
    } else if (arg == "--model") {
      model_path = next();
    } else if (arg == "--weights") {
      double t = 0.0;
      double l = 0.0;
      double s = 0.0;
      if (std::sscanf(next(), "%lf,%lf,%lf", &t, &l, &s) != 3) {
        std::fprintf(stderr, "--weights expects T,L,S\n");
        return 2;
      }
      weights = WeightVector(t, l, s);
    } else if (arg == "--bw") {
      link.bandwidth_bps = std::atof(next()) * 1e6;
      link_flags_given = true;
    } else if (arg == "--owd") {
      link.one_way_delay_s = std::atof(next()) / 1e3;
      link_flags_given = true;
    } else if (arg == "--queue") {
      link.queue_capacity_pkts = std::atoi(next());
      link_flags_given = true;
    } else if (arg == "--loss") {
      link.random_loss_rate = std::atof(next());
      link_flags_given = true;
    } else if (arg == "--duration") {
      duration = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--mahimahi") {
      mahimahi_path = next();
    } else if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--precision") {
      const std::string precision = next();
      if (precision == "float32") {
        float32_inference = true;
      } else if (precision != "double") {
        std::fprintf(stderr, "--precision expects double or float32\n");
        return 2;
      }
    } else if (arg == "--list-scenarios") {
      PrintScenarioCatalog(stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: mocc_simulate --scheme NAME [--model PATH] [--weights T,L,S]\n"
          "                     [--bw MBPS] [--owd MS] [--queue PKTS] [--loss FRAC]\n"
          "                     [--duration S] [--seed N] [--mahimahi TRACE]\n"
          "                     [--scenario NAME] [--list-scenarios]\n"
          "                     [--precision double|float32]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Scenario selection (link/trace/flow schedule come from the catalog).
  std::optional<Scenario> scenario;
  if (!scenario_name.empty()) {
    std::string error;
    scenario = ScenarioRegistry::Global().Resolve(scenario_name, &error);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "--scenario: %s (try --list-scenarios)\n", error.c_str());
      return 2;
    }
  }

  Rng rng(seed);
  if (scenario.has_value()) {
    if (link_flags_given) {
      std::fprintf(stderr,
                   "warning: --scenario defines the link; ignoring --bw/--owd/"
                   "--queue/--loss\n");
    }
    link = scenario->fixed_link.has_value()
               ? *scenario->fixed_link
               : (scenario->link_range.has_value() ? *scenario->link_range
                                                   : TrainingRange())
                     .Sample(&rng);
  }

  // The agent-scheme factory: one controller per agent flow (MOCC flows share one
  // loaded model).
  std::shared_ptr<PreferenceActorCritic> model;
  if (scheme == "mocc") {
    model = PreferenceActorCritic::LoadFromFile(model_path, MoccConfig{});
    if (model == nullptr) {
      std::fprintf(stderr, "cannot load %s; train one with tools/mocc_train\n",
                   model_path.c_str());
      return 1;
    }
  }
  if (scheme != "mocc" && MakeBaselineCc(scheme) == nullptr) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }
  if (float32_inference && scheme != "mocc") {
    std::fprintf(stderr, "warning: --precision float32 only affects --scheme mocc\n");
  }
  auto make_scheme = [&]() -> std::unique_ptr<CongestionControl> {
    if (scheme == "mocc") {
      return MakeMoccCc(model, weights, "MOCC", std::max(2e6, 0.25 * link.bandwidth_bps),
                        float32_inference);
    }
    return MakeBaselineCc(scheme);
  };

  // The scenario's topology (dumbbell unless it names a parking lot or a
  // congested reverse path) built from the resolved link, with the same path
  // assignment MultiFlowCcEnv uses in training.
  const TopologySpec topology_spec =
      scenario.has_value() ? scenario->topology : TopologySpec{};
  PacketNetwork net(BuildTopology(topology_spec, link), seed);
  if (!mahimahi_path.empty()) {
    if (scenario.has_value() && scenario->trace_generator) {
      std::fprintf(stderr,
                   "warning: --mahimahi overrides the scenario's bandwidth schedule\n");
    }
    BandwidthTrace trace = BandwidthTrace::FromMahimahiFile(mahimahi_path);
    if (trace.empty()) {
      std::fprintf(stderr, "cannot read mahimahi trace %s\n", mahimahi_path.c_str());
      return 1;
    }
    net.SetBandwidthTrace(std::move(trace));
  } else if (scenario.has_value() && scenario->trace_generator) {
    net.SetBandwidthTrace(scenario->trace_generator(link, &rng));
  }

  std::vector<int> agent_flows;
  std::vector<int> competitor_flows;
  const int num_agents = scenario.has_value() ? scenario->num_agents : 1;
  const FlowPathSpec agent_paths = AgentPath(topology_spec);
  for (int i = 0; i < num_agents; ++i) {
    FlowOptions options;
    options.start_time_s =
        scenario.has_value() ? static_cast<double>(i) * scenario->agent_stagger_s : 0.0;
    options.path = agent_paths.path;
    options.ack_path = agent_paths.ack_path;
    if (scenario.has_value() && !scenario->agent_extra_delay_s.empty()) {
      options.extra_one_way_delay_s =
          scenario->agent_extra_delay_s[static_cast<size_t>(i) %
                                        scenario->agent_extra_delay_s.size()];
    }
    agent_flows.push_back(net.AddFlow(make_scheme(), options));
  }
  if (scenario.has_value()) {
    int competitor_index = 0;
    for (const std::string& competitor : scenario->competitor_schemes) {
      const FlowPathSpec paths = CompetitorPath(topology_spec, competitor_index++);
      FlowOptions options;
      options.start_time_s = scenario->competitor_start_s;
      options.stop_time_s = scenario->competitor_stop_s;
      options.path = paths.path;
      options.ack_path = paths.ack_path;
      competitor_flows.push_back(net.AddFlow(MakeBaselineCc(competitor), options));
    }
  }
  const int flow = agent_flows.front();
  net.Run(duration);

  const FlowRecord& rec = net.record(flow);
  std::printf("time_s,throughput_mbps,avg_rtt_ms,loss_rate\n");
  const auto bins = rec.BinnedThroughputMbps(0.0, duration, 1.0);
  // Per-second RTT/loss from the monitor-interval samples.
  for (size_t s = 0; s < bins.size(); ++s) {
    double rtt_sum = 0.0;
    double loss_sum = 0.0;
    int count = 0;
    for (const auto& mi : rec.mi_samples()) {
      if (mi.time_s >= static_cast<double>(s) && mi.time_s < static_cast<double>(s + 1)) {
        rtt_sum += mi.avg_rtt_s;
        loss_sum += mi.loss_rate;
        ++count;
      }
    }
    std::printf("%zu,%.3f,%.2f,%.4f\n", s, bins[s],
                count > 0 ? rtt_sum / count * 1e3 : 0.0,
                count > 0 ? loss_sum / count : 0.0);
  }
  std::fprintf(stderr, "totals: sent=%lld acked=%lld lost=%lld avg_rtt=%.1fms\n",
               static_cast<long long>(rec.total_sent),
               static_cast<long long>(rec.total_acked),
               static_cast<long long>(rec.total_lost), rec.AvgRttS() * 1e3);
  if (agent_flows.size() + competitor_flows.size() > 1) {
    // Steady-state per-flow summary (second half of the run) plus the agents' Jain
    // fairness index — the scenario's multi-flow report.
    std::vector<double> agent_throughputs;
    for (int f : agent_flows) {
      const double bps = net.record(f).AvgThroughputBps(duration / 2, duration);
      agent_throughputs.push_back(bps);
      std::fprintf(stderr, "agent flow %d: %.3f Mbps (steady state), avg_rtt=%.1fms\n", f,
                   bps / 1e6, net.record(f).AvgRttS() * 1e3);
    }
    for (int f : competitor_flows) {
      std::fprintf(stderr, "competitor flow %d: %.3f Mbps (steady state)\n", f,
                   net.record(f).AvgThroughputBps(duration / 2, duration) / 1e6);
    }
    if (agent_throughputs.size() > 1) {
      std::fprintf(stderr, "agent Jain fairness index (steady state): %.3f\n",
                   JainFairnessIndex(agent_throughputs));
    }
  }
  return 0;
}
