// mocc_simulate — runs one congestion-control scheme on a configured bottleneck link in
// the packet-level simulator and prints a per-second CSV timeline (throughput, RTT,
// loss), suitable for plotting. With --scenario, the link, trace, topology, flow count,
// competitor flows and per-agent objective assignment come from the named scenario
// instead (the scheme drives every agent flow), and per-flow totals plus the agents'
// Jain index are reported.
//
// Heterogeneous objectives & online preference switching (MOCC flows only):
//   --objectives assigns a different weight vector to each agent flow (cycled),
//   overriding the scenario's objective plan; --switch schedules mid-run preference
//   changes applied to the live controllers through SetObservationPrefix — the
//   paper's online adjustment, no retraining or restart. The final report decomposes
//   each agent's steady-state behaviour into the Eq. (2) reward components
//   (O_thr/O_lat/O_loss) under its own weight vector and prints Jain fairness within
//   each objective class (flows wanting the same trade-off should share fairly;
//   flows wanting different trade-offs deliberately should not).
//
// Weight vectors are validated strictly at this entry point: components must sum to 1
// and each must be at least kWeightVectorFloor (0.05) — out-of-region requirements are
// rejected with an error instead of silently projected (see src/core/weight_vector.h).
//
// Usage:
//   mocc_simulate --scheme NAME [--model PATH] [--weights T,L,S] [--bw MBPS] [--owd MS]
//                 [--queue PKTS] [--loss FRAC] [--duration S] [--seed N]
//                 [--mahimahi TRACE] [--scenario NAME] [--list-scenarios]
//                 [--precision double|float32|int8] [--guard] [--serving]
//                 [--objectives T,L,S[;T,L,S...]] [--switch TIME:T,L,S]...
//                 [--fleet] [--shards N] [--episodes N] [--steps N] [--threads N]
//
//   --fleet runs shards of isolated scenario instances across the thread pool
//   (src/fleet/fleet.h) instead of one timeline: per-shard CSV on stdout,
//   aggregate rollups + the bit-identity checksum on stderr. Results are
//   bit-identical for any --threads value (1 = the serial reference).
//
//   NAME in {mocc, cubic, newreno, vegas, bbr, copa, allegro, vivace}
//   --precision float32 runs MOCC's per-MI inference through the frozen float32
//   deployment replica (src/rl/inference_policy.h) instead of the double path.
//   --guard wraps every MOCC flow's decisions in the GuardedPolicy circuit breaker
//   (src/rl/guarded_policy.h): violations degrade the flow to a warm-standby CUBIC
//   fallback with periodic half-open probes; trip/fallback/recovery counts are
//   reported per flow. All MOCC knobs flow through one PolicySpec
//   (src/core/policy_spec.h) — the same spec the serving layer consumes.
//   --serving drives the agent flows through one shared MoccServing instance
//   (connection slab + batched inference, src/core/mocc_api.h) instead of
//   per-flow controllers; decisions are bit-identical, so timelines match the
//   per-flow path exactly. Fault-injection scenarios (blackout, flaky-link,
//   loss-burst) apply their FaultSpec to the bottleneck link here exactly as in
//   training; AQM/ECN and wifi-jitter scenarios (red-ecn, codel, wifi-jitter,
//   ...) mirror their bottleneck link models the same way, and MOCC agent flows
//   become ECN-capable whenever the scenario's AQM marks.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/mocc_api.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/core/reward.h"
#include "src/envs/scenario.h"
#include "src/fleet/fleet.h"
#include "src/netsim/packet_network.h"
#include "src/serving/serving_cc.h"

namespace {

using namespace mocc;

// One scheduled mid-run preference change (flow < 0 = every agent flow).
struct SwitchEvent {
  double time_s = 0.0;
  int flow = -1;
  WeightVector to;
};

// Steady-state aggregates of one flow over [from_s, to_s).
struct WindowStats {
  double throughput_bps = 0.0;
  double avg_rtt_s = 0.0;
  double loss_rate = 0.0;
};

WindowStats MeasureWindow(const FlowRecord& rec, double from_s, double to_s) {
  WindowStats stats;
  stats.throughput_bps = rec.AvgThroughputBps(from_s, to_s);
  double rtt_sum = 0.0;
  double loss_sum = 0.0;
  int count = 0;
  for (const auto& mi : rec.mi_samples()) {
    if (mi.time_s >= from_s && mi.time_s < to_s) {
      rtt_sum += mi.avg_rtt_s;
      loss_sum += mi.loss_rate;
      ++count;
    }
  }
  if (count > 0) {
    stats.avg_rtt_s = rtt_sum / count;
    stats.loss_rate = loss_sum / count;
  } else {
    // No monitor interval completed inside the window (long-RTT flows stretch their
    // MIs); fall back to the whole-run mean rather than reporting a 0 ms RTT.
    stats.avg_rtt_s = rec.AvgRttS();
    stats.loss_rate = rec.LossRate();
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mocc;
  std::string scheme = "mocc";
  std::string model_path = "mocc_model.bin";
  std::string mahimahi_path;
  std::string scenario_name;
  WeightVector weights = ThroughputObjective();
  std::vector<WeightVector> objective_list;  // --objectives, cycled over agent flows
  std::vector<SwitchEvent> switches;         // --switch plus the scenario's plan
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 700;
  double duration = 60.0;
  uint64_t seed = 1;
  bool link_flags_given = false;
  Precision precision = Precision::kDouble;
  bool guard = false;
  bool serving = false;
  bool fleet = false;
  int fleet_shards = 8;
  int fleet_episodes = 1;
  int fleet_steps = 0;
  int fleet_threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scheme") {
      scheme = next();
    } else if (arg == "--model") {
      model_path = next();
    } else if (arg == "--weights") {
      std::string error;
      if (!ParseWeightVector(next(), &weights, &error)) {
        std::fprintf(stderr, "--weights: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--objectives") {
      // Semicolon-separated weight triples; agent flow i gets entry i % size.
      const std::string spec = next();
      size_t begin = 0;
      while (begin <= spec.size()) {
        size_t end = spec.find(';', begin);
        if (end == std::string::npos) {
          end = spec.size();
        }
        const std::string triple = spec.substr(begin, end - begin);
        if (!triple.empty()) {
          WeightVector w;
          std::string error;
          if (!ParseWeightVector(triple, &w, &error)) {
            std::fprintf(stderr, "--objectives: %s\n", error.c_str());
            return 2;
          }
          objective_list.push_back(w);
        }
        begin = end + 1;
      }
      if (objective_list.empty()) {
        std::fprintf(stderr, "--objectives: empty objective list\n");
        return 2;
      }
    } else if (arg == "--switch") {
      // TIME:T,L,S — at TIME seconds, every agent flow switches to <T,L,S>.
      const std::string spec = next();
      const size_t colon = spec.find(':');
      SwitchEvent sw;
      bool time_ok = false;
      if (colon != std::string::npos && colon > 0) {
        const std::string time_text = spec.substr(0, colon);
        char* time_end = nullptr;
        sw.time_s = std::strtod(time_text.c_str(), &time_end);
        time_ok = time_end != nullptr && *time_end == '\0';
      }
      std::string error;
      if (!time_ok ||
          !ParseWeightVector(spec.substr(colon + 1), &sw.to, &error)) {
        std::fprintf(stderr, "--switch expects TIME:T,L,S%s%s\n",
                     error.empty() ? "" : " — ", error.c_str());
        return 2;
      }
      switches.push_back(sw);
    } else if (arg == "--bw") {
      link.bandwidth_bps = std::atof(next()) * 1e6;
      link_flags_given = true;
    } else if (arg == "--owd") {
      link.one_way_delay_s = std::atof(next()) / 1e3;
      link_flags_given = true;
    } else if (arg == "--queue") {
      link.queue_capacity_pkts = std::atoi(next());
      link_flags_given = true;
    } else if (arg == "--loss") {
      link.random_loss_rate = std::atof(next());
      link_flags_given = true;
    } else if (arg == "--duration") {
      duration = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--mahimahi") {
      mahimahi_path = next();
    } else if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--precision") {
      if (!ParsePrecision(next(), &precision)) {
        std::fprintf(stderr, "--precision expects double, float32 or int8\n");
        return 2;
      }
    } else if (arg == "--guard") {
      guard = true;
    } else if (arg == "--serving") {
      serving = true;
    } else if (arg == "--fleet") {
      fleet = true;
    } else if (arg == "--shards") {
      fleet_shards = std::atoi(next());
    } else if (arg == "--episodes") {
      fleet_episodes = std::atoi(next());
    } else if (arg == "--steps") {
      fleet_steps = std::atoi(next());
    } else if (arg == "--threads") {
      fleet_threads = std::atoi(next());
    } else if (arg == "--list-scenarios") {
      PrintScenarioCatalog(stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: mocc_simulate --scheme NAME [--model PATH] [--weights T,L,S]\n"
          "                     [--bw MBPS] [--owd MS] [--queue PKTS] [--loss FRAC]\n"
          "                     [--duration S] [--seed N] [--mahimahi TRACE]\n"
          "                     [--scenario NAME] [--list-scenarios]\n"
          "                     [--precision double|float32|int8] [--guard] [--serving]\n"
          "                     [--objectives T,L,S[;T,L,S...]] [--switch TIME:T,L,S]\n"
          "                     [--fleet] [--shards N] [--episodes N] [--steps N]\n"
          "                     [--threads N]\n"
          "\n"
          "  --fleet shards N isolated instances of the scenario across the thread\n"
          "  pool (src/fleet/fleet.h) and prints per-shard and aggregate rollups;\n"
          "  results are bit-identical for any --threads (0 = all cores, 1 =\n"
          "  serial reference). MOCC only; the scenario defaults to many-flow.\n"
          "  --serving drives MOCC agent flows through one shared serving instance\n"
          "  (connection slab + batched inference) instead of per-flow controllers;\n"
          "  decisions are bit-identical to the per-flow path.\n"
          "  --objectives assigns agent flow i the i%%N-th weight triple (MOCC only),\n"
          "  overriding the scenario's objective plan; --switch (repeatable)\n"
          "  schedules an online preference change for every agent flow at TIME s.\n"
          "  Weight triples must sum to 1 with every component >= 0.05 (the trained\n"
          "  preference region); out-of-region triples are rejected, not clamped.\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Scenario selection (link/trace/flow schedule/objective plan come from the catalog).
  std::optional<Scenario> scenario;
  if (!scenario_name.empty()) {
    std::string error;
    scenario = ScenarioRegistry::Global().Resolve(scenario_name, &error);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "--scenario: %s (try --list-scenarios)\n", error.c_str());
      return 2;
    }
  }

  Rng rng(seed);
  if (scenario.has_value()) {
    if (link_flags_given) {
      std::fprintf(stderr,
                   "warning: --scenario defines the link; ignoring --bw/--owd/"
                   "--queue/--loss\n");
    }
    link = scenario->fixed_link.has_value()
               ? *scenario->fixed_link
               : (scenario->link_range.has_value() ? *scenario->link_range
                                                   : TrainingRange())
                     .Sample(&rng);
  }

  // The agent-scheme factory: one controller per agent flow (MOCC flows share one
  // loaded model).
  std::shared_ptr<PreferenceActorCritic> model;
  if (scheme == "mocc") {
    model = PreferenceActorCritic::LoadFromFile(model_path, MoccConfig{});
    if (model == nullptr) {
      std::fprintf(stderr, "cannot load %s; train one with tools/mocc_train\n",
                   model_path.c_str());
      return 1;
    }
  }
  if (scheme != "mocc" && MakeBaselineCc(scheme) == nullptr) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }
  if (precision != Precision::kDouble && scheme != "mocc") {
    std::fprintf(stderr, "warning: --precision %s only affects --scheme mocc\n",
                 PrecisionName(precision));
  }
  if (guard && scheme != "mocc") {
    std::fprintf(stderr, "warning: --guard only affects --scheme mocc\n");
  }
  if (serving && scheme != "mocc") {
    std::fprintf(stderr, "warning: --serving only affects --scheme mocc\n");
    serving = false;
  }

  // All MOCC deployment knobs in one spec: the controller factory and the serving
  // service are built from the same description.
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(precision).WithGuard(guard).WithName("MOCC");

  // Fleet mode: shard isolated scenario instances across the pool and report
  // the epoch aggregate instead of one timeline.
  if (fleet) {
    if (scheme != "mocc") {
      std::fprintf(stderr, "--fleet requires --scheme mocc\n");
      return 2;
    }
    FleetSpec fleet_spec;
    fleet_spec.scenario = scenario_name.empty() ? "many-flow" : scenario_name;
    fleet_spec.num_shards = fleet_shards;
    fleet_spec.episodes_per_shard = fleet_episodes;
    fleet_spec.steps_per_episode = fleet_steps;
    fleet_spec.seed = seed;
    fleet_spec.policy = spec;
    fleet_spec.threads = fleet_threads;
    const FleetResult result = RunFleet(fleet_spec);
    if (!result.ok) {
      std::fprintf(stderr, "--fleet: %s\n", result.error.c_str());
      return 1;
    }
    std::printf("shard,seed,episodes,env_steps,agent_steps,mean_reward,mean_jain\n");
    for (const ShardResult& s : result.shards) {
      const double steps = static_cast<double>(std::max<int64_t>(1, s.agent_steps));
      std::printf("%d,%llu,%d,%lld,%lld,%.6f,%.4f\n", s.shard,
                  static_cast<unsigned long long>(s.seed), s.episodes,
                  static_cast<long long>(s.env_steps),
                  static_cast<long long>(s.agent_steps), s.reward_sum / steps,
                  s.jain_sum / static_cast<double>(std::max(1, s.episodes)));
    }
    std::fprintf(stderr,
                 "fleet %s: %d shards, %d episodes, %lld env steps, %lld agent "
                 "steps\n",
                 fleet_spec.scenario.c_str(), fleet_spec.num_shards, result.episodes,
                 static_cast<long long>(result.env_steps),
                 static_cast<long long>(result.agent_steps));
    std::fprintf(stderr,
                 "mean reward %.6f (O_thr %.4f O_lat %.4f O_loss %.4f), "
                 "throughput %.3f Mbps, rtt %.1f ms, loss %.4f, Jain %.4f\n",
                 result.mean_reward, result.mean_o_thr, result.mean_o_lat,
                 result.mean_o_loss, result.mean_throughput_bps / 1e6,
                 result.mean_avg_rtt_s * 1e3, result.mean_loss_rate,
                 result.mean_jain);
    std::fprintf(stderr, "checksum %016llx\n",
                 static_cast<unsigned long long>(result.checksum));
    return 0;
  }

  const int num_agents = scenario.has_value() ? scenario->num_agents : 1;

  // Per-agent objective assignment, in override order: --weights for everyone, then
  // the scenario's objective plan (fixed mixes cycled / per-episode sample), then an
  // explicit --objectives list. Only MOCC consumes weights; other schemes warn.
  std::vector<WeightVector> agent_weights(static_cast<size_t>(num_agents), weights);
  if (scenario.has_value() && scenario->HasObjectivePlan()) {
    const ObjectivePlan& plan = scenario->objectives;
    // The env's own episode-weight derivation, so the weights this report prints
    // are provably the weights the scenario trains with.
    agent_weights =
        plan.EpisodeWeights(num_agents, std::move(agent_weights), &rng);
    // An explicit --objectives overrides the WHOLE plan, scheduled switches
    // included — otherwise the plan would silently discard the user's requested
    // weights mid-run. The user's own --switch flags still apply.
    if (objective_list.empty()) {
      for (const PreferenceSwitch& sw : plan.switches) {
        switches.push_back({sw.time_s, sw.agent, sw.to});
      }
    }
  }
  if (!objective_list.empty()) {
    if (scenario.has_value() && scenario->HasObjectivePlan()) {
      std::fprintf(stderr,
                   "warning: --objectives overrides the scenario's objective plan\n");
    }
    for (int i = 0; i < num_agents; ++i) {
      agent_weights[static_cast<size_t>(i)] =
          objective_list[static_cast<size_t>(i) % objective_list.size()];
    }
  }
  if (scheme != "mocc" && (!objective_list.empty() || !switches.empty())) {
    std::fprintf(stderr,
                 "warning: --objectives/--switch only affect --scheme mocc\n");
    switches.clear();
  }
  std::stable_sort(switches.begin(), switches.end(),
                   [](const SwitchEvent& a, const SwitchEvent& b) {
                     return a.time_s < b.time_s;
                   });

  // The scenario's topology (dumbbell unless it names a parking lot or a
  // congested reverse path) built from the resolved link, with the same path
  // assignment MultiFlowCcEnv uses in training.
  const TopologySpec topology_spec =
      scenario.has_value() ? scenario->topology : TopologySpec{};
  NetworkTopology net_topology = BuildTopology(topology_spec, link);
  if (scenario.has_value() && !scenario->fault.empty()) {
    // The scenario's injected fault schedule on the bottleneck link, mirroring
    // MultiFlowCcEnv::Reset (with the phase drawn from the same rng position).
    FaultSpec fault = scenario->fault;
    if (fault.randomize_phase) {
      fault.phase_s = rng.Uniform(0.0, fault.MaxPeriodS());
    }
    net_topology.links[0].fault = fault;
  }
  if (scenario.has_value() && !scenario->wifi_jitter.empty()) {
    // Same idiom as the fault schedule: the jitter phase draw mirrors
    // MultiFlowCcEnv::Reset's rng position.
    WifiJitterSpec jitter = scenario->wifi_jitter;
    if (jitter.randomize_phase) {
      jitter.phase_s = rng.Uniform(0.0, jitter.MaxPeriodS());
    }
    net_topology.links[0].wifi_jitter = jitter;
  }
  if (scenario.has_value() && !scenario->aqm.empty()) {
    net_topology.links[0].aqm = scenario->aqm;
  }
  // Per-agent data/ACK paths and propagation RTTs, mirroring MultiFlowCcEnv:
  // heterogeneous topologies (N-leaf, per-link scales) give each agent its own
  // leaf pair and per-hop-summed RTT; homogeneous ones keep the historical
  // shared path and hops x base-RTT form (bit-identical).
  const bool heterogeneous_topology = topology_spec.Heterogeneous();
  std::vector<FlowPathSpec> agent_paths(static_cast<size_t>(num_agents));
  std::vector<double> agent_path_rtt_s(static_cast<size_t>(num_agents), 0.0);
  for (int i = 0; i < num_agents; ++i) {
    agent_paths[static_cast<size_t>(i)] = AgentPath(topology_spec, i);
    agent_path_rtt_s[static_cast<size_t>(i)] =
        heterogeneous_topology
            ? PathPropRttS(net_topology, agent_paths[static_cast<size_t>(i)].path)
            : static_cast<double>(agent_paths[static_cast<size_t>(i)].path.size()) *
                  link.BaseRttS();
  }
  PacketNetwork net(std::move(net_topology), seed);
  if (!mahimahi_path.empty()) {
    if (scenario.has_value() && scenario->trace_generator) {
      std::fprintf(stderr,
                   "warning: --mahimahi overrides the scenario's bandwidth schedule\n");
    }
    BandwidthTrace trace = BandwidthTrace::FromMahimahiFile(mahimahi_path);
    if (trace.empty()) {
      std::fprintf(stderr, "cannot read mahimahi trace %s\n", mahimahi_path.c_str());
      return 1;
    }
    net.SetBandwidthTrace(std::move(trace));
  } else if (scenario.has_value() && scenario->trace_generator) {
    net.SetBandwidthTrace(scenario->trace_generator(link, &rng));
  }

  std::vector<int> agent_flows;
  std::vector<int> competitor_flows;
  // MOCC controllers stay addressable for online preference switching (owned by net).
  std::vector<RlRateController*> agent_controllers;
  // --serving: the shared service and each agent flow's connection handle.
  std::unique_ptr<MoccServing> service;
  std::vector<ServingConnId> agent_conns;
  if (serving && scheme == "mocc") {
    service = CreateService(spec);
    if (service == nullptr) {
      return 1;
    }
  }
  std::vector<double> agent_extra_delay(static_cast<size_t>(num_agents), 0.0);
  // Initial rate, the Eq. (1) update's slow-start analogue: a quarter of the pipe for
  // a lone flow (the historical heuristic), but a conservative half of the per-flow
  // fair share under contention — N flows each starting at 0.25x of a slow training
  // link would bury a 3000-packet queue seconds deep before the first MI completes.
  const int scenario_flow_count =
      num_agents + static_cast<int>(
                       scenario.has_value() ? scenario->competitor_schemes.size() : 0);
  const double initial_rate_bps =
      scenario_flow_count > 1
          ? std::max(0.1e6, 0.5 * link.bandwidth_bps /
                                static_cast<double>(scenario_flow_count))
          : std::max(2e6, 0.25 * link.bandwidth_bps);
  for (int i = 0; i < num_agents; ++i) {
    FlowOptions options;
    options.start_time_s =
        scenario.has_value() ? static_cast<double>(i) * scenario->agent_stagger_s : 0.0;
    options.ecn_capable = scenario.has_value() && scenario->aqm.ecn;
    options.path = agent_paths[static_cast<size_t>(i)].path;
    options.ack_path = agent_paths[static_cast<size_t>(i)].ack_path;
    if (scenario.has_value() && !scenario->agent_extra_delay_s.empty()) {
      options.extra_one_way_delay_s =
          scenario->agent_extra_delay_s[static_cast<size_t>(i) %
                                        scenario->agent_extra_delay_s.size()];
      agent_extra_delay[static_cast<size_t>(i)] = options.extra_one_way_delay_s;
    }
    std::unique_ptr<CongestionControl> cc;
    if (scheme == "mocc" && serving) {
      MoccServing::ConnectionOptions copts;
      copts.initial_rate_bps = initial_rate_bps;
      const ServingConnId conn =
          service->AttachConnection(agent_weights[static_cast<size_t>(i)], copts);
      agent_conns.push_back(conn);
      cc = std::make_unique<ServingCc>(service.get(), conn, "MOCC");
    } else if (scheme == "mocc") {
      auto controller =
          spec.MakeController(agent_weights[static_cast<size_t>(i)], initial_rate_bps);
      agent_controllers.push_back(controller.get());
      cc = std::move(controller);
    } else {
      cc = MakeBaselineCc(scheme);
    }
    agent_flows.push_back(net.AddFlow(std::move(cc), options));
  }
  if (scenario.has_value()) {
    int competitor_index = 0;
    for (const std::string& competitor : scenario->competitor_schemes) {
      const FlowPathSpec paths = CompetitorPath(topology_spec, competitor_index++);
      FlowOptions options;
      options.start_time_s = scenario->competitor_start_s;
      options.stop_time_s = scenario->competitor_stop_s;
      options.path = paths.path;
      options.ack_path = paths.ack_path;
      competitor_flows.push_back(net.AddFlow(MakeBaselineCc(competitor), options));
    }
  }
  const int flow = agent_flows.front();

  // Segmented run: advance to each scheduled switch, apply the new preference to the
  // live controllers (SetObservationPrefix — the online adjustment, no restart),
  // then continue. Phase boundaries are kept for the phase report below.
  std::vector<double> phase_boundaries;
  for (const SwitchEvent& sw : switches) {
    if (sw.time_s <= 0.0 || sw.time_s >= duration) {
      std::fprintf(stderr,
                   "warning: switch @ %.1fs -> %s is outside (0, %.1fs) and will "
                   "not fire\n",
                   sw.time_s, sw.to.ToString().c_str(), duration);
      continue;
    }
    net.Run(sw.time_s);
    for (int i = 0; i < num_agents; ++i) {
      if (sw.flow >= 0 && sw.flow != i) {
        continue;
      }
      const WeightVector to = sw.to.Sanitized();
      if (serving) {
        service->SwitchObjective(agent_conns[static_cast<size_t>(i)], to);
      } else {
        agent_controllers[static_cast<size_t>(i)]->SetObservationPrefix(
            {to.thr, to.lat, to.loss});
      }
      agent_weights[static_cast<size_t>(i)] = to;
    }
    std::fprintf(stderr, "switch @ %.1fs: %s -> %s\n", sw.time_s,
                 sw.flow < 0 ? "all agent flows" : "agent flow",
                 sw.to.ToString().c_str());
    if (phase_boundaries.empty() || phase_boundaries.back() != sw.time_s) {
      phase_boundaries.push_back(sw.time_s);
    }
  }
  net.Run(duration);

  const FlowRecord& rec = net.record(flow);
  std::printf("time_s,throughput_mbps,avg_rtt_ms,loss_rate\n");
  const auto bins = rec.BinnedThroughputMbps(0.0, duration, 1.0);
  // Per-second RTT/loss from the monitor-interval samples.
  for (size_t s = 0; s < bins.size(); ++s) {
    double rtt_sum = 0.0;
    double loss_sum = 0.0;
    int count = 0;
    for (const auto& mi : rec.mi_samples()) {
      if (mi.time_s >= static_cast<double>(s) && mi.time_s < static_cast<double>(s + 1)) {
        rtt_sum += mi.avg_rtt_s;
        loss_sum += mi.loss_rate;
        ++count;
      }
    }
    std::printf("%zu,%.3f,%.2f,%.4f\n", s, bins[s],
                count > 0 ? rtt_sum / count * 1e3 : 0.0,
                count > 0 ? loss_sum / count : 0.0);
  }
  std::fprintf(stderr, "totals: sent=%lld acked=%lld lost=%lld avg_rtt=%.1fms\n",
               static_cast<long long>(rec.total_sent),
               static_cast<long long>(rec.total_acked),
               static_cast<long long>(rec.total_lost), rec.AvgRttS() * 1e3);

  // Guardrail report: per-flow circuit-breaker activity (only with --guard).
  if (guard && scheme == "mocc") {
    const size_t guarded_agents = serving ? agent_conns.size() : agent_controllers.size();
    for (size_t i = 0; i < guarded_agents; ++i) {
      const GuardedPolicy* g =
          serving ? service->Guard(agent_conns[i]) : agent_controllers[i]->guard();
      const char* state = g->state() == GuardedPolicy::State::kClosed ? "closed"
                          : g->state() == GuardedPolicy::State::kOpen ? "open"
                                                                      : "half-open";
      std::fprintf(stderr,
                   "guard flow %d: trips=%lld fallback_intervals=%lld "
                   "recoveries=%lld state=%s\n",
                   agent_flows[i], static_cast<long long>(g->trip_count()),
                   static_cast<long long>(g->fallback_interval_count()),
                   static_cast<long long>(g->recovery_count()), state);
    }
  }

  // Phase report (only when switches fired): per-flow throughput/RTT in each phase,
  // so a preference switch's rate/RTT movement is visible within one run.
  if (!phase_boundaries.empty()) {
    std::vector<double> edges = {0.0};
    edges.insert(edges.end(), phase_boundaries.begin(), phase_boundaries.end());
    edges.push_back(duration);
    for (size_t p = 0; p + 1 < edges.size(); ++p) {
      std::fprintf(stderr, "phase [%.1fs, %.1fs):\n", edges[p], edges[p + 1]);
      for (size_t i = 0; i < agent_flows.size(); ++i) {
        const WindowStats stats =
            MeasureWindow(net.record(agent_flows[i]), edges[p], edges[p + 1]);
        std::fprintf(stderr, "  agent flow %d: %.3f Mbps, avg_rtt=%.1fms\n",
                     agent_flows[i], stats.throughput_bps / 1e6,
                     stats.avg_rtt_s * 1e3);
      }
    }
  }

  // Steady-state per-flow report (second half of the run). MOCC agent flows get the
  // Eq. (2) decomposition under their own weight vector: the capacity reference is
  // the per-flow fair share of the configured bottleneck (bandwidth over all flows
  // added — the same simplification MultiFlowCcEnv trains against), the latency
  // reference each flow's own propagation RTT.
  const double steady_from = duration / 2;
  const int total_flows =
      static_cast<int>(agent_flows.size() + competitor_flows.size());
  const double fair_share_bps =
      link.bandwidth_bps / static_cast<double>(std::max(1, total_flows));
  if (total_flows > 1 || !agent_controllers.empty()) {
    std::vector<double> agent_throughputs;
    for (size_t i = 0; i < agent_flows.size(); ++i) {
      const int f = agent_flows[i];
      const WindowStats stats = MeasureWindow(net.record(f), steady_from, duration);
      agent_throughputs.push_back(stats.throughput_bps);
      if (scheme == "mocc") {
        MonitorReport report;
        report.throughput_bps = stats.throughput_bps;
        report.avg_rtt_s = stats.avg_rtt_s;
        report.loss_rate = stats.loss_rate;
        const double base_rtt_s = agent_path_rtt_s[i] + 2.0 * agent_extra_delay[i];
        const RewardComponents c =
            ComputeRewardComponents(report, fair_share_bps, base_rtt_s);
        const WeightVector& w = agent_weights[i];
        std::fprintf(stderr,
                     "agent flow %d w=%s: %.3f Mbps, avg_rtt=%.1fms, loss=%.4f | "
                     "O_thr=%.3f O_lat=%.3f O_loss=%.3f reward=%.3f\n",
                     f, w.ToString().c_str(), stats.throughput_bps / 1e6,
                     stats.avg_rtt_s * 1e3, stats.loss_rate, c.o_thr, c.o_lat,
                     c.o_loss, DynamicReward(w, c));
      } else {
        std::fprintf(stderr, "agent flow %d: %.3f Mbps (steady state), avg_rtt=%.1fms\n",
                     f, stats.throughput_bps / 1e6, stats.avg_rtt_s * 1e3);
      }
    }
    for (int f : competitor_flows) {
      std::fprintf(stderr, "competitor flow %d: %.3f Mbps (steady state)\n", f,
                   net.record(f).AvgThroughputBps(steady_from, duration) / 1e6);
    }
    if (agent_throughputs.size() > 1) {
      std::fprintf(stderr, "agent Jain fairness index (steady state): %.3f\n",
                   JainFairnessIndex(agent_throughputs));
      // Fairness within objective classes: flows registered for the same trade-off
      // should share fairly with each other even when the classes deliberately
      // diverge (throughput-seekers vs latency-seekers).
      if (scheme == "mocc") {
        std::map<std::string, std::vector<double>> classes;
        for (size_t i = 0; i < agent_flows.size(); ++i) {
          classes[agent_weights[i].ToString()].push_back(agent_throughputs[i]);
        }
        if (classes.size() > 1) {
          for (const auto& [key, throughputs] : classes) {
            if (throughputs.size() > 1) {
              std::fprintf(stderr,
                           "objective class %s: %zu flows, Jain=%.3f\n", key.c_str(),
                           throughputs.size(), JainFairnessIndex(throughputs));
            } else {
              std::fprintf(stderr, "objective class %s: 1 flow\n", key.c_str());
            }
          }
        }
      }
    }
  }
  return 0;
}
