// mocc_simulate — runs one congestion-control scheme on a configured bottleneck link in
// the packet-level simulator and prints a per-second CSV timeline (throughput, RTT,
// loss), suitable for plotting.
//
// Usage:
//   mocc_simulate --scheme NAME [--model PATH] [--weights T,L,S] [--bw MBPS] [--owd MS]
//                 [--queue PKTS] [--loss FRAC] [--duration S] [--seed N]
//                 [--mahimahi TRACE]
//
//   NAME in {mocc, cubic, newreno, vegas, bbr, copa, allegro, vivace}
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/baselines/allegro.h"
#include "src/baselines/bbr.h"
#include "src/baselines/copa.h"
#include "src/baselines/cubic.h"
#include "src/baselines/newreno.h"
#include "src/baselines/vegas.h"
#include "src/baselines/vivace.h"
#include "src/core/mocc_cc.h"
#include "src/core/preference_model.h"
#include "src/netsim/packet_network.h"

int main(int argc, char** argv) {
  using namespace mocc;
  std::string scheme = "mocc";
  std::string model_path = "mocc_model.bin";
  std::string mahimahi_path;
  WeightVector weights = ThroughputObjective();
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 700;
  double duration = 60.0;
  uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scheme") {
      scheme = next();
    } else if (arg == "--model") {
      model_path = next();
    } else if (arg == "--weights") {
      double t = 0.0;
      double l = 0.0;
      double s = 0.0;
      if (std::sscanf(next(), "%lf,%lf,%lf", &t, &l, &s) != 3) {
        std::fprintf(stderr, "--weights expects T,L,S\n");
        return 2;
      }
      weights = WeightVector(t, l, s);
    } else if (arg == "--bw") {
      link.bandwidth_bps = std::atof(next()) * 1e6;
    } else if (arg == "--owd") {
      link.one_way_delay_s = std::atof(next()) / 1e3;
    } else if (arg == "--queue") {
      link.queue_capacity_pkts = std::atoi(next());
    } else if (arg == "--loss") {
      link.random_loss_rate = std::atof(next());
    } else if (arg == "--duration") {
      duration = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--mahimahi") {
      mahimahi_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: mocc_simulate --scheme NAME [--model PATH] [--weights T,L,S]\n"
          "                     [--bw MBPS] [--owd MS] [--queue PKTS] [--loss FRAC]\n"
          "                     [--duration S] [--seed N] [--mahimahi TRACE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<CongestionControl> cc;
  if (scheme == "mocc") {
    auto model = PreferenceActorCritic::LoadFromFile(model_path, MoccConfig{});
    if (model == nullptr) {
      std::fprintf(stderr, "cannot load %s; train one with tools/mocc_train\n",
                   model_path.c_str());
      return 1;
    }
    cc = MakeMoccCc(model, weights, "MOCC", std::max(2e6, 0.25 * link.bandwidth_bps));
  } else if (scheme == "cubic") {
    cc = std::make_unique<CubicCc>();
  } else if (scheme == "newreno") {
    cc = std::make_unique<NewRenoCc>();
  } else if (scheme == "vegas") {
    cc = std::make_unique<VegasCc>();
  } else if (scheme == "bbr") {
    cc = std::make_unique<BbrCc>();
  } else if (scheme == "copa") {
    cc = std::make_unique<CopaCc>();
  } else if (scheme == "allegro") {
    cc = std::make_unique<AllegroCc>();
  } else if (scheme == "vivace") {
    cc = std::make_unique<VivaceCc>();
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }

  PacketNetwork net(link, seed);
  if (!mahimahi_path.empty()) {
    BandwidthTrace trace = BandwidthTrace::FromMahimahiFile(mahimahi_path);
    if (trace.empty()) {
      std::fprintf(stderr, "cannot read mahimahi trace %s\n", mahimahi_path.c_str());
      return 1;
    }
    net.SetBandwidthTrace(std::move(trace));
  }
  const int flow = net.AddFlow(std::move(cc));
  net.Run(duration);

  const FlowRecord& rec = net.record(flow);
  std::printf("time_s,throughput_mbps,avg_rtt_ms,loss_rate\n");
  const auto bins = rec.BinnedThroughputMbps(0.0, duration, 1.0);
  // Per-second RTT/loss from the monitor-interval samples.
  for (size_t s = 0; s < bins.size(); ++s) {
    double rtt_sum = 0.0;
    double loss_sum = 0.0;
    int count = 0;
    for (const auto& mi : rec.mi_samples()) {
      if (mi.time_s >= static_cast<double>(s) && mi.time_s < static_cast<double>(s + 1)) {
        rtt_sum += mi.avg_rtt_s;
        loss_sum += mi.loss_rate;
        ++count;
      }
    }
    std::printf("%zu,%.3f,%.2f,%.4f\n", s, bins[s],
                count > 0 ? rtt_sum / count * 1e3 : 0.0,
                count > 0 ? loss_sum / count : 0.0);
  }
  std::fprintf(stderr, "totals: sent=%lld acked=%lld lost=%lld avg_rtt=%.1fms\n",
               static_cast<long long>(rec.total_sent),
               static_cast<long long>(rec.total_acked),
               static_cast<long long>(rec.total_lost), rec.AvgRttS() * 1e3);
  return 0;
}
