// mocc_eval — evaluates a trained MOCC model across objectives and link conditions,
// printing the achieved operating points (the multi-objective tradeoff curve).
//
// Usage:
//   mocc_eval [--model PATH] [--bw MBPS] [--owd MS] [--queue PKTS] [--loss FRAC]
//             [--intervals N] [--precision double|float32|int8] [--guard]
//
//   All sweep points run as connections of ONE MoccServing instance (the
//   deployment surface from src/core/mocc_api.h), sharing the model and — with
//   --precision float32 — one inference replica. --guard arms each connection's
//   GuardedPolicy circuit breaker (warm-standby CUBIC fallback, the same wrapper
//   --guard enables in mocc_simulate) and adds a guard_trips column.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/core/mocc_api.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/netsim/fluid_link.h"

int main(int argc, char** argv) {
  using namespace mocc;
  std::string model_path = "mocc_model.bin";
  LinkParams link;
  link.bandwidth_bps = 20e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 700;
  link.random_loss_rate = 0.0;
  int intervals = 600;
  Precision precision = Precision::kDouble;
  bool guard = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      model_path = next();
    } else if (arg == "--bw") {
      link.bandwidth_bps = std::atof(next()) * 1e6;
    } else if (arg == "--owd") {
      link.one_way_delay_s = std::atof(next()) / 1e3;
    } else if (arg == "--queue") {
      link.queue_capacity_pkts = std::atoi(next());
    } else if (arg == "--loss") {
      link.random_loss_rate = std::atof(next());
    } else if (arg == "--intervals") {
      intervals = std::atoi(next());
    } else if (arg == "--precision") {
      const char* value = next();
      if (!ParsePrecision(value, &precision)) {
        std::fprintf(stderr, "bad --precision %s (double|float32|int8)\n", value);
        return 2;
      }
    } else if (arg == "--guard") {
      guard = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mocc_eval [--model PATH] [--bw MBPS] [--owd MS] [--queue PKTS]\n"
                  "                 [--loss FRAC] [--intervals N]\n"
                  "                 [--precision double|float32|int8] [--guard]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  auto model = PreferenceActorCritic::LoadFromFile(model_path, MoccConfig{});
  if (model == nullptr) {
    std::fprintf(stderr,
                 "cannot load %s (missing or architecture mismatch); train one with "
                 "tools/mocc_train\n",
                 model_path.c_str());
    return 1;
  }

  const double initial_rate_bps = std::max(2e6, 0.25 * link.bandwidth_bps);
  PolicySpec spec;
  spec.WithModel(model).WithPrecision(precision).WithGuard(guard).WithInitialRate(
      initial_rate_bps);
  std::unique_ptr<MoccServing> service = CreateService(spec);
  if (service == nullptr) {
    return 1;
  }

  std::printf("model: %s (%s) | link: %.0f Mbps, %.0f ms base RTT, %d pkt queue, %.2f%% loss\n",
              model_path.c_str(), PrecisionName(precision), link.bandwidth_bps / 1e6,
              link.BaseRttS() * 1e3, link.queue_capacity_pkts, link.random_loss_rate * 100);
  std::vector<std::string> headers = {"weight <thr,lat,loss>", "util", "avg_rtt_ms",
                                      "loss_%", "reward"};
  if (guard) {
    headers.push_back("guard_trips");
  }
  TablePrinter t(std::move(headers));
  const WeightVector sweep[] = {{0.8, 0.1, 0.1}, {0.6, 0.3, 0.1}, {1.0 / 3, 1.0 / 3, 1.0 / 3},
                                {0.4, 0.5, 0.1}, {0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}};
  int64_t total_trips = 0;
  for (const WeightVector& w : sweep) {
    MoccServing::ConnectionOptions copts;
    copts.initial_rate_bps = initial_rate_bps;
    const ServingConnId conn = service->AttachConnection(w, copts);
    FluidLink sim(link, 42);
    double thr = 0.0;
    double rtt = 0.0;
    double loss = 0.0;
    double reward = 0.0;
    int measured = 0;
    for (int i = 0; i < intervals; ++i) {
      const double rate_bps = service->RateBps(conn);
      const MonitorReport report = sim.Step(rate_bps, link.BaseRttS());
      service->SubmitReport(conn, report);
      service->RatePoll();
      if (i >= intervals / 2) {
        thr += report.throughput_bps;
        rtt += report.avg_rtt_s;
        loss += report.loss_rate;
        reward += DynamicReward(w, report, link.bandwidth_bps, link.BaseRttS());
        ++measured;
      }
    }
    std::vector<std::string> row = {
        w.ToString(), TablePrinter::Num(thr / measured / link.bandwidth_bps, 2),
        TablePrinter::Num(rtt / measured * 1e3, 1),
        TablePrinter::Num(loss / measured * 100, 2),
        TablePrinter::Num(reward / measured, 3)};
    if (guard) {
      const GuardedPolicy* g = service->Guard(conn);
      const int64_t trips = g != nullptr ? g->trip_count() : 0;
      row.push_back(std::to_string(trips));
      total_trips += trips;
    }
    t.AddRow(std::move(row));
    service->DetachConnection(conn);
  }
  t.Print(std::cout);
  if (guard) {
    std::fprintf(stderr, "guard: %lld breaker trips across the sweep\n",
                 static_cast<long long>(total_trips));
  }
  return 0;
}
