#!/usr/bin/env python3
"""Checks that the README scenario-catalog table and the built binary agree.

The README documents the scenario catalog as a markdown table and the binary
prints it via `mocc_simulate --list-scenarios`; both are edited by hand in
different PR hunks, so they drift unless a machine compares them. This script
extracts the scenario names from each side and fails (exit 1) listing any
name present in only one of them.

Usage:
  tools/check_catalog_sync.py --binary build/mocc_simulate [--readme README.md]

No dependencies beyond the standard library; wired into the CI build-test job.
"""
import argparse
import re
import subprocess
import sys


def readme_scenario_names(readme_path):
    """Scenario names from the catalog table: rows whose first cell is `name`."""
    names = set()
    in_catalog = False
    with open(readme_path, encoding="utf-8") as readme:
        for line in readme:
            if line.startswith("## "):
                in_catalog = line.strip() == "## Scenario catalog"
                continue
            if not in_catalog:
                continue
            match = re.match(r"\|\s*`([^`]+)`\s*\|", line)
            if match:
                names.add(match.group(1))
    return names


def catalog_scenario_names(binary_path):
    """Scenario names from `--list-scenarios`: first token of every line."""
    result = subprocess.run(
        [binary_path, "--list-scenarios"],
        check=True,
        capture_output=True,
        text=True,
    )
    names = set()
    for line in result.stdout.splitlines():
        fields = line.split()
        if fields:
            names.add(fields[0])
    return names


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the built mocc_simulate")
    parser.add_argument("--readme", default="README.md",
                        help="path to the README with the catalog table")
    args = parser.parse_args()

    documented = readme_scenario_names(args.readme)
    built = catalog_scenario_names(args.binary)
    if not documented:
        print(f"error: no catalog table rows found in {args.readme} "
              "(is the '## Scenario catalog' section intact?)", file=sys.stderr)
        return 1
    if not built:
        print("error: --list-scenarios printed no scenarios", file=sys.stderr)
        return 1

    missing_from_readme = sorted(built - documented)
    missing_from_binary = sorted(documented - built)
    if missing_from_readme:
        print("scenarios in --list-scenarios but missing from the README "
              f"catalog table: {', '.join(missing_from_readme)}", file=sys.stderr)
    if missing_from_binary:
        print("scenarios documented in the README catalog table but unknown to "
              f"--list-scenarios: {', '.join(missing_from_binary)}", file=sys.stderr)
    if missing_from_readme or missing_from_binary:
        print("fix: update the '## Scenario catalog' table in README.md and/or "
              "the catalog in src/envs/scenario.cc", file=sys.stderr)
        return 1
    print(f"catalog in sync: {len(built)} scenarios documented and built")
    return 0


if __name__ == "__main__":
    sys.exit(main())
