// mocc_train — offline-trains a MOCC model (two-phase, §4.2) and saves it to a file.
//
// Usage:
//   mocc_train [--out PATH] [--bootstrap N] [--rounds N] [--divisor D] [--seed S]
//              [--parallel-envs K] [--scenario LIST] [--list-scenarios] [--individual]
//              [--checkpoint PATH] [--checkpoint-interval N] [--resume]
//              [--stop-after N]
//
//   --out PATH         output model file (default mocc_model.bin)
//   --bootstrap N      bootstrap-phase iterations (default 100)
//   --rounds N         fast-traversing passes over the landmark grid (default 3)
//   --divisor D        simplex step divisor; omega = (D-1)(D-2)/2 (default 10 -> 36)
//   --seed S           RNG seed (default 7)
//   --parallel-envs K  parallel rollout environments (default 1)
//   --scenario LIST    comma-separated scenario names (see --list-scenarios); env
//                      slot i trains on LIST[i % |LIST|]. Multi-flow scenarios train
//                      the shared policy on a shared-bottleneck PacketNetwork.
//                      Heterogeneous-objective scenarios (mixed-objective,
//                      sampled-objective, preference-switch, ...) assign per-agent
//                      weights themselves — the trainer leaves their objectives
//                      alone and their trajectories join the same joint update.
//   --list-scenarios   print the scenario catalog and exit
//   --ecn              train with the ECN observation channel: history entries
//                      widen to <l, p, q, ecn> and the saved model's obs_dim
//                      changes accordingly (pair with an ECN-marking scenario,
//                      e.g. red-ecn, for the channel to carry signal)
//   --individual       train each landmark independently instead (Fig 19 baseline)
//
// Crash safety (two-phase training only):
//   --checkpoint PATH          write a training checkpoint (model + optimizer +
//                              RNG streams + counters + env state) to PATH every
//                              --checkpoint-interval iterations and on SIGINT/
//                              SIGTERM, via atomic rename
//   --checkpoint-interval N    iterations between checkpoints (default 20)
//   --resume                   resume from --checkpoint PATH; the continued run is
//                              bit-identical with an uninterrupted one. A missing
//                              checkpoint starts fresh; a corrupt or mismatched
//                              one fails with exit code 1
//   --stop-after N             stop cleanly (with a final checkpoint) after N
//                              global iterations — crash-drill / test hook
//
// Exit codes: 0 success, 1 I/O or resume failure, 2 bad usage, 3 interrupted by
// signal (final checkpoint written), 4 training watchdog exhausted its retries.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/offline_trainer.h"
#include "src/core/presets.h"
#include "src/envs/scenario.h"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void HandleSignal(int /*signum*/) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace mocc;
  std::string out_path = "mocc_model.bin";
  OfflineTrainConfig config = StandardOfflinePreset();
  bool individual = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--bootstrap") {
      config.bootstrap_iterations = std::atoi(next());
    } else if (arg == "--rounds") {
      config.traversal_rounds = std::atoi(next());
    } else if (arg == "--divisor") {
      config.mocc.landmark_step_divisor = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--parallel-envs") {
      config.parallel_envs = std::atoi(next());
    } else if (arg == "--scenario") {
      std::string error;
      auto scenarios = ScenarioRegistry::Global().ResolveList(next(), &error);
      if (!scenarios.has_value()) {
        std::fprintf(stderr, "--scenario: %s (try --list-scenarios)\n", error.c_str());
        return 2;
      }
      config.scenarios = std::move(*scenarios);
    } else if (arg == "--list-scenarios") {
      PrintScenarioCatalog(stdout);
      return 0;
    } else if (arg == "--ecn") {
      config.mocc.ecn_signal = true;
    } else if (arg == "--individual") {
      individual = true;
    } else if (arg == "--checkpoint") {
      config.checkpoint_path = next();
    } else if (arg == "--checkpoint-interval") {
      config.checkpoint_interval = std::atoi(next());
    } else if (arg == "--resume") {
      config.resume = true;
    } else if (arg == "--stop-after") {
      config.stop_after_iterations = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mocc_train [--out PATH] [--bootstrap N] [--rounds N]\n"
                  "                  [--divisor D] [--seed S] [--parallel-envs K]\n"
                  "                  [--scenario LIST] [--list-scenarios] [--ecn]\n"
                  "                  [--individual] [--checkpoint PATH]\n"
                  "                  [--checkpoint-interval N] [--resume]\n"
                  "                  [--stop-after N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (individual && (config.resume || !config.checkpoint_path.empty())) {
    std::fprintf(stderr, "--checkpoint/--resume only apply to two-phase training\n");
    return 2;
  }

  // SIGINT/SIGTERM stop training at the next iteration boundary; the trainer
  // writes a final checkpoint (when --checkpoint is set) before returning.
  config.interrupt_flag = &g_interrupted;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const int omega = ObjectiveGridSize(config.mocc.landmark_step_divisor);
  std::printf("training MOCC: omega=%d landmarks, %d bootstrap iters, %d rounds, %s\n",
              omega, config.bootstrap_iterations, config.traversal_rounds,
              individual ? "INDIVIDUAL (no transfer)" : "two-phase");
  Rng rng(config.seed);
  PreferenceActorCritic model(config.mocc, &rng);
  OfflineTrainer trainer(&model, config);
  if (!config.scenarios.empty()) {
    std::printf("scenarios (%d env slots):", trainer.slot_count());
    for (const Scenario& s : config.scenarios) {
      std::printf(" %s", s.name.c_str());
    }
    std::printf("\n");
  }
  const OfflineTrainResult result =
      individual ? trainer.TrainIndividually() : trainer.TrainTwoPhase();
  if (result.resume_failed) {
    std::fprintf(stderr, "--resume: %s is corrupt or from a different config\n",
                 config.checkpoint_path.c_str());
    return 1;
  }
  if (result.start_iteration > 0) {
    std::printf("resumed from iteration %d\n", result.start_iteration);
  }
  if (result.watchdog_rollbacks > 0) {
    std::printf("watchdog rollbacks: %d\n", result.watchdog_rollbacks);
  }
  if (!result.reward_curve.empty()) {
    std::printf("%s: %d iterations in %.1f s; training reward %.3f -> %.3f\n",
                result.interrupted ? "interrupted" : "done", result.total_iterations,
                result.wall_seconds, result.reward_curve.front(),
                result.reward_curve.back());
  }
  if (!model.SaveToFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("model saved to %s (%zu parameters)\n", out_path.c_str(),
              model.ParameterCount());
  if (result.watchdog_failed) {
    std::fprintf(stderr,
                 "training watchdog exhausted its retries; model saved at the last "
                 "healthy state\n");
    return 4;
  }
  if (result.interrupted) {
    return 3;
  }
  return 0;
}
