// Quick machine-readable performance report for the two hot loops behind the
// paper's Figure 17 (per-MI policy-inference overhead) and Figure 19 (rollout
// collection throughput for offline training). Runs in seconds — no model zoo,
// no long training — and writes BENCH_report.json so the perf trajectory is
// tracked across PRs. Human-readable numbers go to stdout.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_support.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/mocc_config.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/envs/cc_env.h"
#include "src/nn/mlp.h"
#include "src/nn/simd/dispatch.h"
#include "src/rl/actor_critic.h"
#include "src/rl/ppo.h"

// ASan detection across compilers: gcc defines __SANITIZE_ADDRESS__, clang
// reports it through __has_feature.
#if defined(__has_feature)
#define MOCC_ASAN_FEATURE __has_feature(address_sanitizer)
#else
#define MOCC_ASAN_FEATURE 0
#endif

using namespace mocc;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wall seconds to collect `total_steps` transitions split across `n_envs`
// environments (the offline trainer's per-iteration collection pattern).
double TimeRolloutCollection(int n_envs, int total_steps, bool parallel) {
  MoccConfig config;
  Rng rng(17);
  PreferenceActorCritic model(config, &rng);
  PpoConfig ppo_config = config.MakePpoConfig(/*seed=*/5);
  PpoTrainer trainer(&model, ppo_config);
  trainer.set_parallel_collection(parallel);
  std::vector<std::unique_ptr<CcEnv>> envs;
  std::vector<Env*> raw;
  for (int i = 0; i < n_envs; ++i) {
    envs.push_back(std::make_unique<CcEnv>(config.MakeEnvConfig(), 1000 + 13 * i));
    raw.push_back(envs.back().get());
  }
  const int steps_each = total_steps / n_envs;
  const double t0 = NowSeconds();
  trainer.CollectRolloutsParallel(raw, steps_each);
  return NowSeconds() - t0;
}

}  // namespace

int main() {
  MoccConfig config;

  BenchJson json("report");
  json.Add("hardware_concurrency",
           static_cast<double>(ThreadPool::Shared().size()));

  // Which kernel tier CPUID picked for this run — the denominator/numerator
  // rates below are only comparable across hosts with the tier attached.
  json.AddString("simd_tier", simd::TierName(simd::ActiveTier()));
  std::printf("simd tier: %s%s\n", simd::TierName(simd::ActiveTier()),
              simd::ForcedScalar() ? " (forced)" : "");

  // --- Single-observation inference throughput (Figure 17's budget). ---
  // The two explicit-SIMD speedup gates ride on ratios of adjacent
  // measurements, so a frequency shift on a shared vCPU can sink them
  // spuriously; per the repo-wide remeasure rule a failing verdict gets
  // remeasured (whole path set, per-field max) before it counts.
  InferencePathRates rates = MeasureInferencePaths(config);
  constexpr double kF32VsAutovecGate = 1.3;   // explicit AVX2 vs -march=native autovec
  constexpr double kInt8VsF32Gate = 1.5;      // quantized row vs f32 row
  const bool scalar_tier = simd::ActiveTier() == simd::Tier::kScalar;
  for (int retry = 0; retry < 2 && !scalar_tier; ++retry) {
    const bool f32_ok = rates.fast_row_f32_ops_per_sec >=
                        kF32VsAutovecGate * rates.autovec_row_f32_ops_per_sec;
    const bool int8_ok = rates.int8_row_ops_per_sec >=
                         kInt8VsF32Gate * rates.fast_row_f32_ops_per_sec;
    if (f32_ok && int8_ok) {
      break;
    }
    std::fprintf(stderr, "[bench] simd speedup gate remeasuring (attempt %d)\n",
                 retry + 1);
    const InferencePathRates again = MeasureInferencePaths(config);
    rates.seed_batched_ops_per_sec =
        std::max(rates.seed_batched_ops_per_sec, again.seed_batched_ops_per_sec);
    rates.batched_ops_per_sec = std::max(rates.batched_ops_per_sec, again.batched_ops_per_sec);
    rates.fast_row_ops_per_sec = std::max(rates.fast_row_ops_per_sec, again.fast_row_ops_per_sec);
    rates.fast_row_f32_ops_per_sec =
        std::max(rates.fast_row_f32_ops_per_sec, again.fast_row_f32_ops_per_sec);
    rates.autovec_row_f32_ops_per_sec =
        std::max(rates.autovec_row_f32_ops_per_sec, again.autovec_row_f32_ops_per_sec);
    rates.int8_row_ops_per_sec = std::max(rates.int8_row_ops_per_sec, again.int8_row_ops_per_sec);
  }
  const double seed_ops = rates.seed_batched_ops_per_sec;
  const double batched_ops = rates.batched_ops_per_sec;
  const double row_ops = rates.fast_row_ops_per_sec;
  const double f32_ops = rates.fast_row_f32_ops_per_sec;
  const double autovec_ops = rates.autovec_row_f32_ops_per_sec;
  const double int8_ops = rates.int8_row_ops_per_sec;

  json.Add("inference_seed_batched_ops_per_sec", seed_ops);
  json.Add("inference_batched_ops_per_sec", batched_ops);
  json.Add("inference_fast_row_ops_per_sec", row_ops);
  json.Add("inference_fast_row_f32_ops_per_sec", f32_ops);
  json.Add("inference_autovec_row_f32_ops_per_sec", autovec_ops);
  json.Add("inference_int8_row_ops_per_sec", int8_ops);
  json.Add("fast_row_speedup_vs_seed_batched", seed_ops > 0.0 ? row_ops / seed_ops : 0.0);
  json.Add("fast_row_speedup_vs_batched", batched_ops > 0.0 ? row_ops / batched_ops : 0.0);
  json.Add("f32_row_speedup_vs_double_row", row_ops > 0.0 ? f32_ops / row_ops : 0.0);
  json.Add("f32_row_speedup_vs_autovec", autovec_ops > 0.0 ? f32_ops / autovec_ops : 0.0);
  json.Add("int8_row_speedup_vs_f32", f32_ops > 0.0 ? int8_ops / f32_ops : 0.0);
  std::printf("single-obs inference ops/sec:\n");
  std::printf("  seed batched path      %12.0f\n", seed_ops);
  std::printf("  batched (alloc-free)   %12.0f\n", batched_ops);
  std::printf("  fused single-row       %12.0f  (%.1fx vs seed batched)\n", row_ops,
              seed_ops > 0.0 ? row_ops / seed_ops : 0.0);
  std::printf("  autovec f32 row (ref)  %12.0f\n", autovec_ops);
  std::printf("  fused single-row f32   %12.0f  (%.2fx vs double row, %.2fx vs autovec)\n",
              f32_ops, row_ops > 0.0 ? f32_ops / row_ops : 0.0,
              autovec_ops > 0.0 ? f32_ops / autovec_ops : 0.0);
  std::printf("  int8 single-row        %12.0f  (%.2fx vs f32 row)\n", int8_ops,
              f32_ops > 0.0 ? int8_ops / f32_ops : 0.0);
  if (!scalar_tier) {
    if (f32_ops < kF32VsAutovecGate * autovec_ops) {
      std::fprintf(stderr,
                   "WARN: explicit-SIMD f32 row is only %.2fx the autovec "
                   "reference (gate %.1fx)\n",
                   autovec_ops > 0.0 ? f32_ops / autovec_ops : 0.0, kF32VsAutovecGate);
    }
    if (int8_ops < kInt8VsF32Gate * f32_ops) {
      std::fprintf(stderr,
                   "WARN: int8 row is only %.2fx the f32 row (gate %.1fx)\n",
                   f32_ops > 0.0 ? int8_ops / f32_ops : 0.0, kInt8VsF32Gate);
    }
  }

  // --- Rollout collection scaling (Figure 19's mechanism). ---
  const int total_steps = 4096;
  const double serial_1env_s = TimeRolloutCollection(1, total_steps, /*parallel=*/false);
  const double serial_4env_s = TimeRolloutCollection(4, total_steps, /*parallel=*/false);
  const double pool_4env_s = TimeRolloutCollection(4, total_steps, /*parallel=*/true);
  json.Add("rollout_steps_total", total_steps);
  json.Add("rollout_1env_serial_wall_s", serial_1env_s);
  json.Add("rollout_4env_serial_wall_s", serial_4env_s);
  json.Add("rollout_4env_pool_wall_s", pool_4env_s);
  json.Add("rollout_4env_pool_speedup_vs_serial",
           pool_4env_s > 0.0 ? serial_4env_s / pool_4env_s : 0.0);
  std::printf("rollout collection, %d total steps:\n", total_steps);
  std::printf("  1 env, serial          %8.3f s\n", serial_1env_s);
  std::printf("  4 envs, serial         %8.3f s\n", serial_4env_s);
  std::printf("  4 envs, thread pool    %8.3f s  (%.2fx vs 4-env serial; %d-wide pool)\n",
              pool_4env_s, pool_4env_s > 0.0 ? serial_4env_s / pool_4env_s : 0.0,
              ThreadPool::Shared().size());

  // --- Deployment guardrail overhead. ---
  // Per-MI decision throughput of the deployment controller (float32 replica
  // inference, the fast path), with and without the GuardedPolicy circuit
  // breaker wrapped around every decision. The guard adds a handful of finite/
  // bounds comparisons plus the warm-standby CUBIC's (per-MI no-op) forwarding,
  // so the overhead must stay a rounding error next to the NN forward.
  //
  // Measurement: interleaved PAIRED windows (unguarded then guarded,
  // back-to-back), gated on the minimum paired overhead. Measuring all
  // unguarded windows first and all guarded windows after lets a CPU-frequency
  // shift between the two blocks masquerade as >20% guard overhead on a shared
  // vCPU; adjacent windows see the same frequency regime, and the cleanest of
  // three pairs bounds the true cost from above. A failing first verdict is
  // remeasured once with doubled windows (repo-wide remeasure rule).
  //
  // The reported overhead is SIGNED: a guarded window that measures faster
  // than its unguarded partner (pure scheduling noise) yields a negative
  // value. The old clamp-to-0 silently converted that noise into a perfect
  // "0.00% overhead" report, which made the metric look stable across PRs
  // while actually discarding the information that the measurement was at the
  // noise floor. A small negative number is the honest reading.
  Rng guard_rng(23);
  auto guard_model = std::make_shared<PreferenceActorCritic>(config, &guard_rng);
  MonitorReport guard_report;
  guard_report.duration_s = 0.05;
  guard_report.packets_sent = 100;
  guard_report.packets_acked = 99;
  guard_report.packets_lost = 1;
  guard_report.send_rate_bps = 2e6;
  guard_report.throughput_bps = 1.9e6;
  guard_report.avg_rtt_s = 0.05;
  guard_report.min_rtt_s = 0.04;
  guard_report.loss_rate = 0.01;
  PolicySpec guard_spec;
  guard_spec.WithModel(guard_model).WithPrecision(Precision::kFloat32).WithName("MOCC");
  auto cc_plain =
      guard_spec.WithGuard(false).MakeController(BalancedObjective(), /*initial_rate_bps=*/2e6);
  auto cc_guarded =
      guard_spec.WithGuard(true).MakeController(BalancedObjective(), /*initial_rate_bps=*/2e6);
  double ungated_ops = 0.0;
  double guarded_ops = 0.0;
  double guarded_policy_overhead = 1.0;
  auto run_guard_pairs = [&](int pairs, double window_s) {
    for (int trial = 0; trial < pairs; ++trial) {
      const double u = MeasureOpsPerSec(
          [&] { cc_plain->OnMonitorInterval(guard_report); }, window_s);
      const double g = MeasureOpsPerSec(
          [&] { cc_guarded->OnMonitorInterval(guard_report); }, window_s);
      ungated_ops = std::max(ungated_ops, u);
      guarded_ops = std::max(guarded_ops, g);
      if (u > 0.0) {
        guarded_policy_overhead = std::min(guarded_policy_overhead, 1.0 - g / u);
      }
    }
  };
  run_guard_pairs(/*pairs=*/3, /*window_s=*/0.3);
  // Gate: the guardrail must cost < 2% of ungated decision throughput.
  constexpr double kGuardOverheadLimit = 0.02;
  if (guarded_policy_overhead >= kGuardOverheadLimit) {
    run_guard_pairs(/*pairs=*/2, /*window_s=*/0.6);
    std::fprintf(stderr, "[bench] guard gate remeasured: overhead %.2f%%\n",
                 guarded_policy_overhead * 100.0);
  }
  json.Add("controller_mi_f32_ops_per_sec", ungated_ops);
  json.Add("controller_mi_f32_guarded_ops_per_sec", guarded_ops);
  json.Add("guarded_policy_overhead", guarded_policy_overhead);
  std::printf("deployment controller per-MI decisions/sec (f32):\n");
  std::printf("  unguarded              %12.0f\n", ungated_ops);
  std::printf("  guarded                %12.0f  (overhead %.2f%%)\n", guarded_ops,
              guarded_policy_overhead * 100.0);

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write %s\n", json.path().c_str());
    return 1;
  }
  if (guarded_policy_overhead >= kGuardOverheadLimit) {
#if defined(__SANITIZE_ADDRESS__) || MOCC_ASAN_FEATURE
    std::fprintf(stderr,
                 "WARN: guarded-policy overhead %.2f%% exceeds the %.0f%% limit; "
                 "sanitizer build, gate not enforced\n",
                 guarded_policy_overhead * 100.0, kGuardOverheadLimit * 100.0);
#else
    std::fprintf(stderr,
                 "FAIL: guarded-policy overhead %.2f%% exceeds the %.0f%% limit — "
                 "did per-decision validation grow beyond simple bounds checks?\n",
                 guarded_policy_overhead * 100.0, kGuardOverheadLimit * 100.0);
    return 1;
#endif
  }
  return 0;
}
