#include "src/netsim/flow_record.h"

#include <algorithm>
#include <cmath>

namespace mocc {

void FlowRecord::RecordMi(const MonitorReport& report) {
  MiSample s;
  s.time_s = report.start_time_s;
  s.duration_s = report.duration_s;
  s.send_rate_bps = report.send_rate_bps;
  s.throughput_bps = report.throughput_bps;
  s.avg_rtt_s = report.avg_rtt_s;
  s.loss_rate = report.loss_rate;
  s.ecn_rate = report.ecn_rate;
  mi_samples_.push_back(s);
}

void FlowRecord::RecordAck(double time_s, int64_t bits) {
  ack_times_.push_back(time_s);
  ack_bits_.push_back(bits);
  bits_acked += bits;
  last_ack_time_s = time_s;
}

void FlowRecord::RecordDelivery(double time_s) {
  if (keep_delivery_times) {
    delivery_times_.push_back(time_s);
  }
}

double FlowRecord::AvgThroughputBps(double t0_s, double t1_s) const {
  if (t1_s <= t0_s) {
    return 0.0;
  }
  int64_t bits = 0;
  for (size_t i = 0; i < ack_times_.size(); ++i) {
    if (ack_times_[i] >= t0_s && ack_times_[i] < t1_s) {
      bits += ack_bits_[i];
    }
  }
  return static_cast<double>(bits) / (t1_s - t0_s);
}

std::vector<double> FlowRecord::BinnedThroughputMbps(double t0_s, double t1_s,
                                                     double bin_s) const {
  const size_t bins = t1_s > t0_s ? static_cast<size_t>(std::ceil((t1_s - t0_s) / bin_s)) : 0;
  std::vector<double> out(bins, 0.0);
  for (size_t i = 0; i < ack_times_.size(); ++i) {
    if (ack_times_[i] < t0_s || ack_times_[i] >= t1_s) {
      continue;
    }
    const size_t b = static_cast<size_t>((ack_times_[i] - t0_s) / bin_s);
    if (b < bins) {
      out[b] += static_cast<double>(ack_bits_[i]);
    }
  }
  for (auto& v : out) {
    v = v / bin_s / 1e6;
  }
  return out;
}

double FlowRecord::AvgRttS() const {
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& s : mi_samples_) {
    if (s.avg_rtt_s <= 0.0) {
      continue;
    }
    const double w = std::max(1.0, s.throughput_bps * s.duration_s);
    weighted += s.avg_rtt_s * w;
    weight += w;
  }
  return weight > 0.0 ? weighted / weight : 0.0;
}

double FlowRecord::LossRate() const {
  const int64_t denom = total_acked + total_lost;
  return denom > 0 ? static_cast<double>(total_lost) / static_cast<double>(denom) : 0.0;
}

std::vector<double> FlowRecord::InterDeliveryGapsS() const {
  std::vector<double> gaps;
  if (delivery_times_.size() < 2) {
    return gaps;
  }
  gaps.reserve(delivery_times_.size() - 1);
  for (size_t i = 1; i < delivery_times_.size(); ++i) {
    gaps.push_back(delivery_times_[i] - delivery_times_[i - 1]);
  }
  return gaps;
}

}  // namespace mocc
