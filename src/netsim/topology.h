// Topology descriptions for the packet-level simulator. A NetworkTopology is a
// set of unidirectional droptail links; each flow follows a path of one or more
// of them (its data direction) and optionally a reverse path its ACKs must queue
// through. The classic single-bottleneck dumbbell is the trivial one-link
// instance; the builders below add the two canonical multi-link evaluation
// shapes plus the spec type the scenario catalog uses to name them:
//
//   dumbbell      S ──▶[ L0 ]──▶ R        (ACKs return on an uncongested path)
//
//   parking-lot   S ──▶[ L0 ]──▶[ L1 ]──▶[ L2 ]──▶ R
//                 (agents traverse every hop; cross-traffic flow i loads hop i,
//                  so end-to-end flows compete at several bottlenecks at once)
//
//   reverse-path  S ──▶[ L0 ]──▶ R       data direction
//                 S ◀──[ L1 ]◀── R       agents' ACKs share L1 with competitor
//                                        data flowing R→S, so ACKs queue behind
//                                        reverse-direction congestion
//
// TopologySpec is the catalog-facing description: enough to rebuild the episode
// topology from a sampled LinkParams, and to assign each agent/competitor flow
// its data and ACK paths consistently across MultiFlowCcEnv and mocc_simulate.
#ifndef MOCC_SRC_NETSIM_TOPOLOGY_H_
#define MOCC_SRC_NETSIM_TOPOLOGY_H_

#include <vector>

#include "src/netsim/fault_spec.h"
#include "src/netsim/link_params.h"

namespace mocc {

// ACK packets on a congested reverse path serialize at this size (a 40-byte
// TCP ACK), so a loaded reverse link delays ACKs mostly by queueing, not by
// serialization of the ACKs themselves.
inline constexpr int64_t kAckPacketSizeBits = 40 * 8;

// Longest supported link path per direction (the simulator compiles paths into
// fixed per-flow arrays of this size; builders clamp to it).
inline constexpr int kMaxPathHops = 8;

// One unidirectional droptail link.
struct LinkSpec {
  double bandwidth_bps = 12e6;
  double prop_delay_s = 0.020;
  int queue_capacity_pkts = 1000;
  double random_loss_rate = 0.0;  // iid per-packet wire loss at this link
  BandwidthTrace trace;           // empty = constant at bandwidth_bps
  FaultSpec fault;                // empty = no injected faults

  // Effective bandwidth at time t, honouring the trace.
  double BandwidthAt(double t) const { return trace.BandwidthAt(t, bandwidth_bps); }
};

struct NetworkTopology {
  std::vector<LinkSpec> links;

  // The dumbbell: one droptail bottleneck carrying every flow's data direction.
  static NetworkTopology SingleBottleneck(const LinkParams& params);

  // `hops` equal links in series (all inherit the base link's parameters), for
  // end-to-end flows crossing several potential bottlenecks.
  static NetworkTopology ParkingLot(const LinkParams& params, int hops);

  // Two links: link 0 is the forward bottleneck, link 1 the reverse-direction
  // link that agents' ACKs share with reverse-direction data traffic.
  static NetworkTopology WithReversePath(const LinkParams& params);
};

// Catalog-facing topology naming (Scenario / MultiFlowCcEnvConfig).
enum class TopologyKind {
  kDumbbell,
  kParkingLot,
  kReversePath,
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::kDumbbell;
  int hops = 3;  // parking-lot path length
};

// Per-flow path assignment derived from the spec.
struct FlowPathSpec {
  std::vector<int> path;      // forward (data) link ids
  std::vector<int> ack_path;  // reverse link ids; empty = uncongested pure delay
};

// Builds the episode topology from the sampled base link. Every link inherits
// the base link's bandwidth/delay/queue/loss; the parking lot replicates it
// per hop, the reverse-path shape mirrors it into the opposite direction.
NetworkTopology BuildTopology(const TopologySpec& spec, const LinkParams& base);

// Agents take the full forward path (and, under kReversePath, return their ACKs
// through the congested reverse link).
FlowPathSpec AgentPath(const TopologySpec& spec);

// Competitor placement: dumbbell competitors share the bottleneck; parking-lot
// competitor i is cross traffic on hop i (mod hops); reverse-path competitors
// send their data over the reverse link, loading the agents' ACK direction.
FlowPathSpec CompetitorPath(const TopologySpec& spec, int competitor_index);

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_TOPOLOGY_H_
