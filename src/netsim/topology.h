// Topology descriptions for the packet-level simulator. A NetworkTopology is a
// set of unidirectional droptail links; each flow follows a path of one or more
// of them (its data direction) and optionally a reverse path its ACKs must queue
// through. The classic single-bottleneck dumbbell is the trivial one-link
// instance; the builders below add the two canonical multi-link evaluation
// shapes plus the spec type the scenario catalog uses to name them:
//
//   dumbbell      S ──▶[ L0 ]──▶ R        (ACKs return on an uncongested path)
//
//   parking-lot   S ──▶[ L0 ]──▶[ L1 ]──▶[ L2 ]──▶ R
//                 (agents traverse every hop; cross-traffic flow i loads hop i,
//                  so end-to-end flows compete at several bottlenecks at once)
//
//   reverse-path  S ──▶[ L0 ]──▶ R       data direction
//                 S ◀──[ L1 ]◀── R       agents' ACKs share L1 with competitor
//                                        data flowing R→S, so ACKs queue behind
//                                        reverse-direction congestion
//
//   n-leaf        S0 ──▶[ A0 ]─┐              ┌─▶[ B0 ]──▶ R0
//   dumbbell      S1 ──▶[ A1 ]─┼─▶[ L0 ]──▶──┼─▶[ B1 ]──▶ R1   (ns-3's N-leaf
//                 ...          ┘              └  ...             dumbbell: flow i
//                 enters through its own leaf-in link A(i%P), crosses the shared
//                 bottleneck L0, and exits through leaf-out B(i%P); leaf links
//                 are scaled relative to the bottleneck, faster by default)
//
// TopologySpec is the catalog-facing description: enough to rebuild the episode
// topology from a sampled LinkParams, and to assign each agent/competitor flow
// its data and ACK paths consistently across MultiFlowCcEnv and mocc_simulate.
#ifndef MOCC_SRC_NETSIM_TOPOLOGY_H_
#define MOCC_SRC_NETSIM_TOPOLOGY_H_

#include <vector>

#include "src/netsim/aqm.h"
#include "src/netsim/fault_spec.h"
#include "src/netsim/link_params.h"
#include "src/netsim/wifi_jitter.h"

namespace mocc {

// ACK packets on a congested reverse path serialize at this size (a 40-byte
// TCP ACK), so a loaded reverse link delays ACKs mostly by queueing, not by
// serialization of the ACKs themselves.
inline constexpr int64_t kAckPacketSizeBits = 40 * 8;

// Longest supported link path per direction (the simulator compiles paths into
// fixed per-flow arrays of this size; builders clamp to it).
inline constexpr int kMaxPathHops = 8;

// One unidirectional droptail link.
struct LinkSpec {
  double bandwidth_bps = 12e6;
  double prop_delay_s = 0.020;
  int queue_capacity_pkts = 1000;
  double random_loss_rate = 0.0;  // iid per-packet wire loss at this link
  BandwidthTrace trace;           // empty = constant at bandwidth_bps
  FaultSpec fault;                // empty = no injected faults
  AqmSpec aqm;                    // empty = historical droptail
  WifiJitterSpec wifi_jitter;     // empty = clean constant-rate serialization

  // Effective bandwidth at time t, honouring the trace.
  double BandwidthAt(double t) const { return trace.BandwidthAt(t, bandwidth_bps); }
};

struct NetworkTopology {
  std::vector<LinkSpec> links;

  // The dumbbell: one droptail bottleneck carrying every flow's data direction.
  static NetworkTopology SingleBottleneck(const LinkParams& params);

  // `hops` equal links in series (all inherit the base link's parameters), for
  // end-to-end flows crossing several potential bottlenecks.
  static NetworkTopology ParkingLot(const LinkParams& params, int hops);

  // Two links: link 0 is the forward bottleneck, link 1 the reverse-direction
  // link that agents' ACKs share with reverse-direction data traffic.
  static NetworkTopology WithReversePath(const LinkParams& params);
};

// Multiplicative per-link overrides of the sampled base link, for asymmetric
// shapes. {1, 1, 1} reproduces the base link exactly (multiplying by 1.0 is
// bit-exact for the doubles, and the queue round-trips through llround).
struct LinkScale {
  double bandwidth = 1.0;
  double delay = 1.0;
  double queue = 1.0;
};

// One link of the base shape scaled per `scale`.
LinkSpec ScaledLink(const LinkParams& base, const LinkScale& scale);

// Catalog-facing topology naming (Scenario / MultiFlowCcEnvConfig).
enum class TopologyKind {
  kDumbbell,
  kParkingLot,
  kReversePath,
  kNLeafDumbbell,
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::kDumbbell;
  int hops = 3;  // parking-lot path length
  // Per-link scales for the dumbbell (link 0), parking lot (hop i scaled by
  // link_scales[i % size]) and reverse path (forward 0, reverse 1). Empty =
  // every link replicates the base verbatim — the historical behaviour,
  // bit-identical.
  std::vector<LinkScale> link_scales;
  // kNLeafDumbbell: number of leaf-in/leaf-out pairs around the central
  // bottleneck (link 0, scaled by link_scales[0] when given). Leaf links are
  // scaled by leaf_scale — 4x the bandwidth and a quarter of the delay by
  // default, so the shared bottleneck stays the bottleneck.
  int leaf_pairs = 4;
  LinkScale leaf_scale{4.0, 0.25, 1.0};

  // True when some link can differ from the base link: per-agent path RTTs
  // must then be summed hop by hop instead of hops x the base link RTT.
  bool Heterogeneous() const {
    return kind == TopologyKind::kNLeafDumbbell || !link_scales.empty();
  }
};

// Per-flow path assignment derived from the spec.
struct FlowPathSpec {
  std::vector<int> path;      // forward (data) link ids
  std::vector<int> ack_path;  // reverse link ids; empty = uncongested pure delay
};

// Builds the episode topology from the sampled base link. Every link inherits
// the base link's bandwidth/delay/queue/loss, scaled by the spec's per-link
// overrides (none by default); the parking lot replicates it per hop, the
// reverse-path shape mirrors it into the opposite direction, and the N-leaf
// dumbbell lays out [bottleneck, leaf-in 1..P, leaf-out P+1..2P].
NetworkTopology BuildTopology(const TopologySpec& spec, const LinkParams& base);

// Agent flow placement. Dumbbell/parking-lot/reverse-path agents all share one
// path, so `agent_index` only matters for the N-leaf dumbbell: agent i takes
// {leaf-in i%P, bottleneck, leaf-out i%P}.
FlowPathSpec AgentPath(const TopologySpec& spec, int agent_index);
// The shared-path form (agent 0), kept for the homogeneous call sites.
FlowPathSpec AgentPath(const TopologySpec& spec);

// Competitor placement: dumbbell competitors share the bottleneck; parking-lot
// competitor i is cross traffic on hop i (mod hops); reverse-path competitors
// send their data over the reverse link, loading the agents' ACK direction;
// N-leaf competitor i crosses end to end through leaf pair i (mod P), sharing
// those leaves with the same-index agents.
FlowPathSpec CompetitorPath(const TopologySpec& spec, int competitor_index);

// Propagation-only RTT of `path` over the built topology: 2x the sum of the
// forward hops' propagation delays (the uncongested reverse mirrors them).
// The per-agent reward reference on heterogeneous topologies, where
// hops x base-link RTT no longer holds.
double PathPropRttS(const NetworkTopology& topology, const std::vector<int>& path);

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_TOPOLOGY_H_
