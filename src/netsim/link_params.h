// Bottleneck-link parameterisation shared by the fluid training link and the packet-level
// simulator, including the train/test ranges from Table 3 of the paper and piecewise-
// constant bandwidth traces (used e.g. by Figure 1a's 20-30 Mbps varying link).
#ifndef MOCC_SRC_NETSIM_LINK_PARAMS_H_
#define MOCC_SRC_NETSIM_LINK_PARAMS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialization.h"

namespace mocc {

inline constexpr int64_t kDefaultPacketSizeBits = 1500 * 8;

// Static description of a single bottleneck link.
struct LinkParams {
  double bandwidth_bps = 12e6;
  double one_way_delay_s = 0.020;  // propagation delay per direction; min RTT = 2x this
  int queue_capacity_pkts = 1000;  // droptail buffer
  double random_loss_rate = 0.0;   // iid non-congestion loss probability per packet

  // Minimum RTT induced by propagation alone.
  double BaseRttS() const { return 2.0 * one_way_delay_s; }

  // Bandwidth-delay product in packets of `packet_bits`.
  double BdpPackets(int64_t packet_bits = kDefaultPacketSizeBits) const {
    return bandwidth_bps * BaseRttS() / static_cast<double>(packet_bits);
  }
};

// Uniform ranges over link parameters; Table 3 of the paper.
struct LinkParamsRange {
  double min_bandwidth_bps = 1e6;
  double max_bandwidth_bps = 5e6;
  double min_one_way_delay_s = 0.010;
  double max_one_way_delay_s = 0.050;
  int min_queue_pkts = 1;
  int max_queue_pkts = 3000;
  double min_loss_rate = 0.0;
  double max_loss_rate = 0.03;

  // Draws one LinkParams uniformly from the range.
  LinkParams Sample(Rng* rng) const;
};

// Table 3, training row: bw 1-5 Mbps, latency 10-50 ms, queue 0-3000 pkts, loss 0-3%.
LinkParamsRange TrainingRange();

// Table 3, testing row: bw 10-50 Mbps, latency 10-200 ms, queue 500-5000 pkts, loss 0-10%.
LinkParamsRange TestingRange();

// Piecewise-constant bandwidth schedule. An empty trace means "constant at the
// LinkParams bandwidth".
class BandwidthTrace {
 public:
  BandwidthTrace() = default;

  // Adds a step: from `time_s` onward the bandwidth is `bandwidth_bps`.
  void AddStep(double time_s, double bandwidth_bps);

  // Bandwidth at time t; `fallback_bps` is returned before the first step or when empty.
  double BandwidthAt(double time_s, double fallback_bps) const;

  bool empty() const { return steps_.empty(); }

  // Builds the Figure 1(a) style oscillating trace: alternates between `low_bps` and
  // `high_bps` every `period_s`, starting at `high_bps`.
  static BandwidthTrace Oscillating(double low_bps, double high_bps, double period_s,
                                    double duration_s);

  // Random-walk trace: every `period_s` the bandwidth is resampled uniformly in
  // [low_bps, high_bps].
  static BandwidthTrace RandomWalk(double low_bps, double high_bps, double period_s,
                                   double duration_s, Rng* rng);

  // Builds a trace from mahimahi-format delivery opportunities: each entry is a
  // millisecond timestamp at which one MTU (1500 B) packet could be delivered.
  // Bandwidth is averaged over `window_s` windows.
  static BandwidthTrace FromMahimahiTimestamps(const std::vector<double>& timestamps_ms,
                                               double window_s = 1.0);

  // Loads a mahimahi trace file (one integer millisecond timestamp per line).
  // Returns an empty trace if the file cannot be read or contains no samples.
  static BandwidthTrace FromMahimahiFile(const std::string& path, double window_s = 1.0);

  // Persists / restores the step schedule (used by training checkpoints to carry the
  // per-env cached episode trace across a resume).
  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  struct Step {
    double time_s;
    double bandwidth_bps;
  };
  std::vector<Step> steps_;
};

// One step of the trace-precedence ladder shared by CcEnv and MultiFlowCcEnv
// (per-episode generator > fixed trace > constant bandwidth): returns the trace
// to install for this episode, empty meaning "constant at the link bandwidth".
// With cache_per_env, the generator runs only when *cached_valid is false (the
// env's first episode, or after a reconfiguration cleared it) and its schedule is
// stored in *cached for reuse by every later episode of the same env.
BandwidthTrace ResolveEpisodeTrace(
    const std::function<BandwidthTrace(const LinkParams&, Rng*)>& generator,
    bool cache_per_env, bool* cached_valid, BandwidthTrace* cached,
    const BandwidthTrace& fixed_trace, const LinkParams& link, Rng* rng);

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_LINK_PARAMS_H_
