#include "src/netsim/topology.h"

#include <algorithm>
#include <cassert>

namespace mocc {
namespace {

LinkSpec FromParams(const LinkParams& params) {
  LinkSpec link;
  link.bandwidth_bps = params.bandwidth_bps;
  link.prop_delay_s = params.one_way_delay_s;
  link.queue_capacity_pkts = params.queue_capacity_pkts;
  link.random_loss_rate = params.random_loss_rate;
  return link;
}

}  // namespace

NetworkTopology NetworkTopology::SingleBottleneck(const LinkParams& params) {
  NetworkTopology topology;
  topology.links.push_back(FromParams(params));
  return topology;
}

NetworkTopology NetworkTopology::ParkingLot(const LinkParams& params, int hops) {
  assert(hops >= 1 && hops <= kMaxPathHops);
  NetworkTopology topology;
  for (int i = 0; i < std::clamp(hops, 1, kMaxPathHops); ++i) {
    topology.links.push_back(FromParams(params));
  }
  return topology;
}

NetworkTopology NetworkTopology::WithReversePath(const LinkParams& params) {
  NetworkTopology topology;
  topology.links.push_back(FromParams(params));  // forward bottleneck
  topology.links.push_back(FromParams(params));  // reverse-direction link
  return topology;
}

NetworkTopology BuildTopology(const TopologySpec& spec, const LinkParams& base) {
  switch (spec.kind) {
    case TopologyKind::kDumbbell:
      return NetworkTopology::SingleBottleneck(base);
    case TopologyKind::kParkingLot:
      return NetworkTopology::ParkingLot(base, spec.hops);
    case TopologyKind::kReversePath:
      return NetworkTopology::WithReversePath(base);
  }
  return NetworkTopology::SingleBottleneck(base);
}

FlowPathSpec AgentPath(const TopologySpec& spec) {
  FlowPathSpec paths;
  switch (spec.kind) {
    case TopologyKind::kDumbbell:
      paths.path = {0};
      break;
    case TopologyKind::kParkingLot:
      for (int i = 0; i < std::clamp(spec.hops, 1, kMaxPathHops); ++i) {
        paths.path.push_back(i);
      }
      break;
    case TopologyKind::kReversePath:
      paths.path = {0};
      paths.ack_path = {1};
      break;
  }
  return paths;
}

FlowPathSpec CompetitorPath(const TopologySpec& spec, int competitor_index) {
  FlowPathSpec paths;
  switch (spec.kind) {
    case TopologyKind::kDumbbell:
      paths.path = {0};
      break;
    case TopologyKind::kParkingLot:
      paths.path = {competitor_index % std::clamp(spec.hops, 1, kMaxPathHops)};
      break;
    case TopologyKind::kReversePath:
      // Competitors drive the reverse link in its data direction (their own
      // ACKs return uncongested), which is exactly what queues the agents'
      // ACKs behind data packets.
      paths.path = {1};
      break;
  }
  return paths;
}

}  // namespace mocc
