#include "src/netsim/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {
namespace {

LinkSpec FromParams(const LinkParams& params) {
  LinkSpec link;
  link.bandwidth_bps = params.bandwidth_bps;
  link.prop_delay_s = params.one_way_delay_s;
  link.queue_capacity_pkts = params.queue_capacity_pkts;
  link.random_loss_rate = params.random_loss_rate;
  return link;
}

// Scale for link `index` of a shape built from `spec`; identity when the spec
// carries no overrides (so the base link replicates verbatim, bit-identical to
// the historical builders).
LinkScale ScaleFor(const TopologySpec& spec, int index) {
  if (spec.link_scales.empty()) return LinkScale{};
  return spec.link_scales[static_cast<size_t>(index) % spec.link_scales.size()];
}

int ClampedLeafPairs(const TopologySpec& spec) {
  return std::max(1, spec.leaf_pairs);
}

}  // namespace

LinkSpec ScaledLink(const LinkParams& base, const LinkScale& scale) {
  LinkSpec link = FromParams(base);
  link.bandwidth_bps *= scale.bandwidth;
  link.prop_delay_s *= scale.delay;
  link.queue_capacity_pkts = std::max<int>(
      1, static_cast<int>(std::llround(link.queue_capacity_pkts * scale.queue)));
  return link;
}

NetworkTopology NetworkTopology::SingleBottleneck(const LinkParams& params) {
  NetworkTopology topology;
  topology.links.push_back(FromParams(params));
  return topology;
}

NetworkTopology NetworkTopology::ParkingLot(const LinkParams& params, int hops) {
  assert(hops >= 1 && hops <= kMaxPathHops);
  NetworkTopology topology;
  for (int i = 0; i < std::clamp(hops, 1, kMaxPathHops); ++i) {
    topology.links.push_back(FromParams(params));
  }
  return topology;
}

NetworkTopology NetworkTopology::WithReversePath(const LinkParams& params) {
  NetworkTopology topology;
  topology.links.push_back(FromParams(params));  // forward bottleneck
  topology.links.push_back(FromParams(params));  // reverse-direction link
  return topology;
}

NetworkTopology BuildTopology(const TopologySpec& spec, const LinkParams& base) {
  NetworkTopology topology;
  switch (spec.kind) {
    case TopologyKind::kDumbbell:
      topology.links.push_back(ScaledLink(base, ScaleFor(spec, 0)));
      return topology;
    case TopologyKind::kParkingLot:
      for (int i = 0; i < std::clamp(spec.hops, 1, kMaxPathHops); ++i) {
        topology.links.push_back(ScaledLink(base, ScaleFor(spec, i)));
      }
      return topology;
    case TopologyKind::kReversePath:
      topology.links.push_back(ScaledLink(base, ScaleFor(spec, 0)));  // forward
      topology.links.push_back(ScaledLink(base, ScaleFor(spec, 1)));  // reverse
      return topology;
    case TopologyKind::kNLeafDumbbell: {
      const int pairs = ClampedLeafPairs(spec);
      topology.links.push_back(ScaledLink(base, ScaleFor(spec, 0)));  // bottleneck
      for (int i = 0; i < pairs; ++i) {  // leaf-in links 1..P
        topology.links.push_back(ScaledLink(base, spec.leaf_scale));
      }
      for (int i = 0; i < pairs; ++i) {  // leaf-out links P+1..2P
        topology.links.push_back(ScaledLink(base, spec.leaf_scale));
      }
      return topology;
    }
  }
  topology.links.push_back(ScaledLink(base, ScaleFor(spec, 0)));
  return topology;
}

FlowPathSpec AgentPath(const TopologySpec& spec, int agent_index) {
  FlowPathSpec paths;
  switch (spec.kind) {
    case TopologyKind::kDumbbell:
      paths.path = {0};
      break;
    case TopologyKind::kParkingLot:
      for (int i = 0; i < std::clamp(spec.hops, 1, kMaxPathHops); ++i) {
        paths.path.push_back(i);
      }
      break;
    case TopologyKind::kReversePath:
      paths.path = {0};
      paths.ack_path = {1};
      break;
    case TopologyKind::kNLeafDumbbell: {
      const int pairs = ClampedLeafPairs(spec);
      const int pair = ((agent_index % pairs) + pairs) % pairs;
      paths.path = {1 + pair, 0, 1 + pairs + pair};
      break;
    }
  }
  return paths;
}

FlowPathSpec AgentPath(const TopologySpec& spec) { return AgentPath(spec, 0); }

FlowPathSpec CompetitorPath(const TopologySpec& spec, int competitor_index) {
  FlowPathSpec paths;
  switch (spec.kind) {
    case TopologyKind::kDumbbell:
      paths.path = {0};
      break;
    case TopologyKind::kParkingLot:
      paths.path = {competitor_index % std::clamp(spec.hops, 1, kMaxPathHops)};
      break;
    case TopologyKind::kReversePath:
      // Competitors drive the reverse link in its data direction (their own
      // ACKs return uncongested), which is exactly what queues the agents'
      // ACKs behind data packets.
      paths.path = {1};
      break;
    case TopologyKind::kNLeafDumbbell: {
      // End-to-end cross traffic through leaf pair i%P: shares both leaves
      // with the same-index agents, and the bottleneck with everyone.
      const int pairs = ClampedLeafPairs(spec);
      const int pair = ((competitor_index % pairs) + pairs) % pairs;
      paths.path = {1 + pair, 0, 1 + pairs + pair};
      break;
    }
  }
  return paths;
}

double PathPropRttS(const NetworkTopology& topology, const std::vector<int>& path) {
  double one_way = 0.0;
  for (int link : path) {
    assert(link >= 0 && static_cast<size_t>(link) < topology.links.size());
    one_way += topology.links[static_cast<size_t>(link)].prop_delay_s;
  }
  return 2.0 * one_way;
}

}  // namespace mocc
