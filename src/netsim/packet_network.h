// Event-driven packet-level simulator over an arbitrary topology of droptail
// links. Each registered flow follows a path of one or more links (the classic
// dumbbell — N senders sharing one bottleneck — is the one-link instance);
// packets are individually queued, serialized at link rate, delayed by
// propagation, and acknowledged either on an uncongested reverse path (pure
// delay, the dumbbell default) or through reverse-path links whose queues the
// ACKs share with reverse-direction data traffic. Losses (droptail overflow or
// random wire loss) are reported to the sender after a detection delay of
// roughly one RTT, emulating duplicate-ACK detection.
//
// This is the evaluation substrate standing in for the paper's Pantheon/Mahimahi
// emulation and real Internet paths: utilization/latency sweeps (Figure 5),
// fairness dynamics (Figures 11-12), friendliness (Figures 13-15) and the
// application workloads (Figures 8-10) all run on it, as do the multi-flow
// training scenarios (shared bottleneck, parking-lot, congested reverse path,
// heterogeneous RTT).
//
// The event core is the pooled 4-ary heap + ring-buffer engine of
// src/netsim/event_engine.h: ACKs on an uncongested reverse path are coalesced
// into a single event (delivery bookkeeping happens when the packet leaves its
// last link, with the delivery timestamp computed in the same floating-point
// order as the historical two-event form, so single-bottleneck episodes are
// bit-identical to the pre-refactor engine — tests/golden_episode_test.cc holds
// the committed proof traces), droptail admission is O(1) against the ring
// occupancy, and flows live in one contiguous vector.
#ifndef MOCC_SRC_NETSIM_PACKET_NETWORK_H_
#define MOCC_SRC_NETSIM_PACKET_NETWORK_H_

#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/netsim/cc_interface.h"
#include "src/netsim/event_engine.h"
#include "src/netsim/flow_record.h"
#include "src/netsim/link_params.h"
#include "src/netsim/topology.h"

namespace mocc {

// Per-flow behaviour knobs.
struct FlowOptions {
  double start_time_s = 0.0;
  double stop_time_s = std::numeric_limits<double>::infinity();
  // Monitor-interval sizing: fixed duration wins if > 0, otherwise
  // max(mi_min_duration_s, mi_rtt_multiple * srtt).
  double mi_fixed_duration_s = 0.0;
  double mi_rtt_multiple = 1.0;
  double mi_min_duration_s = 0.010;
  // Fallback pacing rate when a rate-based scheme reports a non-positive rate.
  double initial_rate_bps = 1e6;
  // Additional one-way propagation delay for this flow only (both directions), for
  // heterogeneous-RTT experiments on a shared bottleneck.
  double extra_one_way_delay_s = 0.0;
  // Record per-packet delivery timestamps (needed for inter-packet delay analysis).
  bool keep_delivery_times = false;
  // ECN-capable (ECT) flow: AQM bottlenecks with ecn enabled mark this flow's
  // packets instead of dropping them; the marks come back on the ACKs
  // (AckInfo::ecn_marked, MonitorReport::packets_marked).
  bool ecn_capable = false;
  // Forward path as link indices into the topology; empty means {0} (the
  // dumbbell bottleneck). At most kMaxPathHops entries.
  std::vector<int> path;
  // Reverse path the ACKs queue through; empty means the uncongested pure-delay
  // reverse path (one forward-path propagation delay, no queueing).
  std::vector<int> ack_path;
};

class PacketNetwork {
 public:
  // Longest supported link path per direction (shared with the topology
  // builders, which clamp to it).
  static constexpr int kMaxPathHops = mocc::kMaxPathHops;

  // Dumbbell convenience: one bottleneck link described by `params`.
  PacketNetwork(const LinkParams& params, uint64_t seed);
  // General form: any set of links; flows pick their paths via FlowOptions.
  PacketNetwork(const NetworkTopology& topology, uint64_t seed);

  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  // Installs a piecewise-constant bandwidth schedule on the bottleneck (link 0).
  void SetBandwidthTrace(BandwidthTrace trace) {
    links_[0].spec.trace = std::move(trace);
  }

  // Registers a flow driven by `cc`. Returns the flow id. Must be called before Run.
  int AddFlow(std::unique_ptr<CongestionControl> cc, FlowOptions options = {});

  // Runs the simulation until the clock reaches `until_s`.
  void Run(double until_s);

  // Runs until `stop()` returns true or the clock reaches `max_time_s`.
  //
  // Polling contract: the predicate may be arbitrarily expensive (it typically
  // inspects flow records), so it is NOT evaluated per event — it is checked
  // once on entry and then once every kStopCheckEvents dispatched events. The
  // simulation may therefore overshoot the stop condition by up to
  // kStopCheckEvents events (bounded extra work, no extra heap churn); callers
  // that need an exact cut should test `stop` state themselves after return.
  // On return now_s() is the time of the last dispatched event (the clock is
  // not advanced to max_time_s when the predicate fires or events run out).
  void RunUntil(const std::function<bool()>& stop, double max_time_s);

  // How many events RunUntil dispatches between stop-predicate evaluations.
  static constexpr int kStopCheckEvents = 64;

  // Application control: a paused flow stops transmitting new packets but keeps
  // receiving ACKs (used by the chunked-video workload between downloads).
  void PauseFlow(int flow_id);
  void ResumeFlow(int flow_id);

  double now_s() const { return now_s_; }
  // Effective bottleneck bandwidth at the current clock, honouring the trace.
  double CurrentBandwidthBps() const { return links_[0].spec.BandwidthAt(now_s_); }
  size_t flow_count() const { return flows_.size(); }
  size_t link_count() const { return links_.size(); }
  const FlowRecord& record(int flow_id) const {
    return flows_[static_cast<size_t>(flow_id)].record;
  }
  CongestionControl& cc(int flow_id) {
    return *flows_[static_cast<size_t>(flow_id)].cc;
  }

  // Instantaneous backlog in packets (waiting + in service) at `link_id`.
  int QueueLengthPkts(int link_id = 0) const;

 private:
  enum class EvType : uint8_t {
    kFlowStart,
    kFlowStop,
    kPacedSend,
    kLinkDone,
    kHopArrive,
    kAck,
    kLossNotice,
    kMonitor,
    kRtoCheck,
  };

  struct QueuedPacket {
    double send_time_s;
    double enqueue_time_s;  // arrival at this link's queue (CoDel sojourn base)
    int64_t seq;
    int32_t flow_id;
    uint8_t hop;
    uint8_t is_ack;
    uint8_t ecn;  // 1 once an AQM bottleneck has marked the packet
  };

  // A coalesced ACK arrival awaiting lazy application (defer_acks flows).
  struct PendingAck {
    double ack_time_s;
    double send_time_s;
    int64_t seq;
    uint8_t ecn;
  };

  struct LinkState {
    LinkSpec spec;
    RingBuffer<QueuedPacket> queue;
    AqmState aqm;
    bool busy = false;
  };

  struct Flow {
    std::unique_ptr<CongestionControl> cc;
    FlowOptions options;
    FlowRecord record;
    bool started = false;
    bool active = false;
    bool paused = false;
    bool pace_scheduled = false;
    // Compiled path (link indices) and derived delays.
    std::array<uint8_t, kMaxPathHops> path{};
    std::array<uint8_t, kMaxPathHops> ack_path{};
    uint8_t path_len = 1;
    uint8_t ack_path_len = 0;
    // CongestionControl::Mode() is constant per scheme; cached here so the
    // per-ACK/per-send hot paths skip the virtual call.
    CcMode mode = CcMode::kRateBased;
    // True when the scheme opted out of per-ACK events (NeedsPerAckEvents()
    // false) and the reverse path is pure delay: ACK arrivals then queue in
    // pending_acks (already time-sorted — FIFO path, constant reverse delay)
    // and are applied at the flow's next event instead of through the heap.
    bool defer_acks = false;
    RingBuffer<PendingAck> pending_acks;
    double reverse_delay_s = 0.0;  // pure-delay reverse path (one-way)
    double base_rtt_s = 0.0;       // 2 x sum of forward propagation delays
    int64_t next_seq = 0;
    int64_t inflight = 0;
    double srtt_s = 0.0;
    double min_rtt_s = 0.0;
    double last_progress_s = 0.0;
    // Monitor-interval counters.
    double mi_start_s = 0.0;
    int64_t mi_sent = 0;
    int64_t mi_acked = 0;
    int64_t mi_lost = 0;
    double mi_rtt_sum_s = 0.0;
    int64_t mi_rtt_count = 0;
    int64_t mi_marked = 0;
  };

  void Schedule(double time_s, EvType type, int flow_id, int64_t seq = 0,
                double send_time_s = 0.0, uint8_t hop = 0, uint8_t is_ack = 0,
                uint8_t ecn = 0);
  void Dispatch(const SimEvent& ev);

  void HandleFlowStart(const SimEvent& ev);
  void HandlePacedSend(const SimEvent& ev);
  void HandleLinkDone(const SimEvent& ev);
  void HandleHopArrive(const SimEvent& ev);
  void HandleAck(const SimEvent& ev);
  void HandleLossNotice(const SimEvent& ev);
  void HandleMonitor(const SimEvent& ev);
  void HandleRtoCheck(const SimEvent& ev);

  // Applies one ACK's bookkeeping (counters, RTT filters, record, OnAck) at
  // `ack_time_s` — shared by the per-event path and the lazy drain.
  void ProcessAck(Flow* flow, double ack_time_s, double send_time_s, int64_t seq,
                  bool ecn_marked);
  // Applies every pending coalesced ACK with arrival time <= up_to_s.
  void DrainPendingAcks(Flow* flow, double up_to_s);
  void DrainAllPendingAcks(double up_to_s);

  // Emits one packet from `flow_id` into its first path link at `now_s`.
  void SendPacket(int flow_id, double now_s);
  // Ack-clocked transmission for window-based flows.
  void TrySendWindowed(int flow_id, double now_s);
  // Admission of a (data or ACK) packet at `link_id`: droptail overflow first,
  // then the link's AQM discipline (RED acts here, at enqueue). Data packets
  // that are dropped become loss notices, ACKs are always admitted and never
  // AQM-processed.
  void EnqueueOnLink(int link_id, const QueuedPacket& pkt, double now_s);
  // Begins serializing the head-of-line packet. CoDel acts here (at dequeue,
  // on the packet's queue sojourn time); a configured wifi-jitter model
  // stretches the serialization time inside its burst windows.
  void StartService(int link_id, double now_s);
  // Shared loss-notice scheduling for every AQM/droptail/wire-loss drop.
  void ScheduleLoss(int flow_id, int64_t seq, double send_time_s, double now_s);

  double MiDuration(const Flow& flow) const;
  double LossDetectionDelay(const Flow& flow) const;
  bool FlowMaySend(const Flow& flow) const;

  Rng rng_;
  double now_s_ = 0.0;
  uint64_t next_order_ = 0;
  EventQueue events_;
  std::vector<Flow> flows_;
  std::vector<LinkState> links_;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_PACKET_NETWORK_H_
