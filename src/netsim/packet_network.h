// Event-driven packet-level simulator of a dumbbell topology: N sender/receiver pairs
// sharing one droptail bottleneck link with configurable bandwidth (optionally a trace),
// propagation delay, buffer size and random loss.
//
// This is the evaluation substrate standing in for the paper's Pantheon/Mahimahi emulation
// and real Internet paths: utilization/latency sweeps (Figure 5), fairness dynamics
// (Figures 11-12), friendliness (Figures 13-15) and the application workloads (Figures
// 8-10) all run on it. Packets are individually queued, serialized at link rate, delayed
// by propagation, and acknowledged on an uncongested reverse path. Losses (droptail
// overflow or random) are reported to the sender after a detection delay of roughly one
// RTT, emulating duplicate-ACK detection.
#ifndef MOCC_SRC_NETSIM_PACKET_NETWORK_H_
#define MOCC_SRC_NETSIM_PACKET_NETWORK_H_

#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/netsim/cc_interface.h"
#include "src/netsim/flow_record.h"
#include "src/netsim/link_params.h"

namespace mocc {

// Per-flow behaviour knobs.
struct FlowOptions {
  double start_time_s = 0.0;
  double stop_time_s = std::numeric_limits<double>::infinity();
  // Monitor-interval sizing: fixed duration wins if > 0, otherwise
  // max(mi_min_duration_s, mi_rtt_multiple * srtt).
  double mi_fixed_duration_s = 0.0;
  double mi_rtt_multiple = 1.0;
  double mi_min_duration_s = 0.010;
  // Fallback pacing rate when a rate-based scheme reports a non-positive rate.
  double initial_rate_bps = 1e6;
  // Additional one-way propagation delay for this flow only (both directions), for
  // heterogeneous-RTT experiments on a shared bottleneck.
  double extra_one_way_delay_s = 0.0;
  // Record per-packet delivery timestamps (needed for inter-packet delay analysis).
  bool keep_delivery_times = false;
};

class PacketNetwork {
 public:
  PacketNetwork(const LinkParams& params, uint64_t seed);

  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  // Installs a piecewise-constant bandwidth schedule.
  void SetBandwidthTrace(BandwidthTrace trace) { trace_ = std::move(trace); }

  // Registers a flow driven by `cc`. Returns the flow id. Must be called before Run.
  int AddFlow(std::unique_ptr<CongestionControl> cc, FlowOptions options = {});

  // Runs the simulation until the clock reaches `until_s`.
  void Run(double until_s);

  // Runs until `stop()` returns true (checked periodically) or the clock reaches
  // `max_time_s`.
  void RunUntil(const std::function<bool()>& stop, double max_time_s);

  // Application control: a paused flow stops transmitting new packets but keeps
  // receiving ACKs (used by the chunked-video workload between downloads).
  void PauseFlow(int flow_id);
  void ResumeFlow(int flow_id);

  double now_s() const { return now_s_; }
  // Effective bottleneck bandwidth at the current clock, honouring the trace.
  double CurrentBandwidthBps() const { return BandwidthNow(now_s_); }
  size_t flow_count() const { return flows_.size(); }
  const FlowRecord& record(int flow_id) const { return flows_[flow_id]->record; }
  CongestionControl& cc(int flow_id) { return *flows_[flow_id]->cc; }
  const LinkParams& params() const { return params_; }

  // Instantaneous bottleneck backlog in packets (waiting + in service).
  int QueueLengthPkts() const;

 private:
  enum class EvType : uint8_t {
    kFlowStart,
    kFlowStop,
    kPacedSend,
    kLinkDone,
    kDelivery,
    kAck,
    kLossNotice,
    kMonitor,
    kRtoCheck,
  };

  struct Event {
    double time_s;
    uint64_t order;
    EvType type;
    int flow_id;
    int64_t seq;
    double send_time_s;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_s != b.time_s) {
        return a.time_s > b.time_s;
      }
      return a.order > b.order;
    }
  };

  struct QueuedPacket {
    int flow_id;
    int64_t seq;
    double send_time_s;
  };

  struct Flow {
    std::unique_ptr<CongestionControl> cc;
    FlowOptions options;
    FlowRecord record;
    bool started = false;
    bool active = false;
    bool paused = false;
    bool pace_scheduled = false;
    int64_t next_seq = 0;
    int64_t inflight = 0;
    double srtt_s = 0.0;
    double min_rtt_s = 0.0;
    double last_progress_s = 0.0;
    // Monitor-interval counters.
    double mi_start_s = 0.0;
    int64_t mi_sent = 0;
    int64_t mi_acked = 0;
    int64_t mi_lost = 0;
    double mi_rtt_sum_s = 0.0;
    int64_t mi_rtt_count = 0;
  };

  void Schedule(double time_s, EvType type, int flow_id, int64_t seq = 0,
                double send_time_s = 0.0);
  void Dispatch(const Event& ev);

  void HandleFlowStart(const Event& ev);
  void HandlePacedSend(const Event& ev);
  void HandleLinkDone(const Event& ev);
  void HandleAck(const Event& ev);
  void HandleLossNotice(const Event& ev);
  void HandleMonitor(const Event& ev);
  void HandleRtoCheck(const Event& ev);

  // Emits one packet from `flow_id` into the bottleneck queue at `now_s`.
  void SendPacket(int flow_id, double now_s);
  // Ack-clocked transmission for window-based flows.
  void TrySendWindowed(int flow_id, double now_s);
  void StartService(double now_s);

  double MiDuration(const Flow& flow) const;
  double LossDetectionDelay(const Flow& flow) const;
  double BandwidthNow(double t) const;
  bool FlowMaySend(const Flow& flow) const;

  LinkParams params_;
  BandwidthTrace trace_;
  Rng rng_;
  double now_s_ = 0.0;
  uint64_t next_order_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::deque<QueuedPacket> queue_;
  bool server_busy_ = false;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_PACKET_NETWORK_H_
