#include "src/netsim/fault_spec.h"

#include <algorithm>
#include <cmath>

namespace mocc {
namespace {

// True iff `t` falls inside the leading `duration` of the period, shifted by `phase`.
bool InWindow(double t, double period, double duration, double phase) {
  if (period <= 0.0 || duration <= 0.0) {
    return false;
  }
  double u = std::fmod(t - phase, period);
  if (u < 0.0) {
    u += period;
  }
  return u < duration;
}

}  // namespace

double FaultSpec::MaxPeriodS() const {
  return std::max({blackout_period_s, loss_burst_period_s, delay_spike_period_s, 0.0});
}

bool FaultSpec::BlackoutAt(double t) const {
  return InWindow(t, blackout_period_s, blackout_duration_s, phase_s);
}

double FaultSpec::BurstLossRateAt(double t) const {
  return InWindow(t, loss_burst_period_s, loss_burst_duration_s, phase_s)
             ? loss_burst_rate
             : 0.0;
}

double FaultSpec::ExtraDelayAt(double t) const {
  return InWindow(t, delay_spike_period_s, delay_spike_duration_s, phase_s)
             ? delay_spike_extra_s
             : 0.0;
}

}  // namespace mocc
