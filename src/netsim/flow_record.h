// Per-flow measurement record produced by the packet-level simulator: monitor-interval
// samples, packet totals, and the ACK/delivery logs the benchmark harnesses bin into the
// paper's timelines (throughput vs time, inter-packet delay, Jain index per second, ...).
#ifndef MOCC_SRC_NETSIM_FLOW_RECORD_H_
#define MOCC_SRC_NETSIM_FLOW_RECORD_H_

#include <cstdint>
#include <vector>

#include "src/netsim/cc_interface.h"

namespace mocc {

struct MiSample {
  double time_s = 0.0;
  double duration_s = 0.0;
  double send_rate_bps = 0.0;
  double throughput_bps = 0.0;
  double avg_rtt_s = 0.0;
  double loss_rate = 0.0;
  double ecn_rate = 0.0;  // ECN-marked / acked within the MI
};

class FlowRecord {
 public:
  void RecordMi(const MonitorReport& report);
  void RecordAck(double time_s, int64_t bits);
  void RecordDelivery(double time_s);

  const std::vector<MiSample>& mi_samples() const { return mi_samples_; }
  const std::vector<double>& ack_times() const { return ack_times_; }
  const std::vector<double>& delivery_times() const { return delivery_times_; }

  int64_t total_sent = 0;
  int64_t total_acked = 0;
  int64_t total_lost = 0;
  int64_t total_marked = 0;  // ACKs that carried an ECN congestion mark
  int64_t bits_acked = 0;
  double first_send_time_s = -1.0;
  double last_ack_time_s = 0.0;
  double min_rtt_s = 0.0;  // 0 until the first ACK

  // Whether RecordDelivery should keep per-packet delivery timestamps (used by the RTC
  // inter-packet-delay analysis; off by default to save memory).
  bool keep_delivery_times = false;

  // Mean delivered throughput (bps) between t0 and t1, from the ACK log.
  double AvgThroughputBps(double t0_s, double t1_s) const;

  // Delivered throughput in Mbps for each `bin_s`-second bin of [t0, t1).
  std::vector<double> BinnedThroughputMbps(double t0_s, double t1_s, double bin_s) const;

  // Mean RTT over all monitor intervals weighted by acked packets (approximated by MI
  // throughput x duration). Returns 0 when no samples.
  double AvgRttS() const;

  // Overall loss rate: lost / (acked + lost).
  double LossRate() const;

  // Gaps between consecutive packet deliveries in seconds (requires
  // keep_delivery_times). Used for the paper's inter-packet delay metric (Figure 9).
  std::vector<double> InterDeliveryGapsS() const;

 private:
  std::vector<MiSample> mi_samples_;
  std::vector<double> ack_times_;
  std::vector<int64_t> ack_bits_;
  std::vector<double> delivery_times_;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_FLOW_RECORD_H_
