// Active queue management disciplines for the packet-level simulator's
// bottleneck links: RED (random early detection over an EWMA of the queue
// depth) and CoDel (sojourn-time control with the interval/sqrt(count) control
// law), both with optional ECN marking of ECN-capable flows instead of
// dropping. The default is the historical droptail (AqmSpec::empty() true), in
// which case the simulator takes no AQM branch, consumes no Rng draws, and
// stays bit-identical to pre-AQM builds (tests/golden_episode_test.cc pins
// this).
//
// The decision logic is factored into free functions over an explicit AqmState
// so the property tests (RED mark-probability monotonicity, CoDel control-law
// invariants, mark-vs-drop exclusivity) can exercise it without running the
// simulator. RED is the only discipline that draws randomness, and only when
// the marking probability is strictly inside (0, 1); CoDel is fully
// deterministic.
#ifndef MOCC_SRC_NETSIM_AQM_H_
#define MOCC_SRC_NETSIM_AQM_H_

#include "src/common/rng.h"

namespace mocc {

enum class AqmKind {
  kDroptail,  // historical behaviour: drop only on buffer overflow
  kRed,
  kCodel,
};

// What the discipline decided for one data packet. A packet receives exactly
// one verdict — marking and dropping are mutually exclusive by construction.
enum class AqmAction {
  kForward,
  kDrop,
  kMark,  // ECN congestion-experienced; only for ECN-capable flows under ecn
};

// Per-link AQM configuration, carried on LinkSpec. ACK packets are exempt from
// every discipline (they are exempt from droptail overflow too).
struct AqmSpec {
  AqmKind kind = AqmKind::kDroptail;
  // Mark ECN-capable flows instead of dropping (RED: inside the min/max band;
  // CoDel: in the dropping state). Hard overflow at the buffer capacity and
  // RED's above-max-threshold region still drop regardless.
  bool ecn = false;

  // RED (acts at enqueue): EWMA avg queue below min -> forward; between min and
  // max -> mark/drop with probability rising linearly to max_prob; at or above
  // max -> drop.
  double red_min_pkts = 50.0;
  double red_max_pkts = 150.0;
  double red_max_prob = 0.10;
  double red_weight = 0.002;  // EWMA weight of the instantaneous queue depth

  // CoDel (acts at dequeue): once the packet sojourn time has exceeded
  // `target` continuously for `interval`, enter the dropping state and
  // drop/mark at times spaced interval/sqrt(count) apart until the sojourn
  // falls back below target.
  double codel_target_s = 0.005;
  double codel_interval_s = 0.100;

  // True iff the link keeps the historical droptail behaviour.
  bool empty() const { return kind == AqmKind::kDroptail; }
};

// Mutable per-link discipline state, owned by the simulator's LinkState.
struct AqmState {
  // RED.
  double avg_queue_pkts = 0.0;
  // CoDel.
  bool dropping = false;
  double first_above_time_s = 0.0;  // 0 = sojourn not continuously above target
  double drop_next_s = 0.0;
  int count = 0;       // drops/marks in the current dropping state
  int last_count = 0;  // count when the previous dropping state ended
};

// RED's marking probability as a function of the EWMA queue depth: 0 below
// min_pkts, linear up to max_prob at max_pkts, 1 at or above max_pkts.
// Monotone non-decreasing in avg_queue_pkts for any valid spec.
double RedMarkProbability(const AqmSpec& spec, double avg_queue_pkts);

// CoDel's control law: the next drop time after `t`, spaced
// interval/sqrt(count) — the spacing shrinks as the drop count grows.
double CodelControlLawS(double t, double interval_s, int count);

// RED decision for one data packet arriving to a queue currently
// `inst_queue_pkts` deep. Updates the EWMA; draws from `rng` only when the
// marking probability is strictly between 0 and 1.
AqmAction RedOnEnqueue(const AqmSpec& spec, AqmState* state, int inst_queue_pkts,
                       bool ecn_capable, Rng* rng);

// CoDel decision for one data packet dequeued at `now_s` after spending
// `sojourn_s` in the queue, with `backlog_pkts` packets still behind it.
// Deterministic: no randomness anywhere in CoDel.
AqmAction CodelOnDequeue(const AqmSpec& spec, AqmState* state, double now_s,
                         double sojourn_s, int backlog_pkts, bool ecn_capable);

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_AQM_H_
