// The congestion-control plug-in interface shared by every scheme in this repository —
// handcrafted (CUBIC, Vegas, BBR, Copa), online-learning (PCC Allegro/Vivace) and
// RL-based (Aurora, Orca, MOCC). Both the packet-level simulator and the fluid training
// link drive implementations of this interface, so a scheme written once runs everywhere.
#ifndef MOCC_SRC_NETSIM_CC_INTERFACE_H_
#define MOCC_SRC_NETSIM_CC_INTERFACE_H_

#include <cstdint>
#include <string>

namespace mocc {

// Per-ACK feedback delivered to the congestion controller.
struct AckInfo {
  double send_time_s = 0.0;
  double ack_time_s = 0.0;
  double rtt_s = 0.0;
  int64_t size_bits = 0;
  int64_t seq = 0;
  // The delivered packet carried an ECN congestion-experienced mark (set by an
  // AQM bottleneck for ECN-capable flows instead of dropping the packet).
  bool ecn_marked = false;
};

// Per-loss feedback (delivered after the simulated detection delay).
struct LossInfo {
  double detect_time_s = 0.0;
  int64_t seq = 0;
};

// Aggregated statistics for one monitor interval (MI). This is the granularity at which
// PCC-style and RL-based schemes act (§3/§4.1 of the paper): the sender observes MI
// statistics and picks the rate for the next interval.
struct MonitorReport {
  double start_time_s = 0.0;
  double duration_s = 0.0;
  int64_t packets_sent = 0;
  int64_t packets_acked = 0;
  int64_t packets_lost = 0;
  double send_rate_bps = 0.0;    // offered rate during the MI
  double throughput_bps = 0.0;   // delivered (acked) rate during the MI
  double avg_rtt_s = 0.0;        // mean RTT of ACKs in the MI (0 if none)
  double min_rtt_s = 0.0;        // historical minimum RTT seen by this flow
  double loss_rate = 0.0;        // lost / (acked + lost) within the MI
  int64_t packets_marked = 0;    // ACKs carrying an ECN mark within the MI
  double ecn_rate = 0.0;         // marked / acked within the MI (0 if no ACKs)
};

// Whether the sender paces packets at PacingRateBps() or is clocked by CwndPackets().
enum class CcMode {
  kRateBased,
  kWindowBased,
};

// Congestion-control algorithm. Implementations keep all their state internally; the
// simulator calls the event hooks and polls PacingRateBps()/CwndPackets() when it needs
// a send decision. All times are in seconds on the simulation clock.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual CcMode Mode() const = 0;
  virtual std::string Name() const = 0;

  // Called once when the flow becomes active.
  virtual void OnFlowStart(double /*now_s*/) {}

  // Per-packet feedback.
  virtual void OnAck(const AckInfo& /*ack*/) {}
  virtual void OnPacketLost(const LossInfo& /*loss*/) {}

  // Retransmission-timeout style stall: no ACK progress for several RTTs.
  virtual void OnTimeout(double /*now_s*/) {}

  // Monitor-interval feedback (PCC / RL schemes act here).
  virtual void OnMonitorInterval(const MonitorReport& /*report*/) {}

  // Target pacing rate in bits/second. Only meaningful for kRateBased schemes.
  virtual double PacingRateBps() const { return 0.0; }

  // Congestion window in packets. Rate-based schemes may return a cap (e.g. BBR) or
  // a very large value for "uncapped".
  virtual double CwndPackets() const { return 1e12; }

  // Whether the scheme needs its OnAck callbacks delivered as individual
  // simulator events at the exact ACK instant. Schemes for which individual
  // ACKs never influence transmission — pure monitor-interval raters with no
  // binding congestion window, like the external-rate bridge the RL
  // environments drive — may return false: the simulator then applies ACK
  // bookkeeping lazily in per-flow FIFO order at the flow's next event (same
  // timestamps, same per-flow order, identical MI statistics), removing the
  // per-ACK event from the global scheduler's hot path. Window-based schemes
  // and rate-based schemes whose CwndPackets() can bind must return true.
  virtual bool NeedsPerAckEvents() const { return true; }
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_CC_INTERFACE_H_
