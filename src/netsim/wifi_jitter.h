// Deterministic wifi-style jitter model for the packet-level simulator: inside
// periodic burst windows (contention / interference episodes) a link's
// per-packet serialization time is stretched by a multiplier with uniform
// variation around it; outside the windows the link behaves exactly as before.
// The window schedule is a pure function of simulation time, mirroring
// FaultSpec: the only randomness is (a) the optional per-episode phase, drawn
// from the owning environment's Rng only when a jitter spec is configured, and
// (b) the per-packet service variation, drawn from the simulator's Rng only for
// packets serviced inside a window. Jitter-free links take no branch and
// consume no draws, so their episodes stay byte-identical
// (tests/golden_episode_test.cc pins this).
#ifndef MOCC_SRC_NETSIM_WIFI_JITTER_H_
#define MOCC_SRC_NETSIM_WIFI_JITTER_H_

namespace mocc {

struct WifiJitterSpec {
  // Burst windows repeat every `burst_period_s` and last `burst_duration_s`,
  // shifted by `phase_s`. Either being zero disables the model entirely.
  double burst_period_s = 0.0;
  double burst_duration_s = 0.0;

  // Inside a burst a packet's serialization time is multiplied by
  // service_slowdown * Uniform(1 - jitter_frac, 1 + jitter_frac).
  double service_slowdown = 3.0;
  double jitter_frac = 0.5;

  // Environments that set `randomize_phase` draw a fresh phase per episode from
  // their own Rng (bounded by MaxPeriodS), exactly like FaultSpec — and only
  // when a spec is configured, so jitter-free streams stay untouched.
  double phase_s = 0.0;
  bool randomize_phase = false;

  bool empty() const { return burst_period_s <= 0.0 || burst_duration_s <= 0.0; }

  double MaxPeriodS() const { return burst_period_s > 0.0 ? burst_period_s : 0.0; }

  // True iff `t` falls inside a burst window.
  bool BurstAt(double t) const;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_WIFI_JITTER_H_
