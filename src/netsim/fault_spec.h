// Deterministic link-fault schedules for the packet-level simulator. A FaultSpec
// describes periodic fault windows — total blackouts (link flaps), bursts of elevated
// random loss, and delay spikes — purely as a function of simulation time, so a
// fault-injected episode is exactly as reproducible as a clean one: the windows contain
// no random draws, and the only randomness (the optional per-episode phase) comes from
// the owning environment's seeded Rng stream. Scenarios attach a FaultSpec to a link via
// LinkSpec::fault; the simulator consults it at the existing loss/delay decision points.
#ifndef MOCC_SRC_NETSIM_FAULT_SPEC_H_
#define MOCC_SRC_NETSIM_FAULT_SPEC_H_

namespace mocc {

// Periodic fault windows on one link. Each fault kind repeats every `*_period_s`
// seconds and is active for the first `*_duration_s` seconds of its period, shifted by
// the shared `phase_s`. A period or duration of zero disables that fault kind.
struct FaultSpec {
  // Blackout / link flap: every data packet touching the link inside the window is
  // dropped (the link is down). ACKs are exempt, mirroring the simulator's existing
  // wire-loss exemption, so in-flight accounting for already-delivered data survives.
  double blackout_period_s = 0.0;
  double blackout_duration_s = 0.0;

  // Loss burst: inside the window the link's random wire-loss rate is raised to at
  // least `loss_burst_rate` (the burst never lowers a link's configured loss).
  double loss_burst_period_s = 0.0;
  double loss_burst_duration_s = 0.0;
  double loss_burst_rate = 0.0;

  // Delay spike: packets finishing serialization inside the window incur
  // `delay_spike_extra_s` of additional one-way propagation delay.
  double delay_spike_period_s = 0.0;
  double delay_spike_duration_s = 0.0;
  double delay_spike_extra_s = 0.0;

  // Shared phase offset for all windows. Environments that set `randomize_phase`
  // draw a fresh phase per episode from their own Rng so fault onsets do not always
  // align with episode starts; the draw happens only when a fault is configured, so
  // fault-free configurations keep their existing random streams untouched.
  double phase_s = 0.0;
  bool randomize_phase = false;

  // True iff no fault kind is configured; the simulator skips all fault checks.
  bool empty() const {
    return blackout_period_s <= 0.0 && loss_burst_period_s <= 0.0 &&
           delay_spike_period_s <= 0.0;
  }

  // Longest configured period (used to bound the randomized phase draw).
  double MaxPeriodS() const;

  bool BlackoutAt(double t) const;

  // Burst loss rate at time t: `loss_burst_rate` inside a burst window, 0 outside.
  double BurstLossRateAt(double t) const;

  double ExtraDelayAt(double t) const;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_FAULT_SPEC_H_
