#include "src/netsim/wifi_jitter.h"

#include <cmath>

namespace mocc {

bool WifiJitterSpec::BurstAt(double t) const {
  if (empty()) {
    return false;
  }
  double u = std::fmod(t - phase_s, burst_period_s);
  if (u < 0.0) {
    u += burst_period_s;
  }
  return u < burst_duration_s;
}

}  // namespace mocc
