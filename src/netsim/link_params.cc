#include "src/netsim/link_params.h"

#include <algorithm>
#include <fstream>

namespace mocc {

LinkParams LinkParamsRange::Sample(Rng* rng) const {
  LinkParams p;
  p.bandwidth_bps = rng->Uniform(min_bandwidth_bps, max_bandwidth_bps);
  p.one_way_delay_s = rng->Uniform(min_one_way_delay_s, max_one_way_delay_s);
  p.queue_capacity_pkts =
      static_cast<int>(rng->UniformInt(min_queue_pkts, max_queue_pkts));
  p.random_loss_rate = rng->Uniform(min_loss_rate, max_loss_rate);
  return p;
}

LinkParamsRange TrainingRange() {
  LinkParamsRange r;
  r.min_bandwidth_bps = 1e6;
  r.max_bandwidth_bps = 5e6;
  r.min_one_way_delay_s = 0.010;
  r.max_one_way_delay_s = 0.050;
  r.min_queue_pkts = 1;
  r.max_queue_pkts = 3000;
  r.min_loss_rate = 0.0;
  r.max_loss_rate = 0.03;
  return r;
}

LinkParamsRange TestingRange() {
  LinkParamsRange r;
  r.min_bandwidth_bps = 10e6;
  r.max_bandwidth_bps = 50e6;
  r.min_one_way_delay_s = 0.010;
  r.max_one_way_delay_s = 0.200;
  r.min_queue_pkts = 500;
  r.max_queue_pkts = 5000;
  r.min_loss_rate = 0.0;
  r.max_loss_rate = 0.10;
  return r;
}

void BandwidthTrace::AddStep(double time_s, double bandwidth_bps) {
  steps_.push_back({time_s, bandwidth_bps});
  std::sort(steps_.begin(), steps_.end(),
            [](const Step& a, const Step& b) { return a.time_s < b.time_s; });
}

double BandwidthTrace::BandwidthAt(double time_s, double fallback_bps) const {
  double bw = fallback_bps;
  for (const auto& step : steps_) {
    if (step.time_s <= time_s) {
      bw = step.bandwidth_bps;
    } else {
      break;
    }
  }
  return bw;
}

BandwidthTrace BandwidthTrace::Oscillating(double low_bps, double high_bps, double period_s,
                                           double duration_s) {
  BandwidthTrace trace;
  bool high = true;
  for (double t = 0.0; t < duration_s; t += period_s) {
    trace.AddStep(t, high ? high_bps : low_bps);
    high = !high;
  }
  return trace;
}

BandwidthTrace BandwidthTrace::RandomWalk(double low_bps, double high_bps, double period_s,
                                          double duration_s, Rng* rng) {
  BandwidthTrace trace;
  for (double t = 0.0; t < duration_s; t += period_s) {
    trace.AddStep(t, rng->Uniform(low_bps, high_bps));
  }
  return trace;
}

BandwidthTrace BandwidthTrace::FromMahimahiTimestamps(
    const std::vector<double>& timestamps_ms, double window_s) {
  BandwidthTrace trace;
  if (timestamps_ms.empty() || window_s <= 0.0) {
    return trace;
  }
  const double window_ms = window_s * 1e3;
  const double end_ms = *std::max_element(timestamps_ms.begin(), timestamps_ms.end());
  const size_t windows = static_cast<size_t>(end_ms / window_ms) + 1;
  std::vector<int> counts(windows, 0);
  for (double t : timestamps_ms) {
    const size_t w = std::min(windows - 1, static_cast<size_t>(t / window_ms));
    ++counts[w];
  }
  for (size_t w = 0; w < windows; ++w) {
    const double bits = static_cast<double>(counts[w]) * kDefaultPacketSizeBits;
    trace.AddStep(static_cast<double>(w) * window_s, bits / window_s);
  }
  return trace;
}

void BandwidthTrace::Serialize(BinaryWriter* w) const {
  w->WriteU64(steps_.size());
  for (const Step& step : steps_) {
    w->WriteDouble(step.time_s);
    w->WriteDouble(step.bandwidth_bps);
  }
}

bool BandwidthTrace::Deserialize(BinaryReader* r) {
  const uint64_t n = r->ReadU64();
  if (!r->ok() || n > (1ULL << 24)) {
    return false;
  }
  steps_.clear();
  steps_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Step step;
    step.time_s = r->ReadDouble();
    step.bandwidth_bps = r->ReadDouble();
    steps_.push_back(step);
  }
  return r->ok();
}

BandwidthTrace ResolveEpisodeTrace(
    const std::function<BandwidthTrace(const LinkParams&, Rng*)>& generator,
    bool cache_per_env, bool* cached_valid, BandwidthTrace* cached,
    const BandwidthTrace& fixed_trace, const LinkParams& link, Rng* rng) {
  if (generator) {
    if (cache_per_env) {
      if (!*cached_valid) {
        *cached = generator(link, rng);
        *cached_valid = true;
      }
      return *cached;
    }
    return generator(link, rng);
  }
  return fixed_trace;
}

BandwidthTrace BandwidthTrace::FromMahimahiFile(const std::string& path, double window_s) {
  std::ifstream in(path);
  if (!in) {
    return BandwidthTrace();
  }
  std::vector<double> timestamps_ms;
  double value = 0.0;
  while (in >> value) {
    timestamps_ms.push_back(value);
  }
  return FromMahimahiTimestamps(timestamps_ms, window_s);
}

}  // namespace mocc
