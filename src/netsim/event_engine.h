// The fast event core under the packet-level simulator: a pooled, cache-friendly
// 4-ary min-heap of by-value event structs, and a power-of-two ring buffer for
// droptail link queues.
//
// Why not std::priority_queue + std::deque (the pre-refactor engine):
//   - a 4-ary heap halves the tree depth of a binary heap and keeps all four
//     children of a node in (at most) two cache lines, cutting the pointer-free
//     sift traffic that dominates push/pop at simulator event sizes;
//   - events are 40-byte PODs stored by value in one flat vector whose capacity
//     is reused across the whole simulation (a "pool" in the allocation sense:
//     steady state performs zero heap allocation per event);
//   - the ring buffer replaces std::deque's chunked allocation with one
//     contiguous power-of-two array and O(1) monotone head/tail indices, which
//     is also exactly the O(1) occupancy count droptail admission needs.
//
// Ordering contract: strict weak order by (time_s, order). `order` is a unique
// monotone sequence number assigned at scheduling time, so the pop sequence is a
// total order — any correct heap yields the identical dispatch sequence, which
// is what makes the engine swap bit-compatible with the old priority_queue.
#ifndef MOCC_SRC_NETSIM_EVENT_ENGINE_H_
#define MOCC_SRC_NETSIM_EVENT_ENGINE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mocc {

// One scheduled simulator event. POD, 40 bytes: the heap moves these by value.
struct SimEvent {
  double time_s;
  uint64_t order;
  double send_time_s;
  int64_t seq;
  int32_t flow_id;
  uint8_t type;    // PacketNetwork::EvType
  uint8_t hop;     // index into the flow's (data or ACK) path for packet events
  uint8_t is_ack;  // 1 when this packet event travels the reverse (ACK) path
  uint8_t ecn;     // 1 when the packet carries an ECN congestion mark
};

// Min-heap of scheduled events ordered by (time_s, order), with 4 children per
// node. The heap itself holds only 24-byte keys {time, order, pool slot}; the
// 24-byte cold payload (seq, send time, flow, type) lives in a slot pool indexed
// by the key, so sift-up/down moves 40% less data and the branchy comparison
// walk stays within fewer cache lines. Slots are recycled through a free list —
// zero allocation per event in steady state.
class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  void reserve(size_t n) {
    heap_.reserve(n);
    pool_.reserve(n);
    free_.reserve(n);
  }

  // Time of the earliest event (callers use it for run-horizon checks).
  double top_time() const {
    assert(!heap_.empty());
    return heap_[0].time_s;
  }

  void push(const SimEvent& ev) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    Payload& payload = pool_[slot];
    payload.send_time_s = ev.send_time_s;
    payload.seq = ev.seq;
    payload.flow_id = ev.flow_id;
    payload.type = ev.type;
    payload.hop = ev.hop;
    payload.is_ack = ev.is_ack;
    payload.ecn = ev.ecn;

    Key key;
    key.time_s = ev.time_s;
    key.order = ev.order;
    key.slot = slot;
    size_t i = heap_.size();
    heap_.push_back(key);
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!Before(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  // Removes and returns the earliest event.
  SimEvent pop() {
    assert(!heap_.empty());
    const Key top = heap_[0];
    const Payload& payload = pool_[top.slot];
    SimEvent ev;
    ev.time_s = top.time_s;
    ev.order = top.order;
    ev.send_time_s = payload.send_time_s;
    ev.seq = payload.seq;
    ev.flow_id = payload.flow_id;
    ev.type = payload.type;
    ev.hop = payload.hop;
    ev.is_ack = payload.is_ack;
    ev.ecn = payload.ecn;
    free_.push_back(top.slot);

    const size_t last = heap_.size() - 1;
    heap_[0] = heap_[last];
    heap_.pop_back();
    if (last > 1) {
      SiftDown();
    }
    return ev;
  }

 private:
  struct Key {
    double time_s;
    uint64_t order;
    uint32_t slot;
    uint32_t pad = 0;
  };

  struct Payload {
    double send_time_s;
    int64_t seq;
    int32_t flow_id;
    uint8_t type;
    uint8_t hop;
    uint8_t is_ack;
    uint8_t ecn;
  };

  static bool Before(const Key& a, const Key& b) {
    if (a.time_s != b.time_s) {
      return a.time_s < b.time_s;
    }
    return a.order < b.order;
  }

  void SiftDown() {
    const size_t count = heap_.size();
    size_t i = 0;
    for (;;) {
      const size_t first_child = (i << 2) + 1;
      if (first_child >= count) {
        break;
      }
      size_t best = first_child;
      const size_t end = first_child + 4 < count ? first_child + 4 : count;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!Before(heap_[best], heap_[i])) {
        break;
      }
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Key> heap_;
  std::vector<Payload> pool_;
  std::vector<uint32_t> free_;
};

// Fixed-layout FIFO over a power-of-two buffer with monotone 64-bit head/tail
// cursors (masked on access). Grows by doubling when full; in steady state a
// droptail queue never exceeds its configured capacity, so growth happens at
// most a handful of times per simulation.
template <typename T>
class RingBuffer {
 public:
  RingBuffer() { Reallocate(kInitialCapacity); }

  bool empty() const { return head_ == tail_; }
  size_t size() const { return static_cast<size_t>(tail_ - head_); }

  void push_back(const T& value) {
    if (size() == buffer_.size()) {
      Reallocate(buffer_.size() * 2);
    }
    buffer_[tail_ & mask_] = value;
    ++tail_;
  }

  const T& front() const {
    assert(!empty());
    return buffer_[head_ & mask_];
  }

  void pop_front() {
    assert(!empty());
    ++head_;
  }

  void clear() { head_ = tail_ = 0; }

 private:
  static constexpr size_t kInitialCapacity = 64;

  void Reallocate(size_t capacity) {
    std::vector<T> next(capacity);
    const size_t count = size();
    for (size_t i = 0; i < count; ++i) {
      next[i] = buffer_[(head_ + i) & mask_];
    }
    buffer_ = std::move(next);
    head_ = 0;
    tail_ = count;
    mask_ = capacity - 1;
  }

  std::vector<T> buffer_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_EVENT_ENGINE_H_
