// Fluid (per-monitor-interval) model of a single flow on a bottleneck link.
//
// This is the training substrate: the RL environment steps this model once per monitor
// interval, exactly like the OpenAI-Gym/Aurora simulator the paper trains in (§5). It
// captures the first-order effects that matter for congestion control — queue build-up
// and drain, queueing delay, droptail overflow and random loss — without per-packet
// events, making offline training orders of magnitude faster than packet simulation.
#ifndef MOCC_SRC_NETSIM_FLUID_LINK_H_
#define MOCC_SRC_NETSIM_FLUID_LINK_H_

#include "src/common/rng.h"
#include "src/netsim/cc_interface.h"
#include "src/netsim/link_params.h"

namespace mocc {

class FluidLink {
 public:
  // `seed` drives the random-loss process. If `stochastic_loss` is false the expected
  // loss count is used instead of a sampled one (useful for deterministic tests).
  FluidLink(const LinkParams& params, uint64_t seed, bool stochastic_loss = true);

  // Resets to a new link, clearing the queue and the clock.
  void Reset(const LinkParams& params);

  // Installs a bandwidth schedule; pass an empty trace to return to constant bandwidth.
  void SetBandwidthTrace(BandwidthTrace trace) { trace_ = std::move(trace); }

  // Advances one monitor interval of `duration_s` at offered rate `send_rate_bps` and
  // returns the resulting MI statistics. Requires duration_s > 0 and send_rate_bps >= 0.
  //
  // Latency modelling: on top of the deterministic backlog delay, the reported RTT
  // includes the steady-state M/D/1 waiting time ρ/(2(1-ρ))·serialization — the
  // stochastic queueing a packet link exhibits as utilization approaches capacity. This
  // gives latency-vs-throughput its real, smooth tradeoff (the paper's Figure 1b curve)
  // instead of a cliff at ρ = 1.
  MonitorReport Step(double send_rate_bps, double duration_s);

  const LinkParams& params() const { return params_; }
  double now_s() const { return now_s_; }
  double queue_bits() const { return queue_bits_; }

  // The loss-process generator. Deliberately NOT reseeded by Reset (episodes share
  // one stream); exposed so training checkpoints can persist and restore it.
  Rng* mutable_rng() { return &rng_; }
  const Rng& rng() const { return rng_; }

  // Current bandwidth, honouring the trace.
  double CurrentBandwidthBps() const;

 private:
  LinkParams params_;
  BandwidthTrace trace_;
  Rng rng_;
  bool stochastic_loss_;
  double now_s_ = 0.0;
  double queue_bits_ = 0.0;
  double min_rtt_seen_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_NETSIM_FLUID_LINK_H_
