#include "src/netsim/aqm.h"

#include <algorithm>
#include <cmath>

namespace mocc {

double RedMarkProbability(const AqmSpec& spec, double avg_queue_pkts) {
  if (avg_queue_pkts < spec.red_min_pkts) {
    return 0.0;
  }
  if (avg_queue_pkts >= spec.red_max_pkts) {
    return 1.0;
  }
  const double span = std::max(1e-9, spec.red_max_pkts - spec.red_min_pkts);
  return spec.red_max_prob * (avg_queue_pkts - spec.red_min_pkts) / span;
}

double CodelControlLawS(double t, double interval_s, int count) {
  return t + interval_s / std::sqrt(static_cast<double>(std::max(1, count)));
}

AqmAction RedOnEnqueue(const AqmSpec& spec, AqmState* state, int inst_queue_pkts,
                       bool ecn_capable, Rng* rng) {
  state->avg_queue_pkts +=
      spec.red_weight * (static_cast<double>(inst_queue_pkts) - state->avg_queue_pkts);
  const double p = RedMarkProbability(spec, state->avg_queue_pkts);
  if (p <= 0.0) {
    return AqmAction::kForward;
  }
  if (p >= 1.0) {
    // At or above the max threshold RED drops unconditionally, ECN or not
    // (gentle-RED's forced-drop region) — and consumes no randomness.
    return AqmAction::kDrop;
  }
  if (!rng->Bernoulli(p)) {
    return AqmAction::kForward;
  }
  return spec.ecn && ecn_capable ? AqmAction::kMark : AqmAction::kDrop;
}

AqmAction CodelOnDequeue(const AqmSpec& spec, AqmState* state, double now_s,
                         double sojourn_s, int backlog_pkts, bool ecn_capable) {
  // Below target (or the queue is effectively empty behind this packet): leave
  // the dropping state and restart the above-target clock.
  if (sojourn_s < spec.codel_target_s || backlog_pkts <= 1) {
    state->first_above_time_s = 0.0;
    if (state->dropping) {
      state->dropping = false;
      state->last_count = state->count;
    }
    return AqmAction::kForward;
  }
  if (!state->dropping) {
    if (state->first_above_time_s <= 0.0) {
      // Start the grace interval: sojourn must stay above target this long.
      state->first_above_time_s = now_s + spec.codel_interval_s;
      return AqmAction::kForward;
    }
    if (now_s < state->first_above_time_s) {
      return AqmAction::kForward;
    }
    // Enter the dropping state. Re-entering soon after leaving resumes at a
    // reduced count instead of 1, so persistent overload ramps up quickly.
    state->dropping = true;
    state->count = (state->last_count > 2 &&
                    now_s - state->drop_next_s < 8.0 * spec.codel_interval_s)
                       ? state->last_count - 2
                       : 1;
    state->drop_next_s = CodelControlLawS(now_s, spec.codel_interval_s, state->count);
    return spec.ecn && ecn_capable ? AqmAction::kMark : AqmAction::kDrop;
  }
  if (now_s >= state->drop_next_s) {
    ++state->count;
    state->drop_next_s =
        CodelControlLawS(state->drop_next_s, spec.codel_interval_s, state->count);
    return spec.ecn && ecn_capable ? AqmAction::kMark : AqmAction::kDrop;
  }
  return AqmAction::kForward;
}

}  // namespace mocc
