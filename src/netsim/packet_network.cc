#include "src/netsim/packet_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {
namespace {

constexpr double kRtoCheckPeriodS = 0.2;
constexpr double kMinPacingRateBps = 1e4;
// Caps the packets a rate-based flow may keep in flight, bounding simulator memory when
// a scheme badly overshoots (PCC-style schemes have no congestion window).
constexpr int64_t kMaxInflightPkts = 200000;

}  // namespace

PacketNetwork::PacketNetwork(const LinkParams& params, uint64_t seed)
    : params_(params), rng_(seed) {}

int PacketNetwork::AddFlow(std::unique_ptr<CongestionControl> cc, FlowOptions options) {
  assert(cc != nullptr);
  auto flow = std::make_unique<Flow>();
  flow->cc = std::move(cc);
  flow->options = options;
  flow->record.keep_delivery_times = options.keep_delivery_times;
  flows_.push_back(std::move(flow));
  const int id = static_cast<int>(flows_.size()) - 1;
  Schedule(options.start_time_s, EvType::kFlowStart, id);
  if (std::isfinite(options.stop_time_s)) {
    Schedule(options.stop_time_s, EvType::kFlowStop, id);
  }
  return id;
}

void PacketNetwork::Run(double until_s) {
  while (!events_.empty() && events_.top().time_s <= until_s) {
    const Event ev = events_.top();
    events_.pop();
    now_s_ = ev.time_s;
    Dispatch(ev);
  }
  now_s_ = std::max(now_s_, until_s);
}

void PacketNetwork::RunUntil(const std::function<bool()>& stop, double max_time_s) {
  int check_countdown = 0;
  while (!events_.empty() && events_.top().time_s <= max_time_s) {
    if (check_countdown-- <= 0) {
      if (stop()) {
        return;
      }
      check_countdown = 32;
    }
    const Event ev = events_.top();
    events_.pop();
    now_s_ = ev.time_s;
    Dispatch(ev);
  }
  now_s_ = std::max(now_s_, std::min(max_time_s, now_s_));
}

void PacketNetwork::PauseFlow(int flow_id) { flows_[flow_id]->paused = true; }

void PacketNetwork::ResumeFlow(int flow_id) {
  Flow& flow = *flows_[flow_id];
  const bool was_paused = flow.paused;
  flow.paused = false;
  if (!was_paused || !flow.active) {
    return;
  }
  if (flow.cc->Mode() == CcMode::kRateBased) {
    if (!flow.pace_scheduled) {
      flow.pace_scheduled = true;
      Schedule(now_s_, EvType::kPacedSend, flow_id);
    }
  } else {
    TrySendWindowed(flow_id, now_s_);
  }
}

int PacketNetwork::QueueLengthPkts() const {
  return static_cast<int>(queue_.size()) + (server_busy_ ? 1 : 0);
}

void PacketNetwork::Schedule(double time_s, EvType type, int flow_id, int64_t seq,
                             double send_time_s) {
  events_.push(Event{time_s, next_order_++, type, flow_id, seq, send_time_s});
}

void PacketNetwork::Dispatch(const Event& ev) {
  switch (ev.type) {
    case EvType::kFlowStart:
      HandleFlowStart(ev);
      return;
    case EvType::kFlowStop:
      flows_[ev.flow_id]->active = false;
      return;
    case EvType::kPacedSend:
      HandlePacedSend(ev);
      return;
    case EvType::kLinkDone:
      HandleLinkDone(ev);
      return;
    case EvType::kDelivery: {
      Flow& flow = *flows_[ev.flow_id];
      flow.record.RecordDelivery(now_s_);
      Schedule(now_s_ + params_.one_way_delay_s + flow.options.extra_one_way_delay_s,
               EvType::kAck, ev.flow_id, ev.seq, ev.send_time_s);
      return;
    }
    case EvType::kAck:
      HandleAck(ev);
      return;
    case EvType::kLossNotice:
      HandleLossNotice(ev);
      return;
    case EvType::kMonitor:
      HandleMonitor(ev);
      return;
    case EvType::kRtoCheck:
      HandleRtoCheck(ev);
      return;
  }
}

void PacketNetwork::HandleFlowStart(const Event& ev) {
  Flow& flow = *flows_[ev.flow_id];
  flow.started = true;
  flow.active = true;
  flow.last_progress_s = now_s_;
  flow.mi_start_s = now_s_;
  flow.cc->OnFlowStart(now_s_);
  if (flow.cc->Mode() == CcMode::kRateBased) {
    flow.pace_scheduled = true;
    Schedule(now_s_, EvType::kPacedSend, ev.flow_id);
  } else {
    TrySendWindowed(ev.flow_id, now_s_);
  }
  Schedule(now_s_ + MiDuration(flow), EvType::kMonitor, ev.flow_id);
  Schedule(now_s_ + kRtoCheckPeriodS, EvType::kRtoCheck, ev.flow_id);
}

bool PacketNetwork::FlowMaySend(const Flow& flow) const {
  return flow.active && !flow.paused;
}

void PacketNetwork::HandlePacedSend(const Event& ev) {
  Flow& flow = *flows_[ev.flow_id];
  if (!flow.active || flow.paused) {
    flow.pace_scheduled = false;
    return;
  }
  double rate = flow.cc->PacingRateBps();
  if (rate <= 0.0) {
    rate = flow.options.initial_rate_bps;
  }
  rate = std::max(rate, kMinPacingRateBps);
  const double cwnd_cap = flow.cc->CwndPackets();
  if (static_cast<double>(flow.inflight) < cwnd_cap && flow.inflight < kMaxInflightPkts) {
    SendPacket(ev.flow_id, now_s_);
  }
  // Small pacing jitter prevents unrealistic phase locking between identical flows.
  const double interval = static_cast<double>(kDefaultPacketSizeBits) / rate *
                          rng_.Uniform(0.98, 1.02);
  Schedule(now_s_ + interval, EvType::kPacedSend, ev.flow_id);
}

void PacketNetwork::SendPacket(int flow_id, double now_s) {
  Flow& flow = *flows_[flow_id];
  const int64_t seq = flow.next_seq++;
  ++flow.inflight;
  ++flow.mi_sent;
  ++flow.record.total_sent;
  if (flow.record.first_send_time_s < 0.0) {
    flow.record.first_send_time_s = now_s;
  }
  // Random (non-congestion) wire loss.
  if (params_.random_loss_rate > 0.0 && rng_.Bernoulli(params_.random_loss_rate)) {
    Schedule(now_s + LossDetectionDelay(flow), EvType::kLossNotice, flow_id, seq, now_s);
    return;
  }
  // Droptail: the buffer holds packets waiting behind the one in service.
  if (server_busy_ && static_cast<int>(queue_.size()) >= params_.queue_capacity_pkts) {
    Schedule(now_s + LossDetectionDelay(flow), EvType::kLossNotice, flow_id, seq, now_s);
    return;
  }
  queue_.push_back(QueuedPacket{flow_id, seq, now_s});
  if (!server_busy_) {
    StartService(now_s);
  }
}

void PacketNetwork::StartService(double now_s) {
  assert(!queue_.empty());
  const QueuedPacket pkt = queue_.front();
  queue_.pop_front();
  server_busy_ = true;
  const double bw = std::max(1.0, BandwidthNow(now_s));
  const double txn_s = static_cast<double>(kDefaultPacketSizeBits) / bw;
  Schedule(now_s + txn_s, EvType::kLinkDone, pkt.flow_id, pkt.seq, pkt.send_time_s);
}

void PacketNetwork::HandleLinkDone(const Event& ev) {
  Schedule(now_s_ + params_.one_way_delay_s +
               flows_[ev.flow_id]->options.extra_one_way_delay_s,
           EvType::kDelivery, ev.flow_id, ev.seq, ev.send_time_s);
  if (!queue_.empty()) {
    StartService(now_s_);
  } else {
    server_busy_ = false;
  }
}

void PacketNetwork::HandleAck(const Event& ev) {
  Flow& flow = *flows_[ev.flow_id];
  flow.inflight = std::max<int64_t>(0, flow.inflight - 1);
  const double rtt = now_s_ - ev.send_time_s;
  flow.srtt_s = flow.srtt_s <= 0.0 ? rtt : 0.875 * flow.srtt_s + 0.125 * rtt;
  flow.min_rtt_s = flow.min_rtt_s <= 0.0 ? rtt : std::min(flow.min_rtt_s, rtt);
  flow.record.min_rtt_s = flow.min_rtt_s;
  flow.last_progress_s = now_s_;
  ++flow.record.total_acked;
  ++flow.mi_acked;
  flow.mi_rtt_sum_s += rtt;
  ++flow.mi_rtt_count;
  flow.record.RecordAck(now_s_, kDefaultPacketSizeBits);
  AckInfo ack;
  ack.send_time_s = ev.send_time_s;
  ack.ack_time_s = now_s_;
  ack.rtt_s = rtt;
  ack.size_bits = kDefaultPacketSizeBits;
  ack.seq = ev.seq;
  flow.cc->OnAck(ack);
  if (flow.cc->Mode() == CcMode::kWindowBased && FlowMaySend(flow)) {
    TrySendWindowed(ev.flow_id, now_s_);
  }
}

void PacketNetwork::HandleLossNotice(const Event& ev) {
  Flow& flow = *flows_[ev.flow_id];
  flow.inflight = std::max<int64_t>(0, flow.inflight - 1);
  ++flow.record.total_lost;
  ++flow.mi_lost;
  LossInfo loss;
  loss.detect_time_s = now_s_;
  loss.seq = ev.seq;
  flow.cc->OnPacketLost(loss);
  if (flow.cc->Mode() == CcMode::kWindowBased && FlowMaySend(flow)) {
    TrySendWindowed(ev.flow_id, now_s_);
  }
}

void PacketNetwork::TrySendWindowed(int flow_id, double now_s) {
  Flow& flow = *flows_[flow_id];
  // Cap the burst so a pathological window cannot wedge the event loop.
  int budget = 10000;
  while (FlowMaySend(flow) &&
         static_cast<double>(flow.inflight) < std::max(1.0, flow.cc->CwndPackets()) &&
         budget-- > 0) {
    SendPacket(flow_id, now_s);
  }
}

void PacketNetwork::HandleMonitor(const Event& ev) {
  Flow& flow = *flows_[ev.flow_id];
  if (!flow.started) {
    return;
  }
  const double duration = now_s_ - flow.mi_start_s;
  if (duration > 0.0) {
    MonitorReport report;
    report.start_time_s = flow.mi_start_s;
    report.duration_s = duration;
    report.packets_sent = flow.mi_sent;
    report.packets_acked = flow.mi_acked;
    report.packets_lost = flow.mi_lost;
    report.send_rate_bps =
        static_cast<double>(flow.mi_sent * kDefaultPacketSizeBits) / duration;
    report.throughput_bps =
        static_cast<double>(flow.mi_acked * kDefaultPacketSizeBits) / duration;
    report.avg_rtt_s =
        flow.mi_rtt_count > 0 ? flow.mi_rtt_sum_s / static_cast<double>(flow.mi_rtt_count)
                              : flow.srtt_s;
    report.min_rtt_s = flow.min_rtt_s > 0.0 ? flow.min_rtt_s : params_.BaseRttS();
    const int64_t denom = flow.mi_acked + flow.mi_lost;
    report.loss_rate =
        denom > 0 ? static_cast<double>(flow.mi_lost) / static_cast<double>(denom) : 0.0;
    flow.cc->OnMonitorInterval(report);
    flow.record.RecordMi(report);
  }
  flow.mi_start_s = now_s_;
  flow.mi_sent = 0;
  flow.mi_acked = 0;
  flow.mi_lost = 0;
  flow.mi_rtt_sum_s = 0.0;
  flow.mi_rtt_count = 0;
  if (flow.active) {
    Schedule(now_s_ + MiDuration(flow), EvType::kMonitor, ev.flow_id);
  }
}

void PacketNetwork::HandleRtoCheck(const Event& ev) {
  Flow& flow = *flows_[ev.flow_id];
  if (!flow.active) {
    return;
  }
  const double rto = std::max(1.0, 3.0 * std::max(flow.srtt_s, params_.BaseRttS()));
  if (flow.inflight > 0 && now_s_ - flow.last_progress_s > rto) {
    // Everything in flight is presumed lost; restart the window from scratch.
    flow.record.total_lost += flow.inflight;
    flow.inflight = 0;
    flow.last_progress_s = now_s_;
    flow.cc->OnTimeout(now_s_);
    if (flow.cc->Mode() == CcMode::kWindowBased && FlowMaySend(flow)) {
      TrySendWindowed(ev.flow_id, now_s_);
    }
  }
  Schedule(now_s_ + kRtoCheckPeriodS, EvType::kRtoCheck, ev.flow_id);
}

double PacketNetwork::MiDuration(const Flow& flow) const {
  if (flow.options.mi_fixed_duration_s > 0.0) {
    return flow.options.mi_fixed_duration_s;
  }
  const double rtt = flow.srtt_s > 0.0 ? flow.srtt_s : params_.BaseRttS();
  return std::max(flow.options.mi_min_duration_s, flow.options.mi_rtt_multiple * rtt);
}

double PacketNetwork::LossDetectionDelay(const Flow& flow) const {
  return std::max(flow.srtt_s, params_.BaseRttS());
}

double PacketNetwork::BandwidthNow(double t) const {
  return trace_.BandwidthAt(t, params_.bandwidth_bps);
}

}  // namespace mocc
