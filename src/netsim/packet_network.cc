#include "src/netsim/packet_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {
namespace {

constexpr double kRtoCheckPeriodS = 0.2;
constexpr double kMinPacingRateBps = 1e4;
// Caps the packets a rate-based flow may keep in flight, bounding simulator memory when
// a scheme badly overshoots (PCC-style schemes have no congestion window).
constexpr int64_t kMaxInflightPkts = 200000;

}  // namespace

PacketNetwork::PacketNetwork(const NetworkTopology& topology, uint64_t seed)
    : rng_(seed) {
  assert(!topology.links.empty());
  links_.reserve(topology.links.size());
  for (const LinkSpec& spec : topology.links) {
    LinkState link;
    link.spec = spec;
    links_.push_back(std::move(link));
  }
  events_.reserve(256);
}

PacketNetwork::PacketNetwork(const LinkParams& params, uint64_t seed)
    : PacketNetwork(NetworkTopology::SingleBottleneck(params), seed) {}

int PacketNetwork::AddFlow(std::unique_ptr<CongestionControl> cc, FlowOptions options) {
  assert(cc != nullptr);
  flows_.emplace_back();
  Flow& flow = flows_.back();
  flow.cc = std::move(cc);
  flow.mode = flow.cc->Mode();
  flow.record.keep_delivery_times = options.keep_delivery_times;
  // Compile the path vectors into fixed arrays (empty forward path = link 0).
  // Invalid specifications are clamped in release builds too — a malformed
  // TopologySpec must degrade to a shorter/rerouted path, never to an
  // out-of-bounds write or a garbage link index (the asserts still name the
  // bug in debug builds).
  auto compile_path = [this](const std::vector<int>& source,
                             std::array<uint8_t, kMaxPathHops>* dest) {
    assert(source.size() <= static_cast<size_t>(kMaxPathHops));
    const size_t count = std::min(source.size(), static_cast<size_t>(kMaxPathHops));
    for (size_t i = 0; i < count; ++i) {
      assert(source[i] >= 0 && source[i] < static_cast<int>(links_.size()));
      const int link_id =
          std::clamp(source[i], 0, static_cast<int>(links_.size()) - 1);
      (*dest)[i] = static_cast<uint8_t>(link_id);
    }
    return static_cast<uint8_t>(count);
  };
  if (options.path.empty()) {
    flow.path[0] = 0;
    flow.path_len = 1;
  } else {
    flow.path_len = compile_path(options.path, &flow.path);
  }
  flow.ack_path_len = compile_path(options.ack_path, &flow.ack_path);
  // The uncongested reverse path mirrors the forward propagation delays; the
  // flow's base RTT is propagation both ways (per-flow extra delay excluded,
  // matching the historical dumbbell arithmetic bit for bit).
  double forward_delay = 0.0;
  for (int i = 0; i < flow.path_len; ++i) {
    forward_delay += links_[flow.path[i]].spec.prop_delay_s;
  }
  flow.reverse_delay_s = forward_delay;
  flow.base_rtt_s = 2.0 * forward_delay;
  flow.defer_acks = flow.ack_path_len == 0 && !flow.cc->NeedsPerAckEvents();
  flow.options = std::move(options);

  const int id = static_cast<int>(flows_.size()) - 1;
  Schedule(flow.options.start_time_s, EvType::kFlowStart, id);
  if (std::isfinite(flow.options.stop_time_s)) {
    Schedule(flow.options.stop_time_s, EvType::kFlowStop, id);
  }
  return id;
}

void PacketNetwork::Run(double until_s) {
  while (!events_.empty() && events_.top_time() <= until_s) {
    const SimEvent ev = events_.pop();
    now_s_ = ev.time_s;
    Dispatch(ev);
  }
  now_s_ = std::max(now_s_, until_s);
  // Coalesced ACKs due within the horizon but after their flow's last event.
  DrainAllPendingAcks(until_s);
}

void PacketNetwork::RunUntil(const std::function<bool()>& stop, double max_time_s) {
  int check_countdown = 0;
  while (!events_.empty() && events_.top_time() <= max_time_s) {
    if (check_countdown-- <= 0) {
      DrainAllPendingAcks(now_s_);  // stop predicates often inspect flow records
      if (stop()) {
        return;
      }
      check_countdown = kStopCheckEvents;
    }
    const SimEvent ev = events_.pop();
    now_s_ = ev.time_s;
    Dispatch(ev);
  }
  // Every per-ACK event with time <= max_time_s would have been dispatched by
  // the loop above; coalesced ACK arrivals within the horizon must be applied
  // too before the caller inspects the flow records.
  DrainAllPendingAcks(max_time_s);
}

void PacketNetwork::PauseFlow(int flow_id) {
  flows_[static_cast<size_t>(flow_id)].paused = true;
}

void PacketNetwork::ResumeFlow(int flow_id) {
  Flow& flow = flows_[static_cast<size_t>(flow_id)];
  const bool was_paused = flow.paused;
  flow.paused = false;
  if (!was_paused || !flow.active) {
    return;
  }
  if (flow.mode == CcMode::kRateBased) {
    if (!flow.pace_scheduled) {
      flow.pace_scheduled = true;
      Schedule(now_s_, EvType::kPacedSend, flow_id);
    }
  } else {
    TrySendWindowed(flow_id, now_s_);
  }
}

int PacketNetwork::QueueLengthPkts(int link_id) const {
  const LinkState& link = links_[static_cast<size_t>(link_id)];
  return static_cast<int>(link.queue.size()) + (link.busy ? 1 : 0);
}

void PacketNetwork::Schedule(double time_s, EvType type, int flow_id, int64_t seq,
                             double send_time_s, uint8_t hop, uint8_t is_ack,
                             uint8_t ecn) {
  SimEvent ev;
  ev.time_s = time_s;
  ev.order = next_order_++;
  ev.send_time_s = send_time_s;
  ev.seq = seq;
  ev.flow_id = flow_id;
  ev.type = static_cast<uint8_t>(type);
  ev.hop = hop;
  ev.is_ack = is_ack;
  ev.ecn = ecn;
  events_.push(ev);
}

void PacketNetwork::ScheduleLoss(int flow_id, int64_t seq, double send_time_s,
                                 double now_s) {
  const Flow& flow = flows_[static_cast<size_t>(flow_id)];
  Schedule(now_s + LossDetectionDelay(flow), EvType::kLossNotice, flow_id, seq,
           send_time_s);
}

void PacketNetwork::Dispatch(const SimEvent& ev) {
  Flow& target = flows_[static_cast<size_t>(ev.flow_id)];
  if (target.defer_acks && !target.pending_acks.empty()) {
    DrainPendingAcks(&target, now_s_);
  }
  switch (static_cast<EvType>(ev.type)) {
    case EvType::kFlowStart:
      HandleFlowStart(ev);
      return;
    case EvType::kFlowStop:
      flows_[static_cast<size_t>(ev.flow_id)].active = false;
      return;
    case EvType::kPacedSend:
      HandlePacedSend(ev);
      return;
    case EvType::kLinkDone:
      HandleLinkDone(ev);
      return;
    case EvType::kHopArrive:
      HandleHopArrive(ev);
      return;
    case EvType::kAck:
      HandleAck(ev);
      return;
    case EvType::kLossNotice:
      HandleLossNotice(ev);
      return;
    case EvType::kMonitor:
      HandleMonitor(ev);
      return;
    case EvType::kRtoCheck:
      HandleRtoCheck(ev);
      return;
  }
}

void PacketNetwork::HandleFlowStart(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  flow.started = true;
  flow.active = true;
  flow.last_progress_s = now_s_;
  flow.mi_start_s = now_s_;
  flow.cc->OnFlowStart(now_s_);
  if (flow.mode == CcMode::kRateBased) {
    flow.pace_scheduled = true;
    Schedule(now_s_, EvType::kPacedSend, ev.flow_id);
  } else {
    TrySendWindowed(ev.flow_id, now_s_);
  }
  Schedule(now_s_ + MiDuration(flow), EvType::kMonitor, ev.flow_id);
  Schedule(now_s_ + kRtoCheckPeriodS, EvType::kRtoCheck, ev.flow_id);
}

bool PacketNetwork::FlowMaySend(const Flow& flow) const {
  return flow.active && !flow.paused;
}

void PacketNetwork::HandlePacedSend(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  if (!flow.active || flow.paused) {
    flow.pace_scheduled = false;
    return;
  }
  double rate = flow.cc->PacingRateBps();
  if (rate <= 0.0) {
    rate = flow.options.initial_rate_bps;
  }
  rate = std::max(rate, kMinPacingRateBps);
  const double cwnd_cap = flow.cc->CwndPackets();
  if (static_cast<double>(flow.inflight) < cwnd_cap && flow.inflight < kMaxInflightPkts) {
    SendPacket(ev.flow_id, now_s_);
  }
  // Small pacing jitter prevents unrealistic phase locking between identical flows.
  const double interval = static_cast<double>(kDefaultPacketSizeBits) / rate *
                          rng_.Uniform(0.98, 1.02);
  Schedule(now_s_ + interval, EvType::kPacedSend, ev.flow_id);
}

void PacketNetwork::SendPacket(int flow_id, double now_s) {
  Flow& flow = flows_[static_cast<size_t>(flow_id)];
  const int64_t seq = flow.next_seq++;
  ++flow.inflight;
  ++flow.mi_sent;
  ++flow.record.total_sent;
  if (flow.record.first_send_time_s < 0.0) {
    flow.record.first_send_time_s = now_s;
  }
  // Random (non-congestion) wire loss at the first link, plus any injected fault
  // window. With no fault configured the historical code path (and its Rng draw
  // sequence) is untouched, keeping clean episodes bit-identical.
  const LinkSpec& first = links_[flow.path[0]].spec;
  if (first.fault.empty()) {
    if (first.random_loss_rate > 0.0 && rng_.Bernoulli(first.random_loss_rate)) {
      Schedule(now_s + LossDetectionDelay(flow), EvType::kLossNotice, flow_id, seq, now_s);
      return;
    }
  } else {
    if (first.fault.BlackoutAt(now_s)) {
      Schedule(now_s + LossDetectionDelay(flow), EvType::kLossNotice, flow_id, seq, now_s);
      return;
    }
    const double loss_rate =
        std::max(first.random_loss_rate, first.fault.BurstLossRateAt(now_s));
    if (loss_rate > 0.0 && rng_.Bernoulli(loss_rate)) {
      Schedule(now_s + LossDetectionDelay(flow), EvType::kLossNotice, flow_id, seq, now_s);
      return;
    }
  }
  QueuedPacket pkt;
  pkt.send_time_s = now_s;
  pkt.enqueue_time_s = now_s;
  pkt.seq = seq;
  pkt.flow_id = flow_id;
  pkt.hop = 0;
  pkt.is_ack = 0;
  pkt.ecn = 0;
  EnqueueOnLink(flow.path[0], pkt, now_s);
}

void PacketNetwork::EnqueueOnLink(int link_id, const QueuedPacket& pkt, double now_s) {
  LinkState& link = links_[static_cast<size_t>(link_id)];
  // Droptail: the buffer holds packets waiting behind the one in service. ACKs
  // are always admitted (per-packet ACKs must not leak in-flight accounting; a
  // loaded reverse path delays them, which is the effect under study).
  if (pkt.is_ack == 0 && link.busy &&
      static_cast<int>(link.queue.size()) >= link.spec.queue_capacity_pkts) {
    ScheduleLoss(pkt.flow_id, pkt.seq, pkt.send_time_s, now_s);
    return;
  }
  QueuedPacket entry = pkt;
  entry.enqueue_time_s = now_s;
  // RED acts at enqueue on data packets: early-drop (or ECN-mark) with a
  // probability driven by the EWMA queue depth. Droptail links (the default)
  // skip this branch entirely and consume no Rng draws.
  if (entry.is_ack == 0 && link.spec.aqm.kind == AqmKind::kRed) {
    const bool ect = flows_[static_cast<size_t>(entry.flow_id)].options.ecn_capable;
    const AqmAction action =
        RedOnEnqueue(link.spec.aqm, &link.aqm, QueueLengthPkts(link_id), ect, &rng_);
    if (action == AqmAction::kDrop) {
      ScheduleLoss(entry.flow_id, entry.seq, entry.send_time_s, now_s);
      return;
    }
    if (action == AqmAction::kMark) {
      entry.ecn = 1;
    }
  }
  link.queue.push_back(entry);
  if (!link.busy) {
    StartService(link_id, now_s);
  }
}

void PacketNetwork::StartService(int link_id, double now_s) {
  LinkState& link = links_[static_cast<size_t>(link_id)];
  assert(!link.queue.empty());
  QueuedPacket pkt = link.queue.front();
  link.queue.pop_front();
  // CoDel acts at dequeue on data packets, on the sojourn time the head packet
  // spent queued: in the dropping state it drops (or ECN-marks) heads at
  // control-law-spaced times until the sojourn falls below target. Fully
  // deterministic — no Rng draws, so disabled links are untouched.
  if (link.spec.aqm.kind == AqmKind::kCodel) {
    while (pkt.is_ack == 0) {
      const bool ect = flows_[static_cast<size_t>(pkt.flow_id)].options.ecn_capable;
      const AqmAction action = CodelOnDequeue(
          link.spec.aqm, &link.aqm, now_s, now_s - pkt.enqueue_time_s,
          static_cast<int>(link.queue.size()) + 1, ect);
      if (action == AqmAction::kMark) {
        pkt.ecn = 1;
        break;
      }
      if (action == AqmAction::kForward) {
        break;
      }
      ScheduleLoss(pkt.flow_id, pkt.seq, pkt.send_time_s, now_s);
      if (link.queue.empty()) {
        link.busy = false;
        return;
      }
      pkt = link.queue.front();
      link.queue.pop_front();
    }
  }
  link.busy = true;
  const double bw = std::max(1.0, link.spec.BandwidthAt(now_s));
  const int64_t bits = pkt.is_ack != 0 ? kAckPacketSizeBits : kDefaultPacketSizeBits;
  double txn_s = static_cast<double>(bits) / bw;
  // Wifi jitter stretches serialization inside burst windows; the per-packet
  // draw happens only for packets serviced inside a configured window.
  const WifiJitterSpec& jitter = link.spec.wifi_jitter;
  if (!jitter.empty() && jitter.BurstAt(now_s)) {
    txn_s *= jitter.service_slowdown *
             rng_.Uniform(1.0 - jitter.jitter_frac, 1.0 + jitter.jitter_frac);
  }
  Schedule(now_s + txn_s, EvType::kLinkDone, pkt.flow_id, pkt.seq, pkt.send_time_s,
           pkt.hop, pkt.is_ack, pkt.ecn);
}

void PacketNetwork::HandleLinkDone(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  const int link_id = ev.is_ack != 0 ? flow.ack_path[ev.hop] : flow.path[ev.hop];
  const LinkSpec& spec = links_[static_cast<size_t>(link_id)].spec;
  // Injected delay spikes stretch this link's propagation for packets finishing
  // serialization inside the window; a fault-free link adds exactly 0.0, keeping
  // the historical delivery-time arithmetic bit-identical.
  const double prop_delay_s =
      spec.fault.empty() ? spec.prop_delay_s
                         : spec.prop_delay_s + spec.fault.ExtraDelayAt(now_s_);
  if (ev.is_ack == 0) {
    if (ev.hop + 1 < flow.path_len) {
      // Mid-path: propagate to the next hop's queue.
      Schedule(now_s_ + prop_delay_s, EvType::kHopArrive, ev.flow_id, ev.seq,
               ev.send_time_s, static_cast<uint8_t>(ev.hop + 1), 0, ev.ecn);
    } else {
      // Last hop: the packet is delivered after this link's propagation (plus
      // the flow's extra endpoint delay), and the ACK departs immediately.
      // Uncongested reverse paths coalesce delivery + ACK into one event; the
      // delivery time and the ACK arrival time are computed in exactly the
      // floating-point evaluation order of the historical two-event engine
      // ((t + delay) + extra at each stage), keeping single-bottleneck episodes
      // bit-identical (tests/golden_episode_test.cc).
      const double t_delivery =
          now_s_ + prop_delay_s + flow.options.extra_one_way_delay_s;
      flow.record.RecordDelivery(t_delivery);
      if (flow.ack_path_len == 0) {
        const double t_ack =
            t_delivery + flow.reverse_delay_s + flow.options.extra_one_way_delay_s;
        if (flow.defer_acks) {
          PendingAck pending;
          pending.ack_time_s = t_ack;
          pending.send_time_s = ev.send_time_s;
          pending.seq = ev.seq;
          pending.ecn = ev.ecn;
          flow.pending_acks.push_back(pending);
        } else {
          Schedule(t_ack, EvType::kAck, ev.flow_id, ev.seq, ev.send_time_s, 0, 0,
                   ev.ecn);
        }
      } else {
        // The ACK echoes the data packet's congestion mark back to the sender
        // through the reverse path (the ACK itself is never AQM-processed).
        Schedule(t_delivery, EvType::kHopArrive, ev.flow_id, ev.seq, ev.send_time_s,
                 0, 1, ev.ecn);
      }
    }
  } else {
    if (ev.hop + 1 < flow.ack_path_len) {
      Schedule(now_s_ + prop_delay_s, EvType::kHopArrive, ev.flow_id, ev.seq,
               ev.send_time_s, static_cast<uint8_t>(ev.hop + 1), 1, ev.ecn);
    } else {
      Schedule(now_s_ + prop_delay_s + flow.options.extra_one_way_delay_s,
               EvType::kAck, ev.flow_id, ev.seq, ev.send_time_s, 0, 0, ev.ecn);
    }
  }
  LinkState& link = links_[static_cast<size_t>(link_id)];
  if (!link.queue.empty()) {
    StartService(link_id, now_s_);
  } else {
    link.busy = false;
  }
}

void PacketNetwork::HandleHopArrive(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  const int link_id = ev.is_ack != 0 ? flow.ack_path[ev.hop] : flow.path[ev.hop];
  // Random wire loss applies per traversed link for data packets (hop 0 is
  // checked at send time); ACKs are exempt. Fault windows (blackouts, loss
  // bursts) apply the same way, with the fault-free path left byte-identical.
  if (ev.is_ack == 0) {
    const LinkSpec& spec = links_[static_cast<size_t>(link_id)].spec;
    if (spec.fault.empty()) {
      if (spec.random_loss_rate > 0.0 && rng_.Bernoulli(spec.random_loss_rate)) {
        Schedule(now_s_ + LossDetectionDelay(flow), EvType::kLossNotice, ev.flow_id,
                 ev.seq, ev.send_time_s);
        return;
      }
    } else {
      if (spec.fault.BlackoutAt(now_s_)) {
        Schedule(now_s_ + LossDetectionDelay(flow), EvType::kLossNotice, ev.flow_id,
                 ev.seq, ev.send_time_s);
        return;
      }
      const double loss_rate =
          std::max(spec.random_loss_rate, spec.fault.BurstLossRateAt(now_s_));
      if (loss_rate > 0.0 && rng_.Bernoulli(loss_rate)) {
        Schedule(now_s_ + LossDetectionDelay(flow), EvType::kLossNotice, ev.flow_id,
                 ev.seq, ev.send_time_s);
        return;
      }
    }
  }
  QueuedPacket pkt;
  pkt.send_time_s = ev.send_time_s;
  pkt.enqueue_time_s = now_s_;
  pkt.seq = ev.seq;
  pkt.flow_id = ev.flow_id;
  pkt.hop = ev.hop;
  pkt.is_ack = ev.is_ack;
  pkt.ecn = ev.ecn;
  EnqueueOnLink(link_id, pkt, now_s_);
}

void PacketNetwork::ProcessAck(Flow* flow, double ack_time_s, double send_time_s,
                               int64_t seq, bool ecn_marked) {
  flow->inflight = std::max<int64_t>(0, flow->inflight - 1);
  const double rtt = ack_time_s - send_time_s;
  flow->srtt_s = flow->srtt_s <= 0.0 ? rtt : 0.875 * flow->srtt_s + 0.125 * rtt;
  flow->min_rtt_s = flow->min_rtt_s <= 0.0 ? rtt : std::min(flow->min_rtt_s, rtt);
  flow->record.min_rtt_s = flow->min_rtt_s;
  flow->last_progress_s = ack_time_s;
  ++flow->record.total_acked;
  ++flow->mi_acked;
  flow->mi_rtt_sum_s += rtt;
  ++flow->mi_rtt_count;
  if (ecn_marked) {
    ++flow->mi_marked;
    ++flow->record.total_marked;
  }
  flow->record.RecordAck(ack_time_s, kDefaultPacketSizeBits);
  AckInfo ack;
  ack.send_time_s = send_time_s;
  ack.ack_time_s = ack_time_s;
  ack.rtt_s = rtt;
  ack.size_bits = kDefaultPacketSizeBits;
  ack.seq = seq;
  ack.ecn_marked = ecn_marked;
  flow->cc->OnAck(ack);
}

void PacketNetwork::DrainPendingAcks(Flow* flow, double up_to_s) {
  while (!flow->pending_acks.empty() &&
         flow->pending_acks.front().ack_time_s <= up_to_s) {
    const PendingAck pending = flow->pending_acks.front();
    flow->pending_acks.pop_front();
    ProcessAck(flow, pending.ack_time_s, pending.send_time_s, pending.seq,
               pending.ecn != 0);
  }
}

void PacketNetwork::DrainAllPendingAcks(double up_to_s) {
  for (Flow& flow : flows_) {
    if (flow.defer_acks && !flow.pending_acks.empty()) {
      DrainPendingAcks(&flow, up_to_s);
    }
  }
}

void PacketNetwork::HandleAck(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  ProcessAck(&flow, now_s_, ev.send_time_s, ev.seq, ev.ecn != 0);
  if (flow.mode == CcMode::kWindowBased && FlowMaySend(flow)) {
    TrySendWindowed(ev.flow_id, now_s_);
  }
}

void PacketNetwork::HandleLossNotice(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  flow.inflight = std::max<int64_t>(0, flow.inflight - 1);
  ++flow.record.total_lost;
  ++flow.mi_lost;
  LossInfo loss;
  loss.detect_time_s = now_s_;
  loss.seq = ev.seq;
  flow.cc->OnPacketLost(loss);
  if (flow.mode == CcMode::kWindowBased && FlowMaySend(flow)) {
    TrySendWindowed(ev.flow_id, now_s_);
  }
}

void PacketNetwork::TrySendWindowed(int flow_id, double now_s) {
  Flow& flow = flows_[static_cast<size_t>(flow_id)];
  // Cap the burst so a pathological window cannot wedge the event loop.
  int budget = 10000;
  while (FlowMaySend(flow) &&
         static_cast<double>(flow.inflight) < std::max(1.0, flow.cc->CwndPackets()) &&
         budget-- > 0) {
    SendPacket(flow_id, now_s);
  }
}

void PacketNetwork::HandleMonitor(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  if (!flow.started) {
    return;
  }
  const double duration = now_s_ - flow.mi_start_s;
  if (duration > 0.0) {
    MonitorReport report;
    report.start_time_s = flow.mi_start_s;
    report.duration_s = duration;
    report.packets_sent = flow.mi_sent;
    report.packets_acked = flow.mi_acked;
    report.packets_lost = flow.mi_lost;
    report.send_rate_bps =
        static_cast<double>(flow.mi_sent * kDefaultPacketSizeBits) / duration;
    report.throughput_bps =
        static_cast<double>(flow.mi_acked * kDefaultPacketSizeBits) / duration;
    report.avg_rtt_s =
        flow.mi_rtt_count > 0 ? flow.mi_rtt_sum_s / static_cast<double>(flow.mi_rtt_count)
                              : flow.srtt_s;
    report.min_rtt_s = flow.min_rtt_s > 0.0 ? flow.min_rtt_s : flow.base_rtt_s;
    const int64_t denom = flow.mi_acked + flow.mi_lost;
    report.loss_rate =
        denom > 0 ? static_cast<double>(flow.mi_lost) / static_cast<double>(denom) : 0.0;
    report.packets_marked = flow.mi_marked;
    report.ecn_rate = flow.mi_acked > 0 ? static_cast<double>(flow.mi_marked) /
                                              static_cast<double>(flow.mi_acked)
                                        : 0.0;
    flow.cc->OnMonitorInterval(report);
    flow.record.RecordMi(report);
  }
  flow.mi_start_s = now_s_;
  flow.mi_sent = 0;
  flow.mi_acked = 0;
  flow.mi_lost = 0;
  flow.mi_rtt_sum_s = 0.0;
  flow.mi_rtt_count = 0;
  flow.mi_marked = 0;
  if (flow.active) {
    Schedule(now_s_ + MiDuration(flow), EvType::kMonitor, ev.flow_id);
  }
}

void PacketNetwork::HandleRtoCheck(const SimEvent& ev) {
  Flow& flow = flows_[static_cast<size_t>(ev.flow_id)];
  if (!flow.active) {
    return;
  }
  const double rto = std::max(1.0, 3.0 * std::max(flow.srtt_s, flow.base_rtt_s));
  if (flow.inflight > 0 && now_s_ - flow.last_progress_s > rto) {
    // Everything in flight is presumed lost; restart the window from scratch.
    flow.record.total_lost += flow.inflight;
    flow.inflight = 0;
    flow.last_progress_s = now_s_;
    flow.cc->OnTimeout(now_s_);
    if (flow.mode == CcMode::kWindowBased && FlowMaySend(flow)) {
      TrySendWindowed(ev.flow_id, now_s_);
    }
  }
  Schedule(now_s_ + kRtoCheckPeriodS, EvType::kRtoCheck, ev.flow_id);
}

double PacketNetwork::MiDuration(const Flow& flow) const {
  if (flow.options.mi_fixed_duration_s > 0.0) {
    return flow.options.mi_fixed_duration_s;
  }
  const double rtt = flow.srtt_s > 0.0 ? flow.srtt_s : flow.base_rtt_s;
  return std::max(flow.options.mi_min_duration_s, flow.options.mi_rtt_multiple * rtt);
}

double PacketNetwork::LossDetectionDelay(const Flow& flow) const {
  return std::max(flow.srtt_s, flow.base_rtt_s);
}

}  // namespace mocc
