#include "src/netsim/fluid_link.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {

FluidLink::FluidLink(const LinkParams& params, uint64_t seed, bool stochastic_loss)
    : params_(params), rng_(seed), stochastic_loss_(stochastic_loss) {
  min_rtt_seen_s_ = params_.BaseRttS();
}

void FluidLink::Reset(const LinkParams& params) {
  params_ = params;
  trace_ = BandwidthTrace();
  now_s_ = 0.0;
  queue_bits_ = 0.0;
  min_rtt_seen_s_ = params_.BaseRttS();
}

double FluidLink::CurrentBandwidthBps() const {
  return trace_.BandwidthAt(now_s_, params_.bandwidth_bps);
}

MonitorReport FluidLink::Step(double send_rate_bps, double duration_s) {
  assert(duration_s > 0.0);
  send_rate_bps = std::max(0.0, send_rate_bps);
  const double bw = CurrentBandwidthBps();
  const double pkt_bits = static_cast<double>(kDefaultPacketSizeBits);

  const double sent_bits = send_rate_bps * duration_s;
  const double sent_pkts = sent_bits / pkt_bits;

  // Random (non-congestion) loss: binomial sampled via a normal approximation, so large
  // intervals stay cheap while preserving the right mean and variance.
  double random_lost_pkts = 0.0;
  const double p = params_.random_loss_rate;
  if (p > 0.0 && sent_pkts > 0.0) {
    if (stochastic_loss_) {
      const double mean = sent_pkts * p;
      const double sigma = std::sqrt(std::max(0.0, sent_pkts * p * (1.0 - p)));
      random_lost_pkts = std::clamp(rng_.Normal(mean, sigma), 0.0, sent_pkts);
    } else {
      random_lost_pkts = sent_pkts * p;
    }
  }

  const double arriving_bits = std::max(0.0, sent_bits - random_lost_pkts * pkt_bits);
  const double capacity_bits = bw * duration_s;
  const double queue_cap_bits = static_cast<double>(params_.queue_capacity_pkts) * pkt_bits;

  const double queue_start_bits = queue_bits_;
  const double total_bits = queue_bits_ + arriving_bits;
  const double delivered_bits = std::min(total_bits, capacity_bits);
  double backlog_bits = total_bits - delivered_bits;
  const double overflow_bits = std::max(0.0, backlog_bits - queue_cap_bits);
  backlog_bits -= overflow_bits;
  queue_bits_ = backlog_bits;

  const double congestion_lost_pkts = overflow_bits / pkt_bits;
  const double lost_pkts = random_lost_pkts + congestion_lost_pkts;

  // Average queueing delay over the interval, approximated from the mean backlog.
  const double mean_queue_bits = 0.5 * (queue_start_bits + queue_bits_);
  const double queue_delay_s = bw > 0.0 ? mean_queue_bits / bw : 0.0;
  const double serialization_s = bw > 0.0 ? pkt_bits / bw : 0.0;
  // Steady-state M/D/1-style waiting time: stochastic queueing rises smoothly with
  // utilization even below capacity. The utilization cap and damping factor bound the
  // term at a small multiple of the serialization time so that low-bandwidth links
  // (where one packet is a large fraction of the base RTT) are not dominated by it.
  const double rho =
      bw > 0.0 ? std::clamp(arriving_bits / duration_s / bw, 0.0, 0.90) : 0.0;
  const double stochastic_queue_s =
      0.25 * rho / (2.0 * (1.0 - rho)) * serialization_s;
  const double avg_rtt_s =
      params_.BaseRttS() + queue_delay_s + serialization_s + stochastic_queue_s;
  min_rtt_seen_s_ = std::min(min_rtt_seen_s_, avg_rtt_s);

  MonitorReport report;
  report.start_time_s = now_s_;
  report.duration_s = duration_s;
  report.packets_sent = static_cast<int64_t>(std::llround(sent_pkts));
  report.packets_lost = static_cast<int64_t>(std::llround(lost_pkts));
  const double acked_pkts = std::max(0.0, delivered_bits / pkt_bits);
  report.packets_acked = static_cast<int64_t>(std::llround(acked_pkts));
  report.send_rate_bps = send_rate_bps;
  report.throughput_bps = delivered_bits / duration_s;
  report.avg_rtt_s = avg_rtt_s;
  report.min_rtt_s = min_rtt_seen_s_;
  report.loss_rate = sent_pkts > 0.0 ? std::clamp(lost_pkts / sent_pkts, 0.0, 1.0) : 0.0;

  now_s_ += duration_s;
  return report;
}

}  // namespace mocc
