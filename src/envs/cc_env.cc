#include "src/envs/cc_env.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {

CcEnv::CcEnv(const CcEnvConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      link_(LinkParams{}, rng_.NextU64(), config.stochastic_loss),
      history_(config.history_len, config.include_ecn_in_obs) {
  assert(config_.history_len > 0);
}

double CcEnv::ApplyRateAction(double rate_bps, double action, double alpha) {
  // Eq. (1): x_t = x_{t-1} * (1 + alpha*a) for a > 0, x_{t-1} / (1 - alpha*a) for a < 0.
  if (action > 0.0) {
    return rate_bps * (1.0 + alpha * action);
  }
  if (action < 0.0) {
    return rate_bps / (1.0 - alpha * action);
  }
  return rate_bps;
}

double CcEnv::MiDurationS() const {
  const double rtt = prev_avg_rtt_s_ > 0.0 ? prev_avg_rtt_s_ : link_.params().BaseRttS();
  return std::max(config_.mi_min_duration_s, config_.mi_rtt_multiple * rtt);
}

std::vector<double> CcEnv::Reset() {
  const LinkParams params =
      fixed_link_.has_value() ? *fixed_link_ : config_.link_range.Sample(&rng_);
  // FluidLink::Reset clears any previously installed trace, so an episode only sees a
  // trace when one is (re)installed below. Precedence (see SetBandwidthTrace): a
  // per-episode generator wins over a fixed trace, and any trace wins over the
  // fixed/sampled link's constant bandwidth — LinkParams keeps supplying the delay,
  // queue, loss rate and the pre-first-step fallback bandwidth.
  link_.Reset(params);
  BandwidthTrace episode_trace =
      ResolveEpisodeTrace(trace_generator_, trace_cache_per_env_, &cached_trace_valid_,
                          &cached_trace_, trace_, params, &rng_);
  if (!episode_trace.empty()) {
    link_.SetBandwidthTrace(std::move(episode_trace));
  }
  estimator_.Reset();
  history_.Reset();
  prev_avg_rtt_s_ = 0.0;
  step_count_ = 0;
  // Start near a random fraction of capacity so the policy sees both under- and
  // over-shoot regimes from the first step. Capacity is the effective (trace-aware)
  // bandwidth: on a trace-driven episode the LinkParams bandwidth may be far from the
  // trace's starting rate, and anchoring the initial rate to the wrong one would push
  // every trace episode into a pure over- or under-shoot regime.
  rate_bps_ = std::max(config_.min_rate_bps,
                       link_.CurrentBandwidthBps() * rng_.Uniform(0.3, 1.5));
  // Warm the history with one neutral interval measurement.
  const MonitorReport report = link_.Step(rate_bps_, MiDurationS());
  last_report_ = report;
  estimator_.Observe(report);
  history_.Push(report);
  prev_avg_rtt_s_ = report.avg_rtt_s;
  return BuildObservation();
}

StepResult CcEnv::Step(double action) {
  action = std::clamp(action, -1e3, 1e3);
  rate_bps_ = ApplyRateAction(rate_bps_, action, config_.action_scale);
  const double bw = link_.CurrentBandwidthBps();
  const double min_rate =
      std::max(config_.min_rate_bps, config_.min_rate_fraction_of_bw * bw);
  const double max_rate = std::max(min_rate, bw * config_.max_rate_multiple);
  rate_bps_ = std::clamp(rate_bps_, min_rate, max_rate);

  const MonitorReport report = link_.Step(rate_bps_, MiDurationS());
  last_report_ = report;
  estimator_.Observe(report);
  history_.Push(report);
  prev_avg_rtt_s_ = report.avg_rtt_s;

  double capacity = 0.0;
  double base_rtt = 0.0;
  if (config_.ground_truth_reward) {
    capacity = link_.CurrentBandwidthBps();
    base_rtt = link_.params().BaseRttS();
  } else {
    capacity = estimator_.CapacityBps(link_.CurrentBandwidthBps());
    base_rtt = estimator_.BaseRttS(link_.params().BaseRttS());
  }

  StepResult result;
  result.reward = DynamicReward(weight_, report, capacity, base_rtt);
  ++step_count_;
  result.done = step_count_ >= config_.max_steps_per_episode;
  result.observation = BuildObservation();
  return result;
}

void CcEnv::SerializeState(BinaryWriter* w) const {
  rng_.Serialize(w);
  link_.rng().Serialize(w);
  w->WriteU32(cached_trace_valid_ ? 1 : 0);
  cached_trace_.Serialize(w);
}

bool CcEnv::DeserializeState(BinaryReader* r) {
  if (!rng_.Deserialize(r) || !link_.mutable_rng()->Deserialize(r)) {
    return false;
  }
  cached_trace_valid_ = r->ReadU32() != 0;
  return cached_trace_.Deserialize(r) && r->ok();
}

std::vector<double> CcEnv::BuildObservation() const {
  std::vector<double> obs;
  obs.reserve(ObservationDim());
  if (config_.include_weight_in_obs) {
    obs.push_back(weight_.thr);
    obs.push_back(weight_.lat);
    obs.push_back(weight_.loss);
  }
  history_.AppendObservation(&obs);
  return obs;
}

size_t CcEnv::ObservationDim() const {
  return (config_.include_weight_in_obs ? 3 : 0) +
         history_.entry_width() * config_.history_len;
}

}  // namespace mocc
