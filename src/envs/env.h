// Minimal reinforcement-learning environment interface (single continuous action),
// mirroring the OpenAI-Gym contract the paper trains against.
#ifndef MOCC_SRC_ENVS_ENV_H_
#define MOCC_SRC_ENVS_ENV_H_

#include <vector>

namespace mocc {

struct StepResult {
  std::vector<double> observation;
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  // Starts a new episode and returns the initial observation.
  virtual std::vector<double> Reset() = 0;

  // Applies one action and returns the next observation, reward and done flag.
  virtual StepResult Step(double action) = 0;

  virtual size_t ObservationDim() const = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_ENVS_ENV_H_
