// Minimal reinforcement-learning environment interface (single continuous action),
// mirroring the OpenAI-Gym contract the paper trains against.
#ifndef MOCC_SRC_ENVS_ENV_H_
#define MOCC_SRC_ENVS_ENV_H_

#include <vector>

namespace mocc {

struct StepResult {
  std::vector<double> observation;
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  // Starts a new episode and returns the initial observation.
  virtual std::vector<double> Reset() = 0;

  // Applies one action and returns the next observation, reward and done flag.
  virtual StepResult Step(double action) = 0;

  virtual size_t ObservationDim() const = 0;
};

// One synchronized step of a multi-agent environment: per-agent observations and
// rewards, one shared episode-termination flag (all agents live in one simulation).
struct VectorStepResult {
  std::vector<std::vector<double>> observations;
  std::vector<double> rewards;
  bool done = false;
};

// Synchronized multi-agent environment: every agent submits one action per step and
// all actions are applied to a single shared simulation (the shared-bottleneck
// training scenarios). Observation layout per agent matches Env.
class VectorEnv {
 public:
  virtual ~VectorEnv() = default;

  // Starts a new episode and returns one initial observation per agent.
  virtual std::vector<std::vector<double>> Reset() = 0;

  // Applies actions[i] as agent i's action and advances the shared simulation by
  // one monitor interval. Requires actions.size() == NumAgents().
  virtual VectorStepResult Step(const std::vector<double>& actions) = 0;

  // Whether agent i's next action will actually be applied (e.g. its flow has
  // arrived in a staggered schedule). Rollout collectors skip inactive agents so
  // no fictitious transitions enter training. Activity may only turn on between
  // Reset boundaries (flows arrive; they never leave mid-episode).
  virtual bool AgentActive(int /*agent*/) const { return true; }

  virtual int NumAgents() const = 0;
  virtual size_t ObservationDim() const = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_ENVS_ENV_H_
