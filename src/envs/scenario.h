// Named, reproducible training/evaluation workloads — the scenario subsystem. A
// Scenario describes everything that varies between workloads (link selection,
// bandwidth trace, number of competing agents, competitor schemes, flow
// arrival/departure schedule, per-agent objective assignment) and knows how to
// build the matching environment:
// single-flow CcEnv scenarios train exactly like the paper's §5 setup, multi-flow
// scenarios train N agents against a shared PacketNetwork bottleneck
// (MultiFlowCcEnv). The global ScenarioRegistry names the built-in catalog (static
// link, oscillating / random-walk traces, mahimahi-style cellular traces, flow
// arrival/departure, many-flow contention, MOCC-vs-CUBIC/BBR) so trainers, tools
// and benchmarks can select workloads by name; "mahimahi:<path>" resolves a
// trace file on disk into a trace-driven scenario.
#ifndef MOCC_SRC_ENVS_SCENARIO_H_
#define MOCC_SRC_ENVS_SCENARIO_H_

#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/envs/cc_env.h"
#include "src/envs/multi_flow_cc_env.h"
#include "src/netsim/link_params.h"

namespace mocc {

struct Scenario {
  std::string name;
  std::string description;
  // 1 with no competitors = single-flow CcEnv scenario; otherwise MultiFlowCcEnv.
  int num_agents = 1;
  // Link selection per episode: fixed_link if set, else link_range if set, else the
  // environment's default sampling range (Table 3 training row).
  std::optional<LinkParams> fixed_link;
  std::optional<LinkParamsRange> link_range;
  // Per-episode bandwidth schedule; null = constant bandwidth.
  std::function<BandwidthTrace(const LinkParams&, Rng*)> trace_generator;
  // Build the trace once per env instead of once per episode (for generators whose
  // construction cost rivals an episode — the synthetic cellular schedule). See
  // CcEnv::SetTraceGenerator for the exact semantics.
  bool cache_trace_per_env = false;
  // Episode topology (dumbbell / parking-lot / congested reverse path) built
  // from the sampled or fixed link; see src/netsim/topology.h for the shapes
  // and the agent/competitor path-assignment rules.
  TopologySpec topology;
  // Per-agent extra one-way delay, cycled over agents (heterogeneous-RTT
  // scenarios); empty = homogeneous.
  std::vector<double> agent_extra_delay_s;
  // Competitor flows sharing the bottleneck, by baseline scheme name (see
  // MakeBaselineCc), with one shared arrival/departure schedule.
  std::vector<std::string> competitor_schemes;
  double competitor_start_s = 0.0;
  double competitor_stop_s = std::numeric_limits<double>::infinity();
  // Agent i arrives at i * agent_stagger_s (multi-flow scenarios).
  double agent_stagger_s = 0.0;
  // Multi-flow reward capacity: fair share (bandwidth / active flows) vs full pipe.
  bool fair_share_reward = true;
  // Heterogeneous per-agent objectives (multi-flow scenarios only): fixed mixes
  // cycled over agents, per-episode sampled weight vectors (uniform over the
  // floored simplex, from the env's seed-deterministic Rng), and scheduled
  // mid-episode preference switches. See ObjectivePlan in multi_flow_cc_env.h.
  ObjectivePlan objectives;
  // Injected fault schedule on the bottleneck link (multi-flow scenarios only);
  // empty = clean link. See FaultSpec and MultiFlowCcEnvConfig::fault.
  FaultSpec fault;
  // AQM (RED/CoDel, optionally ECN-marking) on the bottleneck link; droptail =
  // none. Forces the packet-level environment — the fluid link cannot mark.
  AqmSpec aqm;
  // Bursty wifi-style service-time jitter on the bottleneck; empty = none.
  // Forces the packet-level environment.
  WifiJitterSpec wifi_jitter;
  // Route even a lone agent through the packet-level MultiFlowCcEnv (per-packet
  // wire loss, queue dynamics). Scenarios whose point is a link-layer behaviour
  // the fluid model does not simulate set this.
  bool packet_level = false;

  bool IsMultiFlow() const {
    return num_agents > 1 || !competitor_schemes.empty() || packet_level ||
           !aqm.empty() || !wifi_jitter.empty();
  }
  // True when the scenario assigns objectives itself (trainers then skip their
  // per-iteration SetObjective for its environments — the plan wins at Reset).
  bool HasObjectivePlan() const { return !objectives.Empty(); }

  // Builds the scenario's environment, inheriting the non-scenario knobs (history
  // length, action scale, reward mode, ...) from `base`. Exactly one of these is
  // valid per scenario, according to IsMultiFlow().
  std::unique_ptr<CcEnv> MakeSingleFlowEnv(const CcEnvConfig& base, uint64_t seed) const;
  std::unique_ptr<MultiFlowCcEnv> MakeMultiFlowEnv(const CcEnvConfig& base,
                                                   uint64_t seed) const;
};

// Creates a handcrafted/online-learning baseline congestion controller by name:
// cubic, newreno, vegas, bbr, copa, allegro, vivace, plus the app-limited media
// sources rtc and video (src/apps/media_source.h). Returns nullptr for unknown
// names.
std::unique_ptr<CongestionControl> MakeBaselineCc(const std::string& scheme);

// The process-wide catalog of named scenarios.
class ScenarioRegistry {
 public:
  static const ScenarioRegistry& Global();

  // Looks up a built-in scenario; nullptr when unknown.
  const Scenario* Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  // Resolves one name: built-in scenarios by name, plus the dynamic form
  // "mahimahi:<path>" (a single-flow scenario driven by the mahimahi trace file).
  // Returns nullopt and fills *error when the name is unknown or the file is
  // unreadable.
  std::optional<Scenario> Resolve(const std::string& name, std::string* error) const;

  // Resolves a comma-separated scenario list (for --scenario a,b,c).
  std::optional<std::vector<Scenario>> ResolveList(const std::string& csv,
                                                   std::string* error) const;

 private:
  ScenarioRegistry();
  std::vector<Scenario> scenarios_;
};

// Prints the catalog (one "name  description" line per scenario, plus the dynamic
// mahimahi:PATH form) — the --list-scenarios output shared by the CLI tools.
void PrintScenarioCatalog(std::FILE* out);

}  // namespace mocc

#endif  // MOCC_SRC_ENVS_SCENARIO_H_
