// Shared-bottleneck multi-flow training environment (the paper's competing-flow
// evaluations — fairness/TCP-friendliness, Figs. 11-15 — turned into a training
// scenario). N MOCC agents, optionally mixed with handcrafted competitor flows
// (CUBIC, BBR, ...), share one droptail bottleneck simulated by the packet-level
// PacketNetwork. All agents act synchronously once per monitor interval: the
// environment advances the event-driven simulation by one fixed-duration MI,
// aggregates per-flow statistics, and hands every agent its own observation
// (weight prefix + g⃗(t,η) history, identical to the single-flow CcEnv layout)
// and its own Eq. (2) reward. Fairness is first-class: the reward's capacity
// term can use the per-flow fair share (bandwidth / active flows), and Jain's
// index over the competing flows is exposed for introspection.
#ifndef MOCC_SRC_ENVS_MULTI_FLOW_CC_ENV_H_
#define MOCC_SRC_ENVS_MULTI_FLOW_CC_ENV_H_

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/weight_vector.h"
#include "src/envs/env.h"
#include "src/envs/mi_history.h"
#include "src/netsim/packet_network.h"

namespace mocc {

// A rate-based congestion controller whose pacing rate is set externally — the bridge
// between the action-driven RL environment and the event-driven PacketNetwork. The
// simulator's monitor mechanism (FlowOptions::mi_fixed_duration_s) aggregates the MI
// statistics the environment reads back after each step.
class ExternalRateCc : public CongestionControl {
 public:
  explicit ExternalRateCc(double initial_rate_bps) : rate_bps_(initial_rate_bps) {}

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "external-rate"; }
  // The externally set rate is the only transmission control; individual ACKs
  // are pure bookkeeping, so the simulator may coalesce them off its event
  // heap (see CongestionControl::NeedsPerAckEvents).
  bool NeedsPerAckEvents() const override { return false; }
  void OnMonitorInterval(const MonitorReport& report) override {
    last_report_ = report;
    has_report_ = true;
  }
  double PacingRateBps() const override { return rate_bps_; }

  void set_rate_bps(double rate_bps) { rate_bps_ = rate_bps; }
  double rate_bps() const { return rate_bps_; }
  bool has_report() const { return has_report_; }
  const MonitorReport& last_report() const { return last_report_; }

 private:
  double rate_bps_;
  MonitorReport last_report_;
  bool has_report_ = false;
};

// One non-agent flow sharing the bottleneck (a handcrafted/online-learning baseline
// driving itself through the generic CongestionControl interface).
struct CompetitorFlow {
  std::string name;
  std::function<std::unique_ptr<CongestionControl>()> make;
  double start_time_s = 0.0;
  double stop_time_s = std::numeric_limits<double>::infinity();
};

// One scheduled mid-episode preference change (the paper's online objective
// adjustment, §4.3, as a training/evaluation event): starting with the environment
// step whose monitor interval begins at or after `time_s`, `agent` (every agent when
// agent < 0) is rewarded — and observed, through the weight prefix — under `to`.
// The action taken on the switching step still comes from the pre-switch
// observation; the policy reads the new preference from the next observation, which
// is exactly how a deployed flow experiences SetObservationPrefix.
struct PreferenceSwitch {
  double time_s = 0.0;
  int agent = -1;  // -1 = all agents
  WeightVector to;
};

// Per-agent objective assignment for heterogeneous-requirement scenarios (MOCC's
// central claim: one preference-conditioned policy serving different objectives at
// once). All weights pass through WeightVector::Sanitized, so the plan can never
// push an agent outside the trained preference region.
struct ObjectivePlan {
  // Fixed mixes, cycled over agents (agent i gets fixed[i % size]); re-applied on
  // every Reset, overriding any external SetObjective/SetAgentObjective call. Empty
  // leaves episode weights under external control.
  std::vector<WeightVector> fixed;
  // Resample every agent's weight vector per episode, uniformly over the floored
  // simplex (SampleWeightVector), from the env's own Rng — seed-reproducible and
  // independent of collection scheduling. Applied after `fixed`, so it wins.
  bool sample_per_episode = false;
  // Scheduled mid-episode switches, applied in time order within each episode.
  std::vector<PreferenceSwitch> switches;

  // True when Reset re-derives episode weights from the plan (external SetObjective
  // calls are overridden) — trainers skip their per-iteration objective assignment
  // for such environments.
  bool OverridesEpisodeWeights() const { return !fixed.empty() || sample_per_episode; }
  bool Empty() const {
    return fixed.empty() && !sample_per_episode && switches.empty();
  }

  // The single source of truth for deriving an episode's per-agent weights: starts
  // from `base` (one entry per agent), cycles the fixed mixes over it, then — when
  // `rng` is non-null — draws the per-episode samples (two draws per agent, agent
  // order). Pass rng = nullptr to apply only the deterministic part (construction
  // time, where consuming env draws would shift the episode stream). Training
  // (MultiFlowCcEnv::Reset) and evaluation (mocc_simulate) both call this, so the
  // weights a simulation reports are provably the weights training used.
  std::vector<WeightVector> EpisodeWeights(int num_agents,
                                           std::vector<WeightVector> base,
                                           Rng* rng) const;
};

struct MultiFlowCcEnvConfig {
  int num_agents = 2;
  // Heterogeneous per-agent objectives: fixed mixes, per-episode sampling, scheduled
  // mid-episode preference switches. Empty = all agents share whatever SetObjective
  // installs (the homogeneous pre-plan behaviour, bit-identical).
  ObjectivePlan objectives;
  // Link selection per episode: the fixed link if set, otherwise sampled from the range.
  LinkParamsRange link_range = TrainingRange();
  std::optional<LinkParams> fixed_link;
  // Episode topology built from the (sampled or fixed) link: the dumbbell
  // default, a multi-hop parking lot (agents traverse every hop, competitor i
  // is cross traffic on hop i), or a congested reverse path (agents' ACKs share
  // a reverse link that competitors drive in their data direction).
  TopologySpec topology;
  // Per-agent extra one-way propagation delay (cycled when shorter than
  // num_agents; empty = none) — heterogeneous-RTT contention on one bottleneck.
  std::vector<double> agent_extra_delay_s;
  // Bandwidth schedule, same precedence as CcEnv: the per-episode generator wins over
  // the fixed trace; any trace wins over the link's constant bandwidth.
  BandwidthTrace trace;
  std::function<BandwidthTrace(const LinkParams&, Rng*)> trace_generator;
  // Run the generator once on the first Reset and reuse its schedule for every later
  // episode of this env (see CcEnv::SetTraceGenerator for the semantics/rationale).
  bool cache_trace_per_env = false;
  // Injected fault schedule, applied to the bottleneck (link 0) of every episode
  // topology. Empty = no faults — the historical behaviour, bit-identical. When
  // fault.randomize_phase is set, Reset draws a fresh window phase per episode from
  // the env's Rng; the draw happens only when a fault is configured, so fault-free
  // configurations keep their existing per-episode draw streams untouched.
  FaultSpec fault;
  // Active queue management on the bottleneck (link 0) of every episode topology.
  // Droptail = no AQM, the historical behaviour, bit-identical. With aqm.ecn, the
  // agents' flows are ECN-capable (marked instead of dropped) while competitors
  // stay non-ECT and keep taking drops — the standard mixed-deployment setup.
  AqmSpec aqm;
  // Bursty wifi-style service-time variation on the bottleneck (link 0). Empty =
  // none, bit-identical. When wifi_jitter.randomize_phase is set, Reset draws a
  // fresh burst phase per episode from the env's Rng; as with `fault`, the draw
  // happens only when a jitter model is configured.
  WifiJitterSpec wifi_jitter;
  std::vector<CompetitorFlow> competitors;
  // Agent i's flow starts at i * agent_stagger_s (snapped to the step grid), modelling
  // flow-arrival dynamics; 0 starts everyone together.
  double agent_stagger_s = 0.0;
  size_t history_len = 10;        // η (Table 2)
  double action_scale = 0.025;    // α (Table 2)
  // Synchronized environment step = one monitor interval for every flow:
  // max(step_min_duration_s, step_rtt_multiple * base RTT), fixed per episode.
  double step_rtt_multiple = 1.0;
  double step_min_duration_s = 0.010;
  int max_steps_per_episode = 400;
  bool include_weight_in_obs = true;
  // Widens each history entry with the MI's ECN-mark fraction (see
  // MiHistoryTracker); changes ObservationDim, so it must match the model's
  // MoccConfig::ecn_signal.
  bool include_ecn_in_obs = false;
  // true: the reward's capacity term is the fair share (bandwidth / active flows), so
  // each agent is rewarded for regulating around its share rather than the whole pipe;
  // false: full bandwidth, as in the single-flow CcEnv.
  bool fair_share_reward = true;
  double min_rate_bps = 0.05e6;
  // Training floor as a fraction of the fair share (the CcEnv floor rationale, scaled
  // to contention: it removes the idle attractor without forcing overload when N is
  // large). The ceiling stays a multiple of the FULL bandwidth so fairness must be
  // learned, not enforced by the clamp.
  double min_rate_fraction_of_share = 0.2;
  double max_rate_multiple = 8.0;
  // Each agent's initial rate is fair_share * Uniform(1 - jitter, 1 + jitter), so
  // training episodes start off the symmetric fixed point (agents must cope with both
  // under- and over-shoot, as in CcEnv). Evaluation harnesses probing fairness
  // maintenance can set 0 for exact fair-share starts.
  double initial_rate_jitter = 0.6;
};

class MultiFlowCcEnv : public VectorEnv {
 public:
  MultiFlowCcEnv(const MultiFlowCcEnvConfig& config, uint64_t seed);

  // Sets every agent's objective (per-agent variants for heterogeneous-requirement
  // scenarios). May be changed between episodes. When the config carries an
  // ObjectivePlan with fixed mixes or per-episode sampling, Reset re-derives the
  // episode weights from the plan, overriding these calls (the scenario owns its
  // objective assignment); scheduled switches always overlay whatever base weights
  // the episode started with.
  void SetObjective(const WeightVector& w);
  void SetAgentObjective(int agent, const WeightVector& w);
  const WeightVector& agent_objective(int agent) const {
    return weights_[static_cast<size_t>(agent)];
  }

  std::vector<std::vector<double>> Reset() override;
  VectorStepResult Step(const std::vector<double>& actions) override;
  int NumAgents() const override { return config_.num_agents; }
  bool AgentActive(int agent) const override { return AgentStarted(agent); }
  size_t ObservationDim() const override;

  // --- Introspection for tests/benchmarks/evaluation harnesses. ---
  const MultiFlowCcEnvConfig& config() const { return config_; }
  const LinkParams& current_link() const { return link_; }
  double current_bandwidth_bps() const;
  double now_s() const { return env_time_s_; }
  double step_duration_s() const { return step_s_; }
  // Flows currently sharing the bottleneck (started agents + scheduled competitors).
  int ActiveFlowCount() const;
  bool AgentStarted(int agent) const;
  // Propagation-only RTT of agent i's path (hops both ways + its extra delay);
  // the reward's latency reference, so heterogeneous-RTT and multi-hop flows
  // are scored against their own floor rather than the one-hop base.
  double AgentBaseRttS(int agent) const {
    return agent_base_rtt_s_[static_cast<size_t>(agent)];
  }
  double agent_rate_bps(int agent) const;
  const MonitorReport& agent_last_report(int agent) const;
  // Scheduled preference switches already applied this episode (resets to 0 on
  // Reset) — lets tests and harnesses pin the switching step exactly.
  int applied_switch_count() const { return static_cast<int>(next_switch_); }
  // Jain's fairness index over the started agents' last-MI delivered throughputs.
  double LastStepJainIndex() const;
  // Per-agent mean delivered throughput (bps) over [from_s, to_s) of the current
  // episode, from the simulator's ACK log — the steady-state fairness metric.
  std::vector<double> AgentAvgThroughputsBps(double from_s, double to_s) const;
  // Jain's index over AgentAvgThroughputsBps — the paper's Fig. 12 metric.
  double JainIndex(double from_s, double to_s) const;

  // Persists / restores the cross-episode state (env Rng plus the cached per-env
  // trace) for training checkpoints; see CcEnv::SerializeState. Per-episode state
  // (weights, the network) is rebuilt by the trainer / Reset.
  void SerializeState(BinaryWriter* w) const;
  bool DeserializeState(BinaryReader* r);

 private:
  std::vector<double> BuildObservation(int agent) const;
  double FairShareBps() const;
  // Applies the plan's fixed/sampled weights for a fresh episode and rewinds the
  // switch schedule.
  void ApplyObjectivePlanForEpisode();
  // Applies every scheduled switch due at the monitor interval starting now.
  void ApplyDuePreferenceSwitches();

  MultiFlowCcEnvConfig config_;
  Rng rng_;
  bool cached_trace_valid_ = false;
  BandwidthTrace cached_trace_;
  // Episode weights (what rewards and observations use) and the externally set base
  // they rewind to each Reset — a mid-episode switch must not leak into the next
  // episode, and plan-less envs must keep the historical "sticky SetObjective"
  // behaviour.
  std::vector<WeightVector> weights_;
  std::vector<WeightVector> base_weights_;
  std::vector<PreferenceSwitch> switches_;  // config_.objectives.switches, time-sorted
  size_t next_switch_ = 0;
  std::vector<MiHistoryTracker> histories_;
  LinkParams link_;
  std::unique_ptr<PacketNetwork> net_;
  std::vector<ExternalRateCc*> agent_ccs_;  // owned by net_
  std::vector<int> agent_flow_ids_;
  std::vector<double> agent_start_s_;
  std::vector<double> agent_base_rtt_s_;
  std::vector<int> competitor_flow_ids_;
  double step_s_ = 0.0;
  double env_time_s_ = 0.0;
  int step_count_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_ENVS_MULTI_FLOW_CC_ENV_H_
