// The congestion-control training environment (§3, §4.1 and §5 of the paper).
//
// One episode = one randomly sampled bottleneck link (Table 3 ranges) driven at
// monitor-interval granularity by the fluid link model. The agent observes the weight
// vector w⃗ plus a length-η history of network statistics g⃗_t = <l_t, p_t, q_t>
// (sending ratio, latency ratio, latency gradient), acts through the multiplicative rate
// update of Eq. (1), and receives the dynamic reward of Eq. (2). With
// include_weight_in_obs = false and a fixed weight this is exactly the single-objective
// Aurora environment used as the paper's RL baseline.
#ifndef MOCC_SRC_ENVS_CC_ENV_H_
#define MOCC_SRC_ENVS_CC_ENV_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/core/reward.h"
#include "src/core/weight_vector.h"
#include "src/envs/env.h"
#include "src/envs/mi_history.h"
#include "src/netsim/fluid_link.h"
#include "src/netsim/link_params.h"

namespace mocc {

struct CcEnvConfig {
  LinkParamsRange link_range = TrainingRange();
  size_t history_len = 10;          // η (Table 2)
  double action_scale = 0.025;      // α (Table 2)
  double mi_rtt_multiple = 1.0;     // monitor interval = multiple * current RTT
  double mi_min_duration_s = 0.01;
  int max_steps_per_episode = 400;
  bool include_weight_in_obs = true;  // false reproduces single-objective Aurora
  // Widens each history entry with the MI's ECN-mark fraction (MiHistoryTracker).
  // The fluid link never marks, so on this env the component is always 0 — the
  // flag only keeps the observation layout consistent with an ECN-aware model.
  bool include_ecn_in_obs = false;
  // true: reward uses the simulator's ground-truth capacity/base latency (offline
  // training); false: uses OnlineLinkEstimator (the paper's online phase).
  bool ground_truth_reward = true;
  bool stochastic_loss = true;
  double min_rate_bps = 0.05e6;
  // Training-time floor on the sending rate as a fraction of the (ground-truth) link
  // bandwidth, as in Aurora's gym environment: it removes the degenerate idle attractor
  // for latency/loss-leaning objectives so the policy learns to regulate AROUND
  // capacity. Deployment (MoccApi) uses only the absolute floor.
  double min_rate_fraction_of_bw = 0.2;
  // Sending rate is clamped to this multiple of the (ground truth) link bandwidth to
  // keep the fluid model numerically sane; generous enough to let the agent overshoot.
  double max_rate_multiple = 8.0;
};

class CcEnv : public Env {
 public:
  CcEnv(const CcEnvConfig& config, uint64_t seed);

  // Sets the objective used in both the observation and the reward. May be changed
  // between episodes (offline traversal) or between steps (online adaptation).
  void SetObjective(const WeightVector& w) { weight_ = w.Sanitized(); }
  const WeightVector& objective() const { return weight_; }

  // Pins the environment to one specific link instead of sampling per episode.
  void SetFixedLink(const LinkParams& params) { fixed_link_ = params; }
  void ClearFixedLink() { fixed_link_.reset(); }

  // Installs a bandwidth trace applied after each Reset (for trace-driven workloads).
  //
  // Precedence when combined with SetFixedLink (or the sampled per-episode link): the
  // trace wins for bandwidth. The LinkParams still supply the propagation delay, queue
  // capacity, random-loss rate, and the fallback bandwidth before the trace's first
  // step. Everything bandwidth-dependent — the initial rate draw, the rate clamps and
  // the reward's capacity term — follows the trace, not LinkParams::bandwidth_bps.
  void SetBandwidthTrace(BandwidthTrace trace) { trace_ = std::move(trace); }
  void ClearBandwidthTrace() { trace_ = BandwidthTrace(); }

  // Installs a per-episode trace generator, invoked at each Reset with the episode's
  // link and the environment Rng (scenario-sampled workloads, e.g. a fresh random-walk
  // trace every episode). Wins over SetBandwidthTrace; pass nullptr to remove.
  //
  // With cache_per_env, the generator runs exactly once — on the env's first Reset,
  // with that episode's link and the env Rng — and every later episode reuses the
  // constructed schedule (the link's delay/queue/loss still resample per episode;
  // bandwidth follows the cached trace either way). This is for generators whose
  // construction cost rivals an episode (e.g. the synthetic cellular schedule, which
  // expands to per-second delivery opportunities): envs differ by seed, episodes
  // within one env share the schedule.
  using TraceGenerator = std::function<BandwidthTrace(const LinkParams&, Rng*)>;
  void SetTraceGenerator(TraceGenerator generator, bool cache_per_env = false) {
    trace_generator_ = std::move(generator);
    trace_cache_per_env_ = cache_per_env;
    cached_trace_valid_ = false;
  }

  std::vector<double> Reset() override;
  StepResult Step(double action) override;
  size_t ObservationDim() const override;

  // Introspection for evaluation harnesses.
  const MonitorReport& last_report() const { return last_report_; }
  const LinkParams& current_link() const { return link_.params(); }
  // Effective bottleneck bandwidth right now — honours the installed trace, unlike
  // current_link().bandwidth_bps which is the LinkParams fallback.
  double current_bandwidth_bps() const { return link_.CurrentBandwidthBps(); }
  double current_rate_bps() const { return rate_bps_; }
  const CcEnvConfig& config() const { return config_; }

  // Applies Eq. (1): multiplicative rate update with damping factor α.
  static double ApplyRateAction(double rate_bps, double action, double alpha);

  // Persists / restores the cross-episode state (env and link Rng streams plus the
  // cached per-env trace), so a training run resumed from a checkpoint draws the
  // same episode sequence it would have drawn uninterrupted. Per-episode state is
  // excluded: rollout collection always begins with Reset.
  void SerializeState(BinaryWriter* w) const;
  bool DeserializeState(BinaryReader* r);

 private:
  std::vector<double> BuildObservation() const;
  double MiDurationS() const;

  CcEnvConfig config_;
  Rng rng_;
  FluidLink link_;
  BandwidthTrace trace_;
  TraceGenerator trace_generator_;
  bool trace_cache_per_env_ = false;
  bool cached_trace_valid_ = false;
  BandwidthTrace cached_trace_;
  std::optional<LinkParams> fixed_link_;
  WeightVector weight_;
  OnlineLinkEstimator estimator_;
  MiHistoryTracker history_;
  MonitorReport last_report_;
  double rate_bps_ = 1e6;
  double prev_avg_rtt_s_ = 0.0;
  int step_count_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_ENVS_CC_ENV_H_
