#include "src/envs/scenario.h"

#include <cmath>
#include <utility>

#include "src/apps/media_source.h"
#include "src/baselines/allegro.h"
#include "src/baselines/bbr.h"
#include "src/baselines/copa.h"
#include "src/baselines/cubic.h"
#include "src/baselines/newreno.h"
#include "src/baselines/vegas.h"
#include "src/baselines/vivace.h"

namespace mocc {
namespace {

// Long enough to cover any episode (400 steps x <=0.1 s plus warm-up).
constexpr double kTraceHorizonS = 120.0;

// The catalog's fixed mid-range training link (Table 3 training row midpoint).
LinkParams StaticTrainingLink() {
  LinkParams link;
  link.bandwidth_bps = 3e6;
  link.one_way_delay_s = 0.020;
  link.queue_capacity_pkts = 500;
  link.random_loss_rate = 0.0;
  return link;
}

// Synthetic cellular-style delivery schedule in mahimahi format: per-second delivery
// rate follows a jittered sinusoid around the link bandwidth, then each second emits
// that many evenly spaced MTU delivery opportunities. Exercises the same
// FromMahimahiTimestamps path as a real trace file, with no file dependency.
BandwidthTrace SyntheticCellularTrace(const LinkParams& link, Rng* rng) {
  std::vector<double> timestamps_ms;
  const double phase = rng->Uniform(0.0, 2.0 * 3.14159265358979323846);
  for (int second = 0; second < static_cast<int>(kTraceHorizonS); ++second) {
    const double swing = 0.5 * std::sin(0.35 * static_cast<double>(second) + phase);
    const double jitter = rng->Uniform(-0.1, 0.1);
    const double rate_bps = link.bandwidth_bps * std::max(0.15, 1.0 + swing + jitter);
    const int packets = std::max(
        1, static_cast<int>(rate_bps / static_cast<double>(kDefaultPacketSizeBits)));
    for (int p = 0; p < packets; ++p) {
      timestamps_ms.push_back(
          (static_cast<double>(second) + static_cast<double>(p) / packets) * 1e3);
    }
  }
  return BandwidthTrace::FromMahimahiTimestamps(timestamps_ms, /*window_s=*/1.0);
}

std::vector<Scenario> BuildCatalog() {
  std::vector<Scenario> catalog;

  {
    Scenario s;
    s.name = "static";
    s.description = "single flow, fixed mid-range training link, constant bandwidth";
    s.fixed_link = StaticTrainingLink();
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "sampled-link";
    s.description = "single flow, per-episode link sampled from the Table-3 training row";
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "oscillating";
    s.description =
        "single flow, bandwidth oscillating between 0.5x and 1.5x the sampled link "
        "every 5 s (Fig 1a-style varying link)";
    s.trace_generator = [](const LinkParams& link, Rng*) {
      return BandwidthTrace::Oscillating(0.5 * link.bandwidth_bps,
                                         1.5 * link.bandwidth_bps, 5.0, kTraceHorizonS);
    };
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "random-walk";
    s.description =
        "single flow, bandwidth resampled uniformly in [0.5x, 1.5x] of the sampled "
        "link every 2 s — a fresh walk every episode";
    s.trace_generator = [](const LinkParams& link, Rng* rng) {
      return BandwidthTrace::RandomWalk(0.5 * link.bandwidth_bps,
                                        1.5 * link.bandwidth_bps, 2.0, kTraceHorizonS,
                                        rng);
    };
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "cellular";
    s.description =
        "single flow on a synthetic mahimahi-style cellular schedule (sinusoid-"
        "modulated per-second delivery opportunities)";
    s.trace_generator = SyntheticCellularTrace;
    // Expanding the schedule to per-packet delivery opportunities costs as much as a
    // whole episode; one schedule per env (fresh per seed) keeps the env-step rate at
    // the other single-flow scenarios' level — bench_scenarios asserts the ratio.
    s.cache_trace_per_env = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "flow-arrival";
    s.description =
        "3 agents arriving 4 s apart plus a CUBIC flow joining at 8 s and departing "
        "at 20 s — arrival/departure dynamics on one bottleneck";
    s.num_agents = 3;
    s.agent_stagger_s = 4.0;
    s.competitor_schemes = {"cubic"};
    s.competitor_start_s = 8.0;
    s.competitor_stop_s = 20.0;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "many-flow";
    s.description = "8 agents contending for one sampled bottleneck, fair-share reward";
    s.num_agents = 8;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "vs-cubic";
    s.description = "2 agents sharing the bottleneck with 2 CUBIC flows (friendliness)";
    s.num_agents = 2;
    s.competitor_schemes = {"cubic", "cubic"};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "vs-bbr";
    s.description = "2 agents sharing the bottleneck with 2 BBR flows (friendliness)";
    s.num_agents = 2;
    s.competitor_schemes = {"bbr", "bbr"};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "hetero-rtt";
    s.description =
        "4 agents on one bottleneck with per-flow extra one-way delay 0/10/25/50 ms "
        "— RTT-unfairness contention (fair-share reward vs each flow's own base RTT)";
    s.num_agents = 4;
    s.agent_extra_delay_s = {0.0, 0.010, 0.025, 0.050};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "parking-lot";
    s.description =
        "3 agents crossing a 3-hop parking lot end to end, with one CUBIC cross "
        "flow loading each hop — multi-bottleneck contention";
    s.num_agents = 3;
    s.topology.kind = TopologyKind::kParkingLot;
    s.topology.hops = 3;
    s.competitor_schemes = {"cubic", "cubic", "cubic"};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "reverse-path";
    s.description =
        "2 agents whose ACKs share a reverse link that 2 CUBIC flows drive in "
        "their data direction — ACK queueing behind reverse-path congestion";
    s.num_agents = 2;
    s.topology.kind = TopologyKind::kReversePath;
    s.competitor_schemes = {"cubic", "cubic"};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "n-leaf-dumbbell";
    s.description =
        "10 agents entering through 5 fast leaf-in links (4x bandwidth, 1/4 "
        "delay), crossing one shared bottleneck, exiting through matching "
        "leaf-out links — the ns-3 N-leaf dumbbell at fleet flow counts";
    s.num_agents = 10;
    s.topology.kind = TopologyKind::kNLeafDumbbell;
    s.topology.leaf_pairs = 5;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "asym-parking-lot";
    s.description =
        "3 agents crossing a 3-hop parking lot whose middle hop has half the "
        "bandwidth, 1.5x the delay and half the queue — one true bottleneck "
        "among equals, with a CUBIC cross flow per hop";
    s.num_agents = 3;
    s.topology.kind = TopologyKind::kParkingLot;
    s.topology.hops = 3;
    s.topology.link_scales = {{1.0, 1.0, 1.0}, {0.5, 1.5, 0.5}, {1.0, 1.0, 1.0}};
    s.competitor_schemes = {"cubic", "cubic", "cubic"};
    catalog.push_back(std::move(s));
  }
  // --- Heterogeneous-objective scenarios: different agents on ONE bottleneck want
  // different throughput/latency/loss trade-offs, and preferences can change
  // mid-episode — the multi-objective training counterpart of the paper's online
  // adjustment story (§4.3) and DeepCC's application-driven case.
  {
    Scenario s;
    s.name = "mixed-objective";
    s.description =
        "4 agents on one sampled bottleneck, alternating throughput-seekers "
        "<0.8,0.1,0.1> and latency-seekers <0.1,0.8,0.1> — heterogeneous objectives "
        "in contention";
    s.num_agents = 4;
    s.objectives.fixed = {ThroughputObjective(), LatencyObjective()};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "sampled-objective";
    s.description =
        "3 agents whose weight vectors are resampled per episode, uniformly over "
        "the floored simplex — preference-conditioning coverage under contention";
    s.num_agents = 3;
    s.objectives.sample_per_episode = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "preference-switch";
    s.description =
        "2 agents starting throughput-weighted; at t=8 s every agent switches to "
        "the latency objective mid-episode — online preference adjustment";
    s.num_agents = 2;
    s.objectives.fixed = {ThroughputObjective()};
    s.objectives.switches = {{/*time_s=*/8.0, /*agent=*/-1, LatencyObjective()}};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "mixed-objective-rtt";
    s.description =
        "hetero-rtt ladder (0/10/25/50 ms) where the short-RTT flows seek "
        "throughput and the long-RTT flows seek latency — objective and RTT "
        "heterogeneity combined";
    s.num_agents = 4;
    s.agent_extra_delay_s = {0.0, 0.010, 0.025, 0.050};
    s.objectives.fixed = {ThroughputObjective(), ThroughputObjective(),
                          LatencyObjective(), LatencyObjective()};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "mixed-objective-parking-lot";
    s.description =
        "3 agents crossing the 3-hop parking lot with throughput/latency/balanced "
        "objectives and one CUBIC cross flow per hop — heterogeneous objectives on "
        "a multi-bottleneck path";
    s.num_agents = 3;
    s.topology.kind = TopologyKind::kParkingLot;
    s.topology.hops = 3;
    s.competitor_schemes = {"cubic", "cubic", "cubic"};
    s.objectives.fixed = {ThroughputObjective(), LatencyObjective(),
                          BalancedObjective()};
    catalog.push_back(std::move(s));
  }
  // --- Fault-injection scenarios: the bottleneck misbehaves on a deterministic
  // schedule (blackouts, loss bursts), exercising the deployment guardrails and
  // the policies' out-of-distribution behaviour (DeepCC's graceful-degradation
  // requirement). Fault windows are pure functions of simulation time; the only
  // randomness is the optional per-episode phase, drawn from the env's Rng.
  {
    Scenario s;
    s.name = "blackout";
    s.description =
        "2 agents on a bottleneck that goes fully dark for 1.5 s out of every "
        "10 s — link-outage recovery under contention";
    s.num_agents = 2;
    s.fault.blackout_period_s = 10.0;
    s.fault.blackout_duration_s = 1.5;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "flaky-link";
    s.description =
        "2 agents on a flapping bottleneck: a 200 ms outage every 2 s with a "
        "per-episode random phase, plus 50 ms delay spikes — rapid link flaps";
    s.num_agents = 2;
    s.fault.blackout_period_s = 2.0;
    s.fault.blackout_duration_s = 0.2;
    s.fault.delay_spike_period_s = 2.0;
    s.fault.delay_spike_duration_s = 0.4;
    s.fault.delay_spike_extra_s = 0.050;
    s.fault.randomize_phase = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "loss-burst";
    s.description =
        "2 agents on a bottleneck whose wire loss jumps to 20% for 1 s out of "
        "every 8 s — non-congestion loss bursts";
    s.num_agents = 2;
    s.fault.loss_burst_period_s = 8.0;
    s.fault.loss_burst_duration_s = 1.0;
    s.fault.loss_burst_rate = 0.20;
    catalog.push_back(std::move(s));
  }
  // --- Real-world link corpus: iid wire loss, AQM/ECN bottlenecks, wifi-style
  // service jitter, and app-limited media cross traffic. All are packet-level
  // (the fluid model has no queue to manage, no wire loss to survive and no
  // packets to mark), so even the single-agent entries run on MultiFlowCcEnv.
  {
    Scenario s;
    s.name = "lossy-link";
    s.description =
        "single agent on a 12 Mbps / 40 ms RTT link with 1% iid wire loss — "
        "loss-based schemes collapse here (the paper's wifi story)";
    s.packet_level = true;
    LinkParams link;
    link.bandwidth_bps = 12e6;
    link.one_way_delay_s = 0.020;
    link.queue_capacity_pkts = 500;
    link.random_loss_rate = 0.01;
    s.fixed_link = link;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "red-ecn";
    s.description =
        "single agent behind a RED bottleneck that ECN-marks instead of dropping "
        "— early congestion signals on the observation's ECN channel";
    s.fixed_link = StaticTrainingLink();
    s.aqm.kind = AqmKind::kRed;
    s.aqm.ecn = true;
    // Thresholds sized to this link's ~10-packet BDP (the classic 50/150
    // defaults would never fire at 3 Mbps): the band starts right at a
    // well-behaved policy's standing queue, so marks are a genuinely early
    // signal, and the fast EWMA keeps the marking responsive at ~250 pkt/s.
    s.aqm.red_min_pkts = 5.0;
    s.aqm.red_max_pkts = 40.0;
    s.aqm.red_weight = 0.01;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "codel";
    s.description =
        "single agent behind a CoDel bottleneck (5 ms target, 100 ms interval) "
        "— sojourn-time dropping punishes standing queues";
    s.fixed_link = StaticTrainingLink();
    s.aqm.kind = AqmKind::kCodel;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wifi-jitter";
    s.description =
        "single agent on a link whose service time burst-degrades 3x for 100 ms "
        "out of every 500 ms (random phase) — wifi-style jittery capacity";
    s.fixed_link = StaticTrainingLink();
    s.wifi_jitter.burst_period_s = 0.5;
    s.wifi_jitter.burst_duration_s = 0.1;
    s.wifi_jitter.service_slowdown = 3.0;
    s.wifi_jitter.randomize_phase = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wifi-jitter-compete";
    s.description =
        "2 agents and a CUBIC flow contending on the wifi-jitter link — jittery "
        "capacity under contention";
    s.num_agents = 2;
    s.competitor_schemes = {"cubic"};
    s.wifi_jitter.burst_period_s = 0.5;
    s.wifi_jitter.burst_duration_s = 0.1;
    s.wifi_jitter.service_slowdown = 3.0;
    s.wifi_jitter.randomize_phase = true;
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "rtc-compete";
    s.description =
        "2 agents sharing the bottleneck with an app-limited RTC source (delay-"
        "adaptive encoder capped at 2.5 Mbps) — live-media cross traffic";
    s.num_agents = 2;
    s.competitor_schemes = {"rtc"};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "video-compete";
    s.description =
        "2 agents sharing the bottleneck with an on/off ABR video client that "
        "bursts chunks and idles on a full buffer — bursty cross traffic";
    s.num_agents = 2;
    s.competitor_schemes = {"video"};
    catalog.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy-vs-cubic";
    s.description =
        "2 agents and 1 CUBIC flow on the 1% iid wire-loss link — friendliness "
        "where the competitor is loss-collapsed";
    s.num_agents = 2;
    s.competitor_schemes = {"cubic"};
    LinkParams link;
    link.bandwidth_bps = 12e6;
    link.one_way_delay_s = 0.020;
    link.queue_capacity_pkts = 500;
    link.random_loss_rate = 0.01;
    s.fixed_link = link;
    catalog.push_back(std::move(s));
  }
  return catalog;
}

}  // namespace

std::unique_ptr<CongestionControl> MakeBaselineCc(const std::string& scheme) {
  if (scheme == "cubic") {
    return std::make_unique<CubicCc>();
  }
  if (scheme == "newreno") {
    return std::make_unique<NewRenoCc>();
  }
  if (scheme == "vegas") {
    return std::make_unique<VegasCc>();
  }
  if (scheme == "bbr") {
    return std::make_unique<BbrCc>();
  }
  if (scheme == "copa") {
    return std::make_unique<CopaCc>();
  }
  if (scheme == "allegro") {
    return std::make_unique<AllegroCc>();
  }
  if (scheme == "vivace") {
    return std::make_unique<VivaceCc>();
  }
  if (scheme == "rtc") {
    return std::make_unique<RtcSourceCc>();
  }
  if (scheme == "video") {
    return std::make_unique<VideoSourceCc>();
  }
  return nullptr;
}

std::unique_ptr<CcEnv> Scenario::MakeSingleFlowEnv(const CcEnvConfig& base,
                                                   uint64_t seed) const {
  CcEnvConfig config = base;
  if (link_range.has_value()) {
    config.link_range = *link_range;
  }
  auto env = std::make_unique<CcEnv>(config, seed);
  if (fixed_link.has_value()) {
    env->SetFixedLink(*fixed_link);
  }
  if (trace_generator) {
    env->SetTraceGenerator(trace_generator, cache_trace_per_env);
  }
  return env;
}

std::unique_ptr<MultiFlowCcEnv> Scenario::MakeMultiFlowEnv(const CcEnvConfig& base,
                                                           uint64_t seed) const {
  MultiFlowCcEnvConfig config;
  config.num_agents = num_agents;
  config.link_range = link_range.has_value() ? *link_range : base.link_range;
  config.fixed_link = fixed_link;
  config.topology = topology;
  config.agent_extra_delay_s = agent_extra_delay_s;
  config.trace_generator = trace_generator;
  config.cache_trace_per_env = cache_trace_per_env;
  for (const std::string& scheme : competitor_schemes) {
    CompetitorFlow competitor;
    competitor.name = scheme;
    competitor.make = [scheme]() { return MakeBaselineCc(scheme); };
    competitor.start_time_s = competitor_start_s;
    competitor.stop_time_s = competitor_stop_s;
    config.competitors.push_back(std::move(competitor));
  }
  config.agent_stagger_s = agent_stagger_s;
  config.objectives = objectives;
  config.fault = fault;
  config.aqm = aqm;
  config.wifi_jitter = wifi_jitter;
  config.include_ecn_in_obs = base.include_ecn_in_obs;
  config.history_len = base.history_len;
  config.action_scale = base.action_scale;
  config.step_rtt_multiple = base.mi_rtt_multiple;
  config.step_min_duration_s = base.mi_min_duration_s;
  config.max_steps_per_episode = base.max_steps_per_episode;
  config.include_weight_in_obs = base.include_weight_in_obs;
  config.fair_share_reward = fair_share_reward;
  config.min_rate_bps = base.min_rate_bps;
  config.min_rate_fraction_of_share = base.min_rate_fraction_of_bw;
  config.max_rate_multiple = base.max_rate_multiple;
  return std::make_unique<MultiFlowCcEnv>(config, seed);
}

ScenarioRegistry::ScenarioRegistry() : scenarios_(BuildCatalog()) {}

const ScenarioRegistry& ScenarioRegistry::Global() {
  static const ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) {
    names.push_back(scenario.name);
  }
  return names;
}

std::optional<Scenario> ScenarioRegistry::Resolve(const std::string& name,
                                                  std::string* error) const {
  if (const Scenario* found = Find(name)) {
    return *found;
  }
  constexpr const char kMahimahiPrefix[] = "mahimahi:";
  if (name.rfind(kMahimahiPrefix, 0) == 0) {
    const std::string path = name.substr(sizeof(kMahimahiPrefix) - 1);
    BandwidthTrace trace = BandwidthTrace::FromMahimahiFile(path);
    if (trace.empty()) {
      if (error != nullptr) {
        *error = "cannot read mahimahi trace '" + path + "'";
      }
      return std::nullopt;
    }
    Scenario s;
    s.name = name;
    s.description = "single flow driven by the mahimahi trace " + path;
    s.fixed_link = StaticTrainingLink();
    // Shared ownership keeps Scenario copies cheap and the per-episode cost at one
    // trace copy (the install into the link), independent of trace length.
    auto shared = std::make_shared<const BandwidthTrace>(std::move(trace));
    s.trace_generator = [shared](const LinkParams&, Rng*) { return *shared; };
    return s;
  }
  if (error != nullptr) {
    *error = "unknown scenario '" + name + "'";
  }
  return std::nullopt;
}

std::optional<std::vector<Scenario>> ScenarioRegistry::ResolveList(
    const std::string& csv, std::string* error) const {
  std::vector<Scenario> scenarios;
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) {
      end = csv.size();
    }
    const std::string name = csv.substr(begin, end - begin);
    if (!name.empty()) {
      std::optional<Scenario> scenario = Resolve(name, error);
      if (!scenario.has_value()) {
        return std::nullopt;
      }
      scenarios.push_back(std::move(*scenario));
    }
    begin = end + 1;
  }
  if (scenarios.empty()) {
    if (error != nullptr) {
      *error = "empty scenario list";
    }
    return std::nullopt;
  }
  return scenarios;
}

void PrintScenarioCatalog(std::FILE* out) {
  for (const Scenario& s : ScenarioRegistry::Global().scenarios()) {
    std::fprintf(out, "%-28s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::fprintf(out, "%-28s %s\n", "mahimahi:PATH",
               "single flow driven by the mahimahi trace file at PATH");
}

}  // namespace mocc
