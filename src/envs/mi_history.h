// Builds the network-condition state vector g⃗(t,η) of §4.1 from a stream of monitor
// reports: per-interval <sending ratio l_t, latency ratio p_t, latency gradient q_t>,
// kept as a fixed-length history. Shared by the training environment and by the deployed
// RL congestion controllers (Aurora, Orca, MOCC), so observations are identical in
// training and deployment.
#ifndef MOCC_SRC_ENVS_MI_HISTORY_H_
#define MOCC_SRC_ENVS_MI_HISTORY_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/netsim/cc_interface.h"

namespace mocc {

class MiHistoryTracker {
 public:
  // With include_ecn the per-interval entry widens from 3 to 4 values by
  // appending the MI's ECN-mark fraction (marked/acked, clamped to [0,1]); the
  // neutral padding value for it is 0. Off by default: the 3-wide layout (and
  // thus every existing checkpoint's observation dimension) is unchanged.
  explicit MiHistoryTracker(size_t history_len, bool include_ecn = false)
      : history_len_(history_len), include_ecn_(include_ecn) {}

  void Reset() {
    history_.clear();
    prev_avg_rtt_s_ = 0.0;
    min_rtt_hist_s_ = 0.0;
  }

  // Ingests one monitor interval's statistics.
  void Push(const MonitorReport& report) {
    const double acked = static_cast<double>(std::max<int64_t>(1, report.packets_acked));
    const double sent = static_cast<double>(report.packets_sent);
    const double send_ratio = std::clamp(sent / acked, 0.0, kMaxSendRatio);

    if (min_rtt_hist_s_ <= 0.0 ||
        (report.avg_rtt_s > 0.0 && report.avg_rtt_s < min_rtt_hist_s_)) {
      min_rtt_hist_s_ = report.avg_rtt_s;
    }
    const double latency_ratio =
        min_rtt_hist_s_ > 0.0 && report.avg_rtt_s > 0.0
            ? std::clamp(report.avg_rtt_s / min_rtt_hist_s_, 1.0, kMaxLatencyRatio)
            : 1.0;

    double gradient = 0.0;
    if (prev_avg_rtt_s_ > 0.0 && report.duration_s > 0.0 && report.avg_rtt_s > 0.0) {
      gradient = std::clamp((report.avg_rtt_s - prev_avg_rtt_s_) / report.duration_s,
                            -kMaxLatencyGradient, kMaxLatencyGradient);
    }
    if (report.avg_rtt_s > 0.0) {
      prev_avg_rtt_s_ = report.avg_rtt_s;
    }

    const double ecn = std::clamp(report.ecn_rate, 0.0, 1.0);
    history_.push_back({send_ratio, latency_ratio, gradient, ecn});
    while (history_.size() > history_len_) {
      history_.pop_front();
    }
  }

  // Appends the flattened history (entry_width() x η values, oldest first,
  // padded with the neutral observation <1,1,0[,0]>) to `obs`.
  void AppendObservation(std::vector<double>* obs) const {
    const size_t missing = history_len_ - history_.size();
    for (size_t i = 0; i < missing; ++i) {
      obs->push_back(1.0);
      obs->push_back(1.0);
      obs->push_back(0.0);
      if (include_ecn_) {
        obs->push_back(0.0);
      }
    }
    for (const auto& g : history_) {
      obs->push_back(g[0]);
      obs->push_back(g[1]);
      obs->push_back(g[2]);
      if (include_ecn_) {
        obs->push_back(g[3]);
      }
    }
  }

  size_t history_len() const { return history_len_; }
  size_t entry_width() const { return include_ecn_ ? 4 : 3; }
  bool include_ecn() const { return include_ecn_; }
  double min_rtt_hist_s() const { return min_rtt_hist_s_; }

  static constexpr double kMaxSendRatio = 10.0;
  static constexpr double kMaxLatencyRatio = 10.0;
  static constexpr double kMaxLatencyGradient = 10.0;

 private:
  size_t history_len_;
  bool include_ecn_ = false;
  std::deque<std::array<double, 4>> history_;
  double prev_avg_rtt_s_ = 0.0;
  double min_rtt_hist_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_ENVS_MI_HISTORY_H_
