#include "src/envs/multi_flow_cc_env.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/stats.h"
#include "src/core/reward.h"
#include "src/envs/cc_env.h"

namespace mocc {
namespace {

// Environment step boundaries and flow monitor events land on the same time grid but
// accumulate floating-point error in different summation orders; running a hair past
// the boundary keeps every boundary-aligned event inside its intended step.
constexpr double kBoundarySlopS = 1e-9;

// An ECN mark is a congestion signal the sender was asked to react to before the
// queue overflows; folding a fraction of the mark rate into the reward's loss term
// (DCTCP-style) makes backing off on marks pay. Half-weight: a mark costs less than
// a real loss (the packet was still delivered). Mark-free reports are untouched, so
// non-ECN scenarios score bit-identically.
constexpr double kEcnMarkLossFrac = 0.5;

}  // namespace

MultiFlowCcEnv::MultiFlowCcEnv(const MultiFlowCcEnvConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  assert(config_.num_agents >= 1);
  assert(config_.history_len > 0);
  for (int i = 0; i < config_.num_agents; ++i) {
    weights_.emplace_back();
    histories_.emplace_back(config_.history_len, config_.include_ecn_in_obs);
  }
  // Plan-fixed mixes seed the weights so the heterogeneous assignment holds even
  // before the first Reset (e.g. for agent_objective probes). No rng: sampling
  // before the first episode would shift the env's draw stream.
  weights_ = config_.objectives.EpisodeWeights(config_.num_agents,
                                               std::move(weights_), nullptr);
  base_weights_ = weights_;
  // The switch schedule is applied by scanning forward in time; episode events must
  // not depend on the order switches were listed in the config.
  switches_ = config_.objectives.switches;
  std::stable_sort(switches_.begin(), switches_.end(),
                   [](const PreferenceSwitch& a, const PreferenceSwitch& b) {
                     return a.time_s < b.time_s;
                   });
}

void MultiFlowCcEnv::SetObjective(const WeightVector& w) {
  for (int i = 0; i < config_.num_agents; ++i) {
    SetAgentObjective(i, w);
  }
}

void MultiFlowCcEnv::SetAgentObjective(int agent, const WeightVector& w) {
  weights_[static_cast<size_t>(agent)] = w.Sanitized();
  // External objective control also moves the per-episode base, so the assignment
  // survives episode boundaries (unless an objective plan overrides it at Reset).
  base_weights_[static_cast<size_t>(agent)] = weights_[static_cast<size_t>(agent)];
}

std::vector<WeightVector> ObjectivePlan::EpisodeWeights(
    int num_agents, std::vector<WeightVector> base, Rng* rng) const {
  assert(static_cast<int>(base.size()) == num_agents);
  if (!fixed.empty()) {
    for (int i = 0; i < num_agents; ++i) {
      base[static_cast<size_t>(i)] =
          fixed[static_cast<size_t>(i) % fixed.size()].Sanitized();
    }
  }
  if (sample_per_episode && rng != nullptr) {
    // Drawn in agent order: two draws per agent, every episode, so the draw
    // stream — and with it pool-vs-serial bit-identity — is independent of who
    // else is collecting.
    for (int i = 0; i < num_agents; ++i) {
      base[static_cast<size_t>(i)] = SampleWeightVector(rng);
    }
  }
  return base;
}

void MultiFlowCcEnv::ApplyObjectivePlanForEpisode() {
  weights_ =
      config_.objectives.EpisodeWeights(config_.num_agents, base_weights_, &rng_);
  next_switch_ = 0;
}

void MultiFlowCcEnv::ApplyDuePreferenceSwitches() {
  while (next_switch_ < switches_.size() &&
         switches_[next_switch_].time_s <= env_time_s_ + kBoundarySlopS) {
    const PreferenceSwitch& sw = switches_[next_switch_];
    if (sw.agent < 0) {
      for (WeightVector& weight : weights_) {
        weight = sw.to.Sanitized();
      }
    } else if (sw.agent < config_.num_agents) {
      weights_[static_cast<size_t>(sw.agent)] = sw.to.Sanitized();
    }
    ++next_switch_;
  }
}

size_t MultiFlowCcEnv::ObservationDim() const {
  return (config_.include_weight_in_obs ? 3 : 0) +
         (config_.include_ecn_in_obs ? 4 : 3) * config_.history_len;
}

double MultiFlowCcEnv::current_bandwidth_bps() const {
  return net_ != nullptr ? net_->CurrentBandwidthBps() : link_.bandwidth_bps;
}

bool MultiFlowCcEnv::AgentStarted(int agent) const {
  return agent_start_s_[static_cast<size_t>(agent)] <= env_time_s_ + kBoundarySlopS;
}

int MultiFlowCcEnv::ActiveFlowCount() const {
  int active = 0;
  for (double start : agent_start_s_) {
    if (start <= env_time_s_ + kBoundarySlopS) {
      ++active;
    }
  }
  for (const CompetitorFlow& competitor : config_.competitors) {
    if (competitor.start_time_s <= env_time_s_ + kBoundarySlopS &&
        env_time_s_ < competitor.stop_time_s) {
      ++active;
    }
  }
  return std::max(1, active);
}

double MultiFlowCcEnv::FairShareBps() const {
  return current_bandwidth_bps() / static_cast<double>(ActiveFlowCount());
}

double MultiFlowCcEnv::agent_rate_bps(int agent) const {
  return agent_ccs_[static_cast<size_t>(agent)]->rate_bps();
}

const MonitorReport& MultiFlowCcEnv::agent_last_report(int agent) const {
  return agent_ccs_[static_cast<size_t>(agent)]->last_report();
}

std::vector<std::vector<double>> MultiFlowCcEnv::Reset() {
  // Episode weights first: the plan's fixed/sampled assignment (or the external
  // base) must be in place before the warm-up observations are built below. Plan
  // sampling draws from rng_ ahead of the link sample, so the weight draws are a
  // fixed-length prefix of the episode stream.
  ApplyObjectivePlanForEpisode();
  link_ = config_.fixed_link.has_value() ? *config_.fixed_link
                                         : config_.link_range.Sample(&rng_);
  // Same trace precedence as CcEnv: generator > fixed trace > constant bandwidth
  // (one shared ladder — ResolveEpisodeTrace — so the two envs cannot diverge).
  BandwidthTrace trace =
      ResolveEpisodeTrace(config_.trace_generator, config_.cache_trace_per_env,
                          &cached_trace_valid_, &cached_trace_, config_.trace, link_,
                          &rng_);

  NetworkTopology topology = BuildTopology(config_.topology, link_);
  if (!config_.fault.empty()) {
    FaultSpec fault = config_.fault;
    if (fault.randomize_phase) {
      fault.phase_s = rng_.Uniform(0.0, fault.MaxPeriodS());
    }
    topology.links[0].fault = fault;
  }
  if (!config_.wifi_jitter.empty()) {
    WifiJitterSpec jitter = config_.wifi_jitter;
    if (jitter.randomize_phase) {
      jitter.phase_s = rng_.Uniform(0.0, jitter.MaxPeriodS());
    }
    topology.links[0].wifi_jitter = jitter;
  }
  if (!config_.aqm.empty()) {
    topology.links[0].aqm = config_.aqm;
  }
  net_ = std::make_unique<PacketNetwork>(topology, rng_.NextU64());
  if (!trace.empty()) {
    net_->SetBandwidthTrace(std::move(trace));
  }

  // Per-agent propagation RTT: path hops both ways plus the agent's extra
  // delay. Homogeneous topologies keep the historical hops * BaseRttS() form
  // (bit-identical to the pre-topology env — per-hop summation rounds
  // differently for >=4 hops); heterogeneous ones (N-leaf, per-link scales)
  // sum their own path's propagation delays.
  const bool heterogeneous = config_.topology.Heterogeneous();
  const FlowPathSpec shared_path = AgentPath(config_.topology, 0);
  const double shared_path_rtt_s =
      heterogeneous ? PathPropRttS(topology, shared_path.path)
                    : static_cast<double>(shared_path.path.size()) * link_.BaseRttS();
  // One cyclic expansion of the configured extra-delay ladder, reused for both
  // the reward's RTT reference and the wire's FlowOptions so they cannot
  // disagree.
  std::vector<double> agent_extras(static_cast<size_t>(config_.num_agents), 0.0);
  std::vector<FlowPathSpec> agent_paths;
  agent_paths.reserve(static_cast<size_t>(config_.num_agents));
  agent_base_rtt_s_.clear();
  double max_agent_rtt_s = 0.0;
  for (int i = 0; i < config_.num_agents; ++i) {
    agent_paths.push_back(i == 0 ? shared_path : AgentPath(config_.topology, i));
    const FlowPathSpec& paths = agent_paths.back();
    const double path_rtt_s = (heterogeneous && i != 0)
                                  ? PathPropRttS(topology, paths.path)
                                  : shared_path_rtt_s;
    if (!config_.agent_extra_delay_s.empty()) {
      agent_extras[static_cast<size_t>(i)] =
          config_.agent_extra_delay_s[static_cast<size_t>(i) %
                                      config_.agent_extra_delay_s.size()];
    }
    const double rtt = path_rtt_s + 2.0 * agent_extras[static_cast<size_t>(i)];
    agent_base_rtt_s_.push_back(rtt);
    max_agent_rtt_s = std::max(max_agent_rtt_s, rtt);
  }

  // The synchronized step covers the slowest agent's propagation RTT, so every
  // flow's monitor interval spans at least one of its own round trips.
  step_s_ = std::max(config_.step_min_duration_s,
                     config_.step_rtt_multiple * max_agent_rtt_s);
  env_time_s_ = 0.0;
  step_count_ = 0;

  const double bw0 = net_->CurrentBandwidthBps();
  const int total_flows =
      config_.num_agents + static_cast<int>(config_.competitors.size());
  const double share0 = bw0 / static_cast<double>(std::max(1, total_flows));

  agent_ccs_.clear();
  agent_flow_ids_.clear();
  agent_start_s_.clear();
  competitor_flow_ids_.clear();
  for (int i = 0; i < config_.num_agents; ++i) {
    histories_[static_cast<size_t>(i)].Reset();
    // Flow arrivals snap to the step grid so every flow's monitor intervals stay
    // aligned with the synchronized environment step.
    const double start_s =
        std::round(static_cast<double>(i) * config_.agent_stagger_s / step_s_) * step_s_;
    // Start near a random fraction of the fair share so agents see both under- and
    // over-shoot regimes from the first step (the CcEnv initialisation, per flow).
    const double jitter = std::clamp(config_.initial_rate_jitter, 0.0, 1.0);
    const double initial_rate = std::max(
        config_.min_rate_bps, share0 * rng_.Uniform(1.0 - jitter, 1.0 + jitter));
    auto cc = std::make_unique<ExternalRateCc>(initial_rate);
    agent_ccs_.push_back(cc.get());
    FlowOptions options;
    options.start_time_s = start_s;
    options.mi_fixed_duration_s = step_s_;
    options.initial_rate_bps = initial_rate;
    options.path = agent_paths[static_cast<size_t>(i)].path;
    options.ack_path = agent_paths[static_cast<size_t>(i)].ack_path;
    options.extra_one_way_delay_s = agent_extras[static_cast<size_t>(i)];
    options.ecn_capable = config_.aqm.ecn;
    agent_flow_ids_.push_back(net_->AddFlow(std::move(cc), options));
    agent_start_s_.push_back(start_s);
  }
  int competitor_index = 0;
  for (const CompetitorFlow& competitor : config_.competitors) {
    assert(competitor.make != nullptr);
    const FlowPathSpec paths = CompetitorPath(config_.topology, competitor_index++);
    FlowOptions options;
    options.start_time_s = competitor.start_time_s;
    options.stop_time_s = competitor.stop_time_s;
    options.path = paths.path;
    options.ack_path = paths.ack_path;
    competitor_flow_ids_.push_back(net_->AddFlow(competitor.make(), options));
  }

  // Warm the histories with one neutral interval, as in CcEnv::Reset.
  env_time_s_ = step_s_;
  net_->Run(env_time_s_ + kBoundarySlopS);
  std::vector<std::vector<double>> observations;
  observations.reserve(static_cast<size_t>(config_.num_agents));
  for (int i = 0; i < config_.num_agents; ++i) {
    ExternalRateCc* cc = agent_ccs_[static_cast<size_t>(i)];
    if (cc->has_report()) {
      histories_[static_cast<size_t>(i)].Push(cc->last_report());
    }
    observations.push_back(BuildObservation(i));
  }
  return observations;
}

VectorStepResult MultiFlowCcEnv::Step(const std::vector<double>& actions) {
  assert(net_ != nullptr && "Step before Reset");
  assert(static_cast<int>(actions.size()) == config_.num_agents);
  // A switch scheduled at t takes effect for the monitor interval starting now
  // (env_time_s_): this step's reward and the observation returned from it both see
  // the new preference, while the action being applied was still chosen under the
  // old one — the deployed SetObservationPrefix semantics.
  ApplyDuePreferenceSwitches();
  const double bw_before = current_bandwidth_bps();
  const double share = bw_before / static_cast<double>(ActiveFlowCount());
  const double min_rate =
      std::max(config_.min_rate_bps, config_.min_rate_fraction_of_share * share);
  const double max_rate = std::max(min_rate, bw_before * config_.max_rate_multiple);
  for (int i = 0; i < config_.num_agents; ++i) {
    if (!AgentStarted(i)) {
      continue;  // the action of a not-yet-arrived flow is ignored
    }
    ExternalRateCc* cc = agent_ccs_[static_cast<size_t>(i)];
    const double action = std::clamp(actions[static_cast<size_t>(i)], -1e3, 1e3);
    double rate = CcEnv::ApplyRateAction(cc->rate_bps(), action, config_.action_scale);
    cc->set_rate_bps(std::clamp(rate, min_rate, max_rate));
  }

  env_time_s_ += step_s_;
  net_->Run(env_time_s_ + kBoundarySlopS);

  const double bw = current_bandwidth_bps();
  // Fair-share capacity approximates each flow's entitlement as bottleneck
  // bandwidth over active flows; on the parking lot (where cross traffic loads
  // individual hops) it is the hop-capacity split, a deliberate simplification.
  const double capacity =
      config_.fair_share_reward ? bw / static_cast<double>(ActiveFlowCount()) : bw;

  VectorStepResult result;
  result.observations.reserve(static_cast<size_t>(config_.num_agents));
  result.rewards.resize(static_cast<size_t>(config_.num_agents), 0.0);
  for (int i = 0; i < config_.num_agents; ++i) {
    ExternalRateCc* cc = agent_ccs_[static_cast<size_t>(i)];
    if (AgentStarted(i) && cc->has_report()) {
      histories_[static_cast<size_t>(i)].Push(cc->last_report());
      MonitorReport scored = cc->last_report();
      if (scored.ecn_rate > 0.0) {
        scored.loss_rate =
            std::min(1.0, scored.loss_rate + kEcnMarkLossFrac * scored.ecn_rate);
      }
      result.rewards[static_cast<size_t>(i)] =
          DynamicReward(weights_[static_cast<size_t>(i)], scored, capacity,
                        AgentBaseRttS(i));
    }
    result.observations.push_back(BuildObservation(i));
  }
  ++step_count_;
  result.done = step_count_ >= config_.max_steps_per_episode;
  return result;
}

std::vector<double> MultiFlowCcEnv::BuildObservation(int agent) const {
  std::vector<double> obs;
  obs.reserve(ObservationDim());
  if (config_.include_weight_in_obs) {
    const WeightVector& w = weights_[static_cast<size_t>(agent)];
    obs.push_back(w.thr);
    obs.push_back(w.lat);
    obs.push_back(w.loss);
  }
  histories_[static_cast<size_t>(agent)].AppendObservation(&obs);
  return obs;
}

double MultiFlowCcEnv::LastStepJainIndex() const {
  std::vector<double> throughputs;
  for (int i = 0; i < config_.num_agents; ++i) {
    const ExternalRateCc* cc = agent_ccs_[static_cast<size_t>(i)];
    if (AgentStarted(i) && cc->has_report()) {
      throughputs.push_back(cc->last_report().throughput_bps);
    }
  }
  return JainFairnessIndex(throughputs);
}

std::vector<double> MultiFlowCcEnv::AgentAvgThroughputsBps(double from_s,
                                                           double to_s) const {
  std::vector<double> throughputs;
  if (net_ == nullptr) {
    return throughputs;
  }
  throughputs.reserve(agent_flow_ids_.size());
  for (int flow_id : agent_flow_ids_) {
    throughputs.push_back(net_->record(flow_id).AvgThroughputBps(from_s, to_s));
  }
  return throughputs;
}

double MultiFlowCcEnv::JainIndex(double from_s, double to_s) const {
  return JainFairnessIndex(AgentAvgThroughputsBps(from_s, to_s));
}

void MultiFlowCcEnv::SerializeState(BinaryWriter* w) const {
  rng_.Serialize(w);
  w->WriteU32(cached_trace_valid_ ? 1 : 0);
  cached_trace_.Serialize(w);
}

bool MultiFlowCcEnv::DeserializeState(BinaryReader* r) {
  if (!rng_.Deserialize(r)) {
    return false;
  }
  cached_trace_valid_ = r->ReadU32() != 0;
  return cached_trace_.Deserialize(r) && r->ok();
}

}  // namespace mocc
