#include "src/rl/rollout.h"

#include <cmath>

namespace mocc {
namespace {

// M_PI is a POSIX extension, not standard C++.
constexpr double kPi = 3.14159265358979323846;

}  // namespace

void RolloutBuffer::Clear() {
  transitions.clear();
  advantages.clear();
  returns.clear();
}

void RolloutBuffer::Reserve(size_t steps) {
  transitions.reserve(steps);
  advantages.reserve(steps);
  returns.reserve(steps);
}

void ComputeGae(RolloutBuffer* buffer, double gamma, double lam, double bootstrap_value) {
  const size_t n = buffer->transitions.size();
  buffer->advantages.assign(n, 0.0);
  buffer->returns.assign(n, 0.0);
  double gae = 0.0;
  double next_value = bootstrap_value;
  for (size_t i = n; i-- > 0;) {
    const Transition& t = buffer->transitions[i];
    const double not_done = t.done ? 0.0 : 1.0;
    const double delta = t.reward + gamma * next_value * not_done - t.value;
    gae = delta + gamma * lam * not_done * gae;
    buffer->advantages[i] = gae;
    buffer->returns[i] = gae + t.value;
    next_value = t.value;
  }
}

void NormalizeAdvantages(RolloutBuffer* buffer) {
  const size_t n = buffer->advantages.size();
  if (n < 2) {
    return;
  }
  double mean = 0.0;
  for (double a : buffer->advantages) {
    mean += a;
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double a : buffer->advantages) {
    var += (a - mean) * (a - mean);
  }
  var /= static_cast<double>(n);
  const double std = std::sqrt(var) + 1e-8;
  for (double& a : buffer->advantages) {
    a = (a - mean) / std;
  }
}

double GaussianLogProb(double x, double mean, double std) {
  const double z = (x - mean) / std;
  return -0.5 * z * z - std::log(std) - 0.5 * std::log(2.0 * kPi);
}

double GaussianEntropy(double std) {
  return std::log(std) + 0.5 * std::log(2.0 * kPi * std::exp(1.0));
}

}  // namespace mocc
