#include "src/rl/actor_critic.h"

#include <cassert>

#include "src/rl/inference_policy.h"

namespace mocc {

void ActorCritic::ForwardRow(const std::vector<double>& obs, double* mean, double* value) {
  Matrix x(1, obs.size());
  x.SetRow(0, obs);
  Matrix m;
  Matrix v;
  Forward(x, &m, &v);
  *mean = m(0, 0);
  *value = v(0, 0);
}

void ActorCritic::ForwardRowActor(const std::vector<double>& obs, double* mean) {
  double value = 0.0;
  ForwardRow(obs, mean, &value);
}

double ActorCritic::ActionMean(const std::vector<double>& obs) {
  double mean = 0.0;
  ForwardRowActor(obs, &mean);
  return mean;
}

double ActorCritic::Value(const std::vector<double>& obs) {
  double mean = 0.0;
  double value = 0.0;
  ForwardRow(obs, &mean, &value);
  return value;
}

std::unique_ptr<InferencePolicy> ActorCritic::MakeFloat32Policy() const { return nullptr; }

std::unique_ptr<InferencePolicy> ActorCritic::MakeInt8Policy() const { return nullptr; }

MlpActorCritic::MlpActorCritic(size_t obs_dim, Rng* rng, std::vector<size_t> hidden,
                               double init_log_std)
    : obs_dim_(obs_dim), hidden_(std::move(hidden)) {
  std::vector<size_t> dims;
  dims.push_back(obs_dim_);
  for (size_t h : hidden_) {
    dims.push_back(h);
  }
  dims.push_back(1);
  actor_ = Mlp(dims, Activation::kTanh, Activation::kIdentity, rng);
  critic_ = Mlp(dims, Activation::kTanh, Activation::kIdentity, rng);
  log_std_(0, 0) = init_log_std;
}

void MlpActorCritic::Forward(const Matrix& obs, Matrix* mean, Matrix* value) {
  assert(obs.cols() == obs_dim_);
  actor_.ForwardInto(obs, mean);
  critic_.ForwardInto(obs, value);
}

void MlpActorCritic::Backward(const Matrix& dmean, const Matrix& dvalue) {
  actor_.BackwardInto(dmean, &dx_scratch_);
  critic_.BackwardInto(dvalue, &dx_scratch_);
}

void MlpActorCritic::ForwardRow(const std::vector<double>& obs, double* mean, double* value) {
  assert(obs.size() == obs_dim_);
  actor_.ForwardRow(obs.data(), mean);
  critic_.ForwardRow(obs.data(), value);
}

void MlpActorCritic::ForwardRowActor(const std::vector<double>& obs, double* mean) {
  assert(obs.size() == obs_dim_);
  actor_.ForwardRow(obs.data(), mean);
}

std::vector<ParamRef> MlpActorCritic::Params() {
  std::vector<ParamRef> params = actor_.Params();
  for (auto& p : critic_.Params()) {
    params.push_back(p);
  }
  params.push_back({&log_std_, &log_std_grad_});
  return params;
}

void MlpActorCritic::ZeroGrad() {
  actor_.ZeroGrad();
  critic_.ZeroGrad();
  log_std_grad_.Fill(0.0);
}

std::unique_ptr<InferencePolicy> MlpActorCritic::MakeFloat32Policy() const {
  return std::make_unique<MlpFloat32Policy>(actor_, critic_, log_std_(0, 0));
}

std::unique_ptr<InferencePolicy> MlpActorCritic::MakeInt8Policy() const {
  return std::make_unique<MlpFloat32Policy>(actor_, critic_, log_std_(0, 0),
                                            /*int8=*/true);
}

std::unique_ptr<ActorCritic> MlpActorCritic::Clone() const {
  Rng scratch(1);
  auto clone = std::make_unique<MlpActorCritic>(obs_dim_, &scratch, hidden_, log_std_(0, 0));
  clone->actor_.CopyWeightsFrom(actor_);
  clone->critic_.CopyWeightsFrom(critic_);
  clone->log_std_(0, 0) = log_std_(0, 0);
  return clone;
}

void MlpActorCritic::Serialize(BinaryWriter* w) const {
  w->WriteU64(obs_dim_);
  actor_.Serialize(w);
  critic_.Serialize(w);
  w->WriteDouble(log_std_(0, 0));
}

bool MlpActorCritic::Deserialize(BinaryReader* r) {
  const uint64_t dim = r->ReadU64();
  if (!r->ok() || dim != obs_dim_) {
    return false;
  }
  if (!actor_.Deserialize(r) || !critic_.Deserialize(r)) {
    return false;
  }
  log_std_(0, 0) = r->ReadDouble();
  return r->ok();
}

}  // namespace mocc
