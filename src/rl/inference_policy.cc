#include "src/rl/inference_policy.h"

#include <algorithm>
#include <cassert>

#include "src/nn/simd/dispatch.h"

namespace mocc {
namespace {

// Debug enforcement of the single-thread scratch contract (see the header): every
// public entry point flips the reentrancy flag for its duration; two overlapping
// calls — concurrent threads, or reentry from a virtual override — trip the
// assert. Release builds (NDEBUG) keep the flag but skip the exchange entirely.
#ifndef NDEBUG
class ScratchGuard {
 public:
  explicit ScratchGuard(std::atomic<bool>* flag) : flag_(flag) {
    const bool was_in_use = flag_->exchange(true, std::memory_order_acquire);
    assert(!was_in_use &&
           "InferencePolicy scratch state entered concurrently: one instance must "
           "not be used from two threads at once (clone a replica per thread)");
    (void)was_in_use;
  }
  ~ScratchGuard() { flag_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* flag_;
};
#define MOCC_SCRATCH_GUARD(flag) ScratchGuard scratch_guard_(flag)
#else
#define MOCC_SCRATCH_GUARD(flag) (void)(flag)
#endif

}  // namespace

const float* InferencePolicy::NarrowObs(const std::vector<double>& obs) {
  assert(obs.size() == obs_dim());
  obs_f32_.resize(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) {
    obs_f32_[i] = static_cast<float>(obs[i]);
  }
  return obs_f32_.data();
}

void InferencePolicy::ForwardRow(const std::vector<double>& obs, double* mean,
                                 double* value) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  float m = 0.0f;
  float v = 0.0f;
  ForwardRowF32(NarrowObs(obs), &m, &v);
  *mean = static_cast<double>(m);
  *value = static_cast<double>(v);
}

double InferencePolicy::ActionMean(const std::vector<double>& obs) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  float mean = 0.0f;
  ForwardRowF32Actor(NarrowObs(obs), &mean);
  return static_cast<double>(mean);
}

float InferencePolicy::ActionMeanF32(const float* obs) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  float mean = 0.0f;
  ForwardRowF32Actor(obs, &mean);
  return mean;
}

void InferencePolicy::ActionMeansF32(const float* obs, size_t n, float* means) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  ForwardBatchF32Actor(obs, n, means);
}

MlpFloat32Policy::MlpFloat32Policy(const MlpT<double>& actor, const MlpT<double>& critic,
                                   double log_std, bool int8)
    : InferencePolicy(log_std), int8_(int8) {
  actor_.CastFrom(actor);
  critic_.CastFrom(critic);
  if (int8_) {
    qactor_.FreezeFrom(actor_);
    qcritic_.FreezeFrom(critic_);
  }
}

void MlpFloat32Policy::ForwardRowF32(const float* obs, float* mean, float* value) {
  if (int8_) {
    qactor_.ForwardRow(obs, mean);
    qcritic_.ForwardRow(obs, value);
    return;
  }
  actor_.ForwardRow(obs, mean);
  critic_.ForwardRow(obs, value);
}

void MlpFloat32Policy::ForwardRowF32Actor(const float* obs, float* mean) {
  if (int8_) {
    qactor_.ForwardRow(obs, mean);
    return;
  }
  actor_.ForwardRow(obs, mean);
}

void MlpFloat32Policy::ForwardBatchF32Actor(const float* obs, size_t n, float* means) {
  if (int8_) {
    // The quantized path has no batched kernel (the first layer's dynamic
    // input scale is per-row anyway); the loop keeps the batch-vs-row
    // bit-identity contract structural.
    for (size_t i = 0; i < n; ++i) {
      qactor_.ForwardRow(obs + i * obs_dim(), means + i);
    }
    return;
  }
  // actor out_dim is 1 (the scalar action mean), so the batch output lands
  // directly in `means`.
  actor_.ForwardBatchRows(obs, n, means);
}

PreferenceFloat32Policy::PreferenceFloat32Policy(
    const MlpT<double>& actor_pn, const MlpT<double>& actor_trunk,
    const MlpT<double>& critic_pn, const MlpT<double>& critic_trunk, size_t weight_dim,
    size_t hist_dim, double log_std, bool int8)
    : InferencePolicy(log_std),
      weight_dim_(weight_dim),
      pn_out_(actor_pn.out_dim()),
      hist_dim_(hist_dim),
      int8_(int8) {
  assert(actor_pn.in_dim() == weight_dim && critic_pn.in_dim() == weight_dim);
  assert(actor_trunk.in_dim() == pn_out_ + hist_dim);
  // Both heads share pn_out_ as the history-copy offset in ForwardHeadRow, so the
  // critic's shapes must match the actor's too (not just its own concat sizing).
  assert(critic_pn.out_dim() == pn_out_);
  assert(critic_trunk.in_dim() == pn_out_ + hist_dim);
  auto build_head = [&](Head* head, const MlpT<double>& pn, const MlpT<double>& trunk) {
    head->pn.CastFrom(pn);
    head->trunk.CastFrom(trunk);
    head->concat_row.resize(pn.out_dim() + hist_dim);
    head->pn_cache_w.resize(weight_dim);
    head->l0_partial.resize(head->trunk.layer(0).out_dim());
    head->scratch0.resize(head->trunk.MaxDim());
    head->scratch1.resize(head->trunk.MaxDim());
    if (int8_) {
      // The PN feature slice becomes the quantized prefix block: SeedPrefix on
      // PN-cache refresh, suffix-only GEMV per row — the int8 mirror of the
      // float path's cached l0_partial. (FreezeFrom resets the split to 0
      // itself if the first trunk layer does not quantize.)
      head->qtrunk.FreezeFrom(head->trunk, /*split=*/pn_out_);
    }
  };
  build_head(&actor_, actor_pn, actor_trunk);
  build_head(&critic_, critic_pn, critic_trunk);
}

void PreferenceFloat32Policy::InvalidatePnCache() {
  actor_.pn_cache_valid = false;
  critic_.pn_cache_valid = false;
}

void PreferenceFloat32Policy::RefreshPnCache(Head* head, const float* obs) {
  head->pn.ForwardRow(obs, head->concat_row.data());
  std::copy(obs, obs + weight_dim_, head->pn_cache_w.begin());
  head->pn_cache_valid = true;
  if (head == &actor_) {
    ++pn_recompute_count_;
  }
  if (int8_) {
    if (head->qtrunk.split() > 0) {
      head->qtrunk.SeedPrefix(head->concat_row.data());
    }
    return;  // the float l0_partial below belongs to the float32 row path
  }
  // Re-derive the trunk layer-0 accumulators over the PN feature slice (the
  // first pn_out_ inputs): per-output fma chains from zero, no bias — exactly
  // the prefix of the full layer-0 evaluation.
  const DenseLayerT<float>& l0 = head->trunk.layer(0);
  simd::RowMatVecSeeded(head->concat_row.data(), l0.weights().data(),
                        /*seed=*/nullptr, /*b=*/nullptr, head->l0_partial.data(),
                        pn_out_, l0.out_dim());
}

void PreferenceFloat32Policy::ForwardHeadRow(Head* head, const float* obs, float* out) {
  // Mirrors PreferenceActorCritic::ForwardHeadRow, plus the deployment-only
  // cached-prefix trick: the PN features AND the trunk layer-0 partial sums
  // over them depend only on the leading weight vector, which is constant
  // across monitor intervals in steady state. On a cache hit the first trunk
  // layer therefore resumes its per-output chains over the hist_dim_ history
  // inputs alone (30 of 46 multiplies for the Figure-3 shape), bit-identical
  // to the unsplit evaluation the batch path runs (a seeded resume is the same
  // fma sequence; tests/serving_test.cc and tests/nn_float32_test.cc pin it).
  const bool pn_hit =
      head->pn_cache_valid &&
      std::equal(obs, obs + weight_dim_, head->pn_cache_w.begin());
  if (!pn_hit) {
    RefreshPnCache(head, obs);
  }
  if (int8_) {
    if (head->qtrunk.split() > 0) {
      // Seeded: the PN slice is already folded into the layer-0 bias, so the
      // history slice feeds the quantized trunk straight out of `obs`.
      head->qtrunk.ForwardRowSuffix(obs + weight_dim_, out);
    } else {
      std::copy(obs + weight_dim_, obs + weight_dim_ + hist_dim_,
                head->concat_row.begin() + static_cast<ptrdiff_t>(pn_out_));
      head->qtrunk.ForwardRow(head->concat_row.data(), out);
    }
    return;
  }
  const size_t layers = head->trunk.layer_count();
  const DenseLayerT<float>& l0 = head->trunk.layer(0);
  const size_t out0 = l0.out_dim();
  if (out0 == 1) {
    // Degenerate single-output first layer: the plain kernel's out==1 contract
    // is the 8-lane dot split, which a seeded resume cannot reproduce — run
    // the classic concat + full trunk forward instead.
    std::copy(obs + weight_dim_, obs + weight_dim_ + hist_dim_,
              head->concat_row.begin() + static_cast<ptrdiff_t>(pn_out_));
    head->trunk.ForwardRow(head->concat_row.data(), out);
    return;
  }
  float* cur = head->scratch0.data();
  float* nxt = head->scratch1.data();
  float* dst0 = layers == 1 ? out : cur;
  // Layer 0: resume the cached chains over the history slice (rows pn_out_..
  // of W, i.e. columns of the concat input we did not pre-multiply).
  simd::RowMatVecSeeded(obs + weight_dim_, l0.weights().data() + pn_out_ * out0,
                        head->l0_partial.data(), l0.bias().data(), dst0,
                        hist_dim_, out0);
  ApplyActivation(l0.activation(), dst0, out0);
  for (size_t li = 1; li < layers; ++li) {
    const DenseLayerT<float>& l = head->trunk.layer(li);
    float* dst = li + 1 == layers ? out : nxt;
    simd::RowMatVecBias(cur, l.weights().data(), l.bias().data(), dst, l.in_dim(),
                        l.out_dim());
    ApplyActivation(l.activation(), dst, l.out_dim());
    std::swap(cur, nxt);
  }
}

void PreferenceFloat32Policy::ForwardBatchF32Actor(const float* obs, size_t n,
                                                   float* means) {
  // Batch counterpart of ForwardHeadRow on the actor head. The PN cache rolls
  // through the batch exactly as it would across n sequential calls: a row whose
  // leading weight vector matches the current cache reuses the concat prefix, a
  // mismatch recomputes and re-keys it. Callers that sort rows by weight prefix
  // therefore pay one PN pass per distinct prefix. The trunk then runs one
  // batched forward over the staged concat rows (out_dim 1 → straight into
  // `means`), bit-identical per row to the sequential trunk.ForwardRow.
  Head* head = &actor_;
  const size_t concat_dim = pn_out_ + hist_dim_;
  const size_t dim = obs_dim();
  if (int8_) {
    // The quantized trunk has no batched kernel (the first layer's input scale
    // is per-row anyway), so the batch is just the row path in a loop: the
    // PN-cache roll — and with it the SeedPrefix fold — happens inline, and
    // each row's history slice feeds ForwardRowSuffix straight out of `obs`.
    for (size_t i = 0; i < n; ++i) {
      const float* row = obs + i * dim;
      ForwardHeadRow(head, row, means + i);
    }
    return;
  }
  batch_concat_.Resize(n, concat_dim);
  float* staged = batch_concat_.data();
  for (size_t i = 0; i < n; ++i) {
    const float* row = obs + i * dim;
    const bool pn_hit = head->pn_cache_valid &&
                        std::equal(row, row + weight_dim_, head->pn_cache_w.begin());
    if (!pn_hit) {
      // RefreshPnCache (not an inline PN forward): the row path's cached
      // l0_partial must stay in sync with whatever prefix this batch leaves
      // behind, or the next single-row call would resume stale chains.
      RefreshPnCache(head, row);
    }
    float* dst = staged + i * concat_dim;
    std::copy(head->concat_row.data(), head->concat_row.data() + pn_out_, dst);
    std::copy(row + weight_dim_, row + dim, dst + pn_out_);
  }
  head->trunk.ForwardBatchRows(staged, n, means);
}

void PreferenceFloat32Policy::ForwardRowF32(const float* obs, float* mean, float* value) {
  ForwardHeadRow(&actor_, obs, mean);
  ForwardHeadRow(&critic_, obs, value);
}

void PreferenceFloat32Policy::ForwardRowF32Actor(const float* obs, float* mean) {
  ForwardHeadRow(&actor_, obs, mean);
}

}  // namespace mocc
