#include "src/rl/inference_policy.h"

#include <algorithm>
#include <cassert>

namespace mocc {
namespace {

// Debug enforcement of the single-thread scratch contract (see the header): every
// public entry point flips the reentrancy flag for its duration; two overlapping
// calls — concurrent threads, or reentry from a virtual override — trip the
// assert. Release builds (NDEBUG) keep the flag but skip the exchange entirely.
#ifndef NDEBUG
class ScratchGuard {
 public:
  explicit ScratchGuard(std::atomic<bool>* flag) : flag_(flag) {
    const bool was_in_use = flag_->exchange(true, std::memory_order_acquire);
    assert(!was_in_use &&
           "InferencePolicy scratch state entered concurrently: one instance must "
           "not be used from two threads at once (clone a replica per thread)");
    (void)was_in_use;
  }
  ~ScratchGuard() { flag_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* flag_;
};
#define MOCC_SCRATCH_GUARD(flag) ScratchGuard scratch_guard_(flag)
#else
#define MOCC_SCRATCH_GUARD(flag) (void)(flag)
#endif

}  // namespace

const float* InferencePolicy::NarrowObs(const std::vector<double>& obs) {
  assert(obs.size() == obs_dim());
  obs_f32_.resize(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) {
    obs_f32_[i] = static_cast<float>(obs[i]);
  }
  return obs_f32_.data();
}

void InferencePolicy::ForwardRow(const std::vector<double>& obs, double* mean,
                                 double* value) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  float m = 0.0f;
  float v = 0.0f;
  ForwardRowF32(NarrowObs(obs), &m, &v);
  *mean = static_cast<double>(m);
  *value = static_cast<double>(v);
}

double InferencePolicy::ActionMean(const std::vector<double>& obs) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  float mean = 0.0f;
  ForwardRowF32Actor(NarrowObs(obs), &mean);
  return static_cast<double>(mean);
}

float InferencePolicy::ActionMeanF32(const float* obs) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  float mean = 0.0f;
  ForwardRowF32Actor(obs, &mean);
  return mean;
}

void InferencePolicy::ActionMeansF32(const float* obs, size_t n, float* means) {
  MOCC_SCRATCH_GUARD(&scratch_in_use_);
  ForwardBatchF32Actor(obs, n, means);
}

MlpFloat32Policy::MlpFloat32Policy(const MlpT<double>& actor, const MlpT<double>& critic,
                                   double log_std)
    : InferencePolicy(log_std) {
  actor_.CastFrom(actor);
  critic_.CastFrom(critic);
}

void MlpFloat32Policy::ForwardRowF32(const float* obs, float* mean, float* value) {
  actor_.ForwardRow(obs, mean);
  critic_.ForwardRow(obs, value);
}

void MlpFloat32Policy::ForwardRowF32Actor(const float* obs, float* mean) {
  actor_.ForwardRow(obs, mean);
}

void MlpFloat32Policy::ForwardBatchF32Actor(const float* obs, size_t n, float* means) {
  // actor out_dim is 1 (the scalar action mean), so the batch output lands
  // directly in `means`.
  actor_.ForwardBatchRows(obs, n, means);
}

PreferenceFloat32Policy::PreferenceFloat32Policy(
    const MlpT<double>& actor_pn, const MlpT<double>& actor_trunk,
    const MlpT<double>& critic_pn, const MlpT<double>& critic_trunk, size_t weight_dim,
    size_t hist_dim, double log_std)
    : InferencePolicy(log_std),
      weight_dim_(weight_dim),
      pn_out_(actor_pn.out_dim()),
      hist_dim_(hist_dim) {
  assert(actor_pn.in_dim() == weight_dim && critic_pn.in_dim() == weight_dim);
  assert(actor_trunk.in_dim() == pn_out_ + hist_dim);
  // Both heads share pn_out_ as the history-copy offset in ForwardHeadRow, so the
  // critic's shapes must match the actor's too (not just its own concat sizing).
  assert(critic_pn.out_dim() == pn_out_);
  assert(critic_trunk.in_dim() == pn_out_ + hist_dim);
  auto build_head = [&](Head* head, const MlpT<double>& pn, const MlpT<double>& trunk) {
    head->pn.CastFrom(pn);
    head->trunk.CastFrom(trunk);
    head->concat_row.resize(pn.out_dim() + hist_dim);
    head->pn_cache_w.resize(weight_dim);
  };
  build_head(&actor_, actor_pn, actor_trunk);
  build_head(&critic_, critic_pn, critic_trunk);
}

void PreferenceFloat32Policy::InvalidatePnCache() {
  actor_.pn_cache_valid = false;
  critic_.pn_cache_valid = false;
}

void PreferenceFloat32Policy::ForwardHeadRow(Head* head, const float* obs, float* out) {
  // Mirrors PreferenceActorCritic::ForwardHeadRow: the PN writes its features
  // straight into the concat prefix and only the history slice is copied per
  // call; the features are reused across calls as long as the leading weight
  // vector is unchanged (the steady state of per-MI deployment inference).
  float* concat = head->concat_row.data();
  const bool pn_hit =
      head->pn_cache_valid &&
      std::equal(obs, obs + weight_dim_, head->pn_cache_w.begin());
  if (!pn_hit) {
    head->pn.ForwardRow(obs, concat);
    std::copy(obs, obs + weight_dim_, head->pn_cache_w.begin());
    head->pn_cache_valid = true;
    if (head == &actor_) {
      ++pn_recompute_count_;
    }
  }
  std::copy(obs + weight_dim_, obs + weight_dim_ + hist_dim_,
            head->concat_row.begin() + static_cast<ptrdiff_t>(pn_out_));
  head->trunk.ForwardRow(concat, out);
}

void PreferenceFloat32Policy::ForwardBatchF32Actor(const float* obs, size_t n,
                                                   float* means) {
  // Batch counterpart of ForwardHeadRow on the actor head. The PN cache rolls
  // through the batch exactly as it would across n sequential calls: a row whose
  // leading weight vector matches the current cache reuses the concat prefix, a
  // mismatch recomputes and re-keys it. Callers that sort rows by weight prefix
  // therefore pay one PN pass per distinct prefix. The trunk then runs one
  // batched forward over the staged concat rows (out_dim 1 → straight into
  // `means`), bit-identical per row to the sequential trunk.ForwardRow.
  Head* head = &actor_;
  const size_t concat_dim = pn_out_ + hist_dim_;
  const size_t dim = obs_dim();
  batch_concat_.Resize(n, concat_dim);
  float* staged = batch_concat_.data();
  for (size_t i = 0; i < n; ++i) {
    const float* row = obs + i * dim;
    const bool pn_hit = head->pn_cache_valid &&
                        std::equal(row, row + weight_dim_, head->pn_cache_w.begin());
    if (!pn_hit) {
      head->pn.ForwardRow(row, head->concat_row.data());
      std::copy(row, row + weight_dim_, head->pn_cache_w.begin());
      head->pn_cache_valid = true;
      ++pn_recompute_count_;
    }
    float* dst = staged + i * concat_dim;
    std::copy(head->concat_row.data(), head->concat_row.data() + pn_out_, dst);
    std::copy(row + weight_dim_, row + dim, dst + pn_out_);
  }
  head->trunk.ForwardBatchRows(staged, n, means);
}

void PreferenceFloat32Policy::ForwardRowF32(const float* obs, float* mean, float* value) {
  ForwardHeadRow(&actor_, obs, mean);
  ForwardHeadRow(&critic_, obs, value);
}

void PreferenceFloat32Policy::ForwardRowF32Actor(const float* obs, float* mean) {
  ForwardHeadRow(&actor_, obs, mean);
}

}  // namespace mocc
