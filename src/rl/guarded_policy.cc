#include "src/rl/guarded_policy.h"

#include <cmath>

namespace mocc {

GuardedPolicy::GuardedPolicy(const Options& options) : options_(options) {}

bool GuardedPolicy::BeginInterval() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (++open_intervals_elapsed_ >= options_.open_intervals) {
        state_ = State::kHalfOpen;
        valid_probes_ = 0;
        return true;
      }
      ++fallback_interval_count_;
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;  // unreachable
}

void GuardedPolicy::Trip() {
  ++trip_count_;
  ++fallback_interval_count_;
  state_ = State::kOpen;
  open_intervals_elapsed_ = 0;
  valid_probes_ = 0;
}

bool GuardedPolicy::ValidateDecision(double action, double proposed_rate_bps,
                                     double previous_rate_bps) {
  // NaN actions need an explicit check: Eq. (1) maps them to "rate unchanged"
  // (every NaN comparison is false), so the rate checks alone would pass.
  if (!std::isfinite(action) || !std::isfinite(proposed_rate_bps) ||
      proposed_rate_bps <= 0.0) {
    Trip();
    return false;
  }
  const double f = options_.max_step_rate_factor;
  if (previous_rate_bps > 0.0 && (proposed_rate_bps > previous_rate_bps * f ||
                                  proposed_rate_bps < previous_rate_bps / f)) {
    Trip();
    return false;
  }
  if (proposed_rate_bps > options_.max_rate_bps * f ||
      proposed_rate_bps < options_.min_rate_bps / f) {
    Trip();
    return false;
  }
  if (state_ == State::kHalfOpen &&
      ++valid_probes_ >= options_.close_after_valid_probes) {
    state_ = State::kClosed;
    ++recovery_count_;
  }
  return true;
}

}  // namespace mocc
