// Policy evaluation helpers used by tests and every benchmark harness.
#ifndef MOCC_SRC_RL_EVALUATE_H_
#define MOCC_SRC_RL_EVALUATE_H_

#include <functional>

#include "src/envs/env.h"
#include "src/rl/actor_critic.h"
#include "src/rl/inference_policy.h"

namespace mocc {

struct EvalResult {
  double mean_step_reward = 0.0;
  double mean_episode_return = 0.0;
  int episodes = 0;
};

// Evaluates an arbitrary observation->action policy for `episodes` episodes.
EvalResult EvaluateActionFn(const std::function<double(const std::vector<double>&)>& policy,
                            Env* env, int episodes);

// Evaluates the deterministic (mean-action) policy of `model`.
EvalResult EvaluatePolicy(ActorCritic* model, Env* env, int episodes);

// Evaluates the deterministic policy of a float32 deployment replica.
EvalResult EvaluatePolicy(InferencePolicy* policy, Env* env, int episodes);

}  // namespace mocc

#endif  // MOCC_SRC_RL_EVALUATE_H_
