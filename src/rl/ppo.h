// Proximal Policy Optimization (Schulman et al. 2017) — the policy-optimization
// algorithm MOCC trains with (§4.2): clipped surrogate objective (Eq. 3), advantage from
// the critic (Eq. 4), and entropy regularization with a decaying coefficient (Eq. 5,
// β: 1 → 0.1 over 1000 iterations per §5). The trainer exposes rollout collection and
// updates separately so the online adapter can optimize the Eq. 6 average over the
// current and a replayed objective.
#ifndef MOCC_SRC_RL_PPO_H_
#define MOCC_SRC_RL_PPO_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/envs/env.h"
#include "src/nn/optimizer.h"
#include "src/rl/actor_critic.h"
#include "src/rl/rollout.h"

namespace mocc {

struct PpoConfig {
  double gamma = 0.99;          // discount factor (Table 2)
  // High lambda keeps long-horizon credit: the payoff of climbing toward capacity
  // accrues over hundreds of monitor intervals, while overshoot penalties are
  // immediate — a short advantage horizon would systematically favour under-sending.
  double gae_lambda = 0.99;
  double clip_epsilon = 0.2;    // ε (§5)
  double learning_rate = 1e-3;  // Adam (Table 2)
  int rollout_steps = 1024;
  int epochs = 4;
  int minibatch_size = 256;
  double value_coef = 0.5;
  // Rewards are scaled by this factor for GAE/critic targets (policy gradients are
  // invariant thanks to advantage normalization); ~(1-gamma) keeps value targets O(1).
  double reward_scale = 0.01;
  // Entropy coefficient β decays linearly from start to end over decay_iters (§5).
  double entropy_start = 1.0;
  double entropy_end = 0.1;
  int entropy_decay_iters = 1000;
  double max_grad_norm = 1.0;
  double log_std_min = -2.5;
  double log_std_max = -0.3;
  uint64_t seed = 1;
};

// Aggregate statistics of one training iteration.
struct PpoStats {
  double mean_step_reward = 0.0;
  double mean_episode_return = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  // Mean of (old_log_prob - new_log_prob) over the update — the standard PPO KL
  // estimate. The training watchdog treats a blow-up here as divergence.
  double approx_kl = 0.0;
  int iteration = 0;
};

class PpoTrainer {
 public:
  // `model` must outlive the trainer.
  PpoTrainer(ActorCritic* model, const PpoConfig& config);

  // Collects `steps` transitions from `env` with the current stochastic policy,
  // resetting the environment at the start and on episode end. GAE targets are filled.
  RolloutBuffer CollectRollout(Env* env, int steps);

  // Collects one rollout from each environment concurrently on the shared
  // ThreadPool, each worker acting on a cloned model with its own Rng stream (the
  // paper's Ray/RLlib-style parallel training). Streams are seeded on the calling
  // thread in env order, so the result is bit-identical to serial collection over
  // the same envs and independent of thread count/scheduling (the determinism
  // contract of src/common/thread_pool.h).
  std::vector<RolloutBuffer> CollectRolloutsParallel(const std::vector<Env*>& envs,
                                                     int steps_each);

  // Collects per-agent rollouts from one synchronized multi-agent environment: every
  // env step, the current policy acts once per ACTIVE agent (agent-order draws from
  // one Rng stream; agents whose flow has not arrived in a staggered schedule are
  // skipped entirely) and each agent's transition lands in its own buffer, so GAE
  // stays per-trajectory. Returns NumAgents() buffers of up to `env_steps`
  // transitions each.
  std::vector<RolloutBuffer> CollectVectorRollout(VectorEnv* env, int env_steps);

  // One unit of mixed rollout collection: exactly one of the two pointers is set.
  struct RolloutSource {
    Env* env = nullptr;
    VectorEnv* vec = nullptr;
  };

  // Collects one rollout per source concurrently on the shared ThreadPool (scenario
  // training mixes single-flow and shared-bottleneck environments in one iteration).
  // Follows the same determinism contract as CollectRolloutsParallel: per-source
  // model clones and Rng streams are derived on the calling thread in source order,
  // so the result is bit-identical to serial collection. Returns the buffers
  // flattened in source order — one per Env source, NumAgents() per VectorEnv
  // source.
  std::vector<RolloutBuffer> CollectSourcesParallel(
      const std::vector<RolloutSource>& sources, int steps_each);

  // When false, CollectRolloutsParallel runs its per-env tasks sequentially on the
  // calling thread instead of the pool (same results; used to verify determinism).
  void set_parallel_collection(bool enabled) { parallel_collection_ = enabled; }
  bool parallel_collection() const { return parallel_collection_; }

  // Runs the clipped-surrogate update over the union of `buffers`. Passing two buffers
  // of equal size implements the online-adaptation objective of Eq. (6).
  PpoStats Update(const std::vector<const RolloutBuffer*>& buffers);

  // Convenience: CollectRollout + Update.
  PpoStats TrainIteration(Env* env);

  // Parallel convenience: CollectRolloutsParallel + joint Update.
  PpoStats TrainIterationParallel(const std::vector<Env*>& envs);

  // Current entropy coefficient (decayed by iteration count).
  double EntropyCoef() const;

  // Adjusts the optimizer learning rate mid-training (used by the two-phase trainer).
  void set_learning_rate(double lr);

  int iteration() const { return iteration_; }
  void set_iteration(int it) { iteration_ = it; }
  ActorCritic* model() { return model_; }
  const PpoConfig& config() const { return config_; }

  // Checkpointing hooks: the trainer's Rng stream (drives collection seeding and
  // minibatch shuffling) and Adam state must survive a crash for resumed training
  // to stay bit-identical with an uninterrupted run.
  Rng* mutable_rng() { return &rng_; }
  const Rng& rng() const { return rng_; }
  AdamOptimizer* mutable_optimizer() { return &optimizer_; }
  const AdamOptimizer& optimizer() const { return optimizer_; }

  // Samples a ~ N(mean(obs), std²) from the current policy.
  double SampleAction(const std::vector<double>& obs, double* log_prob, double* value);

 private:
  RolloutBuffer CollectWith(ActorCritic* model, Env* env, int steps, Rng* rng);
  std::vector<RolloutBuffer> CollectVectorWith(ActorCritic* model, VectorEnv* env,
                                               int env_steps, Rng* rng);

  ActorCritic* model_;
  PpoConfig config_;
  AdamOptimizer optimizer_;
  Rng rng_;
  int iteration_ = 0;
  bool parallel_collection_ = true;
  double last_mean_step_reward_ = 0.0;
  double last_mean_episode_return_ = 0.0;
  // Update() minibatch workspaces (capacity reused across minibatches/iterations).
  Matrix batch_obs_;
  Matrix batch_mean_;
  Matrix batch_value_;
  Matrix batch_dmean_;
  Matrix batch_dvalue_;
};

}  // namespace mocc

#endif  // MOCC_SRC_RL_PPO_H_
