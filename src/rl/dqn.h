// Deep Q-Network trainer over a discretized action space — the value-based alternative
// the paper evaluates against PPO in Figure 18 (MOCC-DQN). Q-learning must discretize the
// continuous sending-rate adjustment, which is exactly the handicap the paper's deep-dive
// demonstrates (§6.5, "Learning algorithm selection").
#ifndef MOCC_SRC_RL_DQN_H_
#define MOCC_SRC_RL_DQN_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/envs/env.h"
#include "src/nn/mlp.h"
#include "src/nn/optimizer.h"

namespace mocc {

struct DqnConfig {
  int action_bins = 11;  // discretization of [-1, 1]
  double action_min = -1.0;
  double action_max = 1.0;
  double gamma = 0.99;
  double learning_rate = 1e-3;
  size_t replay_capacity = 50000;
  int batch_size = 64;
  int warmup_steps = 500;
  int target_update_interval = 500;  // env steps between target-network syncs
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  int epsilon_decay_steps = 20000;
  int steps_per_iteration = 1024;
  std::vector<size_t> hidden = {64, 32};
  uint64_t seed = 1;
};

struct DqnStats {
  double mean_step_reward = 0.0;
  double mean_td_loss = 0.0;
  double epsilon = 0.0;
  int64_t total_steps = 0;
};

class DqnTrainer {
 public:
  DqnTrainer(size_t obs_dim, const DqnConfig& config);

  // Runs config.steps_per_iteration environment steps with ε-greedy exploration,
  // learning from replay after warmup.
  DqnStats TrainIteration(Env* env);

  // Continuous action corresponding to the greedy bin at `obs`.
  double GreedyAction(const std::vector<double>& obs);

  // Continuous action value of bin `k`.
  double BinToAction(int k) const;

  double CurrentEpsilon() const;
  int64_t total_steps() const { return total_steps_; }

 private:
  struct Sample {
    std::vector<double> obs;
    int action_bin;
    double reward;
    std::vector<double> next_obs;
    bool done;
  };

  int GreedyBin(Mlp* net, const std::vector<double>& obs);
  void LearnStep();

  size_t obs_dim_;
  DqnConfig config_;
  Rng rng_;
  Mlp q_net_;
  Mlp target_net_;
  AdamOptimizer optimizer_;
  std::vector<Sample> replay_;
  size_t replay_next_ = 0;
  int64_t total_steps_ = 0;
  double last_td_loss_ = 0.0;
  // Workspaces (capacity reused): single-row Q values and LearnStep minibatches.
  std::vector<double> q_row_;
  Matrix batch_obs_;
  Matrix batch_next_obs_;
  Matrix batch_q_;
  Matrix batch_next_q_;
  Matrix batch_dq_;
  std::vector<const Sample*> samples_;
};

}  // namespace mocc

#endif  // MOCC_SRC_RL_DQN_H_
