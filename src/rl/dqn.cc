#include "src/rl/dqn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {

DqnTrainer::DqnTrainer(size_t obs_dim, const DqnConfig& config)
    : obs_dim_(obs_dim),
      config_(config),
      rng_(config.seed),
      optimizer_(config.learning_rate) {
  assert(config_.action_bins >= 2);
  std::vector<size_t> dims;
  dims.push_back(obs_dim_);
  for (size_t h : config_.hidden) {
    dims.push_back(h);
  }
  dims.push_back(static_cast<size_t>(config_.action_bins));
  q_net_ = Mlp(dims, Activation::kTanh, Activation::kIdentity, &rng_);
  target_net_ = Mlp(dims, Activation::kTanh, Activation::kIdentity, &rng_);
  target_net_.CopyWeightsFrom(q_net_);
}

double DqnTrainer::BinToAction(int k) const {
  const double frac = static_cast<double>(k) / static_cast<double>(config_.action_bins - 1);
  return config_.action_min + frac * (config_.action_max - config_.action_min);
}

double DqnTrainer::CurrentEpsilon() const {
  const double frac =
      std::min(1.0, static_cast<double>(total_steps_) /
                        std::max(1, config_.epsilon_decay_steps));
  return config_.epsilon_start + frac * (config_.epsilon_end - config_.epsilon_start);
}

int DqnTrainer::GreedyBin(Mlp* net, const std::vector<double>& obs) {
  // Single-row inference fast path: per-step action selection allocates nothing.
  net->ForwardRow(obs, &q_row_);
  int best = 0;
  for (int k = 1; k < config_.action_bins; ++k) {
    if (q_row_[static_cast<size_t>(k)] > q_row_[static_cast<size_t>(best)]) {
      best = k;
    }
  }
  return best;
}

double DqnTrainer::GreedyAction(const std::vector<double>& obs) {
  return BinToAction(GreedyBin(&q_net_, obs));
}

DqnStats DqnTrainer::TrainIteration(Env* env) {
  DqnStats stats;
  std::vector<double> obs = env->Reset();
  double reward_sum = 0.0;
  double loss_sum = 0.0;
  int loss_count = 0;
  for (int i = 0; i < config_.steps_per_iteration; ++i) {
    int bin = 0;
    if (rng_.Bernoulli(CurrentEpsilon())) {
      bin = static_cast<int>(rng_.UniformInt(0, config_.action_bins - 1));
    } else {
      bin = GreedyBin(&q_net_, obs);
    }
    const StepResult result = env->Step(BinToAction(bin));
    reward_sum += result.reward;

    Sample s;
    s.obs = obs;
    s.action_bin = bin;
    s.reward = result.reward;
    s.next_obs = result.observation;
    s.done = result.done;
    if (replay_.size() < config_.replay_capacity) {
      replay_.push_back(std::move(s));
    } else {
      replay_[replay_next_] = std::move(s);
      replay_next_ = (replay_next_ + 1) % config_.replay_capacity;
    }

    ++total_steps_;
    if (static_cast<int>(replay_.size()) >= config_.warmup_steps) {
      LearnStep();
      loss_sum += last_td_loss_;
      ++loss_count;
    }
    if (total_steps_ % config_.target_update_interval == 0) {
      target_net_.CopyWeightsFrom(q_net_);
    }
    obs = result.done ? env->Reset() : result.observation;
  }
  stats.mean_step_reward = reward_sum / config_.steps_per_iteration;
  stats.mean_td_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
  stats.epsilon = CurrentEpsilon();
  stats.total_steps = total_steps_;
  return stats;
}

void DqnTrainer::LearnStep() {
  const size_t batch = std::min<size_t>(replay_.size(), config_.batch_size);
  // Member workspaces: steady-state learning is allocation-free.
  Matrix& obs = batch_obs_;
  Matrix& next_obs = batch_next_obs_;
  Matrix& q = batch_q_;
  Matrix& next_q = batch_next_q_;
  Matrix& dq = batch_dq_;
  obs.Resize(batch, obs_dim_);
  next_obs.Resize(batch, obs_dim_);
  samples_.resize(batch);
  std::vector<const Sample*>& samples = samples_;
  for (size_t b = 0; b < batch; ++b) {
    samples[b] = &replay_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(replay_.size()) - 1))];
    obs.SetRow(b, samples[b]->obs);
    next_obs.SetRow(b, samples[b]->next_obs);
  }
  target_net_.ForwardInto(next_obs, &next_q);
  q_net_.ZeroGrad();
  q_net_.ForwardInto(obs, &q);
  dq.Resize(batch, static_cast<size_t>(config_.action_bins));
  dq.Fill(0.0);
  double loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (size_t b = 0; b < batch; ++b) {
    double max_next = next_q(b, 0);
    for (int k = 1; k < config_.action_bins; ++k) {
      max_next = std::max(max_next, next_q(b, static_cast<size_t>(k)));
    }
    const double target =
        samples[b]->reward + (samples[b]->done ? 0.0 : config_.gamma * max_next);
    const size_t a = static_cast<size_t>(samples[b]->action_bin);
    const double err = q(b, a) - target;
    loss += 0.5 * err * err;
    dq(b, a) = err * inv_batch;
  }
  q_net_.Backward(dq);
  auto params = q_net_.Params();
  ClipGradNorm(params, 1.0);
  optimizer_.Step(params);
  last_td_loss_ = loss * inv_batch;
}

}  // namespace mocc
