#include "src/rl/evaluate.h"

#include <cstdint>

namespace mocc {

EvalResult EvaluateActionFn(const std::function<double(const std::vector<double>&)>& policy,
                            Env* env, int episodes) {
  EvalResult result;
  double total_reward = 0.0;
  int64_t total_steps = 0;
  for (int e = 0; e < episodes; ++e) {
    std::vector<double> obs = env->Reset();
    double episode_return = 0.0;
    bool done = false;
    while (!done) {
      const StepResult step = env->Step(policy(obs));
      episode_return += step.reward;
      ++total_steps;
      done = step.done;
      obs = step.observation;
    }
    total_reward += episode_return;
  }
  result.episodes = episodes;
  result.mean_episode_return = episodes > 0 ? total_reward / episodes : 0.0;
  result.mean_step_reward =
      total_steps > 0 ? total_reward / static_cast<double>(total_steps) : 0.0;
  return result;
}

EvalResult EvaluatePolicy(ActorCritic* model, Env* env, int episodes) {
  return EvaluateActionFn(
      [model](const std::vector<double>& obs) { return model->ActionMean(obs); }, env,
      episodes);
}

EvalResult EvaluatePolicy(InferencePolicy* policy, Env* env, int episodes) {
  return EvaluateActionFn(
      [policy](const std::vector<double>& obs) { return policy->ActionMean(obs); }, env,
      episodes);
}

}  // namespace mocc
