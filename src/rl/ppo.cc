#include "src/rl/ppo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/common/thread_pool.h"

namespace mocc {

PpoTrainer::PpoTrainer(ActorCritic* model, const PpoConfig& config)
    : model_(model), config_(config), optimizer_(config.learning_rate), rng_(config.seed) {
  assert(model_ != nullptr);
}

void PpoTrainer::set_learning_rate(double lr) { optimizer_.set_learning_rate(lr); }

double PpoTrainer::EntropyCoef() const {
  const double frac = std::min(
      1.0, static_cast<double>(iteration_) / std::max(1, config_.entropy_decay_iters));
  return config_.entropy_start + frac * (config_.entropy_end - config_.entropy_start);
}

double PpoTrainer::SampleAction(const std::vector<double>& obs, double* log_prob,
                                double* value) {
  double mean = 0.0;
  double v = 0.0;
  model_->ForwardRow(obs, &mean, &v);
  const double std = std::exp(model_->log_std());
  const double action = rng_.Normal(mean, std);
  if (log_prob != nullptr) {
    *log_prob = GaussianLogProb(action, mean, std);
  }
  if (value != nullptr) {
    *value = v;
  }
  return action;
}

RolloutBuffer PpoTrainer::CollectWith(ActorCritic* model, Env* env, int steps, Rng* rng) {
  RolloutBuffer buffer;
  buffer.Reserve(static_cast<size_t>(steps));
  std::vector<double> obs = env->Reset();
  const double std = std::exp(model->log_std());
  double last_value = 0.0;
  bool last_done = true;
  for (int i = 0; i < steps; ++i) {
    // Single-row inference fast path: no batch matrices, no allocation.
    double mean = 0.0;
    double v = 0.0;
    model->ForwardRow(obs, &mean, &v);
    const double action = rng->Normal(mean, std);
    const StepResult result = env->Step(action);

    Transition t;
    t.observation = std::move(obs);
    t.action = action;
    t.log_prob = GaussianLogProb(action, mean, std);
    // GAE/critic targets use scaled rewards (see PpoConfig::reward_scale); the raw
    // reward is kept for reporting.
    t.reward = result.reward * config_.reward_scale;
    t.raw_reward = result.reward;
    t.value = v;
    t.done = result.done;
    buffer.transitions.push_back(std::move(t));

    last_done = result.done;
    obs = result.done ? env->Reset() : result.observation;
  }
  if (!last_done) {
    // Bootstrap the value of the truncated trajectory's final state.
    double mean = 0.0;
    double v = 0.0;
    model->ForwardRow(obs, &mean, &v);
    last_value = v;
  }
  ComputeGae(&buffer, config_.gamma, config_.gae_lambda, last_value);
  return buffer;
}

RolloutBuffer PpoTrainer::CollectRollout(Env* env, int steps) {
  return CollectWith(model_, env, steps, &rng_);
}

std::vector<RolloutBuffer> PpoTrainer::CollectVectorWith(ActorCritic* model,
                                                         VectorEnv* env, int env_steps,
                                                         Rng* rng) {
  const int n = env->NumAgents();
  std::vector<RolloutBuffer> buffers(static_cast<size_t>(n));
  for (RolloutBuffer& buffer : buffers) {
    buffer.Reserve(static_cast<size_t>(env_steps));
  }
  std::vector<std::vector<double>> obs = env->Reset();
  const double std = std::exp(model->log_std());
  std::vector<double> actions(static_cast<size_t>(n), 0.0);
  std::vector<double> means(static_cast<size_t>(n), 0.0);
  std::vector<double> values(static_cast<size_t>(n), 0.0);
  std::vector<bool> active(static_cast<size_t>(n), false);
  bool last_done = true;
  for (int step = 0; step < env_steps; ++step) {
    // Agent order is fixed and the arrival schedule is deterministic, so the shared
    // Rng stream draws deterministically. Agents whose flow has not arrived yet take
    // no action and record no transition — a staggered schedule must not feed
    // fictitious data into the update.
    for (int i = 0; i < n; ++i) {
      const size_t a = static_cast<size_t>(i);
      active[a] = env->AgentActive(i);
      if (!active[a]) {
        actions[a] = 0.0;
        continue;
      }
      model->ForwardRow(obs[a], &means[a], &values[a]);
      actions[a] = rng->Normal(means[a], std);
    }
    VectorStepResult result = env->Step(actions);

    for (int i = 0; i < n; ++i) {
      const size_t a = static_cast<size_t>(i);
      if (!active[a]) {
        continue;
      }
      Transition t;
      t.observation = std::move(obs[a]);
      t.action = actions[a];
      t.log_prob = GaussianLogProb(actions[a], means[a], std);
      t.reward = result.rewards[a] * config_.reward_scale;
      t.raw_reward = result.rewards[a];
      t.value = values[a];
      t.done = result.done;
      buffers[a].transitions.push_back(std::move(t));
    }
    last_done = result.done;
    obs = result.done ? env->Reset() : std::move(result.observations);
  }
  for (int i = 0; i < n; ++i) {
    RolloutBuffer& buffer = buffers[static_cast<size_t>(i)];
    double last_value = 0.0;
    if (!last_done && !buffer.transitions.empty() && !buffer.transitions.back().done) {
      // Bootstrap the value of this agent's truncated trajectory's final state.
      double mean = 0.0;
      model->ForwardRow(obs[static_cast<size_t>(i)], &mean, &last_value);
    }
    ComputeGae(&buffer, config_.gamma, config_.gae_lambda, last_value);
  }
  return buffers;
}

std::vector<RolloutBuffer> PpoTrainer::CollectVectorRollout(VectorEnv* env,
                                                            int env_steps) {
  return CollectVectorWith(model_, env, env_steps, &rng_);
}

std::vector<RolloutBuffer> PpoTrainer::CollectSourcesParallel(
    const std::vector<RolloutSource>& sources, int steps_each) {
  std::vector<std::vector<RolloutBuffer>> per_source(sources.size());
  std::vector<std::unique_ptr<ActorCritic>> clones;
  std::vector<Rng> rngs;
  clones.reserve(sources.size());
  rngs.reserve(sources.size());
  // As in CollectRolloutsParallel: clones and Rng streams derived on the calling
  // thread, in source order (determinism contract of src/common/thread_pool.h).
  for (size_t i = 0; i < sources.size(); ++i) {
    clones.push_back(model_->Clone());
    rngs.emplace_back(rng_.NextU64());
  }
  auto collect_one = [&](int i) {
    const size_t s = static_cast<size_t>(i);
    const RolloutSource& source = sources[s];
    if (source.vec != nullptr) {
      per_source[s] = CollectVectorWith(clones[s].get(), source.vec, steps_each, &rngs[s]);
    } else {
      per_source[s].push_back(CollectWith(clones[s].get(), source.env, steps_each, &rngs[s]));
    }
  };
  if (parallel_collection_) {
    ThreadPool::Shared().ParallelFor(static_cast<int>(sources.size()), collect_one);
  } else {
    for (int i = 0; i < static_cast<int>(sources.size()); ++i) {
      collect_one(i);
    }
  }
  std::vector<RolloutBuffer> buffers;
  for (std::vector<RolloutBuffer>& group : per_source) {
    for (RolloutBuffer& buffer : group) {
      buffers.push_back(std::move(buffer));
    }
  }
  return buffers;
}

std::vector<RolloutBuffer> PpoTrainer::CollectRolloutsParallel(const std::vector<Env*>& envs,
                                                               int steps_each) {
  std::vector<RolloutBuffer> buffers(envs.size());
  std::vector<std::unique_ptr<ActorCritic>> clones;
  std::vector<Rng> rngs;
  clones.reserve(envs.size());
  rngs.reserve(envs.size());
  // Clones and Rng streams are derived here, on the calling thread, in env order:
  // this is what makes the collected data independent of worker scheduling (see the
  // determinism contract in src/common/thread_pool.h).
  for (size_t i = 0; i < envs.size(); ++i) {
    clones.push_back(model_->Clone());
    rngs.emplace_back(rng_.NextU64());
  }
  auto collect_one = [&](int i) {
    buffers[static_cast<size_t>(i)] =
        CollectWith(clones[static_cast<size_t>(i)].get(), envs[static_cast<size_t>(i)],
                    steps_each, &rngs[static_cast<size_t>(i)]);
  };
  if (parallel_collection_) {
    ThreadPool::Shared().ParallelFor(static_cast<int>(envs.size()), collect_one);
  } else {
    for (int i = 0; i < static_cast<int>(envs.size()); ++i) {
      collect_one(i);
    }
  }
  return buffers;
}

PpoStats PpoTrainer::Update(const std::vector<const RolloutBuffer*>& buffers) {
  // Concatenate the buffers and normalize advantages jointly: objectives whose rewards
  // are flat within their rollout then contribute (correctly) little policy gradient,
  // while Eq. (6)'s equal weighting is preserved through equal sample counts.
  std::vector<Transition> all;
  std::vector<double> advantages;
  std::vector<double> returns;
  double reward_sum = 0.0;
  double episode_return_sum = 0.0;
  int episode_count = 0;
  for (const RolloutBuffer* buffer : buffers) {
    double episode_return = 0.0;
    for (size_t i = 0; i < buffer->transitions.size(); ++i) {
      Transition t = buffer->transitions[i];
      reward_sum += t.raw_reward;
      episode_return += t.raw_reward;
      if (t.done) {
        episode_return_sum += episode_return;
        episode_return = 0.0;
        ++episode_count;
      }
      all.push_back(std::move(t));
      advantages.push_back(buffer->advantages[i]);
      returns.push_back(buffer->returns[i]);
    }
  }
  // Joint advantage normalization.
  if (advantages.size() > 1) {
    double mean = 0.0;
    for (double a : advantages) {
      mean += a;
    }
    mean /= static_cast<double>(advantages.size());
    double var = 0.0;
    for (double a : advantages) {
      var += (a - mean) * (a - mean);
    }
    var /= static_cast<double>(advantages.size());
    const double denom = std::sqrt(var) + 1e-8;
    for (double& a : advantages) {
      a = (a - mean) / denom;
    }
  }
  const size_t n = all.size();
  PpoStats stats;
  stats.iteration = iteration_;
  if (n == 0) {
    return stats;
  }
  stats.mean_step_reward = reward_sum / static_cast<double>(n);
  stats.mean_episode_return =
      episode_count > 0 ? episode_return_sum / episode_count : reward_sum;
  last_mean_step_reward_ = stats.mean_step_reward;
  last_mean_episode_return_ = stats.mean_episode_return;

  const double entropy_coef = EntropyCoef();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double total_policy_loss = 0.0;
  double total_value_loss = 0.0;
  double total_approx_kl = 0.0;
  int update_count = 0;

  const size_t obs_dim = all[0].observation.size();
  // Minibatch matrices are member workspaces: steady-state updates are
  // allocation-free (Resize reuses capacity).
  Matrix& obs = batch_obs_;
  Matrix& mean = batch_mean_;
  Matrix& value = batch_value_;
  Matrix& dmean = batch_dmean_;
  Matrix& dvalue = batch_dvalue_;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (size_t begin = 0; begin < n; begin += static_cast<size_t>(config_.minibatch_size)) {
      const size_t end = std::min(n, begin + static_cast<size_t>(config_.minibatch_size));
      const size_t batch = end - begin;
      obs.Resize(batch, obs_dim);
      for (size_t b = 0; b < batch; ++b) {
        obs.SetRow(b, all[order[begin + b]].observation);
      }
      model_->ZeroGrad();
      model_->Forward(obs, &mean, &value);
      const double std = std::exp(model_->log_std());

      dmean.Resize(batch, 1);
      dvalue.Resize(batch, 1);
      double log_std_grad = 0.0;
      double policy_loss = 0.0;
      double value_loss = 0.0;
      double approx_kl = 0.0;
      const double inv_batch = 1.0 / static_cast<double>(batch);
      for (size_t b = 0; b < batch; ++b) {
        const size_t idx = order[begin + b];
        const Transition& t = all[idx];
        const double adv = advantages[idx];
        const double ret = returns[idx];
        const double mu = mean(b, 0);
        const double log_prob = GaussianLogProb(t.action, mu, std);
        approx_kl += t.log_prob - log_prob;
        const double ratio = std::exp(std::clamp(log_prob - t.log_prob, -20.0, 20.0));
        const double clipped =
            std::clamp(ratio, 1.0 - config_.clip_epsilon, 1.0 + config_.clip_epsilon);
        const double surr1 = ratio * adv;
        const double surr2 = clipped * adv;
        policy_loss += -std::min(surr1, surr2);
        // Gradient of -min(surr1, surr2) wrt (mu, log_std): nonzero only when the
        // unclipped branch is active.
        if (surr1 <= surr2) {
          const double z = (t.action - mu) / std;
          const double dlogp_dmu = z / std;
          const double dlogp_dlogstd = z * z - 1.0;
          dmean(b, 0) = -adv * ratio * dlogp_dmu * inv_batch;
          log_std_grad += -adv * ratio * dlogp_dlogstd * inv_batch;
        } else {
          dmean(b, 0) = 0.0;
        }
        // Entropy bonus: H = log_std + const, so dH/dlog_std = 1.
        log_std_grad += -entropy_coef * inv_batch;
        // Value loss: 0.5 * (V - R)^2.
        const double verr = value(b, 0) - ret;
        value_loss += 0.5 * verr * verr;
        dvalue(b, 0) = config_.value_coef * verr * inv_batch;
      }
      model_->Backward(dmean, dvalue);
      model_->AccumulateLogStdGrad(log_std_grad);
      auto params = model_->Params();
      ClipGradNorm(params, config_.max_grad_norm);
      optimizer_.Step(params);
      model_->set_log_std(
          std::clamp(model_->log_std(), config_.log_std_min, config_.log_std_max));

      total_policy_loss += policy_loss * inv_batch;
      total_value_loss += value_loss * inv_batch;
      total_approx_kl += approx_kl * inv_batch;
      ++update_count;
    }
  }
  if (update_count > 0) {
    stats.policy_loss = total_policy_loss / update_count;
    stats.value_loss = total_value_loss / update_count;
    stats.approx_kl = total_approx_kl / update_count;
  }
  stats.entropy = GaussianEntropy(std::exp(model_->log_std()));
  ++iteration_;
  return stats;
}

PpoStats PpoTrainer::TrainIteration(Env* env) {
  RolloutBuffer buffer = CollectRollout(env, config_.rollout_steps);
  return Update({&buffer});
}

PpoStats PpoTrainer::TrainIterationParallel(const std::vector<Env*>& envs) {
  const int steps_each =
      std::max(1, config_.rollout_steps / std::max<int>(1, static_cast<int>(envs.size())));
  std::vector<RolloutBuffer> buffers = CollectRolloutsParallel(envs, steps_each);
  std::vector<const RolloutBuffer*> ptrs;
  ptrs.reserve(buffers.size());
  for (const auto& b : buffers) {
    ptrs.push_back(&b);
  }
  return Update(ptrs);
}

}  // namespace mocc
