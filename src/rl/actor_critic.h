// Actor-critic model interface used by the PPO trainer, plus the plain MLP
// implementation that reproduces Aurora's single-objective policy network (Figure 2a).
// MOCC's preference-sub-network model (Figure 2b / Figure 3) implements the same
// interface in src/core/preference_model.h, so one PPO implementation trains both.
#ifndef MOCC_SRC_RL_ACTOR_CRITIC_H_
#define MOCC_SRC_RL_ACTOR_CRITIC_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/nn/mlp.h"
#include "src/nn/matrix.h"

namespace mocc {

class InferencePolicy;  // src/rl/inference_policy.h

// A policy π(a|s) = N(mean(s), exp(log_std)²) together with a value estimate V(s).
// The action is one-dimensional (the rate-adjustment a_t of Eq. 1).
class ActorCritic {
 public:
  virtual ~ActorCritic() = default;

  // Batched forward pass: `obs` is batch x obs_dim; fills `mean` and `value`
  // (both batch x 1). Caches activations for the following Backward call.
  virtual void Forward(const Matrix& obs, Matrix* mean, Matrix* value) = 0;

  // Batched backward pass for the losses dL/dmean and dL/dvalue (batch x 1 each).
  // Accumulates gradients into the parameters.
  virtual void Backward(const Matrix& dmean, const Matrix& dvalue) = 0;

  // Global log standard deviation of the Gaussian policy (a single trained scalar).
  virtual double log_std() const = 0;
  virtual void set_log_std(double v) = 0;
  virtual void AccumulateLogStdGrad(double g) = 0;

  virtual std::vector<ParamRef> Params() = 0;
  virtual void ZeroGrad() = 0;
  virtual size_t obs_dim() const = 0;

  // Deep copy (weights included) for lock-free parallel rollout collection.
  virtual std::unique_ptr<ActorCritic> Clone() const = 0;

  // Single-observation inference fast path: fills π-mean and V for one observation
  // without batch matrices (zero allocation in steady state). Unlike Forward it does
  // NOT cache activations for Backward. Bit-for-bit identical to a 1-row batched
  // Forward. The base implementation falls back to the batched path; concrete
  // models override it with a fused single-row pass.
  virtual void ForwardRow(const std::vector<double>& obs, double* mean, double* value);

  // Actor-head-only single-observation inference: fills π-mean without touching
  // the critic. Evaluation/deployment control loops only consume the mean, and
  // the two heads are independent networks in every model here, so skipping the
  // critic halves the per-step inference cost. Bit-identical mean to ForwardRow.
  // The base implementation falls back to ForwardRow (computing and discarding
  // V); concrete models override it.
  virtual void ForwardRowActor(const std::vector<double>& obs, double* mean);

  // Convenience single-observation helpers. ActionMean runs the actor head only
  // (ForwardRowActor); Value runs both heads via ForwardRow.
  double ActionMean(const std::vector<double>& obs);
  double Value(const std::vector<double>& obs);

  // Builds a frozen float32 deployment replica of this model (weights converted
  // once; later training steps do NOT propagate). Returns nullptr for models
  // without a reduced-precision path; concrete models override. The replica is
  // independent, so callers may build one per flow/thread.
  virtual std::unique_ptr<InferencePolicy> MakeFloat32Policy() const;

  // Builds an int8-quantized deployment replica (src/nn/qmlp.h): float32
  // freeze plus per-layer symmetric weight quantization of the tanh layers.
  // Same nullability and independence contract as MakeFloat32Policy.
  virtual std::unique_ptr<InferencePolicy> MakeInt8Policy() const;
};

// Aurora-style model: two independent MLPs (actor, critic), two hidden layers of 64 and
// 32 tanh units (§5), identity output heads, and a trainable global log_std.
class MlpActorCritic : public ActorCritic {
 public:
  MlpActorCritic(size_t obs_dim, Rng* rng, std::vector<size_t> hidden = {64, 32},
                 double init_log_std = -1.0);

  void Forward(const Matrix& obs, Matrix* mean, Matrix* value) override;
  void Backward(const Matrix& dmean, const Matrix& dvalue) override;
  void ForwardRow(const std::vector<double>& obs, double* mean, double* value) override;
  void ForwardRowActor(const std::vector<double>& obs, double* mean) override;
  std::unique_ptr<InferencePolicy> MakeFloat32Policy() const override;
  std::unique_ptr<InferencePolicy> MakeInt8Policy() const override;

  double log_std() const override { return log_std_(0, 0); }
  void set_log_std(double v) override { log_std_(0, 0) = v; }
  void AccumulateLogStdGrad(double g) override { log_std_grad_(0, 0) += g; }

  std::vector<ParamRef> Params() override;
  void ZeroGrad() override;
  size_t obs_dim() const override { return obs_dim_; }
  std::unique_ptr<ActorCritic> Clone() const override;

  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  size_t obs_dim_;
  std::vector<size_t> hidden_;
  Mlp actor_;
  Mlp critic_;
  Matrix log_std_{1, 1};
  Matrix log_std_grad_{1, 1};
  Matrix dx_scratch_;  // discarded dL/dX of Backward (capacity reused)
};

}  // namespace mocc

#endif  // MOCC_SRC_RL_ACTOR_CRITIC_H_
