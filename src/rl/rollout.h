// Trajectory storage and Generalized Advantage Estimation for the PPO trainer.
#ifndef MOCC_SRC_RL_ROLLOUT_H_
#define MOCC_SRC_RL_ROLLOUT_H_

#include <cstddef>
#include <vector>

namespace mocc {

// One collected transition.
struct Transition {
  std::vector<double> observation;
  double action = 0.0;
  double log_prob = 0.0;
  double reward = 0.0;      // scaled reward used for GAE/critic targets
  double raw_reward = 0.0;  // environment reward, for reporting
  double value = 0.0;
  bool done = false;
};

// A batch of transitions plus the derived advantage/return targets.
struct RolloutBuffer {
  std::vector<Transition> transitions;
  std::vector<double> advantages;
  std::vector<double> returns;

  void Clear();
  // Preallocates storage for `steps` transitions and their GAE targets so
  // collection and ComputeGae never reallocate mid-rollout.
  void Reserve(size_t steps);
  size_t size() const { return transitions.size(); }
};

// Computes GAE(γ, λ) advantages and the corresponding value targets
// (returns[i] = advantages[i] + value[i]). `bootstrap_value` is V(s_T) of the state
// following the last transition (0 if that transition ended an episode).
void ComputeGae(RolloutBuffer* buffer, double gamma, double lam, double bootstrap_value);

// Normalizes advantages to zero mean / unit variance (no-op for tiny buffers).
void NormalizeAdvantages(RolloutBuffer* buffer);

// Gaussian log-density log N(x; mean, std²).
double GaussianLogProb(double x, double mean, double std);

// Differential entropy of N(·; mean, std²) = log(std) + 0.5*log(2πe).
double GaussianEntropy(double std);

}  // namespace mocc

#endif  // MOCC_SRC_RL_ROLLOUT_H_
