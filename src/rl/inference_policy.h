// Float32 deployment-side policy inference.
//
// Training is double-precision end to end (gradients through FastTanh need the
// headroom), but the deployed per-MI control loop only ever runs single-row
// forward passes — Figure 17's overhead budget. An InferencePolicy is a frozen
// float32 replica of a trained ActorCritic: half the weight bytes per inference
// (the whole Figure-3 model drops under L1 size) and twice the SIMD lanes through
// the identical RowMatVecBias/FastTanh kernels, at the cost of float rounding that
// the precision test harness bounds (tests/nn_float32_test.cc, tests/rl_test.cc
// parity suite, tests/golden_inference_test.cc).
//
// Concrete backends exist for both model families: MlpFloat32Policy mirrors
// MlpActorCritic (two independent MLPs), PreferenceFloat32Policy mirrors the
// Figure-3 preference model including its PN feature cache (the PN features depend
// only on the leading weight vector, which is constant across monitor intervals in
// deployment). Models hand out their replica through ActorCritic::MakeFloat32Policy.
//
// Thread safety: one InferencePolicy must not be used from two threads at once,
// even for const-looking queries (scratch rows, batch workspaces and the PN cache
// are per-instance). Sequential use from different threads with external ordering
// is fine. The serving layer shares one replica across every attached connection
// and serializes all calls through its poll loop; anything else must clone its
// own replica (the conversion is cheap next to a single rollout). Debug builds
// enforce the contract with an assert on a reentrancy flag; release builds carry
// the flag but skip the check.
#ifndef MOCC_SRC_RL_INFERENCE_POLICY_H_
#define MOCC_SRC_RL_INFERENCE_POLICY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/mlp.h"
#include "src/nn/qmlp.h"

namespace mocc {

// Inference precision of a deployed policy. kFloat32 runs per-MI decisions
// through the frozen float32 replica below; kInt8 additionally quantizes the
// replica's tanh layers to offset-64 int8 codes (src/nn/qmlp.h) and runs the
// maddubs-style integer GEMV; kDouble keeps the training-precision path.
// Defined here (not in core/policy_spec.h, which re-exports it) so the
// controller layer can carry it without an include cycle.
enum class Precision {
  kDouble,
  kFloat32,
  kInt8,
};

// A frozen float32 single-observation policy: the deployment counterpart of
// ActorCritic::ForwardRow. Observations arrive as double (the env/controller
// representation); they are narrowed once into a per-instance scratch row, the
// whole network then runs in float32, and the two scalar heads are widened back.
class InferencePolicy {
 public:
  virtual ~InferencePolicy() = default;

  // Single-observation fused inference through the float32 replica. Zero
  // allocation in steady state.
  void ForwardRow(const std::vector<double>& obs, double* mean, double* value);

  // Deterministic (mean-action) policy — the deployment control signal. Runs
  // the actor head only (the critic is dead weight in a control loop), halving
  // the per-step cost; the mean is bit-identical to ForwardRow's.
  double ActionMean(const std::vector<double>& obs);

  // Actor-only mean for one already-narrowed float32 observation row (the
  // serving layer narrows straight out of its slab, skipping the double vector).
  float ActionMeanF32(const float* obs);

  // Batched actor-only means: `obs` is n packed rows of obs_dim() floats, `means`
  // receives n values. Every output is bit-identical to n sequential
  // ActionMeanF32 calls on the same rows starting from the same cache state (the
  // contract tests/serving_test.cc pins down); backends override to amortize
  // weight reads across the batch.
  void ActionMeansF32(const float* obs, size_t n, float* means);

  virtual size_t obs_dim() const = 0;

  // The trained global log standard deviation, carried over for consumers that
  // sample (kept in double; it is not on the per-inference fast path).
  double log_std() const { return log_std_; }

 protected:
  explicit InferencePolicy(double log_std) : log_std_(log_std) {}

  // The float32 fast path; `obs` has obs_dim() narrowed elements.
  virtual void ForwardRowF32(const float* obs, float* mean, float* value) = 0;

  // Actor-only float32 fast path; the default computes and discards the value.
  virtual void ForwardRowF32Actor(const float* obs, float* mean) {
    float value = 0.0f;
    ForwardRowF32(obs, mean, &value);
  }

  // Batched actor-only fast path; the default loops the single-row kernel so
  // every backend satisfies the bit-identity contract by construction.
  virtual void ForwardBatchF32Actor(const float* obs, size_t n, float* means) {
    for (size_t i = 0; i < n; ++i) {
      ForwardRowF32Actor(obs + i * obs_dim(), means + i);
    }
  }

  // Reentrancy flag behind the debug single-thread assert. Present in all builds
  // (a release/debug ABI split on a virtual class invites ODR trouble); only
  // checked when NDEBUG is off.
  std::atomic<bool> scratch_in_use_{false};

 private:
  // Narrows `obs` into the per-instance scratch row and returns it.
  const float* NarrowObs(const std::vector<double>& obs);

  double log_std_;
  std::vector<float> obs_f32_;  // narrowing scratch (capacity reused)
};

// Float32 replica of MlpActorCritic: two independent MLPs (actor, critic).
// With int8 = true, both networks are additionally frozen into QuantizedMlp
// form and every forward runs the int8 path (same bit-stable-across-tiers
// guarantee, quantization error bounded by the rl_test parity harness).
class MlpFloat32Policy : public InferencePolicy {
 public:
  // Builds the replica by casting the trained double networks.
  MlpFloat32Policy(const MlpT<double>& actor, const MlpT<double>& critic, double log_std,
                   bool int8 = false);

  size_t obs_dim() const override { return actor_.in_dim(); }

 protected:
  void ForwardRowF32(const float* obs, float* mean, float* value) override;
  void ForwardRowF32Actor(const float* obs, float* mean) override;
  void ForwardBatchF32Actor(const float* obs, size_t n, float* means) override;

 private:
  MlpT<float> actor_;
  MlpT<float> critic_;
  bool int8_ = false;
  QuantizedMlp qactor_;
  QuantizedMlp qcritic_;
};

// Float32 replica of the Figure-3 preference model: per head a PN + trunk pair
// plus the PN feature cache keyed on the leading weight vector, mirroring
// PreferenceActorCritic::ForwardRow. The cache needs no invalidation hook: the
// replica's weights are frozen at construction, so the features only change when
// w⃗ changes.
class PreferenceFloat32Policy : public InferencePolicy {
 public:
  // (pn, trunk) per head, cast from the trained double networks. `weight_dim` is
  // the w⃗ prefix length of the observation; `hist_dim` the g⃗(t,η) suffix length.
  // With int8 = true the trunks run quantized (src/nn/qmlp.h); the tiny PNs
  // stay float32 behind their cache, where quantization would only add error.
  PreferenceFloat32Policy(const MlpT<double>& actor_pn, const MlpT<double>& actor_trunk,
                          const MlpT<double>& critic_pn, const MlpT<double>& critic_trunk,
                          size_t weight_dim, size_t hist_dim, double log_std,
                          bool int8 = false);

  size_t obs_dim() const override { return weight_dim_ + hist_dim_; }

  // Drops the cached PN features (testing hook; deployment never needs it).
  void InvalidatePnCache();

  // How many times the actor PN ran because the leading weight vector changed
  // (cache misses). The serving layer sorts its batch by weight prefix so this
  // counts distinct prefixes per batch; the serving tests assert on it.
  int64_t pn_recompute_count() const { return pn_recompute_count_; }

 protected:
  void ForwardRowF32(const float* obs, float* mean, float* value) override;
  void ForwardRowF32Actor(const float* obs, float* mean) override;
  void ForwardBatchF32Actor(const float* obs, size_t n, float* means) override;

 private:
  struct Head {
    MlpT<float> pn;
    MlpT<float> trunk;
    // Single-row workspace: [PN features | history]. The PN-feature prefix
    // doubles as the cache for pn_cache_w (the batch path stages from it; the
    // row path only writes the prefix on a PN recompute).
    std::vector<float> concat_row;
    std::vector<float> pn_cache_w;
    bool pn_cache_valid = false;
    // Trunk layer-0 accumulators over the PN feature slice, cached alongside
    // the PN features: the per-step row forward resumes these chains over the
    // history slice only (simd::RowMatVecSeeded), skipping weight_dim columns'
    // worth of first-layer multiplies. Bit-identical to the full evaluation
    // because a seeded resume executes the same per-output fma sequence.
    std::vector<float> l0_partial;
    // Ping/pong rows for the policy-owned trunk walk (sized trunk.MaxDim()).
    std::vector<float> scratch0;
    std::vector<float> scratch1;
    // Int8-mode quantized trunk (unused in float32 mode).
    QuantizedMlp qtrunk;
  };

  void ForwardHeadRow(Head* head, const float* obs, float* out);

  // Recomputes head->concat_row's PN prefix and the cached l0_partial from the
  // weight prefix of `obs`, and re-keys pn_cache_w.
  void RefreshPnCache(Head* head, const float* obs);

  size_t weight_dim_;
  size_t pn_out_;
  size_t hist_dim_;
  bool int8_ = false;
  Head actor_;
  Head critic_;
  int64_t pn_recompute_count_ = 0;
  MatrixT<float> batch_concat_;  // ForwardBatchF32Actor staging: n x (pn_out_+hist)
};

}  // namespace mocc

#endif  // MOCC_SRC_RL_INFERENCE_POLICY_H_
