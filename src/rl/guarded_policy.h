// Deployment guardrail for learned rate controllers: a per-decision validator behind a
// circuit breaker. Every monitor interval the controller proposes a rate update from
// policy inference; the guard accepts it only when the action and resulting rate are
// finite, the rate lies within (a tolerance band around) the controller's rate bounds,
// and the per-MI multiplicative change is bounded. A violation trips the breaker: the
// flow degrades to a fallback scheme (CUBIC from the baseline shelf, owned by the
// controller) and, after a hold-off, the breaker half-opens and probes the policy again
// — a configurable number of consecutive sane probes closes it. This is the serving-path
// counterpart of the training watchdog: a model emitting garbage (NaN weights, an
// out-of-distribution input, a corrupted checkpoint) costs throughput, not the
// connection. All state is deterministic — no clocks, no randomness — so guarded
// simulations stay bit-reproducible.
#ifndef MOCC_SRC_RL_GUARDED_POLICY_H_
#define MOCC_SRC_RL_GUARDED_POLICY_H_

#include <cstdint>

namespace mocc {

class GuardedPolicy {
 public:
  struct Options {
    // Bounds the per-MI multiplicative rate change in either direction: a proposal
    // outside [previous / f, previous * f] is a violation. With the Eq. (1) update
    // and α = 0.025 this corresponds to |action| ≲ 40 — far beyond any trained
    // policy's mean, but a hard stop for runaway outputs.
    double max_step_rate_factor = 2.0;
    // The controller's deployment rate bounds; proposals outside the bounds widened
    // by max_step_rate_factor are violations (clamp-hugging behaviour stays legal).
    double min_rate_bps = 0.1e6;
    double max_rate_bps = 400e6;
    // Monitor intervals the breaker stays open (fallback driving, inference skipped)
    // before half-opening to probe the policy again.
    int open_intervals = 8;
    // Consecutive valid half-open probes required to close the breaker.
    int close_after_valid_probes = 2;
  };

  enum class State {
    kClosed,    // policy drives the flow
    kOpen,      // fallback drives the flow; inference skipped
    kHalfOpen,  // policy probed; its decisions applied while they stay sane
  };

  explicit GuardedPolicy(const Options& options);

  // Called once per monitor interval before inference. Advances the open → half-open
  // hold-off and returns true when the policy should be evaluated this interval
  // (closed, or a half-open probe); false means the fallback owns the interval and
  // inference is skipped entirely.
  bool BeginInterval();

  // Validates one policy decision: `action` is the raw policy output, `proposed_rate`
  // the rate the Eq. (1) update would yield from `previous_rate`. Returns true when
  // the decision is accepted (a half-open probe counts toward closing); false trips
  // or re-opens the breaker and the caller must fall back for this interval.
  bool ValidateDecision(double action, double proposed_rate_bps,
                        double previous_rate_bps);

  State state() const { return state_; }
  // Transitions into the open state (closed → open trips plus half-open → open
  // reopenings) — the violation count surfaced in simulate/eval reports.
  int64_t trip_count() const { return trip_count_; }
  // Monitor intervals driven by the fallback (open, or a rejected decision).
  int64_t fallback_interval_count() const { return fallback_interval_count_; }
  // Times the breaker fully closed again after a trip.
  int64_t recovery_count() const { return recovery_count_; }

 private:
  void Trip();

  Options options_;
  State state_ = State::kClosed;
  int open_intervals_elapsed_ = 0;
  int valid_probes_ = 0;
  int64_t trip_count_ = 0;
  int64_t fallback_interval_count_ = 0;
  int64_t recovery_count_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_RL_GUARDED_POLICY_H_
