#include "src/common/rng.h"

#include <cmath>

#include "src/common/serialization.h"

namespace mocc {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    return static_cast<int64_t>(NextU64());  // Full 64-bit range requested.
  }
  // Rejection sampling removes modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = NextU64();
  while (draw >= limit) {
    draw = NextU64();
  }
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextU64()); }

void Rng::Serialize(BinaryWriter* w) const {
  for (uint64_t s : state_) {
    w->WriteU64(s);
  }
  w->WriteDouble(cached_normal_);
  w->WriteU32(has_cached_normal_ ? 1 : 0);
}

bool Rng::Deserialize(BinaryReader* r) {
  for (uint64_t& s : state_) {
    s = r->ReadU64();
  }
  cached_normal_ = r->ReadDouble();
  has_cached_normal_ = r->ReadU32() != 0;
  return r->ok();
}

}  // namespace mocc
