// Deterministic pseudo-random number generation for simulations and training.
//
// Every stochastic component in this codebase draws from an explicitly seeded Rng so that
// simulations, training runs and benchmark figures are reproducible bit-for-bit. The core
// generator is xoshiro256** (public domain, Blackman & Vigna) seeded through splitmix64.
#ifndef MOCC_SRC_COMMON_RNG_H_
#define MOCC_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mocc {

class BinaryWriter;
class BinaryReader;

// Deterministic random number generator. Copyable; copies evolve independently.
class Rng {
 public:
  // Seeds the generator. Two Rng instances constructed with the same seed produce
  // identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Returns the next raw 64-bit draw.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal draw (Marsaglia polar method, internally cached pair).
  double Normal();

  // Normal draw with the given mean and standard deviation. Requires stddev >= 0.
  double Normal(double mean, double stddev);

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponential draw with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Derives an independent child generator; useful for giving each component its own
  // stream without correlated draws.
  Rng Fork();

  // Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  // Persists / restores the full generator state (xoshiro words plus the cached
  // Marsaglia normal), so a restored Rng continues the stream bit-identically.
  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mocc

#endif  // MOCC_SRC_COMMON_RNG_H_
