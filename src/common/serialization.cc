#include "src/common/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mocc {

BinaryWriter::BinaryWriter(std::ostream& out, const std::string& magic, uint32_t version)
    : out_(out) {
  out_.write(magic.data(), static_cast<std::streamsize>(magic.size()));
  WriteU32(static_cast<uint32_t>(magic.size()));
  WriteU32(version);
}

void BinaryWriter::WriteU32(uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteU64(uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteI64(int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteDouble(double v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  if (!v.empty()) {
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(double)));
  }
}

BinaryReader::BinaryReader(std::istream& in, const std::string& expected_magic,
                           uint32_t expected_version)
    : in_(in) {
  // Record the stream end so length-prefixed reads can reject sizes that exceed the
  // bytes actually present (corrupt/truncated files) before allocating.
  const std::istream::pos_type start = in_.tellg();
  if (start != std::istream::pos_type(-1)) {
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    if (end != std::istream::pos_type(-1)) {
      end_pos_ = static_cast<std::streamoff>(end);
    }
    in_.seekg(start);
  }
  in_.clear();
  std::string magic(expected_magic.size(), '\0');
  in_.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  const uint32_t magic_len = ReadU32();
  const uint32_t version = ReadU32();
  if (!in_.good() || magic != expected_magic || magic_len != expected_magic.size() ||
      version != expected_version) {
    ok_ = false;
  }
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_.good()) {
    ok_ = false;
  }
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_.good()) {
    ok_ = false;
  }
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_.good()) {
    ok_ = false;
  }
  return v;
}

double BinaryReader::ReadDouble() {
  double v = 0.0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_.good()) {
    ok_ = false;
  }
  return v;
}

bool BinaryReader::FitsRemaining(uint64_t bytes) {
  if (end_pos_ < 0) {
    return true;
  }
  const std::istream::pos_type cur = in_.tellg();
  if (cur == std::istream::pos_type(-1)) {
    return true;
  }
  const std::streamoff remaining = end_pos_ - static_cast<std::streamoff>(cur);
  return remaining >= 0 && bytes <= static_cast<uint64_t>(remaining);
}

std::string BinaryReader::ReadString() {
  const uint64_t size = ReadU64();
  if (!ok_ || size > (1ULL << 32) || !FitsRemaining(size)) {
    ok_ = false;
    return {};
  }
  std::string s(size, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(size));
  if (!in_.good() && size > 0) {
    ok_ = false;
  }
  return s;
}

std::vector<double> BinaryReader::ReadDoubleVector() {
  const uint64_t size = ReadU64();
  if (!ok_ || size > (1ULL << 32) || !FitsRemaining(size * sizeof(double))) {
    ok_ = false;
    return {};
  }
  std::vector<double> v(size, 0.0);
  if (size > 0) {
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(size * sizeof(double)));
    if (!in_.good()) {
      ok_ = false;
    }
  }
  return v;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return out.good();
}

bool AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp_path = path + ".tmp";
  if (!WriteFile(tmp_path, contents)) {
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *contents = buf.str();
  return true;
}

}  // namespace mocc
