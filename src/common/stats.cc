#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace mocc {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double RunningStat::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStat::Max() const { return count_ == 0 ? 0.0 : max_; }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  std::vector<CdfPoint> cdf;
  if (values.empty()) {
    return cdf;
  }
  std::sort(values.begin(), values.end());
  cdf.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cdf.push_back({values[i], static_cast<double>(i + 1) / static_cast<double>(values.size())});
  }
  return cdf;
}

double JainFairnessIndex(const std::vector<double>& allocations) {
  if (allocations.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

double LeastSquaresSlope(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) {
    return 0.0;
  }
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mean_x) * (x[i] - mean_x);
    sxy += (x[i] - mean_x) * (y[i] - mean_y);
  }
  if (sxx == 0.0) {
    return 0.0;
  }
  return sxy / sxx;
}

Gaussian2d FitGaussian2d(const std::vector<double>& x, const std::vector<double>& y) {
  Gaussian2d g;
  const size_t n = std::min(x.size(), y.size());
  if (n == 0) {
    return g;
  }
  for (size_t i = 0; i < n; ++i) {
    g.mean_x += x[i];
    g.mean_y += y[i];
  }
  g.mean_x /= static_cast<double>(n);
  g.mean_y /= static_cast<double>(n);
  if (n < 2) {
    return g;
  }
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - g.mean_x;
    const double dy = y[i] - g.mean_y;
    g.var_x += dx * dx;
    g.var_y += dy * dy;
    g.cov_xy += dx * dy;
  }
  const double denom = static_cast<double>(n - 1);
  g.var_x /= denom;
  g.var_y /= denom;
  g.cov_xy /= denom;
  // Eigen-decomposition of the 2x2 symmetric covariance matrix.
  const double trace = g.var_x + g.var_y;
  const double det = g.var_x * g.var_y - g.cov_xy * g.cov_xy;
  const double disc = std::sqrt(std::max(0.0, trace * trace / 4.0 - det));
  const double lambda1 = trace / 2.0 + disc;
  const double lambda2 = trace / 2.0 - disc;
  g.ellipse_major = std::sqrt(std::max(0.0, lambda1));
  g.ellipse_minor = std::sqrt(std::max(0.0, lambda2));
  if (g.cov_xy == 0.0) {
    g.ellipse_angle_rad = g.var_x >= g.var_y ? 0.0 : std::acos(-1.0) / 2.0;
  } else {
    g.ellipse_angle_rad = std::atan2(lambda1 - g.var_x, g.cov_xy);
  }
  return g;
}

}  // namespace mocc
