#include "src/common/thread_pool.h"

#include <algorithm>

namespace mocc {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(1, num_threads) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) {
      return;
    }
    // Adopt the current job under the lock. A job that has already been retired
    // (fn_ reset by the submitting thread before it returned) must be skipped
    // WITHOUT touching next_: by then next_/completed_ may belong to a newer job.
    seen_epoch = epoch_;
    const std::function<void(int)>* fn = fn_;
    const int n = n_;
    if (fn == nullptr) {
      continue;
    }
    ++active_;
    lk.unlock();
    int done = 0;
    while (true) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        break;
      }
      (*fn)(i);
      ++done;
    }
    lk.lock();
    completed_ += done;
    --active_;
    if (completed_ == n_ && active_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    n_ = n;
    completed_ = 0;
    active_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller participates in the job, then waits until every task is done AND
  // no worker still holds a reference to this job (a woken worker that adopted
  // the epoch but has not claimed an index yet counts as active, so returning —
  // and destroying `fn` — before it finishes is impossible).
  int done = 0;
  while (true) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      break;
    }
    fn(i);
    ++done;
  }
  std::unique_lock<std::mutex> lk(mu_);
  completed_ += done;
  if (completed_ == n_ && active_ == 0) {
    done_cv_.notify_all();
  }
  done_cv_.wait(lk, [&] { return completed_ == n_ && active_ == 0; });
  // Retire the job before releasing the lock so late-waking workers skip it.
  fn_ = nullptr;
  n_ = 0;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace mocc
