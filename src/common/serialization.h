// Minimal binary (de)serialization used to persist trained models and cached benchmark
// artifacts. The format is a magic tag + version header followed by explicitly written
// primitives; readers validate the header and fail loudly on mismatch.
#ifndef MOCC_SRC_COMMON_SERIALIZATION_H_
#define MOCC_SRC_COMMON_SERIALIZATION_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace mocc {

// Streams primitives and vectors to a std::ostream in little-endian host order.
class BinaryWriter {
 public:
  // `magic` identifies the payload type (e.g. "MOCCMODL"); `version` allows evolution.
  BinaryWriter(std::ostream& out, const std::string& magic, uint32_t version);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);

  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
};

// Mirror of BinaryWriter. Constructor validates magic and version; all accessors return
// false / report !ok() once any read fails, so callers can check once at the end.
class BinaryReader {
 public:
  BinaryReader(std::istream& in, const std::string& expected_magic, uint32_t expected_version);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  double ReadDouble();
  std::string ReadString();
  std::vector<double> ReadDoubleVector();

  // True iff the header matched and every read so far succeeded.
  bool ok() const { return ok_ && in_.good(); }

 private:
  std::istream& in_;
  bool ok_ = true;
};

// Convenience file helpers. Return false on I/O failure.
bool WriteFile(const std::string& path, const std::string& contents);
bool ReadFile(const std::string& path, std::string* contents);

}  // namespace mocc

#endif  // MOCC_SRC_COMMON_SERIALIZATION_H_
