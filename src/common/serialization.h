// Minimal binary (de)serialization used to persist trained models and cached benchmark
// artifacts. The format is a magic tag + version header followed by explicitly written
// primitives; readers validate the header and fail loudly on mismatch.
#ifndef MOCC_SRC_COMMON_SERIALIZATION_H_
#define MOCC_SRC_COMMON_SERIALIZATION_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace mocc {

// Streams primitives and vectors to a std::ostream in little-endian host order.
class BinaryWriter {
 public:
  // `magic` identifies the payload type (e.g. "MOCCMODL"); `version` allows evolution.
  BinaryWriter(std::ostream& out, const std::string& magic, uint32_t version);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);

  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
};

// Mirror of BinaryWriter. Constructor validates magic and version; all accessors return
// false / report !ok() once any read fails, so callers can check once at the end.
// Length-prefixed reads (strings, vectors) validate the declared size against the
// bytes actually remaining in a seekable stream before allocating, so a truncated or
// corrupt file fails cleanly instead of attempting a multi-gigabyte allocation.
class BinaryReader {
 public:
  BinaryReader(std::istream& in, const std::string& expected_magic, uint32_t expected_version);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  double ReadDouble();
  std::string ReadString();
  std::vector<double> ReadDoubleVector();

  // True iff the header matched and every read so far succeeded.
  bool ok() const { return ok_ && in_.good(); }

 private:
  // False iff the stream is seekable and holds fewer than `bytes` unread bytes.
  bool FitsRemaining(uint64_t bytes);

  std::istream& in_;
  bool ok_ = true;
  std::streamoff end_pos_ = -1;  // -1: non-seekable stream, bounds check disabled
};

// Convenience file helpers. Return false on I/O failure.
bool WriteFile(const std::string& path, const std::string& contents);
bool ReadFile(const std::string& path, std::string* contents);

// Writes `contents` to `path` via a temporary file in the same directory followed by an
// atomic rename, so readers (and a crash mid-write) only ever observe the old complete
// file or the new complete file — never a torn one. Returns false on I/O failure.
bool AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace mocc

#endif  // MOCC_SRC_COMMON_SERIALIZATION_H_
