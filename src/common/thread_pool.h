// A small persistent thread pool for batched fan-out work (parallel rollout
// collection). Workers are started once and reused, so per-iteration dispatch costs
// a couple of condition-variable signals instead of thread creation.
//
// Determinism contract
// --------------------
// The pool only decides WHEN and WHERE tasks run, never WHAT they compute. For a
// parallel computation to be reproducible (and identical to running the same tasks
// sequentially), callers must ensure:
//  1. Each task owns all of its mutable state — in this codebase, a cloned model,
//     its own Env, and its own Rng stream. Tasks must not share mutable state or
//     synchronize with one another.
//  2. Every per-task Rng stream is seeded ON THE CALLER THREAD, in task-index
//     order, BEFORE dispatch (e.g. `rngs[i] = Rng(master.NextU64())`). Seeding
//     inside the task would make the draw order depend on scheduling.
//  3. Task i writes only to slot i of the result vector.
// Under this contract ParallelFor(n, fn) produces bit-identical results for any
// thread count, including the serial fallback (pool size 1), regardless of OS
// scheduling. PpoTrainer::CollectRolloutsParallel and the offline trainer follow it.
#ifndef MOCC_SRC_COMMON_THREAD_POOL_H_
#define MOCC_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mocc {

class ThreadPool {
 public:
  // Starts a pool that can run `num_threads` tasks concurrently (the calling
  // thread participates, so num_threads - 1 workers are spawned). num_threads < 1
  // is clamped to 1 (pure serial execution, no workers).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Maximum number of tasks that run concurrently (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(0), ..., fn(n-1) across the pool and blocks until all have finished.
  // Indices are claimed dynamically (an atomic counter), so per-task load imbalance
  // is absorbed. The calling thread executes tasks too. Concurrent ParallelFor
  // calls from different threads are serialized internally. Exceptions thrown by
  // `fn` are not caught — tasks must not throw.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  // Process-wide pool sized to the hardware concurrency. Created on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex run_mu_;  // serializes ParallelFor calls

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;  // current job; null = retired
  int n_ = 0;
  int completed_ = 0;
  int active_ = 0;  // workers currently holding a reference to the job
  uint64_t epoch_ = 0;
  bool stop_ = false;
  std::atomic<int> next_{0};
};

}  // namespace mocc

#endif  // MOCC_SRC_COMMON_THREAD_POOL_H_
