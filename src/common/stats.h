// Statistics helpers shared by the simulator, the RL stack and the benchmark harnesses:
// running moments, percentiles/CDFs, Jain's fairness index, least-squares slopes and the
// 2-D Gaussian ellipse fit used by the paper's Figure 1(b).
#ifndef MOCC_SRC_COMMON_STATS_H_
#define MOCC_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace mocc {

// Incremental mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double Mean() const;
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double Variance() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  double Sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Returns the p-quantile (p in [0,1]) of `values` using linear interpolation between
// order statistics. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

// Builds the empirical CDF of `values` (sorted ascending, probability = rank/n).
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

// Jain's fairness index: (Σx)² / (n·Σx²). Returns 1.0 for empty/all-zero input
// (degenerate case: nothing to share unfairly).
double JainFairnessIndex(const std::vector<double>& allocations);

// Least-squares slope of y against x. Returns 0 when fewer than two points or when all
// x are identical.
double LeastSquaresSlope(const std::vector<double>& x, const std::vector<double>& y);

// Maximum-likelihood 2-D Gaussian fit of (x, y) samples, plus the 1-sigma ellipse
// parameters used in the paper's throughput/latency scatter plot (Figure 1b).
struct Gaussian2d {
  double mean_x = 0.0;
  double mean_y = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  double cov_xy = 0.0;
  // 1-sigma ellipse: semi-axes (sqrt of covariance eigenvalues) and orientation of the
  // major axis in radians.
  double ellipse_major = 0.0;
  double ellipse_minor = 0.0;
  double ellipse_angle_rad = 0.0;
};

// Fits a 2-D Gaussian to paired samples. Requires x.size() == y.size(); with fewer than
// two samples the ellipse degenerates to a point.
Gaussian2d FitGaussian2d(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace mocc

#endif  // MOCC_SRC_COMMON_STATS_H_
