// Aligned-table / CSV printing used by the benchmark harnesses to emit the same rows and
// series that the paper's tables and figures report.
#ifndef MOCC_SRC_COMMON_TABLE_H_
#define MOCC_SRC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace mocc {

// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row. Rows shorter than the header are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  // Formats a double with `precision` digits after the decimal point.
  static std::string Num(double v, int precision = 3);

  // Writes the table (header, rule, rows) to `out`.
  void Print(std::ostream& out) const;

  // Writes the table as CSV to `out`.
  void PrintCsv(std::ostream& out) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a boxed section heading, used to delimit figure panels in bench output.
void PrintSection(std::ostream& out, const std::string& title);

}  // namespace mocc

#endif  // MOCC_SRC_COMMON_TABLE_H_
