#include "src/common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mocc {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << ",";
      }
      out << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintSection(std::ostream& out, const std::string& title) {
  out << "\n==== " << title << " ====\n";
}

}  // namespace mocc
