// Fleet-scale parallel simulation: shard whole topology instances across the
// process thread pool. Each shard owns a complete, isolated simulation stack —
// its own MultiFlowCcEnv (PacketNetwork, flows, traces, faults), its own Rng
// stream, and its own frozen replica of the shared policy (a double-precision
// clone, or a float32/int8 inference replica per the PolicySpec) — so thousands
// of bottlenecks evaluate concurrently with ZERO cross-shard synchronization
// inside an epoch. Aggregation (per-objective reward rollups, Jain's index,
// throughput/latency/loss) happens after the barrier, in shard order.
//
// Determinism contract (src/common/thread_pool.h, applied at fleet scale):
//  1. Shard seeds are drawn from the root seed ON THE CALLER THREAD in shard
//     order, before dispatch — shard i's episode stream is a pure function of
//     (spec.seed, i).
//  2. Each shard's env + policy replica are private; the shared model is only
//     read while building the replicas, on the caller thread.
//  3. Shard i writes only ShardResult slot i.
// Therefore RunFleet is bit-identical for ANY thread count and ANY shard→worker
// assignment, including the serial threads=1 path — bench_fleet enforces this
// as a hard gate, tests/fleet_test.cc pins it per shard.
#ifndef MOCC_SRC_FLEET_FLEET_H_
#define MOCC_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/policy_spec.h"

namespace mocc {

// One fleet run: `num_shards` isolated instances of `scenario`, every shard
// running `episodes_per_shard` episodes under the spec's policy.
struct FleetSpec {
  // Catalog scenario name (ScenarioRegistry::Resolve vocabulary, including
  // "mahimahi:<path>"). Every shard instantiates its own copy.
  std::string scenario = "many-flow";
  int num_shards = 8;
  int episodes_per_shard = 1;
  // > 0 truncates every episode at this many env steps; 0 runs each episode to
  // the
  // scenario's own end (max_steps_per_episode).
  int steps_per_episode = 0;
  // Root seed. Shard i's seed is the i-th NextU64 draw of Rng(seed).
  uint64_t seed = 1;
  // The frozen policy every shard replicates (model + precision; double clones
  // the model, float32/int8 build per-shard inference replicas).
  PolicySpec policy;
  // 0 = the process-wide shared pool (hardware concurrency); 1 = serial
  // reference execution on the caller thread; n > 1 = a dedicated pool of n.
  int threads = 0;
};

// Everything one shard measured, in deterministic (seed-derived) form. Sums are
// over started-agent monitor intervals; divide by agent_steps for means.
struct ShardResult {
  int shard = 0;
  uint64_t seed = 0;
  int episodes = 0;
  int64_t env_steps = 0;
  int64_t agent_steps = 0;  // started-agent transitions (inactive agents excluded)
  double reward_sum = 0.0;  // Eq. (2) scalarized rewards, as the env scored them
  // Per-objective components (Eq. 2's O_thr/O_lat/O_loss), recomputed from each
  // started agent's monitor report against its own capacity share and base RTT.
  double o_thr_sum = 0.0;
  double o_lat_sum = 0.0;
  double o_loss_sum = 0.0;
  double throughput_sum_bps = 0.0;
  double avg_rtt_sum_s = 0.0;
  double loss_rate_sum = 0.0;
  double jain_sum = 0.0;  // one end-of-episode Jain's index sample per episode
  // Order-sensitive digest of every per-step reward and rate this shard
  // produced — the bit-identity witness bench_fleet and fleet_test compare
  // across thread counts.
  uint64_t checksum = 0;
};

// The epoch-batched aggregate: per-shard results plus shard-order rollups.
struct FleetResult {
  bool ok = false;
  std::string error;  // set when !ok (unknown scenario, unresolvable model)
  std::vector<ShardResult> shards;
  int64_t env_steps = 0;
  int64_t agent_steps = 0;
  int episodes = 0;
  double mean_reward = 0.0;
  double mean_o_thr = 0.0;
  double mean_o_lat = 0.0;
  double mean_o_loss = 0.0;
  double mean_throughput_bps = 0.0;
  double mean_avg_rtt_s = 0.0;
  double mean_loss_rate = 0.0;
  double mean_jain = 0.0;  // per-episode mean
  // Shard-order combination of the shard checksums — equal across two runs iff
  // every shard's full decision/reward stream was bit-identical.
  uint64_t checksum = 0;
};

// Runs the fleet. Blocking; returns after every shard has finished and the
// aggregation pass is done. Thread-safe with respect to itself only through
// the shared pool's internal serialization — the spec's model is the one
// shared input, and it is only read.
FleetResult RunFleet(const FleetSpec& spec);

}  // namespace mocc

#endif  // MOCC_SRC_FLEET_FLEET_H_
