#include "src/fleet/fleet.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/reward.h"
#include "src/core/weight_vector.h"
#include "src/envs/multi_flow_cc_env.h"
#include "src/envs/scenario.h"
#include "src/rl/actor_critic.h"
#include "src/rl/inference_policy.h"

namespace mocc {
namespace {

// Order-sensitive 64-bit digest (the boost::hash_combine mixer). Doubles enter
// by bit pattern, so any FP divergence — not just a large one — changes it.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(h, bits);
}

// One shard's private policy replica. Exactly one of the members is set; each
// replica is built on the caller thread (the shared model is read there only)
// and used by one shard thread (the InferencePolicy / ActorCritic scratch is
// single-thread state).
struct ShardPolicy {
  std::unique_ptr<ActorCritic> clone;            // Precision::kDouble
  std::unique_ptr<InferencePolicy> inference;    // kFloat32 / kInt8

  double ActionMean(const std::vector<double>& obs) {
    return clone != nullptr ? clone->ActionMean(obs) : inference->ActionMean(obs);
  }
};

ShardPolicy MakeShardPolicy(const PreferenceActorCritic& model, Precision precision) {
  ShardPolicy policy;
  switch (precision) {
    case Precision::kDouble:
      policy.clone = model.Clone();
      break;
    case Precision::kFloat32:
      policy.inference = model.MakeFloat32Policy();
      break;
    case Precision::kInt8:
      policy.inference = model.MakeInt8Policy();
      break;
  }
  return policy;
}

// Runs one shard start to finish: its own env, its own replica, no shared
// mutable state. Writes only `result` (slot `shard` of the result vector).
void RunShard(const Scenario& scenario, const CcEnvConfig& env_config,
              const FleetSpec& spec, int shard, uint64_t seed, ShardPolicy* policy,
              ShardResult* result) {
  result->shard = shard;
  result->seed = seed;
  std::unique_ptr<MultiFlowCcEnv> env = scenario.MakeMultiFlowEnv(env_config, seed);
  // Homogeneous base objective, as in training/eval harnesses; scenarios with
  // their own ObjectivePlan override it at Reset.
  env->SetObjective(BalancedObjective());

  const int num_agents = env->NumAgents();
  std::vector<double> actions(static_cast<size_t>(num_agents), 0.0);
  uint64_t checksum = 0;
  for (int episode = 0; episode < spec.episodes_per_shard; ++episode) {
    std::vector<std::vector<double>> obs = env->Reset();
    for (int step = 0;; ++step) {
      for (int i = 0; i < num_agents; ++i) {
        actions[static_cast<size_t>(i)] =
            policy->ActionMean(obs[static_cast<size_t>(i)]);
      }
      VectorStepResult r = env->Step(actions);
      ++result->env_steps;
      const double capacity_full = env->current_bandwidth_bps();
      const double capacity =
          env->config().fair_share_reward
              ? capacity_full / static_cast<double>(env->ActiveFlowCount())
              : capacity_full;
      for (int i = 0; i < num_agents; ++i) {
        checksum = MixDouble(checksum, r.rewards[static_cast<size_t>(i)]);
        if (!env->AgentStarted(i)) {
          continue;
        }
        ++result->agent_steps;
        result->reward_sum += r.rewards[static_cast<size_t>(i)];
        const MonitorReport& mi = env->agent_last_report(i);
        const RewardComponents c =
            ComputeRewardComponents(mi, capacity, env->AgentBaseRttS(i));
        result->o_thr_sum += c.o_thr;
        result->o_lat_sum += c.o_lat;
        result->o_loss_sum += c.o_loss;
        result->throughput_sum_bps += mi.throughput_bps;
        result->avg_rtt_sum_s += mi.avg_rtt_s;
        result->loss_rate_sum += mi.loss_rate;
        checksum = MixDouble(checksum, env->agent_rate_bps(i));
      }
      const bool truncated =
          spec.steps_per_episode > 0 && step + 1 >= spec.steps_per_episode;
      if (r.done || truncated) {
        break;
      }
      obs = std::move(r.observations);
    }
    const double jain = env->LastStepJainIndex();
    result->jain_sum += jain;
    checksum = MixDouble(checksum, jain);
    ++result->episodes;
  }
  result->checksum = checksum;
}

}  // namespace

FleetResult RunFleet(const FleetSpec& spec) {
  FleetResult fleet;
  std::string error;
  std::optional<Scenario> scenario =
      ScenarioRegistry::Global().Resolve(spec.scenario, &error);
  if (!scenario.has_value()) {
    fleet.error = error;
    return fleet;
  }
  std::shared_ptr<PreferenceActorCritic> model = spec.policy.ResolveModel();
  if (model == nullptr) {
    fleet.error = "cannot resolve the fleet policy's model";
    return fleet;
  }

  const int num_shards = std::max(1, spec.num_shards);
  const CcEnvConfig env_config = model->config().MakeEnvConfig();

  // Everything ordering-sensitive happens here, on the caller thread, in shard
  // order: seed derivation (determinism rule 2) and replica construction (the
  // only reads of the shared model).
  Rng root(spec.seed);
  std::vector<uint64_t> seeds(static_cast<size_t>(num_shards));
  std::vector<ShardPolicy> policies(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    seeds[static_cast<size_t>(i)] = root.NextU64();
    policies[static_cast<size_t>(i)] =
        MakeShardPolicy(*model, spec.policy.precision());
  }

  fleet.shards.resize(static_cast<size_t>(num_shards));
  auto run_shard = [&](int i) {
    RunShard(*scenario, env_config, spec, i, seeds[static_cast<size_t>(i)],
             &policies[static_cast<size_t>(i)], &fleet.shards[static_cast<size_t>(i)]);
  };
  if (spec.threads == 1) {
    for (int i = 0; i < num_shards; ++i) {
      run_shard(i);  // the serial reference the parallel paths must match
    }
  } else if (spec.threads <= 0) {
    ThreadPool::Shared().ParallelFor(num_shards, run_shard);
  } else {
    ThreadPool pool(spec.threads);
    pool.ParallelFor(num_shards, run_shard);
  }

  // Shard-order aggregation: a deterministic fold, independent of which worker
  // ran which shard.
  double reward_sum = 0.0, o_thr = 0.0, o_lat = 0.0, o_loss = 0.0;
  double thr = 0.0, rtt = 0.0, loss = 0.0, jain = 0.0;
  for (const ShardResult& s : fleet.shards) {
    fleet.env_steps += s.env_steps;
    fleet.agent_steps += s.agent_steps;
    fleet.episodes += s.episodes;
    reward_sum += s.reward_sum;
    o_thr += s.o_thr_sum;
    o_lat += s.o_lat_sum;
    o_loss += s.o_loss_sum;
    thr += s.throughput_sum_bps;
    rtt += s.avg_rtt_sum_s;
    loss += s.loss_rate_sum;
    jain += s.jain_sum;
    fleet.checksum = Mix(fleet.checksum, s.checksum);
  }
  const double agent_steps = static_cast<double>(std::max<int64_t>(1, fleet.agent_steps));
  fleet.mean_reward = reward_sum / agent_steps;
  fleet.mean_o_thr = o_thr / agent_steps;
  fleet.mean_o_lat = o_lat / agent_steps;
  fleet.mean_o_loss = o_loss / agent_steps;
  fleet.mean_throughput_bps = thr / agent_steps;
  fleet.mean_avg_rtt_s = rtt / agent_steps;
  fleet.mean_loss_rate = loss / agent_steps;
  fleet.mean_jain = jain / static_cast<double>(std::max(1, fleet.episodes));
  fleet.ok = true;
  return fleet;
}

}  // namespace mocc
