#include "src/apps/media_source.h"

#include <algorithm>
#include <cassert>

namespace mocc {

RtcSourceCc::RtcSourceCc(const Options& options)
    : options_(options),
      rate_bps_(std::clamp(options.initial_rate_bps, options.min_rate_bps,
                           options.max_rate_bps)) {}

void RtcSourceCc::OnMonitorInterval(const MonitorReport& report) {
  // Queueing delay is measured against the flow's own historical floor, so the
  // encoder reacts to standing queue it (and its competitors) built, not to the
  // path's propagation delay.
  const double queueing_s =
      report.avg_rtt_s > 0.0 && report.min_rtt_s > 0.0
          ? std::max(0.0, report.avg_rtt_s - report.min_rtt_s)
          : 0.0;
  const bool congested = queueing_s > options_.delay_threshold_s ||
                         report.loss_rate > options_.loss_threshold;
  rate_bps_ *= congested ? options_.backoff : options_.ramp;
  rate_bps_ = std::clamp(rate_bps_, options_.min_rate_bps, options_.max_rate_bps);
}

VideoSourceCc::VideoSourceCc(const Options& options)
    : options_(options),
      rate_bps_(options.ladder_kbps.empty()
                    ? options.idle_rate_bps
                    : options.ladder_kbps.front() * 1e3 * options.download_multiple) {
  assert(!options_.ladder_kbps.empty());
}

void VideoSourceCc::OnMonitorInterval(const MonitorReport& report) {
  // Conservative delivered-throughput estimate (EWMA stands in for VideoSession's
  // harmonic mean over recent chunks; both damp one-interval spikes). Only
  // intervals spent actually downloading count — a real ABR estimates from
  // chunk deliveries, and folding idle keepalive trickle into the estimate
  // would drag the budget to the idle rate and pin the client at the bottom
  // rung forever.
  const bool downloading = rate_bps_ > options_.idle_rate_bps;
  if (downloading && report.throughput_bps > 0.0) {
    estimate_bps_ = estimate_bps_ <= 0.0
                        ? report.throughput_bps
                        : (1.0 - options_.estimate_gain) * estimate_bps_ +
                              options_.estimate_gain * report.throughput_bps;
  }

  // Buffer model: downloading at `bitrate` nets one second of video per second of
  // real time; delivered bits above/below the chosen bitrate grow/shrink the
  // buffer, and playback drains it in real time.
  const double bitrate_bps =
      options_.ladder_kbps[static_cast<size_t>(quality_level_)] * 1e3;
  if (report.duration_s > 0.0) {
    buffer_s_ += report.duration_s *
                 (report.throughput_bps / std::max(1.0, bitrate_bps) - 1.0);
    buffer_s_ = std::clamp(buffer_s_, 0.0, options_.max_buffer_s);
  }

  // ABR rule: the highest ladder level fitting the safety-discounted estimate
  // (VideoSession::PickQuality against the live estimate instead of chunk history).
  const double budget_bps = options_.safety * estimate_bps_;
  int level = 0;
  for (int i = static_cast<int>(options_.ladder_kbps.size()) - 1; i >= 0; --i) {
    if (options_.ladder_kbps[static_cast<size_t>(i)] * 1e3 <= budget_bps) {
      level = i;
      break;
    }
  }
  quality_level_ = level;

  const bool buffer_full = buffer_s_ >= options_.max_buffer_s - 1e-9;
  rate_bps_ = buffer_full
                  ? options_.idle_rate_bps
                  : options_.ladder_kbps[static_cast<size_t>(quality_level_)] * 1e3 *
                        options_.download_multiple;
}

}  // namespace mocc
