// Chunked adaptive-bitrate video streaming over the packet simulator — the paper's first
// real-application workload (Figure 8, §6.3: a Pensieve-style video server; ABR picks
// chunk quality from buffer state and throughput predictions, so a better transport
// yields more high-quality chunks). The ABR here is a robust-MPC-style rule: highest
// bitrate whose predicted download time fits in the playback buffer minus a safety
// reserve, with the throughput prediction being the harmonic mean of recent chunks.
#ifndef MOCC_SRC_APPS_VIDEO_H_
#define MOCC_SRC_APPS_VIDEO_H_

#include <vector>

#include "src/netsim/packet_network.h"

namespace mocc {

struct VideoConfig {
  // Pensieve's bitrate ladder (kbps); index = quality level 0..5.
  std::vector<double> ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
  double chunk_duration_s = 4.0;
  int num_chunks = 30;
  double max_buffer_s = 30.0;
  double safety_reserve_s = 2.0;
  int throughput_window_chunks = 5;
};

struct VideoResult {
  std::vector<int> chunk_quality;      // chosen level per chunk
  std::vector<int> quality_histogram;  // chunk count per level
  double rebuffer_s = 0.0;      // stalls after playback started
  double startup_delay_s = 0.0;  // first chunk's download time
  double avg_chunk_throughput_mbps = 0.0;
  double total_time_s = 0.0;

  int CountAtLevel(int level) const {
    return level >= 0 && level < static_cast<int>(quality_histogram.size())
               ? quality_histogram[static_cast<size_t>(level)]
               : 0;
  }
};

class VideoSession {
 public:
  explicit VideoSession(const VideoConfig& config = {});

  // Streams num_chunks chunks over flow `flow_id` of `net` (the flow must already be
  // added and started; the session pauses/resumes it around downloads). Returns the
  // per-chunk quality decisions and aggregate QoE statistics.
  VideoResult Run(PacketNetwork* net, int flow_id);

  // The MPC-style ABR decision exposed for unit testing: highest level whose
  // size/predicted-throughput download fits the buffer budget.
  int PickQuality(double predicted_throughput_bps, double buffer_s) const;

 private:
  VideoConfig config_;
};

}  // namespace mocc

#endif  // MOCC_SRC_APPS_VIDEO_H_
