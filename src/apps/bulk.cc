#include "src/apps/bulk.h"

#include "src/netsim/packet_network.h"

namespace mocc {

double RunBulkTransfer(const BulkConfig& config, std::unique_ptr<CongestionControl> cc,
                       uint64_t seed) {
  PacketNetwork net(config.link, seed);
  const int flow = net.AddFlow(std::move(cc));
  const int64_t target_bits = static_cast<int64_t>(config.file_mb * 8e6);
  net.RunUntil([&]() { return net.record(flow).bits_acked >= target_bits; },
               config.max_time_s);
  const FlowRecord& record = net.record(flow);
  if (record.bits_acked < target_bits) {
    return config.max_time_s;
  }
  return record.last_ack_time_s -
         (record.first_send_time_s >= 0.0 ? record.first_send_time_s : 0.0);
}

RunningStat RunBulkTransfers(const BulkConfig& config,
                             const std::function<std::unique_ptr<CongestionControl>()>& make_cc,
                             int repetitions, uint64_t seed_base) {
  RunningStat stat;
  for (int i = 0; i < repetitions; ++i) {
    stat.Add(RunBulkTransfer(config, make_cc(), seed_base + static_cast<uint64_t>(i) * 7919));
  }
  return stat;
}

}  // namespace mocc
