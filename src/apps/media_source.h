// App-limited media traffic sources as first-class congestion controllers — the
// scenario-side promotion of the rtc/video application harnesses. Unlike the bulk
// baselines (CUBIC, BBR, ...), these never try to fill the pipe: an RTC encoder is
// capped at its top encoding bitrate and a video client goes idle once its playback
// buffer is full, so competing flows see realistic on/off and rate-capped cross
// traffic instead of another greedy elephant. Both sources are deterministic pure
// functions of their monitor-interval feedback (no internal randomness), keeping
// every scenario that uses them seed-reproducible and pool-vs-serial bit-identical.
#ifndef MOCC_SRC_APPS_MEDIA_SOURCE_H_
#define MOCC_SRC_APPS_MEDIA_SOURCE_H_

#include <string>
#include <vector>

#include "src/netsim/cc_interface.h"

namespace mocc {

// A real-time conferencing sender in the GCC/Salsify mold: the encoder's target
// bitrate follows a delay- and loss-based AIMD between a floor and the top encoding
// rate. Queueing delay above the threshold, or loss, backs the encoder off
// multiplicatively; clean intervals ramp it up toward the cap. The source is
// app-limited by construction — PacingRateBps never exceeds max_rate_bps however
// much capacity the path has.
class RtcSourceCc : public CongestionControl {
 public:
  struct Options {
    double min_rate_bps = 150e3;   // lowest encoder operating point
    double max_rate_bps = 2.5e6;   // top encoding bitrate (the app limit)
    double initial_rate_bps = 600e3;
    // Queueing delay (avg RTT minus the historical min) that counts as congestion.
    double delay_threshold_s = 0.030;
    double loss_threshold = 0.02;
    double backoff = 0.85;         // multiplicative decrease on congestion
    double ramp = 1.08;            // multiplicative ramp on clean intervals
  };

  RtcSourceCc() : RtcSourceCc(Options{}) {}
  explicit RtcSourceCc(const Options& options);

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "rtc-source"; }
  bool NeedsPerAckEvents() const override { return false; }
  void OnMonitorInterval(const MonitorReport& report) override;
  double PacingRateBps() const override { return rate_bps_; }

  double rate_bps() const { return rate_bps_; }

 private:
  Options options_;
  double rate_bps_;
};

// A chunked adaptive-bitrate video client (the VideoSession ABR rule recast as a
// self-driving source): it picks the highest ladder bitrate fitting a conservative
// throughput estimate, downloads ahead at a fixed multiple of that bitrate while
// the modelled playback buffer has room, and goes (nearly) idle once the buffer is
// full — the classic on/off burst pattern competing transports must live with.
class VideoSourceCc : public CongestionControl {
 public:
  struct Options {
    std::vector<double> ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
    double max_buffer_s = 30.0;    // stop downloading ahead beyond this
    // Burst rate = multiple x chosen bitrate. Must exceed the largest ladder
    // step ratio (2.5x at 300->750) x 1/safety, or the app-limited download
    // caps the observable throughput below the budget the next rung needs and
    // the client can never climb.
    double download_multiple = 4.0;
    double idle_rate_bps = 50e3;   // keepalive trickle while the buffer is full
    double safety = 0.8;           // use at most this fraction of the estimate
    double estimate_gain = 0.25;   // EWMA gain of the throughput estimate
  };

  VideoSourceCc() : VideoSourceCc(Options{}) {}
  explicit VideoSourceCc(const Options& options);

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "video-source"; }
  bool NeedsPerAckEvents() const override { return false; }
  void OnMonitorInterval(const MonitorReport& report) override;
  double PacingRateBps() const override { return rate_bps_; }

  int quality_level() const { return quality_level_; }
  double buffer_s() const { return buffer_s_; }

 private:
  Options options_;
  double rate_bps_;
  double estimate_bps_ = 0.0;  // EWMA of delivered throughput
  double buffer_s_ = 0.0;      // downloaded-but-unplayed seconds of video
  int quality_level_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_APPS_MEDIA_SOURCE_H_
