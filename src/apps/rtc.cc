#include "src/apps/rtc.h"

#include <algorithm>
#include <cmath>

#include "src/common/stats.h"

namespace mocc {

RtcResult AnalyzeRtcFlow(const PacketNetwork& net, int flow_id, double warmup_s,
                         double end_s) {
  RtcResult result;
  const FlowRecord& record = net.record(flow_id);
  const auto& deliveries = record.delivery_times();

  std::vector<double> gaps_s;
  gaps_s.reserve(deliveries.size());
  for (size_t i = 1; i < deliveries.size(); ++i) {
    if (deliveries[i] < warmup_s || deliveries[i] > end_s) {
      continue;
    }
    gaps_s.push_back(deliveries[i] - deliveries[i - 1]);
  }
  if (!gaps_s.empty()) {
    RunningStat stat;
    for (double g : gaps_s) {
      stat.Add(g * 1e3);
    }
    result.mean_inter_packet_delay_ms = stat.Mean();
    result.jitter_ms = stat.StdDev();
    result.p95_inter_packet_delay_ms = Percentile(gaps_s, 0.95) * 1e3;
  }

  // Queueing delay: mean MI RTT in the analysis window minus the flow's min RTT.
  RunningStat queueing_ms;
  for (const auto& mi : record.mi_samples()) {
    if (mi.time_s < warmup_s || mi.time_s > end_s || mi.avg_rtt_s <= 0.0) {
      continue;
    }
    queueing_ms.Add(std::max(0.0, mi.avg_rtt_s - record.min_rtt_s) * 1e3);
  }
  result.mean_queueing_delay_ms = queueing_ms.Mean();
  result.goodput_mbps = record.AvgThroughputBps(warmup_s, end_s) / 1e6;
  result.frame_delay_ms = result.mean_inter_packet_delay_ms + result.mean_queueing_delay_ms;
  return result;
}

}  // namespace mocc
