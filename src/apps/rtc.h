// Real-time communication workload — the paper's second real application (Figure 9,
// §6.3: a Salsify-style conference call). The reported metric is the average
// inter-packet delay at the receiver: the mean gap between consecutive packet
// deliveries, which is inversely proportional to the goodput the transport sustains on
// the (lossy, wifi-like) path — schemes that collapse under random loss (e.g. CUBIC)
// space packets out several-fold wider.
#ifndef MOCC_SRC_APPS_RTC_H_
#define MOCC_SRC_APPS_RTC_H_

#include "src/netsim/packet_network.h"

namespace mocc {

struct RtcResult {
  double mean_inter_packet_delay_ms = 0.0;
  double p95_inter_packet_delay_ms = 0.0;
  double jitter_ms = 0.0;  // stddev of delivery gaps
  double mean_queueing_delay_ms = 0.0;
  double goodput_mbps = 0.0;
  // What a real-time frame experiences end to end beyond propagation: the spacing
  // between deliveries PLUS the standing queueing delay. A scheme that keeps the pipe
  // full but bloats the queue (e.g. BBR probing) scores badly here, matching the
  // paper's per-packet delay measurements.
  double frame_delay_ms = 0.0;
};

// Analyzes flow `flow_id` of a finished simulation. `warmup_s` of initial deliveries are
// excluded (slow-start transient). The flow must have been added with
// keep_delivery_times = true.
RtcResult AnalyzeRtcFlow(const PacketNetwork& net, int flow_id, double warmup_s,
                         double end_s);

}  // namespace mocc

#endif  // MOCC_SRC_APPS_RTC_H_
