// Bulk data transfer workload — the paper's third real application (Figure 10, §6.3):
// repeated 100 MB file transfers over a link with 0.5% random loss emulating background
// interference; the metric is the flow completion time (FCT) and its stability across
// repetitions.
#ifndef MOCC_SRC_APPS_BULK_H_
#define MOCC_SRC_APPS_BULK_H_

#include <functional>
#include <memory>

#include "src/common/stats.h"
#include "src/netsim/cc_interface.h"
#include "src/netsim/link_params.h"

namespace mocc {

struct BulkConfig {
  double file_mb = 100.0;
  LinkParams link{.bandwidth_bps = 100e6,
                  .one_way_delay_s = 0.005,
                  .queue_capacity_pkts = 1000,
                  .random_loss_rate = 0.005};
  double max_time_s = 600.0;
};

// One transfer: returns the flow completion time in seconds (or max_time_s on stall).
double RunBulkTransfer(const BulkConfig& config, std::unique_ptr<CongestionControl> cc,
                       uint64_t seed);

// `repetitions` transfers with per-run seeds; returns FCT statistics. `make_cc` is
// invoked once per run (congestion controllers are stateful).
RunningStat RunBulkTransfers(const BulkConfig& config,
                             const std::function<std::unique_ptr<CongestionControl>()>& make_cc,
                             int repetitions, uint64_t seed_base);

}  // namespace mocc

#endif  // MOCC_SRC_APPS_BULK_H_
