#include "src/apps/video.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace mocc {

VideoSession::VideoSession(const VideoConfig& config) : config_(config) {
  assert(!config_.ladder_kbps.empty());
}

int VideoSession::PickQuality(double predicted_throughput_bps, double buffer_s) const {
  const double budget_s = std::max(0.5, buffer_s - config_.safety_reserve_s);
  int pick = 0;
  for (int level = static_cast<int>(config_.ladder_kbps.size()) - 1; level >= 0; --level) {
    const double chunk_bits =
        config_.ladder_kbps[static_cast<size_t>(level)] * 1e3 * config_.chunk_duration_s;
    const double predicted_download_s =
        predicted_throughput_bps > 0.0 ? chunk_bits / predicted_throughput_bps : 1e9;
    if (predicted_download_s <= budget_s) {
      pick = level;
      break;
    }
  }
  return pick;
}

VideoResult VideoSession::Run(PacketNetwork* net, int flow_id) {
  VideoResult result;
  result.quality_histogram.assign(config_.ladder_kbps.size(), 0);
  std::deque<double> recent_throughputs_bps;
  double buffer_s = 0.0;
  const double start_s = net->now_s();
  int64_t target_bits = net->record(flow_id).bits_acked;

  for (int chunk = 0; chunk < config_.num_chunks; ++chunk) {
    // Harmonic-mean throughput prediction over the recent chunk downloads.
    double predicted_bps = 0.0;
    if (!recent_throughputs_bps.empty()) {
      double inv_sum = 0.0;
      for (double t : recent_throughputs_bps) {
        inv_sum += 1.0 / std::max(1.0, t);
      }
      predicted_bps = static_cast<double>(recent_throughputs_bps.size()) / inv_sum;
    }
    const int level = recent_throughputs_bps.empty() ? 0 : PickQuality(predicted_bps, buffer_s);
    result.chunk_quality.push_back(level);
    ++result.quality_histogram[static_cast<size_t>(level)];

    const double chunk_bits =
        config_.ladder_kbps[static_cast<size_t>(level)] * 1e3 * config_.chunk_duration_s;
    target_bits += static_cast<int64_t>(chunk_bits);

    const double t0 = net->now_s();
    net->ResumeFlow(flow_id);
    net->RunUntil(
        [&]() { return net->record(flow_id).bits_acked >= target_bits; },
        t0 + 120.0);
    const double download_s = std::max(1e-6, net->now_s() - t0);

    // Playback drains the buffer during the download; hitting zero is a rebuffer.
    // The first chunk fills an empty buffer: that time is startup delay, not a stall.
    if (chunk == 0) {
      result.startup_delay_s = download_s;
    } else if (download_s > buffer_s) {
      result.rebuffer_s += download_s - buffer_s;
      buffer_s = 0.0;
    } else {
      buffer_s -= download_s;
    }
    buffer_s += config_.chunk_duration_s;

    recent_throughputs_bps.push_back(chunk_bits / download_s);
    while (static_cast<int>(recent_throughputs_bps.size()) > config_.throughput_window_chunks) {
      recent_throughputs_bps.pop_front();
    }

    // If the buffer is full, the player idles before requesting the next chunk.
    if (buffer_s > config_.max_buffer_s - config_.chunk_duration_s) {
      const double idle_s = buffer_s - (config_.max_buffer_s - config_.chunk_duration_s);
      net->PauseFlow(flow_id);
      net->Run(net->now_s() + idle_s);
      buffer_s -= idle_s;
    }
  }
  net->ResumeFlow(flow_id);

  result.total_time_s = net->now_s() - start_s;
  double thr_sum = 0.0;
  for (double t : recent_throughputs_bps) {
    thr_sum += t;
  }
  // Average over the whole session, not just the tail window.
  double total_bits = 0.0;
  for (size_t i = 0; i < result.chunk_quality.size(); ++i) {
    total_bits += config_.ladder_kbps[static_cast<size_t>(result.chunk_quality[i])] * 1e3 *
                  config_.chunk_duration_s;
  }
  result.avg_chunk_throughput_mbps =
      result.total_time_s > 0.0 ? total_bits / result.total_time_s / 1e6 : 0.0;
  return result;
}

}  // namespace mocc
