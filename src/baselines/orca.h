// Orca-style hybrid congestion control (Abbasloo et al., SIGCOMM'20), simplified:
// "classic meets modern" — a CUBIC underlay provides packet-timescale reactions while an
// RL agent periodically rescales the window at monitor-interval timescale. Our agent is
// an Aurora-architecture policy (trained via TrainAurora on a throughput-leaning reward);
// its Eq.(1)-style action drives a bounded multiplicative scale on CUBIC's window, which
// reproduces Orca's qualitative behaviour: near-Aurora throughput with CUBIC's safety and
// the low control-loop overhead of infrequent inference (Figure 17).
#ifndef MOCC_SRC_BASELINES_ORCA_H_
#define MOCC_SRC_BASELINES_ORCA_H_

#include <memory>

#include "src/baselines/cubic.h"
#include "src/envs/mi_history.h"
#include "src/netsim/cc_interface.h"
#include "src/rl/actor_critic.h"

namespace mocc {

struct OrcaConfig {
  size_t history_len = 10;
  double action_scale = 0.5;  // per-MI scale adjustment aggressiveness
  double min_scale = 0.5;     // RL may at most halve ...
  double max_scale = 2.0;     // ... or double CUBIC's window
  CubicConfig cubic;
  // The RL agent runs every `inference_period_mis` monitor intervals, reflecting Orca's
  // decoupled (kernel-datapath, CCP-style) control loop.
  int inference_period_mis = 2;
};

class OrcaCc : public CongestionControl {
 public:
  OrcaCc(std::shared_ptr<ActorCritic> model, const OrcaConfig& config = {});

  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "Orca"; }

  void OnFlowStart(double now_s) override;
  void OnAck(const AckInfo& ack) override;
  void OnPacketLost(const LossInfo& loss) override;
  void OnTimeout(double now_s) override;
  void OnMonitorInterval(const MonitorReport& report) override;

  double CwndPackets() const override;
  double scale() const { return scale_; }
  int64_t inference_count() const { return inference_count_; }

 private:
  std::shared_ptr<ActorCritic> model_;
  OrcaConfig config_;
  CubicCc cubic_;
  MiHistoryTracker history_;
  double scale_ = 1.0;
  int mi_counter_ = 0;
  int64_t inference_count_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_ORCA_H_
