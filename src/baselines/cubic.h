// TCP CUBIC (Ha, Rhee & Xu 2008 / RFC 8312): loss-based congestion control whose window
// grows as a cubic function of time since the last congestion event. One of the paper's
// handcrafted baselines (§6, scheme 7).
#ifndef MOCC_SRC_BASELINES_CUBIC_H_
#define MOCC_SRC_BASELINES_CUBIC_H_

#include "src/netsim/cc_interface.h"

namespace mocc {

struct CubicConfig {
  double beta = 0.7;          // multiplicative decrease factor
  double c = 0.4;             // cubic scaling constant
  double initial_cwnd = 10.0;
  double min_cwnd = 2.0;
};

class CubicCc : public CongestionControl {
 public:
  explicit CubicCc(const CubicConfig& config = {});

  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "TCP CUBIC"; }

  void OnFlowStart(double now_s) override;
  void OnAck(const AckInfo& ack) override;
  void OnPacketLost(const LossInfo& loss) override;
  void OnTimeout(double now_s) override;

  double CwndPackets() const override { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  void EnterCongestionEpoch(double now_s);

  CubicConfig config_;
  double cwnd_;
  double ssthresh_;
  double w_max_ = 0.0;
  double k_ = 0.0;              // time to reach w_max on the cubic curve
  double epoch_start_s_ = -1.0;
  double last_reduction_s_ = -1.0;
  double srtt_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_CUBIC_H_
