// Aurora (Jay et al., ICML'19): single-objective deep-RL congestion control — the
// paper's primary learning-based baseline (Figure 2a). An Aurora agent is an MLP
// actor-critic over the g⃗(t,η) history only (no preference input), trained with PPO on
// a reward with FIXED weights. Different objectives therefore require separately trained
// models (Aurora-throughput, Aurora-latency, the 10-model "enhanced Aurora" of Figure 6),
// which is precisely the limitation MOCC removes.
#ifndef MOCC_SRC_BASELINES_AURORA_H_
#define MOCC_SRC_BASELINES_AURORA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/rl_cc.h"
#include "src/core/weight_vector.h"
#include "src/envs/cc_env.h"
#include "src/rl/actor_critic.h"
#include "src/rl/ppo.h"

namespace mocc {

struct AuroraConfig {
  // The fixed objective baked into this Aurora model's reward.
  WeightVector reward_weights = ThroughputObjective();
  CcEnvConfig env;  // include_weight_in_obs is forced to false
  PpoConfig ppo;
  int iterations = 150;
  uint64_t seed = 42;
};

// Trains a single-objective Aurora model from scratch. If `reward_curve` is non-null it
// receives the mean per-step training reward of every iteration (Figure 1c / Figure 7).
std::shared_ptr<MlpActorCritic> TrainAurora(const AuroraConfig& config,
                                            std::vector<double>* reward_curve = nullptr);

// Wraps a trained Aurora model as a deployable congestion controller.
std::unique_ptr<RlRateController> MakeAuroraCc(std::shared_ptr<ActorCritic> model,
                                               const std::string& name = "Aurora",
                                               size_t history_len = 10,
                                               double initial_rate_bps = 2e6);

// Observation dimension of an Aurora model with history length η.
inline size_t AuroraObsDim(size_t history_len) { return 3 * history_len; }

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_AURORA_H_
