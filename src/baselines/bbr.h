// BBR (Cardwell et al. 2016), simplified: model-based congestion control that estimates
// the bottleneck bandwidth (windowed-max delivery rate) and the round-trip propagation
// delay (windowed-min RTT), and paces at gain-cycled multiples of the estimated
// bandwidth. Implements STARTUP / DRAIN / PROBE_BW / PROBE_RTT, with inflight capped at
// cwnd_gain x BDP. One of the paper's handcrafted baselines (§6, scheme 5).
#ifndef MOCC_SRC_BASELINES_BBR_H_
#define MOCC_SRC_BASELINES_BBR_H_

#include <deque>

#include "src/netsim/cc_interface.h"

namespace mocc {

struct BbrConfig {
  double startup_gain = 2.885;
  double drain_gain = 0.35;
  double cwnd_gain = 2.0;
  double probe_rtt_interval_s = 10.0;
  double probe_rtt_duration_s = 0.2;
  int bw_window_mis = 10;           // windowed-max filter length (monitor intervals)
  double initial_rate_bps = 1e6;
  double min_rate_bps = 1e5;
};

class BbrCc : public CongestionControl {
 public:
  explicit BbrCc(const BbrConfig& config = {});

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "BBR"; }

  void OnFlowStart(double now_s) override;
  void OnAck(const AckInfo& ack) override;
  void OnMonitorInterval(const MonitorReport& report) override;

  double PacingRateBps() const override;
  double CwndPackets() const override;

  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };
  State state() const { return state_; }
  double BtlBwBps() const;
  double min_rtt_s() const { return min_rtt_s_; }

 private:
  void AdvanceStateMachine(const MonitorReport& report);

  BbrConfig config_;
  State state_ = State::kStartup;
  std::deque<double> bw_samples_bps_;
  double min_rtt_s_ = 0.0;
  double min_rtt_stamp_s_ = 0.0;
  double pacing_gain_;
  int probe_bw_phase_ = 0;
  double full_bw_bps_ = 0.0;
  int full_bw_rounds_ = 0;
  double probe_rtt_start_s_ = 0.0;
  double now_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_BBR_H_
