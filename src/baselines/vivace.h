// PCC Vivace (Dong et al., NSDI'18), simplified: online gradient-ascent congestion
// control over the Vivace utility u = x^0.9 - 900·x·dRTT/dt - 11.35·x·L (Table 1).
// Consecutive monitor intervals at (necessarily) different rates provide a finite-
// difference utility gradient; the rate moves along it with a confidence-amplified,
// bounded step. One of the paper's learning-based baselines (§6, scheme 4).
#ifndef MOCC_SRC_BASELINES_VIVACE_H_
#define MOCC_SRC_BASELINES_VIVACE_H_

#include "src/netsim/cc_interface.h"

namespace mocc {

struct VivaceConfig {
  double initial_rate_bps = 2e6;
  double min_rate_bps = 0.1e6;
  double max_rate_bps = 400e6;
  double step_mbps = 0.05;            // θ: base conversion from gradient to rate change
  double probe_fraction = 0.02;       // rate jitter used to keep the gradient estimable
  double max_change_fraction = 0.25;  // dynamic change boundary ω
  int max_confidence = 6;             // consecutive same-sign gradient amplification cap
};

class VivaceCc : public CongestionControl {
 public:
  explicit VivaceCc(const VivaceConfig& config = {});

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "PCC Vivace"; }

  void OnMonitorInterval(const MonitorReport& report) override;

  double PacingRateBps() const override { return rate_bps_; }

 private:
  double Utility(const MonitorReport& report) const;

  VivaceConfig config_;
  double rate_bps_;
  double prev_rate_bps_ = 0.0;
  double prev_utility_ = 0.0;
  double prev_avg_rtt_s_ = 0.0;
  bool have_prev_ = false;
  int confidence_ = 1;
  int last_sign_ = 0;
  bool probe_up_ = true;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_VIVACE_H_
