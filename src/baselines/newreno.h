// TCP NewReno (RFC 6582; Floyd et al. 1999): the classic loss-based AIMD baseline the
// paper cites among hand-crafted CC algorithms (§2.2, [16]). Slow start to ssthresh,
// +1 MSS per RTT in congestion avoidance, halve on loss.
#ifndef MOCC_SRC_BASELINES_NEWRENO_H_
#define MOCC_SRC_BASELINES_NEWRENO_H_

#include "src/netsim/cc_interface.h"

namespace mocc {

struct NewRenoConfig {
  double initial_cwnd = 10.0;
  double min_cwnd = 2.0;
};

class NewRenoCc : public CongestionControl {
 public:
  explicit NewRenoCc(const NewRenoConfig& config = {});

  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "TCP NewReno"; }

  void OnAck(const AckInfo& ack) override;
  void OnPacketLost(const LossInfo& loss) override;
  void OnTimeout(double now_s) override;

  double CwndPackets() const override { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  NewRenoConfig config_;
  double cwnd_;
  double ssthresh_;
  double last_reduction_s_ = -1.0;
  double srtt_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_NEWRENO_H_
