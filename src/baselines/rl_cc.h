// Deploys a trained Gaussian-policy ActorCritic as a rate-based congestion controller:
// each monitor interval it rebuilds the observation (optional preference prefix + the
// g⃗(t,η) history, identical to training) and applies the Eq. (1) multiplicative rate
// update with the policy's mean action. Used for Aurora (no prefix) and, through the core
// library, for MOCC (weight-vector prefix).
#ifndef MOCC_SRC_BASELINES_RL_CC_H_
#define MOCC_SRC_BASELINES_RL_CC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/envs/mi_history.h"
#include "src/netsim/cc_interface.h"
#include "src/rl/actor_critic.h"
#include "src/rl/guarded_policy.h"
#include "src/rl/inference_policy.h"

namespace mocc {

class RlRateController : public CongestionControl {
 public:
  struct Options {
    size_t history_len = 10;       // η (Table 2)
    double action_scale = 0.025;   // α (Table 2)
    // 4-wide history entries carrying the ECN-mark fraction; must match the
    // model's MoccConfig::ecn_signal (the obs_dim assert enforces it).
    bool include_ecn = false;
    double initial_rate_bps = 2e6;
    double min_rate_bps = 0.1e6;
    double max_rate_bps = 400e6;
    std::vector<double> observation_prefix;  // MOCC's weight vector; empty for Aurora
    std::string name = "RL";
    // Per-MI inference precision: kFloat32 runs the model's frozen float32
    // replica (ActorCritic::MakeFloat32Policy), kInt8 the quantized replica
    // (MakeInt8Policy) — the deployment fast paths. Ignored (double path kept)
    // when the model does not provide the requested replica. The replica is
    // per-controller, so flows sharing one model do not share inference
    // scratch state.
    Precision precision = Precision::kDouble;
    // Deployment guardrails: validate every per-MI decision through a GuardedPolicy
    // circuit breaker and degrade to a warm-standby CUBIC fallback on violation
    // (half-open probes restore the policy once its outputs are sane again). Off by
    // default — the unguarded path is byte-identical to the historical controller.
    bool guard = false;
    // Breaker tuning; min/max_rate_bps inside are overwritten from the options
    // above at construction so the two can never disagree.
    GuardedPolicy::Options guard_options;
  };

  // `model` is shared so many flows (and the owning application) can reuse one policy;
  // the simulator drives flows sequentially so no locking is needed.
  RlRateController(std::shared_ptr<ActorCritic> model, Options options);

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return options_.name; }

  // The per-packet hooks keep the guard's warm-standby fallback scheme fed, so a
  // breaker trip hands the flow to a CUBIC whose window reflects the live path.
  void OnFlowStart(double now_s) override;
  void OnAck(const AckInfo& ack) override;
  void OnPacketLost(const LossInfo& loss) override;
  void OnTimeout(double now_s) override;
  void OnMonitorInterval(const MonitorReport& report) override;
  double PacingRateBps() const override { return rate_bps_; }

  // Replaces the observation prefix (e.g. when the registered application changes its
  // requirement at runtime).
  void SetObservationPrefix(std::vector<double> prefix);

  // Number of policy inferences performed so far (one per monitor interval) — the
  // quantity behind the user-space CPU overhead measurements (Figure 17).
  int64_t inference_count() const { return inference_count_; }

  // True when per-MI inference runs through the float32 replica.
  bool float32_active() const { return float32_policy_ != nullptr; }

  const std::vector<double>& last_observation() const { return last_observation_; }

  // The circuit breaker (null when the guard is disabled) — trip counts and state
  // for simulate/eval reports and tests.
  const GuardedPolicy* guard() const { return guard_.get(); }

 private:
  // Rate equivalent of the fallback's congestion window over the reported RTT.
  double FallbackRateBps(const MonitorReport& report) const;

  std::shared_ptr<ActorCritic> model_;
  std::unique_ptr<InferencePolicy> float32_policy_;  // null = double path
  Options options_;
  MiHistoryTracker history_;
  double rate_bps_;
  int64_t inference_count_ = 0;
  std::vector<double> last_observation_;
  std::unique_ptr<GuardedPolicy> guard_;           // null = unguarded
  std::unique_ptr<CongestionControl> fallback_;    // warm-standby CUBIC when guarded
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_RL_CC_H_
