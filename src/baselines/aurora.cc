#include "src/baselines/aurora.h"

namespace mocc {

std::shared_ptr<MlpActorCritic> TrainAurora(const AuroraConfig& config,
                                            std::vector<double>* reward_curve) {
  CcEnvConfig env_config = config.env;
  env_config.include_weight_in_obs = false;
  CcEnv env(env_config, config.seed);
  env.SetObjective(config.reward_weights);

  Rng rng(config.seed);
  auto model = std::make_shared<MlpActorCritic>(AuroraObsDim(env_config.history_len), &rng);
  PpoConfig ppo_config = config.ppo;
  ppo_config.seed = config.seed + 1;
  PpoTrainer trainer(model.get(), ppo_config);
  for (int i = 0; i < config.iterations; ++i) {
    const PpoStats stats = trainer.TrainIteration(&env);
    if (reward_curve != nullptr) {
      reward_curve->push_back(stats.mean_step_reward);
    }
  }
  return model;
}

std::unique_ptr<RlRateController> MakeAuroraCc(std::shared_ptr<ActorCritic> model,
                                               const std::string& name, size_t history_len,
                                               double initial_rate_bps) {
  RlRateController::Options options;
  options.history_len = history_len;
  options.name = name;
  options.initial_rate_bps = initial_rate_bps;
  return std::make_unique<RlRateController>(std::move(model), std::move(options));
}

}  // namespace mocc
