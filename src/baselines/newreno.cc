#include "src/baselines/newreno.h"

#include <algorithm>
#include <limits>

namespace mocc {

NewRenoCc::NewRenoCc(const NewRenoConfig& config)
    : config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(std::numeric_limits<double>::infinity()) {}

void NewRenoCc::OnAck(const AckInfo& ack) {
  srtt_s_ = srtt_s_ <= 0.0 ? ack.rtt_s : 0.875 * srtt_s_ + 0.125 * ack.rtt_s;
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start: +1 per ACK (doubles per RTT)
  } else {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance: +1 per RTT
  }
}

void NewRenoCc::OnPacketLost(const LossInfo& loss) {
  // One multiplicative decrease per RTT (a loss burst is one congestion event).
  if (last_reduction_s_ >= 0.0 &&
      loss.detect_time_s - last_reduction_s_ < std::max(srtt_s_, 0.01)) {
    return;
  }
  last_reduction_s_ = loss.detect_time_s;
  ssthresh_ = std::max(config_.min_cwnd, cwnd_ / 2.0);
  cwnd_ = ssthresh_;
}

void NewRenoCc::OnTimeout(double now_s) {
  ssthresh_ = std::max(config_.min_cwnd, cwnd_ / 2.0);
  cwnd_ = config_.min_cwnd;
  last_reduction_s_ = now_s;
}

}  // namespace mocc
