#include "src/baselines/orca.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mocc {

OrcaCc::OrcaCc(std::shared_ptr<ActorCritic> model, const OrcaConfig& config)
    : model_(std::move(model)),
      config_(config),
      cubic_(config.cubic),
      history_(config.history_len) {
  assert(model_ != nullptr);
  assert(model_->obs_dim() == 3 * config_.history_len);
}

void OrcaCc::OnFlowStart(double now_s) { cubic_.OnFlowStart(now_s); }

void OrcaCc::OnAck(const AckInfo& ack) { cubic_.OnAck(ack); }

void OrcaCc::OnPacketLost(const LossInfo& loss) { cubic_.OnPacketLost(loss); }

void OrcaCc::OnTimeout(double now_s) {
  cubic_.OnTimeout(now_s);
  scale_ = 1.0;
}

void OrcaCc::OnMonitorInterval(const MonitorReport& report) {
  history_.Push(report);
  if (++mi_counter_ % config_.inference_period_mis != 0) {
    return;
  }
  std::vector<double> obs;
  history_.AppendObservation(&obs);
  const double action = std::clamp(model_->ActionMean(obs), -1.0, 1.0);
  ++inference_count_;
  // 2^(action * aggressiveness): action > 0 scales the window up, < 0 down.
  const double adjust = std::exp2(action * config_.action_scale);
  scale_ = std::clamp(scale_ * adjust, config_.min_scale, config_.max_scale);
}

double OrcaCc::CwndPackets() const {
  return std::max(2.0, cubic_.CwndPackets() * scale_);
}

}  // namespace mocc
