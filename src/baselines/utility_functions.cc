#include "src/baselines/utility_functions.h"

#include <algorithm>
#include <cmath>

namespace mocc {

double AllegroUtility(double send_rate_mbps, double loss_rate, double alpha) {
  loss_rate = std::clamp(loss_rate, 0.0, 1.0);
  const double goodput = send_rate_mbps * (1.0 - loss_rate);
  const double sigmoid = 1.0 / (1.0 + std::exp(alpha * (loss_rate - 0.05)));
  return goodput * sigmoid - send_rate_mbps * loss_rate;
}

double VivaceUtility(double send_rate_mbps, double rtt_gradient, double loss_rate,
                     double exponent, double latency_coef, double loss_coef) {
  loss_rate = std::clamp(loss_rate, 0.0, 1.0);
  const double rate = std::max(0.0, send_rate_mbps);
  return std::pow(rate, exponent) - latency_coef * rate * std::max(0.0, rtt_gradient) -
         loss_coef * rate * loss_rate;
}

double AuroraReward(double throughput_pps, double rtt_s, double loss_rate, double a,
                    double b, double c) {
  return a * throughput_pps - b * rtt_s - c * std::clamp(loss_rate, 0.0, 1.0);
}

double OrcaReward(double throughput_bps, double rtt_s, double loss_rate, double max_bw_bps,
                  double min_rtt_s, double loss_penalty) {
  if (rtt_s <= 0.0 || max_bw_bps <= 0.0 || min_rtt_s <= 0.0) {
    return 0.0;
  }
  const double power = (throughput_bps - loss_penalty * loss_rate * throughput_bps) / rtt_s;
  const double max_power = max_bw_bps / min_rtt_s;
  return power / max_power;
}

}  // namespace mocc
