#include "src/baselines/cubic.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mocc {

CubicCc::CubicCc(const CubicConfig& config)
    : config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(std::numeric_limits<double>::infinity()) {}

void CubicCc::OnFlowStart(double /*now_s*/) { epoch_start_s_ = -1.0; }

void CubicCc::OnAck(const AckInfo& ack) {
  srtt_s_ = srtt_s_ <= 0.0 ? ack.rtt_s : 0.875 * srtt_s_ + 0.125 * ack.rtt_s;
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start: one packet per ACK
    return;
  }
  if (epoch_start_s_ < 0.0) {
    EnterCongestionEpoch(ack.ack_time_s);
  }
  // W(t) = C*(t-K)^3 + Wmax, evaluated one RTT ahead as the growth target.
  const double t = ack.ack_time_s - epoch_start_s_ + srtt_s_;
  const double offs = t - k_;
  const double target = config_.c * offs * offs * offs + w_max_;
  if (target > cwnd_) {
    cwnd_ += (target - cwnd_) / cwnd_;
  } else {
    cwnd_ += 0.01 / cwnd_;  // minimal growth in the concave plateau
  }
}

void CubicCc::EnterCongestionEpoch(double now_s) {
  epoch_start_s_ = now_s;
  if (w_max_ < cwnd_) {
    w_max_ = cwnd_;
  }
  k_ = std::cbrt(w_max_ * (1.0 - config_.beta) / config_.c);
}

void CubicCc::OnPacketLost(const LossInfo& loss) {
  // React at most once per RTT so a burst of drops counts as one congestion event.
  if (last_reduction_s_ >= 0.0 &&
      loss.detect_time_s - last_reduction_s_ < std::max(srtt_s_, 0.01)) {
    return;
  }
  last_reduction_s_ = loss.detect_time_s;
  w_max_ = cwnd_;
  cwnd_ = std::max(config_.min_cwnd, cwnd_ * config_.beta);
  ssthresh_ = cwnd_;
  epoch_start_s_ = -1.0;
}

void CubicCc::OnTimeout(double now_s) {
  ssthresh_ = std::max(config_.min_cwnd, cwnd_ * config_.beta);
  w_max_ = cwnd_;
  cwnd_ = config_.min_cwnd;
  epoch_start_s_ = -1.0;
  last_reduction_s_ = now_s;
}

}  // namespace mocc
