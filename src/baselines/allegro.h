// PCC Allegro (Dong et al., NSDI'15), simplified: rate-based congestion control that runs
// micro-experiments — testing rate*(1+ε) and rate*(1-ε) in consecutive monitor intervals —
// and moves the rate in the direction of higher empirical utility (Table 1). Consecutive
// moves in the same direction grow the step. One of the paper's learning-based baselines
// (§6, scheme 3).
#ifndef MOCC_SRC_BASELINES_ALLEGRO_H_
#define MOCC_SRC_BASELINES_ALLEGRO_H_

#include "src/netsim/cc_interface.h"

namespace mocc {

struct AllegroConfig {
  double epsilon = 0.05;        // micro-experiment rate perturbation
  double initial_rate_bps = 2e6;
  double min_rate_bps = 0.1e6;
  double max_rate_bps = 400e6;
  int max_step_multiplier = 5;  // cap on consecutive-direction acceleration
};

class AllegroCc : public CongestionControl {
 public:
  explicit AllegroCc(const AllegroConfig& config = {});

  CcMode Mode() const override { return CcMode::kRateBased; }
  std::string Name() const override { return "PCC Allegro"; }

  void OnMonitorInterval(const MonitorReport& report) override;

  double PacingRateBps() const override { return current_rate_bps_; }
  double base_rate_bps() const { return base_rate_bps_; }

  enum class Phase { kStarting, kTestUp, kTestDown };
  Phase phase() const { return phase_; }

 private:
  double Utility(const MonitorReport& report) const;

  AllegroConfig config_;
  Phase phase_ = Phase::kStarting;
  double base_rate_bps_;     // decision-making pivot rate
  double current_rate_bps_;  // rate offered during the current MI
  double prev_utility_ = 0.0;
  bool have_prev_utility_ = false;
  double up_utility_ = 0.0;
  int last_direction_ = 0;
  int step_multiplier_ = 1;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_ALLEGRO_H_
