#include "src/baselines/copa.h"

#include <algorithm>

namespace mocc {

CopaCc::CopaCc(const CopaConfig& config) : config_(config), cwnd_(config.initial_cwnd) {}

double CopaCc::StandingRttS() const {
  double standing = 0.0;
  for (const auto& [t, rtt] : recent_rtts_) {
    if (standing == 0.0 || rtt < standing) {
      standing = rtt;
    }
  }
  return standing;
}

void CopaCc::OnAck(const AckInfo& ack) {
  srtt_s_ = srtt_s_ <= 0.0 ? ack.rtt_s : 0.875 * srtt_s_ + 0.125 * ack.rtt_s;
  if (min_rtt_s_ <= 0.0 || ack.rtt_s < min_rtt_s_) {
    min_rtt_s_ = ack.rtt_s;
  }
  recent_rtts_.emplace_back(ack.ack_time_s, ack.rtt_s);
  const double window_s = std::max(0.002, srtt_s_ / 2.0);
  while (!recent_rtts_.empty() && recent_rtts_.front().first < ack.ack_time_s - window_s) {
    recent_rtts_.pop_front();
  }

  const double standing = StandingRttS();
  const double queue_delay = std::max(0.0, standing - min_rtt_s_);
  // Target rate in packets/s; with an empty queue the target is unbounded -> grow.
  const double current_rate = srtt_s_ > 0.0 ? cwnd_ / srtt_s_ : 0.0;
  bool increase = true;
  if (queue_delay > 1e-6) {
    const double target_rate = 1.0 / (config_.delta * queue_delay);
    increase = current_rate <= target_rate;
  }
  direction_ = increase ? 1 : -1;

  // Velocity doubles when the direction persists across a full RTT, else resets.
  if (ack.ack_time_s - last_velocity_update_s_ >= std::max(srtt_s_, 1e-3)) {
    velocity_ = direction_ == last_direction_
                    ? std::min(config_.max_velocity, velocity_ * 2.0)
                    : 1.0;
    last_direction_ = direction_;
    last_velocity_update_s_ = ack.ack_time_s;
  }

  const double step = velocity_ / (config_.delta * std::max(1.0, cwnd_));
  cwnd_ = std::max(config_.min_cwnd, cwnd_ + direction_ * step);
}

void CopaCc::OnTimeout(double /*now_s*/) {
  cwnd_ = config_.min_cwnd;
  velocity_ = 1.0;
  direction_ = 0;
  last_direction_ = 0;
}

}  // namespace mocc
