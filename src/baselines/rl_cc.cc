#include "src/baselines/rl_cc.h"

#include <algorithm>
#include <cassert>

#include "src/envs/cc_env.h"

namespace mocc {

RlRateController::RlRateController(std::shared_ptr<ActorCritic> model, Options options)
    : model_(std::move(model)),
      options_(std::move(options)),
      history_(options_.history_len),
      rate_bps_(options_.initial_rate_bps) {
  assert(model_ != nullptr);
  assert(model_->obs_dim() == options_.observation_prefix.size() + 3 * options_.history_len);
  if (options_.float32_inference) {
    float32_policy_ = model_->MakeFloat32Policy();
  }
}

void RlRateController::SetObservationPrefix(std::vector<double> prefix) {
  assert(model_->obs_dim() == prefix.size() + 3 * options_.history_len);
  options_.observation_prefix = std::move(prefix);
}

void RlRateController::OnMonitorInterval(const MonitorReport& report) {
  history_.Push(report);
  std::vector<double> obs = options_.observation_prefix;
  history_.AppendObservation(&obs);
  const double action =
      float32_policy_ != nullptr ? float32_policy_->ActionMean(obs) : model_->ActionMean(obs);
  ++inference_count_;
  last_observation_ = std::move(obs);
  rate_bps_ = CcEnv::ApplyRateAction(rate_bps_, action, options_.action_scale);
  rate_bps_ = std::clamp(rate_bps_, options_.min_rate_bps, options_.max_rate_bps);
}

}  // namespace mocc
