#include "src/baselines/rl_cc.h"

#include <algorithm>
#include <cassert>

#include "src/baselines/cubic.h"
#include "src/envs/cc_env.h"
#include "src/netsim/link_params.h"

namespace mocc {

RlRateController::RlRateController(std::shared_ptr<ActorCritic> model, Options options)
    : model_(std::move(model)),
      options_(std::move(options)),
      history_(options_.history_len, options_.include_ecn),
      rate_bps_(options_.initial_rate_bps) {
  assert(model_ != nullptr);
  assert(model_->obs_dim() ==
         options_.observation_prefix.size() + history_.entry_width() * options_.history_len);
  if (options_.precision == Precision::kFloat32) {
    float32_policy_ = model_->MakeFloat32Policy();
  } else if (options_.precision == Precision::kInt8) {
    float32_policy_ = model_->MakeInt8Policy();
  }
  if (options_.guard) {
    GuardedPolicy::Options guard_options = options_.guard_options;
    guard_options.min_rate_bps = options_.min_rate_bps;
    guard_options.max_rate_bps = options_.max_rate_bps;
    guard_ = std::make_unique<GuardedPolicy>(guard_options);
    fallback_ = std::make_unique<CubicCc>();
  }
}

void RlRateController::SetObservationPrefix(std::vector<double> prefix) {
  assert(model_->obs_dim() == prefix.size() + history_.entry_width() * options_.history_len);
  options_.observation_prefix = std::move(prefix);
}

void RlRateController::OnFlowStart(double now_s) {
  if (fallback_ != nullptr) {
    fallback_->OnFlowStart(now_s);
  }
}

void RlRateController::OnAck(const AckInfo& ack) {
  if (fallback_ != nullptr) {
    fallback_->OnAck(ack);
  }
}

void RlRateController::OnPacketLost(const LossInfo& loss) {
  if (fallback_ != nullptr) {
    fallback_->OnPacketLost(loss);
  }
}

void RlRateController::OnTimeout(double now_s) {
  if (fallback_ != nullptr) {
    fallback_->OnTimeout(now_s);
  }
}

double RlRateController::FallbackRateBps(const MonitorReport& report) const {
  // Translate CUBIC's window into a pacing rate over the freshest RTT estimate
  // available (the 1 ms floor covers MIs that saw no ACKs at all).
  const double rtt_s = std::max({report.avg_rtt_s, report.min_rtt_s, 1e-3});
  const double rate =
      fallback_->CwndPackets() * static_cast<double>(kDefaultPacketSizeBits) / rtt_s;
  return std::clamp(rate, options_.min_rate_bps, options_.max_rate_bps);
}

void RlRateController::OnMonitorInterval(const MonitorReport& report) {
  if (fallback_ != nullptr) {
    fallback_->OnMonitorInterval(report);
  }
  history_.Push(report);
  if (guard_ != nullptr && !guard_->BeginInterval()) {
    // Breaker open: the fallback owns this interval and inference is skipped.
    rate_bps_ = FallbackRateBps(report);
    return;
  }
  std::vector<double> obs = options_.observation_prefix;
  history_.AppendObservation(&obs);
  const double action =
      float32_policy_ != nullptr ? float32_policy_->ActionMean(obs) : model_->ActionMean(obs);
  ++inference_count_;
  last_observation_ = std::move(obs);
  if (guard_ != nullptr) {
    const double proposed =
        CcEnv::ApplyRateAction(rate_bps_, action, options_.action_scale);
    if (!guard_->ValidateDecision(action, proposed, rate_bps_)) {
      rate_bps_ = FallbackRateBps(report);
      return;
    }
    rate_bps_ = std::clamp(proposed, options_.min_rate_bps, options_.max_rate_bps);
    return;
  }
  rate_bps_ = CcEnv::ApplyRateAction(rate_bps_, action, options_.action_scale);
  rate_bps_ = std::clamp(rate_bps_, options_.min_rate_bps, options_.max_rate_bps);
}

}  // namespace mocc
