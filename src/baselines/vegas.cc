#include "src/baselines/vegas.h"

#include <algorithm>

namespace mocc {

VegasCc::VegasCc(const VegasConfig& config) : config_(config), cwnd_(config.initial_cwnd) {}

double VegasCc::QueuedPacketsEstimate() const {
  if (rtt_count_ == 0 || base_rtt_s_ <= 0.0) {
    return 0.0;
  }
  const double rtt = rtt_sum_s_ / rtt_count_;
  return rtt > 0.0 ? cwnd_ * (rtt - base_rtt_s_) / rtt : 0.0;
}

void VegasCc::OnAck(const AckInfo& ack) {
  if (base_rtt_s_ <= 0.0 || ack.rtt_s < base_rtt_s_) {
    base_rtt_s_ = ack.rtt_s;
  }
  rtt_sum_s_ += ack.rtt_s;
  ++rtt_count_;
  ++acks_this_rtt_;
  if (acks_this_rtt_ >= static_cast<int>(cwnd_)) {
    PerRttAdjust();
    acks_this_rtt_ = 0;
    rtt_sum_s_ = 0.0;
    rtt_count_ = 0;
  }
}

void VegasCc::PerRttAdjust() {
  const double diff = QueuedPacketsEstimate();
  if (slow_start_) {
    if (diff > config_.gamma) {
      slow_start_ = false;
      cwnd_ = std::max(config_.min_cwnd, cwnd_ - (diff - config_.gamma));
      return;
    }
    if (grow_this_rtt_) {
      cwnd_ *= 2.0;  // double every other RTT, per the Vegas paper
    }
    grow_this_rtt_ = !grow_this_rtt_;
    return;
  }
  if (diff < config_.alpha) {
    cwnd_ += 1.0;
  } else if (diff > config_.beta) {
    cwnd_ = std::max(config_.min_cwnd, cwnd_ - 1.0);
  }
}

void VegasCc::OnPacketLost(const LossInfo& /*loss*/) {
  slow_start_ = false;
  cwnd_ = std::max(config_.min_cwnd, cwnd_ * 0.75);
}

void VegasCc::OnTimeout(double /*now_s*/) {
  slow_start_ = true;
  grow_this_rtt_ = true;
  cwnd_ = config_.min_cwnd;
}

}  // namespace mocc
