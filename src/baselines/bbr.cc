#include "src/baselines/bbr.h"

#include <algorithm>
#include <cmath>

namespace mocc {
namespace {

// PROBE_BW gain cycle from the BBR paper: one probing phase, one draining phase, six
// cruise phases.
constexpr double kProbeBwGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int kProbeBwPhases = 8;

}  // namespace

BbrCc::BbrCc(const BbrConfig& config) : config_(config), pacing_gain_(config.startup_gain) {}

void BbrCc::OnFlowStart(double now_s) {
  now_s_ = now_s;
  min_rtt_stamp_s_ = now_s;
}

double BbrCc::BtlBwBps() const {
  double best = 0.0;
  for (double s : bw_samples_bps_) {
    best = std::max(best, s);
  }
  return best;
}

void BbrCc::OnAck(const AckInfo& ack) {
  now_s_ = ack.ack_time_s;
  if (min_rtt_s_ <= 0.0 || ack.rtt_s < min_rtt_s_) {
    min_rtt_s_ = ack.rtt_s;
    min_rtt_stamp_s_ = ack.ack_time_s;
  }
}

void BbrCc::OnMonitorInterval(const MonitorReport& report) {
  now_s_ = report.start_time_s + report.duration_s;
  if (report.throughput_bps > 0.0) {
    bw_samples_bps_.push_back(report.throughput_bps);
    while (static_cast<int>(bw_samples_bps_.size()) > config_.bw_window_mis) {
      bw_samples_bps_.pop_front();
    }
  }
  AdvanceStateMachine(report);
}

void BbrCc::AdvanceStateMachine(const MonitorReport& report) {
  const double btl_bw = BtlBwBps();
  switch (state_) {
    case State::kStartup: {
      // Leave startup once the bandwidth estimate stops growing by >= 25% for 3 rounds.
      if (btl_bw > full_bw_bps_ * 1.25) {
        full_bw_bps_ = btl_bw;
        full_bw_rounds_ = 0;
      } else if (btl_bw > 0.0) {
        ++full_bw_rounds_;
        if (full_bw_rounds_ >= 3) {
          state_ = State::kDrain;
          pacing_gain_ = config_.drain_gain;
        }
      }
      return;
    }
    case State::kDrain: {
      // Drain until the queue (visible as RTT inflation) has emptied.
      if (min_rtt_s_ > 0.0 && report.avg_rtt_s <= 1.2 * min_rtt_s_) {
        state_ = State::kProbeBw;
        probe_bw_phase_ = 2;  // start in a cruise phase
        pacing_gain_ = kProbeBwGains[probe_bw_phase_];
      }
      return;
    }
    case State::kProbeBw: {
      if (min_rtt_s_ > 0.0 && now_s_ - min_rtt_stamp_s_ > config_.probe_rtt_interval_s) {
        state_ = State::kProbeRtt;
        probe_rtt_start_s_ = now_s_;
        pacing_gain_ = 1.0;
        return;
      }
      probe_bw_phase_ = (probe_bw_phase_ + 1) % kProbeBwPhases;
      pacing_gain_ = kProbeBwGains[probe_bw_phase_];
      return;
    }
    case State::kProbeRtt: {
      if (now_s_ - probe_rtt_start_s_ >= config_.probe_rtt_duration_s) {
        // Accept the RTT observed during the probe as fresh.
        min_rtt_stamp_s_ = now_s_;
        if (report.avg_rtt_s > 0.0) {
          min_rtt_s_ = std::min(min_rtt_s_ > 0.0 ? min_rtt_s_ : report.avg_rtt_s,
                                report.avg_rtt_s);
        }
        state_ = State::kProbeBw;
        probe_bw_phase_ = 2;
        pacing_gain_ = kProbeBwGains[probe_bw_phase_];
      }
      return;
    }
  }
}

double BbrCc::PacingRateBps() const {
  const double btl_bw = BtlBwBps();
  if (btl_bw <= 0.0) {
    return std::max(config_.min_rate_bps, config_.initial_rate_bps * pacing_gain_);
  }
  return std::max(config_.min_rate_bps, pacing_gain_ * btl_bw);
}

double BbrCc::CwndPackets() const {
  if (state_ == State::kProbeRtt) {
    return 4.0;  // BBR's minimal in-flight during PROBE_RTT
  }
  const double btl_bw = BtlBwBps();
  if (btl_bw <= 0.0 || min_rtt_s_ <= 0.0) {
    return 1e12;
  }
  const double bdp_pkts = btl_bw * min_rtt_s_ / static_cast<double>(1500 * 8);
  return std::max(4.0, config_.cwnd_gain * bdp_pkts);
}

}  // namespace mocc
