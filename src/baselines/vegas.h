// TCP Vegas (Brakmo & Peterson 1994): delay-based congestion control that keeps the
// estimated number of queued packets between alpha and beta. One of the paper's
// handcrafted baselines (§6, scheme 8).
#ifndef MOCC_SRC_BASELINES_VEGAS_H_
#define MOCC_SRC_BASELINES_VEGAS_H_

#include "src/netsim/cc_interface.h"

namespace mocc {

struct VegasConfig {
  double alpha = 2.0;  // lower bound on queued packets
  double beta = 4.0;   // upper bound on queued packets
  double gamma = 1.0;  // slow-start exit threshold
  double initial_cwnd = 10.0;
  double min_cwnd = 2.0;
};

class VegasCc : public CongestionControl {
 public:
  explicit VegasCc(const VegasConfig& config = {});

  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "TCP Vegas"; }

  void OnAck(const AckInfo& ack) override;
  void OnPacketLost(const LossInfo& loss) override;
  void OnTimeout(double now_s) override;

  double CwndPackets() const override { return cwnd_; }
  double base_rtt_s() const { return base_rtt_s_; }
  bool in_slow_start() const { return slow_start_; }

  // Vegas' estimate of packets queued at the bottleneck: cwnd * (rtt-base)/rtt.
  double QueuedPacketsEstimate() const;

 private:
  void PerRttAdjust();

  VegasConfig config_;
  double cwnd_;
  bool slow_start_ = true;
  double base_rtt_s_ = 0.0;
  double rtt_sum_s_ = 0.0;
  int rtt_count_ = 0;
  int acks_this_rtt_ = 0;
  bool grow_this_rtt_ = true;  // slow start doubles every other RTT
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_VEGAS_H_
