#include "src/baselines/vivace.h"

#include <algorithm>
#include <cmath>

#include "src/baselines/utility_functions.h"

namespace mocc {

VivaceCc::VivaceCc(const VivaceConfig& config)
    : config_(config), rate_bps_(config.initial_rate_bps) {}

double VivaceCc::Utility(const MonitorReport& report) const {
  double rtt_gradient = 0.0;
  if (prev_avg_rtt_s_ > 0.0 && report.duration_s > 0.0) {
    rtt_gradient = (report.avg_rtt_s - prev_avg_rtt_s_) / report.duration_s;
  }
  return VivaceUtility(report.send_rate_bps / 1e6, rtt_gradient, report.loss_rate);
}

void VivaceCc::OnMonitorInterval(const MonitorReport& report) {
  const double utility = Utility(report);
  const double measured_rate = report.send_rate_bps;
  if (have_prev_ && std::abs(measured_rate - prev_rate_bps_) > 1.0) {
    const double gradient =
        (utility - prev_utility_) / ((measured_rate - prev_rate_bps_) / 1e6);
    const int sign = gradient >= 0.0 ? 1 : -1;
    confidence_ = sign == last_sign_ ? std::min(config_.max_confidence, confidence_ + 1) : 1;
    last_sign_ = sign;
    double change_bps = config_.step_mbps * 1e6 * gradient * confidence_;
    // Vivace's dynamic change boundary: never move more than a fraction of the rate.
    const double bound = config_.max_change_fraction * rate_bps_;
    change_bps = std::clamp(change_bps, -bound, bound);
    rate_bps_ = std::clamp(rate_bps_ + change_bps, config_.min_rate_bps,
                           config_.max_rate_bps);
  } else {
    // No usable gradient yet: jitter the rate so the next interval provides one.
    const double jitter = 1.0 + (probe_up_ ? 1.0 : -1.0) * config_.probe_fraction;
    probe_up_ = !probe_up_;
    rate_bps_ = std::clamp(rate_bps_ * jitter, config_.min_rate_bps, config_.max_rate_bps);
  }
  prev_rate_bps_ = measured_rate;
  prev_utility_ = utility;
  prev_avg_rtt_s_ = report.avg_rtt_s;
  have_prev_ = true;
}

}  // namespace mocc
