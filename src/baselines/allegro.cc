#include "src/baselines/allegro.h"

#include <algorithm>

#include "src/baselines/utility_functions.h"

namespace mocc {

AllegroCc::AllegroCc(const AllegroConfig& config)
    : config_(config),
      base_rate_bps_(config.initial_rate_bps),
      current_rate_bps_(config.initial_rate_bps) {}

double AllegroCc::Utility(const MonitorReport& report) const {
  return AllegroUtility(report.send_rate_bps / 1e6, report.loss_rate);
}

void AllegroCc::OnMonitorInterval(const MonitorReport& report) {
  const double utility = Utility(report);
  switch (phase_) {
    case Phase::kStarting: {
      // Double the rate each interval while utility keeps improving.
      if (!have_prev_utility_ || utility > prev_utility_) {
        prev_utility_ = utility;
        have_prev_utility_ = true;
        base_rate_bps_ = std::min(config_.max_rate_bps, base_rate_bps_ * 2.0);
        current_rate_bps_ = base_rate_bps_;
        return;
      }
      // Utility dropped: revert the last doubling and start micro-experiments.
      base_rate_bps_ = std::max(config_.min_rate_bps, base_rate_bps_ / 2.0);
      phase_ = Phase::kTestUp;
      current_rate_bps_ = base_rate_bps_ * (1.0 + config_.epsilon);
      return;
    }
    case Phase::kTestUp: {
      up_utility_ = utility;
      phase_ = Phase::kTestDown;
      current_rate_bps_ = base_rate_bps_ * (1.0 - config_.epsilon);
      return;
    }
    case Phase::kTestDown: {
      const int direction = up_utility_ > utility ? 1 : -1;
      step_multiplier_ = direction == last_direction_
                             ? std::min(config_.max_step_multiplier, step_multiplier_ + 1)
                             : 1;
      last_direction_ = direction;
      const double step = step_multiplier_ * config_.epsilon * base_rate_bps_;
      base_rate_bps_ = std::clamp(base_rate_bps_ + direction * step, config_.min_rate_bps,
                                  config_.max_rate_bps);
      phase_ = Phase::kTestUp;
      current_rate_bps_ = base_rate_bps_ * (1.0 + config_.epsilon);
      return;
    }
  }
}

}  // namespace mocc
