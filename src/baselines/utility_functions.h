// The performance objectives of Table 1: the utility/reward functions that each
// learning-based comparison scheme optimizes. PCC Allegro and PCC Vivace maximize theirs
// online (micro-experiments / gradient ascent); Aurora and Orca encode theirs in the RL
// reward. These are used both by the scheme implementations and by the Table 1 bench.
#ifndef MOCC_SRC_BASELINES_UTILITY_FUNCTIONS_H_
#define MOCC_SRC_BASELINES_UTILITY_FUNCTIONS_H_

namespace mocc {

// PCC Allegro (Dong et al., NSDI'15): u = T*(1-L)*sigmoid(alpha*(L-0.05)) - T*L,
// where T = x*(1-L) is goodput in Mbps and the sigmoid cuts utility sharply once loss
// exceeds 5%.
double AllegroUtility(double send_rate_mbps, double loss_rate, double alpha = 100.0);

// PCC Vivace (Dong et al., NSDI'18): u = x^t - b*x*(dRTT/dt) - c*x*L with the paper's
// default exponents/coefficients t=0.9, b=900, c=11.35 (x in Mbps, dRTT/dt in s/s).
double VivaceUtility(double send_rate_mbps, double rtt_gradient, double loss_rate,
                     double exponent = 0.9, double latency_coef = 900.0,
                     double loss_coef = 11.35);

// Aurora (Jay et al., ICML'19): r = a*T - b*RTT - c*L (T in packets-per-second scale,
// RTT in seconds); defaults follow the Aurora reference implementation (10, 1000, 2000).
double AuroraReward(double throughput_pps, double rtt_s, double loss_rate, double a = 10.0,
                    double b = 1000.0, double c = 2000.0);

// Orca (Abbasloo et al., SIGCOMM'20): r = (T - e*L)/RTT normalized by Tmax/RTTmin.
double OrcaReward(double throughput_bps, double rtt_s, double loss_rate, double max_bw_bps,
                  double min_rtt_s, double loss_penalty = 5.0);

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_UTILITY_FUNCTIONS_H_
