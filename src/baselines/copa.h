// Copa (Arun & Balakrishnan, NSDI'18), simplified: delay-based congestion control that
// targets the rate 1/(δ·d_q), where d_q is the standing queueing delay. The window moves
// toward the target by v/(δ·cwnd) per ACK, with velocity doubling on consistent
// direction. One of the paper's handcrafted baselines (§6, scheme 6).
#ifndef MOCC_SRC_BASELINES_COPA_H_
#define MOCC_SRC_BASELINES_COPA_H_

#include <deque>

#include "src/netsim/cc_interface.h"

namespace mocc {

struct CopaConfig {
  double delta = 0.5;          // the δ in 1/(δ·d_q); smaller = more aggressive
  double initial_cwnd = 10.0;
  double min_cwnd = 2.0;
  double max_velocity = 1024.0;
};

class CopaCc : public CongestionControl {
 public:
  explicit CopaCc(const CopaConfig& config = {});

  CcMode Mode() const override { return CcMode::kWindowBased; }
  std::string Name() const override { return "Copa"; }

  void OnAck(const AckInfo& ack) override;
  void OnTimeout(double now_s) override;

  double CwndPackets() const override { return cwnd_; }
  double velocity() const { return velocity_; }

  // Standing RTT: minimum RTT over roughly the last srtt/2 of ACKs.
  double StandingRttS() const;

 private:
  CopaConfig config_;
  double cwnd_;
  double velocity_ = 1.0;
  int direction_ = 0;       // +1 growing, -1 shrinking
  int last_direction_ = 0;
  double min_rtt_s_ = 0.0;
  double srtt_s_ = 0.0;
  std::deque<std::pair<double, double>> recent_rtts_;  // (ack time, rtt)
  double last_velocity_update_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_BASELINES_COPA_H_
