#include "src/core/objective_space.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mocc {

std::vector<WeightVector> GenerateWeightGrid(int divisor) {
  assert(divisor >= 3);
  std::vector<WeightVector> grid;
  const double step = 1.0 / static_cast<double>(divisor);
  for (int a = 1; a <= divisor - 2; ++a) {
    for (int b = 1; b <= divisor - 1 - a; ++b) {
      const int c = divisor - a - b;
      grid.emplace_back(a * step, b * step, c * step);
    }
  }
  return grid;
}

int ObjectiveGridSize(int divisor) { return (divisor - 1) * (divisor - 2) / 2; }

std::vector<WeightVector> DefaultBootstrapObjectives() {
  return {WeightVector(0.6, 0.3, 0.1), WeightVector(0.1, 0.6, 0.3),
          WeightVector(0.3, 0.1, 0.6)};
}

bool AreNeighborObjectives(const WeightVector& a, const WeightVector& b, int divisor) {
  const double step = 1.0 / static_cast<double>(divisor);
  const double tol = step * 1e-6;
  const std::array<double, 3> da = a.ToArray();
  const std::array<double, 3> db = b.ToArray();
  int differing = 0;
  for (int i = 0; i < 3; ++i) {
    const double diff = std::abs(da[i] - db[i]);
    if (diff > tol) {
      if (diff > step + tol) {
        return false;
      }
      ++differing;
    }
  }
  return differing > 0 && differing <= 2;
}

ObjectiveGraph::ObjectiveGraph(std::vector<WeightVector> vertices, int divisor)
    : vertices_(std::move(vertices)), divisor_(divisor) {
  adjacency_.resize(vertices_.size());
  for (size_t i = 0; i < vertices_.size(); ++i) {
    for (size_t j = i + 1; j < vertices_.size(); ++j) {
      if (AreNeighborObjectives(vertices_[i], vertices_[j], divisor_)) {
        adjacency_[i].push_back(static_cast<int>(j));
        adjacency_[j].push_back(static_cast<int>(i));
      }
    }
  }
}

int ObjectiveGraph::ClosestVertex(const WeightVector& w) const {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const double d = vertices_[i].L1DistanceTo(w);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<int> ObjectiveGraph::SortForTraversal(
    const std::vector<WeightVector>& bootstraps) const {
  const size_t n = vertices_.size();
  const size_t m = std::max<size_t>(1, bootstraps.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Map bootstrap objectives onto grid vertices.
  std::vector<int> sources;
  sources.reserve(m);
  for (const auto& b : bootstraps) {
    sources.push_back(ClosestVertex(b));
  }

  // Per-source distances, initialized as in Algorithm 1: 0 at the source, 1 at its
  // direct neighbors, infinity elsewhere (relaxed as vertices are visited).
  std::vector<std::vector<double>> dist(sources.size(), std::vector<double>(n, kInf));
  for (size_t i = 0; i < sources.size(); ++i) {
    dist[i][static_cast<size_t>(sources[i])] = 0.0;
    for (int nb : adjacency_[static_cast<size_t>(sources[i])]) {
      dist[i][static_cast<size_t>(nb)] = 1.0;
    }
  }

  std::vector<bool> visited(n, false);
  std::vector<int> order;
  order.reserve(n);

  const size_t quota = (n + m - 1) / m;  // ceil(|V| / |O|)
  for (size_t i = 0; i < sources.size() && order.size() < n; ++i) {
    size_t visits = quota;
    const size_t src = static_cast<size_t>(sources[i]);
    if (!visited[src]) {
      order.push_back(sources[i]);
      visited[src] = true;
      --visits;
    }
    while (visits > 0 && order.size() < n) {
      // Extract the nearest unvisited vertex for this source.
      int u = -1;
      double best = kInf;
      for (size_t v = 0; v < n; ++v) {
        if (!visited[v] && dist[i][v] < best) {
          best = dist[i][v];
          u = static_cast<int>(v);
        }
      }
      if (u < 0) {
        break;  // nothing reachable remains for this source
      }
      order.push_back(u);
      visited[static_cast<size_t>(u)] = true;
      --visits;
      for (int nb : adjacency_[static_cast<size_t>(u)]) {
        if (!visited[static_cast<size_t>(nb)] &&
            dist[i][static_cast<size_t>(u)] + 1.0 < dist[i][static_cast<size_t>(nb)]) {
          dist[i][static_cast<size_t>(nb)] = dist[i][static_cast<size_t>(u)] + 1.0;
        }
      }
    }
  }
  // Safety net: append anything left (disconnected grids cannot occur for divisor >= 3,
  // but the function guarantees a permutation regardless).
  for (size_t v = 0; v < n; ++v) {
    if (!visited[v]) {
      order.push_back(static_cast<int>(v));
    }
  }
  return order;
}

}  // namespace mocc
