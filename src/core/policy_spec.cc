#include "src/core/policy_spec.h"

#include <cstdio>
#include <utility>

namespace mocc {

bool ParsePrecision(const std::string& text, Precision* out) {
  if (text == "double") {
    *out = Precision::kDouble;
    return true;
  }
  if (text == "float32") {
    *out = Precision::kFloat32;
    return true;
  }
  if (text == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kDouble:
      return "double";
    case Precision::kFloat32:
      return "float32";
    case Precision::kInt8:
      return "int8";
  }
  return "double";
}

PolicySpec& PolicySpec::WithModel(std::shared_ptr<PreferenceActorCritic> model) {
  model_ = std::move(model);
  loaded_.reset();
  return *this;
}

PolicySpec& PolicySpec::WithCheckpoint(std::string path) {
  checkpoint_ = std::move(path);
  loaded_.reset();
  return *this;
}

PolicySpec& PolicySpec::WithConfig(const MoccConfig& config) {
  config_ = config;
  loaded_.reset();
  return *this;
}

PolicySpec& PolicySpec::WithPrecision(Precision precision) {
  precision_ = precision;
  return *this;
}

PolicySpec& PolicySpec::WithGuard(bool guard) {
  guard_ = guard;
  return *this;
}

PolicySpec& PolicySpec::WithGuardOptions(const GuardedPolicy::Options& options) {
  guard_options_ = options;
  return *this;
}

PolicySpec& PolicySpec::WithWeights(const WeightVector& w) {
  weights_ = w;
  return *this;
}

PolicySpec& PolicySpec::WithInitialRate(double initial_rate_bps) {
  initial_rate_bps_ = initial_rate_bps;
  return *this;
}

PolicySpec& PolicySpec::WithRateBounds(double min_rate_bps, double max_rate_bps) {
  min_rate_bps_ = min_rate_bps;
  max_rate_bps_ = max_rate_bps;
  return *this;
}

PolicySpec& PolicySpec::WithName(std::string name) {
  name_ = std::move(name);
  return *this;
}

std::shared_ptr<PreferenceActorCritic> PolicySpec::ResolveModel() const {
  if (model_ != nullptr) {
    return model_;
  }
  if (loaded_ != nullptr) {
    return loaded_;
  }
  if (checkpoint_.empty()) {
    std::fprintf(stderr,
                 "PolicySpec: no model — set WithModel() or WithCheckpoint()\n");
    return nullptr;
  }
  loaded_ = PreferenceActorCritic::LoadFromFile(checkpoint_, config_);
  if (loaded_ == nullptr) {
    std::fprintf(stderr, "PolicySpec: failed to load model from %s\n",
                 checkpoint_.c_str());
  }
  return loaded_;
}

std::unique_ptr<RlRateController> PolicySpec::MakeController(
    const WeightVector& w) const {
  return MakeController(w, initial_rate_bps_);
}

std::unique_ptr<RlRateController> PolicySpec::MakeController() const {
  return MakeController(weights_, initial_rate_bps_);
}

std::unique_ptr<RlRateController> PolicySpec::MakeController(
    const WeightVector& w, double initial_rate_bps) const {
  std::shared_ptr<PreferenceActorCritic> model = ResolveModel();
  if (model == nullptr) {
    return nullptr;
  }
  const WeightVector sanitized = w.Sanitized();
  RlRateController::Options options;
  options.history_len = model->config().history_len_eta;
  options.action_scale = model->config().action_scale_alpha;
  // The controller's history width follows the model, not the caller: LoadFromFile
  // detects the checkpoint's ECN-observation layout, so a deployed ECN-aware model
  // automatically gets the 4-wide entries it was trained on.
  options.include_ecn = model->config().ecn_signal;
  options.initial_rate_bps = initial_rate_bps;
  options.min_rate_bps = min_rate_bps_;
  options.max_rate_bps = max_rate_bps_;
  options.observation_prefix = {sanitized.thr, sanitized.lat, sanitized.loss};
  options.name = name_;
  options.precision = precision_;
  options.guard = guard_;
  options.guard_options = guard_options_;
  return std::make_unique<RlRateController>(std::move(model), std::move(options));
}

}  // namespace mocc
