#include "src/core/datapath.h"

#include <cassert>

namespace mocc {

UdtShimDatapath::UdtShimDatapath(std::shared_ptr<MoccApi> api) : api_(std::move(api)) {
  assert(api_ != nullptr);
}

void UdtShimDatapath::OnNetworkTick(const MonitorReport& report) {
  api_->ReportStatus(report);
}

double UdtShimDatapath::SendingRateBps() const { return api_->GetSendingRate(); }

int64_t UdtShimDatapath::control_invocations() const { return api_->inference_count(); }

CcpShimDatapath::CcpShimDatapath(std::shared_ptr<MoccApi> api, int batch_size)
    : api_(std::move(api)), batch_size_(batch_size) {
  assert(api_ != nullptr && batch_size_ >= 1);
}

MonitorReport CcpShimDatapath::AggregateReports(const MonitorReport* reports, int count) {
  assert(count >= 1);
  MonitorReport agg = reports[0];
  for (int i = 1; i < count; ++i) {
    const MonitorReport& r = reports[i];
    agg.duration_s += r.duration_s;
    agg.packets_sent += r.packets_sent;
    agg.packets_acked += r.packets_acked;
    agg.packets_lost += r.packets_lost;
    agg.min_rtt_s = r.min_rtt_s > 0.0 && (agg.min_rtt_s <= 0.0 || r.min_rtt_s < agg.min_rtt_s)
                        ? r.min_rtt_s
                        : agg.min_rtt_s;
  }
  if (agg.duration_s > 0.0) {
    double thr_weighted = 0.0;
    double rtt_weighted = 0.0;
    double send_weighted = 0.0;
    for (int i = 0; i < count; ++i) {
      thr_weighted += reports[i].throughput_bps * reports[i].duration_s;
      rtt_weighted += reports[i].avg_rtt_s * reports[i].duration_s;
      send_weighted += reports[i].send_rate_bps * reports[i].duration_s;
    }
    agg.throughput_bps = thr_weighted / agg.duration_s;
    agg.avg_rtt_s = rtt_weighted / agg.duration_s;
    agg.send_rate_bps = send_weighted / agg.duration_s;
  }
  const int64_t denom = agg.packets_acked + agg.packets_lost;
  agg.loss_rate =
      denom > 0 ? static_cast<double>(agg.packets_lost) / static_cast<double>(denom) : 0.0;
  return agg;
}

void CcpShimDatapath::OnNetworkTick(const MonitorReport& report) {
  pending_.push_back(report);
  if (static_cast<int>(pending_.size()) < batch_size_) {
    return;  // datapath keeps running at the previously installed rate
  }
  const MonitorReport agg =
      AggregateReports(pending_.data(), static_cast<int>(pending_.size()));
  pending_.clear();
  api_->ReportStatus(agg);
}

double CcpShimDatapath::SendingRateBps() const { return api_->GetSendingRate(); }

int64_t CcpShimDatapath::control_invocations() const { return api_->inference_count(); }

}  // namespace mocc
