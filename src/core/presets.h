// Standard training presets. The paper trains for hours on a multi-core Ray cluster;
// this repository's benches and examples run on small machines, so the presets scale the
// iteration budgets down while keeping every algorithmic component (two-phase schedule,
// Algorithm-1 ordering, entropy decay, replay) intact. EXPERIMENTS.md records the scale
// factor next to each paper-vs-measured comparison.
#ifndef MOCC_SRC_CORE_PRESETS_H_
#define MOCC_SRC_CORE_PRESETS_H_

#include <memory>
#include <string>

#include "src/core/model_zoo.h"
#include "src/core/offline_trainer.h"

namespace mocc {

// Small but meaningful budget: bootstraps converge, traversal covers ω=36 landmarks.
// Roughly a minute of single-core wall time.
OfflineTrainConfig QuickOfflinePreset(uint64_t seed = 7);

// The budget used by the benchmark suite's shared base model (a few minutes).
OfflineTrainConfig StandardOfflinePreset(uint64_t seed = 7);

// Trains (or loads from `zoo`) the shared offline base model under `key`.
std::shared_ptr<PreferenceActorCritic> GetOrTrainBaseModel(ModelZoo* zoo,
                                                           const std::string& key,
                                                           const OfflineTrainConfig& config);

}  // namespace mocc

#endif  // MOCC_SRC_CORE_PRESETS_H_
