// Offline pre-training of the MOCC model (§4.2): the two-phase strategy —
// bootstrapping (train a small set of pivot objectives to convergence) followed by fast
// traversing (visit the remaining landmark objectives a few PPO steps each, in the
// Algorithm-1 neighborhood order, cycling until the round budget is exhausted) — plus the
// two baselines the paper compares against in Figure 19: per-objective individual
// training, and two-phase training with parallel (multi-environment, multi-threaded)
// rollout collection.
//
// With parallel_envs > 1, rollouts are collected concurrently on the shared
// ThreadPool through PpoTrainer::CollectRolloutsParallel. Every environment is
// constructed with its own deterministic seed and every collection round derives
// per-env Rng streams on the trainer thread (determinism contract in
// src/common/thread_pool.h), so a training run's reward curve and final weights
// are bit-reproducible for a fixed config.seed, regardless of core count.
#ifndef MOCC_SRC_CORE_OFFLINE_TRAINER_H_
#define MOCC_SRC_CORE_OFFLINE_TRAINER_H_

#include <memory>
#include <vector>

#include "src/core/mocc_config.h"
#include "src/core/objective_space.h"
#include "src/core/preference_model.h"
#include "src/envs/cc_env.h"
#include "src/envs/scenario.h"
#include "src/rl/ppo.h"

namespace mocc {

struct OfflineTrainConfig {
  MoccConfig mocc;
  // Bootstrap-phase iterations; each jointly trains all bootstrap objectives.
  int bootstrap_iterations = 40;
  // PPO iterations per objective visit during fast traversing ("a few steps", §4.2).
  int traversal_iterations_per_objective = 1;
  // Cyclic passes over the sorted objective list (phase 2).
  int traversal_rounds = 2;
  // Number of parallel rollout environments (1 = serial).
  int parallel_envs = 1;
  // Every traversal update mixes the visited objective with this many previously
  // visited ones (fresh rollouts each). Mixing objectives inside one update batch is
  // what forces the preference sub-network to condition on w⃗ at small iteration
  // budgets (the conditioned-network training of Abels et al., Appendix A); 0 disables
  // (one objective per update, exactly Algorithm 1's schedule).
  int traversal_mix_objectives = 3;
  // Entropy-coefficient schedule (overrides the PpoConfig default so exploration decays
  // over the actual budget of this run, not the paper's 1000 iterations).
  double entropy_start = 0.05;
  double entropy_end = 0.0005;
  // Learning-rate multiplier for the fast-traversing phase: traversal transfers from an
  // already-trained base model, so it refines rather than re-learns.
  double traversal_lr_factor = 0.3;
  std::vector<WeightVector> bootstrap_objectives = DefaultBootstrapObjectives();
  // Scenario-sampled training: when non-empty, environment slot i runs
  // scenarios[i % scenarios.size()] — single-flow scenarios as CcEnv episodes,
  // multi-flow scenarios as shared-bottleneck MultiFlowCcEnv episodes whose per-agent
  // trajectories all feed the joint PPO update. The trainer allocates
  // max(parallel_envs, scenarios.size()) slots so every listed scenario trains even
  // when parallel_envs is smaller. Empty keeps the paper's single-flow sampled-link
  // training. Resolve names via ScenarioRegistry::Global().
  //
  // Scenarios with an ObjectivePlan (mixed-objective, sampled-objective, ...) assign
  // per-agent weights themselves: the trainer leaves those slots' objectives alone
  // and their heterogeneous trajectories join the same joint update, which is what
  // trains the preference sub-network to serve different objectives at once.
  std::vector<Scenario> scenarios;
  uint64_t seed = 7;

  // Total PPO iterations this configuration will run.
  int PlannedIterations() const;
};

struct OfflineTrainResult {
  // Mean per-step training reward of every PPO iteration, in order.
  std::vector<double> reward_curve;
  int total_iterations = 0;
  double wall_seconds = 0.0;
  // The traversal order actually used (indices into the landmark grid).
  std::vector<int> traversal_order;
};

class OfflineTrainer {
 public:
  // `model` must outlive the trainer and must have been built from config.mocc.
  OfflineTrainer(PreferenceActorCritic* model, const OfflineTrainConfig& config);

  // The paper's method: bootstrapping + neighborhood-ordered fast traversing.
  OfflineTrainResult TrainTwoPhase();

  // Figure 19 baseline: every landmark objective trained independently for the full
  // bootstrap budget (no transfer). Vastly slower; provided for the speedup comparison.
  OfflineTrainResult TrainIndividually();

  // Landmark grid of this configuration (ω objectives).
  const std::vector<WeightVector>& landmarks() const { return landmarks_; }

  // Environment slots actually allocated: max(parallel_envs, scenarios.size()) under
  // scenario training, parallel_envs otherwise.
  int slot_count() const {
    return static_cast<int>(slots_.empty() ? envs_.size() : slots_.size());
  }

  PpoTrainer& ppo() { return ppo_; }

 private:
  // One PPO iteration: fresh rollouts for every objective in `objectives` (the total
  // step budget split evenly), one joint clipped-surrogate update.
  PpoStats RunIteration(const std::vector<WeightVector>& objectives);

  // One training environment slot — exactly one pointer set, depending on whether the
  // slot's scenario is single- or multi-flow.
  struct EnvSlot {
    CcEnv* single = nullptr;
    MultiFlowCcEnv* multi = nullptr;
  };

  void SetSlotObjective(const EnvSlot& slot, const WeightVector& w);
  // The scenario-training iteration: every slot collects (in parallel, deterministic)
  // and all per-flow buffers join one update.
  PpoStats RunScenarioIteration(const std::vector<WeightVector>& objectives);

  PreferenceActorCritic* model_;
  OfflineTrainConfig config_;
  std::vector<WeightVector> landmarks_;
  ObjectiveGraph graph_;
  PpoTrainer ppo_;
  std::vector<std::unique_ptr<CcEnv>> envs_;
  std::vector<std::unique_ptr<MultiFlowCcEnv>> multi_envs_;
  std::vector<EnvSlot> slots_;  // non-empty iff config_.scenarios is non-empty
  Rng mix_rng_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_OFFLINE_TRAINER_H_
