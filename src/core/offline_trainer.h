// Offline pre-training of the MOCC model (§4.2): the two-phase strategy —
// bootstrapping (train a small set of pivot objectives to convergence) followed by fast
// traversing (visit the remaining landmark objectives a few PPO steps each, in the
// Algorithm-1 neighborhood order, cycling until the round budget is exhausted) — plus the
// two baselines the paper compares against in Figure 19: per-objective individual
// training, and two-phase training with parallel (multi-environment, multi-threaded)
// rollout collection.
//
// With parallel_envs > 1, rollouts are collected concurrently on the shared
// ThreadPool through PpoTrainer::CollectRolloutsParallel. Every environment is
// constructed with its own deterministic seed and every collection round derives
// per-env Rng streams on the trainer thread (determinism contract in
// src/common/thread_pool.h), so a training run's reward curve and final weights
// are bit-reproducible for a fixed config.seed, regardless of core count.
#ifndef MOCC_SRC_CORE_OFFLINE_TRAINER_H_
#define MOCC_SRC_CORE_OFFLINE_TRAINER_H_

#include <csignal>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/mocc_config.h"
#include "src/core/objective_space.h"
#include "src/core/preference_model.h"
#include "src/envs/cc_env.h"
#include "src/envs/scenario.h"
#include "src/rl/ppo.h"

namespace mocc {

struct OfflineTrainConfig {
  MoccConfig mocc;
  // Bootstrap-phase iterations; each jointly trains all bootstrap objectives.
  int bootstrap_iterations = 40;
  // PPO iterations per objective visit during fast traversing ("a few steps", §4.2).
  int traversal_iterations_per_objective = 1;
  // Cyclic passes over the sorted objective list (phase 2).
  int traversal_rounds = 2;
  // Number of parallel rollout environments (1 = serial).
  int parallel_envs = 1;
  // Every traversal update mixes the visited objective with this many previously
  // visited ones (fresh rollouts each). Mixing objectives inside one update batch is
  // what forces the preference sub-network to condition on w⃗ at small iteration
  // budgets (the conditioned-network training of Abels et al., Appendix A); 0 disables
  // (one objective per update, exactly Algorithm 1's schedule).
  int traversal_mix_objectives = 3;
  // Entropy-coefficient schedule (overrides the PpoConfig default so exploration decays
  // over the actual budget of this run, not the paper's 1000 iterations).
  double entropy_start = 0.05;
  double entropy_end = 0.0005;
  // Learning-rate multiplier for the fast-traversing phase: traversal transfers from an
  // already-trained base model, so it refines rather than re-learns.
  double traversal_lr_factor = 0.3;
  std::vector<WeightVector> bootstrap_objectives = DefaultBootstrapObjectives();
  // Scenario-sampled training: when non-empty, environment slot i runs
  // scenarios[i % scenarios.size()] — single-flow scenarios as CcEnv episodes,
  // multi-flow scenarios as shared-bottleneck MultiFlowCcEnv episodes whose per-agent
  // trajectories all feed the joint PPO update. The trainer allocates
  // max(parallel_envs, scenarios.size()) slots so every listed scenario trains even
  // when parallel_envs is smaller. Empty keeps the paper's single-flow sampled-link
  // training. Resolve names via ScenarioRegistry::Global().
  //
  // Scenarios with an ObjectivePlan (mixed-objective, sampled-objective, ...) assign
  // per-agent weights themselves: the trainer leaves those slots' objectives alone
  // and their heterogeneous trajectories join the same joint update, which is what
  // trains the preference sub-network to serve different objectives at once.
  std::vector<Scenario> scenarios;
  uint64_t seed = 7;

  // --- Crash safety & training watchdog (TrainTwoPhase only) ---
  // When non-empty, a checkpoint (model + optimizer + every Rng stream + iteration
  // counters + per-env cross-episode state) is written here every
  // checkpoint_interval completed iterations and at every stop point, via
  // temp-file + atomic rename (a crash mid-write never leaves a torn file).
  std::string checkpoint_path;
  int checkpoint_interval = 20;
  // Resume from checkpoint_path: training continues bit-identically with an
  // uninterrupted run of the same config. A missing file starts fresh; a corrupt
  // or config-mismatched file fails cleanly (OfflineTrainResult::resume_failed).
  bool resume = false;
  // Watchdog: every iteration's stats (and the model parameters) are checked for
  // non-finite values and |approx_kl| against this limit; a failure rolls model,
  // optimizer, Rng streams and env state back to the pre-iteration snapshot and
  // retries at a backed-off learning rate — up to max_watchdog_retries attempts,
  // then the run stops cleanly with watchdog_failed and the last good state.
  int max_watchdog_retries = 3;
  double watchdog_lr_backoff = 0.5;
  double watchdog_kl_limit = 5.0;
  // Cooperative interruption: when non-null and set nonzero (e.g. by a SIGINT
  // handler), training stops at the next iteration boundary, writes a final
  // checkpoint and returns with OfflineTrainResult::interrupted.
  const volatile std::sig_atomic_t* interrupt_flag = nullptr;
  // Test hooks. stop_after_iterations (< 0 = disabled) stops cleanly — with a
  // final checkpoint — once that many global iterations have completed.
  int stop_after_iterations = -1;
  // iteration_hook runs after each PPO iteration but before the watchdog health
  // check, with the global iteration index and mutable stats — tests inject
  // failures (poisoned parameters, forced-NaN stats) through it to exercise the
  // rollback path. Note a rollback re-invokes the hook with the same index; hooks
  // that should fire once must track that themselves.
  std::function<void(int, PpoStats*)> iteration_hook;

  // Total PPO iterations this configuration will run.
  int PlannedIterations() const;
};

struct OfflineTrainResult {
  // Mean per-step training reward of every PPO iteration, in order. On resume the
  // checkpointed prefix is restored, so a completed resumed run's curve equals the
  // uninterrupted run's.
  std::vector<double> reward_curve;
  int total_iterations = 0;
  double wall_seconds = 0.0;
  // The traversal order actually used (indices into the landmark grid).
  std::vector<int> traversal_order;
  // Iteration the run resumed from (0 = fresh start).
  int start_iteration = 0;
  // Watchdog rollbacks performed across the run (restored on resume).
  int watchdog_rollbacks = 0;
  // Watchdog retries exhausted: the run stopped early with the model at the last
  // healthy state (checkpointed when checkpoint_path is set).
  bool watchdog_failed = false;
  // Stopped via interrupt_flag; a final checkpoint was written first.
  bool interrupted = false;
  // resume was requested but checkpoint_path held a corrupt or config-mismatched
  // checkpoint; nothing was trained.
  bool resume_failed = false;
};

class OfflineTrainer {
 public:
  // `model` must outlive the trainer and must have been built from config.mocc.
  OfflineTrainer(PreferenceActorCritic* model, const OfflineTrainConfig& config);

  // The paper's method: bootstrapping + neighborhood-ordered fast traversing.
  OfflineTrainResult TrainTwoPhase();

  // Figure 19 baseline: every landmark objective trained independently for the full
  // bootstrap budget (no transfer). Vastly slower; provided for the speedup comparison.
  OfflineTrainResult TrainIndividually();

  // Landmark grid of this configuration (ω objectives).
  const std::vector<WeightVector>& landmarks() const { return landmarks_; }

  // Environment slots actually allocated: max(parallel_envs, scenarios.size()) under
  // scenario training, parallel_envs otherwise.
  int slot_count() const {
    return static_cast<int>(slots_.empty() ? envs_.size() : slots_.size());
  }

  PpoTrainer& ppo() { return ppo_; }

 private:
  // One PPO iteration: fresh rollouts for every objective in `objectives` (the total
  // step budget split evenly), one joint clipped-surrogate update.
  PpoStats RunIteration(const std::vector<WeightVector>& objectives);

  // One training environment slot — exactly one pointer set, depending on whether the
  // slot's scenario is single- or multi-flow.
  struct EnvSlot {
    CcEnv* single = nullptr;
    MultiFlowCcEnv* multi = nullptr;
  };

  void SetSlotObjective(const EnvSlot& slot, const WeightVector& w);
  // The scenario-training iteration: every slot collects (in parallel, deterministic)
  // and all per-flow buffers join one update.
  PpoStats RunScenarioIteration(const std::vector<WeightVector>& objectives);

  // Checkpoint payload ("MOCCCKPT"): config fingerprint + counters + reward curve +
  // every Rng stream + model + optimizer + per-env cross-episode state. The same
  // blob doubles as the watchdog's in-memory pre-iteration snapshot.
  std::string SerializeTrainerBlob(const OfflineTrainResult& result) const;
  bool RestoreTrainerBlob(const std::string& blob, int* start_iteration,
                          OfflineTrainResult* result);
  bool WriteCheckpoint(const OfflineTrainResult& result) const;
  void SerializeEnvStates(BinaryWriter* w) const;
  bool DeserializeEnvStates(BinaryReader* r);
  // Non-finite stats/params or |approx_kl| beyond the limit = unhealthy.
  bool IterationHealthy(const PpoStats& stats);
  // One watchdog-supervised iteration: snapshot, run, health-check, roll back and
  // retry at a backed-off learning rate. False = retries exhausted (run must stop).
  bool ExecuteIteration(const std::vector<WeightVector>& objectives,
                        OfflineTrainResult* result);

  PreferenceActorCritic* model_;
  OfflineTrainConfig config_;
  std::vector<WeightVector> landmarks_;
  ObjectiveGraph graph_;
  PpoTrainer ppo_;
  std::vector<std::unique_ptr<CcEnv>> envs_;
  std::vector<std::unique_ptr<MultiFlowCcEnv>> multi_envs_;
  std::vector<EnvSlot> slots_;  // non-empty iff config_.scenarios is non-empty
  Rng mix_rng_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_OFFLINE_TRAINER_H_
