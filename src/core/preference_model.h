// MOCC's policy model (Figure 2b / Figure 3): an actor-critic in which BOTH the actor
// and the critic are extended with a preference sub-network (PN). The PN feature-
// transforms the application weight vector w⃗; its output is concatenated with the
// g⃗(t,η) network-condition history and fed to the trunk MLP (hidden layers 64 and 32,
// tanh — §5). This is the structural change that lets one model recognize different
// application requirements and correlate them with the corresponding optimal rate
// control policies (§4.1).
#ifndef MOCC_SRC_CORE_PREFERENCE_MODEL_H_
#define MOCC_SRC_CORE_PREFERENCE_MODEL_H_

#include <memory>
#include <string>

#include "src/core/mocc_config.h"
#include "src/nn/mlp.h"
#include "src/rl/actor_critic.h"

namespace mocc {

class PreferenceActorCritic : public ActorCritic {
 public:
  // Observation layout: [w_thr, w_lat, w_loss, g(t-η+1), ..., g(t)] — the weight vector
  // in the first kWeightDim columns, then the flattened history.
  static constexpr size_t kWeightDim = 3;

  PreferenceActorCritic(const MoccConfig& config, Rng* rng);

  void Forward(const Matrix& obs, Matrix* mean, Matrix* value) override;
  void Backward(const Matrix& dmean, const Matrix& dvalue) override;
  // Fused single-observation inference (PN row pass + concat + trunk row pass);
  // zero allocation in steady state, bit-for-bit equal to a 1-row Forward. The PN
  // features depend only on the leading weight vector, which is constant across
  // monitor intervals in deployment, so they are cached per head and recomputed
  // only when w⃗ or the parameters change (see InvalidatePnCache).
  void ForwardRow(const std::vector<double>& obs, double* mean, double* value) override;
  void ForwardRowActor(const std::vector<double>& obs, double* mean) override;

  // Drops the cached PN features. Called internally by ZeroGrad, Deserialize and
  // (conservatively) Params() — the returned refs are mutable parameter handles —
  // so every parameter-mutation path invalidates automatically. Only code that
  // stashes ParamRefs and writes through them later, after an intervening
  // ForwardRow, would need to call this explicitly.
  void InvalidatePnCache();

  // Frozen float32 deployment replica (PreferenceFloat32Policy, including its own
  // PN feature cache). See ActorCritic::MakeFloat32Policy.
  std::unique_ptr<InferencePolicy> MakeFloat32Policy() const override;

  // Int8-quantized replica: the trunks run quantized (src/nn/qmlp.h), the tiny
  // preference nets stay float32 behind their cache. See ActorCritic::MakeInt8Policy.
  std::unique_ptr<InferencePolicy> MakeInt8Policy() const override;

  double log_std() const override { return log_std_(0, 0); }
  void set_log_std(double v) override { log_std_(0, 0) = v; }
  void AccumulateLogStdGrad(double g) override { log_std_grad_(0, 0) += g; }

  std::vector<ParamRef> Params() override;
  void ZeroGrad() override;
  size_t obs_dim() const override { return obs_dim_; }
  std::unique_ptr<ActorCritic> Clone() const override;

  const MoccConfig& config() const { return config_; }
  size_t ParameterCount() const;

  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

  // File helpers (magic "MOCCMODL"). Save returns false on I/O failure; Load returns
  // nullptr on missing/corrupt/architecture-mismatched files.
  bool SaveToFile(const std::string& path) const;
  static std::shared_ptr<PreferenceActorCritic> LoadFromFile(const std::string& path,
                                                             const MoccConfig& config);

 private:
  struct Head {
    Mlp preference_net;  // kWeightDim -> pn_hidden -> pn_out (tanh)
    Mlp trunk;           // (pn_out + history_dim) -> 64 -> 32 -> 1
    // Batched-pass workspaces (capacity reused across calls).
    Matrix weights_in;  // batch x kWeightDim slice of obs
    Matrix pn_out;
    Matrix concat;
    Matrix dconcat;
    Matrix dpn;
    // Single-row workspace: [PN features | history], pre-sized at construction.
    // The PN-feature prefix doubles as the cache for pn_cache_w.
    std::vector<double> concat_row;
    double pn_cache_w[kWeightDim] = {};
    bool pn_cache_valid = false;
  };

  void ForwardHeadInto(Head* head, const Matrix& obs, Matrix* out);
  void ForwardHeadRow(Head* head, const std::vector<double>& obs, double* out);
  void BackwardHead(Head* head, const Matrix& grad_out);

  MoccConfig config_;
  size_t obs_dim_;
  Head actor_;
  Head critic_;
  Matrix log_std_{1, 1};
  Matrix log_std_grad_{1, 1};
  Matrix dpn_in_scratch_;  // discarded dL/dw of the PN backward
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_PREFERENCE_MODEL_H_
