#include "src/core/mocc_api.h"

#include <algorithm>
#include <cassert>

#include "src/envs/cc_env.h"

namespace mocc {

MoccApi::MoccApi(std::shared_ptr<PreferenceActorCritic> model, const Options& options)
    : model_(std::move(model)),
      options_(options),
      history_(options.config.history_len_eta),
      rate_bps_(options.initial_rate_bps) {
  assert(model_ != nullptr);
  assert(model_->obs_dim() == options_.config.ObsDim());
}

void MoccApi::Register(const WeightVector& w) {
  weight_ = w.Sanitized();
  registered_ = true;
}

void MoccApi::ReportStatus(const MonitorReport& status) {
  assert(registered_ && "Register(w) must be called before ReportStatus");
  history_.Push(status);
  estimator_.Observe(status);
  last_reward_ = DynamicReward(weight_, status, estimator_.CapacityBps(),
                               estimator_.BaseRttS());

  std::vector<double> obs = {weight_.thr, weight_.lat, weight_.loss};
  history_.AppendObservation(&obs);
  const double action = model_->ActionMean(obs);
  ++inference_count_;
  rate_bps_ = CcEnv::ApplyRateAction(rate_bps_, action, options_.config.action_scale_alpha);
  rate_bps_ = std::clamp(rate_bps_, options_.min_rate_bps, options_.max_rate_bps);
}

}  // namespace mocc
