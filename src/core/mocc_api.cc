#include "src/core/mocc_api.h"

#include <cassert>
#include <utility>

#include "src/serving/serving_engine.h"

namespace mocc {

MoccServing::MoccServing(const PolicySpec& spec, const Options& options) {
  std::shared_ptr<PreferenceActorCritic> model = spec.ResolveModel();
  assert(model != nullptr && "use CreateService() to handle resolution failure");
  engine_ = std::make_unique<ServingEngine>(spec, std::move(model), options);
}

MoccServing::~MoccServing() = default;

ServingConnId MoccServing::AttachConnection(const WeightVector& w) {
  return AttachConnection(w, ConnectionOptions{});
}

ServingConnId MoccServing::AttachConnection(const WeightVector& w,
                                            const ConnectionOptions& options) {
  return engine_->Attach(w, options);
}

bool MoccServing::DetachConnection(ServingConnId id) { return engine_->Detach(id); }

bool MoccServing::SwitchObjective(ServingConnId id, const WeightVector& w) {
  return engine_->SwitchObjective(id, w);
}

void MoccServing::OnFlowStart(ServingConnId id, double now_s) {
  engine_->OnFlowStart(id, now_s);
}

void MoccServing::OnPacketSent(ServingConnId id, int64_t packets) {
  engine_->OnPacketSent(id, packets);
}

void MoccServing::OnAck(ServingConnId id, const AckInfo& ack) { engine_->OnAck(id, ack); }

void MoccServing::OnLoss(ServingConnId id, const LossInfo& loss) {
  engine_->OnLoss(id, loss);
}

void MoccServing::OnTimeout(ServingConnId id, double now_s) {
  engine_->OnTimeout(id, now_s);
}

bool MoccServing::SubmitReport(ServingConnId id, const MonitorReport& report) {
  return engine_->SubmitReport(id, report);
}

bool MoccServing::PostReport(ServingConnId id, const MonitorReport& report) {
  return engine_->PostReport(id, report);
}

size_t MoccServing::RatePoll() { return engine_->PollPending(); }

size_t MoccServing::RatePoll(double now_s) { return engine_->PollAt(now_s); }

double MoccServing::RateBps(ServingConnId id) const { return engine_->RateBps(id); }

int64_t MoccServing::DecisionCount(ServingConnId id) const {
  return engine_->DecisionCount(id);
}

const GuardedPolicy* MoccServing::Guard(ServingConnId id) const {
  return engine_->Guard(id);
}

const MoccServing::Stats& MoccServing::stats() const { return engine_->stats(); }

size_t MoccServing::attached() const { return engine_->attached(); }

int64_t MoccServing::PnRecomputeCount() const { return engine_->PnRecomputeCount(); }

std::unique_ptr<MoccServing> CreateService(const PolicySpec& spec,
                                           const MoccServing::Options& options) {
  if (spec.ResolveModel() == nullptr) {
    return nullptr;  // ResolveModel already printed the diagnostic
  }
  return std::make_unique<MoccServing>(spec, options);
}

MoccApi::MoccApi(std::shared_ptr<PreferenceActorCritic> model, const Options& options)
    : options_(options) {
  assert(model != nullptr);
  assert(model->obs_dim() == options_.config.ObsDim());
  PolicySpec spec;
  spec.WithModel(std::move(model))
      .WithConfig(options_.config)
      .WithPrecision(Precision::kDouble)
      .WithInitialRate(options_.initial_rate_bps)
      .WithRateBounds(options_.min_rate_bps, options_.max_rate_bps);
  serving_ = std::make_unique<MoccServing>(spec, MoccServing::Options{});
}

MoccApi::~MoccApi() = default;

void MoccApi::Register(const WeightVector& w) {
  weight_ = w.Sanitized();
  if (!registered_) {
    MoccServing::ConnectionOptions copts;
    copts.initial_rate_bps = options_.initial_rate_bps;
    conn_ = serving_->AttachConnection(weight_, copts);
    registered_ = true;
    return;
  }
  serving_->SwitchObjective(conn_, weight_);  // history and rate carry over
}

void MoccApi::ReportStatus(const MonitorReport& status) {
  assert(registered_ && "Register(w) must be called before ReportStatus");
  estimator_.Observe(status);
  last_reward_ = DynamicReward(weight_, status, estimator_.CapacityBps(),
                               estimator_.BaseRttS());
  serving_->SubmitReport(conn_, status);
  serving_->RatePoll();
}

double MoccApi::GetSendingRate() const {
  return registered_ ? serving_->RateBps(conn_) : options_.initial_rate_bps;
}

int64_t MoccApi::inference_count() const {
  return registered_ ? serving_->DecisionCount(conn_) : 0;
}

}  // namespace mocc
