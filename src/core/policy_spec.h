// PolicySpec: the one way to describe a deployable MOCC policy.
//
// Before this existed, every embedder re-plumbed the same four knobs — model (or
// checkpoint path), precision, guard, weights — through its own hand-rolled option
// struct into MakeMoccCc / RlRateController::Options / MakeFloat32Policy /
// GuardedPolicy wiring. PolicySpec collapses that into a single builder that all
// consumers share: the CLI tools (`mocc_simulate`, `mocc_eval`, `bench_report`),
// the serving layer (`CreateService`, src/core/mocc_api.h) and `MakeMoccCc`
// itself (now a thin wrapper kept for source compatibility).
//
//   PolicySpec spec;
//   spec.WithCheckpoint("model.bin").WithPrecision(Precision::kFloat32).WithGuard(true);
//   auto cc = spec.MakeController(WeightVector{0.6, 0.3, 0.1});   // one flow
//   auto service = CreateService(spec);                            // many flows
//
// A spec is a value: copy it, tweak a field, build again. The model is resolved
// once (explicit WithModel pointer, or a lazy LoadFromFile of the checkpoint on
// first use) and shared across everything built from the spec.
#ifndef MOCC_SRC_CORE_POLICY_SPEC_H_
#define MOCC_SRC_CORE_POLICY_SPEC_H_

#include <memory>
#include <string>

#include "src/baselines/rl_cc.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/core/weight_vector.h"
#include "src/rl/guarded_policy.h"

namespace mocc {

// Precision itself (kDouble / kFloat32 / kInt8) lives in
// src/rl/inference_policy.h (re-exported here through the rl_cc.h include
// chain) so the controller layer can carry it without an include cycle.

// Parses "double" / "float32" / "int8" (the CLI --precision vocabulary).
// Returns false on anything else, leaving *out untouched.
bool ParsePrecision(const std::string& text, Precision* out);

// The CLI name of a precision ("double" / "float32" / "int8").
const char* PrecisionName(Precision p);

class PolicySpec {
 public:
  PolicySpec() = default;

  // Model source: an already-loaded model, or a checkpoint path loaded lazily on
  // first ResolveModel() with the config from WithConfig (default MoccConfig).
  // Setting one clears any previously resolved other.
  PolicySpec& WithModel(std::shared_ptr<PreferenceActorCritic> model);
  PolicySpec& WithCheckpoint(std::string path);
  PolicySpec& WithConfig(const MoccConfig& config);

  PolicySpec& WithPrecision(Precision precision);
  PolicySpec& WithGuard(bool guard);
  PolicySpec& WithGuardOptions(const GuardedPolicy::Options& options);

  // Default objective for MakeController() without an explicit weight vector
  // (sanitized at build time, like every other weight entry point).
  PolicySpec& WithWeights(const WeightVector& w);

  PolicySpec& WithInitialRate(double initial_rate_bps);
  PolicySpec& WithRateBounds(double min_rate_bps, double max_rate_bps);
  PolicySpec& WithName(std::string name);

  // The shared model behind this spec: the explicit model if set, otherwise the
  // checkpoint loaded (once; cached) with the spec's config. Returns nullptr —
  // after an stderr diagnostic — when neither is available or the load fails.
  std::shared_ptr<PreferenceActorCritic> ResolveModel() const;

  // Builds a single-flow controller (the MakeMoccCc shape: history length and
  // action scale from the model config, weight prefix from `w`). Returns nullptr
  // when the model cannot be resolved.
  std::unique_ptr<RlRateController> MakeController(const WeightVector& w) const;
  std::unique_ptr<RlRateController> MakeController(const WeightVector& w,
                                                   double initial_rate_bps) const;
  std::unique_ptr<RlRateController> MakeController() const;  // uses WithWeights

  Precision precision() const { return precision_; }
  bool guard() const { return guard_; }
  const GuardedPolicy::Options& guard_options() const { return guard_options_; }
  const WeightVector& weights() const { return weights_; }
  double initial_rate_bps() const { return initial_rate_bps_; }
  double min_rate_bps() const { return min_rate_bps_; }
  double max_rate_bps() const { return max_rate_bps_; }
  const std::string& name() const { return name_; }
  const std::string& checkpoint() const { return checkpoint_; }

 private:
  std::shared_ptr<PreferenceActorCritic> model_;
  std::string checkpoint_;
  MoccConfig config_;
  Precision precision_ = Precision::kDouble;
  bool guard_ = false;
  GuardedPolicy::Options guard_options_;
  WeightVector weights_{1.0 / 3, 1.0 / 3, 1.0 / 3};
  double initial_rate_bps_ = 2e6;
  double min_rate_bps_ = 0.1e6;
  double max_rate_bps_ = 400e6;
  std::string name_ = "MOCC";
  // Lazy checkpoint load cache (a spec is logically const while building things).
  mutable std::shared_ptr<PreferenceActorCritic> loaded_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_POLICY_SPEC_H_
