// The dynamic reward function of Eq. (2):
//     r_t = w_thr * O_thr + w_lat * O_lat + w_loss * O_loss
// with O_thr = throughput / link capacity, O_lat = base latency / measured latency and
// O_loss = 1 - lost/total — each normalized to [0,1] so the weights express relative
// importance fairly (§4.1). During offline training the simulator's ground-truth capacity
// and base latency are available; in the online phase MOCC estimates them from the
// maximum observed throughput and minimum observed delay (§4.1), which
// OnlineLinkEstimator implements. Header-only to keep the env layer link-free of core.
#ifndef MOCC_SRC_CORE_REWARD_H_
#define MOCC_SRC_CORE_REWARD_H_

#include <algorithm>

#include "src/core/weight_vector.h"
#include "src/netsim/cc_interface.h"

namespace mocc {

// The three normalized performance measures of Eq. (2).
struct RewardComponents {
  double o_thr = 0.0;
  double o_lat = 0.0;
  double o_loss = 0.0;
};

// Computes O_thr/O_lat/O_loss for a monitor interval given the link capacity and base
// latency (ground truth or estimates). All components are clamped to [0,1].
inline RewardComponents ComputeRewardComponents(const MonitorReport& mi, double capacity_bps,
                                                double base_rtt_s) {
  RewardComponents c;
  c.o_thr = capacity_bps > 0.0 ? std::clamp(mi.throughput_bps / capacity_bps, 0.0, 1.0) : 0.0;
  c.o_lat = mi.avg_rtt_s > 0.0 ? std::clamp(base_rtt_s / mi.avg_rtt_s, 0.0, 1.0) : 0.0;
  c.o_loss = std::clamp(1.0 - mi.loss_rate, 0.0, 1.0);
  return c;
}

// Eq. (2): the weighted scalarization of the reward components.
inline double DynamicReward(const WeightVector& w, const RewardComponents& c) {
  return w.thr * c.o_thr + w.lat * c.o_lat + w.loss * c.o_loss;
}

inline double DynamicReward(const WeightVector& w, const MonitorReport& mi,
                            double capacity_bps, double base_rtt_s) {
  return DynamicReward(w, ComputeRewardComponents(mi, capacity_bps, base_rtt_s));
}

// Online estimator of link capacity (max observed delivery rate) and base latency
// (min observed RTT), per §4.1's online phase.
class OnlineLinkEstimator {
 public:
  void Observe(const MonitorReport& mi) {
    if (mi.throughput_bps > capacity_bps_) {
      capacity_bps_ = mi.throughput_bps;
    }
    const double rtt = mi.min_rtt_s > 0.0 ? mi.min_rtt_s : mi.avg_rtt_s;
    if (rtt > 0.0 && (base_rtt_s_ == 0.0 || rtt < base_rtt_s_)) {
      base_rtt_s_ = rtt;
    }
  }

  // Estimated capacity; `fallback_bps` until any throughput has been observed.
  double CapacityBps(double fallback_bps = 1e6) const {
    return capacity_bps_ > 0.0 ? capacity_bps_ : fallback_bps;
  }

  // Estimated base RTT; `fallback_s` until any RTT has been observed.
  double BaseRttS(double fallback_s = 0.04) const {
    return base_rtt_s_ > 0.0 ? base_rtt_s_ : fallback_s;
  }

  void Reset() {
    capacity_bps_ = 0.0;
    base_rtt_s_ = 0.0;
  }

 private:
  double capacity_bps_ = 0.0;
  double base_rtt_s_ = 0.0;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_REWARD_H_
