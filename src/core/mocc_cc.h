// MOCC as a simulator congestion controller: wires a shared trained model into the
// generic CongestionControl interface with the registered weight vector as observation
// prefix. One model instance serves any number of flows with different objectives —
// the multi-objective property in deployment form.
#ifndef MOCC_SRC_CORE_MOCC_CC_H_
#define MOCC_SRC_CORE_MOCC_CC_H_

#include <memory>
#include <string>

#include "src/baselines/rl_cc.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/core/weight_vector.h"

namespace mocc {

// Creates a MOCC congestion controller for one flow with requirement `w`. A thin
// source-compatibility wrapper over the PolicySpec builder (src/core/policy_spec.h),
// which new code should use directly. With
// `float32_inference`, the per-MI policy forward runs through the model's frozen
// float32 deployment replica (see src/rl/inference_policy.h) instead of the
// double-precision path; the replica is built per controller at call time. With
// `guarded`, every per-MI decision passes through the GuardedPolicy circuit
// breaker and violations degrade the flow to a warm-standby CUBIC fallback (see
// src/rl/guarded_policy.h).
std::unique_ptr<RlRateController> MakeMoccCc(std::shared_ptr<PreferenceActorCritic> model,
                                             const WeightVector& w,
                                             const std::string& name = "MOCC",
                                             double initial_rate_bps = 2e6,
                                             bool float32_inference = false,
                                             bool guarded = false);

}  // namespace mocc

#endif  // MOCC_SRC_CORE_MOCC_CC_H_
