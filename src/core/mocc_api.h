// The deployable MOCC library facade (§5), at two scales.
//
// Connection scale — MoccServing: one service instance terminates many flows
// behind a c4/picoquic-style registration surface:
//
//   PolicySpec spec; spec.WithCheckpoint("model.bin").WithPrecision(Precision::kFloat32);
//   auto service = CreateService(spec);
//   ServingConnId id = service->AttachConnection(w);       // per new connection
//   service->OnAck(id, ack); service->OnLoss(id, loss);    // per-packet feedback
//   service->SubmitReport(id, report);                     // external MI clocking, or
//   service->PostReport(id, report);                       // ...from another thread, or
//   service->RatePoll(now_s);                              // service-tick clocking
//   double rate = service->RateBps(id);
//
// All attached connections share ONE model and ONE float32 inference replica;
// per-connection state lives in a contiguous slab (src/serving/connection_slab.h)
// and connections whose monitor intervals expire in the same service tick are
// collected by a deadline wheel and decided in one batched forward pass
// (src/serving/serving_engine.h) instead of N single-row calls.
//
// Single connection — MoccApi: the paper's three-function facade
// (Register / ReportStatus / GetSendingRate), now a thin veneer over a private
// one-connection MoccServing so embedders that start with the paper API are
// already on the serving path when they scale out.
#ifndef MOCC_SRC_CORE_MOCC_API_H_
#define MOCC_SRC_CORE_MOCC_API_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/core/mocc_config.h"
#include "src/core/policy_spec.h"
#include "src/core/preference_model.h"
#include "src/core/reward.h"
#include "src/core/weight_vector.h"
#include "src/netsim/cc_interface.h"
#include "src/rl/guarded_policy.h"

namespace mocc {

class ServingEngine;

// Handle to one attached connection. Stale handles (detached, or a recycled slot)
// are rejected by every MoccServing call — the slot's generation must match.
struct ServingConnId {
  int32_t slot = -1;
  uint32_t generation = 0;
  bool valid() const { return slot >= 0; }
};

class MoccServing {
 public:
  struct Options {
    // Service tick length: the granularity at which self-timed monitor intervals
    // expire (and therefore batch together).
    double tick_s = 0.001;
    // Deadline-wheel ring size (rounded up to a power of two).
    size_t wheel_slots = 256;
    // Capacity of the lock-free MPSC report ring behind PostReport (rounded up
    // to a power of two). A full ring fails PostReport — size it to cover the
    // producers' burst between two RatePoll calls.
    size_t report_ring_capacity = 1024;
  };

  struct ConnectionOptions {
    double initial_rate_bps = 2e6;
    // > 0: the service clocks this connection's monitor intervals itself on the
    // tick wheel (rounded to whole ticks, minimum one) and synthesizes reports
    // from the OnPacketSent/OnAck/OnLoss accumulators; SubmitReport is rejected.
    // 0 (default): the embedder submits MonitorReports explicitly.
    double mi_duration_s = 0.0;
    // Wheel start time for self-timed connections (first deadline is
    // start_time_s + mi_duration_s).
    double start_time_s = 0.0;
  };

  struct Stats {
    int64_t decisions = 0;   // policy inferences across all connections
    int64_t polls = 0;       // RatePoll calls
    int64_t max_batch = 0;   // largest single batched forward
    // Histogram of batched-forward sizes: bucket i counts batches of size in
    // [2^i, 2^(i+1)).
    std::array<int64_t, 16> batch_size_log2_hist{};
    // PostReport ring traffic: entries drained and ingested, and entries
    // dropped at drain time (stale handle, self-timed, duplicate pending).
    int64_t ring_reports = 0;
    int64_t ring_dropped = 0;
  };

  MoccServing(const PolicySpec& spec, const Options& options);
  ~MoccServing();
  MoccServing(const MoccServing&) = delete;
  MoccServing& operator=(const MoccServing&) = delete;

  // Attaches a connection with requirement `w` (sanitized internally). The
  // returned handle indexes slab state directly; slots are recycled after
  // DetachConnection with a bumped generation.
  ServingConnId AttachConnection(const WeightVector& w);
  ServingConnId AttachConnection(const WeightVector& w,
                                 const ConnectionOptions& options);
  bool DetachConnection(ServingConnId id);

  // Re-registers the connection's objective; rate control picks up the new
  // preference at its next decision. History and rate carry over.
  bool SwitchObjective(ServingConnId id, const WeightVector& w);

  // Per-packet feedback. Feeds the guard's warm-standby fallback (when the spec
  // is guarded) and, for self-timed connections, the MI accumulators.
  void OnFlowStart(ServingConnId id, double now_s);
  void OnPacketSent(ServingConnId id, int64_t packets = 1);
  void OnAck(ServingConnId id, const AckInfo& ack);
  void OnLoss(ServingConnId id, const LossInfo& loss);
  void OnTimeout(ServingConnId id, double now_s);

  // Queues one monitor interval's statistics for an externally clocked
  // connection (at most one per RatePoll; self-timed connections reject it).
  // The decision happens at the next RatePoll. Consumer thread only — this is
  // the single-producer form of PostReport, validated synchronously.
  bool SubmitReport(ServingConnId id, const MonitorReport& report);

  // Thread-safe report submission: enqueues through a lock-free bounded MPSC
  // ring and returns immediately. Callable from any number of producer threads
  // concurrently with each other (all other MoccServing calls stay on the one
  // consumer thread). Validation is deferred to the next RatePoll, which
  // drains the ring on the consumer thread: stale handles, self-timed
  // connections and duplicate pending reports are dropped there (counted in
  // stats().ring_dropped), exactly the submissions SubmitReport rejects
  // synchronously. Returns false only when the ring is full — backpressure;
  // the caller may retry after the consumer's next poll, or drop the report
  // (monitor intervals are periodic, the next one carries fresher data).
  // Decisions are bit-identical to the same reports fed through SubmitReport:
  // each connection has one producer, so its report order is preserved, and
  // per-connection decisions are independent of batch composition.
  bool PostReport(ServingConnId id, const MonitorReport& report);

  // Decides every queued report in one batched forward pass. Returns the number
  // of decisions made.
  size_t RatePoll();
  // Advances the service clock to `now_s` first: self-timed connections whose
  // intervals expired synthesize their reports and join the batch.
  size_t RatePoll(double now_s);

  // Sending rate (bits/second) for the next interval; 0 for stale handles.
  double RateBps(ServingConnId id) const;
  // Policy inferences for this connection (breaker-open intervals excluded).
  int64_t DecisionCount(ServingConnId id) const;
  // The connection's circuit breaker (nullptr when unguarded or stale). The
  // pointer is invalidated by the next AttachConnection (slab growth) — read,
  // don't hold.
  const GuardedPolicy* Guard(ServingConnId id) const;

  const Stats& stats() const;
  size_t attached() const;
  // The shared policy's PN recomputes (float32 specs only; -1 on the double
  // path) — one per distinct weight prefix per batch when batches are sorted.
  int64_t PnRecomputeCount() const;

 private:
  std::unique_ptr<ServingEngine> engine_;
};

// Builds a service from the spec (the one deployment surface — CLI tools, the
// bench and MoccApi all go through here). Returns nullptr when the spec's model
// cannot be resolved.
std::unique_ptr<MoccServing> CreateService(const PolicySpec& spec,
                                           const MoccServing::Options& options = {});

// The paper's single-connection facade: Register(w) / ReportStatus(s_t) /
// GetSendingRate(). Runs pure double-precision inference on the shared model
// plus the §4.1 online estimators, exactly as before the serving layer existed —
// internally it is connection 0 of a private MoccServing.
class MoccApi {
 public:
  struct Options {
    MoccConfig config;
    double initial_rate_bps = 2e6;
    double min_rate_bps = 0.1e6;
    double max_rate_bps = 400e6;
  };

  // `model` must match options.config's architecture. The model is shared: many
  // MoccApi instances (one per connection) can serve different applications from
  // one model — the multi-objective property.
  MoccApi(std::shared_ptr<PreferenceActorCritic> model, const Options& options);
  explicit MoccApi(std::shared_ptr<PreferenceActorCritic> model)
      : MoccApi(std::move(model), Options{}) {}
  ~MoccApi();

  // Registers the application requirement. May be called again at any time to
  // switch objectives; rate control picks up the new preference at the next
  // ReportStatus (history carries over).
  void Register(const WeightVector& w);

  // Reports the latest network status; MOCC updates its rate decision (Eq. 1).
  void ReportStatus(const MonitorReport& status);

  // Sending rate (bits/second) for the next time interval.
  double GetSendingRate() const;

  const WeightVector& registered_weight() const { return weight_; }
  bool is_registered() const { return registered_; }
  // Policy inferences performed (one per ReportStatus) — overhead accounting (Fig 17).
  int64_t inference_count() const;
  // Online estimates (§4.1): observed capacity and base latency.
  double EstimatedCapacityBps() const { return estimator_.CapacityBps(); }
  double EstimatedBaseRttS() const { return estimator_.BaseRttS(); }
  // The dynamic reward (Eq. 2) of the most recent reported interval under the
  // registered weight — exposed for monitoring/adaptation triggers.
  double LastReward() const { return last_reward_; }

 private:
  Options options_;
  WeightVector weight_;
  bool registered_ = false;
  OnlineLinkEstimator estimator_;
  double last_reward_ = 0.0;
  std::unique_ptr<MoccServing> serving_;
  ServingConnId conn_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_MOCC_API_H_
