// The deployable MOCC library facade (§5). The paper encapsulates all of MOCC behind
// three functions so any networking datapath (user-space UDT, kernel-space CCP, ...) can
// adopt it:
//   * Register(w)        — declare the application's requirement (weight vector);
//   * ReportStatus(s_t)  — feed the latest monitor-interval network statistics;
//   * GetSendingRate()   — read the sending rate MOCC computed for the next interval.
// The facade runs pure inference on an offline-trained PreferenceActorCritic and uses
// the online estimators of §4.1 for capacity/base-latency bookkeeping.
#ifndef MOCC_SRC_CORE_MOCC_API_H_
#define MOCC_SRC_CORE_MOCC_API_H_

#include <memory>

#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/core/reward.h"
#include "src/core/weight_vector.h"
#include "src/envs/mi_history.h"
#include "src/netsim/cc_interface.h"

namespace mocc {

class MoccApi {
 public:
  struct Options {
    MoccConfig config;
    double initial_rate_bps = 2e6;
    double min_rate_bps = 0.1e6;
    double max_rate_bps = 400e6;
  };

  // `model` must match options.config's architecture. The model is shared: many MoccApi
  // instances (one per connection) can serve different applications from one model —
  // the multi-objective property.
  MoccApi(std::shared_ptr<PreferenceActorCritic> model, const Options& options);
  explicit MoccApi(std::shared_ptr<PreferenceActorCritic> model)
      : MoccApi(std::move(model), Options{}) {}

  // Registers the application requirement. May be called again at any time to switch
  // objectives; rate control picks up the new preference at the next ReportStatus.
  void Register(const WeightVector& w);

  // Reports the latest network status; MOCC updates its rate decision (Eq. 1).
  void ReportStatus(const MonitorReport& status);

  // Sending rate (bits/second) for the next time interval.
  double GetSendingRate() const { return rate_bps_; }

  const WeightVector& registered_weight() const { return weight_; }
  bool is_registered() const { return registered_; }
  // Policy inferences performed (one per ReportStatus) — overhead accounting (Fig 17).
  int64_t inference_count() const { return inference_count_; }
  // Online estimates (§4.1): observed capacity and base latency.
  double EstimatedCapacityBps() const { return estimator_.CapacityBps(); }
  double EstimatedBaseRttS() const { return estimator_.BaseRttS(); }
  // The dynamic reward (Eq. 2) of the most recent reported interval under the
  // registered weight — exposed for monitoring/adaptation triggers.
  double LastReward() const { return last_reward_; }

 private:
  std::shared_ptr<PreferenceActorCritic> model_;
  Options options_;
  WeightVector weight_;
  bool registered_ = false;
  MiHistoryTracker history_;
  OnlineLinkEstimator estimator_;
  double rate_bps_;
  double last_reward_ = 0.0;
  int64_t inference_count_ = 0;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_MOCC_API_H_
