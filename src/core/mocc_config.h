// Central MOCC hyper-parameter configuration — Table 2 of the paper plus the model
// architecture of Figure 3 (§5: trunk MLP with hidden layers of 64 and 32 tanh units;
// preference sub-network feature-transforming the weight vector).
#ifndef MOCC_SRC_CORE_MOCC_CONFIG_H_
#define MOCC_SRC_CORE_MOCC_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/envs/cc_env.h"
#include "src/rl/ppo.h"

namespace mocc {

struct MoccConfig {
  // Table 2.
  double discount_gamma = 0.99;
  double learning_rate = 1e-3;
  double action_scale_alpha = 0.025;
  size_t history_len_eta = 10;
  // ω = 36 landmark objectives corresponds to a simplex grid of step 1/10 (§6.5,
  // Figure 16 legend); ObjectiveGridSize() maps divisor -> ω.
  int landmark_step_divisor = 10;

  // Figure 3 architecture.
  size_t pn_hidden = 16;               // preference sub-network hidden width
  size_t pn_out = 16;                  // preference feature width fed to the trunk
  std::vector<size_t> trunk_hidden = {64, 32};

  // Widen each per-MI history entry from 3 to 4 values by appending the ECN
  // mark fraction observed on that interval's ACKs (AQM/ECN bottlenecks). Off
  // by default: the historical observation layout — and thus every existing
  // checkpoint's dimensions — is unchanged. Models trained with this flag have
  // a different ObsDim, so the two kinds of checkpoints can never be confused
  // (PreferenceActorCritic::LoadFromFile detects the layout from the file).
  bool ecn_signal = false;

  // Derived dimensions.
  size_t HistoryEntryWidth() const { return ecn_signal ? 4 : 3; }
  size_t HistoryDim() const { return HistoryEntryWidth() * history_len_eta; }
  size_t ObsDim() const { return 3 + HistoryDim(); }

  // PPO configuration consistent with this MoccConfig (Table 2 + §5 defaults).
  PpoConfig MakePpoConfig(uint64_t seed) const {
    PpoConfig ppo;
    ppo.gamma = discount_gamma;
    ppo.learning_rate = learning_rate;
    ppo.seed = seed;
    return ppo;
  }

  // Training environment configuration consistent with this MoccConfig (Table 3).
  CcEnvConfig MakeEnvConfig() const {
    CcEnvConfig env;
    env.link_range = TrainingRange();
    env.history_len = history_len_eta;
    env.include_ecn_in_obs = ecn_signal;
    env.action_scale = action_scale_alpha;
    env.include_weight_in_obs = true;
    // Expected-value loss keeps the reward's loss term noise-free: random-loss noise is
    // pure reward noise that would otherwise swamp the small throughput gradient of
    // latency-leaning objectives at scaled-down training budgets.
    env.stochastic_loss = false;
    return env;
  }
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_MOCC_CONFIG_H_
