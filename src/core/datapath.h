// Simulated datapath integrations (§5): the paper ships MOCC as one library bound to two
// datapaths — user-space UDT (the shim-helper queries MOCC every monitor interval) and
// kernel-space CCP (congestion control outside the datapath: feedback is aggregated and
// delivered to the algorithm less frequently). The two shims below reproduce exactly that
// mechanical difference — per-tick inference vs. batched, decoupled feedback — which is
// what drives the CPU-overhead gap of Figure 17.
#ifndef MOCC_SRC_CORE_DATAPATH_H_
#define MOCC_SRC_CORE_DATAPATH_H_

#include <memory>
#include <string>

#include "src/core/mocc_api.h"
#include "src/netsim/cc_interface.h"

namespace mocc {

// A datapath shim receives one network tick per monitor interval (from the transport)
// and is responsible for invoking the congestion-control logic.
class DatapathShim {
 public:
  virtual ~DatapathShim() = default;

  virtual std::string Name() const = 0;

  // Called by the transport once per monitor interval.
  virtual void OnNetworkTick(const MonitorReport& report) = 0;

  // Current sending rate decided by the CC logic behind the shim.
  virtual double SendingRateBps() const = 0;

  // How many times the (expensive) control logic actually ran.
  virtual int64_t control_invocations() const = 0;
};

// User-space (UDT-style) integration: the shim-helper calls into MOCC on every tick —
// one model inference per monitor interval, like Aurora's deployment.
class UdtShimDatapath : public DatapathShim {
 public:
  explicit UdtShimDatapath(std::shared_ptr<MoccApi> api);

  std::string Name() const override { return "MOCC-UDT (user-space)"; }
  void OnNetworkTick(const MonitorReport& report) override;
  double SendingRateBps() const override;
  int64_t control_invocations() const override;

 private:
  std::shared_ptr<MoccApi> api_;
};

// Kernel-space (CCP-style) integration: the datapath aggregates `batch_size` intervals
// of feedback and reports once, so the algorithm (and its inference cost) runs
// batch_size times less often while the datapath keeps transmitting at the last rate.
class CcpShimDatapath : public DatapathShim {
 public:
  CcpShimDatapath(std::shared_ptr<MoccApi> api, int batch_size = 4);

  std::string Name() const override { return "MOCC-Kernel (CCP)"; }
  void OnNetworkTick(const MonitorReport& report) override;
  double SendingRateBps() const override;
  int64_t control_invocations() const override;

  // Merges `count` accumulated reports into one aggregate report (throughput and RTT
  // averaged over the covered span, counters summed).
  static MonitorReport AggregateReports(const MonitorReport* reports, int count);

 private:
  std::shared_ptr<MoccApi> api_;
  int batch_size_;
  std::vector<MonitorReport> pending_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_DATAPATH_H_
