// Model sharing (§7, "Model sharing and Federated learning"): the paper's future-work
// direction where devices that already adapted to an application share their models to
// cut adaptation time elsewhere. This module implements the federated-averaging
// primitive: parameter-space averaging of same-architecture PreferenceActorCritic
// models, optionally weighted by how much experience each contributor accumulated.
#ifndef MOCC_SRC_CORE_MODEL_SHARING_H_
#define MOCC_SRC_CORE_MODEL_SHARING_H_

#include <memory>
#include <vector>

#include "src/core/preference_model.h"

namespace mocc {

// One contribution to a federated round.
struct ModelContribution {
  std::shared_ptr<PreferenceActorCritic> model;
  // Relative amount of experience behind this model (e.g. training iterations or
  // samples). Must be > 0.
  double experience_weight = 1.0;
};

// Returns the experience-weighted parameter average of the contributions. All models
// must share the architecture of `config`. Returns nullptr on empty input or
// architecture mismatch. Averaging in parameter space is the FedAvg primitive; it is
// meaningful here because all contributors descend from a common offline base model
// (fine-tuned copies stay in the same loss basin).
std::shared_ptr<PreferenceActorCritic> FederatedAverage(
    const std::vector<ModelContribution>& contributions, const MoccConfig& config);

// Blends `update` into `base` with mixing factor tau in [0,1] (tau = 1 adopts the
// update entirely). In-place on `base`. Returns false on architecture mismatch.
bool BlendModel(PreferenceActorCritic* base, const PreferenceActorCritic& update,
                double tau);

}  // namespace mocc

#endif  // MOCC_SRC_CORE_MODEL_SHARING_H_
