#include "src/core/model_sharing.h"

#include <algorithm>

namespace mocc {

std::shared_ptr<PreferenceActorCritic> FederatedAverage(
    const std::vector<ModelContribution>& contributions, const MoccConfig& config) {
  if (contributions.empty()) {
    return nullptr;
  }
  double total_weight = 0.0;
  for (const auto& c : contributions) {
    if (c.model == nullptr || c.model->obs_dim() != config.ObsDim() ||
        c.experience_weight <= 0.0) {
      return nullptr;
    }
    total_weight += c.experience_weight;
  }

  Rng scratch(1);
  auto average = std::make_shared<PreferenceActorCritic>(config, &scratch);
  auto dst = average->Params();
  // Zero the destination, then accumulate weighted contributions.
  for (auto& p : dst) {
    p.value->Fill(0.0);
  }
  for (const auto& c : contributions) {
    auto src = c.model->Params();
    if (src.size() != dst.size()) {
      return nullptr;
    }
    const double w = c.experience_weight / total_weight;
    for (size_t i = 0; i < src.size(); ++i) {
      if (src[i].value->size() != dst[i].value->size()) {
        return nullptr;
      }
      AddScaled(dst[i].value, *src[i].value, w);
    }
  }
  average->InvalidatePnCache();
  return average;
}

bool BlendModel(PreferenceActorCritic* base, const PreferenceActorCritic& update,
                double tau) {
  if (base == nullptr || base->obs_dim() != update.obs_dim()) {
    return false;
  }
  tau = std::clamp(tau, 0.0, 1.0);
  auto dst = base->Params();
  auto src = const_cast<PreferenceActorCritic&>(update).Params();
  if (dst.size() != src.size()) {
    return false;
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].value->size() != src[i].value->size()) {
      return false;
    }
    double* d = dst[i].value->data();
    const double* s = src[i].value->data();
    for (size_t k = 0; k < dst[i].value->size(); ++k) {
      d[k] = (1.0 - tau) * d[k] + tau * s[k];
    }
  }
  // In-place parameter mutation outside the training loop: drop cached PN features.
  base->InvalidatePnCache();
  return true;
}

}  // namespace mocc
