// Online adaptation with requirement replay (§4.3): starting from the offline-trained
// correlation model, MOCC adapts to a new (possibly unforeseen) objective with a few PPO
// iterations — transfer learning — while every step ALSO optimizes a uniformly sampled
// previously-seen objective, per the Eq. (6) loss
//     L_online(θ) = ½ [ L_CLIP+E(θ, w_new) + L_CLIP+E(θ, w_old) ],
// so adapting to new applications does not make the model forget old ones.
#ifndef MOCC_SRC_CORE_ONLINE_ADAPTER_H_
#define MOCC_SRC_CORE_ONLINE_ADAPTER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/envs/cc_env.h"
#include "src/rl/ppo.h"

namespace mocc {

struct OnlineAdaptConfig {
  MoccConfig mocc;
  // Rollout per online iteration; smaller than offline since reactions must be fast.
  int rollout_steps = 512;
  // Maximum stored past requirements (uniform eviction beyond this).
  size_t replay_pool_max = 256;
  // Ablation switch: false disables requirement replay (plain fine-tuning), which
  // reproduces the catastrophic-forgetting behaviour of Figure 7b's Aurora curve.
  bool enable_replay = true;
  uint64_t seed = 11;
};

class OnlineAdapter {
 public:
  // `model` and `env` must outlive the adapter. The PPO trainer starts past the entropy
  // decay horizon so online exploration noise is low.
  OnlineAdapter(PreferenceActorCritic* model, CcEnv* env, const OnlineAdaptConfig& config);

  // Records an application requirement in the replay pool (deduplicated).
  void RememberObjective(const WeightVector& w);

  // One online adaptation iteration for `current`: collects a rollout under the current
  // objective and (if replay is enabled and the pool has another entry) one under a
  // sampled old objective, then applies the joint Eq. (6) update. `current` is also
  // remembered. Returns the PPO statistics of the joint update.
  PpoStats AdaptIteration(const WeightVector& current);

  const std::vector<WeightVector>& replay_pool() const { return replay_pool_; }
  PpoTrainer& ppo() { return ppo_; }

 private:
  PreferenceActorCritic* model_;
  CcEnv* env_;
  OnlineAdaptConfig config_;
  PpoTrainer ppo_;
  Rng rng_;
  std::vector<WeightVector> replay_pool_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_ONLINE_ADAPTER_H_
