#include "src/core/weight_mapper.h"

#include <algorithm>
#include <cassert>

#include "src/core/mocc_api.h"
#include "src/core/objective_space.h"
#include "src/netsim/fluid_link.h"

namespace mocc {
namespace {

struct CandidateOutcome {
  double throughput_bps = 0.0;
  double added_delay_s = 0.0;
  double loss_rate = 0.0;
};

CandidateOutcome Evaluate(std::shared_ptr<PreferenceActorCritic> model,
                          const WeightVector& w, const LinkParams& link, int intervals,
                          uint64_t seed) {
  MoccApi::Options options;
  options.config = model->config();
  options.initial_rate_bps = std::max(2e6, 0.15 * link.bandwidth_bps);
  MoccApi api(model, options);
  api.Register(w);
  FluidLink sim(link, seed);
  CandidateOutcome outcome;
  int measured = 0;
  for (int t = 0; t < intervals; ++t) {
    const MonitorReport report = sim.Step(api.GetSendingRate(), link.BaseRttS());
    api.ReportStatus(report);
    if (t >= intervals / 2) {  // steady-state half
      outcome.throughput_bps += report.throughput_bps;
      outcome.added_delay_s += std::max(0.0, report.avg_rtt_s - link.BaseRttS());
      outcome.loss_rate += report.loss_rate;
      ++measured;
    }
  }
  if (measured > 0) {
    outcome.throughput_bps /= measured;
    outcome.added_delay_s /= measured;
    outcome.loss_rate /= measured;
  }
  return outcome;
}

// Violation is 0 when the requirement is met; otherwise the relative shortfall.
double Violation(const AppRequirements& req, const CandidateOutcome& o) {
  double v = 0.0;
  if (req.min_throughput_bps > 0.0 && o.throughput_bps < req.min_throughput_bps) {
    v += (req.min_throughput_bps - o.throughput_bps) / req.min_throughput_bps;
  }
  if (req.max_added_delay_s > 0.0 && o.added_delay_s > req.max_added_delay_s) {
    v += (o.added_delay_s - req.max_added_delay_s) / req.max_added_delay_s;
  }
  if (req.max_loss_rate > 0.0 && o.loss_rate > req.max_loss_rate) {
    v += (o.loss_rate - req.max_loss_rate) / std::max(1e-6, req.max_loss_rate);
  }
  return v;
}

// Margin rewards headroom beyond the requirements (used to break feasible ties).
double Margin(const AppRequirements& req, const CandidateOutcome& o,
              const LinkParams& link) {
  double m = 0.0;
  if (req.min_throughput_bps > 0.0) {
    m += (o.throughput_bps - req.min_throughput_bps) / link.bandwidth_bps;
  }
  if (req.max_added_delay_s > 0.0) {
    m += (req.max_added_delay_s - o.added_delay_s) / req.max_added_delay_s;
  }
  if (req.max_loss_rate > 0.0) {
    m += (req.max_loss_rate - o.loss_rate) / std::max(1e-6, req.max_loss_rate);
  }
  return m;
}

}  // namespace

WeightSuggestion SuggestWeights(std::shared_ptr<PreferenceActorCritic> model,
                                const AppRequirements& requirements,
                                const LinkParams& reference_link,
                                const WeightMapperConfig& config) {
  assert(model != nullptr);
  const std::vector<WeightVector> candidates = GenerateWeightGrid(config.grid_divisor);

  WeightSuggestion best;
  double best_violation = 1e18;
  double best_margin = -1e18;
  for (const WeightVector& w : candidates) {
    const CandidateOutcome outcome =
        Evaluate(model, w, reference_link, config.eval_intervals, config.seed);
    const double violation = Violation(requirements, outcome);
    const double margin = Margin(requirements, outcome, reference_link);
    const bool better = violation < best_violation - 1e-12 ||
                        (violation <= best_violation + 1e-12 && margin > best_margin);
    if (better) {
      best_violation = violation;
      best_margin = margin;
      best.weights = w;
      best.throughput_bps = outcome.throughput_bps;
      best.added_delay_s = outcome.added_delay_s;
      best.loss_rate = outcome.loss_rate;
      best.feasible = violation <= 1e-12;
    }
  }
  return best;
}

}  // namespace mocc
