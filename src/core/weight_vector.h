// Application requirement vector w⃗ = <w_thr, w_lat, w_loss> (§4.1): the relative weights
// of throughput, latency and loss that an application registers with MOCC. Weights live on
// the open probability simplex (w_i ∈ (0,1), Σw_i = 1). Header-only so the environment
// layer can use it without a link-time dependency on the core library.
#ifndef MOCC_SRC_CORE_WEIGHT_VECTOR_H_
#define MOCC_SRC_CORE_WEIGHT_VECTOR_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>
#include <sstream>
#include <string>

namespace mocc {

struct WeightVector {
  double thr = 1.0 / 3.0;
  double lat = 1.0 / 3.0;
  double loss = 1.0 / 3.0;

  constexpr WeightVector() = default;
  constexpr WeightVector(double w_thr, double w_lat, double w_loss)
      : thr(w_thr), lat(w_lat), loss(w_loss) {}

  // True iff all weights are strictly inside (0,1) and sum to 1 (within tolerance).
  bool IsValid(double tol = 1e-6) const {
    const double sum = thr + lat + loss;
    return thr > 0.0 && lat > 0.0 && loss > 0.0 && thr < 1.0 && lat < 1.0 && loss < 1.0 &&
           std::abs(sum - 1.0) <= tol;
  }

  // Projects onto the open simplex: clamps each weight to at least `floor` and rescales
  // to sum 1. Used to sanitize user-supplied vectors such as the paper's <1,0,0> bulk
  // transfer preference. The default floor keeps requirements inside the region covered
  // by the landmark-objective grid (whose minimum component is 1/divisor), where the
  // preference sub-network is trained rather than extrapolating.
  WeightVector Sanitized(double floor = 0.05) const {
    double t = std::max(thr, floor);
    double l = std::max(lat, floor);
    double s = std::max(loss, floor);
    const double sum = t + l + s;
    return WeightVector(t / sum, l / sum, s / sum);
  }

  std::array<double, 3> ToArray() const { return {thr, lat, loss}; }

  double L1DistanceTo(const WeightVector& other) const {
    return std::abs(thr - other.thr) + std::abs(lat - other.lat) + std::abs(loss - other.loss);
  }

  bool AlmostEquals(const WeightVector& other, double tol = 1e-9) const {
    return L1DistanceTo(other) <= tol;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "<" << thr << "," << lat << "," << loss << ">";
    return os.str();
  }

  friend std::ostream& operator<<(std::ostream& os, const WeightVector& w) {
    return os << w.ToString();
  }
};

// The paper's canonical example objectives.
inline WeightVector ThroughputObjective() { return {0.8, 0.1, 0.1}; }   // Fig 5a-d, video
inline WeightVector LatencyObjective() { return {0.1, 0.8, 0.1}; }      // Fig 5e-h
inline WeightVector RtcObjective() { return {0.4, 0.5, 0.1}; }          // Fig 9
inline WeightVector BalancedObjective() { return {1.0 / 3, 1.0 / 3, 1.0 / 3}; }

}  // namespace mocc

#endif  // MOCC_SRC_CORE_WEIGHT_VECTOR_H_
