// Application requirement vector w⃗ = <w_thr, w_lat, w_loss> (§4.1): the relative weights
// of throughput, latency and loss that an application registers with MOCC. Weights live on
// the open probability simplex (w_i ∈ (0,1), Σw_i = 1). Header-only so the environment
// layer can use it without a link-time dependency on the core library.
#ifndef MOCC_SRC_CORE_WEIGHT_VECTOR_H_
#define MOCC_SRC_CORE_WEIGHT_VECTOR_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace mocc {

// The trained preference region's floor: every weight component the system accepts at
// runtime must be at least this large. The landmark-objective grid that offline
// training visits has minimum component 1/divisor (0.1 at the default divisor 10), so
// below ~0.05 the preference sub-network extrapolates instead of interpolating.
// Sanitized() projects onto this region; user entry points (--weights/--objectives
// parsing) REJECT vectors outside it instead of silently clamping, so an application
// never believes it registered <1,0,0> while the policy actually serves <0.9,0.05,0.05>.
inline constexpr double kWeightVectorFloor = 0.05;

struct WeightVector {
  double thr = 1.0 / 3.0;
  double lat = 1.0 / 3.0;
  double loss = 1.0 / 3.0;

  constexpr WeightVector() = default;
  constexpr WeightVector(double w_thr, double w_lat, double w_loss)
      : thr(w_thr), lat(w_lat), loss(w_loss) {}

  // True iff all weights are strictly inside (0,1) and sum to 1 (within tolerance).
  bool IsValid(double tol = 1e-6) const {
    const double sum = thr + lat + loss;
    return thr > 0.0 && lat > 0.0 && loss > 0.0 && thr < 1.0 && lat < 1.0 && loss < 1.0 &&
           std::abs(sum - 1.0) <= tol;
  }

  // True iff the vector is a valid simplex point with every component at least `floor`
  // (within tolerance) — i.e. inside the trained preference region. This is the
  // predicate user entry points assert before accepting a weight vector.
  bool IsWithinFloor(double floor = kWeightVectorFloor, double tol = 1e-9) const {
    return IsValid() && thr >= floor - tol && lat >= floor - tol && loss >= floor - tol;
  }

  // Projects onto the open simplex: clamps each weight to at least `floor` and rescales
  // to sum 1. Used to sanitize user-supplied vectors such as the paper's <1,0,0> bulk
  // transfer preference. The default floor keeps requirements inside the region covered
  // by the landmark-objective grid (whose minimum component is 1/divisor), where the
  // preference sub-network is trained rather than extrapolating. Library-internal
  // call sites sanitize; user-facing parsers reject instead (see ParseWeightVector).
  WeightVector Sanitized(double floor = kWeightVectorFloor) const {
    double t = std::max(thr, floor);
    double l = std::max(lat, floor);
    double s = std::max(loss, floor);
    const double sum = t + l + s;
    const WeightVector projected(t / sum, l / sum, s / sum);
    if (projected.thr >= floor && projected.lat >= floor && projected.loss >= floor) {
      // The historical one-pass projection — bit-identical whenever it already lands
      // inside the region (every weight the catalog or the landmark grid produces).
      return projected;
    }
    // A component pinned at the floor was diluted below it by the rescale (e.g.
    // <1,0,0> -> <0.909,0.045,0.045>). Distribute only the free mass above the floor
    // instead: pinned components sit exactly at the floor, so the result is always
    // within the region IsWithinFloor accepts.
    const double excess_t = std::max(thr - floor, 0.0);
    const double excess_l = std::max(lat - floor, 0.0);
    const double excess_s = std::max(loss - floor, 0.0);
    const double excess_sum = excess_t + excess_l + excess_s;
    if (excess_sum <= 0.0) {
      return WeightVector(1.0 / 3, 1.0 / 3, 1.0 / 3);
    }
    const double free = 1.0 - 3.0 * floor;
    return WeightVector(floor + free * excess_t / excess_sum,
                        floor + free * excess_l / excess_sum,
                        floor + free * excess_s / excess_sum);
  }

  std::array<double, 3> ToArray() const { return {thr, lat, loss}; }

  double L1DistanceTo(const WeightVector& other) const {
    return std::abs(thr - other.thr) + std::abs(lat - other.lat) + std::abs(loss - other.loss);
  }

  bool AlmostEquals(const WeightVector& other, double tol = 1e-9) const {
    return L1DistanceTo(other) <= tol;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "<" << thr << "," << lat << "," << loss << ">";
    return os.str();
  }

  friend std::ostream& operator<<(std::ostream& os, const WeightVector& w) {
    return os << w.ToString();
  }
};

// The paper's canonical example objectives.
inline WeightVector ThroughputObjective() { return {0.8, 0.1, 0.1}; }   // Fig 5a-d, video
inline WeightVector LatencyObjective() { return {0.1, 0.8, 0.1}; }      // Fig 5e-h
inline WeightVector RtcObjective() { return {0.4, 0.5, 0.1}; }          // Fig 9
inline WeightVector BalancedObjective() { return {1.0 / 3, 1.0 / 3, 1.0 / 3}; }

// Uniform draw over the floored simplex {w : w_i >= floor, Σ w_i = 1}: a stick-breaking
// uniform sample on the unit simplex mapped affinely into the floored region, so every
// sampled requirement stays inside the trained preference region. Exactly two rng draws
// in fixed order — per-episode objective sampling's reproducibility (and the thread-pool
// bit-identity contract above it) depends on the draw count being schedule-independent.
// Templated on the generator so this header stays link-free of src/common.
template <typename RngT>
WeightVector SampleWeightVector(RngT* rng, double floor = kWeightVectorFloor) {
  double a = rng->Uniform(0.0, 1.0);
  double b = rng->Uniform(0.0, 1.0);
  if (a > b) {
    std::swap(a, b);
  }
  const double scale = 1.0 - 3.0 * floor;
  return WeightVector(floor + scale * a, floor + scale * (b - a),
                      floor + scale * (1.0 - b));
}

// Strict parsing of a user-supplied "T,L,S" weight triple. Returns false and fills
// *error (when non-null) if the text is malformed, the weights do not sum to 1, or any
// component is below the floor — the entry-point contract is to REJECT out-of-region
// requirements with an actionable message rather than silently projecting them (the
// policy would otherwise serve a different objective than the one the user asked for).
inline bool ParseWeightVector(const std::string& text, WeightVector* out,
                              std::string* error, double floor = kWeightVectorFloor) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  std::istringstream in(text);
  double t = 0.0;
  double l = 0.0;
  double s = 0.0;
  char c1 = 0;
  char c2 = 0;
  if (!(in >> t >> c1 >> l >> c2 >> s) || c1 != ',' || c2 != ',' ||
      !(in >> std::ws).eof()) {
    return fail("'" + text + "' is not a T,L,S weight triple");
  }
  const WeightVector w(t, l, s);
  const double sum = t + l + s;
  if (std::abs(sum - 1.0) > 1e-6) {
    std::ostringstream os;
    os << "weights " << w << " sum to " << sum << ", not 1";
    return fail(os.str());
  }
  if (!w.IsWithinFloor(floor)) {
    std::ostringstream os;
    os << "weights " << w << " leave the trained preference region (every component "
       << "must be >= " << floor << "); pick weights inside it, e.g. <0.9,0.05,0.05> "
       << "instead of <1,0,0>";
    return fail(os.str());
  }
  if (out != nullptr) {
    *out = w;
  }
  return true;
}

}  // namespace mocc

#endif  // MOCC_SRC_CORE_WEIGHT_VECTOR_H_
