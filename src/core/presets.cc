#include "src/core/presets.h"

namespace mocc {

OfflineTrainConfig QuickOfflinePreset(uint64_t seed) {
  OfflineTrainConfig config;
  config.seed = seed;
  config.bootstrap_iterations = 50;
  config.traversal_iterations_per_objective = 1;
  config.traversal_rounds = 2;
  config.entropy_start = 0.02;
  return config;
}

OfflineTrainConfig StandardOfflinePreset(uint64_t seed) {
  OfflineTrainConfig config;
  config.seed = seed;
  config.bootstrap_iterations = 100;
  config.traversal_iterations_per_objective = 1;
  config.traversal_rounds = 3;
  config.entropy_start = 0.02;
  return config;
}

std::shared_ptr<PreferenceActorCritic> GetOrTrainBaseModel(ModelZoo* zoo,
                                                           const std::string& key,
                                                           const OfflineTrainConfig& config) {
  return zoo->GetOrTrainMocc(key, config.mocc, [&]() {
    Rng rng(config.seed);
    auto model = std::make_shared<PreferenceActorCritic>(config.mocc, &rng);
    OfflineTrainer trainer(model.get(), config);
    trainer.TrainTwoPhase();
    return model;
  });
}

}  // namespace mocc
