#include "src/core/online_adapter.h"

#include <cassert>

namespace mocc {
namespace {

PpoConfig MakeOnlinePpoConfig(const OnlineAdaptConfig& config) {
  PpoConfig ppo = config.mocc.MakePpoConfig(config.seed);
  ppo.rollout_steps = config.rollout_steps;
  return ppo;
}

}  // namespace

OnlineAdapter::OnlineAdapter(PreferenceActorCritic* model, CcEnv* env,
                             const OnlineAdaptConfig& config)
    : model_(model),
      env_(env),
      config_(config),
      ppo_(model, MakeOnlinePpoConfig(config)),
      rng_(config.seed) {
  assert(model_ != nullptr && env_ != nullptr);
  // Online adaptation runs with the post-decay entropy coefficient: the offline model
  // already explored; online we refine.
  ppo_.set_iteration(ppo_.config().entropy_decay_iters);
}

void OnlineAdapter::RememberObjective(const WeightVector& w) {
  const WeightVector sanitized = w.Sanitized();
  for (const auto& existing : replay_pool_) {
    if (existing.AlmostEquals(sanitized, 1e-6)) {
      return;
    }
  }
  if (replay_pool_.size() >= config_.replay_pool_max) {
    // Uniform eviction keeps the pool an unbiased sample of history.
    const size_t victim = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(replay_pool_.size()) - 1));
    replay_pool_[victim] = sanitized;
    return;
  }
  replay_pool_.push_back(sanitized);
}

PpoStats OnlineAdapter::AdaptIteration(const WeightVector& current) {
  const WeightVector w_new = current.Sanitized();

  env_->SetObjective(w_new);
  RolloutBuffer new_buffer = ppo_.CollectRollout(env_, config_.rollout_steps);

  const WeightVector* w_old = nullptr;
  if (config_.enable_replay && !replay_pool_.empty()) {
    // Draw uniformly from stored requirements, skipping an exact match with w_new when
    // an alternative exists.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const size_t pick = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(replay_pool_.size()) - 1));
      if (!replay_pool_[pick].AlmostEquals(w_new, 1e-6) || replay_pool_.size() == 1) {
        w_old = &replay_pool_[pick];
        break;
      }
    }
  }

  PpoStats stats;
  if (w_old != nullptr) {
    env_->SetObjective(*w_old);
    RolloutBuffer old_buffer = ppo_.CollectRollout(env_, config_.rollout_steps);
    stats = ppo_.Update({&new_buffer, &old_buffer});
  } else {
    stats = ppo_.Update({&new_buffer});
  }
  RememberObjective(w_new);
  return stats;
}

}  // namespace mocc
