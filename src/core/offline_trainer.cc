#include "src/core/offline_trainer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <sstream>

#include "src/common/serialization.h"

namespace mocc {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr char kCheckpointMagic[] = "MOCCCKPT";
constexpr uint32_t kCheckpointVersion = 1;

}  // namespace

int OfflineTrainConfig::PlannedIterations() const {
  const int landmarks = ObjectiveGridSize(mocc.landmark_step_divisor);
  return bootstrap_iterations +
         traversal_rounds * traversal_iterations_per_objective * landmarks;
}

OfflineTrainer::OfflineTrainer(PreferenceActorCritic* model, const OfflineTrainConfig& config)
    : model_(model),
      config_(config),
      landmarks_(GenerateWeightGrid(config.mocc.landmark_step_divisor)),
      graph_(landmarks_, config.mocc.landmark_step_divisor),
      ppo_(model,
           [&config] {
             PpoConfig ppo = config.mocc.MakePpoConfig(config.seed);
             ppo.entropy_start = config.entropy_start;
             ppo.entropy_end = config.entropy_end;
             ppo.entropy_decay_iters = std::max(1, config.PlannedIterations());
             return ppo;
           }()),
      mix_rng_(config.seed * 31 + 5) {
  assert(model_ != nullptr);
  const int n_envs = std::max(1, config_.parallel_envs);
  if (config_.scenarios.empty()) {
    for (int i = 0; i < n_envs; ++i) {
      envs_.push_back(std::make_unique<CcEnv>(config_.mocc.MakeEnvConfig(),
                                              config_.seed * 977 + 13 * i + 1));
    }
    return;
  }
  // Scenario-sampled training: slot i runs scenarios[i % S]; every slot gets its own
  // deterministic seed so collection is reproducible in any execution order. At least
  // one slot per scenario, so a scenario list longer than parallel_envs is never
  // silently truncated.
  const int n_slots =
      std::max(n_envs, static_cast<int>(config_.scenarios.size()));
  for (int i = 0; i < n_slots; ++i) {
    const Scenario& scenario =
        config_.scenarios[static_cast<size_t>(i) % config_.scenarios.size()];
    const uint64_t seed = config_.seed * 977 + 13 * i + 1;
    EnvSlot slot;
    if (scenario.IsMultiFlow()) {
      multi_envs_.push_back(
          scenario.MakeMultiFlowEnv(config_.mocc.MakeEnvConfig(), seed));
      slot.multi = multi_envs_.back().get();
    } else {
      envs_.push_back(scenario.MakeSingleFlowEnv(config_.mocc.MakeEnvConfig(), seed));
      slot.single = envs_.back().get();
    }
    slots_.push_back(slot);
  }
}

void OfflineTrainer::SetSlotObjective(const EnvSlot& slot, const WeightVector& w) {
  if (slot.multi != nullptr) {
    // Heterogeneous-objective scenarios own their per-agent weights: fixed mixes and
    // per-episode samples are re-applied on every Reset (the first thing rollout
    // collection does), so assigning the traversal objective here would only be
    // overridden — and would corrupt agent_objective() introspection in between.
    // Switch-only plans keep the traversal objective as the episode base and overlay
    // the scheduled change mid-episode.
    if (!slot.multi->config().objectives.OverridesEpisodeWeights()) {
      slot.multi->SetObjective(w);
    }
  } else {
    slot.single->SetObjective(w);
  }
}

PpoStats OfflineTrainer::RunScenarioIteration(const std::vector<WeightVector>& objectives) {
  assert(!objectives.empty());
  // Every objective in the batch must be collected (the legacy single-env path loops
  // over all of them; dropping the tail would e.g. disable the traversal phase's
  // retention mixing). With fewer slots than objectives, collection runs in waves —
  // each wave re-assigns objectives round-robin and collects all slots in parallel —
  // and one joint update consumes every wave's buffers.
  std::vector<PpoTrainer::RolloutSource> sources;
  sources.reserve(slots_.size());
  int trajectories_per_wave = 0;
  for (const EnvSlot& slot : slots_) {
    PpoTrainer::RolloutSource source;
    if (slot.multi != nullptr) {
      source.vec = slot.multi;
      trajectories_per_wave += slot.multi->NumAgents();
    } else {
      source.env = slot.single;
      trajectories_per_wave += 1;
    }
    sources.push_back(source);
  }
  const size_t waves =
      (objectives.size() + slots_.size() - 1) / slots_.size();  // ceil
  const int steps_each =
      std::max(64, ppo_.config().rollout_steps /
                       std::max(1, static_cast<int>(waves) * trajectories_per_wave));
  std::vector<RolloutBuffer> buffers;
  for (size_t wave = 0; wave < waves; ++wave) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      SetSlotObjective(slots_[i],
                       objectives[(wave * slots_.size() + i) % objectives.size()]);
    }
    std::vector<RolloutBuffer> wave_buffers =
        ppo_.CollectSourcesParallel(sources, steps_each);
    for (RolloutBuffer& buffer : wave_buffers) {
      buffers.push_back(std::move(buffer));
    }
  }
  std::vector<const RolloutBuffer*> ptrs;
  ptrs.reserve(buffers.size());
  for (const auto& b : buffers) {
    ptrs.push_back(&b);
  }
  return ppo_.Update(ptrs);
}

PpoStats OfflineTrainer::RunIteration(const std::vector<WeightVector>& objectives) {
  assert(!objectives.empty());
  if (!slots_.empty()) {
    return RunScenarioIteration(objectives);
  }
  const int total_steps = ppo_.config().rollout_steps;
  if (envs_.size() == 1) {
    const int steps_each =
        std::max(64, total_steps / static_cast<int>(objectives.size()));
    std::vector<RolloutBuffer> buffers;
    buffers.reserve(objectives.size());
    for (const WeightVector& w : objectives) {
      envs_[0]->SetObjective(w);
      buffers.push_back(ppo_.CollectRollout(envs_[0].get(), steps_each));
    }
    std::vector<const RolloutBuffer*> ptrs;
    for (const auto& b : buffers) {
      ptrs.push_back(&b);
    }
    return ppo_.Update(ptrs);
  }
  // Parallel rollout collection: objectives are assigned to environments round-robin.
  std::vector<Env*> raw;
  raw.reserve(envs_.size());
  for (size_t i = 0; i < envs_.size(); ++i) {
    envs_[i]->SetObjective(objectives[i % objectives.size()]);
    raw.push_back(envs_[i].get());
  }
  const int steps_each = std::max(64, total_steps / static_cast<int>(envs_.size()));
  std::vector<RolloutBuffer> buffers = ppo_.CollectRolloutsParallel(raw, steps_each);
  std::vector<const RolloutBuffer*> ptrs;
  for (const auto& b : buffers) {
    ptrs.push_back(&b);
  }
  return ppo_.Update(ptrs);
}

std::string OfflineTrainer::SerializeTrainerBlob(const OfflineTrainResult& result) const {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kCheckpointMagic, kCheckpointVersion);
  // Config fingerprint: a checkpoint only resumes the exact schedule it was taken
  // from — anything that changes the iteration sequence or env/Rng streams.
  w.WriteU64(config_.seed);
  w.WriteI64(config_.bootstrap_iterations);
  w.WriteI64(config_.traversal_iterations_per_objective);
  w.WriteI64(config_.traversal_rounds);
  w.WriteI64(config_.traversal_mix_objectives);
  w.WriteI64(config_.parallel_envs);
  w.WriteU64(landmarks_.size());
  w.WriteU64(config_.scenarios.size());
  for (const Scenario& scenario : config_.scenarios) {
    w.WriteString(scenario.name);
  }
  w.WriteI64(result.total_iterations);
  w.WriteI64(ppo_.iteration());
  w.WriteDoubleVector(result.reward_curve);
  w.WriteI64(result.watchdog_rollbacks);
  ppo_.rng().Serialize(&w);
  mix_rng_.Serialize(&w);
  model_->Serialize(&w);
  ppo_.optimizer().Serialize(&w);
  SerializeEnvStates(&w);
  return out.str();
}

bool OfflineTrainer::RestoreTrainerBlob(const std::string& blob, int* start_iteration,
                                        OfflineTrainResult* result) {
  std::istringstream in(blob, std::ios::binary);
  BinaryReader r(in, kCheckpointMagic, kCheckpointVersion);
  if (!r.ok()) {
    return false;
  }
  bool fingerprint_ok = r.ReadU64() == config_.seed;
  fingerprint_ok &= r.ReadI64() == config_.bootstrap_iterations;
  fingerprint_ok &= r.ReadI64() == config_.traversal_iterations_per_objective;
  fingerprint_ok &= r.ReadI64() == config_.traversal_rounds;
  fingerprint_ok &= r.ReadI64() == config_.traversal_mix_objectives;
  fingerprint_ok &= r.ReadI64() == config_.parallel_envs;
  fingerprint_ok &= r.ReadU64() == landmarks_.size();
  const uint64_t scenario_count = r.ReadU64();
  if (!r.ok() || !fingerprint_ok || scenario_count != config_.scenarios.size()) {
    return false;
  }
  for (const Scenario& scenario : config_.scenarios) {
    if (r.ReadString() != scenario.name) {
      return false;
    }
  }
  const int64_t completed = r.ReadI64();
  const int64_t ppo_iteration = r.ReadI64();
  std::vector<double> curve = r.ReadDoubleVector();
  const int64_t rollbacks = r.ReadI64();
  if (!r.ok() || completed < 0 ||
      curve.size() != static_cast<size_t>(completed)) {
    return false;
  }
  if (!ppo_.mutable_rng()->Deserialize(&r) || !mix_rng_.Deserialize(&r) ||
      !model_->Deserialize(&r) || !ppo_.mutable_optimizer()->Deserialize(&r) ||
      !DeserializeEnvStates(&r) || !r.ok()) {
    return false;
  }
  ppo_.set_iteration(static_cast<int>(ppo_iteration));
  *start_iteration = static_cast<int>(completed);
  result->reward_curve = std::move(curve);
  result->total_iterations = static_cast<int>(completed);
  result->watchdog_rollbacks = static_cast<int>(rollbacks);
  return true;
}

bool OfflineTrainer::WriteCheckpoint(const OfflineTrainResult& result) const {
  return AtomicWriteFile(config_.checkpoint_path, SerializeTrainerBlob(result));
}

void OfflineTrainer::SerializeEnvStates(BinaryWriter* w) const {
  if (!slots_.empty()) {
    w->WriteU64(slots_.size());
    for (const EnvSlot& slot : slots_) {
      if (slot.single != nullptr) {
        slot.single->SerializeState(w);
      } else {
        slot.multi->SerializeState(w);
      }
    }
    return;
  }
  w->WriteU64(envs_.size());
  for (const auto& env : envs_) {
    env->SerializeState(w);
  }
}

bool OfflineTrainer::DeserializeEnvStates(BinaryReader* r) {
  const uint64_t n = r->ReadU64();
  if (!slots_.empty()) {
    if (n != slots_.size()) {
      return false;
    }
    for (EnvSlot& slot : slots_) {
      const bool ok = slot.single != nullptr ? slot.single->DeserializeState(r)
                                             : slot.multi->DeserializeState(r);
      if (!ok) {
        return false;
      }
    }
    return r->ok();
  }
  if (n != envs_.size()) {
    return false;
  }
  for (auto& env : envs_) {
    if (!env->DeserializeState(r)) {
      return false;
    }
  }
  return r->ok();
}

bool OfflineTrainer::IterationHealthy(const PpoStats& stats) {
  if (!std::isfinite(stats.mean_step_reward) || !std::isfinite(stats.policy_loss) ||
      !std::isfinite(stats.value_loss) || !std::isfinite(stats.entropy) ||
      !std::isfinite(stats.approx_kl)) {
    return false;
  }
  if (std::abs(stats.approx_kl) > config_.watchdog_kl_limit) {
    return false;
  }
  for (const ParamRef& param : model_->Params()) {
    for (double v : param.value->storage()) {
      if (!std::isfinite(v)) {
        return false;
      }
    }
  }
  return true;
}

bool OfflineTrainer::ExecuteIteration(const std::vector<WeightVector>& objectives,
                                      OfflineTrainResult* result) {
  // Snapshot taken after the caller's objective-mix draws: a rollback rewinds the
  // attempt (model, optimizer, every Rng stream, env state) but not the batch.
  const std::string snapshot = SerializeTrainerBlob(*result);
  for (int attempt = 0;; ++attempt) {
    PpoStats stats = RunIteration(objectives);
    if (config_.iteration_hook) {
      config_.iteration_hook(result->total_iterations, &stats);
    }
    if (IterationHealthy(stats)) {
      result->reward_curve.push_back(stats.mean_step_reward);
      ++result->total_iterations;
      return true;
    }
    int ignored = 0;
    OfflineTrainResult scratch;
    const bool restored = RestoreTrainerBlob(snapshot, &ignored, &scratch);
    assert(restored);
    (void)restored;
    ++result->watchdog_rollbacks;
    if (attempt + 1 >= std::max(1, config_.max_watchdog_retries)) {
      result->watchdog_failed = true;
      return false;
    }
    // Retry at a compounding backed-off learning rate. The restored Rng streams
    // replay the same rollouts, so the rate is the only knob that changes.
    double lr = ppo_.optimizer().learning_rate();
    for (int a = 0; a <= attempt; ++a) {
      lr *= config_.watchdog_lr_backoff;
    }
    ppo_.set_learning_rate(lr);
  }
}

OfflineTrainResult OfflineTrainer::TrainTwoPhase() {
  OfflineTrainResult result;
  const double t0 = NowSeconds();

  // Resume: restore the checkpoint and replay the schedule's bookkeeping (loop
  // structure, visited lists) without re-running the first start_iteration
  // iterations — the restored Rng streams have already consumed their draws, so
  // the continuation is bit-identical with an uninterrupted run.
  int start_iteration = 0;
  if (config_.resume && !config_.checkpoint_path.empty()) {
    std::string blob;
    if (ReadFile(config_.checkpoint_path, &blob)) {
      if (!RestoreTrainerBlob(blob, &start_iteration, &result)) {
        result.resume_failed = true;
        result.wall_seconds = NowSeconds() - t0;
        return result;
      }
    }
    // Missing checkpoint file: start fresh.
  }
  result.start_iteration = start_iteration;
  // Replaying the schedule re-executes phase-boundary learning-rate changes; put
  // back the checkpointed rate (which may include a watchdog backoff) right
  // before the first live iteration.
  bool pending_lr_restore = start_iteration > 0;
  const double restored_lr = ppo_.optimizer().learning_rate();

  int k = 0;  // global iteration index across both phases
  bool stopped = false;
  auto run_one = [&](const std::vector<WeightVector>& batch) {
    if (pending_lr_restore) {
      ppo_.set_learning_rate(restored_lr);
      pending_lr_restore = false;
    }
    if (!ExecuteIteration(batch, &result)) {
      // Watchdog retries exhausted: state is the last healthy snapshot; persist
      // it so nothing is lost, then stop.
      stopped = true;
      if (!config_.checkpoint_path.empty()) {
        WriteCheckpoint(result);
      }
      return;
    }
    ++k;
    if (config_.interrupt_flag != nullptr && *config_.interrupt_flag != 0) {
      result.interrupted = true;
      stopped = true;
    } else if (config_.stop_after_iterations >= 0 &&
               k >= config_.stop_after_iterations) {
      stopped = true;
    }
    const bool periodic = config_.checkpoint_interval > 0 &&
                          k % config_.checkpoint_interval == 0;
    if (!config_.checkpoint_path.empty() && (periodic || stopped)) {
      WriteCheckpoint(result);
    }
  };

  // Phase 1 — bootstrapping: the pivot objectives are trained jointly to convergence,
  // building the base correlation between requirements and policies.
  for (int i = 0; i < config_.bootstrap_iterations && !stopped; ++i) {
    if (k < start_iteration) {
      ++k;
      continue;
    }
    run_one(config_.bootstrap_objectives);
  }

  // Phase 2 — fast traversing: visit the landmarks a few steps each in the Algorithm-1
  // neighborhood order; each visit transfers from neighboring (already trained)
  // objectives and mixes in previously visited ones to retain them. The phase refines
  // the base model, so it runs at a reduced learning rate.
  if (!stopped) {
    ppo_.set_learning_rate(config_.mocc.learning_rate * config_.traversal_lr_factor);
  }
  result.traversal_order = graph_.SortForTraversal(config_.bootstrap_objectives);
  std::vector<WeightVector> visited = config_.bootstrap_objectives;
  for (int round = 0; round < config_.traversal_rounds && !stopped; ++round) {
    for (int idx : result.traversal_order) {
      const WeightVector& current = landmarks_[static_cast<size_t>(idx)];
      for (int i = 0; i < config_.traversal_iterations_per_objective; ++i) {
        if (k < start_iteration) {
          // Replayed iteration: the restored mix_rng_ already consumed its
          // objective-mix draws, so skip without redrawing.
          ++k;
          continue;
        }
        std::vector<WeightVector> batch = {current};
        for (int m = 0; m < config_.traversal_mix_objectives && !visited.empty(); ++m) {
          batch.push_back(visited[static_cast<size_t>(
              mix_rng_.UniformInt(0, static_cast<int64_t>(visited.size()) - 1))]);
        }
        run_one(batch);
        if (stopped) {
          break;
        }
      }
      visited.push_back(current);
      if (stopped) {
        break;
      }
    }
  }

  if (!stopped) {
    ppo_.set_learning_rate(config_.mocc.learning_rate);
  }
  result.wall_seconds = NowSeconds() - t0;
  return result;
}

OfflineTrainResult OfflineTrainer::TrainIndividually() {
  OfflineTrainResult result;
  const double t0 = NowSeconds();
  // No transfer: every landmark objective receives the full bootstrap budget, mimicking
  // one independent single-objective RL per objective (§6.5, "Individual Training").
  for (const WeightVector& objective : landmarks_) {
    for (int i = 0; i < config_.bootstrap_iterations; ++i) {
      const PpoStats stats = RunIteration({objective});
      result.reward_curve.push_back(stats.mean_step_reward);
      ++result.total_iterations;
    }
  }
  result.wall_seconds = NowSeconds() - t0;
  return result;
}

}  // namespace mocc
