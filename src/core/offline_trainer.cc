#include "src/core/offline_trainer.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace mocc {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int OfflineTrainConfig::PlannedIterations() const {
  const int landmarks = ObjectiveGridSize(mocc.landmark_step_divisor);
  return bootstrap_iterations +
         traversal_rounds * traversal_iterations_per_objective * landmarks;
}

OfflineTrainer::OfflineTrainer(PreferenceActorCritic* model, const OfflineTrainConfig& config)
    : model_(model),
      config_(config),
      landmarks_(GenerateWeightGrid(config.mocc.landmark_step_divisor)),
      graph_(landmarks_, config.mocc.landmark_step_divisor),
      ppo_(model,
           [&config] {
             PpoConfig ppo = config.mocc.MakePpoConfig(config.seed);
             ppo.entropy_start = config.entropy_start;
             ppo.entropy_end = config.entropy_end;
             ppo.entropy_decay_iters = std::max(1, config.PlannedIterations());
             return ppo;
           }()),
      mix_rng_(config.seed * 31 + 5) {
  assert(model_ != nullptr);
  const int n_envs = std::max(1, config_.parallel_envs);
  if (config_.scenarios.empty()) {
    for (int i = 0; i < n_envs; ++i) {
      envs_.push_back(std::make_unique<CcEnv>(config_.mocc.MakeEnvConfig(),
                                              config_.seed * 977 + 13 * i + 1));
    }
    return;
  }
  // Scenario-sampled training: slot i runs scenarios[i % S]; every slot gets its own
  // deterministic seed so collection is reproducible in any execution order. At least
  // one slot per scenario, so a scenario list longer than parallel_envs is never
  // silently truncated.
  const int n_slots =
      std::max(n_envs, static_cast<int>(config_.scenarios.size()));
  for (int i = 0; i < n_slots; ++i) {
    const Scenario& scenario =
        config_.scenarios[static_cast<size_t>(i) % config_.scenarios.size()];
    const uint64_t seed = config_.seed * 977 + 13 * i + 1;
    EnvSlot slot;
    if (scenario.IsMultiFlow()) {
      multi_envs_.push_back(
          scenario.MakeMultiFlowEnv(config_.mocc.MakeEnvConfig(), seed));
      slot.multi = multi_envs_.back().get();
    } else {
      envs_.push_back(scenario.MakeSingleFlowEnv(config_.mocc.MakeEnvConfig(), seed));
      slot.single = envs_.back().get();
    }
    slots_.push_back(slot);
  }
}

void OfflineTrainer::SetSlotObjective(const EnvSlot& slot, const WeightVector& w) {
  if (slot.multi != nullptr) {
    // Heterogeneous-objective scenarios own their per-agent weights: fixed mixes and
    // per-episode samples are re-applied on every Reset (the first thing rollout
    // collection does), so assigning the traversal objective here would only be
    // overridden — and would corrupt agent_objective() introspection in between.
    // Switch-only plans keep the traversal objective as the episode base and overlay
    // the scheduled change mid-episode.
    if (!slot.multi->config().objectives.OverridesEpisodeWeights()) {
      slot.multi->SetObjective(w);
    }
  } else {
    slot.single->SetObjective(w);
  }
}

PpoStats OfflineTrainer::RunScenarioIteration(const std::vector<WeightVector>& objectives) {
  assert(!objectives.empty());
  // Every objective in the batch must be collected (the legacy single-env path loops
  // over all of them; dropping the tail would e.g. disable the traversal phase's
  // retention mixing). With fewer slots than objectives, collection runs in waves —
  // each wave re-assigns objectives round-robin and collects all slots in parallel —
  // and one joint update consumes every wave's buffers.
  std::vector<PpoTrainer::RolloutSource> sources;
  sources.reserve(slots_.size());
  int trajectories_per_wave = 0;
  for (const EnvSlot& slot : slots_) {
    PpoTrainer::RolloutSource source;
    if (slot.multi != nullptr) {
      source.vec = slot.multi;
      trajectories_per_wave += slot.multi->NumAgents();
    } else {
      source.env = slot.single;
      trajectories_per_wave += 1;
    }
    sources.push_back(source);
  }
  const size_t waves =
      (objectives.size() + slots_.size() - 1) / slots_.size();  // ceil
  const int steps_each =
      std::max(64, ppo_.config().rollout_steps /
                       std::max(1, static_cast<int>(waves) * trajectories_per_wave));
  std::vector<RolloutBuffer> buffers;
  for (size_t wave = 0; wave < waves; ++wave) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      SetSlotObjective(slots_[i],
                       objectives[(wave * slots_.size() + i) % objectives.size()]);
    }
    std::vector<RolloutBuffer> wave_buffers =
        ppo_.CollectSourcesParallel(sources, steps_each);
    for (RolloutBuffer& buffer : wave_buffers) {
      buffers.push_back(std::move(buffer));
    }
  }
  std::vector<const RolloutBuffer*> ptrs;
  ptrs.reserve(buffers.size());
  for (const auto& b : buffers) {
    ptrs.push_back(&b);
  }
  return ppo_.Update(ptrs);
}

PpoStats OfflineTrainer::RunIteration(const std::vector<WeightVector>& objectives) {
  assert(!objectives.empty());
  if (!slots_.empty()) {
    return RunScenarioIteration(objectives);
  }
  const int total_steps = ppo_.config().rollout_steps;
  if (envs_.size() == 1) {
    const int steps_each =
        std::max(64, total_steps / static_cast<int>(objectives.size()));
    std::vector<RolloutBuffer> buffers;
    buffers.reserve(objectives.size());
    for (const WeightVector& w : objectives) {
      envs_[0]->SetObjective(w);
      buffers.push_back(ppo_.CollectRollout(envs_[0].get(), steps_each));
    }
    std::vector<const RolloutBuffer*> ptrs;
    for (const auto& b : buffers) {
      ptrs.push_back(&b);
    }
    return ppo_.Update(ptrs);
  }
  // Parallel rollout collection: objectives are assigned to environments round-robin.
  std::vector<Env*> raw;
  raw.reserve(envs_.size());
  for (size_t i = 0; i < envs_.size(); ++i) {
    envs_[i]->SetObjective(objectives[i % objectives.size()]);
    raw.push_back(envs_[i].get());
  }
  const int steps_each = std::max(64, total_steps / static_cast<int>(envs_.size()));
  std::vector<RolloutBuffer> buffers = ppo_.CollectRolloutsParallel(raw, steps_each);
  std::vector<const RolloutBuffer*> ptrs;
  for (const auto& b : buffers) {
    ptrs.push_back(&b);
  }
  return ppo_.Update(ptrs);
}

OfflineTrainResult OfflineTrainer::TrainTwoPhase() {
  OfflineTrainResult result;
  const double t0 = NowSeconds();

  // Phase 1 — bootstrapping: the pivot objectives are trained jointly to convergence,
  // building the base correlation between requirements and policies.
  for (int i = 0; i < config_.bootstrap_iterations; ++i) {
    const PpoStats stats = RunIteration(config_.bootstrap_objectives);
    result.reward_curve.push_back(stats.mean_step_reward);
    ++result.total_iterations;
  }

  // Phase 2 — fast traversing: visit the landmarks a few steps each in the Algorithm-1
  // neighborhood order; each visit transfers from neighboring (already trained)
  // objectives and mixes in previously visited ones to retain them. The phase refines
  // the base model, so it runs at a reduced learning rate.
  ppo_.set_learning_rate(config_.mocc.learning_rate * config_.traversal_lr_factor);
  result.traversal_order = graph_.SortForTraversal(config_.bootstrap_objectives);
  std::vector<WeightVector> visited = config_.bootstrap_objectives;
  for (int round = 0; round < config_.traversal_rounds; ++round) {
    for (int idx : result.traversal_order) {
      const WeightVector& current = landmarks_[static_cast<size_t>(idx)];
      for (int i = 0; i < config_.traversal_iterations_per_objective; ++i) {
        std::vector<WeightVector> batch = {current};
        for (int m = 0; m < config_.traversal_mix_objectives && !visited.empty(); ++m) {
          batch.push_back(visited[static_cast<size_t>(
              mix_rng_.UniformInt(0, static_cast<int64_t>(visited.size()) - 1))]);
        }
        const PpoStats stats = RunIteration(batch);
        result.reward_curve.push_back(stats.mean_step_reward);
        ++result.total_iterations;
      }
      visited.push_back(current);
    }
  }

  ppo_.set_learning_rate(config_.mocc.learning_rate);
  result.wall_seconds = NowSeconds() - t0;
  return result;
}

OfflineTrainResult OfflineTrainer::TrainIndividually() {
  OfflineTrainResult result;
  const double t0 = NowSeconds();
  // No transfer: every landmark objective receives the full bootstrap budget, mimicking
  // one independent single-objective RL per objective (§6.5, "Individual Training").
  for (const WeightVector& objective : landmarks_) {
    for (int i = 0; i < config_.bootstrap_iterations; ++i) {
      const PpoStats stats = RunIteration({objective});
      result.reward_curve.push_back(stats.mean_step_reward);
      ++result.total_iterations;
    }
  }
  result.wall_seconds = NowSeconds() - t0;
  return result;
}

}  // namespace mocc
