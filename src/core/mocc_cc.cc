#include "src/core/mocc_cc.h"

namespace mocc {

std::unique_ptr<RlRateController> MakeMoccCc(std::shared_ptr<PreferenceActorCritic> model,
                                             const WeightVector& w, const std::string& name,
                                             double initial_rate_bps,
                                             bool float32_inference, bool guarded) {
  const WeightVector sanitized = w.Sanitized();
  RlRateController::Options options;
  options.history_len = model->config().history_len_eta;
  options.action_scale = model->config().action_scale_alpha;
  options.initial_rate_bps = initial_rate_bps;
  options.observation_prefix = {sanitized.thr, sanitized.lat, sanitized.loss};
  options.name = name;
  options.float32_inference = float32_inference;
  options.guard = guarded;
  return std::make_unique<RlRateController>(std::move(model), std::move(options));
}

}  // namespace mocc
