#include "src/core/mocc_cc.h"

#include "src/core/policy_spec.h"

namespace mocc {

std::unique_ptr<RlRateController> MakeMoccCc(std::shared_ptr<PreferenceActorCritic> model,
                                             const WeightVector& w, const std::string& name,
                                             double initial_rate_bps,
                                             bool float32_inference, bool guarded) {
  return PolicySpec()
      .WithModel(std::move(model))
      .WithPrecision(float32_inference ? Precision::kFloat32 : Precision::kDouble)
      .WithGuard(guarded)
      .WithName(name)
      .MakeController(w, initial_rate_bps);
}

}  // namespace mocc
