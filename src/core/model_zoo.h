// On-disk cache of trained models so the benchmark suite trains each configuration once:
// the first bench that needs e.g. the ω=36 MOCC base model or an Aurora-throughput model
// trains and saves it; subsequent benches load it. Files live under a directory relative
// to the working directory and are keyed by caller-provided names (include the config in
// the key when it varies).
#ifndef MOCC_SRC_CORE_MODEL_ZOO_H_
#define MOCC_SRC_CORE_MODEL_ZOO_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/mocc_config.h"
#include "src/core/preference_model.h"
#include "src/rl/actor_critic.h"

namespace mocc {

class ModelZoo {
 public:
  explicit ModelZoo(std::string directory = "mocc_model_zoo");

  // Loads the MOCC model `key` if cached, otherwise invokes `train` (which must return a
  // model built from `config`) and caches the result. Never returns nullptr if `train`
  // doesn't.
  std::shared_ptr<PreferenceActorCritic> GetOrTrainMocc(
      const std::string& key, const MoccConfig& config,
      const std::function<std::shared_ptr<PreferenceActorCritic>()>& train);

  // Same for Aurora-style MlpActorCritic models of observation dimension `obs_dim`.
  std::shared_ptr<MlpActorCritic> GetOrTrainAurora(
      const std::string& key, size_t obs_dim,
      const std::function<std::shared_ptr<MlpActorCritic>()>& train);

  std::string PathFor(const std::string& key) const;
  const std::string& directory() const { return directory_; }

 private:
  void EnsureDirectory() const;

  std::string directory_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_MODEL_ZOO_H_
