// Expressing application requirements (§7): applications think in application-level
// objectives — "at least 30 Mbps", "under 20 ms added delay", "below 1% loss" — not in
// weight vectors, and the paper notes that choosing the weights today takes human
// expertise. This module implements the envisioned automation: given application-level
// requirements and a reference link, it searches the weight simplex, evaluates the
// trained model on each candidate (fluid-link rollouts), and returns the weight vector
// that best satisfies the requirements.
#ifndef MOCC_SRC_CORE_WEIGHT_MAPPER_H_
#define MOCC_SRC_CORE_WEIGHT_MAPPER_H_

#include <memory>

#include "src/core/preference_model.h"
#include "src/core/weight_vector.h"
#include "src/netsim/link_params.h"

namespace mocc {

// Application-level requirements. Unset (<= 0) fields are ignored.
struct AppRequirements {
  double min_throughput_bps = 0.0;   // e.g. 34 Mbps for HDTV (§2.1)
  double max_added_delay_s = 0.0;    // queueing delay budget beyond the base RTT
  double max_loss_rate = 0.0;        // e.g. 0.001 for conferencing audio (§2.1)
};

struct WeightSuggestion {
  WeightVector weights;
  // Achieved metrics on the reference link under the suggested weights.
  double throughput_bps = 0.0;
  double added_delay_s = 0.0;
  double loss_rate = 0.0;
  // True iff every stated requirement is met on the reference link.
  bool feasible = false;
};

struct WeightMapperConfig {
  // Candidate grid resolution (simplex step 1/divisor).
  int grid_divisor = 10;
  // Evaluation horizon per candidate (monitor intervals on the fluid link).
  int eval_intervals = 300;
  uint64_t seed = 17;
};

// Searches the weight simplex for the vector whose deployed behaviour on
// `reference_link` best satisfies `requirements`. Among feasible candidates the one
// with the largest requirement margin wins; if none is feasible, the one with the
// smallest total violation wins (feasible = false in the result).
WeightSuggestion SuggestWeights(std::shared_ptr<PreferenceActorCritic> model,
                                const AppRequirements& requirements,
                                const LinkParams& reference_link,
                                const WeightMapperConfig& config = {});

}  // namespace mocc

#endif  // MOCC_SRC_CORE_WEIGHT_MAPPER_H_
