#include "src/core/preference_model.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

#include "src/rl/inference_policy.h"

namespace mocc {
namespace {

constexpr char kModelMagic[] = "MOCCMODL";
constexpr uint32_t kModelVersion = 1;

}  // namespace

PreferenceActorCritic::PreferenceActorCritic(const MoccConfig& config, Rng* rng)
    : config_(config), obs_dim_(config.ObsDim()) {
  auto build_head = [&](Head* head) {
    head->preference_net = Mlp({kWeightDim, config_.pn_hidden, config_.pn_out},
                               Activation::kTanh, Activation::kTanh, rng);
    std::vector<size_t> trunk_dims;
    trunk_dims.push_back(config_.pn_out + config_.HistoryDim());
    for (size_t h : config_.trunk_hidden) {
      trunk_dims.push_back(h);
    }
    trunk_dims.push_back(1);
    head->trunk = Mlp(trunk_dims, Activation::kTanh, Activation::kIdentity, rng);
    head->concat_row.resize(config_.pn_out + config_.HistoryDim());
  };
  build_head(&actor_);
  build_head(&critic_);
  log_std_(0, 0) = -1.0;
}

void PreferenceActorCritic::ForwardHeadInto(Head* head, const Matrix& obs, Matrix* out) {
  const size_t batch = obs.rows();
  const size_t hist_dim = config_.HistoryDim();
  head->weights_in.Resize(batch, kWeightDim);
  for (size_t b = 0; b < batch; ++b) {
    const double* src = obs.RowPtr(b);
    double* dst = head->weights_in.RowPtr(b);
    for (size_t c = 0; c < kWeightDim; ++c) {
      dst[c] = src[c];
    }
  }
  head->preference_net.ForwardInto(head->weights_in, &head->pn_out);
  head->concat.Resize(batch, config_.pn_out + hist_dim);
  for (size_t b = 0; b < batch; ++b) {
    double* dst = head->concat.RowPtr(b);
    const double* pn = head->pn_out.RowPtr(b);
    const double* hist = obs.RowPtr(b) + kWeightDim;
    for (size_t c = 0; c < config_.pn_out; ++c) {
      dst[c] = pn[c];
    }
    for (size_t c = 0; c < hist_dim; ++c) {
      dst[config_.pn_out + c] = hist[c];
    }
  }
  head->trunk.ForwardInto(head->concat, out);
}

void PreferenceActorCritic::ForwardHeadRow(Head* head, const std::vector<double>& obs,
                                           double* out) {
  // concat_row is pre-sized (constructor); the PN writes its features straight
  // into the concat prefix and only the history slice is copied per call. The
  // weight vector is the contiguous obs prefix, so the PN reads obs directly —
  // and since the PN depends only on that prefix, its features are reused across
  // calls as long as w⃗ (and the parameters) are unchanged, which is the steady
  // state of per-MI deployment inference.
  double* concat = head->concat_row.data();
  const bool pn_hit =
      head->pn_cache_valid &&
      std::equal(obs.begin(), obs.begin() + kWeightDim, head->pn_cache_w);
  if (!pn_hit) {
    head->preference_net.ForwardRow(obs.data(), concat);
    std::copy(obs.begin(), obs.begin() + kWeightDim, head->pn_cache_w);
    head->pn_cache_valid = true;
  }
  std::copy(obs.begin() + kWeightDim, obs.end(),
            head->concat_row.begin() + static_cast<ptrdiff_t>(config_.pn_out));
  head->trunk.ForwardRow(concat, out);
}

void PreferenceActorCritic::BackwardHead(Head* head, const Matrix& grad_out) {
  head->trunk.BackwardInto(grad_out, &head->dconcat);
  // Route the preference-feature slice of the gradient into the PN; the history slice
  // ends at the observation (no upstream parameters).
  const size_t batch = head->dconcat.rows();
  head->dpn.Resize(batch, config_.pn_out);
  for (size_t b = 0; b < batch; ++b) {
    const double* src = head->dconcat.RowPtr(b);
    double* dst = head->dpn.RowPtr(b);
    for (size_t c = 0; c < config_.pn_out; ++c) {
      dst[c] = src[c];
    }
  }
  head->preference_net.BackwardInto(head->dpn, &dpn_in_scratch_);
}

void PreferenceActorCritic::Forward(const Matrix& obs, Matrix* mean, Matrix* value) {
  assert(obs.cols() == obs_dim_);
  ForwardHeadInto(&actor_, obs, mean);
  ForwardHeadInto(&critic_, obs, value);
}

void PreferenceActorCritic::ForwardRow(const std::vector<double>& obs, double* mean,
                                       double* value) {
  assert(obs.size() == obs_dim_);
  ForwardHeadRow(&actor_, obs, mean);
  ForwardHeadRow(&critic_, obs, value);
}

void PreferenceActorCritic::ForwardRowActor(const std::vector<double>& obs,
                                            double* mean) {
  assert(obs.size() == obs_dim_);
  ForwardHeadRow(&actor_, obs, mean);
}

void PreferenceActorCritic::Backward(const Matrix& dmean, const Matrix& dvalue) {
  BackwardHead(&actor_, dmean);
  BackwardHead(&critic_, dvalue);
}

std::vector<ParamRef> PreferenceActorCritic::Params() {
  // The returned refs are mutable handles to the parameters (optimizers, model
  // blending, tests); assume the caller will write through them.
  InvalidatePnCache();
  std::vector<ParamRef> params;
  for (Head* head : {&actor_, &critic_}) {
    for (auto& p : head->preference_net.Params()) {
      params.push_back(p);
    }
    for (auto& p : head->trunk.Params()) {
      params.push_back(p);
    }
  }
  params.push_back({&log_std_, &log_std_grad_});
  return params;
}

std::unique_ptr<InferencePolicy> PreferenceActorCritic::MakeFloat32Policy() const {
  return std::make_unique<PreferenceFloat32Policy>(
      actor_.preference_net, actor_.trunk, critic_.preference_net, critic_.trunk,
      kWeightDim, config_.HistoryDim(), log_std_(0, 0));
}

std::unique_ptr<InferencePolicy> PreferenceActorCritic::MakeInt8Policy() const {
  return std::make_unique<PreferenceFloat32Policy>(
      actor_.preference_net, actor_.trunk, critic_.preference_net, critic_.trunk,
      kWeightDim, config_.HistoryDim(), log_std_(0, 0), /*int8=*/true);
}

void PreferenceActorCritic::InvalidatePnCache() {
  actor_.pn_cache_valid = false;
  critic_.pn_cache_valid = false;
}

void PreferenceActorCritic::ZeroGrad() {
  for (Head* head : {&actor_, &critic_}) {
    head->preference_net.ZeroGrad();
    head->trunk.ZeroGrad();
  }
  log_std_grad_.Fill(0.0);
  // The training loop zeroes gradients before every optimizer step, so this is
  // the hook that keeps the PN feature cache coherent with parameter updates.
  InvalidatePnCache();
}

size_t PreferenceActorCritic::ParameterCount() const {
  return actor_.preference_net.ParameterCount() + actor_.trunk.ParameterCount() +
         critic_.preference_net.ParameterCount() + critic_.trunk.ParameterCount() + 1;
}

std::unique_ptr<ActorCritic> PreferenceActorCritic::Clone() const {
  Rng scratch(1);
  auto clone = std::make_unique<PreferenceActorCritic>(config_, &scratch);
  clone->actor_.preference_net.CopyWeightsFrom(actor_.preference_net);
  clone->actor_.trunk.CopyWeightsFrom(actor_.trunk);
  clone->critic_.preference_net.CopyWeightsFrom(critic_.preference_net);
  clone->critic_.trunk.CopyWeightsFrom(critic_.trunk);
  clone->log_std_(0, 0) = log_std_(0, 0);
  return clone;
}

void PreferenceActorCritic::Serialize(BinaryWriter* w) const {
  w->WriteU64(obs_dim_);
  w->WriteU64(config_.history_len_eta);
  w->WriteU64(config_.pn_hidden);
  w->WriteU64(config_.pn_out);
  actor_.preference_net.Serialize(w);
  actor_.trunk.Serialize(w);
  critic_.preference_net.Serialize(w);
  critic_.trunk.Serialize(w);
  w->WriteDouble(log_std_(0, 0));
}

bool PreferenceActorCritic::Deserialize(BinaryReader* r) {
  const uint64_t obs_dim = r->ReadU64();
  const uint64_t eta = r->ReadU64();
  const uint64_t pn_hidden = r->ReadU64();
  const uint64_t pn_out = r->ReadU64();
  if (!r->ok() || obs_dim != obs_dim_ || eta != config_.history_len_eta ||
      pn_hidden != config_.pn_hidden || pn_out != config_.pn_out) {
    return false;
  }
  if (!actor_.preference_net.Deserialize(r) || !actor_.trunk.Deserialize(r) ||
      !critic_.preference_net.Deserialize(r) || !critic_.trunk.Deserialize(r)) {
    return false;
  }
  log_std_(0, 0) = r->ReadDouble();
  InvalidatePnCache();
  return r->ok();
}

bool PreferenceActorCritic::SaveToFile(const std::string& path) const {
  // Serialize in memory and write atomically (temp file + rename) so a crash
  // mid-save never leaves a torn model file behind.
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, kModelMagic, kModelVersion);
  Serialize(&writer);
  if (!writer.ok()) {
    return false;
  }
  return AtomicWriteFile(path, out.str());
}

std::shared_ptr<PreferenceActorCritic> PreferenceActorCritic::LoadFromFile(
    const std::string& path, const MoccConfig& config) {
  auto attempt = [&path](const MoccConfig& cfg) -> std::shared_ptr<PreferenceActorCritic> {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return nullptr;
    }
    BinaryReader reader(in, kModelMagic, kModelVersion);
    if (!reader.ok()) {
      return nullptr;
    }
    Rng scratch(1);
    auto model = std::make_shared<PreferenceActorCritic>(cfg, &scratch);
    if (!model->Deserialize(&reader)) {
      return nullptr;
    }
    return model;
  };
  if (auto model = attempt(config)) {
    return model;
  }
  // A checkpoint trained with the other ECN-observation layout has a different
  // obs_dim, which Deserialize rejects; retry with the flag toggled so the
  // deployment tools do not need to be told how a model was trained. Every
  // other architecture mismatch still fails both attempts.
  MoccConfig toggled = config;
  toggled.ecn_signal = !toggled.ecn_signal;
  return attempt(toggled);
}

}  // namespace mocc
