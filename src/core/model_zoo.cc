#include "src/core/model_zoo.h"

#include <filesystem>
#include <fstream>

namespace mocc {
namespace {

constexpr char kAuroraMagic[] = "MOCCAURA";
constexpr uint32_t kAuroraVersion = 1;

}  // namespace

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {}

void ModelZoo::EnsureDirectory() const {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string ModelZoo::PathFor(const std::string& key) const {
  return directory_ + "/" + key + ".bin";
}

std::shared_ptr<PreferenceActorCritic> ModelZoo::GetOrTrainMocc(
    const std::string& key, const MoccConfig& config,
    const std::function<std::shared_ptr<PreferenceActorCritic>()>& train) {
  const std::string path = PathFor(key);
  if (auto cached = PreferenceActorCritic::LoadFromFile(path, config)) {
    return cached;
  }
  auto model = train();
  if (model != nullptr) {
    EnsureDirectory();
    model->SaveToFile(path);
  }
  return model;
}

std::shared_ptr<MlpActorCritic> ModelZoo::GetOrTrainAurora(
    const std::string& key, size_t obs_dim,
    const std::function<std::shared_ptr<MlpActorCritic>()>& train) {
  const std::string path = PathFor(key);
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      BinaryReader reader(in, kAuroraMagic, kAuroraVersion);
      if (reader.ok()) {
        Rng scratch(1);
        auto model = std::make_shared<MlpActorCritic>(obs_dim, &scratch);
        if (model->Deserialize(&reader)) {
          return model;
        }
      }
    }
  }
  auto model = train();
  if (model != nullptr) {
    EnsureDirectory();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      BinaryWriter writer(out, kAuroraMagic, kAuroraVersion);
      model->Serialize(&writer);
    }
  }
  return model;
}

}  // namespace mocc
