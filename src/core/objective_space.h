// The landmark-objective space used by offline training (§4.2, Appendix B):
//  * simplex grids of weight vectors at step 1/divisor (ω landmark objectives;
//    divisor 4,5,6,10,20 -> ω = 3,6,10,36,171 as in Figure 16);
//  * the neighborhood graph over a grid (two vectors are neighbors iff they differ in at
//    most two components, each by at most one step);
//  * Algorithm 1 — the neighborhood-based objective sorting that orders the fast-
//    traversing phase by interleaved Dijkstra expansion around the bootstrap objectives.
#ifndef MOCC_SRC_CORE_OBJECTIVE_SPACE_H_
#define MOCC_SRC_CORE_OBJECTIVE_SPACE_H_

#include <vector>

#include "src/core/weight_vector.h"

namespace mocc {

// All weight vectors with components k/divisor (k >= 1 integer) summing to 1.
// The grid has C(divisor-1, 2) points.
std::vector<WeightVector> GenerateWeightGrid(int divisor);

// Number of grid points for a divisor: C(divisor-1, 2).
int ObjectiveGridSize(int divisor);

// The paper's three bootstrap objectives (Appendix B): <0.6,0.3,0.1>, <0.1,0.6,0.3>,
// <0.3,0.1,0.6> — chosen to cover the requirement space.
std::vector<WeightVector> DefaultBootstrapObjectives();

// Neighborhood predicate of Appendix B: at most two components differ, and each
// difference is within one grid step (1/divisor).
bool AreNeighborObjectives(const WeightVector& a, const WeightVector& b, int divisor);

// Undirected neighbor graph over a weight grid.
class ObjectiveGraph {
 public:
  ObjectiveGraph(std::vector<WeightVector> vertices, int divisor);

  const std::vector<WeightVector>& vertices() const { return vertices_; }
  const std::vector<int>& NeighborsOf(int v) const { return adjacency_[v]; }
  int divisor() const { return divisor_; }

  // Index of the vertex closest (L1) to `w`.
  int ClosestVertex(const WeightVector& w) const;

  // Algorithm 1: returns all vertex indices ordered for the fast-traversing phase —
  // bootstrap objectives first within their quota, then nearest-unvisited expansion
  // around each bootstrap vertex in turn (quota ceil(|V|/|O|) per bootstrap).
  std::vector<int> SortForTraversal(const std::vector<WeightVector>& bootstraps) const;

 private:
  std::vector<WeightVector> vertices_;
  std::vector<std::vector<int>> adjacency_;
  int divisor_;
};

}  // namespace mocc

#endif  // MOCC_SRC_CORE_OBJECTIVE_SPACE_H_
