// Multi-layer perceptron with manual backpropagation.
//
// The paper's policy and value networks are small fully-connected MLPs (two hidden layers
// of 64 and 32 units, tanh activations — §5). This module implements exactly that class of
// network: dense layers, forward/backward over mini-batches, parameter access for
// optimizers, and binary serialization. Composite models (the preference sub-network that
// feeds the trunk, Figure 3) chain Mlp::Backward gradients across sub-networks.
//
// Two execution paths are provided:
//  * Batched, allocation-free: ForwardInto/BackwardInto write into caller-owned
//    matrices and stage activations in per-network workspace buffers, so steady-state
//    training touches the allocator zero times. The legacy Forward/Backward wrappers
//    (which return fresh matrices) remain for convenience and tests.
//  * Fused single-row inference: ForwardRow evaluates one observation with plain
//    dot-product loops, skipping all batch machinery. This is the per-packet/per-MI
//    policy-inference fast path (Figure 17's overhead budget). Its result is
//    bit-for-bit identical to a 1-row batched Forward.
//
// Thread safety: one Mlp instance must not be used from two threads at once (the
// workspaces, including ForwardRow's scratch rows, are per-instance). Parallel rollout
// collection clones the network per thread instead (ActorCritic::Clone).
#ifndef MOCC_SRC_NN_MLP_H_
#define MOCC_SRC_NN_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/nn/matrix.h"

namespace mocc {

enum class Activation {
  kIdentity,
  kTanh,
  kRelu,
};

// A trainable tensor together with its gradient accumulator.
struct ParamRef {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

// One fully-connected layer: Y = act(X * W + b).
class DenseLayer {
 public:
  DenseLayer(size_t in_dim, size_t out_dim, Activation activation, Rng* rng);

  // Allocation-free forward pass over a batch (rows = samples) into `y` (resized,
  // capacity reused). Keeps pointers to `x` and `y` for the following BackwardInto,
  // so both must stay alive and unmodified until then.
  void ForwardInto(const Matrix& x, Matrix* y);

  // Allocation-free backward pass: accumulates dW/db and writes dL/dX into
  // `grad_in` (which must not alias `grad_out`). Must follow a ForwardInto with the
  // matching batch.
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in);

  // Fused single-row inference: y[0..out_dim()) = act(x · W + b), where x has
  // in_dim() elements. Pure (no caching); bit-for-bit equal to a 1-row ForwardInto.
  void ForwardRow(const double* x, double* y) const;

  // Legacy allocating wrappers around the Into paths.
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);

  void ZeroGrad();
  std::vector<ParamRef> Params();

  size_t in_dim() const { return weights_.rows(); }
  size_t out_dim() const { return weights_.cols(); }
  Activation activation() const { return activation_; }

  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  Matrix weights_;  // in_dim x out_dim
  Matrix bias_;     // 1 x out_dim
  Matrix grad_weights_;
  Matrix grad_bias_;
  Activation activation_;
  // Forward state for BackwardInto (non-owning; set by ForwardInto).
  const Matrix* fwd_input_ = nullptr;
  const Matrix* fwd_output_ = nullptr;
  // Workspaces (capacity reused across calls).
  Matrix dpre_;          // grad wrt pre-activation
  Matrix cached_input_;  // legacy Forward staging
  Matrix cached_output_;
};

// Fully-connected network: a stack of DenseLayers.
class Mlp {
 public:
  Mlp() = default;

  // Builds a network with the given layer widths; `dims` = {in, h1, ..., out}. All hidden
  // layers use `hidden_activation`; the final layer uses `output_activation`.
  Mlp(const std::vector<size_t>& dims, Activation hidden_activation,
      Activation output_activation, Rng* rng);

  // Allocation-free batched forward pass (rows = samples, cols = in_dim) into `y`.
  // The input is staged into a per-network buffer, so `x` need not outlive the call.
  void ForwardInto(const Matrix& x, Matrix* y);

  // Allocation-free batched backward pass from dL/dY; accumulates parameter
  // gradients and writes dL/dX into `grad_in` so callers can chain into upstream
  // sub-networks. Must follow a ForwardInto with the matching batch.
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in);

  // Fused single-row inference: out[0..out_dim()) from in[0..in_dim()). Uses
  // per-network scratch rows (zero allocation in steady state); bit-for-bit equal
  // to a 1-row batched forward. Does NOT cache activations for BackwardInto.
  void ForwardRow(const double* in, double* out) const;
  void ForwardRow(const std::vector<double>& in, std::vector<double>* out) const;

  // Legacy allocating wrappers around the Into paths.
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);

  void ZeroGrad();
  std::vector<ParamRef> Params();

  size_t in_dim() const;
  size_t out_dim() const;
  size_t ParameterCount() const;

  // Widest layer boundary (max over in/out dims); sizes ForwardRow scratch.
  size_t MaxDim() const;

  // Copies all weights from `other`; shapes must match.
  void CopyWeightsFrom(const Mlp& other);

  // Weights := (1-tau)*weights + tau*other (Polyak averaging; used by DQN target nets).
  void SoftUpdateFrom(const Mlp& other, double tau);

  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  std::vector<DenseLayer> layers_;
  // Workspaces (capacity reused across calls; see thread-safety note above).
  Matrix input_cache_;
  std::vector<Matrix> acts_;  // per-layer outputs of the last ForwardInto
  Matrix grad_ping_;
  Matrix grad_pong_;
  mutable std::vector<double> row_ping_;
  mutable std::vector<double> row_pong_;
};

// Applies the activation elementwise.
void ApplyActivation(Activation a, Matrix* m);
void ApplyActivation(Activation a, double* data, size_t n);

}  // namespace mocc

#endif  // MOCC_SRC_NN_MLP_H_
