// Multi-layer perceptron with manual backpropagation.
//
// The paper's policy and value networks are small fully-connected MLPs (two hidden layers
// of 64 and 32 units, tanh activations — §5). This module implements exactly that class of
// network: dense layers, forward/backward over mini-batches, parameter access for
// optimizers, and binary serialization. Composite models (the preference sub-network that
// feeds the trunk, Figure 3) chain Mlp::Backward gradients across sub-networks.
//
// The network is templated on its scalar type. Training runs on MlpT<double> (aliased
// as Mlp, the historical name); the float32 deployment-inference path runs MlpT<float>
// replicas built with CastFrom (src/rl/inference_policy.h). Both instantiations share
// every kernel, workspace-reuse strategy and activation implementation; serialization
// always stores double on disk, so a float network can round-trip the same files.
//
// Two execution paths are provided:
//  * Batched, allocation-free: ForwardInto/BackwardInto write into caller-owned
//    matrices and stage activations in per-network workspace buffers, so steady-state
//    training touches the allocator zero times. The legacy Forward/Backward wrappers
//    (which return fresh matrices) remain for convenience and tests.
//  * Fused single-row inference: ForwardRow evaluates one observation with plain
//    dot-product loops, skipping all batch machinery. This is the per-packet/per-MI
//    policy-inference fast path (Figure 17's overhead budget). Its result is
//    bit-for-bit identical to a 1-row batched Forward.
//
// Thread safety: one Mlp instance must not be used from two threads at once (the
// workspaces, including ForwardRow's scratch rows, are per-instance). Parallel rollout
// collection clones the network per thread instead (ActorCritic::Clone).
#ifndef MOCC_SRC_NN_MLP_H_
#define MOCC_SRC_NN_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/nn/matrix.h"

namespace mocc {

enum class Activation {
  kIdentity,
  kTanh,
  kRelu,
};

// A trainable tensor together with its gradient accumulator.
template <typename T>
struct ParamRefT {
  MatrixT<T>* value = nullptr;
  MatrixT<T>* grad = nullptr;
};

// The historical name: the double-precision parameter handle (optimizers train in
// double only).
using ParamRef = ParamRefT<double>;

// One fully-connected layer: Y = act(X * W + b).
template <typename T>
class DenseLayerT {
 public:
  DenseLayerT(size_t in_dim, size_t out_dim, Activation activation, Rng* rng);

  // Builds a layer whose weights are a static_cast copy of `other` (gradients are
  // zeroed) — the double->float conversion behind the deployment inference path.
  template <typename U>
  static DenseLayerT CastFrom(const DenseLayerT<U>& other) {
    DenseLayerT layer;
    layer.activation_ = other.activation();
    layer.weights_.CastFrom(other.weights());
    layer.bias_.CastFrom(other.bias());
    layer.grad_weights_.Resize(layer.weights_.rows(), layer.weights_.cols());
    layer.grad_bias_.Resize(1, layer.bias_.cols());
    layer.grad_weights_.Fill(T(0));
    layer.grad_bias_.Fill(T(0));
    return layer;
  }

  // Allocation-free forward pass over a batch (rows = samples) into `y` (resized,
  // capacity reused). Keeps pointers to `x` and `y` for the following BackwardInto,
  // so both must stay alive and unmodified until then.
  void ForwardInto(const MatrixT<T>& x, MatrixT<T>* y);

  // Allocation-free backward pass: accumulates dW/db and writes dL/dX into
  // `grad_in` (which must not alias `grad_out`). Must follow a ForwardInto with the
  // matching batch.
  void BackwardInto(const MatrixT<T>& grad_out, MatrixT<T>* grad_in);

  // Fused single-row inference: y[0..out_dim()) = act(x · W + b), where x has
  // in_dim() elements. Pure (no caching); bit-for-bit equal to a 1-row ForwardInto.
  void ForwardRow(const T* x, T* y) const;

  // Legacy allocating wrappers around the Into paths.
  MatrixT<T> Forward(const MatrixT<T>& x);
  MatrixT<T> Backward(const MatrixT<T>& grad_out);

  void ZeroGrad();
  std::vector<ParamRefT<T>> Params();

  size_t in_dim() const { return weights_.rows(); }
  size_t out_dim() const { return weights_.cols(); }
  Activation activation() const { return activation_; }
  const MatrixT<T>& weights() const { return weights_; }
  const MatrixT<T>& bias() const { return bias_; }

  // On-disk layout stores doubles regardless of T, so float replicas read/write the
  // exact files the double training path produces (values are narrowed on read).
  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  DenseLayerT() = default;  // for CastFrom
  template <typename U>
  friend class DenseLayerT;

  MatrixT<T> weights_;  // in_dim x out_dim
  MatrixT<T> bias_;     // 1 x out_dim
  MatrixT<T> grad_weights_;
  MatrixT<T> grad_bias_;
  Activation activation_ = Activation::kIdentity;
  // Forward state for BackwardInto (non-owning; set by ForwardInto).
  const MatrixT<T>* fwd_input_ = nullptr;
  const MatrixT<T>* fwd_output_ = nullptr;
  // Workspaces (capacity reused across calls).
  MatrixT<T> dpre_;          // grad wrt pre-activation
  MatrixT<T> cached_input_;  // legacy Forward staging
  MatrixT<T> cached_output_;
};

// Fully-connected network: a stack of DenseLayers.
template <typename T>
class MlpT {
 public:
  MlpT() = default;

  // Builds a network with the given layer widths; `dims` = {in, h1, ..., out}. All hidden
  // layers use `hidden_activation`; the final layer uses `output_activation`.
  MlpT(const std::vector<size_t>& dims, Activation hidden_activation,
       Activation output_activation, Rng* rng);

  // Rebuilds this network as a static_cast copy of a network with a different scalar
  // type (same architecture, converted weights, zeroed gradients and workspaces) —
  // MlpT<float>().CastFrom(trained_double_net) is the deployment conversion.
  template <typename U>
  void CastFrom(const MlpT<U>& other) {
    layers_.clear();
    layers_.reserve(other.layers_.size());
    for (const auto& layer : other.layers_) {
      layers_.push_back(DenseLayerT<T>::CastFrom(layer));
    }
    acts_.clear();
    row_ping_.clear();
    row_pong_.clear();
    batch_ping_.Resize(0, 0);
    batch_pong_.Resize(0, 0);
  }

  // Allocation-free batched forward pass (rows = samples, cols = in_dim) into `y`.
  // The input is staged into a per-network buffer, so `x` need not outlive the call.
  void ForwardInto(const MatrixT<T>& x, MatrixT<T>* y);

  // Allocation-free batched backward pass from dL/dY; accumulates parameter
  // gradients and writes dL/dX into `grad_in` so callers can chain into upstream
  // sub-networks. Must follow a ForwardInto with the matching batch.
  void BackwardInto(const MatrixT<T>& grad_out, MatrixT<T>* grad_in);

  // Fused single-row inference: out[0..out_dim()) from in[0..in_dim()). Uses
  // per-network scratch rows (zero allocation in steady state); bit-for-bit equal
  // to a 1-row batched forward. Does NOT cache activations for BackwardInto.
  void ForwardRow(const T* in, T* out) const;
  void ForwardRow(const std::vector<T>& in, std::vector<T>* out) const;

  // Inference over n packed rows (in = n x in_dim(), out = n x out_dim(), both
  // row-major, caller-owned): the serving batch path. One MatMulBiasInto per layer
  // amortizes the weight-matrix reads across the batch; every output row is
  // bit-for-bit equal to ForwardRow on the same input row (the kernels share the
  // per-element accumulation recipe — see matrix.h). Uses per-network scratch
  // matrices (zero allocation in steady state); does NOT cache activations for
  // BackwardInto. Same single-thread contract as ForwardRow.
  void ForwardBatchRows(const T* in, size_t n, T* out) const;

  // Legacy allocating wrappers around the Into paths.
  MatrixT<T> Forward(const MatrixT<T>& x);
  MatrixT<T> Backward(const MatrixT<T>& grad_out);

  void ZeroGrad();
  std::vector<ParamRefT<T>> Params();

  size_t in_dim() const;
  size_t out_dim() const;
  size_t ParameterCount() const;

  // Widest layer boundary (max over in/out dims); sizes ForwardRow scratch.
  size_t MaxDim() const;

  // Read-only per-layer access for deployment-side specializations that walk
  // the stack themselves (the float32 policy's cached-prefix trunk forward,
  // the int8 quantizer's freeze pass).
  size_t layer_count() const { return layers_.size(); }
  const DenseLayerT<T>& layer(size_t i) const { return layers_[i]; }

  // Copies all weights from `other`; shapes must match.
  void CopyWeightsFrom(const MlpT& other);

  // Weights := (1-tau)*weights + tau*other (Polyak averaging; used by DQN target nets).
  void SoftUpdateFrom(const MlpT& other, double tau);

  // On-disk layout stores doubles regardless of T (see DenseLayerT).
  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  template <typename U>
  friend class MlpT;

  std::vector<DenseLayerT<T>> layers_;
  // Workspaces (capacity reused across calls; see thread-safety note above).
  MatrixT<T> input_cache_;
  std::vector<MatrixT<T>> acts_;  // per-layer outputs of the last ForwardInto
  MatrixT<T> grad_ping_;
  MatrixT<T> grad_pong_;
  mutable std::vector<T> row_ping_;
  mutable std::vector<T> row_pong_;
  mutable MatrixT<T> batch_ping_;  // ForwardBatchRows staging
  mutable MatrixT<T> batch_pong_;
};

// The historical names: the double-precision training network.
using DenseLayer = DenseLayerT<double>;
using Mlp = MlpT<double>;

// Applies the activation elementwise.
template <typename T>
void ApplyActivation(Activation a, T* data, size_t n);
template <typename T>
void ApplyActivation(Activation a, MatrixT<T>* m);

// Instantiated for exactly double (training) and float (inference) in mlp.cc.
extern template class DenseLayerT<double>;
extern template class DenseLayerT<float>;
extern template class MlpT<double>;
extern template class MlpT<float>;

}  // namespace mocc

#endif  // MOCC_SRC_NN_MLP_H_
