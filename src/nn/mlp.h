// Multi-layer perceptron with manual backpropagation.
//
// The paper's policy and value networks are small fully-connected MLPs (two hidden layers
// of 64 and 32 units, tanh activations — §5). This module implements exactly that class of
// network: dense layers, forward/backward over mini-batches, parameter access for
// optimizers, and binary serialization. Composite models (the preference sub-network that
// feeds the trunk, Figure 3) chain Mlp::Backward gradients across sub-networks.
#ifndef MOCC_SRC_NN_MLP_H_
#define MOCC_SRC_NN_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialization.h"
#include "src/nn/matrix.h"

namespace mocc {

enum class Activation {
  kIdentity,
  kTanh,
  kRelu,
};

// A trainable tensor together with its gradient accumulator.
struct ParamRef {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

// One fully-connected layer: Y = act(X * W + b).
class DenseLayer {
 public:
  DenseLayer(size_t in_dim, size_t out_dim, Activation activation, Rng* rng);

  // Forward pass over a batch (rows = samples). Caches inputs/outputs for Backward.
  Matrix Forward(const Matrix& x);

  // Backward pass: accumulates dW/db and returns dL/dX. Must follow a Forward call with
  // the matching batch.
  Matrix Backward(const Matrix& grad_out);

  void ZeroGrad();
  std::vector<ParamRef> Params();

  size_t in_dim() const { return weights_.rows(); }
  size_t out_dim() const { return weights_.cols(); }
  Activation activation() const { return activation_; }

  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  Matrix weights_;  // in_dim x out_dim
  Matrix bias_;     // 1 x out_dim
  Matrix grad_weights_;
  Matrix grad_bias_;
  Activation activation_;
  Matrix cached_input_;
  Matrix cached_output_;  // post-activation
};

// Fully-connected network: a stack of DenseLayers.
class Mlp {
 public:
  Mlp() = default;

  // Builds a network with the given layer widths; `dims` = {in, h1, ..., out}. All hidden
  // layers use `hidden_activation`; the final layer uses `output_activation`.
  Mlp(const std::vector<size_t>& dims, Activation hidden_activation,
      Activation output_activation, Rng* rng);

  // Forward pass over a batch (rows = samples, cols = in_dim).
  Matrix Forward(const Matrix& x);

  // Backward pass from dL/dY; accumulates parameter gradients, returns dL/dX so callers
  // can chain into upstream sub-networks.
  Matrix Backward(const Matrix& grad_out);

  void ZeroGrad();
  std::vector<ParamRef> Params();

  size_t in_dim() const;
  size_t out_dim() const;
  size_t ParameterCount() const;

  // Copies all weights from `other`; shapes must match.
  void CopyWeightsFrom(const Mlp& other);

  // Weights := (1-tau)*weights + tau*other (Polyak averaging; used by DQN target nets).
  void SoftUpdateFrom(const Mlp& other, double tau);

  void Serialize(BinaryWriter* w) const;
  bool Deserialize(BinaryReader* r);

 private:
  std::vector<DenseLayer> layers_;
};

// Applies the activation elementwise.
void ApplyActivation(Activation a, Matrix* m);

}  // namespace mocc

#endif  // MOCC_SRC_NN_MLP_H_
